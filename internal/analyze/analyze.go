// Package analyze implements a static-analysis pass over Sequence
// Datalog programs, in the spirit of go/analysis: a registry of
// modular analyzers producing structured, positioned diagnostics.
//
// The paper's entire contribution is static structure — a program's
// feature set {A, E, I, N, P, R} decides its expressive power, and in
// particular whether recursion through sequence-constructing terms can
// grow intermediate sequences without bound (Example 2.3). The
// analyzers turn that structure into actionable diagnostics before a
// program is evaluated or served:
//
//   - safety: range restriction (§2.2) — head variables and variables
//     under negation must be bound by positive body atoms, with
//     sequence-term-aware binding (a head occurrence under
//     `.`-construction is constructive, not binding);
//   - stratification: negation must be stratified (§2.2);
//   - termination: recursion through sequence-constructing head terms
//     grows sequences without bound, reported together with the
//     program's fragment and expressiveness class (§3, Example 2.3);
//   - deadcode: unreachable rules, never-derivable relations,
//     duplicate rules, singleton variables;
//   - performance: joins that full-scan a relation under incremental
//     (semi-naive delta) maintenance because no argument position can
//     be index- or prefix-probed.
//
// Error-severity analyzers run first; when any of them reports, the
// lint analyzers are skipped — their results on ill-formed programs
// would be noise. eval.Compile rejects programs with error-severity
// diagnostics and surfaces the rest on the compiled Prepared; the
// seqlog -vet mode prints every diagnostic as "file:line:col: code:
// message".
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"seqlog/internal/ast"
)

// Severity classifies a diagnostic: Error rejects the program at
// compile/load time, Warning flags a likely defect that does not
// change the semantics, Info reports derived facts about the program
// (its fragment and class).
type Severity int

// The severities, ordered by increasing gravity.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity in lower case.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "?"
}

// Diagnostic is one analysis finding: a positioned, coded message.
// The catalog of codes lives in docs/analysis.md; every code is
// triggered at least once by the golden fixture corpus.
type Diagnostic struct {
	// Pos locates the finding in the source (zero for programs built
	// programmatically; renders as "-").
	Pos ast.Position
	// Severity is the gravity of the finding.
	Severity Severity
	// Code identifies the kind of finding, e.g. "unbound-head-var".
	Code string
	// Message is the human-readable explanation.
	Message string
	// Related points at other source positions that explain the
	// finding (the first use of a relation, the recursion cycle, ...).
	Related []Related
}

// Related is a secondary position attached to a diagnostic.
type Related struct {
	Pos     ast.Position
	Message string
}

// String renders "line:col: code: message" without a file name.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Code, d.Message)
}

// Format renders the diagnostic and its related notes, one per line,
// in the canonical vet shape "file:line:col: code: message".
func (d Diagnostic) Format(file string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s: %s: %s", file, d.Pos, d.Code, d.Message)
	for _, r := range d.Related {
		fmt.Fprintf(&b, "\n%s:%s: note: %s", file, r.Pos, r.Message)
	}
	return b.String()
}

// Options configures one analysis run.
type Options struct {
	// Outputs lists the declared output relations of the program.
	// When non-empty, the deadcode analyzer reports rules that are
	// unreachable from every output (generalizing
	// rewrite.PruneUnreachable to a diagnostic).
	Outputs []string
	// ExplicitStrata marks the program's strata as author-specified
	// (or produced by a validated stratification). The stratification
	// analyzer then enforces the written order exactly as
	// ast.Program.Validate does, and downgrades a negation cycle to a
	// warning: the written order still gives the program an
	// operational meaning. Without it, a negation cycle is an error —
	// no stratification exists at all.
	ExplicitStrata bool
	// ClassLabel, when set, renders a fragment's expressiveness class
	// for the termination analyzer's fragment report. Callers pass a
	// closure over core.ClassOf; analyze cannot import package core
	// itself (core depends on eval, and eval runs this analysis).
	ClassLabel func(ast.FeatureSet) string
}

// Pass carries one analysis run's shared inputs. Analyzers read the
// program and the precomputed dependency structure and report
// diagnostics through Report.
type Pass struct {
	Prog ast.Program
	Opts Options
	// Rules is Prog.Rules(), flattened once.
	Rules []ast.Rule
	// IDB marks relation names defined by some rule head.
	IDB map[string]bool
	// SCC maps IDB relation names to dependency-graph component ids.
	SCC map[string]int
	// SCCSize counts the members of each component.
	SCCSize map[int]int

	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic with a formatted message.
func (p *Pass) Reportf(pos ast.Position, sev Severity, code, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Severity: sev, Code: code, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one registered analysis pass.
type Analyzer struct {
	// Name identifies the pass (safety, stratification, termination,
	// deadcode, performance).
	Name string
	// Doc describes what the pass checks and which codes it emits.
	Doc string
	// Errors marks passes that can produce error-severity
	// diagnostics; they run before the lint passes, which are skipped
	// entirely when an error was found.
	Errors bool
	// Run executes the pass.
	Run func(*Pass)
}

// Analyzers returns the registered passes in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{SafetyAnalyzer, StratificationAnalyzer, TerminationAnalyzer, DeadCodeAnalyzer, PerfAnalyzer}
}

// Check runs every registered analyzer over the program and returns
// the diagnostics sorted by position, severity, and code. When an
// error-severity pass reports, the lint passes are skipped.
func Check(prog ast.Program, opts Options) []Diagnostic {
	var diags []Diagnostic
	pass := newPass(prog, opts, func(d Diagnostic) { diags = append(diags, d) })
	for _, a := range Analyzers() {
		if a.Errors {
			a.Run(pass)
		}
	}
	if !HasErrors(diags) {
		for _, a := range Analyzers() {
			if !a.Errors {
				a.Run(pass)
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

func newPass(prog ast.Program, opts Options, report func(Diagnostic)) *Pass {
	p := &Pass{
		Prog:    prog,
		Opts:    opts,
		Rules:   prog.Rules(),
		IDB:     map[string]bool{},
		SCC:     prog.SCCIDs(),
		SCCSize: map[int]int{},
		report:  report,
	}
	for _, r := range p.Rules {
		p.IDB[r.Head.Name] = true
	}
	for _, id := range p.SCC {
		p.SCCSize[id]++
	}
	return p
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic has error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors filters the error-severity diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Count returns how many diagnostics have the given severity.
func Count(diags []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// DiagError is the error eval.Compile returns when analysis rejects a
// program: the error-severity diagnostics, rendered one per line.
// Callers that want the structured list (seqlogd's load reply, the
// vet CLIs) unwrap it with errors.As.
type DiagError struct {
	Diags []Diagnostic
}

// Error renders the diagnostics one per line.
func (e *DiagError) Error() string {
	lines := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// atomPos extracts the source position of a body atom.
func atomPos(a ast.Atom) ast.Position {
	switch x := a.(type) {
	case ast.Pred:
		return x.Pos
	case ast.Eq:
		return x.Pos
	}
	return ast.Position{}
}
