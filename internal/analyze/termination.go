package analyze

import (
	"fmt"
	"sort"
	"strings"

	"seqlog/internal/ast"
)

// TerminationAnalyzer implements the paper's central observation as a
// diagnostic (Example 2.3, §3): Sequence Datalog evaluation need not
// terminate precisely because recursion can construct ever-longer
// sequences. It reports:
//
//   - fragment (info): the program's minimal fragment of {A, E, I, N,
//     P, R} and, when the caller supplies Options.ClassLabel, its
//     expressiveness class under Theorem 6.1;
//   - seq-growth (warning): a recursive rule whose head (or an
//     equation defining a head variable) builds a sequence strictly
//     longer than a path variable it recurses on. Such a rule can grow
//     sequences without bound; termination is not guaranteed on
//     arbitrary inputs. Rules that recurse through atomic variables
//     only are bounded by the input alphabet and stay clean.
var TerminationAnalyzer = &Analyzer{
	Name: "termination",
	Doc:  "recursion through sequence-constructing terms grows sequences without bound",
	Run:  runTermination,
}

func runTermination(p *Pass) {
	if len(p.Rules) == 0 {
		return
	}
	reportFragment(p)
	for _, r := range p.Rules {
		cycle := recursionCycle(p, r)
		if cycle == nil {
			continue
		}
		through, pos := growthWitness(r)
		if through == "" {
			continue
		}
		p.Report(Diagnostic{
			Pos:      pos,
			Severity: Warning,
			Code:     "seq-growth",
			Message: fmt.Sprintf("recursive rule grows sequences through %s: evaluation is not guaranteed to terminate on all inputs (Example 2.3)",
				through),
			Related: []Related{{
				Pos:     r.Head.Pos,
				Message: "recursion cycle: " + strings.Join(cycle, " -> ") + " -> " + cycle[0],
			}},
		})
	}
}

func reportFragment(p *Pass) {
	f := p.Prog.Features()
	msg := fmt.Sprintf("program is in fragment %s", f)
	if p.Opts.ClassLabel != nil {
		msg += "; expressiveness class: " + p.Opts.ClassLabel(f)
	}
	p.Reportf(p.Rules[0].Head.Pos, Info, "fragment", "%s", msg)
}

// recursionCycle returns the sorted members of the head's recursive
// dependency-graph component when the rule itself closes a cycle (some
// positive body predicate is in the head's component), else nil.
func recursionCycle(p *Pass, r ast.Rule) []string {
	hid, ok := p.SCC[r.Head.Name]
	if !ok {
		return nil
	}
	closes := false
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, isPred := l.Atom.(ast.Pred); isPred {
			if pid, pok := p.SCC[pr.Name]; pok && pid == hid {
				closes = true
				break
			}
		}
	}
	if !closes {
		return nil
	}
	var members []string
	for n, id := range p.SCC {
		if id == hid {
			members = append(members, n)
		}
	}
	sort.Strings(members)
	return members
}

// growthWitness looks for the term through which the rule grows
// sequences: a head argument that embeds a path variable in a longer
// constructed expression, or a positive equation that defines a head
// variable as such an expression. It returns a description of the
// witness and its position, or "" when the rule only rearranges
// bounded material (atomic variables, bare path variables).
func growthWitness(r ast.Rule) (string, ast.Position) {
	for _, a := range r.Head.Args {
		if constructsLongerPath(a) {
			return fmt.Sprintf("head term %s", a), r.Head.Pos
		}
	}
	headVars := map[ast.Var]bool{}
	for _, a := range r.Head.Args {
		for _, v := range a.Vars() {
			headVars[v] = true
		}
	}
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		eq, ok := l.Atom.(ast.Eq)
		if !ok {
			continue
		}
		for _, side := range [][2]ast.Expr{{eq.L, eq.R}, {eq.R, eq.L}} {
			v, isVar := soleVar(side[0])
			if isVar && headVars[v] && !v.Atomic && constructsLongerPath(side[1]) {
				return fmt.Sprintf("equation %s", eq), eq.Pos
			}
		}
	}
	return "", ast.Position{}
}

// constructsLongerPath reports whether the expression builds a path
// strictly containing a path variable: a concatenation or packing
// around $x grows, while a bare $x, constants, and atomic variables
// (bounded by the input alphabet) do not.
func constructsLongerPath(e ast.Expr) bool {
	if !containsPathVar(e) {
		return false
	}
	if len(e) == 1 {
		if vt, ok := e[0].(ast.VarT); ok && !vt.V.Atomic {
			return false // bare $x: pass-through, no growth
		}
	}
	return true
}

func containsPathVar(e ast.Expr) bool {
	for _, t := range e {
		switch x := t.(type) {
		case ast.VarT:
			if !x.V.Atomic {
				return true
			}
		case ast.Pack:
			if containsPathVar(x.E) {
				return true
			}
		}
	}
	return false
}

// soleVar reports the variable when the expression is exactly one bare
// variable occurrence.
func soleVar(e ast.Expr) (ast.Var, bool) {
	if len(e) != 1 {
		return ast.Var{}, false
	}
	vt, ok := e[0].(ast.VarT)
	if !ok {
		return ast.Var{}, false
	}
	return vt.V, true
}
