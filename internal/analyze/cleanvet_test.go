package analyze_test

import (
	"testing"

	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/core"
	"seqlog/internal/queries"
)

// TestPaperQueriesVetClean asserts every registered paper query — the
// same set the differential engine/eval agreement suite runs over —
// carries zero error-severity diagnostics. Warnings are permitted:
// Example 2.3 is *supposed* to draw seq-growth, that is the point of
// the pass; but a paper query that fails safety or stratification
// would be a bug in the corpus (or the analyzer).
func TestPaperQueriesVetClean(t *testing.T) {
	all := queries.All()
	if len(all) == 0 {
		t.Fatal("no registered queries")
	}
	for _, q := range all {
		diags := analyze.Check(q.Program, analyze.Options{
			Outputs:        []string{q.Output},
			ExplicitStrata: true,
			ClassLabel:     func(f ast.FeatureSet) string { return core.ClassOf(f).Label() },
		})
		for _, d := range diags {
			if d.Severity == analyze.Error {
				t.Errorf("%s (%s): %s", q.Name, q.Source, d)
			}
		}
		// The non-terminating examples must draw the termination
		// warning — an analyzer that misses Example 2.3 is broken.
		if !q.Terminating {
			found := false
			for _, d := range diags {
				if d.Code == "seq-growth" {
					found = true
				}
			}
			if !found {
				t.Errorf("%s (%s): non-terminating query drew no seq-growth warning", q.Name, q.Source)
			}
		}
	}
}
