package analyze

import (
	"strings"

	"seqlog/internal/ast"
)

// PerfAnalyzer simulates the planner's greedy join ordering under
// semi-naive incremental maintenance. For every positive predicate
// occurrence Δ of a multi-join rule it asks: when maintenance is
// driven by a delta on Δ (only Δ's variables bound up front), can the
// remaining predicates all be joined through an exact index probe
// (some argument position fully bound), a prefix probe (a ground
// leading term) or a suffix probe (a ground trailing term)? A
// predicate that qualifies for none is matched by a full relation
// scan per delta tuple — the join degenerates to nested loops exactly
// when the engine is supposed to be incremental.
//
// Code: full-scan-delta (warning), reported at the scanned predicate.
var PerfAnalyzer = &Analyzer{
	Name: "performance",
	Doc:  "joins that full-scan a relation under delta-driven incremental maintenance",
	Run:  runPerf,
}

func runPerf(p *Pass) {
	for _, r := range p.Rules {
		checkRulePerf(p, r)
	}
}

func checkRulePerf(p *Pass, r ast.Rule) {
	var preds []ast.Pred
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, ok := l.Atom.(ast.Pred); ok {
			preds = append(preds, pr)
		}
	}
	if len(preds) < 2 {
		return // single-predicate bodies have no join to index
	}
	// scanned[i] collects the delta predicates under which preds[i] is
	// joined by a full scan, in body order.
	scanned := make(map[int][]string)
	for d := range preds {
		bound := map[ast.Var]bool{}
		for _, a := range preds[d].Args {
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
		remaining := make([]int, 0, len(preds)-1)
		for i := range preds {
			if i != d {
				remaining = append(remaining, i)
			}
		}
		// Greedy ordering mirroring eval's compilePlan: pick the
		// predicate with the best (bound columns, ground prefix, ground
		// suffix, bound occurrences) score, ties keeping body order.
		for len(remaining) > 0 {
			best := 0
			bestScore := joinScore(preds[remaining[0]], bound)
			for i := 1; i < len(remaining); i++ {
				if s := joinScore(preds[remaining[i]], bound); scoreLess(bestScore, s) {
					best, bestScore = i, s
				}
			}
			idx := remaining[best]
			remaining = append(remaining[:best], remaining[best+1:]...)
			pr := preds[idx]
			if bestScore[0] == 0 && bestScore[1] == 0 && bestScore[2] == 0 && len(pr.Args) > 0 {
				name := preds[d].Name
				dup := false
				for _, n := range scanned[idx] {
					if n == name {
						dup = true
						break
					}
				}
				if !dup {
					scanned[idx] = append(scanned[idx], name)
				}
			}
			for _, a := range pr.Args {
				for _, v := range a.Vars() {
					bound[v] = true
				}
			}
		}
	}
	for i, pr := range preds {
		deltas := scanned[i]
		if len(deltas) == 0 {
			continue
		}
		for j, n := range deltas {
			deltas[j] = "Δ" + n
		}
		p.Reportf(pr.Pos, Warning, "full-scan-delta",
			"%s is joined by a full scan when maintenance is driven by %s: no argument position becomes fully bound, prefix-ground or suffix-ground, so no index applies (consider reordering shared variables)",
			pr.Name, strings.Join(deltas, ", "))
	}
}

// joinScore mirrors eval's predScore: (fully bound argument positions,
// longest ground argument term prefix, longest ground argument term
// suffix, bound variable occurrences).
func joinScore(pr ast.Pred, bound map[ast.Var]bool) [4]int {
	var s [4]int
	for _, a := range pr.Args {
		if exprBound(a, bound) {
			s[0]++
			continue
		}
		if n := groundPrefix(a, bound); n > s[1] {
			s[1] = n
		}
		if n := groundSuffix(a, bound); n > s[2] {
			s[2] = n
		}
	}
	occ := map[ast.Var]int{}
	for _, a := range pr.Args {
		a.VarOccurrences(occ)
	}
	for v, n := range occ {
		if bound[v] {
			s[3] += n
		}
	}
	return s
}

func scoreLess(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func exprBound(e ast.Expr, bound map[ast.Var]bool) bool {
	for _, v := range e.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}

// groundPrefix counts the leading terms whose variables are all bound,
// mirroring eval's groundPrefixTerms.
func groundPrefix(e ast.Expr, bound map[ast.Var]bool) int {
	n := 0
	for _, t := range e {
		if !termGround(t, bound) {
			return n
		}
		n++
	}
	return n
}

// groundSuffix counts the trailing terms whose variables are all
// bound, mirroring eval's groundSuffixTerms.
func groundSuffix(e ast.Expr, bound map[ast.Var]bool) int {
	n := 0
	for i := len(e) - 1; i >= 0; i-- {
		if !termGround(e[i], bound) {
			return n
		}
		n++
	}
	return n
}

func termGround(t ast.Term, bound map[ast.Var]bool) bool {
	switch x := t.(type) {
	case ast.Const:
		return true
	case ast.VarT:
		return bound[x.V]
	case ast.Pack:
		return exprBound(x.E, bound)
	}
	return false
}
