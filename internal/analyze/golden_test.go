package analyze_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/core"
	"seqlog/internal/parser"
)

var update = flag.Bool("update", false, "rewrite the golden .want files from current analyzer output")

// TestGolden runs every fixture in testdata/ through the full analyzer
// stack and compares the rendered diagnostics — positions, severities,
// codes, messages, and related notes — against the .want golden file.
// Fixtures may carry a `% vet:outputs=A,B` header to enable the
// reachability pass. Regenerate goldens with `go test -run Golden -update`.
func TestGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.sdl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures in testdata/")
	}
	sort.Strings(fixtures)
	for _, fixture := range fixtures {
		name := strings.TrimSuffix(filepath.Base(fixture), ".sdl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatal(err)
			}
			prog, explicit, err := parser.ParseProgramForAnalysis(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			diags := analyze.Check(prog, analyze.Options{
				Outputs:        fixtureOutputs(string(src)),
				ExplicitStrata: explicit,
				ClassLabel:     func(f ast.FeatureSet) string { return core.ClassOf(f).Label() },
			})
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.Format(filepath.Base(fixture)))
				b.WriteByte('\n')
			}
			got := b.String()

			wantFile := strings.TrimSuffix(fixture, ".sdl") + ".want"
			if *update {
				if err := os.WriteFile(wantFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantFile)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// fixtureOutputs reads a `% vet:outputs=A,B` header line.
func fixtureOutputs(src string) []string {
	for _, line := range strings.Split(src, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "% vet:outputs=")
		if !ok {
			continue
		}
		var outs []string
		for _, f := range strings.Split(rest, ",") {
			if f = strings.TrimSpace(f); f != "" {
				outs = append(outs, f)
			}
		}
		return outs
	}
	return nil
}

// TestEveryCodeCovered asserts the fixture corpus triggers every
// diagnostic code the analyzers can emit, so a new code cannot ship
// without a golden exercising it.
func TestEveryCodeCovered(t *testing.T) {
	want := []string{
		"arity-mismatch", "unbound-head-var", "unbound-neg-var", "unbound-var",
		"negation-cycle", "unstratified-negation",
		"fragment", "seq-growth",
		"duplicate-rule", "singleton-var", "never-derived", "unreachable-rule",
		"full-scan-delta",
	}
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.want"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		b, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	for _, code := range want {
		if !strings.Contains(all.String(), ": "+code+": ") {
			t.Errorf("no golden fixture triggers diagnostic code %q", code)
		}
	}
}
