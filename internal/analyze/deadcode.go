package analyze

import (
	"fmt"
	"strings"

	"seqlog/internal/ast"
)

// DeadCodeAnalyzer flags rules and relations that cannot contribute to
// the program's result:
//
//   - duplicate-rule (warning): a rule structurally identical to an
//     earlier one (identical derivations, pure overhead);
//   - singleton-var (warning): a variable occurring exactly once in a
//     rule — usually a typo; a leading underscore ($_x, @_x) marks a
//     deliberate don't-care and suppresses the warning;
//   - never-derived (warning): an IDB relation none of whose rules can
//     ever fire, because every one of them depends positively on a
//     relation that itself derives nothing and is defined by no rule
//     (not an EDB name — EDB relations may hold facts at runtime);
//   - unreachable-rule (warning, needs Options.Outputs): a rule whose
//     head is not needed — directly or transitively, through positive
//     or negated atoms — to compute any declared output.
var DeadCodeAnalyzer = &Analyzer{
	Name: "deadcode",
	Doc:  "unreachable rules, never-derivable relations, duplicate rules, singleton variables",
	Run:  runDeadCode,
}

func runDeadCode(p *Pass) {
	checkDuplicates(p)
	for _, r := range p.Rules {
		checkSingletons(p, r)
	}
	checkNeverDerived(p)
	checkUnreachable(p)
}

func checkDuplicates(p *Pass) {
	first := map[string]ast.Position{}
	for _, r := range p.Rules {
		key := r.String()
		if pos, ok := first[key]; ok {
			p.Report(Diagnostic{
				Pos:      r.Head.Pos,
				Severity: Warning,
				Code:     "duplicate-rule",
				Message:  fmt.Sprintf("rule duplicates an earlier rule: %s", key),
				Related:  []Related{{Pos: pos, Message: "first occurrence"}},
			})
			continue
		}
		first[key] = r.Head.Pos
	}
}

func checkSingletons(p *Pass, r ast.Rule) {
	occ := map[ast.Var]int{}
	for _, a := range r.Head.Args {
		a.VarOccurrences(occ)
	}
	for _, l := range r.Body {
		switch x := l.Atom.(type) {
		case ast.Pred:
			for _, a := range x.Args {
				a.VarOccurrences(occ)
			}
		case ast.Eq:
			x.L.VarOccurrences(occ)
			x.R.VarOccurrences(occ)
		}
	}
	// Report in the rule's first-occurrence order for determinism.
	for _, v := range r.Vars() {
		if occ[v] != 1 || strings.HasPrefix(v.Name, "_") {
			continue
		}
		p.Reportf(varOccurrencePos(r, v), Warning, "singleton-var",
			"variable %s occurs only once in the rule (rename to %s to mark it deliberate)", v, sigil(v)+"_"+v.Name)
	}
}

func sigil(v ast.Var) string {
	if v.Atomic {
		return "@"
	}
	return "$"
}

// varOccurrencePos finds the position of the atom containing v's sole
// occurrence, preferring body atoms (more precise than the rule head).
func varOccurrencePos(r ast.Rule, v ast.Var) ast.Position {
	for _, l := range r.Body {
		for _, u := range atomVars(l.Atom) {
			if u == v {
				return atomPos(l.Atom)
			}
		}
	}
	return r.Head.Pos
}

// checkNeverDerived runs a fixpoint over "can derive at least one
// fact": EDB names can (facts may be loaded), a rule can fire when all
// its positive body predicates can derive (equations and negation are
// treated as satisfiable — this is an over-approximation, so every
// report is sound).
func checkNeverDerived(p *Pass) {
	derivable := map[string]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if pr, ok := l.Atom.(ast.Pred); ok && !p.IDB[pr.Name] {
				derivable[pr.Name] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if derivable[r.Head.Name] {
				continue
			}
			ok := true
			for _, l := range r.Body {
				if l.Neg {
					continue
				}
				if pr, isPred := l.Atom.(ast.Pred); isPred && !derivable[pr.Name] {
					ok = false
					break
				}
			}
			if ok {
				derivable[r.Head.Name] = true
				changed = true
			}
		}
	}
	reported := map[string]bool{}
	for _, r := range p.Rules {
		if derivable[r.Head.Name] || reported[r.Head.Name] {
			continue
		}
		reported[r.Head.Name] = true
		p.Reportf(r.Head.Pos, Warning, "never-derived",
			"relation %s can never derive a fact: every rule for it depends on a relation that derives nothing", r.Head.Name)
	}
}

// checkUnreachable computes the relations needed to evaluate the
// declared outputs (through positive and negated body atoms alike,
// matching rewrite.PruneUnreachable) and flags rules whose head is not
// among them.
func checkUnreachable(p *Pass) {
	if len(p.Opts.Outputs) == 0 {
		return
	}
	needed := map[string]bool{}
	for _, o := range p.Opts.Outputs {
		needed[o] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if !needed[r.Head.Name] {
				continue
			}
			for _, l := range r.Body {
				if pr, ok := l.Atom.(ast.Pred); ok && !needed[pr.Name] {
					needed[pr.Name] = true
					changed = true
				}
			}
		}
	}
	outputs := strings.Join(p.Opts.Outputs, ", ")
	for _, r := range p.Rules {
		if needed[r.Head.Name] {
			continue
		}
		p.Reportf(r.Head.Pos, Warning, "unreachable-rule",
			"rule for %s is unreachable: not needed to compute output %s", r.Head.Name, outputs)
	}
}
