package analyze

import (
	"fmt"

	"seqlog/internal/ast"
)

// SafetyAnalyzer enforces range restriction (§2.2): every variable of
// a rule must be limited — bound by a positive body predicate, or
// transitively through a positive equation with one fully-limited
// side. It reports the reason a variable escapes binding:
//
//   - arity-mismatch (error): a relation used with two arities;
//   - unbound-head-var (error): a head variable never bound by the
//     positive body — with a note when its only head occurrence
//     constructs a sequence (`T($p.@x)`), where binding cannot come
//     from the head by definition;
//   - unbound-neg-var (error): a variable whose only predicate
//     occurrences are under negation (negation does not bind);
//   - unbound-var (error): a variable floating in equations only,
//     with no positive side ever fully limited.
var SafetyAnalyzer = &Analyzer{
	Name:   "safety",
	Doc:    "range restriction: head and negated variables must be bound by positive body atoms",
	Errors: true,
	Run:    runSafety,
}

func runSafety(p *Pass) {
	checkArities(p)
	for _, r := range p.Rules {
		checkRuleSafety(p, r)
	}
}

// checkArities mirrors ast.Program.Arities as a diagnostic: every
// conflicting use is reported, not just the first.
func checkArities(p *Pass) {
	arity := map[string]int{}
	first := map[string]ast.Position{}
	record := func(pr ast.Pred) {
		if prev, ok := arity[pr.Name]; ok {
			if prev != len(pr.Args) {
				p.Report(Diagnostic{
					Pos:      pr.Pos,
					Severity: Error,
					Code:     "arity-mismatch",
					Message:  fmt.Sprintf("relation %s used with arity %d here but arity %d elsewhere", pr.Name, len(pr.Args), prev),
					Related:  []Related{{Pos: first[pr.Name], Message: fmt.Sprintf("%s first used with arity %d", pr.Name, prev)}},
				})
			}
			return
		}
		arity[pr.Name] = len(pr.Args)
		first[pr.Name] = pr.Pos
	}
	for _, r := range p.Rules {
		record(r.Head)
		for _, l := range r.Body {
			if pr, ok := l.Atom.(ast.Pred); ok {
				record(pr)
			}
		}
	}
}

func checkRuleSafety(p *Pass, r ast.Rule) {
	limited := r.LimitedVars()
	headVars := map[ast.Var]bool{}
	for _, a := range r.Head.Args {
		for _, v := range a.Vars() {
			headVars[v] = true
		}
	}
	for _, v := range r.Vars() {
		if limited[v] {
			continue
		}
		switch {
		case headVars[v]:
			d := Diagnostic{
				Pos:      r.Head.Pos,
				Severity: Error,
				Code:     "unbound-head-var",
				Message:  fmt.Sprintf("head variable %s is not bound by any positive body atom (rule is unsafe, §2.2)", v),
			}
			if headOccurrenceConstructs(r.Head, v) {
				d.Related = append(d.Related, Related{
					Pos:     r.Head.Pos,
					Message: fmt.Sprintf("%s occurs in the head only inside a constructed sequence term, which cannot bind it", v),
				})
			}
			p.Report(d)
		case underNegationOnly(r, v):
			pos, name := negatedOccurrence(r, v)
			p.Report(Diagnostic{
				Pos:      pos,
				Severity: Error,
				Code:     "unbound-neg-var",
				Message:  fmt.Sprintf("variable %s occurs under negation in %s but is not bound by any positive body atom (negation does not bind, §2.2)", v, name),
			})
		default:
			p.Reportf(firstBodyOccurrence(r, v), Error, "unbound-var",
				"variable %s is not limited: no positive predicate contains it and no positive equation side containing it ever becomes fully bound (§2.2)", v)
		}
	}
}

// headOccurrenceConstructs reports whether every head occurrence of v
// sits inside a longer sequence expression or under packing — i.e. the
// head builds a sequence around v rather than mentioning it bare.
func headOccurrenceConstructs(head ast.Pred, v ast.Var) bool {
	found := false
	for _, a := range head.Args {
		for _, u := range a.Vars() {
			if u == v {
				found = true
				if len(a) == 1 {
					if vt, ok := a[0].(ast.VarT); ok && vt.V == v {
						return false // bare occurrence
					}
				}
			}
		}
	}
	return found
}

// underNegationOnly reports whether v's only body occurrences are in
// negated literals.
func underNegationOnly(r ast.Rule, v ast.Var) bool {
	inNeg, inPos := false, false
	for _, l := range r.Body {
		for _, u := range atomVars(l.Atom) {
			if u == v {
				if l.Neg {
					inNeg = true
				} else {
					inPos = true
				}
			}
		}
	}
	return inNeg && !inPos
}

func negatedOccurrence(r ast.Rule, v ast.Var) (ast.Position, string) {
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		for _, u := range atomVars(l.Atom) {
			if u == v {
				return atomPos(l.Atom), l.String()
			}
		}
	}
	return r.Head.Pos, r.Head.String()
}

func firstBodyOccurrence(r ast.Rule, v ast.Var) ast.Position {
	for _, l := range r.Body {
		for _, u := range atomVars(l.Atom) {
			if u == v {
				return atomPos(l.Atom)
			}
		}
	}
	return r.Head.Pos
}

func atomVars(a ast.Atom) []ast.Var {
	switch x := a.(type) {
	case ast.Pred:
		var out []ast.Var
		seen := map[ast.Var]bool{}
		for _, e := range x.Args {
			for _, v := range e.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out
	case ast.Eq:
		var out []ast.Var
		seen := map[ast.Var]bool{}
		for _, e := range []ast.Expr{x.L, x.R} {
			for _, v := range e.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out
	}
	return nil
}

// StratificationAnalyzer enforces stratified negation (§2.2):
//
//   - negation-cycle: a negated atom whose predicate sits in the same
//     dependency-graph strongly connected component as the rule's head
//     — no stratification exists. An error for auto-stratified
//     programs; a warning when the author wrote explicit strata (the
//     written order still fixes an operational meaning);
//   - unstratified-negation (error, explicit strata only): a negated
//     predicate defined in the same or a later stratum, mirroring
//     ast.Program.Validate.
var StratificationAnalyzer = &Analyzer{
	Name:   "stratification",
	Doc:    "negation must be stratified",
	Errors: true,
	Run:    runStratification,
}

func runStratification(p *Pass) {
	if head, atom, ok := ast.NegationCycleWitness(p.Rules); ok {
		sev := Error
		msg := fmt.Sprintf("no stratification exists: recursion through negation (!%s is reachable from %s)", atom.Name, head)
		if p.Opts.ExplicitStrata {
			sev = Warning
			msg = fmt.Sprintf("recursion through negation (!%s is reachable from %s): the written strata fix an evaluation order, but no stratification exists", atom.Name, head)
		}
		p.Reportf(atom.Pos, sev, "negation-cycle", "%s", msg)
	}
	if !p.Opts.ExplicitStrata {
		return
	}
	// headFrom[i] = names used as heads in stratum i or later.
	headFrom := make([]map[string]bool, len(p.Prog.Strata)+1)
	headFrom[len(p.Prog.Strata)] = map[string]bool{}
	for i := len(p.Prog.Strata) - 1; i >= 0; i-- {
		m := map[string]bool{}
		for n := range headFrom[i+1] {
			m[n] = true
		}
		for _, r := range p.Prog.Strata[i] {
			m[r.Head.Name] = true
		}
		headFrom[i] = m
	}
	for si, s := range p.Prog.Strata {
		for _, r := range s {
			for _, l := range r.Body {
				if !l.Neg {
					continue
				}
				if pr, ok := l.Atom.(ast.Pred); ok && headFrom[si][pr.Name] {
					p.Reportf(pr.Pos, Error, "unstratified-negation",
						"stratum %d: negated predicate %s is defined in this or a later stratum (negation not stratified, §2.2)", si+1, pr.Name)
				}
			}
		}
	}
}
