// Package value defines the data model of sequence databases from
// Section 2.1 of "Expressiveness within Sequence Datalog" (PODS 2021):
// atomic values, packed values, and paths (finite sequences of values).
//
// Values are immutable and interned: atom texts live in a global symbol
// table (equality is Sym comparison), packed values are hash-consed
// (equality is pointer comparison), and every value carries a
// precomputed structural hash (see intern.go). No function in this
// module mutates a Path it did not create, and callers must not mutate
// paths after handing them to the engine.
package value

import (
	"sort"
	"strings"
)

// Value is an element of a path: either an Atom or a Packed value.
//
// The data model (paper §2.1) is the smallest set such that every atomic
// value is a value, every finite sequence of values is a path, and <p> is
// a (packed) value for every path p.
type Value interface {
	// Kind reports whether the value is atomic or packed.
	Kind() Kind
	// String renders the value in the paper's notation (packing as <...>).
	String() string
	// appendKey appends the canonical injective encoding used for
	// hashing and ordering.
	appendKey(b *strings.Builder)
}

// Kind discriminates the two sorts of values.
type Kind int

const (
	// KindAtom marks an atomic value from the universe dom.
	KindAtom Kind = iota
	// KindPacked marks a packed value <p>.
	KindPacked
)

// Atom is an atomic data element from the countably infinite universe
// dom, represented as a handle into the global symbol table: equal
// texts intern to equal Syms, so == on Atoms is text equality. The zero
// Atom is the empty atom ”. Construct Atoms with Intern (or PathOf).
type Atom struct {
	sym Sym
}

// Kind implements Value.
func (Atom) Kind() Kind { return KindAtom }

// Sym returns the atom's dense symbol-table ID.
func (a Atom) Sym() Sym { return a.sym }

// Text returns the atom's text.
func (a Atom) Text() string { return symtab.entry(a.sym).text }

// Hash returns the atom's precomputed structural hash (computed once at
// interning time; a table lookup afterwards).
func (a Atom) Hash() uint64 { return symtab.entry(a.sym).hash }

// String implements Value.
func (a Atom) String() string { return renderAtom(a.Text()) }

// Packed is a packed value <p>: a path temporarily treated as atomic
// (the P feature of the paper). Packed values are hash-consed by Pack:
// structurally equal packed values share one canonical node, so for
// Pack-constructed values == is structural equality and hashing is a
// field read. The zero Packed behaves as <eps> but holds no node, so
// it is == only to itself; compare with Equal (which normalizes it),
// or construct through Pack everywhere.
type Packed struct {
	n *packedNode
}

// epsNode backs the zero Packed, so value.Packed{} behaves as <eps>.
// Initialized in an init func to break the Pack→Hash→node cycle the
// compiler would otherwise see in a package-level initializer.
var epsNode *packedNode

func init() { epsNode = Pack(Epsilon).n }

func (p Packed) node() *packedNode {
	if p.n == nil {
		return epsNode
	}
	return p.n
}

// Kind implements Value.
func (Packed) Kind() Kind { return KindPacked }

// Unpack returns the packed path. The path is shared with the canonical
// node and must not be mutated.
func (p Packed) Unpack() Path { return p.node().path }

// Hash returns the packed value's precomputed structural hash.
func (p Packed) Hash() uint64 { return p.node().hash }

// String implements Value.
func (p Packed) String() string { return "<" + p.Unpack().String() + ">" }

// Path is a finite sequence of values. The empty path is the paper's ε.
type Path []Value

// Epsilon is the empty path ε.
var Epsilon = Path{}

// PathOf builds a flat path from atom texts.
func PathOf(atoms ...string) Path {
	p := make(Path, len(atoms))
	for i, a := range atoms {
		p[i] = Intern(a)
	}
	return p
}

// Singleton returns the one-element path holding v. The paper identifies
// a value v with the length-one sequence v.
func Singleton(v Value) Path { return Path{v} }

// Concat concatenates paths into a fresh path.
func Concat(paths ...Path) Path {
	n := 0
	for _, p := range paths {
		n += len(p)
	}
	out := make(Path, 0, n)
	for _, p := range paths {
		out = append(out, p...)
	}
	return out
}

// String renders the path in the paper's dotted notation; ε for empty.
func (p Path) String() string {
	if len(p) == 0 {
		return "eps"
	}
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = v.String()
	}
	return strings.Join(parts, ".")
}

// renderAtom quotes an atom when it would not lex as a bare identifier.
func renderAtom(s string) string {
	if s == "" {
		return "''"
	}
	plain := true
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
			plain = false
			break
		}
	}
	if plain && s != "eps" {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}

// Key returns a canonical injective encoding of the path, suitable as a
// map key. Distinct paths always have distinct keys.
func (p Path) Key() string {
	var b strings.Builder
	p.appendKey(&b)
	return b.String()
}

func (p Path) appendKey(b *strings.Builder) {
	for i, v := range p {
		if i > 0 {
			b.WriteByte('.')
		}
		v.appendKey(b)
	}
}

func (a Atom) appendKey(b *strings.Builder) {
	// Escape the structural bytes so the encoding stays injective even
	// when atoms contain '.', '<', '>' or '\'.
	s := a.Text()
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '.', '<', '>', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	// A trailing '$' distinguishes the empty atom from the empty path
	// and an atom "x" from sub-encodings; every atom is terminated.
	b.WriteByte('$')
}

func (p Packed) appendKey(b *strings.Builder) {
	b.WriteByte('<')
	p.Unpack().appendKey(b)
	b.WriteByte('>')
}

// HashSeed is the FNV-1a offset basis, the canonical seed for Hash.
const HashSeed uint64 = 14695981039346656037

// hashPrime is the FNV-1a 64-bit prime.
const hashPrime uint64 = 1099511628211

// HashByte folds one byte into a running FNV-1a hash. It is exported so
// that containers of paths (tuples, column projections) can interleave
// their own structural separators with path hashes.
func HashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * hashPrime }

// HashWord folds a full 64-bit word (e.g. a value's cached structural
// hash) into a running hash, one multiply instead of one per byte.
func HashWord(h, w uint64) uint64 { return (h ^ w) * hashPrime }

// Hash folds the path into a running hash seeded with h (HashSeed for a
// fresh hash). Each element contributes its cached structural hash —
// atoms from the symbol table, packed values from their hash-consed
// node — so hashing never re-walks value bytes. Equal paths always hash
// equally, and the per-kind tags keep e.g. the atom path a.b distinct
// from the packed value <a.b>. Collisions between distinct paths are
// possible; callers must confirm with Equal.
func (p Path) Hash(h uint64) uint64 {
	for _, v := range p {
		switch x := v.(type) {
		case Atom:
			h = HashWord(h, x.Hash())
		case Packed:
			h = HashWord(h, x.Hash())
		}
	}
	return h
}

// Equal reports whether two values are the same value. Interning makes
// this O(1): Sym comparison for atoms, canonical-node pointer
// comparison for packed values.
func Equal(v, w Value) bool {
	switch x := v.(type) {
	case Atom:
		y, ok := w.(Atom)
		return ok && x == y
	case Packed:
		y, ok := w.(Packed)
		return ok && x.node() == y.node()
	}
	return false
}

// Equal reports whether two paths are the same sequence of values.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !Equal(p[i], q[i]) {
			return false
		}
	}
	return true
}

// Compare totally orders values: atoms before packed values; atoms by
// text order; packed values by their paths. Equal values short-circuit
// on interned identity before any text is compared.
func Compare(v, w Value) int {
	switch x := v.(type) {
	case Atom:
		if y, ok := w.(Atom); ok {
			if x == y {
				return 0
			}
			return strings.Compare(x.Text(), y.Text())
		}
		return -1
	case Packed:
		if y, ok := w.(Packed); ok {
			if x.node() == y.node() {
				return 0
			}
			return x.Unpack().Compare(y.Unpack())
		}
		return 1
	}
	return 0
}

// Compare totally orders paths element-wise with shorter prefixes first.
func (p Path) Compare(q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if c := Compare(p[i], q[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	default:
		return 0
	}
}

// IsFlat reports whether the path contains no packed values at any depth.
// Flat instances (paper §3.1) contain only flat paths.
func (p Path) IsFlat() bool {
	for _, v := range p {
		if v.Kind() == KindPacked {
			return false
		}
	}
	return true
}

// PackingDepth returns the maximum packing nesting depth in the path
// (0 for flat paths). Depths are cached on the hash-consed nodes, so
// this is one field read per top-level packed value.
func (p Path) PackingDepth() int {
	d := int32(0)
	for _, v := range p {
		if pk, ok := v.(Packed); ok {
			if dd := pk.node().depth; dd > d {
				d = dd
			}
		}
	}
	return int(d)
}

// Clone returns a copy of the path sharing its (immutable) values.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Atoms collects the distinct atomic values occurring anywhere in the
// path (including inside packed values), in text-sorted order.
func (p Path) Atoms() []Atom {
	set := map[Atom]struct{}{}
	p.collectAtoms(set)
	out := make([]Atom, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Text() < out[j].Text() })
	return out
}

func (p Path) collectAtoms(set map[Atom]struct{}) {
	for _, v := range p {
		switch x := v.(type) {
		case Atom:
			set[x] = struct{}{}
		case Packed:
			x.Unpack().collectAtoms(set)
		}
	}
}

// Repeat returns the path consisting of n copies of atom a (the a^n
// strings used throughout Section 5).
func Repeat(a string, n int) Path {
	at := Intern(a)
	p := make(Path, n)
	for i := range p {
		p[i] = at
	}
	return p
}
