// Package value defines the data model of sequence databases from
// Section 2.1 of "Expressiveness within Sequence Datalog" (PODS 2021):
// atomic values, packed values, and paths (finite sequences of values).
//
// Values are immutable by convention: no function in this module mutates
// a Path it did not create, and callers must not mutate paths after
// handing them to the engine.
package value

import (
	"sort"
	"strings"
)

// Value is an element of a path: either an Atom or a Packed value.
//
// The data model (paper §2.1) is the smallest set such that every atomic
// value is a value, every finite sequence of values is a path, and <p> is
// a (packed) value for every path p.
type Value interface {
	// Kind reports whether the value is atomic or packed.
	Kind() Kind
	// String renders the value in the paper's notation (packing as <...>).
	String() string
	// appendKey appends the canonical injective encoding used for
	// hashing and ordering.
	appendKey(b *strings.Builder)
}

// Kind discriminates the two sorts of values.
type Kind int

const (
	// KindAtom marks an atomic value from the universe dom.
	KindAtom Kind = iota
	// KindPacked marks a packed value <p>.
	KindPacked
)

// Atom is an atomic data element from the countably infinite universe dom.
type Atom string

// Kind implements Value.
func (Atom) Kind() Kind { return KindAtom }

// String implements Value.
func (a Atom) String() string { return renderAtom(string(a)) }

// Packed is a packed value <p>: a path temporarily treated as atomic
// (the P feature of the paper).
type Packed struct {
	P Path
}

// Kind implements Value.
func (Packed) Kind() Kind { return KindPacked }

// String implements Value.
func (p Packed) String() string { return "<" + p.P.String() + ">" }

// Pack wraps a path into a packed value.
func Pack(p Path) Packed { return Packed{P: p} }

// Path is a finite sequence of values. The empty path is the paper's ε.
type Path []Value

// Epsilon is the empty path ε.
var Epsilon = Path{}

// PathOf builds a flat path from atom texts.
func PathOf(atoms ...string) Path {
	p := make(Path, len(atoms))
	for i, a := range atoms {
		p[i] = Atom(a)
	}
	return p
}

// Singleton returns the one-element path holding v. The paper identifies
// a value v with the length-one sequence v.
func Singleton(v Value) Path { return Path{v} }

// Concat concatenates paths into a fresh path.
func Concat(paths ...Path) Path {
	n := 0
	for _, p := range paths {
		n += len(p)
	}
	out := make(Path, 0, n)
	for _, p := range paths {
		out = append(out, p...)
	}
	return out
}

// String renders the path in the paper's dotted notation; ε for empty.
func (p Path) String() string {
	if len(p) == 0 {
		return "eps"
	}
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = v.String()
	}
	return strings.Join(parts, ".")
}

// renderAtom quotes an atom when it would not lex as a bare identifier.
func renderAtom(s string) string {
	if s == "" {
		return "''"
	}
	plain := true
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
			plain = false
			break
		}
	}
	if plain && s != "eps" {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
}

// Key returns a canonical injective encoding of the path, suitable as a
// map key. Distinct paths always have distinct keys.
func (p Path) Key() string {
	var b strings.Builder
	p.appendKey(&b)
	return b.String()
}

func (p Path) appendKey(b *strings.Builder) {
	for i, v := range p {
		if i > 0 {
			b.WriteByte('.')
		}
		v.appendKey(b)
	}
}

func (a Atom) appendKey(b *strings.Builder) {
	// Escape the structural bytes so the encoding stays injective even
	// when atoms contain '.', '<', '>' or '\'.
	for i := 0; i < len(a); i++ {
		switch c := a[i]; c {
		case '.', '<', '>', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
	// A trailing '$' distinguishes the empty atom from the empty path
	// and an atom "x" from sub-encodings; every atom is terminated.
	b.WriteByte('$')
}

func (p Packed) appendKey(b *strings.Builder) {
	b.WriteByte('<')
	p.P.appendKey(b)
	b.WriteByte('>')
}

// HashSeed is the FNV-1a offset basis, the canonical seed for Hash.
const HashSeed uint64 = 14695981039346656037

// hashPrime is the FNV-1a 64-bit prime.
const hashPrime uint64 = 1099511628211

// HashByte folds one byte into a running FNV-1a hash. It is exported so
// that containers of paths (tuples, column projections) can interleave
// their own structural separators with path hashes.
func HashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * hashPrime }

// Hash folds the path into a running FNV-1a hash seeded with h
// (HashSeed for a fresh hash). The encoding mirrors appendKey: equal
// paths always hash equally, and the structural tags keep e.g. the atom
// path a.b distinct from the packed value <a.b>. Collisions between
// distinct paths are possible; callers must confirm with Equal.
func (p Path) Hash(h uint64) uint64 {
	for _, v := range p {
		switch x := v.(type) {
		case Atom:
			h = HashByte(h, 0x01)
			for i := 0; i < len(x); i++ {
				h = HashByte(h, x[i])
			}
		case Packed:
			h = HashByte(h, 0x02)
			h = x.P.Hash(h)
			h = HashByte(h, 0x03)
		}
	}
	return h
}

// Equal reports whether two values are the same value.
func Equal(v, w Value) bool {
	switch x := v.(type) {
	case Atom:
		y, ok := w.(Atom)
		return ok && x == y
	case Packed:
		y, ok := w.(Packed)
		return ok && x.P.Equal(y.P)
	}
	return false
}

// Equal reports whether two paths are the same sequence of values.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !Equal(p[i], q[i]) {
			return false
		}
	}
	return true
}

// Compare totally orders values: atoms before packed values; atoms by
// string order; packed values by their paths.
func Compare(v, w Value) int {
	switch x := v.(type) {
	case Atom:
		if y, ok := w.(Atom); ok {
			return strings.Compare(string(x), string(y))
		}
		return -1
	case Packed:
		if y, ok := w.(Packed); ok {
			return x.P.Compare(y.P)
		}
		return 1
	}
	return 0
}

// Compare totally orders paths element-wise with shorter prefixes first.
func (p Path) Compare(q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if c := Compare(p[i], q[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	default:
		return 0
	}
}

// IsFlat reports whether the path contains no packed values at any depth.
// Flat instances (paper §3.1) contain only flat paths.
func (p Path) IsFlat() bool {
	for _, v := range p {
		if v.Kind() == KindPacked {
			return false
		}
	}
	return true
}

// PackingDepth returns the maximum packing nesting depth in the path
// (0 for flat paths).
func (p Path) PackingDepth() int {
	d := 0
	for _, v := range p {
		if pk, ok := v.(Packed); ok {
			if dd := pk.P.PackingDepth() + 1; dd > d {
				d = dd
			}
		}
	}
	return d
}

// Clone returns a copy of the path sharing its (immutable) values.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Atoms collects the distinct atomic values occurring anywhere in the
// path (including inside packed values), in sorted order.
func (p Path) Atoms() []Atom {
	set := map[Atom]struct{}{}
	p.collectAtoms(set)
	out := make([]Atom, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (p Path) collectAtoms(set map[Atom]struct{}) {
	for _, v := range p {
		switch x := v.(type) {
		case Atom:
			set[x] = struct{}{}
		case Packed:
			x.P.collectAtoms(set)
		}
	}
}

// Repeat returns the path consisting of n copies of atom a (the a^n
// strings used throughout Section 5).
func Repeat(a string, n int) Path {
	p := make(Path, n)
	for i := range p {
		p[i] = Atom(a)
	}
	return p
}
