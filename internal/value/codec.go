package value

import (
	"encoding/binary"
	"fmt"
)

// This file holds the binary codec for paths, the wire format of the
// durability layer (internal/wal): WAL records and snapshot
// checkpoints serialize tuples with AppendPath and read them back with
// ConsumePath. The encoding carries atom TEXTS, never Syms — Syms are
// dense handles into this process's symbol table and mean nothing in
// the process that replays the log — so decoding re-interns every atom
// and re-canonicalizes every packed value, yielding values that are
// structurally equal to the originals under any symbol-table state.
//
// Encoding (all integers are uvarints):
//
//	path   := count value*
//	value  := 0x00 len byte*      -- atom, UTF-8 text
//	        | 0x01 path           -- packed value <p>
//
// The format is self-delimiting, so consumers can concatenate paths
// back to back (tuples, relations) without extra framing.

// Codec tags for the two value kinds.
const (
	codecAtom   = 0x00
	codecPacked = 0x01
)

// AppendPath appends the binary encoding of p to b and returns the
// extended slice.
func AppendPath(b []byte, p Path) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	for _, v := range p {
		switch x := v.(type) {
		case Atom:
			text := x.Text()
			b = append(b, codecAtom)
			b = binary.AppendUvarint(b, uint64(len(text)))
			b = append(b, text...)
		case Packed:
			b = append(b, codecPacked)
			b = AppendPath(b, x.Unpack())
		default:
			panic(fmt.Sprintf("value: cannot encode value of type %T", v))
		}
	}
	return b
}

// ConsumePath decodes one path from the front of b, returning the path
// and the remaining bytes. Atoms are re-interned and packed values
// re-canonicalized, so the result is structurally equal to the encoded
// path regardless of the symbol-table state of the decoding process. A
// truncated or malformed encoding returns an error; the durability
// layer treats that as a corrupt record.
func ConsumePath(b []byte) (Path, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, b, fmt.Errorf("value: truncated path length")
	}
	b = b[w:]
	if n > uint64(len(b)) {
		// Each value costs at least one tag byte; an element count larger
		// than the remaining bytes cannot be satisfied. Reject it here so
		// corrupt counts fail cleanly instead of allocating wildly.
		return nil, b, fmt.Errorf("value: path of %d values in %d remaining bytes", n, len(b))
	}
	p := make(Path, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) == 0 {
			return nil, b, fmt.Errorf("value: truncated path (value %d of %d)", i+1, n)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case codecAtom:
			l, w := binary.Uvarint(b)
			if w <= 0 || l > uint64(len(b[w:])) {
				return nil, b, fmt.Errorf("value: truncated atom (value %d of %d)", i+1, n)
			}
			b = b[w:]
			p = append(p, Intern(string(b[:l])))
			b = b[l:]
		case codecPacked:
			inner, rest, err := ConsumePath(b)
			if err != nil {
				return nil, rest, fmt.Errorf("value: packed value %d of %d: %w", i+1, n, err)
			}
			p = append(p, Pack(inner))
			b = rest
		default:
			return nil, b, fmt.Errorf("value: unknown value tag 0x%02x (value %d of %d)", tag, i+1, n)
		}
	}
	return p, b, nil
}
