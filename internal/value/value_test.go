package value

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPathOfAndString(t *testing.T) {
	p := PathOf("a", "b", "a")
	if got := p.String(); got != "a.b.a" {
		t.Fatalf("String = %q, want a.b.a", got)
	}
	if Epsilon.String() != "eps" {
		t.Fatalf("empty path renders %q", Epsilon.String())
	}
}

func TestPackedString(t *testing.T) {
	// c·<a·b·a> from the paper's §2.1 example.
	p := Path{Intern("c"), Pack(PathOf("a", "b", "a"))}
	if got := p.String(); got != "c.<a.b.a>" {
		t.Fatalf("String = %q", got)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		p, q Path
		want bool
	}{
		{PathOf("a", "b"), PathOf("a", "b"), true},
		{PathOf("a", "b"), PathOf("a"), false},
		{PathOf("a"), Path{Pack(PathOf("a"))}, false},
		{Path{Pack(PathOf("a"))}, Path{Pack(PathOf("a"))}, true},
		{Epsilon, Path{}, true},
		{Path{Pack(Epsilon)}, Path{Pack(Epsilon)}, true},
		{Path{Pack(Epsilon)}, Epsilon, false},
	}
	for i, c := range cases {
		if got := c.p.Equal(c.q); got != c.want {
			t.Errorf("case %d: Equal(%v,%v) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestKeyInjective(t *testing.T) {
	// Paths crafted to collide under naive encodings.
	paths := []Path{
		PathOf("a", "b"),
		PathOf("a.b"),
		PathOf("ab"),
		PathOf("a", "", "b"),
		PathOf("a", "b", ""),
		PathOf(""),
		Epsilon,
		Path{Pack(PathOf("a", "b"))},
		Path{Pack(PathOf("a")), Intern("b")},
		Path{Intern("a"), Pack(PathOf("b"))},
		Path{Pack(Epsilon)},
		Path{Pack(Path{Pack(Epsilon)})},
		PathOf("<a>"),
		PathOf("a\\", "b"),
		PathOf("a\\.b"),
	}
	seen := map[string]Path{}
	for _, p := range paths {
		k := p.Key()
		if q, dup := seen[k]; dup && !p.Equal(q) {
			t.Fatalf("key collision: %v and %v both have key %q", p, q, k)
		}
		seen[k] = p
	}
}

func randomPath(r *rand.Rand, depth int) Path {
	n := r.Intn(4)
	p := make(Path, 0, n)
	alphabet := []string{"a", "b", "c", ".", "<", ">", "\\", ""}
	for i := 0; i < n; i++ {
		if depth > 0 && r.Intn(4) == 0 {
			p = append(p, Pack(randomPath(r, depth-1)))
		} else {
			p = append(p, Intern(alphabet[r.Intn(len(alphabet))]))
		}
	}
	return p
}

func TestKeyInjectiveQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[string]Path{}
	for i := 0; i < 20000; i++ {
		p := randomPath(r, 2)
		k := p.Key()
		if q, dup := seen[k]; dup && !p.Equal(q) {
			t.Fatalf("key collision: %v vs %v (key %q)", p, q, k)
		}
		seen[k] = p
	}
}

func TestKeyEqualAgree(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p, q := randomPath(r, 2), randomPath(r, 2)
		if (p.Key() == q.Key()) != p.Equal(q) {
			t.Fatalf("Key/Equal disagree on %v vs %v", p, q)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var paths []Path
	for i := 0; i < 200; i++ {
		paths = append(paths, randomPath(r, 2))
	}
	// Reflexive-antisymmetric-ish checks.
	for i := 0; i < 300; i++ {
		p, q := paths[r.Intn(len(paths))], paths[r.Intn(len(paths))]
		cpq, cqp := p.Compare(q), q.Compare(p)
		if cpq != -cqp {
			t.Fatalf("Compare not antisymmetric: %v vs %v -> %d, %d", p, q, cpq, cqp)
		}
		if (cpq == 0) != p.Equal(q) {
			t.Fatalf("Compare==0 iff Equal violated: %v vs %v", p, q)
		}
	}
	// Transitivity via sort: sorting must not panic and must be stable
	// under re-sorting.
	sort.Slice(paths, func(i, j int) bool { return paths[i].Compare(paths[j]) < 0 })
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Compare(paths[i]) > 0 {
			t.Fatalf("sorted order violated at %d", i)
		}
	}
}

func TestIsFlat(t *testing.T) {
	if !PathOf("a", "b").IsFlat() {
		t.Error("flat path reported as not flat")
	}
	if (Path{Intern("a"), Pack(PathOf("b"))}).IsFlat() {
		t.Error("packed path reported flat")
	}
	if !Epsilon.IsFlat() {
		t.Error("epsilon must be flat")
	}
}

func TestPackingDepth(t *testing.T) {
	if d := PathOf("a").PackingDepth(); d != 0 {
		t.Errorf("depth = %d, want 0", d)
	}
	p := Path{Pack(Path{Pack(PathOf("a"))})}
	if d := p.PackingDepth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
}

func TestConcat(t *testing.T) {
	p := Concat(PathOf("a"), Epsilon, PathOf("b", "c"))
	if !p.Equal(PathOf("a", "b", "c")) {
		t.Fatalf("Concat = %v", p)
	}
	// Concat must not alias inputs.
	q := PathOf("x")
	c := Concat(q)
	c[0] = Intern("y")
	if q[0] != Intern("x") {
		t.Fatal("Concat aliased its input")
	}
}

func TestAtoms(t *testing.T) {
	p := Path{Intern("b"), Pack(Path{Intern("a"), Pack(PathOf("c"))}), Intern("a")}
	got := p.Atoms()
	want := []Atom{Intern("a"), Intern("b"), Intern("c")}
	if len(got) != len(want) {
		t.Fatalf("Atoms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Atoms = %v, want %v", got, want)
		}
	}
}

func TestRepeat(t *testing.T) {
	if !Repeat("a", 3).Equal(PathOf("a", "a", "a")) {
		t.Fatal("Repeat broken")
	}
	if !Repeat("a", 0).Equal(Epsilon) {
		t.Fatal("Repeat(0) should be epsilon")
	}
}

func TestQuickKeyRoundtripLength(t *testing.T) {
	// Property: appending a value changes the key.
	f := func(s string, n uint8) bool {
		p := Repeat("a", int(n%8))
		q := Concat(p, Path{Intern(s)})
		return p.Key() != q.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingletonAndClone(t *testing.T) {
	p := Singleton(Intern("v"))
	if len(p) != 1 || p[0] != Intern("v") {
		t.Fatal("Singleton broken")
	}
	c := p.Clone()
	c[0] = Intern("w")
	if p[0] != Intern("v") {
		t.Fatal("Clone aliases")
	}
}
