package value

import (
	"bytes"
	"testing"
)

func TestPathCodecRoundTrip(t *testing.T) {
	cases := []Path{
		Epsilon,
		PathOf("a"),
		PathOf("a", "b", "c"),
		PathOf("", "quoted atom", "a.b", "x'y", "\x00\xff"),
		{Pack(PathOf("a", "b"))},
		{Intern("a"), Pack(Path{Intern("b"), Pack(PathOf("c", "d"))}), Intern("e")},
		{Pack(Epsilon)},
	}
	for _, p := range cases {
		enc := AppendPath(nil, p)
		got, rest, err := ConsumePath(enc)
		if err != nil {
			t.Fatalf("ConsumePath(%s): %v", p, err)
		}
		if len(rest) != 0 {
			t.Fatalf("ConsumePath(%s): %d leftover bytes", p, len(rest))
		}
		if !got.Equal(p) {
			t.Fatalf("round trip of %s yielded %s", p, got)
		}
	}
}

func TestPathCodecSelfDelimiting(t *testing.T) {
	a, b := PathOf("x", "y"), Path{Pack(PathOf("z"))}
	enc := AppendPath(AppendPath(nil, a), b)
	gotA, rest, err := ConsumePath(enc)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := ConsumePath(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !gotA.Equal(a) || !gotB.Equal(b) || len(rest) != 0 {
		t.Fatalf("concatenated decode: %s / %s (%d leftover)", gotA, gotB, len(rest))
	}
}

// TestPathCodecCarriesTextsNotHandles pins the property recovery
// depends on: the wire format stores atom texts, so a decoding process
// whose symbol table assigned different Syms still reconstructs equal
// values. A same-process test cannot truly reset the global table, so
// it checks the observable halves: the encoded bytes literally contain
// the text, and decoding goes through Intern (canonical Atom equality
// even for atoms first seen by the decoder).
func TestPathCodecCarriesTextsNotHandles(t *testing.T) {
	p := PathOf("durability_codec_text_marker")
	enc := AppendPath(nil, p)
	if !bytes.Contains(enc, []byte("durability_codec_text_marker")) {
		t.Fatalf("encoding does not carry the atom text: %q", enc)
	}
	got, _, err := ConsumePath(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].(Atom) != p[0].(Atom) {
		t.Fatal("decoded atom is not the canonical interned atom")
	}
}

func TestPathCodecRejectsCorruption(t *testing.T) {
	enc := AppendPath(nil, Path{Intern("abc"), Pack(PathOf("d"))})
	// Every strict prefix must fail: the encoding is exact, so any cut
	// lands mid-count, mid-tag or mid-content.
	for i := 0; i < len(enc); i++ {
		if _, _, err := ConsumePath(enc[:i]); err == nil {
			t.Fatalf("truncation at %d decoded silently", i)
		}
	}
	// A bad tag fails.
	bad := append([]byte{}, enc...)
	bad[1] = 0x7f
	if _, _, err := ConsumePath(bad); err == nil {
		t.Fatal("bad tag decoded silently")
	}
	// An absurd element count fails before allocating.
	if _, _, err := ConsumePath([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("absurd count decoded silently")
	}
}
