package value

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestInternCanonical checks the core interning invariant: interning
// the same text twice yields the same Sym (and thus == Atoms), and
// distinct texts yield distinct Syms.
func TestInternCanonical(t *testing.T) {
	texts := []string{"", "a", "b", "ab", "a b", "a.b", "<a>", "\\", "eps", "'q'"}
	for _, s := range texts {
		x, y := Intern(s), Intern(s)
		if x != y || x.Sym() != y.Sym() {
			t.Fatalf("Intern(%q) not canonical: %v vs %v", s, x.Sym(), y.Sym())
		}
		if x.Text() != s {
			t.Fatalf("Intern(%q).Text() = %q", s, x.Text())
		}
	}
	for i, s := range texts {
		for j, u := range texts {
			if (i == j) != (Intern(s) == Intern(u)) {
				t.Fatalf("Sym equality disagrees with text equality: %q vs %q", s, u)
			}
		}
	}
}

// TestInternQuick random-tests Sym equality against text equality.
func TestInternQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a := fmt.Sprintf("t%d", r.Intn(200))
		b := fmt.Sprintf("t%d", r.Intn(200))
		if (a == b) != (Intern(a) == Intern(b)) {
			t.Fatalf("intern equality mismatch for %q vs %q", a, b)
		}
		if (a == b) != (Intern(a).Sym() == Intern(b).Sym()) {
			t.Fatalf("sym mismatch for %q vs %q", a, b)
		}
	}
}

// TestPackHashConsed checks that structurally equal packed values are
// pointer-shared (== on Packed, which compares canonical nodes), carry
// equal cached hashes, and that distinct paths get distinct nodes.
func TestPackHashConsed(t *testing.T) {
	p := Pack(PathOf("a", "b"))
	q := Pack(PathOf("a", "b"))
	if p != q {
		t.Fatal("hash-consing broken: equal packed values are distinct nodes")
	}
	if p.Hash() != q.Hash() {
		t.Fatal("equal packed values disagree on cached hash")
	}
	if Pack(PathOf("a")) == Pack(PathOf("b")) {
		t.Fatal("distinct packed values share a node")
	}
	// Nested packing shares at every level.
	n1 := Pack(Path{Pack(PathOf("x")), Intern("y")})
	n2 := Pack(Path{Pack(PathOf("x")), Intern("y")})
	if n1 != n2 {
		t.Fatal("nested packed values not shared")
	}
	if n1.Unpack()[0].(Packed) != n2.Unpack()[0].(Packed) {
		t.Fatal("inner packed values not shared")
	}
}

// TestPackCopiesScratch checks Pack's buffer-reuse contract: the caller
// may mutate its slice after Pack returns without corrupting the
// canonical node.
func TestPackCopiesScratch(t *testing.T) {
	buf := Path{Intern("a"), Intern("b")}
	p := Pack(buf)
	buf[0] = Intern("z")
	if !p.Unpack().Equal(PathOf("a", "b")) {
		t.Fatalf("Pack aliased a caller buffer: %v", p.Unpack())
	}
}

// TestHashEqualAgree checks that the cached-hash representation keeps
// the fundamental Hash/Equal/Key contract: Equal paths hash and encode
// identically, and Key stays injective on random paths.
func TestHashEqualAgree(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	byKey := map[string]Path{}
	for i := 0; i < 20000; i++ {
		p, q := randomPath(r, 2), randomPath(r, 2)
		if p.Equal(q) {
			if p.Hash(HashSeed) != q.Hash(HashSeed) {
				t.Fatalf("equal paths hash differently: %v vs %v", p, q)
			}
			if p.Key() != q.Key() {
				t.Fatalf("equal paths key differently: %v vs %v", p, q)
			}
		}
		k := p.Key()
		if prev, dup := byKey[k]; dup && !prev.Equal(p) {
			t.Fatalf("Key not injective: %v vs %v", prev, p)
		}
		byKey[k] = p
	}
}

// TestZeroValues checks the zero Atom and zero Packed behave as the
// empty atom and <eps>.
func TestZeroValues(t *testing.T) {
	var a Atom
	if a != Intern("") || a.Text() != "" {
		t.Fatal("zero Atom is not the empty atom")
	}
	var p Packed
	if !p.Unpack().Equal(Epsilon) || !Equal(p, Pack(Epsilon)) {
		t.Fatal("zero Packed is not <eps>")
	}
	if p.String() != "<eps>" {
		t.Fatalf("zero Packed renders %q", p.String())
	}
	// Packing a path that contains the zero Packed must behave as
	// packing <eps> in that position (regression: the depth computation
	// once dereferenced the nil node).
	if q := Pack(Path{p}); q != Pack(Path{Pack(Epsilon)}) {
		t.Fatal("Pack of a path holding the zero Packed is not canonical")
	}
}

// TestInternConcurrent hammers the symbol table and the hash-consing
// table from many goroutines with overlapping working sets; run under
// -race (the CI race job does) it checks the read-mostly
// synchronization of both tables.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	atoms := make([][]Atom, goroutines)
	packs := make([][]Packed, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			atoms[g] = make([]Atom, perG)
			packs[g] = make([]Packed, perG)
			for i := 0; i < perG; i++ {
				text := fmt.Sprintf("shared-%d", r.Intn(97))
				a := Intern(text)
				if a.Text() != text {
					t.Errorf("goroutine %d: Intern(%q).Text() = %q", g, text, a.Text())
					return
				}
				_ = a.Hash()
				atoms[g][i] = a
				inner := Path{a, Intern(fmt.Sprintf("p-%d", r.Intn(13)))}
				packs[g][i] = Pack(inner)
				if !packs[g][i].Unpack().Equal(inner) {
					t.Errorf("goroutine %d: Pack lost its path", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Cross-goroutine canonicality: equal texts interned on different
	// goroutines must be the same Sym, equal paths the same node.
	index := map[string]Atom{}
	for g := range atoms {
		for _, a := range atoms[g] {
			if prev, ok := index[a.Text()]; ok && prev != a {
				t.Fatalf("text %q interned to two syms", a.Text())
			}
			index[a.Text()] = a
		}
	}
	nodes := map[string]Packed{}
	for g := range packs {
		for _, p := range packs[g] {
			k := Path{p}.Key()
			if prev, ok := nodes[k]; ok && prev != p {
				t.Fatalf("packed value %s consed to two nodes", p)
			}
			nodes[k] = p
		}
	}
}
