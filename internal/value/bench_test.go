package value

import "testing"

func benchPath(n int) Path {
	p := make(Path, 0, n)
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			p = append(p, Pack(Repeat("q", 3)))
		} else {
			p = append(p, Intern("abcdefg"[i%7:i%7+1]))
		}
	}
	return p
}

func BenchmarkKey(b *testing.B) {
	p := benchPath(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}

func BenchmarkEqual(b *testing.B) {
	p, q := benchPath(64), benchPath(64)
	for i := 0; i < b.N; i++ {
		if !p.Equal(q) {
			b.Fatal("must be equal")
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	p, q := benchPath(64), benchPath(63)
	for i := 0; i < b.N; i++ {
		if p.Compare(q) == 0 {
			b.Fatal("must differ")
		}
	}
}
