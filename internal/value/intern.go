package value

import (
	"sync"
	"sync/atomic"
)

// This file holds the interning layer behind the data model: a global
// symbol table mapping atom texts to dense Sym IDs, and a hash-consing
// table canonicalizing packed values. Both tables are append-only and
// process-global, so equality of atoms is integer comparison, equality
// of packed values is pointer comparison, and every value carries a
// precomputed structural hash. The engine's hot paths (tuple hashing,
// index probes, unification memoization) never re-walk value bytes.
//
// Concurrency: the tables are read-mostly. Readers (Text, hash and
// depth lookups) are lock-free against a published snapshot; writers
// (interning a new atom, consing a new packed node) serialize on a
// mutex and publish atomically. This matches the evaluator's
// freeze→fan-out→barrier protocol, under which workers intern and pack
// concurrently while deriving into private buffers.

// Sym is a dense identifier of an interned atom text. Two atoms are
// equal iff their Syms are equal. Syms are assigned in interning order
// and are NOT ordered like their texts; ordering goes through Text.
type Sym uint32

// symEntry is the immutable per-symbol record: the atom text and its
// precomputed structural hash.
type symEntry struct {
	text string
	hash uint64
}

// symTable is the global symbol table. entries holds the published
// snapshot: a prefix of an append-only sequence, republished after
// every append, so sym-indexed reads are lock-free.
type symTable struct {
	mu      sync.RWMutex
	ids     map[string]Sym
	entries atomic.Pointer[[]symEntry]
}

var symtab = func() *symTable {
	t := &symTable{ids: map[string]Sym{}}
	empty := []symEntry{}
	t.entries.Store(&empty)
	// Sym 0 is the empty atom, so the zero Atom renders and hashes as ''.
	t.intern("")
	return t
}()

// atomHashOf computes the structural FNV-1a hash of an atom from its
// text, once, at interning time. The 0x01 tag keeps atom hashes
// disjoint from packed-value hashes by construction.
func atomHashOf(text string) uint64 {
	h := HashByte(HashSeed, 0x01)
	for i := 0; i < len(text); i++ {
		h = HashByte(h, text[i])
	}
	return h
}

func (t *symTable) intern(text string) Atom {
	t.mu.RLock()
	id, ok := t.ids[text]
	t.mu.RUnlock()
	if ok {
		return Atom{sym: id}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[text]; ok {
		return Atom{sym: id}
	}
	entries := *t.entries.Load()
	id = Sym(len(entries))
	next := append(entries, symEntry{text: text, hash: atomHashOf(text)})
	t.entries.Store(&next)
	t.ids[text] = id
	return Atom{sym: id}
}

// entry returns the immutable record for a sym, lock-free.
func (t *symTable) entry(s Sym) *symEntry { return &(*t.entries.Load())[s] }

// Intern returns the canonical Atom for a text, interning it on first
// use. Intern is safe for concurrent use; interning the same text
// always yields the same Sym for the lifetime of the process.
func Intern(text string) Atom { return symtab.intern(text) }

// Symbols returns the number of distinct atom texts interned so far
// (including the empty atom). Monotone; useful for tests and stats.
func Symbols() int { return len(*symtab.entries.Load()) }

// packedNode is the canonical shared representation of a packed value:
// hash-consed, so structurally equal packed values are one node. path,
// hash and depth are immutable after construction.
type packedNode struct {
	path  Path
	hash  uint64
	depth int32 // PackingDepth of the packed value (≥ 1)
}

// packShards spreads the hash-consing table over independently locked
// shards so concurrent workers packing values rarely contend.
const packShards = 64

type packShard struct {
	mu sync.RWMutex
	m  map[uint64][]*packedNode
}

var packtab = func() *[packShards]packShard {
	var t [packShards]packShard
	for i := range t {
		t[i].m = map[uint64][]*packedNode{}
	}
	return &t
}()

// packedHashOf is the structural hash of the packed value <p>: the
// inner path hash bracketed by the 0x02/0x03 tags that keep <a.b>
// distinct from the flat path a.b (mirroring the Key encoding).
func packedHashOf(p Path) uint64 {
	return HashByte(p.Hash(HashByte(HashSeed, 0x02)), 0x03)
}

// Pack wraps a path into the canonical packed value <p>, hash-consing
// it: structurally equal packed values share one node carrying a
// precomputed hash and packing depth, so their equality is pointer
// comparison. The path is copied when a new node is created, so callers
// may pass (and afterwards reuse) scratch buffers. Pack is safe for
// concurrent use.
func Pack(p Path) Packed {
	h := packedHashOf(p)
	sh := &packtab[h%packShards]
	sh.mu.RLock()
	for _, n := range sh.m[h] {
		if n.path.Equal(p) {
			sh.mu.RUnlock()
			return Packed{n: n}
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, n := range sh.m[h] {
		if n.path.Equal(p) {
			return Packed{n: n}
		}
	}
	cp := make(Path, len(p))
	copy(cp, p)
	d := int32(1)
	for _, v := range cp {
		if pk, ok := v.(Packed); ok && pk.node().depth+1 > d {
			d = pk.node().depth + 1
		}
	}
	n := &packedNode{path: cp, hash: h, depth: d}
	sh.m[h] = append(sh.m[h], n)
	return Packed{n: n}
}
