package core

import (
	"sort"
	"strings"
	"testing"
)

func TestClassesCount(t *testing.T) {
	classes := Classes()
	if len(classes) != 11 {
		var labels []string
		for _, c := range classes {
			labels = append(labels, c.Label())
		}
		t.Fatalf("got %d classes, want 11 (paper §3.1):\n%s", len(classes), strings.Join(labels, "\n"))
	}
	// Member counts: {E}={I}={E,I} (3), {I,N}={E,I,N} (2),
	// {I,R}={E,I,R} (2), {I,N,R}={E,I,N,R} (2), seven singletons.
	sizes := map[int]int{}
	for _, c := range classes {
		sizes[len(c.Members)]++
	}
	if sizes[1] != 7 || sizes[2] != 3 || sizes[3] != 1 {
		t.Fatalf("class sizes = %v, want 7 singletons, 3 pairs, 1 triple", sizes)
	}
}

func TestEquivalences(t *testing.T) {
	// The equalities printed in Figure 1.
	pairs := [][2]string{
		{"E", "I"}, {"E", "EI"}, // {E} = {I} = {E,I}
		{"IN", "EIN"},
		{"IR", "EIR"},
		{"INR", "EINR"},
	}
	for _, p := range pairs {
		if !Equivalent(Frag(p[0]), Frag(p[1])) {
			t.Errorf("%s and %s must be equivalent", p[0], p[1])
		}
	}
	nonpairs := [][2]string{
		{"E", "N"}, {"N", "R"}, {"EN", "ENR"}, {"IN", "INR"},
		{"ER", "IR"}, {"EN", "IN"}, {"NR", "ENR"}, {"", "E"},
	}
	for _, p := range nonpairs {
		if Equivalent(Frag(p[0]), Frag(p[1])) {
			t.Errorf("%s and %s must not be equivalent", p[0], p[1])
		}
	}
}

// TestTheorem61Table checks the full subsumption relation over the 11
// class representatives against a hand-derived table.
func TestTheorem61Table(t *testing.T) {
	reps := []string{"", "E", "N", "R", "EN", "ER", "NR", "IN", "IR", "ENR", "INR"}
	// above[f] = the representatives (including f itself) that subsume f.
	above := map[string][]string{
		"":    {"", "E", "N", "R", "EN", "ER", "NR", "IN", "IR", "ENR", "INR"},
		"E":   {"E", "EN", "ER", "IN", "IR", "ENR", "INR"},
		"N":   {"N", "EN", "NR", "IN", "ENR", "INR"},
		"R":   {"R", "ER", "NR", "IR", "ENR", "INR"},
		"EN":  {"EN", "IN", "ENR", "INR"},
		"ER":  {"ER", "IR", "ENR", "INR"},
		"NR":  {"NR", "ENR", "INR"},
		"IN":  {"IN", "INR"},
		"IR":  {"IR", "INR"},
		"ENR": {"ENR", "INR"},
		"INR": {"INR"},
	}
	for _, f1 := range reps {
		want := map[string]bool{}
		for _, f2 := range above[f1] {
			want[f2] = true
		}
		for _, f2 := range reps {
			got := Subsumes(Frag(f1), Frag(f2))
			if got != want[f2] {
				t.Errorf("Subsumes({%s}, {%s}) = %v, want %v", f1, f2, got, want[f2])
			}
		}
	}
}

func TestSubsumptionIsPreorder(t *testing.T) {
	frags := CoreFragments()
	for _, f := range frags {
		if !Subsumes(f, f) {
			t.Errorf("not reflexive at %s", f)
		}
	}
	for _, f := range frags {
		for _, g := range frags {
			for _, h := range frags {
				if Subsumes(f, g) && Subsumes(g, h) && !Subsumes(f, h) {
					t.Fatalf("not transitive: %s <= %s <= %s", f, g, h)
				}
			}
		}
	}
}

func TestArityAndPackingIrrelevant(t *testing.T) {
	// A and P never influence subsumption: they are redundant
	// independently of the other features (Theorems 4.2 and 4.15).
	for _, f1 := range AllFragments() {
		for _, f2 := range AllFragments() {
			if Subsumes(f1, f2) != Subsumes(Core(f1), Core(f2)) {
				t.Fatalf("A/P changed subsumption: %s vs %s", f1, f2)
			}
		}
	}
}

func TestFigure1Lattice(t *testing.T) {
	l := BuildLattice()
	if len(l.Classes) != 11 {
		t.Fatalf("classes = %d", len(l.Classes))
	}
	if top := l.Top(); top < 0 || l.Classes[top].Label() != "{I, N, R} = {E, I, N, R}" {
		t.Fatalf("top = %v", l.Classes[l.Top()].Label())
	}
	if bot := l.Bottom(); bot < 0 || l.Classes[bot].Label() != "{}" {
		t.Fatalf("bottom = %v", l.Classes[l.Bottom()].Label())
	}
	// The 17 covering edges of Figure 1 (lower < upper), derived by
	// hand from Theorem 6.1.
	want := []string{
		"{} < {E} = {I} = {E, I}",
		"{} < {N}",
		"{} < {R}",
		"{E} = {I} = {E, I} < {E, N}",
		"{E} = {I} = {E, I} < {E, R}",
		"{N} < {E, N}",
		"{N} < {N, R}",
		"{R} < {E, R}",
		"{R} < {N, R}",
		"{E, N} < {E, N, R}",
		"{E, N} < {I, N} = {E, I, N}",
		"{E, R} < {E, N, R}",
		"{E, R} < {I, R} = {E, I, R}",
		"{N, R} < {E, N, R}",
		"{E, N, R} < {I, N, R} = {E, I, N, R}",
		"{I, N} = {E, I, N} < {I, N, R} = {E, I, N, R}",
		"{I, R} = {E, I, R} < {I, N, R} = {E, I, N, R}",
	}
	var got []string
	for up, downs := range l.Edges {
		for _, down := range downs {
			got = append(got, l.Classes[down].Label()+" < "+l.Classes[up].Label())
		}
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("Figure 1 edges differ:\ngot:\n%s\nwant:\n%s\n\nASCII:\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"), l.ASCII())
	}
	// Renderings exist.
	if !strings.Contains(l.DOT(), "digraph") {
		t.Fatal("DOT broken")
	}
	if !strings.Contains(l.ASCII(), "{I, N, R}") {
		t.Fatal("ASCII broken")
	}
}

func TestClassOf(t *testing.T) {
	c := ClassOf(Frag("API")) // {A,P,I} reduces to {I}, class {E}={I}={E,I}
	if c.Label() != "{E} = {I} = {E, I}" {
		t.Fatalf("ClassOf(API) = %s", c.Label())
	}
}
