// Package core implements the paper's primary contribution: the
// complete classification of Sequence Datalog fragments by expressive
// power (Sections 3 and 6). It provides
//
//   - Subsumes: the Theorem 6.1 decision procedure for F1 ≤ F2;
//   - the equivalence classes and the Figure 1 Hasse diagram;
//   - RewriteTo: a Figure 3-style planner composing the constructive
//     rewritings of internal/rewrite to move a program into a target
//     fragment.
//
// Fragments are subsets of Φ = {A, E, I, N, P, R}; queries are the flat
// unary queries of §3.1 (monadic flat instances in, a flat relation of
// arity at most one out).
package core

import (
	"fmt"
	"sort"
	"strings"

	"seqlog/internal/ast"
)

// Fragment is a set of features, reusing the ast feature letters.
type Fragment = ast.FeatureSet

// Features re-exported for convenience.
const (
	A = ast.FeatArity
	E = ast.FeatEquations
	I = ast.FeatIntermediates
	N = ast.FeatNegation
	P = ast.FeatPacking
	R = ast.FeatRecursion
)

// Frag builds a fragment from feature letters, e.g. Frag("EIN").
func Frag(letters string) Fragment {
	f, ok := ast.ParseFeatureSet(letters)
	if !ok {
		panic("core: bad fragment " + letters)
	}
	return f
}

// Subsumes decides F1 ≤ F2 — every query computable in F1 is
// computable in F2 — by the five conditions of Theorem 6.1:
//
//  1. N ∈ F1 ⇒ N ∈ F2
//  2. R ∈ F1 ⇒ R ∈ F2
//  3. E ∈ F1 ⇒ (E ∈ F2 ∨ I ∈ F2)
//  4. (I ∈ F1 ∧ R ∉ F1 ∧ N ∉ F1) ⇒ (I ∈ F2 ∨ E ∈ F2)
//  5. (I ∈ F1 ∧ (R ∈ F1 ∨ N ∈ F1)) ⇒ I ∈ F2
//
// A and P never matter: they are redundant regardless of the other
// features (Theorems 4.2 and 4.15).
func Subsumes(f1, f2 Fragment) bool {
	if f1.Has(N) && !f2.Has(N) {
		return false
	}
	if f1.Has(R) && !f2.Has(R) {
		return false
	}
	if f1.Has(E) && !(f2.Has(E) || f2.Has(I)) {
		return false
	}
	if f1.Has(I) && !f1.Has(R) && !f1.Has(N) && !(f2.Has(I) || f2.Has(E)) {
		return false
	}
	if f1.Has(I) && (f1.Has(R) || f1.Has(N)) && !f2.Has(I) {
		return false
	}
	return true
}

// Equivalent reports mutual subsumption.
func Equivalent(f1, f2 Fragment) bool { return Subsumes(f1, f2) && Subsumes(f2, f1) }

// Core drops the redundant features A and P: F and Core(F) are always
// equivalent.
func Core(f Fragment) Fragment {
	return f.Without(A).Without(P)
}

// AllFragments enumerates all 64 fragments over Φ.
func AllFragments() []Fragment {
	out := make([]Fragment, 0, 64)
	for bits := 0; bits < 64; bits++ {
		var f Fragment
		for i, feat := range []ast.Feature{A, E, I, N, P, R} {
			if bits&(1<<i) != 0 {
				f = f.With(feat)
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CoreFragments enumerates the 16 fragments over {E, I, N, R}.
func CoreFragments() []Fragment {
	seen := map[Fragment]bool{}
	var out []Fragment
	for _, f := range AllFragments() {
		c := Core(f)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Class is an equivalence class of fragments under mutual subsumption.
type Class struct {
	// Members are the core fragments in the class, sorted.
	Members []Fragment
	// Representative is the smallest member.
	Representative Fragment
}

// Label renders the class like the paper's Figure 1 nodes, e.g.
// "{I, N} = {E, I, N}".
func (c Class) Label() string {
	parts := make([]string, len(c.Members))
	for i, m := range c.Members {
		parts[i] = m.String()
	}
	return strings.Join(parts, " = ")
}

// Classes partitions the 16 core fragments into equivalence classes
// (the paper finds exactly 11).
func Classes() []Class {
	frags := CoreFragments()
	assigned := map[Fragment]bool{}
	var out []Class
	for _, f := range frags {
		if assigned[f] {
			continue
		}
		var cls Class
		for _, g := range frags {
			if Equivalent(f, g) {
				cls.Members = append(cls.Members, g)
				assigned[g] = true
			}
		}
		cls.Representative = cls.Members[0]
		out = append(out, cls)
	}
	return out
}

// ClassOf returns the equivalence class of a fragment.
func ClassOf(f Fragment) Class {
	c := Core(f)
	for _, cls := range Classes() {
		for _, m := range cls.Members {
			if m == c {
				return cls
			}
		}
	}
	panic(fmt.Sprintf("core: fragment %s has no class", f))
}

// Lattice is the Hasse diagram of Figure 1: the covering relation over
// the equivalence classes.
type Lattice struct {
	Classes []Class
	// Edges[i] lists the indices of classes covered by class i (i.e.
	// an ascending edge from Edges[i][k] up to i).
	Edges map[int][]int
}

// BuildLattice computes the Figure 1 diagram from the decision
// procedure.
func BuildLattice() *Lattice {
	classes := Classes()
	below := func(i, j int) bool { // strictly below
		return Subsumes(classes[i].Representative, classes[j].Representative) &&
			!Subsumes(classes[j].Representative, classes[i].Representative)
	}
	edges := map[int][]int{}
	for i := range classes {
		for j := range classes {
			if !below(j, i) {
				continue
			}
			// Covering: no k strictly between.
			cover := true
			for k := range classes {
				if k != i && k != j && below(j, k) && below(k, i) {
					cover = false
					break
				}
			}
			if cover {
				edges[i] = append(edges[i], j)
			}
		}
	}
	return &Lattice{Classes: classes, Edges: edges}
}

// Top returns the index of the maximum class ({I, N, R}).
func (l *Lattice) Top() int {
	for i, c := range l.Classes {
		isTop := true
		for j := range l.Classes {
			if !Subsumes(l.Classes[j].Representative, c.Representative) {
				isTop = false
				break
			}
		}
		if isTop {
			return i
		}
	}
	return -1
}

// Bottom returns the index of the minimum class ({}).
func (l *Lattice) Bottom() int {
	for i, c := range l.Classes {
		isBot := true
		for j := range l.Classes {
			if !Subsumes(c.Representative, l.Classes[j].Representative) {
				isBot = false
				break
			}
		}
		if isBot {
			return i
		}
	}
	return -1
}

// DOT renders the diagram in Graphviz format.
func (l *Lattice) DOT() string {
	var b strings.Builder
	b.WriteString("digraph figure1 {\n  rankdir=BT;\n  node [shape=plaintext, fontname=\"monospace\"];\n")
	for i, c := range l.Classes {
		fmt.Fprintf(&b, "  c%d [label=%q];\n", i, c.Label())
	}
	for up, downs := range l.Edges {
		for _, down := range downs {
			fmt.Fprintf(&b, "  c%d -> c%d;\n", down, up)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the diagram by levels, top first, as in Figure 1.
func (l *Lattice) ASCII() string {
	// Level = longest ascending chain below the class.
	depth := make([]int, len(l.Classes))
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depth[i] != 0 {
			return depth[i]
		}
		d := 1
		for _, j := range l.Edges[i] {
			if dd := depthOf(j) + 1; dd > d {
				d = dd
			}
		}
		depth[i] = d
		return d
	}
	maxD := 0
	for i := range l.Classes {
		if d := depthOf(i); d > maxD {
			maxD = d
		}
	}
	var b strings.Builder
	for d := maxD; d >= 1; d-- {
		var labels []string
		for i, c := range l.Classes {
			if depth[i] == d {
				labels = append(labels, c.Label())
			}
		}
		sort.Strings(labels)
		fmt.Fprintf(&b, "level %2d:  %s\n", maxD-d+1, strings.Join(labels, "    "))
	}
	b.WriteString("\nascending covers (lower < upper):\n")
	type edge struct{ lo, hi string }
	var es []edge
	for up, downs := range l.Edges {
		for _, down := range downs {
			es = append(es, edge{l.Classes[down].Label(), l.Classes[up].Label()})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lo != es[j].lo {
			return es[i].lo < es[j].lo
		}
		return es[i].hi < es[j].hi
	})
	for _, e := range es {
		fmt.Fprintf(&b, "  %s < %s\n", e.lo, e.hi)
	}
	return b.String()
}
