package core

import (
	"math/rand"
	"strings"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func mustParse(t *testing.T, src string) ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return p
}

func randomInstances(seed int64, count int, rels []string, alphabet []string, maxPaths, maxLen int) []*instance.Instance {
	r := rand.New(rand.NewSource(seed))
	var out []*instance.Instance
	for i := 0; i < count; i++ {
		inst := instance.New()
		for _, rel := range rels {
			n := r.Intn(maxPaths + 1)
			for j := 0; j < n; j++ {
				l := r.Intn(maxLen + 1)
				p := make(value.Path, l)
				for k := range p {
					p[k] = value.Intern(alphabet[r.Intn(len(alphabet))])
				}
				inst.AddPath(rel, p)
			}
			inst.Ensure(rel, 1)
		}
		out = append(out, inst)
	}
	return out
}

func checkEquivalent(t *testing.T, p1, p2 ast.Program, output string, instances []*instance.Instance) {
	t.Helper()
	for i, edb := range instances {
		r1, err1 := eval.Query(p1, edb, output, eval.Limits{})
		r2, err2 := eval.Query(p2, edb, output, eval.Limits{})
		if err1 != nil || err2 != nil {
			t.Fatalf("instance %d: %v / %v", i, err1, err2)
		}
		if !r1.Equal(r2) {
			t.Fatalf("instance %d: outputs differ\noriginal: %v\nplanned: %v\nprogram:\n%s",
				i, r1.Sorted(), r2.Sorted(), p2)
		}
	}
}

func TestRewriteToEquationIntoRecursionFragment(t *testing.T) {
	// Example 3.1: the {E} only-a's program into the {A,I,R} fragment.
	prog := mustParse(t, `S($x) :- R($x), a.$x = $x.a.`)
	res, err := RewriteTo(prog, "S", Frag("AIR"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact: %s (%s)", res.Achieved, res.Note)
	}
	if res.Achieved.Has(E) {
		t.Fatalf("achieved %s still has E", res.Achieved)
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(1, 15, []string{"R"}, []string{"a", "b"}, 5, 6))
}

func TestRewriteToIOnly(t *testing.T) {
	// {E} -> {I}: equations fold into auxiliary predicates, then arity
	// is eliminated.
	prog := mustParse(t, `S($x) :- R($x), a.$x = $x.a.`)
	res, err := RewriteTo(prog, "S", Frag("I"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact: %s (%s)", res.Achieved, res.Note)
	}
	if res.Achieved != Frag("I") && res.Achieved != Frag("") {
		t.Fatalf("achieved %s", res.Achieved)
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(2, 15, []string{"R"}, []string{"a", "b"}, 5, 6))
}

func TestRewriteToEOnlyFoldsIntermediates(t *testing.T) {
	// {I} (via an auxiliary predicate) -> {E}: Theorem 4.16 folding.
	prog := mustParse(t, `
T(a.$x, $x) :- R($x).
S($x) :- T($x.a, $x).`)
	res, err := RewriteTo(prog, "S", Frag("E"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact: %s (%s)", res.Achieved, res.Note)
	}
	if res.Achieved.Has(I) || res.Achieved.Has(A) {
		t.Fatalf("achieved %s", res.Achieved)
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(3, 15, []string{"R"}, []string{"a", "b"}, 5, 6))
}

func TestRewriteToDropArity(t *testing.T) {
	prog := mustParse(t, `
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`)
	res, err := RewriteTo(prog, "S", Frag("IR"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Achieved.Has(A) {
		t.Fatalf("achieved %s exact=%v", res.Achieved, res.Exact)
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(4, 12, []string{"R"}, []string{"a", "b", "0", "1"}, 4, 5))
}

func TestRewriteToPackingElimination(t *testing.T) {
	prog := mustParse(t, `
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.`)
	res, err := RewriteTo(prog, "A", Frag("AEIN"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("not exact: %s (%s)", res.Achieved, res.Note)
	}
	if res.Achieved.Has(P) {
		t.Fatalf("achieved %s still has P", res.Achieved)
	}
	instances := randomInstances(5, 10, []string{"R", "S"}, []string{"a", "b"}, 4, 4)
	for i, edb := range instances {
		b1, err1 := eval.Holds(prog, edb, "A", eval.Limits{})
		b2, err2 := eval.Holds(res.Program, edb, "A", eval.Limits{})
		if err1 != nil || err2 != nil || b1 != b2 {
			t.Fatalf("instance %d: %v/%v %v/%v", i, b1, b2, err1, err2)
		}
	}
}

func TestRewriteToRefusals(t *testing.T) {
	cases := []struct {
		src    string
		output string
		target string
	}{
		// E primitive without I (Theorem 5.7).
		{`S($x) :- R($x), a.$x = $x.a.`, "S", ""},
		{`S($x) :- R($x), a.$x = $x.a.`, "S", "NR"},
		// N primitive.
		{`S($x) :- R($x), !Q($x).`, "S", "EIR"},
		// R primitive (Theorem 5.3).
		{`T($x) :- R($x).
T($x.a) :- T($x).
S($x) :- T($x).`, "S", "EIN"},
		// I primitive with N (Theorem 5.5).
		{`W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`, "S", "EN"},
	}
	for i, c := range cases {
		prog := mustParse(t, c.src)
		if _, err := RewriteTo(prog, c.output, Frag(c.target)); err == nil {
			t.Errorf("case %d: rewrite into {%s} must be refused", i, c.target)
		} else if !strings.Contains(err.Error(), "condition") {
			t.Errorf("case %d: error lacks explanation: %v", i, err)
		}
	}
}

func TestRewriteToGapDocumented(t *testing.T) {
	// {P,R} -> {R}: Theorem 6.1 says yes ({P,R} ≡ {R}), but the
	// constructive doubling pipeline routes through I; the planner must
	// report inexactness rather than fail, and stay equivalent. The
	// program's single IDB relation is recursive with a packed body
	// pattern (which never matches on flat instances).
	prog := mustParse(t, `
S($x) :- R($x).
S($y) :- S(<$y>.$z).`)
	res, err := RewriteTo(prog, "S", Frag("AR"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatalf("expected a documented gap, got exact result %s", res.Achieved)
	}
	if res.Note == "" {
		t.Fatal("gap must be explained in Note")
	}
	if res.Achieved.Has(P) {
		t.Fatal("packing must still be eliminated")
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(6, 6, []string{"R"}, []string{"a", "b"}, 3, 4))
}

func TestRewriteToNoop(t *testing.T) {
	prog := mustParse(t, `S($x) :- R($x).`)
	res, err := RewriteTo(prog, "S", Frag("EINR"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Steps) != 1 { // prune only
		t.Fatalf("steps = %v", res.Steps)
	}
}

func TestPruneKeepsNegatedDependencies(t *testing.T) {
	prog := mustParse(t, `
B($x) :- R($x.$x).
---
S($x) :- R($x), !B($x).`)
	res, err := RewriteTo(prog, "S", Frag("EINR"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules()) != 2 {
		t.Fatalf("pruning dropped a needed rule:\n%s", res.Program)
	}
	checkEquivalent(t, prog, res.Program, "S",
		randomInstances(7, 10, []string{"R"}, []string{"a", "b"}, 4, 4))
}

// TestRewriteToCarriesJoinPlan checks that fragment-aware rewrites are
// threaded through the indexed evaluator's planner: every rewritten
// program carries the join plan the engine will execute.
func TestRewriteToCarriesJoinPlan(t *testing.T) {
	prog := mustParse(t, `S($x) :- R($x), a.$x = $x.a.`)
	for _, target := range []Fragment{Frag("EINR"), Frag("AIR"), Frag("I")} {
		res, err := RewriteTo(prog, "S", target)
		if err != nil {
			t.Fatal(err)
		}
		// One base-plan line per rule; indented lines are the rule's
		// delta-hoisted variants.
		base := 0
		for _, line := range res.JoinPlan {
			if !strings.HasPrefix(line, " ") {
				base++
			}
		}
		if base != len(res.Program.Rules()) {
			t.Fatalf("target %s: %d base join-plan lines for %d rules:\n%s",
				target, base, len(res.Program.Rules()), strings.Join(res.JoinPlan, "\n"))
		}
		for _, line := range res.JoinPlan {
			if !strings.Contains(line, "[") {
				t.Fatalf("target %s: join-plan line lacks an access path: %s", target, line)
			}
		}
	}
}
