package core

import (
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/rewrite"
)

// PlanResult is the outcome of RewriteTo.
type PlanResult struct {
	// Program is the rewritten program.
	Program ast.Program
	// Achieved is the fragment the rewritten program actually uses.
	Achieved Fragment
	// Steps names the transformation passes applied, in order.
	Steps []string
	// JoinPlan describes, rule by rule, the join plan the indexed
	// evaluator chooses for the rewritten program (predicate order and
	// access paths; indented lines are the rule's delta-hoisted
	// maintenance variants), so fragment-aware rewrites surface the
	// same execution machinery as direct evaluation. Empty when the
	// rewritten program fails to compile (recorded in Note).
	JoinPlan []string
	// Exact reports whether Achieved ⊆ target. When false, the
	// subsumption holds by Theorem 6.1 but the constructive pipeline
	// could not reach the exact target (see Note); this arises for
	// recursive packing programs targeting I-free fragments, where the
	// paper's Theorem 4.15 proof sketch likewise routes through
	// intermediate predicates.
	Exact bool
	// Note explains an inexact result.
	Note string
}

// RewriteTo moves a program into the target fragment, following the
// Figure 3 composition of the paper's redundancy results: packing
// first (Theorem 4.15), then equations (Theorem 4.7), then
// intermediate predicates (Theorem 4.16), then arity (Theorem 4.2),
// finally pruning auxiliary relations that are not needed for the
// output. It fails when Theorem 6.1 says the target cannot express the
// source fragment's queries.
func RewriteTo(p ast.Program, output string, target Fragment) (PlanResult, error) {
	src := p.Features()
	if !Subsumes(src, target) {
		return PlanResult{}, fmt.Errorf("core: %s is not subsumed by %s (%s)", src, target, whyNotSubsumed(src, target))
	}
	res := PlanResult{Program: p.Clone(), Exact: true}
	step := func(name string, f func(ast.Program) (ast.Program, error)) error {
		q, err := f(res.Program)
		if err != nil {
			return err
		}
		res.Program = q
		res.Steps = append(res.Steps, name)
		return nil
	}

	if res.Program.Features().Has(P) && !target.Has(P) {
		if err := step("eliminate-packing (Thm 4.15)", func(q ast.Program) (ast.Program, error) {
			return rewrite.EliminatePacking(q, output)
		}); err != nil {
			return PlanResult{}, err
		}
	}
	if res.Program.Features().Has(E) && !target.Has(E) {
		if err := step("eliminate-equations (Thm 4.7)", func(q ast.Program) (ast.Program, error) {
			return rewrite.EliminateEquations(q)
		}); err != nil {
			return PlanResult{}, err
		}
	}
	if res.Program.Features().Has(I) && !target.Has(I) {
		q, err := rewrite.EliminateIntermediates(res.Program, output)
		if err != nil {
			// Constructive gap: the decision procedure says F1 ≤ F2,
			// but folding needs E present and N, R absent.
			res.Exact = false
			res.Note = fmt.Sprintf("intermediate predicates could not be folded away constructively: %v", err)
		} else {
			res.Program = q
			res.Steps = append(res.Steps, "eliminate-intermediates (Thm 4.16)")
		}
	}
	if res.Program.Features().Has(A) && !target.Has(A) {
		if err := step("eliminate-arity (Thm 4.2)", func(q ast.Program) (ast.Program, error) {
			return rewrite.EliminateArity(q, rewrite.DefaultArityMarkers)
		}); err != nil {
			return PlanResult{}, err
		}
	}
	res.Program = rewrite.PruneUnreachable(res.Program, output)
	res.Steps = append(res.Steps, "prune-unreachable")
	res.Achieved = res.Program.Features()
	if jp, err := eval.Explain(res.Program); err == nil {
		res.JoinPlan = jp
	} else if res.Note == "" {
		res.Note = fmt.Sprintf("rewritten program does not compile for evaluation: %v", err)
	}
	if !res.Achieved.SubsetOf(target) {
		res.Exact = false
		if res.Note == "" {
			res.Note = fmt.Sprintf("achieved fragment %s exceeds target %s", res.Achieved, target)
		}
	}
	return res, nil
}

// whyNotSubsumed names the first violated Theorem 6.1 condition.
func whyNotSubsumed(f1, f2 Fragment) string {
	switch {
	case f1.Has(N) && !f2.Has(N):
		return "condition 1: negation is primitive"
	case f1.Has(R) && !f2.Has(R):
		return "condition 2: recursion is primitive (Theorem 5.3)"
	case f1.Has(E) && !(f2.Has(E) || f2.Has(I)):
		return "condition 3: E is primitive in the absence of I (Theorem 5.7)"
	case f1.Has(I) && !f1.Has(R) && !f1.Has(N) && !(f2.Has(I) || f2.Has(E)):
		return "condition 4: I without N,R still needs I or E"
	case f1.Has(I) && (f1.Has(R) || f1.Has(N)) && !f2.Has(I):
		return "condition 5: I is primitive in the presence of N or R (Theorems 5.5, 5.6)"
	default:
		return "unknown"
	}
}
