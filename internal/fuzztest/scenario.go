// Package fuzztest pins the incremental maintenance machinery against
// the from-scratch semantics with differential fuzzers. This file
// holds the shared scenario generator — random stratified programs
// (recursion, joins, negation, bound-suffix patterns) with random
// assert/retract interleavings — as ordinary exported code, so other
// packages' differential suites (the WAL crash-recovery fuzzer in
// internal/wal) replay the same histories the maintenance fuzzer is
// pinned against.
package fuzztest

import (
	"fmt"
	"math/rand"
	"strings"

	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// Fact is one EDB tuple of a scenario; all generated relations are
// unary relations of paths.
type Fact struct {
	Rel  string
	Path value.Path
}

func (f Fact) String() string { return fmt.Sprintf("%s(%s).", f.Rel, f.Path) }

// Step is one operation of an interleaving: a batch of facts asserted
// into or retracted from the EDB.
type Step struct {
	Retract bool
	Facts   []Fact
}

func (s Step) String() string {
	verb := "assert"
	if s.Retract {
		verb = "retract"
	}
	parts := make([]string, len(s.Facts))
	for i, f := range s.Facts {
		parts[i] = f.String()
	}
	return verb + " " + strings.Join(parts, " ")
}

// Scenario is one generated fuzz case: a program, an interleaving of
// assert/retract batches, and the engines' worker count.
type Scenario struct {
	Src     string
	Steps   []Step
	Workers int
}

// History renders steps [0, i] of the scenario, one per line, for
// failure messages.
func (sc Scenario) History(i int) string {
	var b strings.Builder
	for j := 0; j <= i && j < len(sc.Steps); j++ {
		fmt.Fprintf(&b, "  %2d: %s\n", j, sc.Steps[j])
	}
	return b.String()
}

// GenScenario draws a random scenario. Two program families alternate:
// auto-stratified templates covering the classic maintenance paths
// (recursion, multi-way joins with exact/prefix/suffix probes, negation
// over earlier strata), and explicit-strata templates covering the
// shapes auto-stratification never produces — a head shared by two
// strata with a positive forward reference, and mutually recursive
// sibling relations inside one stratum (the shapes the stratum-exact
// derivation-stamp views are accountable for). Every rule is
// non-growing (heads only rearrange bound atom variables), so all
// fixpoints are finite.
func GenScenario(r *rand.Rand) Scenario {
	atoms := []string{"a", "b", "c", "d", "e"}[:3+r.Intn(3)]

	var src string
	if r.Float64() < 0.35 {
		src = genExplicitStrata(r)
	} else {
		src = genAutoStratified(r)
	}

	randFact := func() Fact {
		rel := "E1"
		if r.Intn(2) == 1 {
			rel = "E2"
		}
		p := make(value.Path, 1+r.Intn(3))
		for i := range p {
			p[i] = value.Intern(atoms[r.Intn(len(atoms))])
		}
		return Fact{Rel: rel, Path: p}
	}

	var steps []Step
	var present []Fact // grows only; retracting an absent fact is a no-op
	n := 8 + r.Intn(7)
	for i := 0; i < n; i++ {
		st := Step{Retract: i > 0 && r.Float64() < 0.4}
		for j := 0; j < 1+r.Intn(3); j++ {
			if st.Retract && len(present) > 0 && r.Float64() < 0.7 {
				st.Facts = append(st.Facts, present[r.Intn(len(present))])
			} else {
				f := randFact()
				st.Facts = append(st.Facts, f)
				if !st.Retract {
					present = append(present, f)
				}
			}
		}
		steps = append(steps, st)
	}

	return Scenario{
		Src:     src,
		Steps:   steps,
		Workers: []int{1, 2, 4}[r.Intn(3)],
	}
}

// genAutoStratified assembles a program without explicit strata (the
// parser auto-stratifies): the unary transitive closure (whose
// recursive atom is served by a ground-suffix probe under deltas on the
// edge relation), multi-way joins with exact and prefix probes, a
// bound-suffix join, a ground-constant suffix pattern, and negation
// over earlier strata (the overdelete/rederive path of Assert and the
// insertion path of Retract).
func genAutoStratified(r *rand.Rand) string {
	var rules []string
	rules = append(rules,
		"C(@x.@y) :- E1(@x.@y).",
		"C(@x.@z) :- C(@x.@y), E1(@y.@z).")
	copyT := r.Float64() < 0.6
	if copyT {
		rules = append(rules, "D($x) :- E2($x).")
	}
	joinT := r.Float64() < 0.6
	if joinT {
		rules = append(rules, "J(@x.@z) :- E1(@x.@y), E2(@y.@z).")
	}
	if r.Float64() < 0.6 {
		// Bound-suffix join: under a delta on E1, E2 is probed by the
		// ground suffix @y; under a delta on E2, E1 likewise.
		rules = append(rules, "S(@x.@y) :- E1(@x.@y), E2(@z.@y).")
	}
	if r.Float64() < 0.4 {
		// Ground-constant suffix: the base plan itself uses the suffix
		// index (no variable need be bound first).
		rules = append(rules, "H(@x) :- E1(@x.a).")
	}
	if r.Float64() < 0.5 {
		rules = append(rules, "N($x) :- E2($x), !C($x).")
	}
	if copyT && joinT && r.Float64() < 0.5 {
		rules = append(rules, "M($x) :- D($x), !J($x).")
	}
	return strings.Join(rules, "\n") + "\n"
}

// genExplicitStrata assembles a program with explicit `---` strata
// around the shapes derivation stamps exist for. Stratum 1 defines F
// and a pair of mutually recursive siblings RA/RB; stratum 2 reads F
// (a positive forward reference, since stratum 3 defines F again) and
// optionally negates RA; stratum 3 adds the second F rule and
// optionally a join over both earlier strata. The maintained engines
// must keep stratum 2's reads of F bounded to stratum 1's facts —
// exactly what Prepared.Eval's stratum-ordered pass computes.
func genExplicitStrata(r *rand.Rand) string {
	s1 := []string{
		"F(@x) :- E1(@x.@y).",
		"RA(@x.@y) :- E1(@x.@y).",
		"RB(@x.@z) :- RA(@x.@y), E2(@y.@z).",
		"RA(@x.@z) :- RB(@x.@y), E1(@y.@z).",
	}
	s2 := []string{"Q(@y) :- F(@x), E2(@x.@y)."}
	if r.Float64() < 0.5 {
		s2 = append(s2, "G($x) :- E2($x), !RA($x).")
	}
	s3 := []string{"F(@x) :- E2(@y.@x)."}
	if r.Float64() < 0.5 {
		s3 = append(s3, "P(@x) :- Q(@x), RB(@x.@y).")
	}
	join := strings.Join
	return join(s1, "\n") + "\n---\n" + join(s2, "\n") + "\n---\n" + join(s3, "\n") + "\n"
}

// Shadow is the reference copy of the EDB, maintained by replaying the
// interleaving directly; EDB() materializes it as a fresh instance for
// a from-scratch evaluation.
type Shadow struct {
	facts map[string]Fact
}

// NewShadow returns an empty shadow EDB.
func NewShadow() *Shadow { return &Shadow{facts: map[string]Fact{}} }

func (s *Shadow) key(f Fact) string { return f.Rel + "\x00" + f.Path.String() }

// Apply replays one step into the shadow.
func (s *Shadow) Apply(st Step) {
	for _, f := range st.Facts {
		if st.Retract {
			delete(s.facts, s.key(f))
		} else {
			s.facts[s.key(f)] = f
		}
	}
}

// EDB materializes the shadow as a fresh instance. The E1/E2 relations
// are always present (possibly empty), mirroring a long-lived engine
// whose relations never disappear.
func (s *Shadow) EDB() *instance.Instance {
	inst := instance.New()
	inst.Ensure("E1", 1)
	inst.Ensure("E2", 1)
	for _, f := range s.facts {
		inst.AddPath(f.Rel, f.Path)
	}
	return inst
}

// Batch materializes one step's facts as an engine delta.
func Batch(facts []Fact) *instance.Instance {
	inst := instance.New()
	for _, f := range facts {
		inst.AddPath(f.Rel, f.Path)
	}
	return inst
}
