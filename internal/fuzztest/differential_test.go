// The differential maintenance fuzzer: random stratified programs
// (see scenario.go), random assert/retract interleavings, and after
// every step three independently computed answers that must agree
// tuple for tuple —
//
//   - an engine maintained incrementally with delta-hoisted plan
//     variants (eval.DeltaVariants on),
//   - an engine maintained incrementally with the base plans
//     (variants off),
//   - Prepared.Eval from scratch over a shadow copy of the EDB.
//
// Any divergence — a missed overdeletion, a rederivation the pruner
// wrongly kept, a suffix-index probe returning a stale position — is
// reported with the full program, the step history, and the first
// differing fact.
package fuzztest

import (
	"math/rand"
	"testing"

	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
)

// runSeed replays one scenario, checking after every step that the
// variant-maintained engine, the base-plan engine, and the
// from-scratch evaluation agree exactly.
func runSeed(t *testing.T, seed int64) {
	t.Helper()
	sc := GenScenario(rand.New(rand.NewSource(seed)))

	prog, err := parser.ParseProgram(sc.Src)
	if err != nil {
		t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, sc.Src)
	}
	prep, err := eval.Compile(prog)
	if err != nil {
		t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, sc.Src)
	}
	limits := eval.Limits{Parallelism: sc.Workers}

	// Engines capture eval.DeltaVariants at construction, so toggling
	// the global here pins both regimes for the whole interleaving.
	defer func(old bool) { eval.DeltaVariants = old }(eval.DeltaVariants)
	eval.DeltaVariants = true
	engOn, err := eval.NewEngine(prep, nil, limits)
	if err != nil {
		t.Fatalf("seed %d: NewEngine(variants): %v", seed, err)
	}
	eval.DeltaVariants = false
	engOff, err := eval.NewEngine(prep, nil, limits)
	if err != nil {
		t.Fatalf("seed %d: NewEngine(base): %v", seed, err)
	}

	sh := NewShadow()
	for i, st := range sc.Steps {
		apply := func(e *eval.Engine) error {
			if st.Retract {
				_, err := e.Retract(Batch(st.Facts))
				return err
			}
			_, err := e.Assert(Batch(st.Facts))
			return err
		}
		if err := apply(engOn); err != nil {
			t.Fatalf("seed %d step %d (variants, workers=%d): %v\n%s%s", seed, i, sc.Workers, err, sc.Src, sc.History(i))
		}
		if err := apply(engOff); err != nil {
			t.Fatalf("seed %d step %d (base, workers=%d): %v\n%s%s", seed, i, sc.Workers, err, sc.Src, sc.History(i))
		}
		sh.Apply(st)

		want, err := prep.Eval(sh.EDB(), limits)
		if err != nil {
			t.Fatalf("seed %d step %d: from-scratch Eval: %v\n%s%s", seed, i, err, sc.Src, sc.History(i))
		}
		snapOn, err := engOn.Snapshot()
		if err != nil {
			t.Fatalf("seed %d step %d: Snapshot(variants): %v", seed, i, err)
		}
		snapOff, err := engOff.Snapshot()
		if err != nil {
			t.Fatalf("seed %d step %d: Snapshot(base): %v", seed, i, err)
		}
		if d := instance.Diff(snapOn, want); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): variant engine diverges from scratch: %s\n%s%s",
				seed, i, sc.Workers, d, sc.Src, sc.History(i))
		}
		if d := instance.Diff(snapOff, want); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): base engine diverges from scratch: %s\n%s%s",
				seed, i, sc.Workers, d, sc.Src, sc.History(i))
		}
		if d := instance.Diff(snapOn, snapOff); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): variant and base engines diverge: %s\n%s%s",
				seed, i, sc.Workers, d, sc.Src, sc.History(i))
		}
	}
}

// TestDifferentialMaintenance replays a fixed battery of seeded
// interleavings; every maintenance bug this package has caught becomes
// reproducible by its seed.
func TestDifferentialMaintenance(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		runSeed(t, int64(seed))
	}
}

// FuzzDifferentialMaintenance exposes the same differential check to
// the native fuzzer: go test -fuzz=FuzzDifferentialMaintenance
// ./internal/fuzztest explores seeds beyond the fixed battery.
func FuzzDifferentialMaintenance(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runSeed(t, seed)
	})
}
