// Package fuzztest pins the incremental maintenance machinery against
// the from-scratch semantics with a differential fuzzer: random
// stratified programs (recursion, joins, negation, bound-suffix
// patterns), random assert/retract interleavings, and after every step
// three independently computed answers that must agree tuple for
// tuple —
//
//   - an engine maintained incrementally with delta-hoisted plan
//     variants (eval.DeltaVariants on),
//   - an engine maintained incrementally with the base plans
//     (variants off),
//   - Prepared.Eval from scratch over a shadow copy of the EDB.
//
// Any divergence — a missed overdeletion, a rederivation the pruner
// wrongly kept, a suffix-index probe returning a stale position — is
// reported with the full program, the step history, and the first
// differing fact.
package fuzztest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

// fact is one EDB tuple of a scenario; all generated relations are
// unary relations of paths.
type fact struct {
	rel  string
	path value.Path
}

func (f fact) String() string { return fmt.Sprintf("%s(%s).", f.rel, f.path) }

// step is one operation of an interleaving: a batch of facts asserted
// into or retracted from the EDB.
type step struct {
	retract bool
	facts   []fact
}

func (s step) String() string {
	verb := "assert"
	if s.retract {
		verb = "retract"
	}
	parts := make([]string, len(s.facts))
	for i, f := range s.facts {
		parts[i] = f.String()
	}
	return verb + " " + strings.Join(parts, " ")
}

// scenario is one generated fuzz case: a program, an interleaving of
// assert/retract batches, and the engines' worker count.
type scenario struct {
	src     string
	steps   []step
	workers int
}

// genScenario draws a random scenario. The program is assembled from
// templates chosen to cover the maintenance paths that matter:
// recursion (the unary transitive closure, whose recursive atom is
// served by a ground-suffix probe under deltas on the edge relation),
// multi-way joins with exact and prefix probes, a bound-suffix join,
// a ground-constant suffix pattern, and negation over earlier strata
// (the overdelete/rederive path of Assert and the insertion path of
// Retract). Rules are written without explicit strata so the parser
// auto-stratifies; every rule is non-growing (atom variables only in
// heads), so all fixpoints are finite.
func genScenario(r *rand.Rand) scenario {
	atoms := []string{"a", "b", "c", "d", "e"}[:3+r.Intn(3)]

	var rules []string
	rules = append(rules,
		"C(@x.@y) :- E1(@x.@y).",
		"C(@x.@z) :- C(@x.@y), E1(@y.@z).")
	copyT := r.Float64() < 0.6
	if copyT {
		rules = append(rules, "D($x) :- E2($x).")
	}
	joinT := r.Float64() < 0.6
	if joinT {
		rules = append(rules, "J(@x.@z) :- E1(@x.@y), E2(@y.@z).")
	}
	if r.Float64() < 0.6 {
		// Bound-suffix join: under a delta on E1, E2 is probed by the
		// ground suffix @y; under a delta on E2, E1 likewise.
		rules = append(rules, "S(@x.@y) :- E1(@x.@y), E2(@z.@y).")
	}
	if r.Float64() < 0.4 {
		// Ground-constant suffix: the base plan itself uses the suffix
		// index (no variable need be bound first).
		rules = append(rules, "H(@x) :- E1(@x.a).")
	}
	if r.Float64() < 0.5 {
		rules = append(rules, "N($x) :- E2($x), !C($x).")
	}
	if copyT && joinT && r.Float64() < 0.5 {
		rules = append(rules, "M($x) :- D($x), !J($x).")
	}

	randFact := func() fact {
		rel := "E1"
		if r.Intn(2) == 1 {
			rel = "E2"
		}
		p := make(value.Path, 1+r.Intn(3))
		for i := range p {
			p[i] = value.Intern(atoms[r.Intn(len(atoms))])
		}
		return fact{rel: rel, path: p}
	}

	var steps []step
	var present []fact // grows only; retracting an absent fact is a no-op
	n := 8 + r.Intn(7)
	for i := 0; i < n; i++ {
		st := step{retract: i > 0 && r.Float64() < 0.4}
		for j := 0; j < 1+r.Intn(3); j++ {
			if st.retract && len(present) > 0 && r.Float64() < 0.7 {
				st.facts = append(st.facts, present[r.Intn(len(present))])
			} else {
				f := randFact()
				st.facts = append(st.facts, f)
				if !st.retract {
					present = append(present, f)
				}
			}
		}
		steps = append(steps, st)
	}

	return scenario{
		src:     strings.Join(rules, "\n") + "\n",
		steps:   steps,
		workers: []int{1, 2, 4}[r.Intn(3)],
	}
}

// shadow is the reference copy of the EDB, maintained by replaying the
// interleaving directly; edb() materializes it as a fresh instance for
// the from-scratch evaluation.
type shadow struct {
	facts map[string]fact
}

func newShadow() *shadow { return &shadow{facts: map[string]fact{}} }

func (s *shadow) key(f fact) string { return f.rel + "\x00" + f.path.String() }

func (s *shadow) apply(st step) {
	for _, f := range st.facts {
		if st.retract {
			delete(s.facts, s.key(f))
		} else {
			s.facts[s.key(f)] = f
		}
	}
}

func (s *shadow) edb() *instance.Instance {
	inst := instance.New()
	inst.Ensure("E1", 1)
	inst.Ensure("E2", 1)
	for _, f := range s.facts {
		inst.AddPath(f.rel, f.path)
	}
	return inst
}

// batch materializes one step's facts as an engine delta.
func batch(facts []fact) *instance.Instance {
	inst := instance.New()
	for _, f := range facts {
		inst.AddPath(f.rel, f.path)
	}
	return inst
}

// runSeed replays one scenario, checking after every step that the
// variant-maintained engine, the base-plan engine, and the
// from-scratch evaluation agree exactly.
func runSeed(t *testing.T, seed int64) {
	t.Helper()
	sc := genScenario(rand.New(rand.NewSource(seed)))

	prog, err := parser.ParseProgram(sc.src)
	if err != nil {
		t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, sc.src)
	}
	prep, err := eval.Compile(prog)
	if err != nil {
		t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, sc.src)
	}
	limits := eval.Limits{Parallelism: sc.workers}

	// Engines capture eval.DeltaVariants at construction, so toggling
	// the global here pins both regimes for the whole interleaving.
	defer func(old bool) { eval.DeltaVariants = old }(eval.DeltaVariants)
	eval.DeltaVariants = true
	engOn, err := eval.NewEngine(prep, nil, limits)
	if err != nil {
		t.Fatalf("seed %d: NewEngine(variants): %v", seed, err)
	}
	eval.DeltaVariants = false
	engOff, err := eval.NewEngine(prep, nil, limits)
	if err != nil {
		t.Fatalf("seed %d: NewEngine(base): %v", seed, err)
	}

	sh := newShadow()
	history := func(i int) string {
		var b strings.Builder
		for j := 0; j <= i; j++ {
			fmt.Fprintf(&b, "  %2d: %s\n", j, sc.steps[j])
		}
		return b.String()
	}
	for i, st := range sc.steps {
		apply := func(e *eval.Engine) error {
			if st.retract {
				_, err := e.Retract(batch(st.facts))
				return err
			}
			_, err := e.Assert(batch(st.facts))
			return err
		}
		if err := apply(engOn); err != nil {
			t.Fatalf("seed %d step %d (variants, workers=%d): %v\n%s%s", seed, i, sc.workers, err, sc.src, history(i))
		}
		if err := apply(engOff); err != nil {
			t.Fatalf("seed %d step %d (base, workers=%d): %v\n%s%s", seed, i, sc.workers, err, sc.src, history(i))
		}
		sh.apply(st)

		want, err := prep.Eval(sh.edb(), limits)
		if err != nil {
			t.Fatalf("seed %d step %d: from-scratch Eval: %v\n%s%s", seed, i, err, sc.src, history(i))
		}
		snapOn, err := engOn.Snapshot()
		if err != nil {
			t.Fatalf("seed %d step %d: Snapshot(variants): %v", seed, i, err)
		}
		snapOff, err := engOff.Snapshot()
		if err != nil {
			t.Fatalf("seed %d step %d: Snapshot(base): %v", seed, i, err)
		}
		if d := instance.Diff(snapOn, want); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): variant engine diverges from scratch: %s\n%s%s",
				seed, i, sc.workers, d, sc.src, history(i))
		}
		if d := instance.Diff(snapOff, want); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): base engine diverges from scratch: %s\n%s%s",
				seed, i, sc.workers, d, sc.src, history(i))
		}
		if d := instance.Diff(snapOn, snapOff); d != "" {
			t.Fatalf("seed %d step %d (workers=%d): variant and base engines diverge: %s\n%s%s",
				seed, i, sc.workers, d, sc.src, history(i))
		}
	}
}

// TestDifferentialMaintenance replays a fixed battery of seeded
// interleavings; every maintenance bug this package has caught becomes
// reproducible by its seed.
func TestDifferentialMaintenance(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		runSeed(t, int64(seed))
	}
}

// FuzzDifferentialMaintenance exposes the same differential check to
// the native fuzzer: go test -fuzz=FuzzDifferentialMaintenance
// ./internal/fuzztest explores seeds beyond the fixed battery.
func FuzzDifferentialMaintenance(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runSeed(t, seed)
	})
}
