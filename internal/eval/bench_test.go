package eval

import (
	"fmt"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
	"seqlog/internal/workload"
)

// benchBothPaths runs the benchmark once with the indexed join path and
// once with the naive scan path, so the asymptotic win of the index
// subsystem is visible in one `go test -bench` run.
func benchBothPaths(b *testing.B, run func(b *testing.B)) {
	b.Helper()
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := IndexedJoins
			IndexedJoins = mode.indexed
			defer func() { IndexedJoins = prev }()
			run(b)
		})
	}
}

func BenchmarkMatchTwoPathVars(b *testing.B) {
	e := ast.Cat(ast.P("x"), ast.C("m"), ast.P("y"))
	for _, n := range []int{8, 64, 256} {
		p := value.Concat(value.Repeat("a", n/2), value.PathOf("m"), value.Repeat("b", n/2))
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			env := NewEnv()
			count := 0
			for i := 0; i < b.N; i++ {
				env.Match(e, p, func() { count++ })
			}
		})
	}
}

func BenchmarkMatchBacktracking(b *testing.B) {
	// Three unanchored path variables: quadratic split enumeration.
	e := ast.Cat(ast.P("x"), ast.P("y"), ast.P("z"))
	p := value.Repeat("a", 64)
	env := NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		env.Match(e, p, func() { count++ })
	}
}

func BenchmarkMatchPacked(b *testing.B) {
	e := ast.Cat(ast.P("u"), ast.Packed(ast.P("s")), ast.P("v"))
	inner := value.Repeat("a", 8)
	p := value.Concat(value.Repeat("x", 8), value.Path{value.Pack(inner)}, value.Repeat("y", 8))
	env := NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		env.Match(e, p, func() { count++ })
	}
}

func BenchmarkSemiNaiveChain(b *testing.B) {
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`)
	for _, n := range []int{16, 48} {
		edb := parser.MustParseInstance(chainFacts(n))
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(prog, edb, Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func chainFacts(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("R(n%d.n%d).\n", i, i+1)
	}
	return s
}

// BenchmarkTransitiveClosureGraph is the graphpaths workload of the
// acceptance criterion: reachability over a random graph with 1000
// edges encoded as length-2 paths (§5.1.1). The recursive rule's
// R(@y.@z) atom has a ground prefix @y at join time, so the indexed
// path probes the out-edges of y instead of scanning every edge.
func BenchmarkTransitiveClosureGraph(b *testing.B) {
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).
S :- T(a.b).`)
	for _, nodes := range []int{60, 200} {
		edb := workload.Graph(9, nodes, 1000)
		b.Run(fmt.Sprintf("nodes=%d/edges=1000", nodes), func(b *testing.B) {
			benchBothPaths(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Eval(prog, edb, Limits{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkConcatJoin is a sequence-concatenation workload: stitch
// together A-strings ending in a key atom with B-strings starting with
// it. The B(@k.$y) atom joins on a ground prefix; the scan path pays
// |A|·|B| match attempts, the indexed path only |A|·matches.
func BenchmarkConcatJoin(b *testing.B) {
	prog := parser.MustParseProgram(`J($x.@k.$y) :- A($x.@k), B(@k.$y).`)
	for _, n := range []int{64, 256} {
		edb := concatWorkload(n)
		b.Run(fmt.Sprintf("strings=%d", n), func(b *testing.B) {
			benchBothPaths(b, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Eval(prog, edb, Limits{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// concatWorkload builds n A-strings and n B-strings of length 5 over a
// 16-key join alphabet.
func concatWorkload(n int) *instance.Instance {
	inst := instance.New()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i%16)
		inst.AddPath("A", value.Concat(value.Repeat(fmt.Sprintf("a%d", i), 4), value.PathOf(key)))
		inst.AddPath("B", value.Concat(value.PathOf(key), value.Repeat(fmt.Sprintf("b%d", i), 4)))
	}
	return inst
}
