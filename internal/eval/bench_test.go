package eval

import (
	"fmt"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func BenchmarkMatchTwoPathVars(b *testing.B) {
	e := ast.Cat(ast.P("x"), ast.C("m"), ast.P("y"))
	for _, n := range []int{8, 64, 256} {
		p := value.Concat(value.Repeat("a", n/2), value.PathOf("m"), value.Repeat("b", n/2))
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			env := NewEnv()
			count := 0
			for i := 0; i < b.N; i++ {
				env.Match(e, p, func() { count++ })
			}
		})
	}
}

func BenchmarkMatchBacktracking(b *testing.B) {
	// Three unanchored path variables: quadratic split enumeration.
	e := ast.Cat(ast.P("x"), ast.P("y"), ast.P("z"))
	p := value.Repeat("a", 64)
	env := NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		env.Match(e, p, func() { count++ })
	}
}

func BenchmarkMatchPacked(b *testing.B) {
	e := ast.Cat(ast.P("u"), ast.Packed(ast.P("s")), ast.P("v"))
	inner := value.Repeat("a", 8)
	p := value.Concat(value.Repeat("x", 8), value.Path{value.Pack(inner)}, value.Repeat("y", 8))
	env := NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		env.Match(e, p, func() { count++ })
	}
}

func BenchmarkSemiNaiveChain(b *testing.B) {
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`)
	for _, n := range []int{16, 48} {
		edb := parser.MustParseInstance(chainFacts(n))
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(prog, edb, Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func chainFacts(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("R(n%d.n%d).\n", i, i+1)
	}
	return s
}
