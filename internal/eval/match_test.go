package eval

import (
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

// allMatches collects the distinct valuations that match e against p.
func allMatches(t *testing.T, src string, path string) []map[ast.Var]value.Path {
	t.Helper()
	rules, err := parser.ParseRules("X(" + src + ").")
	if err != nil {
		t.Fatalf("pattern %q: %v", src, err)
	}
	e := rules[0].Head.Args[0]
	p := parser.MustParsePath(path)
	env := NewEnv()
	var out []map[ast.Var]value.Path
	env.Match(e, p, func() {
		out = append(out, env.Snapshot())
	})
	return out
}

func TestMatchConst(t *testing.T) {
	if got := allMatches(t, "a.b", "a.b"); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := allMatches(t, "a.b", "a.c"); len(got) != 0 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := allMatches(t, "eps", "eps"); len(got) != 1 {
		t.Fatalf("eps matches = %d", len(got))
	}
	if got := allMatches(t, "eps", "a"); len(got) != 0 {
		t.Fatalf("eps vs a matches = %d", len(got))
	}
}

func TestMatchPathVarSplits(t *testing.T) {
	// $x.$y against a.b.c: 4 splits.
	got := allMatches(t, "$x.$y", "a.b.c")
	if len(got) != 4 {
		t.Fatalf("splits = %d, want 4", len(got))
	}
	// Repeated variable: $x.$x against a.b.a.b binds $x=a.b only.
	got = allMatches(t, "$x.$x", "a.b.a.b")
	if len(got) != 1 {
		t.Fatalf("repeated var matches = %d, want 1", len(got))
	}
	if !got[0][ast.PVar("x")].Equal(value.PathOf("a", "b")) {
		t.Fatalf("binding = %v", got[0])
	}
	// $x.$x against odd-length path: no match.
	if got := allMatches(t, "$x.$x", "a.b.a"); len(got) != 0 {
		t.Fatalf("odd repeated matches = %d", len(got))
	}
}

func TestMatchAtomVar(t *testing.T) {
	got := allMatches(t, "@u.$y", "a.b.c")
	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if !got[0][ast.AVar("u")].Equal(value.PathOf("a")) {
		t.Fatalf("binding = %v", got[0])
	}
	// Atomic variables never match packed values.
	if got := allMatches(t, "@u", "<a>"); len(got) != 0 {
		t.Fatalf("@u matched packed value")
	}
	// But path variables do.
	if got := allMatches(t, "$u", "<a>"); len(got) != 1 {
		t.Fatalf("$u should match packed value")
	}
	// Repeated atomic variable.
	if got := allMatches(t, "@a.@a", "x.x"); len(got) != 1 {
		t.Fatalf("repeated @a on x.x = %d", len(got))
	}
	if got := allMatches(t, "@a.@a", "x.y"); len(got) != 0 {
		t.Fatalf("repeated @a on x.y = %d", len(got))
	}
}

func TestMatchPacking(t *testing.T) {
	got := allMatches(t, "$u.<$s>.$v", "a.<b.c>.d")
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	m := got[0]
	if !m[ast.PVar("s")].Equal(value.PathOf("b", "c")) {
		t.Fatalf("$s = %v", m[ast.PVar("s")])
	}
	// Nested packing.
	got = allMatches(t, "<<$x>.$y>", "<<a>.b>")
	if len(got) != 1 {
		t.Fatalf("nested = %d", len(got))
	}
	if !got[0][ast.PVar("x")].Equal(value.PathOf("a")) {
		t.Fatalf("nested $x = %v", got[0])
	}
	// Packing structure mismatch.
	if got := allMatches(t, "<$x>", "a"); len(got) != 0 {
		t.Fatal("packed pattern matched atom")
	}
	if got := allMatches(t, "a", "<a>"); len(got) != 0 {
		t.Fatal("atom pattern matched packed value")
	}
	// <eps> matches exactly <eps>.
	if got := allMatches(t, "<eps>", "<eps>"); len(got) != 1 {
		t.Fatal("<eps> failed")
	}
}

func TestMatchBoundVariableChecks(t *testing.T) {
	e := ast.Cat(ast.P("x"), ast.C("m"), ast.P("x"))
	p := parser.MustParsePath("a.b.m.a.b")
	env := NewEnv()
	count := 0
	env.Match(e, p, func() { count++ })
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	// Pre-bound variable restricts matches.
	env2 := NewEnv()
	env2.m[ast.PVar("x")] = value.PathOf("a")
	count = 0
	env2.Match(ast.Cat(ast.P("x"), ast.P("y")), parser.MustParsePath("a.b"), func() { count++ })
	if count != 1 {
		t.Fatalf("prebound count = %d, want 1", count)
	}
	env3 := NewEnv()
	env3.m[ast.PVar("x")] = value.PathOf("z")
	count = 0
	env3.Match(ast.Cat(ast.P("x"), ast.P("y")), parser.MustParsePath("a.b"), func() { count++ })
	if count != 0 {
		t.Fatalf("conflicting prebound count = %d, want 0", count)
	}
}

func TestMatchDistinctValuationCounts(t *testing.T) {
	cases := []struct {
		pattern string
		path    string
		want    int
	}{
		{"$x.$y", "a.b", 3},
		{"$x.a.$y", "a.a.a", 3},
		{"$x.$y.$z", "a.b", 6},
		{"@u.@v", "a.b", 1},
		{"$x.b.$x", "a.b.a", 1},
		{"$x.b.$x", "b", 1},
		{"$x.<$y>.$z", "a.<b>.c.<d>", 2},
	}
	for _, c := range cases {
		got := allMatches(t, c.pattern, c.path)
		if len(got) != c.want {
			t.Errorf("%s vs %s: %d matches, want %d", c.pattern, c.path, len(got), c.want)
		}
	}
}

func TestEnvEval(t *testing.T) {
	env := NewEnv()
	env.m[ast.PVar("x")] = value.PathOf("a", "b")
	env.m[ast.AVar("u")] = value.PathOf("c")
	e := ast.Cat(ast.P("x"), ast.A("u"), ast.Packed(ast.P("x")))
	got := env.Eval(e)
	want := value.Path{value.Intern("a"), value.Intern("b"), value.Intern("c"), value.Pack(value.PathOf("a", "b"))}
	if !got.Equal(want) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}
