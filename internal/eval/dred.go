package eval

// Delete-and-rederive (DRed) incremental maintenance. One maintenance
// run — an Engine.Assert or Engine.Retract — walks the strata in order
// applying three phases per stratum:
//
//  1. overdelete: tombstone every materialized fact of the stratum's
//     heads whose known derivations may involve a changed fact — a
//     deleted fact used positively (chased semi-naively over the
//     deletion log, so deletions cascade through recursion), or an
//     inserted fact under negation (a derivation whose negated atom now
//     matches was invalidated by the insertion). Side atoms join
//     against the pre-deletion state (live tuples plus everything
//     tombstoned this run), the over-approximation DRed requires:
//     deleting too much is safe because phase 2 restores survivors,
//     while deleting too little would leave unsupported facts behind.
//     Before tombstoning, a well-founded support check prunes
//     candidates that plainly keep a derivation from supports stamped
//     strictly before them (see the stamp paragraph below), which is
//     what stops the cascade at its frontier.
//  2. rederive: each overdeleted candidate is checked goal-directedly —
//     the head matched against the candidate fact, the rule body run
//     against the live state through a head-bound rederive plan — or,
//     when overdeletion took most of the relation, by one forward
//     round over the (small) surviving state; knock-on restorations
//     then propagate semi-naively over the restore windows.
//  3. insert: new consequences are derived delta-first — insertion
//     windows joined through positive literals (the classic semi-naive
//     incremental round, parallel when configured), net deletions
//     probed through negated literals (derivations blocked only by a
//     fact this run removed are new), then the stratum-local fixpoint.
//
// Net insertions are tracked as windows into the relations' tuple
// logs, net deletions as side relations; each stratum keeps cursors
// into both, and the walk sweeps the strata until a full sweep
// consumes nothing new. For auto-stratified programs that is one
// working sweep plus one no-op sweep.
//
// Provenance is carried by derivation stamps (instance.MakeStamp):
// every position of every tuple log — the materialization's and the
// deletion logs' — records a monotone birth counter and the tag of the
// stratum that produced it (si+1 for stratum si; 0 for the caller's
// batch, visible to everyone). Maintenance at stratum si reads the
// materialization through the stratum-exact view {MaxTag: si+1}: side
// atoms of a delta join, negation probes and the rederive checks all
// see exactly the facts Prepared.Eval's stratum-ordered pass would
// have accumulated by stratum si, so handwritten programs that define
// one head name in several strata — with readers in between —
// maintain to the same fixpoint Eval computes. A deletion performed by
// a later defining stratum stays invisible to an earlier reader (its
// deletion-log stamp carries the later tag), a restoration is
// announced as an insertion when some stratum already consumed the
// deletion (so a reader after the restorer re-derives what it
// dropped), and a fact an earlier stratum derives that a later stratum
// already produced is PROMOTED — deleted and re-appended under the
// earlier tag — so downstream readers see it where Eval would have put
// it. The extra sweeps of the walk exist for exactly these wake-ups.
//
// The same stamps give the overdeletion pruner its well-founded order:
// a candidate is kept when some rule derives it from supports that are
// either settled (tag below the stratum's) or born strictly before the
// candidate (same tag, smaller birth). Births are issued by one
// monotone counter across ALL relations, so justification chains
// strictly decrease and circular keep-alives are impossible — even
// through mutually recursive sibling relations of the same stratum,
// which the pre-stamp per-relation position measure could not order
// (those retractions degraded to textbook DRed: overdelete the
// downward closure, rederive the world).

import (
	"errors"
	"fmt"
	"sort"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
)

// window is a half-open position range [lo, hi) into a relation's
// tuple log. Who produced the positions — and therefore which strata
// may see them — is read from their derivation stamps, not tracked on
// the window.
type window struct {
	lo, hi int
}

// anyVisible reports whether any position of rel in [lo, hi) carries a
// stamp tag at most maxTag — i.e. whether the range holds anything a
// stratum reading through {MaxTag: maxTag} can see. Windows appended
// by one stratum are uniformly tagged, so this short-circuits on the
// first position in practice.
func anyVisible(rel *instance.Relation, lo, hi int, maxTag uint64) bool {
	for pos := lo; pos < hi; pos++ {
		if instance.StampTag(rel.StampAt(pos)) <= maxTag {
			return true
		}
	}
	return false
}

// visibleRanges returns the maximal sub-ranges of dl's positions
// [lo, hi) whose stamp tag is at most maxTag: the deletion-log entries
// a stratum reading through {MaxTag: maxTag} consumes. (Tombstoned
// log entries — deletions since undone — are not filtered here;
// consumers skip them per position, as before.)
func visibleRanges(dl *instance.Relation, lo, hi int, maxTag uint64) [][2]int {
	var out [][2]int
	for pos := lo; pos < hi; pos++ {
		if instance.StampTag(dl.StampAt(pos)) > maxTag {
			continue
		}
		if n := len(out); n > 0 && out[n-1][1] == pos {
			out[n-1][1] = pos + 1
		} else {
			out = append(out, [2]int{pos, pos + 1})
		}
	}
	return out
}

// errStopRun aborts a plan run after the first derivation; the
// goal-directed rederivation check only needs existence.
var errStopRun = errors.New("eval: stop after first derivation")

// maintenance is the state of one DRed maintenance run.
type maintenance struct {
	e *Engine
	// ins[name] lists the windows of e.inst.Relation(name)'s tuple log
	// holding facts this run inserted: the asserted batch plus the
	// insert-phase derivations. Rederived facts are normally not
	// recorded — a fact that was overdeleted and then restored is
	// unchanged as far as other strata are concerned — except when a
	// stratum already consumed the deletion-log entry, where the
	// restoration must be announced to let readers after the restorer
	// undo what they did (see rederive's restore).
	ins map[string][]window
	// del[name] holds the facts this run removed from the
	// materialization and has not restored; entries are tombstoned in
	// place when a rederivation (or an insert-phase re-derivation)
	// brings the fact back, so the live entries are always the net
	// deletions. Each entry's stamp tag records the producing stratum
	// (0 for the caller's batch, whose logs are built before delStamper
	// attaches), read back by visibleRanges.
	del map[string]*instance.Relation
	// delStamper stamps the deletion logs. It is separate from the
	// engine's stamper — deletion-log births never interleave with the
	// materialization's, so replayed runs reassign identical stamps —
	// and is retagged per stratum alongside it.
	delStamper *instance.Stamper

	// Per-stratum consumption cursors: insDone[si][name] counts the ins
	// windows stratum si has processed, delDone[si][name] is the Size
	// watermark of del[name] it has consumed (eligible positions only —
	// deltas produced by later strata are skipped permanently, matching
	// the stratum-order views of Prepared.Eval). A stratum is revisited
	// in a later sweep exactly when a cursor lags behind an eligible
	// delta.
	insDone []map[string]int
	delDone []map[string]int
	visited []bool

	overdeleted, rederived int
	// pruned counts overdeletion candidates the well-founded support
	// check kept outright (surfaced as AssertStats/RetractStats
	// .StampPruned).
	pruned               int
	skipped, incremental int
	// planStats counts the plan executions of this run and their access
	// paths, folded into AssertStats/RetractStats.Plans by the caller.
	planStats PlanStats
}

func (e *Engine) newMaintenance() *maintenance {
	n := len(e.prep.strata)
	m := &maintenance{
		e:          e,
		ins:        map[string][]window{},
		del:        map[string]*instance.Relation{},
		delStamper: &instance.Stamper{},
		insDone:    make([]map[string]int, n),
		delDone:    make([]map[string]int, n),
		visited:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.insDone[i] = map[string]int{}
		m.delDone[i] = map[string]int{}
	}
	return m
}

// delFor returns the deletion log for name, creating it on first use.
// The maintenance stamper is (re)attached every time: the caller's
// batch logs are built by the engine before this maintenance exists,
// and their later entries must still be stamped with the producing
// stratum's tag.
func (m *maintenance) delFor(name string, arity int) *instance.Relation {
	dl := m.del[name]
	if dl == nil {
		dl = instance.NewRelation(arity)
		m.del[name] = dl
	}
	dl.SetStamper(m.delStamper)
	return dl
}

// run walks the strata applying the DRed phases until a full sweep
// consumes no new deltas, then folds the per-stratum outcomes into the
// skipped/incremental counters.
func (m *maintenance) run() error {
	limits := m.e.limits
	for sweep := 0; ; sweep++ {
		if sweep > limits.MaxIterations {
			return fmt.Errorf("%w: %d maintenance sweeps", ErrNonTermination, sweep)
		}
		progress := false
		for si := range m.e.prep.strata {
			did, err := m.stratum(si)
			if err != nil {
				return fmt.Errorf("stratum %d: %w", si+1, err)
			}
			progress = progress || did
		}
		if !progress {
			break
		}
	}
	for si := range m.e.prep.strata {
		if m.visited[si] {
			m.incremental++
		} else {
			m.skipped++
		}
	}
	return nil
}

// stratum applies the DRed phases to one stratum, reporting whether it
// consumed any new delta (false means the stratum was skipped — no
// relation it reads changed, visibly to it, since its last visit).
func (m *maintenance) stratum(si int) (bool, error) {
	ps := &m.e.prep.strata[si]
	insDone, delDone := m.insDone[si], m.delDone[si]
	maxTag := uint64(si + 1)
	dirty := false
	check := func(names map[string]bool) {
		for name := range names {
			if rel := m.e.inst.Relation(name); rel != nil {
				for _, w := range m.ins[name][insDone[name]:] {
					if anyVisible(rel, w.lo, w.hi, maxTag) {
						dirty = true
						break
					}
				}
			}
			if dl := m.del[name]; dl != nil && anyVisible(dl, delDone[name], dl.Size(), maxTag) {
				dirty = true
			}
		}
	}
	check(ps.reads)
	check(ps.negReads)
	// A deletion-log entry for one of this stratum's OWN heads is also
	// a reason to visit: with a head name defined in several
	// handwritten strata, a fact overdeleted while processing one
	// defining stratum may still be derivable by this one's rules, and
	// only this stratum's rederive phase can restore it. (Own-head
	// deletions are visible regardless of producer — the final relation
	// is what all defining strata jointly derive.)
	for name := range ps.heads {
		if dl := m.del[name]; dl != nil && dl.Size() > delDone[name] {
			dirty = true
		}
	}
	if !dirty {
		return false, nil
	}
	m.visited[si] = true
	// Everything this stratum appends — materialization facts (restores,
	// insert-phase derivations, promotions) and deletion-log entries —
	// is born with this stratum's tag.
	m.e.stamper.SetTag(maxTag)
	m.delStamper.SetTag(maxTag)
	if err := m.overdelete(ps, si, insDone, delDone); err != nil {
		return true, err
	}
	if err := m.rederive(ps, si); err != nil {
		return true, err
	}
	if err := m.insert(ps, si, insDone, delDone); err != nil {
		return true, err
	}
	advance := func(names map[string]bool) {
		for name := range names {
			insDone[name] = len(m.ins[name])
			if dl := m.del[name]; dl != nil {
				delDone[name] = dl.Size()
			}
		}
	}
	advance(ps.reads)
	advance(ps.negReads)
	advance(ps.heads)
	return true, nil
}

// overdelete is phase 1; see the package comment.
func (m *maintenance) overdelete(ps *preparedStratum, si int, insDone, delDone map[string]int) error {
	e := m.e
	maxTag := uint64(si + 1)
	hb := &headScratch{}
	sink := func(head ast.Pred, env *Env) error {
		t, err := hb.build(head, env, e.limits)
		if err != nil {
			return err
		}
		h := t.Hash()
		rel := e.inst.Relation(head.Name)
		if rel == nil {
			return nil
		}
		pos := rel.PositionHashed(h, t)
		if pos < 0 {
			return nil // already deleted, or never materialized
		}
		// EDB-provided facts of IDB relations are base facts, not
		// derivations: they survive every overdeletion.
		if s := e.seeds[head.Name]; s != nil && s.ContainsHashed(h, t) {
			return nil
		}
		// Well-founded pruning: keep the candidate outright when some
		// rule still derives it from live facts stamped strictly before
		// it — settled by an earlier stratum, or born earlier under this
		// stratum's tag. Births come from one monotone counter, so the
		// measure totally orders the whole stratum's facts (sibling
		// relations included) and circular keep-alives are impossible;
		// if a justifying support dies later, its deletion delta
		// re-derives this candidate and the check runs again. Pruning
		// here is what keeps a retraction's cost proportional to the
		// facts that actually lose their support, instead of the whole
		// downward closure: in well-connected data most candidates have
		// an older alternative derivation and the cascade stops at the
		// frontier.
		if e.pruning {
			kept, err := m.derivesGoal(ps, si, head.Name, t, true, instance.StampBirth(rel.StampAt(pos)))
			if err != nil {
				return err
			}
			if kept {
				m.pruned++
				return nil
			}
		}
		dst := e.inst.Ensure(head.Name, len(head.Args))
		if !dst.DeleteHashed(h, t) {
			return nil
		}
		m.delFor(head.Name, len(head.Args)).AddFromScratch(h, t)
		e.derived--
		m.overdeleted++
		return nil
	}
	// Insertions under negation: derivations whose negated atom matches
	// a fact inserted by this run held before the insertion and are
	// invalid now. With variants the inserted tuples are enumerated and
	// the pre-bound neg variant runs once per (tuple, match) — the
	// binding grounds the rest of the body into probes — instead of one
	// full base-plan run filtered by the delta probe; both shapes visit
	// exactly the valuations whose negated atom evaluates into a window.
	for _, p := range ps.plans {
		negIdx := -1
		for j, s := range p.steps {
			if s.kind != stepNegPred {
				continue
			}
			negIdx++
			name := s.pred.Name
			rel := e.inst.Relation(name)
			if rel == nil {
				continue
			}
			// A window appended by a later stratum is invisible to this
			// one (its positions carry a later tag); windows are
			// uniformly tagged, so the filter is per window.
			var wins []window
			for _, w := range m.ins[name][insDone[name]:] {
				if anyVisible(rel, w.lo, w.hi, maxTag) {
					wins = append(wins, w)
				}
			}
			if len(wins) == 0 {
				continue
			}
			probe := func(h uint64, t instance.Tuple) bool {
				pos := rel.PositionHashed(h, t)
				if pos < 0 {
					return false
				}
				for _, w := range wins {
					if pos >= w.lo && pos < w.hi {
						return true
					}
				}
				return false
			}
			if e.variants && negIdx < len(p.negVariants) {
				nv := p.negVariants[negIdx]
				env := NewEnv()
				var runErr error
				for _, w := range wins {
					for pos := w.lo; pos < w.hi && runErr == nil; pos++ {
						// Skip tuples already deleted again: the old full-run
						// probe required a live position too.
						if !rel.Live(pos) {
							continue
						}
						env.MatchTuple(nv.pred.Args, rel.TupleAt(pos), func() {
							if runErr != nil {
								return
							}
							opts := runOpts{includeDead: true, negStep: nv.step, negProbe: probe, env: env, visTag: maxTag}
							nv.p.note(&m.planStats, -1)
							runErr = runPlanOpts(nv.p, e.inst, -1, 0, 0, sink, opts)
						})
					}
				}
				if runErr != nil {
					return runErr
				}
				continue
			}
			opts := runOpts{includeDead: true, negStep: j, negProbe: probe, visTag: maxTag}
			p.note(&m.planStats, -1)
			if err := runPlanOpts(p, e.inst, -1, 0, 0, sink, opts); err != nil {
				return err
			}
		}
	}
	// Deletions used positively: the downward closure of the deletion
	// log, chased semi-naively (the stratum's own overdeletions feed
	// back through recursive rules). Only positions produced by strata
	// at or before si are joined — a later defining stratum's deletion
	// is invisible to this stratum's view.
	proc := map[string]int{}
	for name := range ps.reads {
		proc[name] = delDone[name]
	}
	for round := 0; ; round++ {
		if round > e.limits.MaxIterations {
			return fmt.Errorf("%w: %d overdeletion rounds", ErrNonTermination, round)
		}
		cur := map[string]int{}
		for name := range proc {
			if dl := m.del[name]; dl != nil {
				cur[name] = dl.Size()
			}
		}
		ran := false
		for _, p := range ps.plans {
			for k := range p.predSteps {
				run, deltaStep := deltaPlan(p, k, e.variants)
				name := run.steps[deltaStep].pred.Name
				dl := m.del[name]
				if dl == nil {
					continue
				}
				for _, r := range visibleRanges(dl, proc[name], cur[name], maxTag) {
					ran = true
					opts := runOpts{deltaRel: dl, includeDead: true, negStep: -1, visTag: maxTag}
					run.note(&m.planStats, deltaStep)
					if err := runPlanOpts(run, e.inst, deltaStep, r[0], r[1], sink, opts); err != nil {
						return err
					}
				}
			}
		}
		if !ran {
			return nil
		}
		for name, n := range cur {
			proc[name] = n
		}
	}
}

// rederive is phase 2; see the package comment. It runs one
// goal-directed pass over the candidates (each checked against the
// live state through the head-bound rederive plans), then chases the
// knock-on restorations semi-naively: a restored fact can give another
// candidate its derivation back, so the restore windows are joined
// delta-first with a sink that only restores still-deleted facts —
// never a second full pass over the candidate set.
func (m *maintenance) rederive(ps *preparedStratum, si int) error {
	e := m.e
	inst := e.inst
	maxTag := uint64(si + 1)
	any := false
	for name := range ps.heads {
		if dl := m.del[name]; dl != nil && dl.Len() > 0 {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	prev := localSizes(ps.heads, inst)
	restore := func(name string, arity int, h uint64, t instance.Tuple, dlPos int) {
		rel := inst.Ensure(name, arity)
		mainPos := rel.Size()
		if !rel.AddHashed(h, t) {
			m.del[name].DeleteHashed(h, t) // already back; just drop the log entry
			return
		}
		m.del[name].DeleteHashed(h, t)
		e.derived++
		m.rederived++
		// A restored fact is normally invisible to other strata (it was
		// never really gone). But a stratum that already consumed the
		// deletion-log entry acted on the deletion; announcing the
		// restoration as an insertion produced here lets readers after
		// this stratum re-derive what they dropped, while the producer
		// filter keeps it invisible to earlier readers, whose
		// stratum-order view genuinely lost the fact.
		if m.consumedDeletion(name, dlPos) {
			m.ins[name] = append(m.ins[name], window{lo: mainPos, hi: mainPos + 1})
		}
	}
	// The sink both seeding strategies and the delta rounds share: keep
	// a derived fact only when it is a still-deleted candidate.
	hb := &headScratch{}
	sink := func(head ast.Pred, env *Env) error {
		t, err := hb.build(head, env, e.limits)
		if err != nil {
			return err
		}
		dl := m.del[head.Name]
		if dl == nil {
			return nil
		}
		h := t.Hash()
		pos := dl.PositionHashed(h, t)
		if pos < 0 {
			return nil // not a candidate: the fact already exists (or never did)
		}
		restore(head.Name, len(head.Args), dl.HashAt(pos), dl.TupleAt(pos), pos)
		return nil
	}
	// Seed the restoration with whichever strategy is cheaper. Few
	// candidates against a large surviving relation: check each
	// candidate goal-directedly (head matched, body probed through the
	// head-bound rederive plans). Candidates dominating the relation:
	// one forward round of the stratum's rules over the (small) live
	// state, restoring every derived fact that is still deleted — its
	// cost is bounded by a from-scratch round 0, which beats touching
	// every candidate individually.
	candidates, liveSize := 0, 0
	for name := range ps.heads {
		if dl := m.del[name]; dl != nil {
			candidates += dl.Len()
		}
		if rel := inst.Relation(name); rel != nil {
			liveSize += rel.Len()
		}
	}
	if candidates*4 <= liveSize {
		for _, name := range sortedNames(ps.heads) {
			dl := m.del[name]
			if dl == nil {
				continue
			}
			arity := e.prep.arities[name]
			for pos := 0; pos < dl.Size(); pos++ {
				if !dl.Live(pos) {
					continue
				}
				t := dl.TupleAt(pos) // owned by the deletion log, safe to share
				ok, err := m.rederivable(ps, si, name, t)
				if err != nil {
					return err
				}
				if ok {
					restore(name, arity, dl.HashAt(pos), t, pos)
				}
			}
		}
	} else {
		for _, p := range ps.plans {
			if err := runPlanOpts(p, inst, -1, 0, 0, sink, runOpts{negStep: -1, visTag: maxTag}); err != nil {
				return err
			}
		}
	}
	// Delta propagation over the restore windows.
	for round := 0; ; round++ {
		if round > e.limits.MaxIterations {
			return fmt.Errorf("%w: %d rederivation rounds", ErrNonTermination, round)
		}
		cur := localSizes(ps.heads, inst)
		grew := false
		for name, n := range cur {
			if n > prev[name] {
				grew = true
				break
			}
		}
		if !grew {
			return nil
		}
		for _, p := range ps.plans {
			for k := range p.predSteps {
				run, deltaStep := deltaPlan(p, k, e.variants)
				name := run.steps[deltaStep].pred.Name
				if !ps.heads[name] {
					continue
				}
				lo, hi := prev[name], cur[name]
				if hi <= lo {
					continue
				}
				run.note(&m.planStats, deltaStep)
				if err := runPlanOpts(run, inst, deltaStep, lo, hi, sink, runOpts{negStep: -1, visTag: maxTag}); err != nil {
					return err
				}
			}
		}
		prev = cur
	}
}

// rederivable reports whether some rule of the stratum still derives
// the fact name(t...) from the live state, as seen by stratum si.
func (m *maintenance) rederivable(ps *preparedStratum, si int, name string, t instance.Tuple) (bool, error) {
	return m.derivesGoal(ps, si, name, t, false, 0)
}

// derivesGoal reports whether some rule of the stratum derives the
// fact name(t...): the rule head is matched against the fact and the
// body evaluated against stratum si's view of the live state through
// the head-bound rederive plan, stopping at the first derivation
// found. With bound set (the overdeletion pruner), supports read from
// this stratum's own heads — the relations still in flux — must be
// born strictly before boundBirth, the well-founded variant of the
// check. Every rule participates: the stamp order covers mutual
// recursion through sibling relations, and a forward-read body atom
// sees only settled earlier-stratum facts under the view, so the
// pre-stamp restriction to self-contained rules is gone.
func (m *maintenance) derivesGoal(ps *preparedStratum, si int, name string, t instance.Tuple, bound bool, boundBirth uint64) (bool, error) {
	stop := func(ast.Pred, *Env) error { return errStopRun }
	for i, p := range ps.plans {
		if p.rule.Head.Name != name {
			continue
		}
		rp := ps.rederive[i]
		env := NewEnv()
		found := false
		var runErr error
		env.MatchTuple(rp.rule.Head.Args, t, func() {
			if found || runErr != nil {
				return
			}
			opts := runOpts{negStep: -1, env: env, visTag: uint64(si + 1)}
			if bound {
				opts.boundHeads = ps.heads
				opts.boundBirth = boundBirth
			}
			err := runPlanOpts(rp, m.e.inst, -1, 0, 0, stop, opts)
			switch {
			case err == nil:
			case errors.Is(err, errStopRun):
				found = true
			default:
				runErr = err
			}
		})
		if runErr != nil {
			return false, runErr
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// insert is phase 3; see the package comment.
func (m *maintenance) insert(ps *preparedStratum, si int, insDone, delDone map[string]int) error {
	e := m.e
	inst, limits := e.inst, e.limits
	maxTag := uint64(si + 1)
	workers := limits.workers()
	prev := localSizes(ps.heads, inst)
	eligible := func(name string) []window {
		var out []window
		rel := inst.Relation(name)
		if rel == nil {
			return nil
		}
		for _, w := range m.ins[name][insDone[name]:] {
			if anyVisible(rel, w.lo, w.hi, maxTag) {
				out = append(out, w)
			}
		}
		return out
	}
	// (a) positive deltas over the unconsumed insertion windows: the
	// classic incremental round, fanned out when configured. With
	// variants each window runs the hoisted per-delta plan (delta step
	// first, rest index-probed) instead of the base plan with a window.
	if workers > 1 {
		var items []workItem
		for _, p := range ps.plans {
			for k := range p.predSteps {
				run, deltaStep := deltaPlan(p, k, e.variants)
				for _, w := range eligible(run.steps[deltaStep].pred.Name) {
					sl := sliceWindow(run, deltaStep, w.lo, w.hi, workers)
					for range sl {
						run.note(&m.planStats, deltaStep)
					}
					items = append(items, sl...)
				}
			}
		}
		if err := runRoundParallel(items, inst, workers, limits, &e.derived, maxTag); err != nil {
			return err
		}
	} else {
		hb := &headScratch{}
		sink := func(head ast.Pred, env *Env) error {
			return derive(head, env, inst, limits, &e.derived, hb, maxTag)
		}
		for _, p := range ps.plans {
			for k := range p.predSteps {
				run, deltaStep := deltaPlan(p, k, e.variants)
				for _, w := range eligible(run.steps[deltaStep].pred.Name) {
					run.note(&m.planStats, deltaStep)
					if err := runPlanOpts(run, inst, deltaStep, w.lo, w.hi, sink, runOpts{negStep: -1, visTag: maxTag}); err != nil {
						return err
					}
				}
			}
		}
	}
	// (b) deletions under negation: a derivation blocked only by a fact
	// this run removed (and did not restore) is new. With variants the
	// net-deleted tuples are enumerated from the deletion log and the
	// pre-bound neg variant runs per (tuple, match), mirroring the
	// overdelete phase's enumeration.
	hb := &headScratch{}
	sink := func(head ast.Pred, env *Env) error {
		return derive(head, env, inst, limits, &e.derived, hb, maxTag)
	}
	for _, p := range ps.plans {
		negIdx := -1
		for j, s := range p.steps {
			if s.kind != stepNegPred {
				continue
			}
			negIdx++
			name := s.pred.Name
			dl := m.del[name]
			if dl == nil {
				continue
			}
			ranges := visibleRanges(dl, delDone[name], dl.Size(), maxTag)
			if len(ranges) == 0 {
				continue
			}
			probe := func(h uint64, t instance.Tuple) bool {
				pos := dl.PositionHashed(h, t)
				if pos < 0 {
					return false
				}
				in := false
				for _, r := range ranges {
					if pos >= r[0] && pos < r[1] {
						in = true
						break
					}
				}
				if !in {
					return false
				}
				// A fact deleted and later restored is not newly absent.
				if rel := e.inst.Relation(name); rel != nil && rel.ContainsHashed(h, t) {
					return false
				}
				return true
			}
			if e.variants && negIdx < len(p.negVariants) {
				nv := p.negVariants[negIdx]
				rel := e.inst.Relation(name)
				env := NewEnv()
				var runErr error
				for _, rg := range ranges {
					for pos := rg[0]; pos < rg[1] && runErr == nil; pos++ {
						// Restored facts are tombstoned in the deletion log
						// (not net deletions), and a fact re-derived by (a)
						// is back in the relation — both excluded, exactly
						// as by the probe above.
						if !dl.Live(pos) {
							continue
						}
						h, t := dl.HashAt(pos), dl.TupleAt(pos)
						if rel != nil && rel.ContainsHashed(h, t) {
							continue
						}
						env.MatchTuple(nv.pred.Args, t, func() {
							if runErr != nil {
								return
							}
							opts := runOpts{negStep: nv.step, negProbe: probe, env: env, visTag: maxTag}
							nv.p.note(&m.planStats, -1)
							runErr = runPlanOpts(nv.p, inst, -1, 0, 0, sink, opts)
						})
					}
				}
				if runErr != nil {
					return runErr
				}
				continue
			}
			opts := runOpts{negStep: j, negProbe: probe, visTag: maxTag}
			p.note(&m.planStats, -1)
			if err := runPlanOpts(p, inst, -1, 0, 0, sink, opts); err != nil {
				return err
			}
		}
	}
	// (c) chase the stratum-local consequences.
	if err := fixpointRounds(ps.plans, ps.heads, inst, limits, &e.derived, prev, e.variants, &m.planStats, maxTag); err != nil {
		return err
	}
	// Record the insertion windows for downstream strata, and collapse
	// facts that were both overdeleted and re-derived by (a)–(c) back to
	// "unchanged": their deletion-log entry dies. (The insertion window
	// still over-approximates by covering the re-derived positions;
	// downstream overdeletion plus rederivation absorbs that.)
	for _, name := range sortedNames(ps.heads) {
		rel := inst.Relation(name)
		if rel == nil {
			continue
		}
		if hi := rel.Size(); hi > prev[name] {
			m.ins[name] = append(m.ins[name], window{lo: prev[name], hi: hi})
		}
		dl := m.del[name]
		if dl == nil {
			continue
		}
		for pos := 0; pos < dl.Size(); pos++ {
			if !dl.Live(pos) {
				continue
			}
			h := dl.HashAt(pos)
			if t := dl.TupleAt(pos); rel.ContainsHashed(h, t) {
				dl.DeleteHashed(h, t)
				m.rederived++
			}
		}
	}
	return nil
}

// consumedDeletion reports whether any stratum's cursor has already
// moved past position pos of name's deletion log — i.e. some stratum
// acted on that deletion before it was undone by a restoration.
func (m *maintenance) consumedDeletion(name string, pos int) bool {
	for _, dd := range m.delDone {
		if dd[name] > pos {
			return true
		}
	}
	return false
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
