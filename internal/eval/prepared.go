package eval

import (
	"fmt"

	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/instance"
)

// preparedStratum is one stratum of a compiled program: its rules'
// join plans plus the dependency metadata the incremental maintainer
// needs to decide whether the stratum can be skipped, maintained
// delta-first, or must be recomputed.
type preparedStratum struct {
	rules ast.Stratum
	plans []*plan
	// rederive[i] is plans[i]'s rule compiled with its head variables
	// pre-bound: the access-path plan for goal-directed rederivation
	// checks, where the head is matched against a candidate fact before
	// the body runs (see maintenance.rederivable).
	rederive []*plan
	// heads is the set of relation names defined by this stratum.
	heads map[string]bool
	// reads is the set of relation names occurring in positive body
	// predicates of this stratum (including the stratum's own heads for
	// recursive rules).
	reads map[string]bool
	// negReads is the set of relation names occurring under negation.
	// New facts in one of these invalidate previously derived facts, so
	// insertions cannot be maintained incrementally past this stratum.
	negReads map[string]bool
}

// Prepared is a compiled program: validated, stratified, with every
// rule's join plan and the relation arities computed once. A Prepared
// is immutable and safe for concurrent use; it is the unit of reuse
// for repeated evaluation (Eval/Query/Holds methods) and the program
// half of an Engine.
type Prepared struct {
	prog   ast.Program
	strata []preparedStratum
	// arities maps every relation name of the program to its arity.
	arities map[string]int
	// idb marks the relation names defined by some rule head.
	idb map[string]bool
	// diags holds the non-error diagnostics (warnings and infos) the
	// static analyzer reported at compile time.
	diags []analyze.Diagnostic
}

// Compile analyzes and plans a program once, returning a reusable
// *Prepared. The static analyzer (internal/analyze) checks rule
// safety, arity consistency, and stratified negation; a program with
// error-severity diagnostics is rejected with an *analyze.DiagError
// carrying the structured list. Warnings and infos do not block
// compilation and are surfaced through Diagnostics. The program is
// deep copied, so later mutation of prog cannot corrupt the compiled
// form.
func Compile(prog ast.Program) (*Prepared, error) {
	diags := analyze.Check(prog, analyze.Options{ExplicitStrata: true})
	if analyze.HasErrors(diags) {
		return nil, &analyze.DiagError{Diags: diags}
	}
	arities, err := prog.Arities()
	if err != nil {
		return nil, err
	}
	prog = prog.Clone()
	p := &Prepared{
		prog:    prog,
		arities: arities,
		idb:     map[string]bool{},
		diags:   diags,
	}
	for si, stratum := range prog.Strata {
		ps := preparedStratum{
			rules:    stratum,
			heads:    map[string]bool{},
			reads:    map[string]bool{},
			negReads: map[string]bool{},
		}
		for _, r := range stratum {
			pl, err := compile(r)
			if err != nil {
				return nil, fmt.Errorf("stratum %d: %w", si+1, err)
			}
			// Delta-hoisted variants: one plan per positive body atom
			// (run when the delta sits on that atom's relation) and one
			// pre-bound plan per negated atom, compiled once here so
			// maintenance never plans at runtime. Whether they are used
			// is an engine-level decision (eval.DeltaVariants).
			if err := pl.compileVariants(); err != nil {
				return nil, fmt.Errorf("stratum %d (delta variants): %w", si+1, err)
			}
			var headVars []ast.Var
			for _, a := range r.Head.Args {
				headVars = append(headVars, a.Vars()...)
			}
			rp, err := compileWith(r, headVars)
			if err != nil {
				return nil, fmt.Errorf("stratum %d (rederive plan): %w", si+1, err)
			}
			ps.plans = append(ps.plans, pl)
			ps.rederive = append(ps.rederive, rp)
			ps.heads[r.Head.Name] = true
			p.idb[r.Head.Name] = true
			for _, l := range r.Body {
				if pr, ok := l.Atom.(ast.Pred); ok {
					if l.Neg {
						ps.negReads[pr.Name] = true
					} else {
						ps.reads[pr.Name] = true
					}
				}
			}
		}
		p.strata = append(p.strata, ps)
	}
	return p, nil
}

// Program returns (a copy of) the compiled program.
func (p *Prepared) Program() ast.Program { return p.prog.Clone() }

// Diagnostics returns the non-error findings (warnings and infos) the
// static analyzer reported when the program was compiled: possible
// nontermination through sequence growth, dead rules, joins that
// degenerate to scans under incremental maintenance, and the program's
// fragment. The slice is a copy; the Prepared stays immutable.
func (p *Prepared) Diagnostics() []analyze.Diagnostic {
	out := make([]analyze.Diagnostic, len(p.diags))
	copy(out, p.diags)
	return out
}

// Arity returns the arity of a relation named by the program, and
// whether the program names it at all.
func (p *Prepared) Arity(name string) (int, bool) {
	a, ok := p.arities[name]
	return a, ok
}

// IsIDB reports whether the program defines the relation (it occurs in
// some rule head).
func (p *Prepared) IsIDB(name string) bool { return p.idb[name] }

// Explain returns, in rule order, a one-line description of each
// compiled join plan: the chosen predicate order and, per predicate,
// the access path (exact index, ground-prefix index, ground-suffix
// index, or scan). After each rule's base plan come its delta-hoisted
// variants, indented: one "Δname:" line per positive body atom (the
// plan maintenance runs when the delta sits on that relation, with the
// delta atom first) and one "Δ!name:" line per negated atom (run with
// the atom's variables pre-bound against each changed tuple).
func (p *Prepared) Explain() []string {
	var out []string
	for _, ps := range p.strata {
		for _, pl := range ps.plans {
			out = append(out, pl.describe())
			for _, v := range pl.variants {
				out = append(out, fmt.Sprintf("  Δ%s: %s", v.steps[0].pred.Name, v.describe()))
			}
			for _, nv := range pl.negVariants {
				out = append(out, fmt.Sprintf("  Δ!%s: %s", nv.pred.Name, nv.p.describe()))
			}
		}
	}
	return out
}

// Eval computes P(I) for the compiled program: the least instance
// extending edb satisfying every rule, stratum by stratum (paper
// §2.3). The input is shared copy-on-write (instance.Snapshot), so the
// EDB relations are never copied: the result aliases their (frozen)
// storage and only derived relations allocate. The input instance is
// not modified, but its relations become frozen — writes routed
// through the instance (Instance.Add, Ensure, Merge) transparently
// clone, while a *Relation handle obtained before Eval panics if
// written directly afterwards; re-fetch it via Instance.Ensure.
func (p *Prepared) Eval(edb *instance.Instance, limits Limits) (*instance.Instance, error) {
	limits = limits.orDefault()
	inst := edb.Snapshot()
	derived := 0
	for si := range p.strata {
		ps := &p.strata[si]
		// visTag 0: a fresh result instance is built stratum by stratum,
		// so the ordering the stamps encode holds by construction — and
		// carried EDB relations may hold stamps from a previous engine's
		// run, which a from-scratch pass must read unconditionally.
		if err := runStratum(ps.plans, ps.heads, inst, limits, &derived, 0); err != nil {
			return nil, fmt.Errorf("stratum %d: %w", si+1, err)
		}
	}
	return inst, nil
}

// Query evaluates the compiled program and returns the contents of one
// output relation (possibly empty, with arity taken from the program).
// An output relation unknown to both the program and the instance is
// an error: it almost always indicates a misspelled relation name.
func (p *Prepared) Query(edb *instance.Instance, output string, limits Limits) (*instance.Relation, error) {
	out, err := p.Eval(edb, limits)
	if err != nil {
		return nil, err
	}
	if r := out.Relation(output); r != nil {
		return r, nil
	}
	if a, ok := p.arities[output]; ok {
		return instance.NewRelation(a), nil
	}
	return nil, fmt.Errorf("eval: unknown output relation %q (not defined by the program and absent from the instance)", output)
}

// Holds evaluates the compiled program and reports whether the nullary
// output relation holds (boolean queries, §5.1.1).
func (p *Prepared) Holds(edb *instance.Instance, output string, limits Limits) (bool, error) {
	out, err := p.Eval(edb, limits)
	if err != nil {
		return false, err
	}
	r := out.Relation(output)
	return r != nil && r.Len() > 0, nil
}
