package eval

import (
	"errors"
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// ErrNonTermination reports that evaluation exceeded its limits. The
// paper only considers programs that terminate on every instance
// (§2.3); programs like Example 2.3 trip this error.
var ErrNonTermination = errors.New("evaluation exceeded limits (program may not terminate)")

// Limits bound an evaluation. Zero values mean "use the default".
type Limits struct {
	// MaxFacts bounds the total number of derived facts.
	MaxFacts int
	// MaxIterations bounds fixpoint rounds per stratum.
	MaxIterations int
	// MaxPathLen bounds the length of any derived path (0 = unbounded).
	MaxPathLen int
}

// DefaultLimits are generous enough for all paper examples.
var DefaultLimits = Limits{MaxFacts: 1 << 20, MaxIterations: 1 << 20}

func (l Limits) orDefault() Limits {
	if l.MaxFacts == 0 {
		l.MaxFacts = DefaultLimits.MaxFacts
	}
	if l.MaxIterations == 0 {
		l.MaxIterations = DefaultLimits.MaxIterations
	}
	return l
}

// Eval computes P(I): the least instance extending edb that satisfies
// every rule, stratum by stratum (paper §2.3). The input instance is
// not modified. The result contains the EDB facts plus all derived IDB
// facts.
func Eval(prog ast.Program, edb *instance.Instance, limits Limits) (*instance.Instance, error) {
	limits = limits.orDefault()
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	inst := edb.Clone()
	derived := 0
	for si, stratum := range prog.Strata {
		if err := evalStratum(stratum, inst, limits, &derived); err != nil {
			return nil, fmt.Errorf("stratum %d: %w", si+1, err)
		}
	}
	return inst, nil
}

// Query evaluates the program and returns the contents of one output
// relation as a relation (possibly empty, with arity inferred from the
// program or defaulting to unary).
func Query(prog ast.Program, edb *instance.Instance, output string, limits Limits) (*instance.Relation, error) {
	out, err := Eval(prog, edb, limits)
	if err != nil {
		return nil, err
	}
	if r := out.Relation(output); r != nil {
		return r, nil
	}
	arities, err := prog.Arities()
	if err != nil {
		return nil, err
	}
	if a, ok := arities[output]; ok {
		return instance.NewRelation(a), nil
	}
	return instance.NewRelation(1), nil
}

// Holds evaluates the program and reports whether the nullary output
// relation holds (boolean queries, §5.1.1).
func Holds(prog ast.Program, edb *instance.Instance, output string, limits Limits) (bool, error) {
	out, err := Eval(prog, edb, limits)
	if err != nil {
		return false, err
	}
	r := out.Relation(output)
	return r != nil && r.Len() > 0, nil
}

func evalStratum(stratum ast.Stratum, inst *instance.Instance, limits Limits, derived *int) error {
	plans := make([]*plan, len(stratum))
	for i, r := range stratum {
		p, err := compile(r)
		if err != nil {
			return err
		}
		plans[i] = p
	}
	local := map[string]bool{}
	for _, r := range stratum {
		local[r.Head.Name] = true
	}

	// Round 0: evaluate every rule against the full instance.
	delta := instance.New()
	for _, p := range plans {
		if err := runPlan(p, inst, nil, -1, delta, limits, derived); err != nil {
			return err
		}
	}
	// Semi-naive rounds: re-evaluate rules with one local positive
	// predicate restricted to the previous round's delta.
	for iter := 0; delta.Facts() > 0; iter++ {
		if iter >= limits.MaxIterations {
			return fmt.Errorf("%w: %d fixpoint rounds", ErrNonTermination, iter)
		}
		next := instance.New()
		for _, p := range plans {
			for _, stepIdx := range p.predSteps {
				name := p.steps[stepIdx].pred.Name
				if !local[name] || delta.Relation(name) == nil || delta.Relation(name).Len() == 0 {
					continue
				}
				if err := runPlan(p, inst, delta, stepIdx, next, limits, derived); err != nil {
					return err
				}
			}
		}
		delta = next
	}
	return nil
}

// runPlan evaluates one rule. If deltaStep >= 0, the positive predicate
// at that step index iterates over delta instead of the full instance.
func runPlan(p *plan, inst, delta *instance.Instance, deltaStep int, out *instance.Instance, limits Limits, derived *int) error {
	env := NewEnv()
	var evalErr error
	var exec func(i int)
	exec = func(i int) {
		if evalErr != nil {
			return
		}
		if i == len(p.steps) {
			evalErr = derive(p.rule.Head, env, inst, out, limits, derived)
			return
		}
		s := p.steps[i]
		switch s.kind {
		case stepPred:
			src := inst
			if i == deltaStep {
				src = delta
			}
			rel := src.Relation(s.pred.Name)
			if rel == nil {
				return
			}
			if rel.Arity != len(s.pred.Args) {
				evalErr = fmt.Errorf("predicate %s used with arity %d but relation has arity %d", s.pred.Name, len(s.pred.Args), rel.Arity)
				return
			}
			for _, t := range rel.Tuples() {
				env.MatchTuple(s.pred.Args, t, func() { exec(i + 1) })
				if evalErr != nil {
					return
				}
			}
		case stepEq:
			ground := env.Eval(s.ground)
			env.Match(s.pattern, ground, func() { exec(i + 1) })
		case stepNegPred:
			rel := inst.Relation(s.pred.Name)
			if rel != nil {
				t := make(instance.Tuple, len(s.pred.Args))
				for k, a := range s.pred.Args {
					t[k] = env.Eval(a)
				}
				if rel.Contains(t) {
					return
				}
			}
			exec(i + 1)
		case stepNegEq:
			l, r := env.Eval(s.ground), env.Eval(s.pattern)
			if !l.Equal(r) {
				exec(i + 1)
			}
		}
	}
	exec(0)
	return evalErr
}

func derive(head ast.Pred, env *Env, inst, out *instance.Instance, limits Limits, derived *int) error {
	t := make(instance.Tuple, len(head.Args))
	for i, a := range head.Args {
		p := env.Eval(a)
		if limits.MaxPathLen > 0 && len(p) > limits.MaxPathLen {
			return fmt.Errorf("%w: derived path of length %d exceeds limit %d", ErrNonTermination, len(p), limits.MaxPathLen)
		}
		t[i] = p
	}
	if inst.Ensure(head.Name, len(head.Args)).Add(t) {
		out.Ensure(head.Name, len(head.Args)).Add(t)
		*derived++
		if *derived > limits.MaxFacts {
			return fmt.Errorf("%w: more than %d derived facts", ErrNonTermination, limits.MaxFacts)
		}
	}
	return nil
}

// Valuation is an immutable snapshot valuation, used by tests and by
// the rewrite engine's equivalence checks.
type Valuation map[ast.Var]value.Path
