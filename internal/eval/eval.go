package eval

import (
	"errors"
	"fmt"
	"runtime"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// ErrNonTermination reports that evaluation exceeded its limits. The
// paper only considers programs that terminate on every instance
// (§2.3); programs like Example 2.3 trip this error.
var ErrNonTermination = errors.New("evaluation exceeded limits (program may not terminate)")

// IndexedJoins toggles the indexed join path (exact column indexes and
// ground-prefix/suffix probes chosen by the planner). It is on by
// default and exists so benchmarks and tests can compare against the
// naive scan-every-tuple evaluator; both paths compute the same least
// model.
var IndexedJoins = true

// DeltaVariants toggles the delta-hoisted plan variants: per-(rule,
// delta-predicate) plans compiled alongside the base plan that run the
// changed atom first and index-probe the rest of the body. It is on by
// default and exists so benchmarks, tests and the differential fuzzer
// can compare against base-plan-plus-window maintenance; both settings
// compute the same fixpoint. An Engine captures the value once at
// NewEngine time, so concurrently used engines never race on the
// global; semi-naive rounds inside Prepared.Eval read it per call.
var DeltaVariants = true

// WellFoundedPruning toggles the overdeletion pruner's well-founded
// support check (see maintenance.overdelete): with it off, every
// candidate reached by the deletion chase is overdeleted and must be
// rescued by rederivation — textbook DRed, the pre-stamp baseline the
// retract benchmarks compare against. Both settings reach the same
// fixpoint; pruning only changes how much of the downward closure is
// touched. Captured once per Engine at NewEngine time, like
// DeltaVariants.
var WellFoundedPruning = true

// Limits bound and configure an evaluation. Zero values mean "use the
// default".
type Limits struct {
	// MaxFacts bounds the total number of derived facts.
	MaxFacts int
	// MaxIterations bounds fixpoint rounds per stratum.
	MaxIterations int
	// MaxPathLen bounds the length of any derived path (0 = unbounded).
	MaxPathLen int
	// Parallelism sets the number of worker goroutines evaluating each
	// fixpoint round. 0 and 1 select the sequential evaluator; values
	// above 1 select the parallel evaluator with that many workers; a
	// negative value uses runtime.GOMAXPROCS(0). Both evaluators
	// compute the same least model (the parallel one deterministically,
	// independent of scheduling); parallelism only changes the
	// wall-clock cost of getting there.
	Parallelism int
}

// DefaultLimits are generous enough for all paper examples.
var DefaultLimits = Limits{MaxFacts: 1 << 20, MaxIterations: 1 << 20}

func (l Limits) orDefault() Limits {
	if l.MaxFacts == 0 {
		l.MaxFacts = DefaultLimits.MaxFacts
	}
	if l.MaxIterations == 0 {
		l.MaxIterations = DefaultLimits.MaxIterations
	}
	return l
}

// workers normalizes the Parallelism knob to a concrete worker count.
func (l Limits) workers() int {
	switch {
	case l.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case l.Parallelism <= 1:
		return 1
	default:
		return l.Parallelism
	}
}

// Eval computes P(I): the least instance extending edb that satisfies
// every rule, stratum by stratum (paper §2.3). The input instance is
// not modified (its relations are shared copy-on-write with the
// result, see Prepared.Eval). The result contains the EDB facts plus
// all derived IDB facts.
//
// Eval compiles the program on every call; callers evaluating the same
// program repeatedly should Compile once and reuse the *Prepared, or
// keep a live materialized view with an Engine.
func Eval(prog ast.Program, edb *instance.Instance, limits Limits) (*instance.Instance, error) {
	p, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	return p.Eval(edb, limits)
}

// Query evaluates the program and returns the contents of one output
// relation; see Prepared.Query. Validation, planning and arities are
// computed once per call through the shared compile path.
func Query(prog ast.Program, edb *instance.Instance, output string, limits Limits) (*instance.Relation, error) {
	p, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	return p.Query(edb, output, limits)
}

// Holds evaluates the program and reports whether the nullary output
// relation holds (boolean queries, §5.1.1); see Prepared.Holds.
func Holds(prog ast.Program, edb *instance.Instance, output string, limits Limits) (bool, error) {
	p, err := Compile(prog)
	if err != nil {
		return false, err
	}
	return p.Holds(edb, output, limits)
}

// Explain compiles every rule of the program and returns, in rule
// order, a one-line description of the join plan the evaluator will
// execute: the chosen predicate order and, per predicate, the access
// path (exact index, ground-prefix index, or scan).
func Explain(prog ast.Program) ([]string, error) {
	p, err := Compile(prog)
	if err != nil {
		return nil, err
	}
	return p.Explain(), nil
}

// localSizes returns the current tuple-log high-water mark (Size, not
// the live count) of every local (head) relation present in the
// instance; absent relations are simply not in the map, which reads as
// 0. Delta windows are position ranges, so all watermark bookkeeping
// uses Size — with tombstones present Len would undercount positions.
func localSizes(local map[string]bool, inst *instance.Instance) map[string]int {
	m := make(map[string]int, len(local))
	for name := range local {
		if rel := inst.Relation(name); rel != nil {
			m[name] = rel.Size()
		}
	}
	return m
}

// runStratum runs the semi-naive fixpoint of one compiled stratum from
// scratch. Deltas are tracked by watermark: relations are append-only,
// so the facts derived in a round are exactly the insertion window
// [len before, len after), iterated in place via Relation.Slice — no
// per-round delta instances.
//
// With Limits.Parallelism > 1 each round's work — one unit per rule in
// round 0, one per (rule, delta-restricted predicate, window slice)
// afterwards — is fanned out across a bounded worker pool. Relations
// are frozen during the fan-out (workers only read the shared
// instance, deriving into private buffers) and the buffers are merged
// single-threaded at the round barrier. Merging in work-unit order
// keeps the result instance — including its insertion order —
// independent of goroutine scheduling.
//
// visTag is the derivation-stamp tag facts derived by this stratum are
// born with (si+1 for stratum si; see instance.MakeStamp); 0 means the
// run neither tags nor filters (Prepared.Eval on a fresh result
// instance, where strata are already ordered by construction).
func runStratum(plans []*plan, local map[string]bool, inst *instance.Instance, limits Limits, derived *int, visTag uint64) error {
	workers := limits.workers()
	hb := &headScratch{}
	seqSink := func(head ast.Pred, env *Env) error {
		return derive(head, env, inst, limits, derived, hb, visTag)
	}

	// Round 0: evaluate every rule against the full instance.
	prev := localSizes(local, inst)
	if workers > 1 {
		items := make([]workItem, len(plans))
		for i, p := range plans {
			items[i] = workItem{plan: p, deltaStep: -1}
		}
		if err := runRoundParallel(items, inst, workers, limits, derived, visTag); err != nil {
			return err
		}
	} else {
		for _, p := range plans {
			if err := runPlanOpts(p, inst, -1, 0, 0, seqSink, runOpts{negStep: -1, visTag: visTag}); err != nil {
				return err
			}
		}
	}
	return fixpointRounds(plans, local, inst, limits, derived, prev, DeltaVariants, nil, visTag)
}

// deltaPlan resolves which plan runs for the k-th delta-restricted
// positive predicate of p: with variants enabled and compiled, the
// hoisted variant (whose delta step is always step 0); otherwise the
// base plan windowed at the occurrence's own step. The two shapes
// enumerate exactly the same (rule, changed-atom) pairs — p.variants
// is indexed by body order, p.predSteps by execution order — so
// switching between them changes join order only, never coverage.
func deltaPlan(p *plan, k int, variants bool) (run *plan, deltaStep int) {
	if variants && len(p.variants) > 0 {
		return p.variants[k], 0
	}
	return p, p.predSteps[k]
}

// fixpointRounds iterates semi-naive rounds until no local relation
// grows: each round re-evaluates the stratum's rules with one local
// positive predicate restricted to the window of facts derived since
// the window start recorded in prev; the appended facts form the next
// round's windows. Shared by the from-scratch evaluator (after its
// round 0) and the incremental maintainer (after its delta round).
// With variants enabled the delta-restricted runs use the hoisted
// per-delta plans (see deltaPlan); pstats, when non-nil, accumulates
// plan-execution counters for the maintenance stats.
func fixpointRounds(plans []*plan, local map[string]bool, inst *instance.Instance, limits Limits, derived *int, prev map[string]int, variants bool, pstats *PlanStats, visTag uint64) error {
	workers := limits.workers()
	hb := &headScratch{}
	seqSink := func(head ast.Pred, env *Env) error {
		return derive(head, env, inst, limits, derived, hb, visTag)
	}
	for iter := 0; ; iter++ {
		cur := localSizes(local, inst)
		grew := false
		for name, n := range cur {
			if n > prev[name] {
				grew = true
				break
			}
		}
		if !grew {
			return nil
		}
		if iter >= limits.MaxIterations {
			return fmt.Errorf("%w: %d fixpoint rounds", ErrNonTermination, iter)
		}
		if workers > 1 {
			if err := runRoundParallel(deltaItems(plans, local, prev, cur, workers, variants, pstats), inst, workers, limits, derived, visTag); err != nil {
				return err
			}
		} else {
			for _, p := range plans {
				for k := range p.predSteps {
					run, deltaStep := deltaPlan(p, k, variants)
					name := run.steps[deltaStep].pred.Name
					if !local[name] {
						continue
					}
					lo, hi := prev[name], cur[name]
					if hi <= lo {
						continue
					}
					run.note(pstats, deltaStep)
					if err := runPlanOpts(run, inst, deltaStep, lo, hi, seqSink, runOpts{negStep: -1, visTag: visTag}); err != nil {
						return err
					}
				}
			}
		}
		prev = cur
	}
}

// sinkFunc consumes one derivation: the rule head instantiated under
// the valuation the body search arrived at. The sequential evaluator
// derives straight into the shared instance; parallel workers derive
// into private buffers merged at the round barrier.
type sinkFunc func(head ast.Pred, env *Env) error

// stepScratch holds the per-step reusable buffers of one plan run:
// probe values, unbound-column projections, and negated-literal
// evaluation results are rebuilt in place for every binding reaching
// the step instead of being reallocated. Safe because the buffers are
// private to the run (worker-private under the parallel protocol) and
// nothing downstream retains them: index and membership probes compare
// inside the call, and head tuples are copied on insert.
type stepScratch struct {
	vals []value.Path   // exact-index probe values (one per bound column)
	sub  []value.Path   // unbound-column projection of a candidate tuple
	neg  instance.Tuple // negated-predicate probe tuple
	bufA value.Path     // ground side of equations; prefix probes
	bufB value.Path     // right side of negated equations
}

// runOpts extends a plan run for the DRed maintenance phases; the zero
// value (with negStep -1) is an ordinary run.
type runOpts struct {
	// deltaRel substitutes a side relation for the delta step's
	// relation: the step iterates deltaRel's window instead of the
	// instance relation of the same name. The overdeletion phase uses it
	// to join the set of deleted facts against the rest of the body.
	deltaRel *instance.Relation
	// includeDead makes non-delta positive predicate steps match
	// tombstoned tuples too, so the join sees a superset of the
	// pre-deletion state: live tuples plus every tombstone not yet
	// compacted (this run's deletions, and any stale ones below the
	// engine's amortized-compaction threshold). A superset is exactly
	// the direction DRed's overdeletion needs — extra candidates are
	// restored by rederivation — and the stale tombstones only cost
	// churn, never correctness. The delta step always skips tombstones.
	includeDead bool
	// negStep, when >= 0, turns the negated predicate step at that index
	// into a positive delta probe: the step succeeds exactly when
	// negProbe accepts the ground tuple (instead of when the relation
	// does not contain it). Used to restrict a run to derivations that
	// depend on a change of the negated relation.
	negStep  int
	negProbe func(h uint64, t instance.Tuple) bool
	// visTag, when nonzero, restricts every positive step and negation
	// probe to the stratum-exact view: only tuple-log positions whose
	// derivation stamp carries a tag at most visTag (si+1 for stratum
	// si; base facts are tagged 0) are visible. This is how maintenance
	// reproduces Prepared.Eval's stratum-ordered pass — a side atom or
	// negated atom never sees facts a later stratum produced. 0 (the
	// from-scratch evaluator) reads everything.
	visTag uint64
	// boundHeads/boundBirth are the overdeletion pruner's well-founded
	// support check: positive non-delta steps over a relation named in
	// boundHeads (the candidate's stratum's heads — the relations still
	// in flux) only accept supports stamped before the candidate:
	// produced by an earlier stratum (tag < visTag), or born earlier in
	// this stratum (birth < boundBirth). Birth stamps are issued by one
	// monotone counter, so justification chains strictly decrease and
	// circular keep-alives are impossible — including cycles through
	// sibling relations of the same stratum, which a per-relation
	// position measure could not order.
	boundHeads map[string]bool
	boundBirth uint64
	// env pre-seeds the valuation (goal-directed rederivation binds the
	// head against a candidate fact before running the body). Nil means
	// a fresh environment.
	env *Env
}

// stepView builds the stamp/tombstone view one positive step probes
// under: the delta step never includes tombstones (a deleted fact is
// no longer part of the delta) and never carries the pruner's birth
// bound (the delta is the change set itself, not a support).
func (opts *runOpts) stepView(s *step, isDelta bool) instance.View {
	v := instance.View{MaxTag: opts.visTag}
	if !isDelta {
		v.Dead = opts.includeDead
		if opts.boundHeads != nil && opts.boundHeads[s.pred.Name] {
			v.MaxBirth = opts.boundBirth
		}
	}
	return v
}

// runPlan evaluates one rule, feeding every derivation to sink. If
// deltaStep >= 0, the positive predicate at that step index iterates
// only the insertion window [deltaLo, deltaHi) of its relation instead
// of all tuples.
func runPlan(p *plan, inst *instance.Instance, deltaStep, deltaLo, deltaHi int, sink sinkFunc) error {
	return runPlanOpts(p, inst, deltaStep, deltaLo, deltaHi, sink, runOpts{negStep: -1})
}

// runPlanOpts is runPlan with the DRed extensions; see runOpts.
func runPlanOpts(p *plan, inst *instance.Instance, deltaStep, deltaLo, deltaHi int, sink sinkFunc, opts runOpts) error {
	env := opts.env
	if env == nil {
		env = NewEnv()
	}
	// Resolve each step's relation and exact index once per run: exec
	// fires once per binding reaching the step, far too hot for map and
	// index-signature lookups. A relation first created by this very
	// run's derivations stays unseen until the next semi-naive round,
	// whose delta window covers the new facts.
	rels := make([]*instance.Relation, len(p.steps))
	idxs := make([]*instance.Index, len(p.steps))
	views := make([]instance.View, len(p.steps))
	scratch := make([]stepScratch, len(p.steps))
	for i := range p.steps {
		s := &p.steps[i]
		switch s.kind {
		case stepPred:
			scratch[i].vals = make([]value.Path, len(s.boundCols))
			scratch[i].sub = make([]value.Path, len(s.unboundCols))
			views[i] = opts.stepView(s, i == deltaStep)
		case stepNegPred:
			scratch[i].neg = make(instance.Tuple, len(s.pred.Args))
		}
		if s.kind != stepPred && s.kind != stepNegPred {
			continue
		}
		rels[i] = inst.Relation(s.pred.Name)
		if i == deltaStep && opts.deltaRel != nil {
			rels[i] = opts.deltaRel
		}
		if s.kind == stepPred && IndexedJoins && rels[i] != nil &&
			rels[i].Arity == len(s.pred.Args) && len(s.boundCols) > 0 {
			idxs[i] = rels[i].Index(s.boundCols...)
		}
	}
	var evalErr error
	var exec func(i int)
	exec = func(i int) {
		if evalErr != nil {
			return
		}
		if i == len(p.steps) {
			evalErr = sink(p.rule.Head, env)
			return
		}
		s := p.steps[i]
		switch s.kind {
		case stepPred:
			rel := rels[i]
			if rel == nil {
				return
			}
			if rel.Arity != len(s.pred.Args) {
				evalErr = fmt.Errorf("predicate %s used with arity %d but relation has arity %d", s.pred.Name, len(s.pred.Args), rel.Arity)
				return
			}
			lo, hi := 0, rel.Size()
			if i == deltaStep {
				lo, hi = deltaLo, deltaHi
			}
			// The step's view carries tombstone visibility (the DRed
			// overdelete joins against the pre-deletion state), the
			// stamp tag bound (stratum-exact reads), and the pruner's
			// birth bound (well-founded support check); see stepView.
			v := views[i]
			sc := &scratch[i]
			if idxs[i] != nil {
				// Exact probe: the ground argument positions pick the
				// candidates; only the remaining columns need matching.
				// Probe values and projections are built in the step's
				// reusable scratch.
				for j, c := range s.boundCols {
					sc.vals[j] = env.EvalAppend(s.pred.Args[c], sc.vals[j][:0])
				}
				for _, pos := range idxs[i].LookupView(v, sc.vals...) {
					if pos < lo || pos >= hi {
						continue
					}
					if len(s.unboundCols) == 0 {
						exec(i + 1)
					} else {
						t := rel.TupleAt(pos)
						for j, c := range s.unboundCols {
							sc.sub[j] = t[c]
						}
						env.MatchTuple(s.unboundArgs, sc.sub, func() { exec(i + 1) })
					}
					if evalErr != nil {
						return
					}
				}
				return
			}
			if IndexedJoins && s.prefixCol >= 0 {
				// Prefix probe: the ground prefix of one argument fixes
				// a prefix of the corresponding column.
				sc.bufA = env.EvalAppend(s.pred.Args[s.prefixCol][:s.prefixLen], sc.bufA[:0])
				prefix := sc.bufA
				if len(prefix) > 0 {
					for _, pos := range rel.PrefixLookupView(v, s.prefixCol, prefix) {
						if pos < lo || pos >= hi {
							continue
						}
						env.MatchTuple(s.pred.Args, rel.TupleAt(pos), func() { exec(i + 1) })
						if evalErr != nil {
							return
						}
					}
					return
				}
			}
			if IndexedJoins && s.suffixCol >= 0 {
				// Suffix probe: the ground trailing terms of one argument
				// fix a suffix of the corresponding column (the paper's
				// bound-suffix patterns). Term evaluation concatenates, so
				// the evaluated trailing terms ARE the suffix of the
				// evaluated argument; the full MatchTuple below still
				// verifies every candidate.
				arg := s.pred.Args[s.suffixCol]
				sc.bufA = env.EvalAppend(arg[len(arg)-s.suffixLen:], sc.bufA[:0])
				suffix := sc.bufA
				if len(suffix) > 0 {
					for _, pos := range rel.SuffixLookupView(v, s.suffixCol, suffix) {
						if pos < lo || pos >= hi {
							continue
						}
						env.MatchTuple(s.pred.Args, rel.TupleAt(pos), func() { exec(i + 1) })
						if evalErr != nil {
							return
						}
					}
					return
				}
			}
			for pos := lo; pos < hi; pos++ {
				if !v.Dead && !rel.Live(pos) {
					continue
				}
				if !v.Admits(rel.StampAt(pos)) {
					continue
				}
				env.MatchTuple(s.pred.Args, rel.TupleAt(pos), func() { exec(i + 1) })
				if evalErr != nil {
					return
				}
			}
		case stepEq:
			// The match binds pattern variables to subslices of the
			// scratch; by the time this step runs again the match has
			// unwound, so reuse is safe.
			sc := &scratch[i]
			sc.bufA = env.EvalAppend(s.ground, sc.bufA[:0])
			env.Match(s.pattern, sc.bufA, func() { exec(i + 1) })
		case stepNegPred:
			// All arguments are ground by safety: a single probe of the
			// relation's built-in full-tuple hash index. Negated
			// relations live in earlier strata, so the resolution
			// hoisted above cannot go stale mid-run.
			sc := &scratch[i]
			if i == opts.negStep {
				// Delta probe: the run is restricted to derivations that
				// depend on a change of this negated relation, so the
				// step succeeds exactly when the ground tuple is in the
				// change set (and fails otherwise, replacing the normal
				// absence check; the probe itself encodes the required
				// relationship to the live relation).
				for k, a := range s.pred.Args {
					sc.neg[k] = env.EvalAppend(a, sc.neg[k][:0])
				}
				if opts.negProbe(sc.neg.Hash(), sc.neg) {
					exec(i + 1)
				}
				return
			}
			if rel := rels[i]; rel != nil {
				for k, a := range s.pred.Args {
					sc.neg[k] = env.EvalAppend(a, sc.neg[k][:0])
				}
				// Negated relations live in earlier strata, so under a
				// stratum-exact view the probe must not see facts a later
				// handwritten stratum re-derives into the same head.
				if rel.ContainsHashedView(instance.View{MaxTag: opts.visTag}, sc.neg.Hash(), sc.neg) {
					return
				}
			}
			exec(i + 1)
		case stepNegEq:
			sc := &scratch[i]
			sc.bufA = env.EvalAppend(s.ground, sc.bufA[:0])
			sc.bufB = env.EvalAppend(s.pattern, sc.bufB[:0])
			if !sc.bufA.Equal(sc.bufB) {
				exec(i + 1)
			}
		}
	}
	exec(0)
	return evalErr
}

// headScratch owns the reusable buffers one sink uses to instantiate
// rule heads: the tuple and its per-argument path buffers are rebuilt
// in place for every derivation, and only tuples that turn out to be
// new are copied into stable storage (instance.CopyTuple). In the hot
// fixpoint rounds most derivations rediscover known facts, so most
// derivations allocate nothing.
type headScratch struct {
	tuple instance.Tuple
	bufs  []value.Path
}

// build instantiates the rule head under the current valuation into
// the scratch, enforcing MaxPathLen. The returned tuple aliases the
// scratch: probe with it, then CopyTuple before inserting. Shared by
// the sequential derive and the parallel bufferSink so the two
// evaluators cannot drift.
func (hb *headScratch) build(head ast.Pred, env *Env, limits Limits) (instance.Tuple, error) {
	for len(hb.bufs) < len(head.Args) {
		hb.bufs = append(hb.bufs, nil)
	}
	hb.tuple = hb.tuple[:0]
	for i, a := range head.Args {
		hb.bufs[i] = env.EvalAppend(a, hb.bufs[i][:0])
		if limits.MaxPathLen > 0 && len(hb.bufs[i]) > limits.MaxPathLen {
			return nil, fmt.Errorf("%w: derived path of length %d exceeds limit %d", ErrNonTermination, len(hb.bufs[i]), limits.MaxPathLen)
		}
		hb.tuple = append(hb.tuple, hb.bufs[i])
	}
	return hb.tuple, nil
}

func derive(head ast.Pred, env *Env, inst *instance.Instance, limits Limits, derived *int, hb *headScratch, visTag uint64) error {
	t, err := hb.build(head, env, limits)
	if err != nil {
		return err
	}
	rel := inst.Ensure(head.Name, len(head.Args))
	h := t.Hash()
	if !rel.AddFromScratch(h, t) {
		// Promotion: the fact exists but was produced by a later stratum
		// (its stamp tag exceeds visTag), so under the stratum-exact view
		// it is invisible here. Re-add it so it is born at this stratum —
		// the fresh position lands in the current insertion window, and
		// downstream strata (and negation probes) see it exactly where
		// Prepared.Eval's stratum-ordered pass would have put it. The fact
		// set is unchanged, so *derived is not incremented.
		if visTag == 0 || instance.StampTag(rel.StampAt(rel.PositionHashed(h, t))) <= visTag {
			return nil
		}
		rel.DeleteHashed(h, t)
		rel.AddFromScratch(h, t)
		return nil
	}
	*derived++
	if *derived > limits.MaxFacts {
		return fmt.Errorf("%w: more than %d derived facts", ErrNonTermination, limits.MaxFacts)
	}
	return nil
}

// Valuation is an immutable snapshot valuation, used by tests and by
// the rewrite engine's equivalence checks.
type Valuation map[ast.Var]value.Path
