package eval

// Parallel semi-naive evaluation: within one fixpoint round the work
// partitions cleanly — by rule in round 0, by (rule, delta-restricted
// predicate, delta-window slice) in the semi-naive rounds — because a
// join is a union over bindings and the delta window is a union of its
// slices. The round protocol is freeze → fan-out → barrier → merge:
//
//  1. freeze: no relation of the shared instance is written for the
//     rest of the round; every secondary index built so far is caught
//     up single-threaded so worker probes hit the lock-free fast path;
//  2. fan-out: a bounded pool of workers drains the round's work
//     items, each deriving into a worker-private buffer instance
//     (facts already in the shared instance are dropped by a read-only
//     membership probe);
//  3. barrier: all workers finish (the first error wins);
//  4. merge: the buffers are folded into the shared instance
//     single-threaded, in work-item order, deduplicated by the
//     relations' full-tuple hash indexes. The appended facts form the
//     next round's delta windows, exactly as in sequential evaluation.
//
// Merging in work-item order makes the result instance — including
// its insertion order — a pure function of the program and input,
// independent of how goroutines were scheduled.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
)

// workItem is one unit of a round's fan-out: a rule to run, with an
// optional delta restriction (deltaStep < 0 means none) narrowed to
// the window slice [deltaLo, deltaHi).
type workItem struct {
	plan      *plan
	deltaStep int
	deltaLo   int
	deltaHi   int
}

// minParallelChunk is the smallest delta-window slice worth handing to
// a worker: below this, the fan-out overhead (buffer instance, channel
// hop, merge pass) dominates the join work inside the slice.
const minParallelChunk = 32

// deltaItems builds the work items of one semi-naive round: for each
// rule and each delta-restricted local predicate, the delta window
// [prev, cur) sliced into up to `workers` contiguous chunks. With
// variants each item runs the hoisted per-delta plan (see deltaPlan);
// pstats, when non-nil, counts one plan execution per item.
func deltaItems(plans []*plan, local map[string]bool, prev, cur map[string]int, workers int, variants bool, pstats *PlanStats) []workItem {
	var items []workItem
	for _, p := range plans {
		for k := range p.predSteps {
			run, deltaStep := deltaPlan(p, k, variants)
			name := run.steps[deltaStep].pred.Name
			if !local[name] {
				continue
			}
			lo, hi := prev[name], cur[name]
			if hi <= lo {
				continue
			}
			sl := sliceWindow(run, deltaStep, lo, hi, workers)
			for range sl {
				run.note(pstats, deltaStep)
			}
			items = append(items, sl...)
		}
	}
	return items
}

// sliceWindow slices one delta window [lo, hi) of a plan's predicate
// step into up to `workers` contiguous chunks of at least
// minParallelChunk tuples, returning one work item per chunk.
func sliceWindow(p *plan, stepIdx, lo, hi, workers int) []workItem {
	chunks := workers
	if most := (hi - lo) / minParallelChunk; chunks > most {
		chunks = most
	}
	if chunks < 1 {
		chunks = 1
	}
	items := make([]workItem, 0, chunks)
	for c := 0; c < chunks; c++ {
		clo := lo + (hi-lo)*c/chunks
		chi := lo + (hi-lo)*(c+1)/chunks
		items = append(items, workItem{plan: p, deltaStep: stepIdx, deltaLo: clo, deltaHi: chi})
	}
	return items
}

// freezeIndexes prepares the shared instance for a read-only fan-out:
// every exact index a work item's plan will probe is created and
// caught up, and every already-built secondary index of a relation the
// round reads absorbs pending tuples. After this, the common worker
// probes are pure map reads; only an index shape first probed
// mid-round (a new ground-prefix length) still builds lazily, under
// the relation's internal lock.
func freezeIndexes(items []workItem, inst *instance.Instance) {
	caught := map[*instance.Relation]bool{}
	for _, it := range items {
		for _, s := range it.plan.steps {
			if s.kind != stepPred && s.kind != stepNegPred {
				continue
			}
			rel := inst.Relation(s.pred.Name)
			if rel == nil {
				continue
			}
			if !caught[rel] {
				caught[rel] = true
				rel.CatchUpIndexes()
			}
			if s.kind == stepPred && IndexedJoins && rel.Arity == len(s.pred.Args) && len(s.boundCols) > 0 {
				rel.Index(s.boundCols...).CatchUp()
			}
		}
	}
}

// runRoundParallel evaluates one round's work items on a pool of
// `workers` goroutines and merges the derivations at the barrier; see
// the package comment at the top of this file for the protocol.
func runRoundParallel(items []workItem, inst *instance.Instance, workers int, limits Limits, derived *int, visTag uint64) error {
	if len(items) == 0 {
		return nil
	}
	freezeIndexes(items, inst)
	if workers > len(items) {
		workers = len(items)
	}
	// budget caps each item's private buffer at the facts still
	// admissible under MaxFacts, so a runaway rule trips
	// ErrNonTermination inside the round; the shared stop flag then
	// aborts the other items (pending ones never start, in-flight ones
	// bail at their next derivation) instead of letting each buffer up
	// to the full budget.
	budget := limits.MaxFacts - *derived
	var stop atomic.Bool
	bufs := make([]*instance.Instance, len(items))
	errs := make([]error, len(items))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if stop.Load() {
					errs[idx] = errRoundAborted
					continue
				}
				it := items[idx]
				buf := instance.New()
				bufs[idx] = buf
				errs[idx] = runPlanOpts(it.plan, inst, it.deltaStep, it.deltaLo, it.deltaHi,
					bufferSink(inst, buf, limits, budget, &stop, visTag), runOpts{negStep: -1, visTag: visTag})
				if errs[idx] != nil {
					stop.Store(true)
				}
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, errRoundAborted) {
			aborted = err
			continue
		}
		return err
	}
	if aborted != nil {
		return aborted
	}
	// Merge at the barrier, single-threaded. Work-item order (then the
	// buffer's sorted relation names, then buffer insertion order) is
	// deterministic, so the merged instance does not depend on which
	// worker ran what when.
	for _, buf := range bufs {
		for _, name := range buf.Names() {
			rel := buf.Relation(name)
			dst := inst.Ensure(name, rel.Arity)
			for pos := 0; pos < rel.Size(); pos++ {
				if !rel.Live(pos) {
					continue
				}
				// Reuse the hash the buffer computed when the worker
				// derived the tuple; the merge never rehashes. (Worker
				// buffers are never deleted from today, but the
				// position-based loop keeps tuple↔hash pairing correct
				// even if that ever changes.)
				h, t := rel.HashAt(pos), rel.TupleAt(pos)
				if dst.AddHashed(h, t) {
					*derived++
					if *derived > limits.MaxFacts {
						return fmt.Errorf("%w: more than %d derived facts", ErrNonTermination, limits.MaxFacts)
					}
				} else if visTag != 0 && instance.StampTag(dst.StampAt(dst.PositionHashed(h, t))) > visTag {
					// Promotion at the merge: the shared instance holds the
					// fact stamped by a later stratum, invisible under this
					// stratum's view. Re-add so it is born here, exactly as
					// the sequential derive does (see eval.derive).
					dst.DeleteHashed(h, t)
					dst.AddHashed(h, t)
				}
			}
		}
	}
	return nil
}

// errRoundAborted marks work a worker skipped or cut short because a
// sibling item already failed; the sibling's error is the one reported.
var errRoundAborted = errors.New("eval: round aborted after a sibling work item failed")

// bufferSink returns a sink that derives into a worker-private buffer.
// Facts the shared instance already holds are dropped via a read-only
// membership probe; the rest are deduplicated locally, so a buffer
// never exceeds the number of genuinely new facts it contributes. The
// shared-instance probe is view-bounded by visTag: a fact present only
// with a later stratum's stamp is buffered anyway, so the merge can
// promote it into this stratum's view.
func bufferSink(inst, buf *instance.Instance, limits Limits, budget int, stop *atomic.Bool, visTag uint64) sinkFunc {
	added := 0
	hb := &headScratch{}
	return func(head ast.Pred, env *Env) error {
		if stop.Load() {
			return errRoundAborted
		}
		t, err := hb.build(head, env, limits)
		if err != nil {
			return err
		}
		// One hash serves both membership probes and the insert; the
		// scratch tuple is copied only when the fact is genuinely new.
		h := t.Hash()
		if shared := inst.Relation(head.Name); shared != nil &&
			shared.ContainsHashedView(instance.View{MaxTag: visTag}, h, t) {
			return nil
		}
		if !buf.Ensure(head.Name, len(head.Args)).AddFromScratch(h, t) {
			return nil
		}
		added++
		if added > budget {
			return fmt.Errorf("%w: more than %d derived facts", ErrNonTermination, limits.MaxFacts)
		}
		return nil
	}
}
