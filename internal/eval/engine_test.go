package eval

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/value"
	"seqlog/internal/workload"
)

// namedFact is one (relation, tuple) pair of an EDB, for splitting an
// instance into an initial part and assert batches.
type namedFact struct {
	name string
	t    instance.Tuple
}

// splitEDB partitions the facts of edb: facts of IDB relations (seed
// facts the engine must receive at construction, since Assert rejects
// IDB names) plus the first `keep` non-IDB facts form the initial
// instance; the rest are returned in order as assertable facts.
func splitEDB(edb *instance.Instance, prep *Prepared, keep int, rng *rand.Rand) (*instance.Instance, []namedFact) {
	var facts []namedFact
	initial := instance.New()
	for _, name := range edb.Names() {
		r := edb.Relation(name)
		for _, t := range r.Tuples() {
			if prep.IsIDB(name) {
				initial.Ensure(name, r.Arity).Add(t)
				continue
			}
			facts = append(facts, namedFact{name, t})
		}
	}
	if rng != nil {
		rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
	}
	if keep > len(facts) {
		keep = len(facts)
	}
	for _, f := range facts[:keep] {
		initial.Ensure(f.name, len(f.t)).Add(f.t)
	}
	return initial, facts[keep:]
}

// assertInBatches drives an engine through the remaining facts in
// batches of the given size, failing the test on any Assert error.
func assertInBatches(t *testing.T, e *Engine, rest []namedFact, batch int) {
	t.Helper()
	for len(rest) > 0 {
		n := batch
		if n > len(rest) {
			n = len(rest)
		}
		delta := instance.New()
		for _, f := range rest[:n] {
			delta.Ensure(f.name, len(f.t)).Add(f.t)
		}
		rest = rest[n:]
		if _, err := e.Assert(delta); err != nil {
			t.Fatalf("Assert: %v", err)
		}
	}
}

// mustSnapshot unwraps Engine.Snapshot for tests on healthy engines.
func mustSnapshot(t *testing.T, e *Engine) *instance.Instance {
	t.Helper()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return snap
}

// TestEngineAssertMatchesEval is the differential acceptance test of
// incremental maintenance: on every terminating example query of the
// paper, feeding the EDB to an Engine in batches — several initial
// splits, batch sizes, insertion orders and worker counts — must
// materialize exactly the least model the from-scratch evaluator
// computes on the full EDB.
func TestEngineAssertMatchesEval(t *testing.T) {
	edbs := agreementEDBs(t)
	for _, q := range queries.All() {
		if !q.Terminating {
			continue
		}
		edb, ok := edbs[q.Name]
		if !ok {
			t.Fatalf("query %s has no agreement EDB; add one to agreementEDBs", q.Name)
		}
		prep, err := Compile(q.Program)
		if err != nil {
			t.Fatalf("%s: Compile: %v", q.Name, err)
		}
		want, err := prep.Eval(edb, Limits{})
		if err != nil {
			t.Fatalf("%s: Eval: %v", q.Name, err)
		}
		for _, cfg := range []struct {
			keep, batch, workers int
			seed                 int64 // 0 = keep EDB order
		}{
			{keep: 0, batch: 1},
			{keep: 0, batch: 5, seed: 1},
			{keep: 7, batch: 3, seed: 2},
			{keep: 3, batch: 1 << 30, seed: 3}, // one big batch
			{keep: 0, batch: 4, seed: 4, workers: 4},
		} {
			var rng *rand.Rand
			if cfg.seed != 0 {
				rng = rand.New(rand.NewSource(cfg.seed))
			}
			initial, rest := splitEDB(edb, prep, cfg.keep, rng)
			e, err := NewEngine(prep, initial, Limits{Parallelism: cfg.workers})
			if err != nil {
				t.Fatalf("%s %+v: NewEngine: %v", q.Name, cfg, err)
			}
			assertInBatches(t, e, rest, cfg.batch)
			got := mustSnapshot(t, e)
			if !got.Equal(want) {
				t.Errorf("%s %+v: engine materialization differs from Eval: %s",
					q.Name, cfg, instance.Diff(got, want))
			}
			rel, err := e.Query(q.Output)
			if err != nil {
				t.Fatalf("%s %+v: Query: %v", q.Name, cfg, err)
			}
			if wr := want.Relation(q.Output); wr != nil && !rel.Equal(wr) {
				t.Errorf("%s %+v: Query(%s) differs", q.Name, cfg, q.Output)
			}
		}
	}
}

// TestEngineRandomizedInsertionOrders hammers one recursive query with
// many random permutations and batch sizes: transitive closure is
// where incremental semi-naive has the most ways to go wrong (every
// edge order exercises a different delta cascade).
func TestEngineRandomizedInsertionOrders(t *testing.T) {
	q, err := queries.Get("reachability")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	edb := workload.Graph(21, 14, 40)
	want, err := prep.Eval(edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		initial, rest := splitEDB(edb, prep, rng.Intn(10), rng)
		workers := []int{1, 2, 4}[trial%3]
		e, err := NewEngine(prep, initial, Limits{Parallelism: workers})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertInBatches(t, e, rest, 1+rng.Intn(7))
		if got := mustSnapshot(t, e); !got.Equal(want) {
			t.Fatalf("trial %d (workers=%d): %s", trial, workers, instance.Diff(got, want))
		}
	}
}

// TestEngineSkipsUntouchedStrata pins the stats contract: asserting
// facts that only one stratum reads leaves the other strata untouched.
func TestEngineSkipsUntouchedStrata(t *testing.T) {
	prog := parser.MustParseProgram(`
S($x) :- R($x).
---
U($x) :- Q($x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a). Q(b).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Assert(parser.MustParseInstance(`Q(c). Q(d).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Asserted != 2 || stats.StrataSkipped != 1 || stats.StrataIncremental != 1 {
		t.Fatalf("stats = %+v, want 2 asserted, 1 skipped, 1 incremental", stats)
	}
	if stats.Derived != 2 || stats.Overdeleted != 0 || stats.Rederived != 0 {
		t.Fatalf("stats = %+v, want Derived=2 and no DRed work", stats)
	}
	// A batch of already-known facts is a no-op: every stratum skipped.
	stats, err = e.Assert(parser.MustParseInstance(`Q(c). R(a).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Asserted != 0 || stats.StrataSkipped != 2 || stats.Derived != 0 {
		t.Fatalf("noop stats = %+v", stats)
	}
}

// TestEngineNegationMaintenance checks both negation regimes:
// asserting into a relation an earlier stratum negates invalidates
// previously derived facts — maintained by targeted overdelete +
// rederive, never recomputation — while asserting facts no negation
// touches derives delta-first only.
func TestEngineNegationMaintenance(t *testing.T) {
	// W = nodes with an edge to a non-black node; S = edge sources not
	// in W (Theorem 5.5 shape, see TestBlackNodesStratifiedNegation).
	prog := parser.MustParseProgram(`
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a.b). R(a.c). R(d.b). B(b).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got := func() string {
		r, err := e.Query("S")
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, tup := range r.Sorted() {
			out = append(out, tup[0].String())
		}
		return fmt.Sprint(out)
	}
	if got() != "[d]" {
		t.Fatalf("S = %s, want [d]", got())
	}
	// c becomes black: a's last non-black edge target goes away. W(a)
	// is overdeleted (its only derivations used !B(c) or !B(b)), no
	// alternative derivation rederives it, and the net deletion of W(a)
	// enables S(a) through stratum 2's negation — all without
	// recomputing either stratum.
	stats, err := e.Assert(parser.MustParseInstance(`B(c).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.StrataIncremental != 2 || stats.Overdeleted != 1 || stats.Rederived != 0 {
		t.Fatalf("stats = %+v, want 2 incremental strata with 1 overdeletion", stats)
	}
	if stats.Derived != 0 { // -W(a) +S(a)
		t.Fatalf("stats = %+v, want net Derived=0 (one fact lost, one gained)", stats)
	}
	if got() != "[a d]" {
		t.Fatalf("after B(c): S = %s, want [a d]", got())
	}
	// Asserting an edge only changes R: stratum 1 derives W(e)
	// delta-first; stratum 2 sees the W insertion under negation but
	// finds no materialized fact to invalidate (S(e) never held).
	stats, err = e.Assert(parser.MustParseInstance(`R(e.f).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.StrataIncremental != 2 || stats.Overdeleted != 0 || stats.Derived != 1 {
		t.Fatalf("stats = %+v, want 2 incremental strata, 1 derived (W(e)), nothing overdeleted", stats)
	}
	if got() != "[a d]" {
		t.Fatalf("after R(e.f): S = %s, want [a d]", got())
	}
	// Differential check against from-scratch on the accumulated EDB.
	want, err := prep.Eval(parser.MustParseInstance(`R(a.b). R(a.c). R(d.b). B(b). B(c). R(e.f).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if snap := mustSnapshot(t, e); !snap.Equal(want) {
		t.Fatalf("negation maintenance diverged: %s", instance.Diff(snap, want))
	}
}

// TestEngineSeedIDBFactsSurviveOverdeletion: EDB-provided facts of an
// IDB relation are base facts, not derivations — overdeletion must
// never remove them.
func TestEngineSeedIDBFactsSurviveOverdeletion(t *testing.T) {
	prog := parser.MustParseProgram(`
S($x) :- R($x), !B($x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	// S(seed) comes from the EDB, not from the rule.
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a). R(b). S(seed).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Assert(parser.MustParseInstance(`B(b).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overdeleted != 1 || stats.Rederived != 0 || stats.Derived != -1 {
		t.Fatalf("stats = %+v, want S(b) overdeleted and not rederived", stats)
	}
	r, err := e.Query("S")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"seed": true, "a": true}
	if r.Len() != len(want) {
		t.Fatalf("S = %v", r.Sorted())
	}
	for _, tup := range r.Tuples() {
		if !want[tup[0].String()] {
			t.Fatalf("unexpected S fact %v", tup)
		}
	}
}

// TestEngineAssertErrors pins the validation at the Assert boundary.
func TestEngineAssertErrors(t *testing.T) {
	prep, err := Compile(parser.MustParseProgram(`S($x) :- R($x).`))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(parser.MustParseInstance(`S(b).`)); err == nil || !strings.Contains(err.Error(), "IDB") {
		t.Fatalf("asserting into IDB relation: err = %v", err)
	}
	bad := instance.New()
	bad.Add("R", instance.Tuple{value.PathOf("a"), value.PathOf("b")})
	if _, err := e.Assert(bad); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity clash: err = %v", err)
	}
	// A failed validation is not a failed maintenance: the engine stays usable.
	if _, err := e.Assert(parser.MustParseInstance(`R(b).`)); err != nil {
		t.Fatalf("engine unusable after rejected batch: %v", err)
	}
	if r, _ := e.Query("S"); r.Len() != 2 {
		t.Fatalf("S = %v", r.Sorted())
	}
	// Asserting into a relation the program never mentions is fine.
	if _, err := e.Assert(parser.MustParseInstance(`Extra(x.y).`)); err != nil {
		t.Fatalf("unknown relation: %v", err)
	}
}

// TestEngineLimitsAcrossAsserts: MaxFacts caps the total materialized
// IDB facts; once maintenance trips it, the engine refuses further use.
func TestEngineLimitsAcrossAsserts(t *testing.T) {
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, workload.Chain(4), Limits{MaxFacts: 40})
	if err != nil {
		t.Fatal(err)
	}
	var tripErr error
	for i := 4; i < 40; i++ {
		delta := instance.New()
		delta.AddPath("R", value.PathOf(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
		if _, tripErr = e.Assert(delta); tripErr != nil {
			break
		}
	}
	if !errors.Is(tripErr, ErrNonTermination) {
		t.Fatalf("expected MaxFacts to trip across asserts, got %v", tripErr)
	}
	if _, err := e.Assert(instance.New()); err == nil {
		t.Fatal("broken engine must refuse further asserts")
	}
	if _, err := e.Query("T"); err == nil {
		t.Fatal("broken engine must refuse queries")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("broken engine must refuse snapshots")
	}
}

// TestEngineSnapshotIsolation: a snapshot is a fixed state; asserts
// that happen after it never show through.
func TestEngineSnapshotIsolation(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, workload.Chain(5), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	snap := mustSnapshot(t, e)
	tBefore := snap.Relation("T").Len()
	rel, err := e.Query("T")
	if err != nil {
		t.Fatal(err)
	}
	delta := instance.New()
	delta.AddPath("R", value.PathOf("x0", "x1"))
	delta.AddPath("R", value.PathOf("x1", "x2"))
	if _, err := e.Assert(delta); err != nil {
		t.Fatal(err)
	}
	if snap.Relation("T").Len() != tBefore || rel.Len() != tBefore {
		t.Fatalf("snapshot moved: %d -> %d", tBefore, snap.Relation("T").Len())
	}
	if cur := mustSnapshot(t, e).Relation("T").Len(); cur <= tBefore {
		t.Fatalf("engine did not grow: %d", cur)
	}
}

// chainEDB builds the path graph c_lo -> ... -> c_hi as length-2
// paths in R (workload.Chain renames its endpoints, so chains of
// different lengths would not extend each other).
func chainEDB(lo, hi int) *instance.Instance {
	inst := instance.New()
	for i := lo; i < hi; i++ {
		inst.AddPath("R", value.PathOf(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
	}
	return inst
}

// TestEngineConcurrentSnapshotQueryDuringAssert is the -race test of
// the serving story: readers continuously take snapshots, run
// membership probes and build lazy indexes while a writer asserts
// batch after batch. Readers must always observe a consistent
// transitive closure (every chain edge's closure fact present for the
// prefix their snapshot covers) and never a torn state.
func TestEngineConcurrentSnapshotQueryDuringAssert(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, chainEDB(0, 8), Limits{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := e.Snapshot()
				if err != nil {
					panic(err)
				}
				tr := snap.Relation("T")
				if tr == nil {
					continue
				}
				n := tr.Len()
				// Exercise probe paths, including lazy index builds, on
				// the shared frozen storage.
				for k := 0; k < 8; k++ {
					pos := tr.Index(0).Lookup(tr.TupleAt(rng.Intn(n))[0])
					if len(pos) == 0 {
						panic("index lost a tuple present in the snapshot")
					}
				}
				if rel, err := e.Query("T"); err != nil || rel.Len() < n {
					panic(fmt.Sprintf("Query regressed: %v len=%d want>=%d", err, rel.Len(), n))
				}
			}
		}(int64(r))
	}
	for i := 8; i < 48; i++ {
		delta := instance.New()
		delta.AddPath("R", value.PathOf(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
		if _, err := e.Assert(delta); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Final state must equal from-scratch evaluation of the full chain.
	want, err := prep.Eval(chainEDB(0, 48), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineIncrementalIsDeltaDriven pins the headline property:
// asserting one edge that only extends a short dangling chain derives
// only the handful of new closure facts, not the whole relation.
func TestEngineIncrementalIsDeltaDriven(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, chainEDB(0, 64), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh disjoint edge: exactly one new closure fact.
	delta := instance.New()
	delta.AddPath("R", value.PathOf("zz0", "zz1"))
	stats, err := e.Assert(delta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != 1 || stats.StrataIncremental != 1 {
		t.Fatalf("stats = %+v, want exactly 1 derived fact via the incremental path", stats)
	}
	// Extending the 64-chain at the tail: 65 new reachability facts
	// (one per node that now reaches the new endpoint), no more.
	delta = instance.New()
	delta.AddPath("R", value.PathOf("c64", "c65"))
	stats, err = e.Assert(delta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Derived != 65 {
		t.Fatalf("stats = %+v, want exactly 65 new closure facts", stats)
	}
}

// TestEngineEpochHammerWithRetracts extends the serving -race story to
// the full write mix: snapshot readers pinned to their epoch's
// watermark keep probing (membership, lazy exact-index builds, full
// tombstone-view scans) while the writer cycles assert and retract
// epochs — retracts tombstone shared storage behind the Ensure
// barrier, and the engine's post-retract compaction rewrites chunks.
// Every reader must see exactly its epoch's closure, bit for bit,
// until the end.
func TestEngineEpochHammerWithRetracts(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, chainEDB(0, 16), Limits{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	hold := make(chan struct{})
	for epoch := 0; epoch < 24; epoch++ {
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(snap *instance.Instance, seed int64) {
			defer wg.Done()
			tr := snap.Relation("T")
			want := tr.Len()
			rng := rand.New(rand.NewSource(seed))
			<-hold // maximize overlap with later write epochs
			for round := 0; round < 12; round++ {
				if tr.Len() != want {
					panic("snapshot closure size drifted")
				}
				live := 0
				for pos := 0; pos < tr.Size(); pos++ {
					if tr.Live(pos) {
						live++
					}
				}
				if live != want {
					panic("snapshot tombstone view drifted")
				}
				for k := 0; k < 4; k++ {
					probe := tr.TupleAt(rng.Intn(tr.Size()))
					if tr.Live(tr.PositionHashed(probe.Hash(), probe)) != tr.Contains(probe) {
						panic("position/membership disagree on the snapshot")
					}
					if len(tr.Index(0).Lookup(probe[0])) == 0 && tr.Contains(probe) {
						panic("lazy index lost a live snapshot tuple")
					}
				}
			}
		}(snap, int64(epoch))

		// Alternate write epochs: grow the chain, then retract the
		// newest edges again (DRed + tombstones + compaction).
		lo := 16 + epoch*4
		if _, err := e.Assert(chainEDB(lo, lo+4)); err != nil {
			t.Fatal(err)
		}
		if epoch%3 == 2 {
			if _, err := e.Retract(chainEDB(lo+2, lo+4)); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Assert(chainEDB(lo+2, lo+4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(hold)
	wg.Wait()

	st := e.Stats()
	if st.Clones.BarrierClones == 0 || st.Clones.SharedChunks == 0 {
		t.Fatalf("epochs must have exercised the write barrier: %+v", st.Clones)
	}
	want, err := prep.Eval(chainEDB(0, 16+24*4), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineCloneTelemetry pins the per-call clone counters: the first
// write after a snapshot pays barrier clones, the same write without an
// intervening snapshot pays none, and the engine totals accumulate.
func TestEngineCloneTelemetry(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, chainEDB(0, 8), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Assert(chainEDB(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clones.BarrierClones == 0 {
		t.Fatalf("first write after a snapshot must clone: %+v", stats.Clones)
	}
	stats, err = e.Assert(chainEDB(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Clones.BarrierClones != 0 {
		t.Fatalf("write without an intervening snapshot must not clone: %+v", stats.Clones)
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	rstats, err := e.Retract(chainEDB(9, 10))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Clones.BarrierClones == 0 {
		t.Fatalf("first retract after a snapshot must clone: %+v", rstats.Clones)
	}
	if tot := e.Stats().Clones; tot.BarrierClones < stats.Clones.BarrierClones+rstats.Clones.BarrierClones {
		t.Fatalf("engine totals must accumulate per-call deltas: %+v", tot)
	}
}
