package eval

import (
	"fmt"
	"sync"

	"seqlog/internal/instance"
)

// Engine is a persistent evaluator: a compiled program plus a live
// materialized instance (EDB and all derived IDB facts, kept at
// fixpoint). Where Eval is batch — re-validate, re-plan, re-derive
// everything per call — an Engine pays compilation and the initial
// fixpoint once and then maintains the materialization incrementally
// as facts arrive (Assert) and are withdrawn (Retract), serving reads
// from consistent copy-on-write snapshots in the meantime. Both
// directions run delete-and-rederive (DRed) maintenance; see dred.go.
//
// Concurrency: all Engine methods are safe for concurrent use; writes
// (Assert, Retract) are serialized by an internal mutex, and reads
// (Query, Holds, Snapshot, Stats) take the same mutex only long enough
// to freeze the state they return. A snapshot, once returned, is
// immutable and may be read by any number of goroutines while further
// maintenance proceeds.
type Engine struct {
	mu       sync.Mutex
	prep     *Prepared
	limits   Limits
	inst     *instance.Instance
	derived  int // IDB facts currently materialized beyond the seeds
	asserts  int
	retracts int
	last     AssertStats
	lastRet  RetractStats
	// variants is the DeltaVariants setting captured at NewEngine time:
	// maintenance runs the delta-hoisted per-(rule, delta-predicate)
	// plans when set, the base plans with a window otherwise. Captured
	// per engine so concurrently used engines (the differential fuzzer
	// interleaves both settings) never race on the global.
	variants bool
	// pruning is the WellFoundedPruning setting captured at NewEngine
	// time: the overdeletion pruner's stamp-ordered support check runs
	// when set; otherwise every candidate is overdeleted and rescued by
	// rederivation (textbook DRed, the benchmark baseline).
	pruning bool
	// stamper issues the derivation stamp of every tuple appended to the
	// materialization: a monotone birth counter plus the producing
	// stratum's tag (si+1; 0 for base facts of an asserted batch).
	// Maintenance retags it as it moves through the strata. Stamps are
	// what give maintenance stratum-exact views of the materialization
	// and the pruner its whole-stratum well-founded order; they are
	// recomputed on replay, never serialized.
	stamper *instance.Stamper
	// plans accumulates the PlanStats of every maintenance run, for
	// EngineStats.
	plans PlanStats
	// seeds holds, for every IDB relation that already had facts in the
	// initial EDB, the frozen pre-fixpoint relation: seed facts are base
	// facts, not derivations, so overdeletion never removes them.
	seeds map[string]*instance.Relation
	// broken records a failed maintenance run: the materialization may
	// be partial, so every later evaluation or read call fails fast
	// with this error (Stats stays available for diagnostics).
	broken error
}

// PlanStats reports which compiled plans a maintenance run executed
// and the access paths their non-delta join steps used. A "plan
// execution" is one delta-restricted run of a rule (per change window,
// per changed atom, per semi-naive round; parallel runs count each
// window slice); the goal-directed rederivation probes are not
// counted. The step counters classify every positive non-delta
// predicate step of those executions by its planned access path, so
// VariantRuns vs BaseRuns says which plan shape maintenance ran and
// ScanSteps says how often a body atom still had to be scanned.
type PlanStats struct {
	// VariantRuns counts executions of delta-hoisted variant plans;
	// BaseRuns counts executions of base plans (windowed at the changed
	// atom's own step — the pre-variant shape, and the fallback when
	// DeltaVariants is off).
	VariantRuns int
	BaseRuns    int
	// IndexProbeSteps / PrefixProbeSteps / SuffixProbeSteps / ScanSteps
	// classify the non-delta positive predicate steps of the executed
	// plans by access path: exact column index, ground-prefix index,
	// ground-suffix index, or full scan.
	IndexProbeSteps  int
	PrefixProbeSteps int
	SuffixProbeSteps int
	ScanSteps        int
}

// add accumulates other into s.
func (s *PlanStats) add(other PlanStats) {
	s.VariantRuns += other.VariantRuns
	s.BaseRuns += other.BaseRuns
	s.IndexProbeSteps += other.IndexProbeSteps
	s.PrefixProbeSteps += other.PrefixProbeSteps
	s.SuffixProbeSteps += other.SuffixProbeSteps
	s.ScanSteps += other.ScanSteps
}

// note records one execution of p with the given delta step into st
// (nil-safe): the plan shape and the access path of every other
// positive predicate step.
func (p *plan) note(st *PlanStats, deltaStep int) {
	if st == nil {
		return
	}
	if p.hoisted {
		st.VariantRuns++
	} else {
		st.BaseRuns++
	}
	for _, i := range p.predSteps {
		if i == deltaStep {
			continue
		}
		s := &p.steps[i]
		switch {
		case len(s.boundCols) > 0:
			st.IndexProbeSteps++
		case s.prefixCol >= 0:
			st.PrefixProbeSteps++
		case s.suffixCol >= 0:
			st.SuffixProbeSteps++
		default:
			st.ScanSteps++
		}
	}
}

// AssertStats reports what one Assert call did, stratum by stratum.
type AssertStats struct {
	// Asserted counts the facts of the batch that were genuinely new
	// (already-present facts are dropped and trigger no work).
	Asserted int
	// Derived is the net change in materialized IDB facts: facts
	// derived minus facts invalidated. It is negative when insertions
	// into negated relations invalidate more than the batch derives.
	Derived int
	// Overdeleted counts the IDB facts tombstoned by the overdeletion
	// phase (derivations that may depend on a changed fact); Rederived
	// counts how many of those were restored because an alternative
	// derivation survives. Overdeleted - Rederived is the number of
	// facts the batch genuinely invalidated.
	Overdeleted int
	Rederived   int
	// StampPruned counts overdeletion candidates the well-founded pruner
	// kept outright: a rule still derives them from supports stamped
	// strictly before the candidate (earlier stratum, or earlier birth
	// within the stratum), so they were never tombstoned and never needed
	// rederivation. 0 when the engine runs with pruning off.
	StampPruned int
	// StrataSkipped counts strata left completely untouched because no
	// relation they read changed; StrataIncremental counts strata
	// maintained delta-first. Nothing is ever recomputed from scratch:
	// negation is handled by targeted overdelete + rederive.
	StrataSkipped     int
	StrataIncremental int
	// Plans reports which plan shapes the run executed and their access
	// paths; see PlanStats.
	Plans PlanStats
	// Clones reports the copy-on-write barrier work this call performed
	// on frozen (snapshot-shared) relations: epoch clones made, sealed
	// chunks shared by pointer, and approximate bytes copied. See
	// instance.CloneStats.
	Clones instance.CloneStats
}

// RetractStats reports what one Retract call did.
type RetractStats struct {
	// Retracted counts the facts of the batch actually removed from the
	// materialization (absent facts are dropped silently).
	Retracted int
	// Derived is the net change in materialized IDB facts — usually
	// negative, but deletions can also enable new derivations through
	// negation.
	Derived int
	// Overdeleted counts the IDB facts tombstoned by the overdeletion
	// phase (the downward closure of the retracted facts); Rederived
	// counts those restored by a surviving alternative derivation.
	Overdeleted int
	Rederived   int
	// StampPruned: as in AssertStats — candidates the stamp-ordered
	// pruner kept without tombstoning.
	StampPruned int
	// StrataSkipped / StrataIncremental: as in AssertStats.
	StrataSkipped     int
	StrataIncremental int
	// Plans: as in AssertStats.
	Plans PlanStats
	// Clones: as in AssertStats.
	Clones instance.CloneStats
}

// EngineStats is a point-in-time summary of an engine.
type EngineStats struct {
	// Facts is the total number of materialized facts (EDB + IDB).
	Facts int
	// Derived is the number of materialized IDB facts beyond any
	// EDB-provided seeds.
	Derived int
	// Asserts and Retracts count completed maintenance calls.
	Asserts  int
	Retracts int
	// LastAssert and LastRetract are the stats of the most recent calls.
	LastAssert  AssertStats
	LastRetract RetractStats
	// Plans accumulates the PlanStats of every maintenance run since the
	// engine was created.
	Plans PlanStats
	// DeltaVariants reports whether the engine maintains with the
	// delta-hoisted plan variants (captured from eval.DeltaVariants at
	// NewEngine time).
	DeltaVariants bool
	// WellFoundedPruning reports whether the engine's overdeletion
	// pruner runs the stamp-ordered support check (captured from
	// eval.WellFoundedPruning at NewEngine time).
	WellFoundedPruning bool
	// Clones accumulates the copy-on-write barrier work of every write
	// since the engine was created (including the initial fixpoint's
	// clones of frozen EDB seeds): epoch clones made, sealed chunks
	// shared instead of copied, and approximate bytes copied.
	Clones instance.CloneStats
}

// NewEngine compiles nothing — prep is already compiled — but runs the
// initial fixpoint: the engine's materialized instance starts as a
// copy-on-write snapshot of edb (the caller's instance is not copied
// and not modified) extended with every derivable fact. A nil edb
// means an empty one. The limits bound the engine for its lifetime;
// MaxFacts caps the total number of materialized IDB facts across all
// maintenance calls, not per call.
func NewEngine(prep *Prepared, edb *instance.Instance, limits Limits) (*Engine, error) {
	if edb == nil {
		edb = instance.New()
	}
	e := &Engine{
		prep:     prep,
		limits:   limits.orDefault(),
		inst:     edb.Snapshot(),
		seeds:    map[string]*instance.Relation{},
		variants: DeltaVariants,
		pruning:  WellFoundedPruning,
		stamper:  &instance.Stamper{},
	}
	e.inst.SetStamper(e.stamper)
	for name := range prep.idb {
		if r := e.inst.Relation(name); r != nil {
			e.seeds[name] = r // frozen by the snapshot above
		}
	}
	for si := range prep.strata {
		ps := &prep.strata[si]
		// Tag this stratum's derivations si+1, but filter nothing
		// (visTag 0): the initial fixpoint runs the strata in order over
		// a state where no later-stratum fact exists yet, and a carried
		// EDB may hold stamps from a previous engine's run that must stay
		// fully visible.
		e.stamper.SetTag(uint64(si + 1))
		if err := runStratum(ps.plans, ps.heads, e.inst, e.limits, &e.derived, 0); err != nil {
			return nil, fmt.Errorf("stratum %d: %w", si+1, err)
		}
	}
	return e, nil
}

// Prepared returns the engine's compiled program.
func (e *Engine) Prepared() *Prepared { return e.prep }

// Snapshot returns an immutable copy-on-write snapshot of the current
// materialization (EDB and IDB facts): a consistent state that
// concurrent maintenance never disturbs. Taking a snapshot is
// O(#relations) — no tuple is copied. Like every other read, it fails
// on an engine whose maintenance previously failed (the
// materialization would be partial); Stats stays available for
// diagnostics.
func (e *Engine) Snapshot() (*instance.Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return nil, e.broken
	}
	return e.inst.Snapshot(), nil
}

// Query returns the materialized contents of one output relation, or
// an empty relation of the right arity when the program names output
// but nothing was derived. The returned relation is frozen, so it
// stays valid (and constant) under concurrent maintenance. Unlike
// eval.Query this does not evaluate anything: the engine is already at
// fixpoint.
func (e *Engine) Query(output string) (*instance.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return nil, e.broken
	}
	if r := e.inst.Relation(output); r != nil {
		r.Freeze()
		return r, nil
	}
	if a, ok := e.prep.arities[output]; ok {
		return instance.NewRelation(a), nil
	}
	return nil, fmt.Errorf("eval: unknown output relation %q (not defined by the program and absent from the instance)", output)
}

// Holds reports whether the nullary output relation holds in the
// current materialization (boolean queries, §5.1.1).
func (e *Engine) Holds(output string) (bool, error) {
	r, err := e.Query(output)
	if err != nil {
		return false, err
	}
	return r.Len() > 0, nil
}

// Stats returns a point-in-time summary of the engine.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Facts:              e.inst.Facts(),
		Derived:            e.derived,
		Asserts:            e.asserts,
		Retracts:           e.retracts,
		LastAssert:         e.last,
		LastRetract:        e.lastRet,
		Plans:              e.plans,
		DeltaVariants:      e.variants,
		WellFoundedPruning: e.pruning,
		Clones:             e.inst.CloneStats(),
	}
}

// validateBatch checks the semantic boundaries shared by Assert and
// Retract: no IDB relations (derived facts are maintained, not edited)
// and no arity clashes with the program or the materialization.
func (e *Engine) validateBatch(delta *instance.Instance, verb string) error {
	for _, name := range delta.Names() {
		r := delta.Relation(name)
		if e.prep.idb[name] {
			return fmt.Errorf("eval: cannot %s IDB relation %q (defined by the program; derived facts are maintained, not %sed)", verb, name, verb)
		}
		if a, ok := e.prep.arities[name]; ok && a != r.Arity {
			return fmt.Errorf("eval: %sing arity-%d tuples of relation %q used with arity %d by the program", verb, r.Arity, name, a)
		}
		if cur := e.inst.Relation(name); cur != nil && cur.Arity != r.Arity {
			return fmt.Errorf("eval: %sing arity-%d tuples of existing arity-%d relation %q", verb, r.Arity, cur.Arity, name)
		}
	}
	return nil
}

// Assert inserts a batch of new EDB facts and incrementally restores
// the fixpoint: the inserted facts seed the semi-naive delta, so only
// their consequences are derived — strata reading no changed relation
// are skipped outright, and the cost of an Assert scales with the
// consequences of the batch, not with the size of the materialization.
//
// A stratum that negates a changed relation is maintained by targeted
// delete-and-rederive instead of recomputation: derivations whose
// negated atom matches an inserted fact are overdeleted, candidates
// with surviving alternative derivations are restored, and the
// resulting net deletions cascade to later strata exactly like a
// Retract. AssertStats.Overdeleted/Rederived report that work.
//
// Facts may only be asserted into relations the program does not
// define (non-IDB relations); arities must agree with the program and
// the materialization. Already-present facts are dropped silently. On
// error the engine may hold a partial materialization and refuses
// further use, returning the same error from every later call.
func (e *Engine) Assert(delta *instance.Instance) (AssertStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return AssertStats{}, e.broken
	}
	var stats AssertStats
	if err := e.validateBatch(delta, "assert"); err != nil {
		return stats, err
	}
	clonesBefore := e.inst.CloneStats()
	// Batch facts are base facts: stamped tag 0, visible to every
	// stratum's view (the pre-stamp "produced by -1").
	e.stamper.SetTag(0)
	batch := map[string][]window{}
	for _, name := range delta.Names() {
		src := delta.Relation(name)
		if src.Len() == 0 {
			continue
		}
		dst := e.inst.Ensure(name, src.Arity)
		lo := dst.Size()
		for pos := 0; pos < src.Size(); pos++ {
			if !src.Live(pos) {
				continue
			}
			// AddFromScratch probes with the caller's tuple and copies it
			// into engine-owned storage only when genuinely new.
			if dst.AddFromScratch(src.HashAt(pos), src.TupleAt(pos)) {
				stats.Asserted++
			}
		}
		if hi := dst.Size(); hi > lo {
			batch[name] = append(batch[name], window{lo: lo, hi: hi})
		}
	}
	if stats.Asserted == 0 {
		// The all-skipped fast path allocates no maintenance state.
		stats.StrataSkipped = len(e.prep.strata)
		stats.Clones = e.inst.CloneStats().Sub(clonesBefore)
		e.asserts++
		e.last = stats
		return stats, nil
	}
	m := e.newMaintenance()
	m.ins = batch
	derivedBefore := e.derived
	if err := m.run(); err != nil {
		e.broken = fmt.Errorf("engine: maintenance failed, materialization is partial: %w", err)
		return stats, e.broken
	}
	stats.Derived = e.derived - derivedBefore
	stats.Overdeleted = m.overdeleted
	stats.Rederived = m.rederived
	stats.StampPruned = m.pruned
	stats.StrataSkipped = m.skipped
	stats.StrataIncremental = m.incremental
	stats.Plans = m.planStats
	e.plans.add(m.planStats)
	e.compactTombstoned()
	stats.Clones = e.inst.CloneStats().Sub(clonesBefore)
	e.asserts++
	e.last = stats
	return stats, nil
}

// Retract removes a batch of EDB facts and incrementally restores the
// fixpoint by delete-and-rederive: the downward closure of the
// retracted facts is overdeleted stratum by stratum, facts with
// surviving alternative derivations are restored, and derivations that
// were blocked only by a removed fact (negation) are added. The cost
// scales with the consequences of the batch; strata reading no changed
// relation are skipped.
//
// The same boundaries as Assert apply: only non-IDB relations may be
// retracted from (derived facts disappear when their support does, not
// by request), arities must agree, and facts not present are dropped
// silently. On error the engine refuses further use.
func (e *Engine) Retract(delta *instance.Instance) (RetractStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return RetractStats{}, e.broken
	}
	var stats RetractStats
	if err := e.validateBatch(delta, "retract"); err != nil {
		return stats, err
	}
	clonesBefore := e.inst.CloneStats()
	batch := map[string]*instance.Relation{}
	for _, name := range delta.Names() {
		src := delta.Relation(name)
		if src.Len() == 0 {
			continue
		}
		cur := e.inst.Relation(name)
		if cur == nil {
			continue
		}
		// Probe before the write barrier: a batch that removes nothing
		// from this relation must not clone its frozen storage.
		any := false
		for pos := 0; pos < src.Size() && !any; pos++ {
			if src.Live(pos) && cur.ContainsHashed(src.HashAt(pos), src.TupleAt(pos)) {
				any = true
			}
		}
		if !any {
			continue
		}
		dst := e.inst.Ensure(name, src.Arity)
		dl := instance.NewRelation(src.Arity)
		for pos := 0; pos < src.Size(); pos++ {
			if !src.Live(pos) {
				continue
			}
			h := src.HashAt(pos)
			if t := src.TupleAt(pos); dst.DeleteHashed(h, t) {
				dl.AddFromScratch(h, t)
				stats.Retracted++
			}
		}
		if dl.Len() > 0 {
			batch[name] = dl
		}
	}
	if stats.Retracted == 0 {
		// The all-skipped fast path allocates no maintenance state.
		stats.StrataSkipped = len(e.prep.strata)
		stats.Clones = e.inst.CloneStats().Sub(clonesBefore)
		e.retracts++
		e.lastRet = stats
		return stats, nil
	}
	m := e.newMaintenance()
	for name, dl := range batch {
		// The batch logs were built before the maintenance stamper could
		// attach, so their entries are stamped 0: batch deletions are
		// visible to every stratum, exactly like batch insertions.
		m.del[name] = dl
	}
	derivedBefore := e.derived
	if err := m.run(); err != nil {
		e.broken = fmt.Errorf("engine: maintenance failed, materialization is partial: %w", err)
		return stats, e.broken
	}
	stats.Derived = e.derived - derivedBefore
	stats.Overdeleted = m.overdeleted
	stats.Rederived = m.rederived
	stats.StampPruned = m.pruned
	stats.StrataSkipped = m.skipped
	stats.StrataIncremental = m.incremental
	stats.Plans = m.planStats
	e.plans.add(m.planStats)
	e.compactTombstoned()
	stats.Clones = e.inst.CloneStats().Sub(clonesBefore)
	e.retracts++
	e.lastRet = stats
	return stats, nil
}

// compactTombstoned reclaims tombstoned positions after a maintenance
// run, amortized: a relation is compacted in place once tombstones
// exceed a quarter of its live size, so a long retract series pays
// O(live) compaction only every Θ(live/4) deletions, and a single
// small retraction from a large materialization pays nothing. Frozen
// relations are skipped this round — they are snapshot-shared and
// immutable; the write barrier's position-preserving clone carries
// their tombstones over, and a later pass here (or an explicit
// Clone, which always compacts) reclaims them once the clone is
// written and the threshold trips.
func (e *Engine) compactTombstoned() {
	for _, name := range e.inst.Names() {
		r := e.inst.Relation(name)
		if r.Frozen() {
			continue
		}
		if t := r.Tombstones(); t > 0 && t*4 > r.Len() {
			r.Compact()
		}
	}
}
