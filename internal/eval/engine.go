package eval

import (
	"fmt"
	"sync"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
)

// Engine is a persistent evaluator: a compiled program plus a live
// materialized instance (EDB and all derived IDB facts, kept at
// fixpoint). Where Eval is batch — re-validate, re-plan, re-derive
// everything per call — an Engine pays compilation and the initial
// fixpoint once and then maintains the materialization incrementally
// as new facts arrive (Assert), serving reads from consistent
// copy-on-write snapshots in the meantime.
//
// Concurrency: all Engine methods are safe for concurrent use; writes
// (Assert) are serialized by an internal mutex, and reads (Query,
// Holds, Snapshot, Stats) take the same mutex only long enough to
// freeze the state they return. A snapshot, once returned, is
// immutable and may be read by any number of goroutines while further
// Asserts proceed.
type Engine struct {
	mu      sync.Mutex
	prep    *Prepared
	limits  Limits
	inst    *instance.Instance
	derived int // IDB facts currently materialized beyond the seeds
	asserts int
	last    AssertStats
	// seeds holds, for every IDB relation that already had facts in the
	// initial EDB, the frozen pre-fixpoint relation: the recompute path
	// reinstates a seed before re-deriving, so EDB-provided facts of
	// derived relations survive recomputation.
	seeds map[string]*instance.Relation
	// broken records a failed maintenance run: the materialization may
	// be partial, so every later evaluation or read call fails fast
	// with this error (Stats stays available for diagnostics).
	broken error
}

// AssertStats reports what one Assert call did, stratum by stratum.
type AssertStats struct {
	// Asserted counts the facts of the batch that were genuinely new
	// (already-present facts are dropped and trigger no work).
	Asserted int
	// Derived counts the new IDB facts materialized by this Assert,
	// net of any facts discarded by a recomputation.
	Derived int
	// StrataSkipped counts strata left completely untouched because no
	// relation they read changed.
	StrataSkipped int
	// StrataIncremental counts strata maintained delta-first: only the
	// consequences of the new facts were derived.
	StrataIncremental int
	// StrataRecomputed counts strata re-derived from scratch because a
	// relation they negate changed (insertions can invalidate
	// previously derived facts there; see RecomputeFrom).
	StrataRecomputed int
	// RecomputeFrom is the 1-based index of the first recomputed
	// stratum — the incremental/recompute cutoff — or 0 when the whole
	// Assert was maintained incrementally.
	RecomputeFrom int
}

// EngineStats is a point-in-time summary of an engine.
type EngineStats struct {
	// Facts is the total number of materialized facts (EDB + IDB).
	Facts int
	// Derived is the number of materialized IDB facts beyond any
	// EDB-provided seeds.
	Derived int
	// Asserts counts completed Assert calls.
	Asserts int
	// LastAssert is the stats of the most recent Assert.
	LastAssert AssertStats
}

// NewEngine compiles nothing — prep is already compiled — but runs the
// initial fixpoint: the engine's materialized instance starts as a
// copy-on-write snapshot of edb (the caller's instance is not copied
// and not modified) extended with every derivable fact. A nil edb
// means an empty one. The limits bound the engine for its lifetime;
// MaxFacts caps the total number of materialized IDB facts across all
// Asserts, not per call.
func NewEngine(prep *Prepared, edb *instance.Instance, limits Limits) (*Engine, error) {
	if edb == nil {
		edb = instance.New()
	}
	e := &Engine{
		prep:   prep,
		limits: limits.orDefault(),
		inst:   edb.Snapshot(),
		seeds:  map[string]*instance.Relation{},
	}
	for name := range prep.idb {
		if r := e.inst.Relation(name); r != nil {
			e.seeds[name] = r // frozen by the snapshot above
		}
	}
	for si := range prep.strata {
		ps := &prep.strata[si]
		if err := runStratum(ps.plans, ps.heads, e.inst, e.limits, &e.derived); err != nil {
			return nil, fmt.Errorf("stratum %d: %w", si+1, err)
		}
	}
	return e, nil
}

// Prepared returns the engine's compiled program.
func (e *Engine) Prepared() *Prepared { return e.prep }

// Snapshot returns an immutable copy-on-write snapshot of the current
// materialization (EDB and IDB facts): a consistent state that
// concurrent Asserts never disturb. Taking a snapshot is O(#relations)
// — no tuple is copied. Like every other read, it fails on an engine
// whose maintenance previously failed (the materialization would be
// partial); Stats stays available for diagnostics.
func (e *Engine) Snapshot() (*instance.Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return nil, e.broken
	}
	return e.inst.Snapshot(), nil
}

// Query returns the materialized contents of one output relation, or
// an empty relation of the right arity when the program names output
// but nothing was derived. The returned relation is frozen, so it
// stays valid (and constant) under concurrent Asserts. Unlike
// eval.Query this does not evaluate anything: the engine is already at
// fixpoint.
func (e *Engine) Query(output string) (*instance.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return nil, e.broken
	}
	if r := e.inst.Relation(output); r != nil {
		r.Freeze()
		return r, nil
	}
	if a, ok := e.prep.arities[output]; ok {
		return instance.NewRelation(a), nil
	}
	return nil, fmt.Errorf("eval: unknown output relation %q (not defined by the program and absent from the instance)", output)
}

// Holds reports whether the nullary output relation holds in the
// current materialization (boolean queries, §5.1.1).
func (e *Engine) Holds(output string) (bool, error) {
	r, err := e.Query(output)
	if err != nil {
		return false, err
	}
	return r.Len() > 0, nil
}

// Stats returns a point-in-time summary of the engine.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Facts:      e.inst.Facts(),
		Derived:    e.derived,
		Asserts:    e.asserts,
		LastAssert: e.last,
	}
}

// stratum outcomes recorded while an Assert walks the program.
const (
	stratumSkipped = iota
	stratumIncremental
	stratumRecomputed
)

// Assert inserts a batch of new EDB facts and incrementally restores
// the fixpoint: the inserted facts seed the semi-naive delta, so only
// their consequences are derived — strata reading no changed relation
// are skipped outright, and the cost of an Assert scales with the
// consequences of the batch, not with the size of the materialization.
//
// The exception is negation: a stratum that negates a changed relation
// cannot be maintained by insertion alone (new facts can invalidate
// old derivations), so from the first such stratum onward the engine
// falls back to recomputation — those strata's derived facts are
// discarded and re-derived from scratch. The cutoff is recorded in
// AssertStats.RecomputeFrom. Deletion-aware maintenance (DRed) is a
// ROADMAP item.
//
// Facts may only be asserted into relations the program does not
// define (non-IDB relations); arities must agree with the program and
// the materialization. Already-present facts are dropped silently. On
// error the engine may hold a partial materialization and refuses
// further use, returning the same error from every later call.
func (e *Engine) Assert(delta *instance.Instance) (AssertStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return AssertStats{}, e.broken
	}
	var stats AssertStats
	names := delta.Names()
	for _, name := range names {
		r := delta.Relation(name)
		if e.prep.idb[name] {
			return stats, fmt.Errorf("eval: cannot assert into IDB relation %q (defined by the program; derived facts are maintained, not asserted)", name)
		}
		if a, ok := e.prep.arities[name]; ok && a != r.Arity {
			return stats, fmt.Errorf("eval: asserting arity-%d tuples into relation %q used with arity %d by the program", r.Arity, name, a)
		}
		if cur := e.inst.Relation(name); cur != nil && cur.Arity != r.Arity {
			return stats, fmt.Errorf("eval: asserting arity-%d tuples into existing arity-%d relation %q", r.Arity, cur.Arity, name)
		}
	}
	// base records every relation's length before the batch: the delta
	// windows [base[name], Len) drive the incremental rounds, and after
	// each stratum they widen to cover that stratum's derivations.
	base := map[string]int{}
	for _, name := range e.inst.Names() {
		base[name] = e.inst.Relation(name).Len()
	}
	for _, name := range names {
		src := delta.Relation(name)
		dst := e.inst.Ensure(name, src.Arity)
		for i, t := range src.Tuples() {
			// AddFromScratch probes with the caller's tuple and copies it
			// into engine-owned storage only when genuinely new.
			if dst.AddFromScratch(src.HashAt(i), t) {
				stats.Asserted++
			}
		}
	}
	if stats.Asserted == 0 {
		stats.StrataSkipped = len(e.prep.strata)
		e.asserts++
		e.last = stats
		return stats, nil
	}
	derivedBefore := e.derived
	outcomes := make([]int, len(e.prep.strata))
	cutoff := -1
	for si := range e.prep.strata {
		ps := &e.prep.strata[si]
		changed := e.changedSince(base)
		if anyIn(ps.negReads, changed) {
			cutoff = si
			break
		}
		if !anyIn(ps.reads, changed) {
			outcomes[si] = stratumSkipped
			continue
		}
		if err := e.maintainStratum(ps, base); err != nil {
			e.broken = fmt.Errorf("engine: stratum %d maintenance failed, materialization is partial: %w", si+1, err)
			return stats, e.broken
		}
		outcomes[si] = stratumIncremental
	}
	if cutoff >= 0 {
		// A head defined both before and after the cutoff would lose its
		// earlier-strata derivations if dropped, so widen the cutoff to
		// the first stratum defining any head we are about to recompute.
		for widened := true; widened; {
			widened = false
			for si := cutoff; si < len(e.prep.strata); si++ {
				for h := range e.prep.strata[si].heads {
					if fd := e.prep.firstDef[h]; fd < cutoff {
						cutoff = fd
						widened = true
					}
				}
			}
		}
		stats.RecomputeFrom = cutoff + 1
		// Discard the materialization of every head from the cutoff on,
		// reinstating EDB seeds, then re-derive those strata in order.
		dropped := map[string]bool{}
		for si := cutoff; si < len(e.prep.strata); si++ {
			for h := range e.prep.strata[si].heads {
				if dropped[h] {
					continue
				}
				dropped[h] = true
				r := e.inst.Relation(h)
				if r == nil {
					continue
				}
				seedLen := 0
				if s := e.seeds[h]; s != nil {
					seedLen = s.Len()
				}
				e.derived -= r.Len() - seedLen
				if s := e.seeds[h]; s != nil {
					e.inst.Put(h, s) // frozen; Ensure clones before writes
				} else {
					e.inst.Remove(h)
				}
			}
		}
		for si := cutoff; si < len(e.prep.strata); si++ {
			ps := &e.prep.strata[si]
			if err := runStratum(ps.plans, ps.heads, e.inst, e.limits, &e.derived); err != nil {
				e.broken = fmt.Errorf("engine: stratum %d recomputation failed, materialization is partial: %w", si+1, err)
				return stats, e.broken
			}
			outcomes[si] = stratumRecomputed
		}
	}
	for _, o := range outcomes {
		switch o {
		case stratumSkipped:
			stats.StrataSkipped++
		case stratumIncremental:
			stats.StrataIncremental++
		case stratumRecomputed:
			stats.StrataRecomputed++
		}
	}
	stats.Derived = e.derived - derivedBefore
	e.asserts++
	e.last = stats
	return stats, nil
}

// changedSince returns the set of relation names that grew since the
// lengths recorded in base (including relations created since).
func (e *Engine) changedSince(base map[string]int) map[string]bool {
	changed := map[string]bool{}
	for _, name := range e.inst.Names() {
		if e.inst.Relation(name).Len() > base[name] {
			changed[name] = true
		}
	}
	return changed
}

func anyIn(set, changed map[string]bool) bool {
	for name := range set {
		if changed[name] {
			return true
		}
	}
	return false
}

// maintainStratum restores one stratum's fixpoint incrementally. The
// delta round mirrors semi-naive round 0 with the roles inverted:
// instead of evaluating every rule against the full instance, each
// rule runs once per body predicate whose relation changed, with that
// predicate restricted to the window of new facts [base, current).
// Any derivation missing from the materialization must use at least
// one new fact, so these restricted runs find them all; derivations
// re-using only old facts are exactly the ones already materialized.
// The standard fixpoint rounds then chase the stratum-local
// consequences.
func (e *Engine) maintainStratum(ps *preparedStratum, base map[string]int) error {
	inst, limits := e.inst, e.limits
	workers := limits.workers()
	// The windows close at the lengths observed now: facts derived
	// during the delta round land above them and are picked up by the
	// fixpoint rounds via prev below.
	cur := map[string]int{}
	for _, name := range inst.Names() {
		cur[name] = inst.Relation(name).Len()
	}
	prev := localLengths(ps.heads, inst)
	if workers > 1 {
		var items []workItem
		for _, p := range ps.plans {
			for _, stepIdx := range p.predSteps {
				name := p.steps[stepIdx].pred.Name
				lo, hi := base[name], cur[name]
				if hi <= lo {
					continue
				}
				items = append(items, sliceWindow(p, stepIdx, lo, hi, workers)...)
			}
		}
		if err := runRoundParallel(items, inst, workers, limits, &e.derived); err != nil {
			return err
		}
	} else {
		hb := &headScratch{}
		sink := func(head ast.Pred, env *Env) error {
			return derive(head, env, inst, limits, &e.derived, hb)
		}
		for _, p := range ps.plans {
			for _, stepIdx := range p.predSteps {
				name := p.steps[stepIdx].pred.Name
				lo, hi := base[name], cur[name]
				if hi <= lo {
					continue
				}
				if err := runPlan(p, inst, stepIdx, lo, hi, sink); err != nil {
					return err
				}
			}
		}
	}
	return fixpointRounds(ps.plans, ps.heads, inst, limits, &e.derived, prev)
}
