package eval

import (
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

// TestEDBSnapshotReconstructsEngine: feeding EDBSnapshot back to
// NewEngine must reproduce the exact materialization — including IDB
// seed facts, which are base facts even though their relation is
// program-defined — after a history of asserts and retracts.
func TestEDBSnapshotReconstructsEngine(t *testing.T) {
	prog, err := parser.ParseProgram("T(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	edb := instance.New()
	edb.AddPath("E", value.PathOf("a", "b"))
	edb.AddPath("T", value.PathOf("seed", "fact")) // IDB seed: base, not derived
	eng, err := NewEngine(prep, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	assert := func(facts string) {
		t.Helper()
		if _, err := eng.Assert(parser.MustParseInstance(facts)); err != nil {
			t.Fatal(err)
		}
	}
	assert("E(b.c). E(c.d).")
	if _, err := eng.Retract(parser.MustParseInstance("E(a.b).")); err != nil {
		t.Fatal(err)
	}
	assert("E(a.b).")

	snap, err := eng.EDBSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Relation("T") == nil || snap.Relation("T").Len() != 1 {
		t.Fatalf("EDBSnapshot must carry exactly the IDB seed facts, got %v", snap.Relation("T"))
	}
	rebuilt, err := NewEngine(prep, snap, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := eng.Snapshot()
	got, _ := rebuilt.Snapshot()
	if d := instance.Diff(got, want); d != "" {
		t.Fatalf("rebuilt engine differs: %s", d)
	}
	// The snapshot is frozen state: the original engine keeps working.
	assert("E(d.e).")
}

// TestReplayerMatchesLiveEngine: the Replayer applied to a logged
// history (load, asserts, retracts) lands on the same state as the
// live engine that produced it.
func TestReplayerMatchesLiveEngine(t *testing.T) {
	src := "T(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\nN($x) :- M($x), !T($x).\n"
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewEngine(prep, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var rep Replayer
	if err := rep.Load(src); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		retract bool
		facts   string
	}{
		{false, "E(a.b). M(a.b)."},
		{false, "E(b.c)."},
		{true, "E(a.b)."},
		{false, "E(a.b). M(zz)."},
		{true, "M(zz). E(b.c)."},
	}
	for i, st := range steps {
		batch := parser.MustParseInstance(st.facts)
		var liveErr, repErr error
		if st.retract {
			_, liveErr = live.Retract(batch)
			repErr = rep.Retract(parser.MustParseInstance(st.facts))
		} else {
			_, liveErr = live.Assert(batch)
			repErr = rep.Assert(parser.MustParseInstance(st.facts))
		}
		if liveErr != nil || repErr != nil {
			t.Fatalf("step %d: live=%v replay=%v", i, liveErr, repErr)
		}
		want, _ := live.Snapshot()
		got, err := rep.Engine().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if d := instance.Diff(got, want); d != "" {
			t.Fatalf("step %d: replayer diverges: %s", i, d)
		}
	}
	if rep.Source() != src || rep.Prepared() == nil {
		t.Fatal("replayer must retain the recovered program")
	}
}

// TestReplayerGuards: batches before any load are an error (a WAL
// cannot legitimately start with one), and Engine is nil until then.
func TestReplayerGuards(t *testing.T) {
	var rep Replayer
	if rep.Engine() != nil {
		t.Fatal("fresh replayer has no engine")
	}
	if err := rep.Assert(instance.New()); err == nil {
		t.Fatal("assert before load must fail")
	}
	if err := rep.Retract(instance.New()); err == nil {
		t.Fatal("retract before load must fail")
	}
	if err := rep.Load("T($x :- broken"); err == nil {
		t.Fatal("unparseable program must fail")
	}
}
