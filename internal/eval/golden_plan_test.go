package eval

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seqlog/internal/queries"
)

var updatePlans = flag.Bool("update", false, "rewrite the golden plan file from current planner output")

// TestGoldenPlans pins the compiled join plans — base plan and
// delta-hoisted maintenance variants, with their access paths — for
// every paper query. A planner change that silently demotes an index
// probe to a scan (or stops hoisting a delta) shows up as a diff here
// before it shows up as a perf regression. Regenerate with
// `go test -run TestGoldenPlans -update ./internal/eval`.
func TestGoldenPlans(t *testing.T) {
	var b strings.Builder
	for _, q := range queries.All() {
		fmt.Fprintf(&b, "== %s (%s)\n", q.Name, q.Source)
		prep, err := Compile(q.Program)
		if err != nil {
			t.Fatalf("%s: Compile: %v", q.Name, err)
		}
		for _, line := range prep.Explain() {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "plans.golden")
	if *updatePlans {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("join plans changed (run with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenPlansPinReachability spot-checks the properties the golden
// file exists to protect, independent of its exact text: the §5.1.1
// reachability query must keep (a) a delta-hoisted variant per
// positive body atom, (b) a ground-prefix probe for the forward join
// direction, and (c) a ground-suffix probe for the reverse direction
// (delta on R, recursive T atom bound only in its last position).
func TestGoldenPlansPinReachability(t *testing.T) {
	q, err := queries.Get("reachability")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	explain := strings.Join(prep.Explain(), "\n")
	for _, want := range []string{
		"ΔT: T(@x.@z) :- T(@x.@y) [delta], R(@y.@z) [prefix col=0 len=1]",
		"ΔR: T(@x.@z) :- R(@y.@z) [delta], T(@x.@y) [suffix col=0 len=1]",
		"ΔT: S :- T(a.b) [delta]",
	} {
		if !strings.Contains(explain, want) {
			t.Errorf("explain lacks %q:\n%s", want, explain)
		}
	}
}
