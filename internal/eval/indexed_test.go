package eval

import (
	"strings"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/value"
	"seqlog/internal/workload"
)

// withScanPath runs f with the indexed join path disabled.
func withScanPath(t *testing.T, f func()) {
	t.Helper()
	IndexedJoins = false
	defer func() { IndexedJoins = true }()
	f()
}

// agreementEDBs maps every terminating example query to a small but
// non-trivial EDB; TestIndexedAndScanAgree fails if a query is missing
// so the matrix stays complete as queries are added.
func agreementEDBs(t *testing.T) map[string]*instance.Instance {
	t.Helper()
	blackGraph := workload.Graph(7, 10, 20)
	for _, n := range []string{"a", "b", "n2", "n3"} {
		blackGraph.AddPath("B", value.PathOf(n))
	}
	return map[string]*instance.Instance{
		"only-as-equation":   workload.OnlyAs(1, "R", 12, 5),
		"only-as-recursion":  workload.OnlyAs(1, "R", 12, 5),
		"nfa-accept":         workload.NFA(4, 12, 6),
		"three-occurrences":  workload.SubstringHaystack(5, 10, 3, 2),
		"reverse-arity":      workload.Strings(2, "R", 6, 4, workload.Alphabet(3)),
		"reverse-noarity":    workload.Strings(2, "R", 6, 4, workload.Alphabet(3)),
		"mirror-nonequal":    workload.Strings(3, "R", 8, 4, workload.Alphabet(3)),
		"squaring":           workload.Repeated("R", "a", 6),
		"reachability":       workload.Graph(9, 12, 30),
		"black-nodes":        blackGraph,
		"even-length-packed": workload.Strings(8, "R", 6, 4, workload.Alphabet(2)),
		"process-mining":     workload.EventLogs(10, "L", 8, 6),
		"deep-unequal":       workload.TwoJSONSets(11, 20, 3, true),
		"sales-by-year":      workload.Sales(12, 10, 3),
		"nodes-on-all-paths": parser.MustParseInstance("P(a.b.c). P(d.b.c). P(b.c.e)."),
	}
}

// TestIndexedAndScanAgree checks that the indexed join path and the
// naive scan path compute the same least model on every terminating
// example query of the paper.
func TestIndexedAndScanAgree(t *testing.T) {
	edbs := agreementEDBs(t)
	for _, q := range queries.All() {
		if !q.Terminating {
			continue
		}
		edb, ok := edbs[q.Name]
		if !ok {
			t.Fatalf("query %s has no agreement EDB; add one to agreementEDBs", q.Name)
		}
		indexed, err := Eval(q.Program, edb, Limits{})
		if err != nil {
			t.Fatalf("%s (indexed): %v", q.Name, err)
		}
		var scanned *instance.Instance
		withScanPath(t, func() {
			scanned, err = Eval(q.Program, edb, Limits{})
		})
		if err != nil {
			t.Fatalf("%s (scan): %v", q.Name, err)
		}
		if !indexed.Equal(scanned) {
			t.Errorf("%s: indexed and scan paths disagree: %s", q.Name, instance.Diff(indexed, scanned))
		}
	}
}

// TestDeriveIntoScannedRelation exercises rules that derive into the
// relation they are scanning: appends during a scan must not be seen by
// the live iteration (snapshot semantics) but must be picked up by the
// next semi-naive round, on both join paths.
func TestDeriveIntoScannedRelation(t *testing.T) {
	check := func(t *testing.T) {
		// Symmetric closure: each derivation scans T while extending it.
		sym := parser.MustParseProgram(`T(@y.@x) :- T(@x.@y).`)
		out, err := Eval(sym, parser.MustParseInstance("T(a.b). T(c.d)."), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		want := parser.MustParseInstance("T(a.b). T(b.a). T(c.d). T(d.c).")
		if !out.Equal(want) {
			t.Fatalf("symmetric closure: %s", instance.Diff(out, want))
		}
		// Self-join transitive closure: both body atoms scan the head
		// relation.
		tc := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), T(@y.@z).`)
		out, err = Eval(tc, workload.Chain(5), Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Relation("T").Len(); got != 15 {
			t.Fatalf("closure of 5-chain has %d pairs, want 15", got)
		}
	}
	t.Run("indexed", check)
	t.Run("scan", func(t *testing.T) { withScanPath(t, func() { check(t) }) })
}

func TestQueryUnknownOutputErrors(t *testing.T) {
	prog := parser.MustParseProgram(`S($x) :- R($x).`)
	edb := parser.MustParseInstance("R(a).")
	if _, err := Query(prog, edb, "Nope", Limits{}); err == nil || !strings.Contains(err.Error(), "unknown output relation") {
		t.Fatalf("unknown output: got %v", err)
	}
	// A relation the program defines but never derives stays a valid,
	// empty result with the program's arity.
	rel, err := Query(parser.MustParseProgram(`S($x, $y) :- R($x), R($y), $x != $x.`), edb, "S", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 || rel.Arity != 2 {
		t.Fatalf("empty program-defined output: len=%d arity=%d", rel.Len(), rel.Arity)
	}
	// A relation only the instance knows is returned as-is.
	rel, err = Query(prog, edb, "R", Limits{})
	if err != nil || rel.Len() != 1 {
		t.Fatalf("edb output: %v %v", rel, err)
	}
}

// TestExplainShowsAccessPaths pins the planner's choices on the
// graphpaths reachability program: the recursive rule probes R by the
// ground prefix @y, and the goal rule probes T by an exact index.
func TestExplainShowsAccessPaths(t *testing.T) {
	q, err := queries.Get("reachability")
	if err != nil {
		t.Fatal(err)
	}
	lines, err := Explain(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"[scan]", "[prefix col=0 len=1]", "[index[0] ground]"} {
		if !strings.Contains(joined, want) {
			t.Errorf("join plan lacks %q:\n%s", want, joined)
		}
	}
}

// TestPlannerReordersByBoundVariables pins the greedy join order: a
// body written with the unbound atom last still runs it first when it
// is the only source of bindings.
func TestPlannerReordersByBoundVariables(t *testing.T) {
	prog := parser.MustParseProgram(`S(@x) :- Q(@x, @y), R(@x.@y).`)
	lines, err := Explain(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Q binds both variables, so R becomes fully ground and probes an
	// exact index rather than scanning.
	if !strings.Contains(lines[0], "R(@x.@y) [index[0] ground]") {
		t.Fatalf("join plan: %s", lines[0])
	}
}
