package eval

import (
	"math/rand"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// randomExpr builds a random path expression over a small variable and
// atom vocabulary; linear (no repeated variables) when linear is set.
func randomExpr(r *rand.Rand, depth int, linear bool, used map[ast.Var]bool) ast.Expr {
	n := r.Intn(4)
	e := ast.Expr{}
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			e = append(e, ast.Const{A: value.Intern([]string{"a", "b"}[r.Intn(2)])})
		case 1:
			v := ast.PVar([]string{"x", "y", "z"}[r.Intn(3)])
			if linear && used[v] {
				continue
			}
			used[v] = true
			e = append(e, ast.VarT{V: v})
		case 2:
			v := ast.AVar([]string{"u", "w"}[r.Intn(2)])
			if linear && used[v] {
				continue
			}
			used[v] = true
			e = append(e, ast.VarT{V: v})
		case 3:
			if depth > 0 {
				e = append(e, ast.Pack{E: randomExpr(r, depth-1, linear, used)})
			}
		}
	}
	return e
}

// randomValuation grounds the variables of e randomly.
func randomValuation(r *rand.Rand, vars []ast.Var) map[ast.Var]value.Path {
	nu := map[ast.Var]value.Path{}
	for _, v := range vars {
		if v.Atomic {
			nu[v] = value.Path{value.Intern([]string{"a", "b", "c"}[r.Intn(3)])}
			continue
		}
		n := r.Intn(3)
		p := make(value.Path, 0, n)
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				p = append(p, value.Pack(value.PathOf("q")))
			} else {
				p = append(p, value.Intern([]string{"a", "b"}[r.Intn(2)]))
			}
		}
		nu[v] = p
	}
	return nu
}

func applyValuation(e ast.Expr, nu map[ast.Var]value.Path) value.Path {
	var out value.Path
	for _, t := range e {
		switch x := t.(type) {
		case ast.Const:
			out = append(out, x.A)
		case ast.VarT:
			out = append(out, nu[x.V]...)
		case ast.Pack:
			out = append(out, value.Pack(applyValuation(x.E, nu)))
		}
	}
	return out
}

// TestMatchSoundness: every enumerated match evaluates back to the
// matched path.
func TestMatchSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 3000; trial++ {
		e := randomExpr(r, 2, false, map[ast.Var]bool{})
		nu := randomValuation(r, e.Vars())
		p := applyValuation(e, nu)
		env := NewEnv()
		env.Match(e, p, func() {
			got := env.Eval(e)
			if !got.Equal(p) {
				t.Fatalf("unsound match: %s on %s gives %s (env %v)", e, p, got, env.Snapshot())
			}
		})
	}
}

// TestMatchCompleteness: the valuation that produced the path is among
// the enumerated matches.
func TestMatchCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 3000; trial++ {
		e := randomExpr(r, 2, false, map[ast.Var]bool{})
		vars := e.Vars()
		nu := randomValuation(r, vars)
		p := applyValuation(e, nu)
		found := false
		env := NewEnv()
		env.Match(e, p, func() {
			if found {
				return
			}
			ok := true
			for _, v := range vars {
				b, bound := env.Lookup(v)
				if !bound || !b.Equal(nu[v]) {
					ok = false
					break
				}
			}
			if ok {
				found = true
			}
		})
		if !found {
			t.Fatalf("incomplete match: %s with %v on %s", e, nu, p)
		}
	}
}

// TestMatchNoDuplicates: distinct callbacks yield distinct valuations.
func TestMatchNoDuplicates(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 1500; trial++ {
		e := randomExpr(r, 1, false, map[ast.Var]bool{})
		vars := e.Vars()
		nu := randomValuation(r, vars)
		p := applyValuation(e, nu)
		seen := map[string]bool{}
		env := NewEnv()
		env.Match(e, p, func() {
			key := ""
			for _, v := range vars {
				b, _ := env.Lookup(v)
				key += v.String() + "=" + b.Key() + ";"
			}
			if seen[key] {
				t.Fatalf("duplicate valuation %s for %s on %s", key, e, p)
			}
			seen[key] = true
		})
	}
}
