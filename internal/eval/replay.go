package eval

import (
	"fmt"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
)

// This file is the replay entry point of the durability layer
// (internal/wal): recovery reconstructs an engine by re-running the
// same deterministic maintenance that produced the state in the first
// place. A checkpoint restores as "compile the program, seed the EDB,
// run the initial fixpoint" (Restore), and every logged batch replays
// through the engine's own Assert/Retract — there is no second
// evaluation semantics to drift from, which is what makes recovered
// state instance.Diff-identical to a from-scratch evaluation of the
// accepted history.

// Err returns the engine's sticky maintenance failure, or nil. A
// non-nil error means a previous Assert/Retract left the
// materialization partial: every evaluation and read call returns this
// same error. The serving layer checks it before logging a write so a
// doomed batch is not appended to the WAL first.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.broken
}

// EDBSnapshot returns an immutable copy-on-write snapshot holding the
// engine's base facts only: every relation the program does not define
// (the asserted/loaded EDB) plus the frozen seed relations of IDB
// relations that had facts in the initial EDB. Feeding the result to
// NewEngine with the same Prepared reconstructs the engine's exact
// materialization — derived facts are a deterministic function of the
// base facts, so they are recomputed, not serialized. This is what a
// durability checkpoint stores.
func (e *Engine) EDBSnapshot() (*instance.Instance, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.broken != nil {
		return nil, e.broken
	}
	snap := e.inst.Snapshot()
	out := instance.New()
	for _, name := range snap.Names() {
		if !e.prep.idb[name] {
			out.Put(name, snap.Relation(name)) // frozen by the snapshot
		}
	}
	for name, seed := range e.seeds {
		out.Put(name, seed) // frozen since NewEngine
	}
	return out, nil
}

// Replayer rebuilds engine state from a durability log. It is the
// Handler side of wal.Open wired to the evaluator: Restore applies the
// newest valid checkpoint, Load/Assert/Retract apply logged records in
// order. Zero value is ready; methods are not safe for concurrent use
// (recovery is single-threaded by nature).
type Replayer struct {
	// Limits bound every engine the replay constructs, exactly as they
	// bound the engine whose history is being replayed.
	Limits Limits

	src  string
	prep *Prepared
	eng  *Engine
}

// Restore compiles src and installs a fresh engine over edb (nil for
// empty), replacing any previous engine. It is both the checkpoint
// entry point (src + the checkpointed EDB) and the foundation of Load,
// which carries the previous engine's EDB forward.
func (r *Replayer) Restore(src string, edb *instance.Instance) error {
	prog, _, err := parser.ParseProgramForAnalysis(src)
	if err != nil {
		return fmt.Errorf("replay: parse: %w", err)
	}
	prep, err := Compile(prog)
	if err != nil {
		return fmt.Errorf("replay: compile: %w", err)
	}
	eng, err := NewEngine(prep, edb, r.Limits)
	if err != nil {
		return fmt.Errorf("replay: initial fixpoint: %w", err)
	}
	r.src, r.prep, r.eng = src, prep, eng
	return nil
}

// Load replays a logged load record: a program (re)load that carries
// the current fact base over, exactly as the live protocol does — see
// LoadCarry. Keeping the carry in this shared path is what keeps WAL
// recovery equivalent to the acked live history: an OpLoad record
// stores only the program text, and both sides reconstruct the carried
// EDB from the engine state the preceding records produced.
func (r *Replayer) Load(src string) error {
	_, err := r.LoadCarry(src)
	return err
}

// LoadCarry installs a fresh engine for src seeded with the previous
// engine's EDB snapshot (its non-IDB relations plus frozen IDB seeds):
// a program upgrade keeps the live fact base instead of dropping it.
// With no previous healthy engine the load starts empty. It returns
// the number of facts carried over. Snapshots share storage with the
// old engine, so the carry itself copies no tuples; on any error
// (parse, compile, initial fixpoint — e.g. an arity clash between the
// new program and a carried relation) the previous engine stays
// installed and serving.
func (r *Replayer) LoadCarry(src string) (int, error) {
	var edb *instance.Instance
	carried := 0
	if r.eng != nil && r.eng.Err() == nil {
		snap, err := r.eng.EDBSnapshot()
		if err != nil {
			return 0, err
		}
		edb, carried = snap, snap.Facts()
	}
	if err := r.Restore(src, edb); err != nil {
		return 0, err
	}
	return carried, nil
}

// Assert replays a logged assert batch through incremental
// maintenance.
func (r *Replayer) Assert(batch *instance.Instance) error {
	if r.eng == nil {
		return fmt.Errorf("replay: assert before any load record")
	}
	_, err := r.eng.Assert(batch)
	return err
}

// Retract replays a logged retract batch through DRed maintenance.
func (r *Replayer) Retract(batch *instance.Instance) error {
	if r.eng == nil {
		return fmt.Errorf("replay: retract before any load record")
	}
	_, err := r.eng.Retract(batch)
	return err
}

// Engine returns the recovered engine, nil when no load or checkpoint
// was replayed.
func (r *Replayer) Engine() *Engine { return r.eng }

// Prepared returns the compiled form of the recovered program, nil
// when none was replayed.
func (r *Replayer) Prepared() *Prepared { return r.prep }

// Source returns the source text of the recovered program ("" when
// none): the serving layer re-logs it into the next checkpoint.
func (r *Replayer) Source() string { return r.src }
