// Package eval implements the semantics of Sequence Datalog programs
// (paper §2.3): valuations, satisfaction of literals, and the least
// model of a program on an instance, computed stratum by stratum with
// semi-naive iteration. Termination is not guaranteed for arbitrary
// programs (Ex 2.3); configurable limits turn runaway evaluations into
// ErrNonTermination errors.
package eval

import (
	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// Env is a mutable valuation under construction: it maps variables to
// the paths they are bound to (atomic variables to single-atom paths).
// An Env also owns the reusable evaluation buffers for packed
// subexpressions, so it is private to one plan run (one worker).
type Env struct {
	m map[ast.Var]value.Path
	// packBufs[d] is the reusable buffer for evaluating the contents of
	// a packed term at nesting depth d. Pack hash-consing copies the
	// buffer only when a packed value is seen for the first time, so
	// repeated derivations of known packed values allocate nothing.
	packBufs []value.Path
}

// NewEnv creates an empty valuation.
func NewEnv() *Env { return &Env{m: map[ast.Var]value.Path{}} }

// Lookup returns the binding for v.
func (e *Env) Lookup(v ast.Var) (value.Path, bool) {
	p, ok := e.m[v]
	return p, ok
}

// Bound reports whether all variables of the expression are bound.
func (e *Env) Bound(x ast.Expr) bool {
	for _, v := range x.Vars() {
		if _, ok := e.m[v]; !ok {
			return false
		}
	}
	return true
}

// Snapshot copies the current bindings (for callers that must retain a
// valuation beyond the match callback).
func (e *Env) Snapshot() map[ast.Var]value.Path {
	out := make(map[ast.Var]value.Path, len(e.m))
	for k, v := range e.m {
		out[k] = v
	}
	return out
}

// Eval evaluates an expression under the environment into a fresh
// path; all variables must be bound (guaranteed by safety + literal
// planning).
func (e *Env) Eval(x ast.Expr) value.Path {
	return e.evalInto(x, make(value.Path, 0, len(x)), 0)
}

// EvalAppend evaluates an expression under the environment, appending
// the result to buf and returning the extended slice. Callers own buf
// and may reuse it across calls (the evaluator's per-step and per-head
// scratch buffers); nothing in the engine retains the slice.
func (e *Env) EvalAppend(x ast.Expr, buf value.Path) value.Path {
	return e.evalInto(x, buf, 0)
}

func (e *Env) evalInto(x ast.Expr, out value.Path, depth int) value.Path {
	for _, t := range x {
		switch it := t.(type) {
		case ast.Const:
			out = append(out, it.A)
		case ast.VarT:
			p, ok := e.m[it.V]
			if !ok {
				panic("eval: unbound variable " + it.V.String() + " (unsafe rule slipped through planning)")
			}
			out = append(out, p...)
		case ast.Pack:
			// Evaluate the packed contents into the depth-d scratch
			// buffer; Pack copies it only on a hash-consing miss, so the
			// buffer is free for the next packed sibling immediately.
			for depth >= len(e.packBufs) {
				e.packBufs = append(e.packBufs, nil)
			}
			inner := e.evalInto(it.E, e.packBufs[depth][:0], depth+1)
			e.packBufs[depth] = inner
			out = append(out, value.Pack(inner))
		}
	}
	return out
}

// Match enumerates all ways to extend the environment so that the
// expression denotes exactly the path p, calling cont for each
// (bindings are undone between alternatives, so cont must not retain
// the Env without Snapshot).
func (e *Env) Match(x ast.Expr, p value.Path, cont func()) {
	e.matchSeq(x, p, cont)
}

// minRigid returns a lower bound on the number of path elements the
// items must consume (path variables may consume zero).
func (e *Env) minRigid(items []ast.Term) int {
	n := 0
	for _, t := range items {
		switch it := t.(type) {
		case ast.Const, ast.Pack:
			n++
		case ast.VarT:
			if it.V.Atomic {
				n++
			} else if b, ok := e.m[it.V]; ok {
				n += len(b)
			}
		}
	}
	return n
}

func (e *Env) matchSeq(items []ast.Term, p value.Path, cont func()) {
	if len(items) == 0 {
		if len(p) == 0 {
			cont()
		}
		return
	}
	if e.minRigid(items) > len(p) {
		return
	}
	rest := items[1:]
	switch it := items[0].(type) {
	case ast.Const:
		if len(p) > 0 {
			if a, ok := p[0].(value.Atom); ok && a == it.A {
				e.matchSeq(rest, p[1:], cont)
			}
		}
	case ast.Pack:
		if len(p) > 0 {
			if pk, ok := p[0].(value.Packed); ok {
				e.matchSeq(it.E, pk.Unpack(), func() {
					e.matchSeq(rest, p[1:], cont)
				})
			}
		}
	case ast.VarT:
		v := it.V
		if v.Atomic {
			if len(p) == 0 {
				return
			}
			a, ok := p[0].(value.Atom)
			if !ok {
				return
			}
			if b, bound := e.m[v]; bound {
				if len(b) == 1 && value.Equal(b[0], a) {
					e.matchSeq(rest, p[1:], cont)
				}
				return
			}
			e.m[v] = value.Path{a}
			e.matchSeq(rest, p[1:], cont)
			delete(e.m, v)
			return
		}
		if b, bound := e.m[v]; bound {
			if len(p) >= len(b) && p[:len(b)].Equal(b) {
				e.matchSeq(rest, p[len(b):], cont)
			}
			return
		}
		for k := 0; k <= len(p); k++ {
			e.m[v] = p[:k]
			e.matchSeq(rest, p[k:], cont)
		}
		delete(e.m, v)
	}
}

// MatchTuple enumerates extensions of the environment matching each
// argument pattern against the corresponding tuple component.
func (e *Env) MatchTuple(args []ast.Expr, tuple []value.Path, cont func()) {
	if len(args) == 0 {
		cont()
		return
	}
	e.Match(args[0], tuple[0], func() {
		e.MatchTuple(args[1:], tuple[1:], cont)
	})
}
