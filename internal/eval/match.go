// Package eval implements the semantics of Sequence Datalog programs
// (paper §2.3): valuations, satisfaction of literals, and the least
// model of a program on an instance, computed stratum by stratum with
// semi-naive iteration. Termination is not guaranteed for arbitrary
// programs (Ex 2.3); configurable limits turn runaway evaluations into
// ErrNonTermination errors.
package eval

import (
	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// Env is a mutable valuation under construction: it maps variables to
// the paths they are bound to (atomic variables to single-atom paths).
type Env struct {
	m map[ast.Var]value.Path
}

// NewEnv creates an empty valuation.
func NewEnv() *Env { return &Env{m: map[ast.Var]value.Path{}} }

// Lookup returns the binding for v.
func (e *Env) Lookup(v ast.Var) (value.Path, bool) {
	p, ok := e.m[v]
	return p, ok
}

// Bound reports whether all variables of the expression are bound.
func (e *Env) Bound(x ast.Expr) bool {
	for _, v := range x.Vars() {
		if _, ok := e.m[v]; !ok {
			return false
		}
	}
	return true
}

// Snapshot copies the current bindings (for callers that must retain a
// valuation beyond the match callback).
func (e *Env) Snapshot() map[ast.Var]value.Path {
	out := make(map[ast.Var]value.Path, len(e.m))
	for k, v := range e.m {
		out[k] = v
	}
	return out
}

// Eval evaluates an expression under the environment; all variables
// must be bound (guaranteed by safety + literal planning).
func (e *Env) Eval(x ast.Expr) value.Path {
	out := make(value.Path, 0, len(x))
	return e.evalInto(x, out)
}

func (e *Env) evalInto(x ast.Expr, out value.Path) value.Path {
	for _, t := range x {
		switch it := t.(type) {
		case ast.Const:
			out = append(out, it.A)
		case ast.VarT:
			p, ok := e.m[it.V]
			if !ok {
				panic("eval: unbound variable " + it.V.String() + " (unsafe rule slipped through planning)")
			}
			out = append(out, p...)
		case ast.Pack:
			out = append(out, value.Pack(e.evalInto(it.E, nil)))
		}
	}
	return out
}

// Match enumerates all ways to extend the environment so that the
// expression denotes exactly the path p, calling cont for each
// (bindings are undone between alternatives, so cont must not retain
// the Env without Snapshot).
func (e *Env) Match(x ast.Expr, p value.Path, cont func()) {
	e.matchSeq(x, p, cont)
}

// minRigid returns a lower bound on the number of path elements the
// items must consume (path variables may consume zero).
func (e *Env) minRigid(items []ast.Term) int {
	n := 0
	for _, t := range items {
		switch it := t.(type) {
		case ast.Const, ast.Pack:
			n++
		case ast.VarT:
			if it.V.Atomic {
				n++
			} else if b, ok := e.m[it.V]; ok {
				n += len(b)
			}
		}
	}
	return n
}

func (e *Env) matchSeq(items []ast.Term, p value.Path, cont func()) {
	if len(items) == 0 {
		if len(p) == 0 {
			cont()
		}
		return
	}
	if e.minRigid(items) > len(p) {
		return
	}
	rest := items[1:]
	switch it := items[0].(type) {
	case ast.Const:
		if len(p) > 0 {
			if a, ok := p[0].(value.Atom); ok && a == it.A {
				e.matchSeq(rest, p[1:], cont)
			}
		}
	case ast.Pack:
		if len(p) > 0 {
			if pk, ok := p[0].(value.Packed); ok {
				e.matchSeq(it.E, pk.P, func() {
					e.matchSeq(rest, p[1:], cont)
				})
			}
		}
	case ast.VarT:
		v := it.V
		if v.Atomic {
			if len(p) == 0 {
				return
			}
			a, ok := p[0].(value.Atom)
			if !ok {
				return
			}
			if b, bound := e.m[v]; bound {
				if len(b) == 1 && value.Equal(b[0], a) {
					e.matchSeq(rest, p[1:], cont)
				}
				return
			}
			e.m[v] = value.Path{a}
			e.matchSeq(rest, p[1:], cont)
			delete(e.m, v)
			return
		}
		if b, bound := e.m[v]; bound {
			if len(p) >= len(b) && p[:len(b)].Equal(b) {
				e.matchSeq(rest, p[len(b):], cont)
			}
			return
		}
		for k := 0; k <= len(p); k++ {
			e.m[v] = p[:k]
			e.matchSeq(rest, p[k:], cont)
		}
		delete(e.m, v)
	}
}

// MatchTuple enumerates extensions of the environment matching each
// argument pattern against the corresponding tuple component.
func (e *Env) MatchTuple(args []ast.Expr, tuple []value.Path, cont func()) {
	if len(args) == 0 {
		cont()
		return
	}
	e.Match(args[0], tuple[0], func() {
		e.MatchTuple(args[1:], tuple[1:], cont)
	})
}
