package eval

import (
	"errors"
	"strings"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/workload"
)

// TestParallelSequentialScanAgree is the three-way differential test of
// the evaluator: on every terminating example query of the paper, the
// parallel evaluator (4 workers), the sequential indexed evaluator and
// the naive scan evaluator must compute the same least model.
func TestParallelSequentialScanAgree(t *testing.T) {
	edbs := agreementEDBs(t)
	for _, q := range queries.All() {
		if !q.Terminating {
			continue
		}
		edb, ok := edbs[q.Name]
		if !ok {
			t.Fatalf("query %s has no agreement EDB; add one to agreementEDBs", q.Name)
		}
		sequential, err := Eval(q.Program, edb, Limits{})
		if err != nil {
			t.Fatalf("%s (sequential): %v", q.Name, err)
		}
		parallel, err := Eval(q.Program, edb, Limits{Parallelism: 4})
		if err != nil {
			t.Fatalf("%s (parallel): %v", q.Name, err)
		}
		if !parallel.Equal(sequential) {
			t.Errorf("%s: parallel and sequential disagree: %s", q.Name, instance.Diff(parallel, sequential))
		}
		var scanned *instance.Instance
		withScanPath(t, func() {
			scanned, err = Eval(q.Program, edb, Limits{Parallelism: 4})
		})
		if err != nil {
			t.Fatalf("%s (parallel scan): %v", q.Name, err)
		}
		if !scanned.Equal(sequential) {
			t.Errorf("%s: parallel scan path disagrees with sequential: %s", q.Name, instance.Diff(scanned, sequential))
		}
	}
}

// TestParallelDeterminism pins the merge-order guarantee: evaluating
// the same program at workers=8 is not merely set-equal to workers=1 —
// repeated parallel runs produce byte-identical renderings (insertion
// order is a pure function of program and input, independent of
// scheduling). 50 repetitions give the race detector scheduling
// variety to bite on.
func TestParallelDeterminism(t *testing.T) {
	q, err := queries.Get("reachability")
	if err != nil {
		t.Fatal(err)
	}
	edb := workload.Graph(9, 30, 120)
	baseline, err := Eval(q.Program, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := ""
	for i := 0; i < 50; i++ {
		out, err := Eval(q.Program, edb, Limits{Parallelism: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !out.Equal(baseline) {
			t.Fatalf("run %d: parallel fixpoint differs from sequential: %s", i, instance.Diff(out, baseline))
		}
		if s := out.String(); want == "" {
			want = s
		} else if s != want {
			t.Fatalf("run %d: parallel result not deterministic across runs", i)
		}
	}
}

// TestParallelJoinPlansStable checks that parallelism is invisible to
// planning: the join plans Explain reports are a property of the
// program alone, so rounds partitioned across workers execute the very
// same access paths as the sequential evaluator.
func TestParallelJoinPlansStable(t *testing.T) {
	q, err := queries.Get("reachability")
	if err != nil {
		t.Fatal(err)
	}
	first, err := Explain(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Explain(q.Program)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(again, "\n") != strings.Join(first, "\n") {
			t.Fatalf("join plans changed between compilations:\n%s\nvs\n%s", first, again)
		}
	}
}

// TestParallelStratifiedNegation exercises the freeze contract across
// strata: negated predicates resolve against relations completed by an
// earlier stratum, which stay frozen during the later stratum's
// fan-out.
func TestParallelStratifiedNegation(t *testing.T) {
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).
---
U(@x.@y) :- N(@x), N(@y), !T(@x.@y).`)
	edb := workload.Chain(6)
	for _, t := range edb.Relation("R").Tuples() {
		edb.AddPath("N", t[0][:1])
		edb.AddPath("N", t[0][1:])
	}
	sequential, err := Eval(prog, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Eval(prog, edb, Limits{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !parallel.Equal(sequential) {
		t.Fatalf("stratified negation: %s", instance.Diff(parallel, sequential))
	}
	if parallel.Relation("U") == nil || parallel.Relation("U").Len() == 0 {
		t.Fatal("negation stratum derived nothing")
	}
}

// TestParallelLimitsTrip checks that the termination guards fire under
// parallel evaluation too: MaxFacts inside a round (worker budget) and
// at the barrier, and MaxIterations across rounds.
func TestParallelLimitsTrip(t *testing.T) {
	grow := parser.MustParseProgram(`
S(a).
S($x.a) :- S($x).`)
	if _, err := Eval(grow, instance.New(), Limits{MaxFacts: 100, Parallelism: 4}); !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxFacts: got %v", err)
	}
	if _, err := Eval(grow, instance.New(), Limits{MaxIterations: 10, Parallelism: 4}); !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxIterations: got %v", err)
	}
	if _, err := Eval(grow, instance.New(), Limits{MaxPathLen: 8, Parallelism: 4}); !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxPathLen: got %v", err)
	}
}
