package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/value"
	"seqlog/internal/workload"
)

// factsInstance rebuilds an EDB from the seed instance plus the facts
// whose present flag is set.
func factsInstance(seeds *instance.Instance, facts []namedFact, present []bool) *instance.Instance {
	out := seeds.Clone()
	for i, f := range facts {
		if present[i] {
			out.Ensure(f.name, len(f.t)).Add(f.t)
		}
	}
	return out
}

// TestEngineRetractMatchesEval is the differential acceptance test of
// DRed maintenance: on every terminating example query of the paper,
// driving an Engine through random interleavings of retract and
// re-assert batches must leave exactly the least model the from-scratch
// evaluator computes on the surviving EDB — at every checkpoint, for
// several batch sizes and worker counts.
func TestEngineRetractMatchesEval(t *testing.T) {
	edbs := agreementEDBs(t)
	for _, q := range queries.All() {
		if !q.Terminating {
			continue
		}
		edb, ok := edbs[q.Name]
		if !ok {
			t.Fatalf("query %s has no agreement EDB; add one to agreementEDBs", q.Name)
		}
		prep, err := Compile(q.Program)
		if err != nil {
			t.Fatalf("%s: Compile: %v", q.Name, err)
		}
		// seeds = EDB facts of IDB relations (never retractable); facts =
		// everything the engine can retract and re-assert.
		seeds, facts := splitEDB(edb, prep, 0, nil)
		for _, cfg := range []struct {
			batch, workers int
			seed           int64
		}{
			{batch: 1, workers: 1, seed: 11},
			{batch: 3, workers: 2, seed: 12},
			{batch: 2, workers: 4, seed: 13},
			{batch: 1 << 30, workers: 1, seed: 14}, // one big batch
		} {
			rng := rand.New(rand.NewSource(cfg.seed))
			e, err := NewEngine(prep, edb, Limits{Parallelism: cfg.workers})
			if err != nil {
				t.Fatalf("%s %+v: NewEngine: %v", q.Name, cfg, err)
			}
			present := make([]bool, len(facts))
			for i := range present {
				present[i] = true
			}
			check := func(step string) {
				t.Helper()
				want, err := prep.Eval(factsInstance(seeds, facts, present), Limits{})
				if err != nil {
					t.Fatalf("%s %+v %s: Eval: %v", q.Name, cfg, step, err)
				}
				got := mustSnapshot(t, e)
				if !got.Equal(want) {
					t.Fatalf("%s %+v %s: engine differs from Eval: %s",
						q.Name, cfg, step, instance.Diff(got, want))
				}
			}
			// Retract everything in random order, checking after each
			// batch; midway, re-assert a random batch of removed facts.
			order := rng.Perm(len(facts))
			step := 0
			for len(order) > 0 {
				n := cfg.batch
				if n > len(order) {
					n = len(order)
				}
				delta := instance.New()
				for _, idx := range order[:n] {
					delta.Ensure(facts[idx].name, len(facts[idx].t)).Add(facts[idx].t)
					present[idx] = false
				}
				order = order[n:]
				if _, err := e.Retract(delta); err != nil {
					t.Fatalf("%s %+v: Retract: %v", q.Name, cfg, err)
				}
				check(fmt.Sprintf("retract step %d", step))
				// Every other batch, put a few removed facts back.
				if step%2 == 1 {
					back := instance.New()
					for i := range present {
						if !present[i] && rng.Intn(2) == 0 {
							back.Ensure(facts[i].name, len(facts[i].t)).Add(facts[i].t)
							present[i] = true
						}
					}
					if back.Facts() > 0 {
						if _, err := e.Assert(back); err != nil {
							t.Fatalf("%s %+v: re-Assert: %v", q.Name, cfg, err)
						}
						check(fmt.Sprintf("re-assert step %d", step))
					}
				}
				step++
			}
		}
	}
}

// TestEngineRetractRediscoversAlternatives pins the "rederive" in DRed:
// removing one of two derivations must keep the fact, removing the last
// one must drop it, and the stats must show the overdelete/rederive
// split.
func TestEngineRetractRediscoversAlternatives(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	// A diamond: a->b->d and a->c->d, so T(a.d) has two derivations.
	e, err := NewEngine(prep, parser.MustParseInstance(`
R(a.b). R(b.d). R(a.c). R(c.d).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Retract(parser.MustParseInstance(`R(a.b).`))
	if err != nil {
		t.Fatal(err)
	}
	// T(a.b) and the boolean S (the query's third rule is S :- T(a.b))
	// are overdeleted — their derivations used the edge and nothing else
	// derives them. T(a.d) is a candidate too, but the well-founded
	// pruner keeps it outright: its alternative derivation through
	// T(a.c) uses only live, older facts, so it is never deleted and
	// never needs rederiving.
	if stats.Retracted != 1 || stats.Overdeleted != 2 || stats.Rederived != 0 || stats.Derived != -2 {
		t.Fatalf("stats = %+v, want 1 retracted, 2 overdeleted (T(a.b), S), none rederived, net -2", stats)
	}
	rel, err := e.Query("T")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"(a.c)": true, "(a.d)": true, "(b.d)": true, "(c.d)": true}
	if rel.Len() != len(want) {
		t.Fatalf("T = %v", rel.Sorted())
	}
	for _, tu := range rel.Tuples() {
		if !want["("+tu[0].String()+")"] {
			t.Fatalf("unexpected T fact %v", tu)
		}
	}
	// Removing the second path drops T(a.d) for good.
	stats, err = e.Retract(parser.MustParseInstance(`R(a.c).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overdeleted != 2 || stats.Rederived != 0 {
		t.Fatalf("stats = %+v, want 2 overdeleted (T(a.c), T(a.d)), none rederived", stats)
	}
	if rel, _ := e.Query("T"); rel.Len() != 2 {
		t.Fatalf("T = %v", rel.Sorted())
	}
}

// TestEngineRetractUnfoundedCycle pins the well-foundedness of the
// overdeletion pruner. With edges b->c, c->b (a cycle) and a->b (the
// only way in from a), retracting a->b must remove T(a.b) and T(a.c):
// each still has a body match through the other (T(a.b) via
// T(a.c)+R(c.b), T(a.c) via T(a.b)+R(b.c)), so a naive
// check-before-delete would keep both alive on circular justification.
// The pruner's older-position restriction rejects exactly those
// matches, the facts are overdeleted, and rederivation (correctly)
// finds nothing.
func TestEngineRetractUnfoundedCycle(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	edb := parser.MustParseInstance(`R(b.c). R(c.b). R(a.b).`)
	e, err := NewEngine(prep, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Retract(parser.MustParseInstance(`R(a.b).`)); err != nil {
		t.Fatal(err)
	}
	want, err := prep.Eval(parser.MustParseInstance(`R(b.c). R(c.b).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	got := mustSnapshot(t, e)
	if !got.Equal(want) {
		t.Fatalf("unfounded facts survived the cycle: %s", instance.Diff(got, want))
	}
	for _, gone := range []string{"a.b", "a.c"} {
		p, _ := parser.ParsePath(gone)
		if got.Relation("T").Contains(instance.Tuple{p}) {
			t.Fatalf("T(%s) kept alive by circular justification", gone)
		}
	}
}

// TestEngineRetractSharedHeadAcrossStrata: a head name defined in
// several handwritten strata must keep a fact alive as long as ANY
// defining stratum still derives it — and readers must see exactly
// the stratum-order views Prepared.Eval gives them. Retracting A(t)
// overdeletes H(t) at stratum 1; the reader G between the defining
// strata loses G(t) for good (its view of H is H-after-stratum-1,
// which no longer has t), stratum 3 rederives H(t) from B(t), and the
// reader G2 after the restorer keeps G2(t). Every checkpoint must
// equal from-scratch evaluation, which pins those per-stratum views.
func TestEngineRetractSharedHeadAcrossStrata(t *testing.T) {
	prog := parser.MustParseProgram(`
H($x) :- A($x).
---
G($x) :- H($x).
---
H($x) :- B($x).
---
G2($x) :- H($x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`A(t). B(t).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Retract(parser.MustParseInstance(`A(t).`))
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := e.Query("H"); h.Len() != 1 {
		t.Fatalf("H = %v, want H(t) restored via stratum 3 (stats %+v)", h.Sorted(), stats)
	}
	if g, _ := e.Query("G"); g.Len() != 0 {
		t.Fatalf("G = %v, want G(t) gone (its view of H lost t; stats %+v)", g.Sorted(), stats)
	}
	if g2, _ := e.Query("G2"); g2.Len() != 1 {
		t.Fatalf("G2 = %v, want G2(t) kept (its view of H never lost t; stats %+v)", g2.Sorted(), stats)
	}
	want, err := prep.Eval(parser.MustParseInstance(`B(t).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
	// Retracting the remaining support kills everything for good.
	if _, err := e.Retract(parser.MustParseInstance(`B(t).`)); err != nil {
		t.Fatal(err)
	}
	want, err = prep.Eval(instance.New(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineAssertForwardReadMatchesEval pins that the forward-read
// divergence is closed: with derivation stamps, a side atom of a delta
// join at stratum 2 reads a stamp-bounded view of H, so the stratum-3
// fact H(c) is invisible to it — exactly as in Prepared.Eval's
// stratum-ordered pass. A positive forward reference (an earlier
// stratum reading a head a LATER stratum also defines — something
// auto-stratification never produces) used to make Assert derive the
// extra P(c); now Assert and Eval must agree on the full
// materialization.
func TestEngineAssertForwardReadMatchesEval(t *testing.T) {
	prog := parser.MustParseProgram(`
H($x) :- A($x).
---
P($x) :- H($x), B($x).
---
H($x) :- C($x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`C(c).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Assert(parser.MustParseInstance(`B(c).`)); err != nil {
		t.Fatal(err)
	}
	want, err := prep.Eval(parser.MustParseInstance(`C(c). B(c).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if wp := want.Relation("P"); wp != nil && wp.Len() > 0 {
		t.Fatalf("Eval derived P = %v; the premise of this forward-read test no longer holds", wp.Sorted())
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineForwardReadMatchesEvalUnderVariants pins that delta-hoisted
// plan variants preserve the stamp-bounded views: on the
// TestEngineAssertForwardReadMatchesEval program the variant-maintained
// engine and the base-plan engine must both produce Eval's
// materialization — no over-derived P(c) in either regime.
func TestEngineForwardReadMatchesEvalUnderVariants(t *testing.T) {
	prog := parser.MustParseProgram(`
H($x) :- A($x).
---
P($x) :- H($x), B($x).
---
H($x) :- C($x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	build := func(variants bool) *Engine {
		defer func(old bool) { DeltaVariants = old }(DeltaVariants)
		DeltaVariants = variants
		e, err := NewEngine(prep, parser.MustParseInstance(`C(c).`), Limits{})
		if err != nil {
			t.Fatalf("NewEngine(variants=%v): %v", variants, err)
		}
		return e
	}
	engOn, engOff := build(true), build(false)
	for _, e := range []*Engine{engOn, engOff} {
		if _, err := e.Assert(parser.MustParseInstance(`B(c).`)); err != nil {
			t.Fatal(err)
		}
	}
	snapOn, err := engOn.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapOff, err := engOff.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := instance.Diff(snapOn, snapOff); d != "" {
		t.Fatalf("variants changed the forward-read materialization: %s", d)
	}
	want, err := prep.Eval(parser.MustParseInstance(`C(c). B(c).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !snapOn.Equal(want) {
		t.Fatal(instance.Diff(snapOn, want))
	}
}

// TestEngineRetractNegationEnablesDerivations: deleting a fact a rule
// negates must create the derivations the fact was blocking, and the
// new facts must cascade through later strata.
func TestEngineRetractNegationEnablesDerivations(t *testing.T) {
	prog := parser.MustParseProgram(`
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`)
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	edb := `R(a.b). R(d.b). B(b).`
	e, err := NewEngine(prep, parser.MustParseInstance(edb), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Initially nothing is white (all edges hit the black b), so every
	// edge source is in S.
	if rel, _ := e.Query("S"); rel.Len() != 2 {
		t.Fatalf("S = %v", rel.Sorted())
	}
	// Un-blacken b: W(a) and W(d) become derivable (insertions through
	// stratum 1's negation), which in turn invalidates S(a) and S(d)
	// (overdeletions through stratum 2's negation).
	stats, err := e.Retract(parser.MustParseInstance(`B(b).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retracted != 1 || stats.Derived != 0 || stats.Overdeleted != 2 {
		t.Fatalf("stats = %+v, want +2 W facts and -2 S facts (net 0, 2 overdeleted)", stats)
	}
	if rel, _ := e.Query("W"); rel.Len() != 2 {
		t.Fatalf("W = %v", rel.Sorted())
	}
	if rel, _ := e.Query("S"); rel.Len() != 0 {
		t.Fatalf("S = %v", rel.Sorted())
	}
	want, err := prep.Eval(parser.MustParseInstance(`R(a.b). R(d.b).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineRetractSeedsSurvive: retraction can never remove
// EDB-provided facts of IDB relations through the maintenance cascade,
// and retracting them directly is rejected like any IDB write.
func TestEngineRetractSeedsSurvive(t *testing.T) {
	prep, err := Compile(parser.MustParseProgram(`S($x) :- R($x).`))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a). S(seed). S(a).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// S(a) is both seeded and derived; retracting R(a) must keep it (it
	// is a base fact) and keep S(seed).
	if _, err := e.Retract(parser.MustParseInstance(`R(a).`)); err != nil {
		t.Fatal(err)
	}
	rel, err := e.Query("S")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("S = %v, want seed and a to survive", rel.Sorted())
	}
	if _, err := e.Retract(parser.MustParseInstance(`S(seed).`)); err == nil || !strings.Contains(err.Error(), "IDB") {
		t.Fatalf("retracting an IDB relation: err = %v", err)
	}
}

// TestEngineRetractValidation pins the Retract boundary: IDB names and
// arity clashes are rejected without breaking the engine, and batches
// of absent facts are silent no-ops that skip every stratum.
func TestEngineRetractValidation(t *testing.T) {
	prep, err := Compile(parser.MustParseProgram(`S($x) :- R($x).`))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, parser.MustParseInstance(`R(a).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Retract(parser.MustParseInstance(`S(a).`)); err == nil || !strings.Contains(err.Error(), "IDB") {
		t.Fatalf("IDB retract: err = %v", err)
	}
	bad := instance.New()
	bad.Add("R", instance.Tuple{value.PathOf("a"), value.PathOf("b")})
	if _, err := e.Retract(bad); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity clash: err = %v", err)
	}
	stats, err := e.Retract(parser.MustParseInstance(`R(zz). Unknown(q).`))
	if err != nil {
		t.Fatalf("absent facts must be dropped silently: %v", err)
	}
	if stats.Retracted != 0 || stats.StrataSkipped != 1 || stats.StrataIncremental != 0 {
		t.Fatalf("stats = %+v, want a full skip", stats)
	}
	// The engine stays healthy throughout.
	if rel, err := e.Query("S"); err != nil || rel.Len() != 1 {
		t.Fatalf("engine unusable after rejected batches: %v", err)
	}
}

// TestEngineRetractAssertRoundTrip: retracting facts and asserting them
// back restores exactly the original materialization, across enough
// cycles to trip the tombstone compaction policy.
func TestEngineRetractAssertRoundTrip(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	edb := workload.Graph(33, 12, 30)
	e, err := NewEngine(prep, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustSnapshot(t, e)
	var batch []namedFact
	for _, tu := range edb.Relation("R").Tuples() {
		batch = append(batch, namedFact{"R", tu})
	}
	for cycle := 0; cycle < 4; cycle++ {
		// Retract half the edges (well past the 25% compaction
		// threshold for T), then put them back.
		delta := instance.New()
		for i, f := range batch {
			if i%2 == cycle%2 {
				delta.Ensure(f.name, len(f.t)).Add(f.t)
			}
		}
		if _, err := e.Retract(delta); err != nil {
			t.Fatalf("cycle %d: Retract: %v", cycle, err)
		}
		if _, err := e.Assert(delta); err != nil {
			t.Fatalf("cycle %d: Assert: %v", cycle, err)
		}
		if got := mustSnapshot(t, e); !got.Equal(want) {
			t.Fatalf("cycle %d: round trip drifted: %s", cycle, instance.Diff(got, want))
		}
	}
}

// TestEngineConcurrentSnapshotQueryDuringRetract is the -race test of
// retraction: readers continuously take snapshots, probe membership and
// build lazy indexes while a writer alternates retracts and asserts.
// Snapshots must stay internally consistent (every live tuple findable
// through a lazily built index) and the final state must equal
// from-scratch evaluation.
func TestEngineConcurrentSnapshotQueryDuringRetract(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, chainEDB(0, 32), Limits{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := e.Snapshot()
				if err != nil {
					panic(err)
				}
				tr := snap.Relation("T")
				if tr == nil || tr.Len() == 0 {
					continue
				}
				live := tr.Tuples()
				for k := 0; k < 8; k++ {
					tu := live[rng.Intn(len(live))]
					if pos := tr.Index(0).Lookup(tu[0]); len(pos) == 0 {
						panic("index lost a live tuple present in the snapshot")
					}
					if !tr.Contains(tu) {
						panic("membership lost a live tuple present in the snapshot")
					}
				}
				if _, err := e.Query("T"); err != nil {
					panic(err)
				}
			}
		}(int64(r))
	}
	// Alternate retracting and re-asserting tail edges, shrinking the
	// chain overall so tombstones accumulate and compaction triggers.
	for i := 31; i >= 8; i-- {
		delta := instance.New()
		delta.AddPath("R", value.PathOf(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1)))
		if _, err := e.Retract(delta); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if _, err := e.Assert(delta); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Retract(delta); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	want, err := prep.Eval(chainEDB(0, 8), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustSnapshot(t, e); !got.Equal(want) {
		t.Fatal(instance.Diff(got, want))
	}
}

// TestEngineRetractIsDeltaDriven pins the cost model: retracting an
// edge whose downward closure is small must do work proportional to
// that closure, not to the materialization.
func TestEngineRetractIsDeltaDriven(t *testing.T) {
	q, _ := queries.Get("reachability")
	prep, err := Compile(q.Program)
	if err != nil {
		t.Fatal(err)
	}
	edb := chainEDB(0, 64)
	edb.AddPath("R", value.PathOf("zz0", "zz1"))
	e, err := NewEngine(prep, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// The disjoint edge supports exactly one closure fact.
	delta := instance.New()
	delta.AddPath("R", value.PathOf("zz0", "zz1"))
	stats, err := e.Retract(delta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overdeleted != 1 || stats.Rederived != 0 || stats.Derived != -1 {
		t.Fatalf("stats = %+v, want exactly one fact overdeleted", stats)
	}
	// Cutting the chain's last edge: 64 closure facts end at c64 and
	// none survives.
	delta = instance.New()
	delta.AddPath("R", value.PathOf("c63", "c64"))
	stats, err = e.Retract(delta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overdeleted != 64 || stats.Rederived != 0 {
		t.Fatalf("stats = %+v, want the 64 paths into c64 overdeleted", stats)
	}
}
