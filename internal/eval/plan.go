package eval

import (
	"fmt"

	"seqlog/internal/ast"
)

// step is one planned body literal.
type step struct {
	kind stepKind
	pred ast.Pred // for predicate steps
	// For equation steps: ground is evaluated under the environment and
	// pattern is matched against the result, binding its variables.
	ground  ast.Expr
	pattern ast.Expr
	// For negated equations both sides are ground at execution time.
	neg bool
}

type stepKind int

const (
	stepPred    stepKind = iota // positive predicate: join/match
	stepEq                      // positive equation: evaluate + match
	stepNegPred                 // negated predicate: ground membership test
	stepNegEq                   // negated equation: ground comparison
)

// plan is a compiled rule: steps execute left to right; positive
// predicates first, then positive equations in limited-closure order,
// then negative literals (whose variables are bound by safety).
type plan struct {
	rule  ast.Rule
	steps []step
	// predLocal[i] is, for each stepPred index in order, the offset of
	// that predicate step within p.steps. Used by semi-naive deltas.
	predSteps []int
}

// compile orders the body literals of a safe rule per §2.2's limited
// variable closure. It fails on unsafe rules.
func compile(r ast.Rule) (*plan, error) {
	p := &plan{rule: r}
	bound := map[ast.Var]bool{}
	// 1. Positive predicates, in the order written.
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, ok := l.Atom.(ast.Pred); ok {
			p.predSteps = append(p.predSteps, len(p.steps))
			p.steps = append(p.steps, step{kind: stepPred, pred: pr})
			for _, a := range pr.Args {
				for _, v := range a.Vars() {
					bound[v] = true
				}
			}
		}
	}
	// 2. Positive equations, greedily picking one with a fully bound side.
	var eqs []ast.Eq
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if eq, ok := l.Atom.(ast.Eq); ok {
			eqs = append(eqs, eq)
		}
	}
	for len(eqs) > 0 {
		progress := false
		for i, eq := range eqs {
			lb, rb := varsBound(eq.L, bound), varsBound(eq.R, bound)
			if !lb && !rb {
				continue
			}
			g, pat := eq.L, eq.R
			if !lb {
				g, pat = eq.R, eq.L
			}
			p.steps = append(p.steps, step{kind: stepEq, ground: g, pattern: pat})
			for _, v := range pat.Vars() {
				bound[v] = true
			}
			eqs = append(eqs[:i], eqs[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("eval: rule is unsafe (equations cannot be ordered): %s", r)
		}
	}
	// 3. Negative literals; all their variables must now be bound.
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		switch x := l.Atom.(type) {
		case ast.Pred:
			for _, a := range x.Args {
				if !varsBound(a, bound) {
					return nil, fmt.Errorf("eval: unsafe negated predicate %s in rule %s", x, r)
				}
			}
			p.steps = append(p.steps, step{kind: stepNegPred, pred: x, neg: true})
		case ast.Eq:
			if !varsBound(x.L, bound) || !varsBound(x.R, bound) {
				return nil, fmt.Errorf("eval: unsafe nonequality %s != %s in rule %s", x.L, x.R, r)
			}
			p.steps = append(p.steps, step{kind: stepNegEq, ground: x.L, pattern: x.R, neg: true})
		}
	}
	// 4. Head variables must be bound.
	for _, a := range r.Head.Args {
		if !varsBound(a, bound) {
			return nil, fmt.Errorf("eval: unsafe head %s in rule %s", r.Head, r)
		}
	}
	return p, nil
}

func varsBound(e ast.Expr, bound map[ast.Var]bool) bool {
	for _, v := range e.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}
