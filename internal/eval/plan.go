package eval

import (
	"fmt"
	"strings"

	"seqlog/internal/ast"
)

// step is one planned body literal.
type step struct {
	kind stepKind
	pred ast.Pred // for predicate steps
	// For equation steps: ground is evaluated under the environment and
	// pattern is matched against the result, binding its variables.
	ground  ast.Expr
	pattern ast.Expr
	// For negated equations both sides are ground at execution time.
	neg bool

	// Join acceleration (stepPred only), computed against the set of
	// variables bound when the step runs.
	//
	// boundCols lists the argument positions whose expressions are fully
	// ground at that point: the step can probe an exact hash index on
	// those columns instead of scanning. unboundCols/unboundArgs are the
	// complementary positions, matched per candidate (the bound ones are
	// already verified by the index lookup).
	boundCols   []int
	unboundCols []int
	unboundArgs []ast.Expr
	// prefixCol/prefixLen describe the best ground term-prefix of a not
	// fully bound argument (e.g. @y.$rest with @y bound has a length-1
	// ground prefix). Used when boundCols is empty: any matching tuple's
	// column must start with the prefix's value, so the step probes a
	// prefix index. prefixCol is -1 when no argument qualifies.
	prefixCol int
	prefixLen int
	// suffixCol/suffixLen are the mirror image for ground term-suffixes
	// (e.g. $rest.@y with @y bound — the paper's bound-suffix patterns,
	// §2.2): any matching tuple's column must end with the suffix's
	// value, so the step probes a suffix index. Only one of prefix and
	// suffix is ever set on a step; annotate keeps the longer one
	// (prefix on ties). suffixCol is -1 when no argument qualifies.
	suffixCol int
	suffixLen int
}

type stepKind int

const (
	stepPred    stepKind = iota // positive predicate: join/match
	stepEq                      // positive equation: evaluate + match
	stepNegPred                 // negated predicate: ground membership test
	stepNegEq                   // negated equation: ground comparison
)

// negVariant is a delta-hoisted plan for one negated body predicate:
// the rule recompiled with that atom's variables assumed bound, so
// that when maintenance enumerates the changed tuples of the negated
// relation and matches the atom against each one, the remaining body
// runs with every position the binding grounds served by index or
// prefix/suffix probes. step is the index of this atom's stepNegPred
// within p.steps.
type negVariant struct {
	pred ast.Pred
	p    *plan
	step int
}

// plan is a compiled rule: steps execute left to right; positive
// predicates first (greedily reordered so that steps with more bound
// variables run later and can use index probes), then positive
// equations in limited-closure order, then negative literals (whose
// variables are bound by safety).
type plan struct {
	rule  ast.Rule
	steps []step
	// predSteps lists the offsets of the stepPred steps within p.steps,
	// in execution order. Used by semi-naive deltas.
	predSteps []int

	// hoisted marks a delta variant: the first step is the delta
	// predicate (iterated over a change window, never the full
	// relation), and the remaining body was ordered and annotated with
	// that atom's variables bound.
	hoisted bool
	// variants[k] is the rule recompiled with its k-th positive body
	// predicate (in written body order) hoisted to the first join
	// position — the plan maintenance runs when the delta sits on that
	// atom's relation. Populated by compileVariants on base plans only.
	variants []*plan
	// negVariants holds one delta-hoisted plan per negated body
	// predicate, in written body order; see negVariant.
	negVariants []negVariant
}

// compile orders the body literals of a safe rule per §2.2's limited
// variable closure. It fails on unsafe rules.
func compile(r ast.Rule) (*plan, error) {
	return compileWith(r, nil)
}

// compileWith is compile with a set of variables assumed bound before
// the first step runs. The rederivation planner passes the head
// variables: goal-directed rederivation checks execute the body under
// an environment where the head has already been matched against a
// candidate fact, so argument positions mentioning only head variables
// are ground there and the ordering/annotation should exploit them
// (index and prefix probes instead of scans).
func compileWith(r ast.Rule, preBound []ast.Var) (*plan, error) {
	return compilePlan(r, preBound, -1)
}

// compilePlan is the shared planner. hoist, when >= 0, forces the
// hoist-th positive body predicate (in written body order) to the
// first join position — the delta-variant shape, where that atom
// iterates a change window and the rest of the body is ordered
// greedily with its variables bound.
func compilePlan(r ast.Rule, preBound []ast.Var, hoist int) (*plan, error) {
	p := &plan{rule: r, hoisted: hoist >= 0}
	bound := map[ast.Var]bool{}
	for _, v := range preBound {
		bound[v] = true
	}
	// 1. Positive predicates, greedily ordered by bound-variable count:
	// at each point pick the atom with the most fully bound argument
	// positions (then the longest ground argument prefix, then suffix,
	// then the most bound variable occurrences), so later steps arrive
	// with bindings an index can exploit. Ties keep the written order.
	// Join order never changes the derived set, only the work to derive
	// it. A hoisted plan pins one atom first; the greedy order governs
	// the rest.
	var preds []ast.Pred
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, ok := l.Atom.(ast.Pred); ok {
			preds = append(preds, pr)
		}
	}
	takePred := func(i int) {
		pr := preds[i]
		preds = append(preds[:i], preds[i+1:]...)
		st := step{kind: stepPred, pred: pr}
		annotate(&st, bound)
		p.predSteps = append(p.predSteps, len(p.steps))
		p.steps = append(p.steps, st)
		for _, a := range pr.Args {
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
	}
	if hoist >= 0 {
		if hoist >= len(preds) {
			return nil, fmt.Errorf("eval: hoist index %d out of range for rule %s", hoist, r)
		}
		takePred(hoist)
	}
	for len(preds) > 0 {
		best, bestScore := 0, predScore(preds[0], bound)
		for i := 1; i < len(preds); i++ {
			if s := predScore(preds[i], bound); scoreLess(bestScore, s) {
				best, bestScore = i, s
			}
		}
		takePred(best)
	}
	// 2. Positive equations, greedily picking one with a fully bound side.
	var eqs []ast.Eq
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if eq, ok := l.Atom.(ast.Eq); ok {
			eqs = append(eqs, eq)
		}
	}
	for len(eqs) > 0 {
		progress := false
		for i, eq := range eqs {
			lb, rb := varsBound(eq.L, bound), varsBound(eq.R, bound)
			if !lb && !rb {
				continue
			}
			g, pat := eq.L, eq.R
			if !lb {
				g, pat = eq.R, eq.L
			}
			p.steps = append(p.steps, step{kind: stepEq, ground: g, pattern: pat})
			for _, v := range pat.Vars() {
				bound[v] = true
			}
			eqs = append(eqs[:i], eqs[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("eval: rule is unsafe (equations cannot be ordered): %s", r)
		}
	}
	// 3. Negative literals; all their variables must now be bound.
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		switch x := l.Atom.(type) {
		case ast.Pred:
			for _, a := range x.Args {
				if !varsBound(a, bound) {
					return nil, fmt.Errorf("eval: unsafe negated predicate %s in rule %s", x, r)
				}
			}
			p.steps = append(p.steps, step{kind: stepNegPred, pred: x, neg: true})
		case ast.Eq:
			if !varsBound(x.L, bound) || !varsBound(x.R, bound) {
				return nil, fmt.Errorf("eval: unsafe nonequality %s != %s in rule %s", x.L, x.R, r)
			}
			p.steps = append(p.steps, step{kind: stepNegEq, ground: x.L, pattern: x.R, neg: true})
		}
	}
	// 4. Head variables must be bound.
	for _, a := range r.Head.Args {
		if !varsBound(a, bound) {
			return nil, fmt.Errorf("eval: unsafe head %s in rule %s", r.Head, r)
		}
	}
	return p, nil
}

// compileVariants populates p.variants and p.negVariants: one hoisted
// plan per positive body predicate (the plan maintenance runs when the
// delta sits on that atom's relation) and one pre-bound plan per
// negated body predicate (run per changed tuple of the negated
// relation, with the atom matched against the tuple first). Compiled
// once at Compile time on base plans; rederive plans never need them.
// Variant compilation cannot fail on a rule the base compile accepted
// — hoisting only changes join order, and pre-binding only adds bound
// variables — but errors are propagated defensively.
func (p *plan) compileVariants() error {
	negSeen := 0
	for _, l := range p.rule.Body {
		pr, ok := l.Atom.(ast.Pred)
		if !ok {
			continue
		}
		if l.Neg {
			var vars []ast.Var
			for _, a := range pr.Args {
				vars = append(vars, a.Vars()...)
			}
			v, err := compilePlan(p.rule, vars, -1)
			if err != nil {
				return err
			}
			// Negated literals keep their written order in every plan, so
			// the negSeen-th stepNegPred of the variant is this atom.
			stepIdx, seen := -1, 0
			for i, s := range v.steps {
				if s.kind == stepNegPred {
					if seen == negSeen {
						stepIdx = i
						break
					}
					seen++
				}
			}
			if stepIdx < 0 {
				return fmt.Errorf("eval: internal: negated atom %s lost in variant of %s", pr, p.rule)
			}
			p.negVariants = append(p.negVariants, negVariant{pred: pr, p: v, step: stepIdx})
			negSeen++
		} else {
			v, err := compilePlan(p.rule, nil, len(p.variants))
			if err != nil {
				return err
			}
			p.variants = append(p.variants, v)
		}
	}
	return nil
}

// predScore ranks a candidate next join step under the current bound
// set: (fully bound argument positions, longest ground argument term
// prefix, longest ground argument term suffix, bound variable
// occurrences).
func predScore(pr ast.Pred, bound map[ast.Var]bool) [4]int {
	var s [4]int
	for _, a := range pr.Args {
		if varsBound(a, bound) {
			s[0]++
			continue
		}
		if n := groundPrefixTerms(a, bound); n > s[1] {
			s[1] = n
		}
		if n := groundSuffixTerms(a, bound); n > s[2] {
			s[2] = n
		}
	}
	occ := map[ast.Var]int{}
	for _, a := range pr.Args {
		a.VarOccurrences(occ)
	}
	for v, n := range occ {
		if bound[v] {
			s[3] += n
		}
	}
	return s
}

func scoreLess(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// annotate records which argument positions of a predicate step are
// ground (index-probeable) under the bound set in force when the step
// runs, and the best ground prefix or suffix of a not fully bound
// argument. At most one of prefix/suffix is kept — the runtime probes
// a single secondary index per step — preferring the longer one
// (prefix on ties, matching the historical behavior).
func annotate(st *step, bound map[ast.Var]bool) {
	st.prefixCol, st.suffixCol = -1, -1
	for k, a := range st.pred.Args {
		if varsBound(a, bound) {
			st.boundCols = append(st.boundCols, k)
			continue
		}
		st.unboundCols = append(st.unboundCols, k)
		st.unboundArgs = append(st.unboundArgs, a)
		if n := groundPrefixTerms(a, bound); n > st.prefixLen {
			st.prefixCol, st.prefixLen = k, n
		}
		if n := groundSuffixTerms(a, bound); n > st.suffixLen {
			st.suffixCol, st.suffixLen = k, n
		}
	}
	if st.suffixLen > st.prefixLen {
		st.prefixCol, st.prefixLen = -1, 0
	} else {
		st.suffixCol, st.suffixLen = -1, 0
	}
}

// groundPrefixTerms counts the leading terms of the expression whose
// variables are all bound (a packed term counts when its subexpression
// is fully bound).
func groundPrefixTerms(e ast.Expr, bound map[ast.Var]bool) int {
	n := 0
	for _, t := range e {
		if !termGround(t, bound) {
			return n
		}
		n++
	}
	return n
}

// groundSuffixTerms counts the trailing terms of the expression whose
// variables are all bound.
func groundSuffixTerms(e ast.Expr, bound map[ast.Var]bool) int {
	n := 0
	for i := len(e) - 1; i >= 0; i-- {
		if !termGround(e[i], bound) {
			return n
		}
		n++
	}
	return n
}

// termGround reports whether one term is ground under the bound set.
func termGround(t ast.Term, bound map[ast.Var]bool) bool {
	switch x := t.(type) {
	case ast.Const:
		return true
	case ast.VarT:
		return bound[x.V]
	case ast.Pack:
		return varsBound(x.E, bound)
	}
	return false
}

func varsBound(e ast.Expr, bound map[ast.Var]bool) bool {
	for _, v := range e.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}

// describe renders the compiled join plan of the rule: the chosen
// execution order with, per predicate step, the access path the
// indexed evaluator uses. On a hoisted (delta-variant) plan the first
// predicate step prints [delta]: it iterates a change window, not the
// relation.
func (p *plan) describe() string {
	var b strings.Builder
	b.WriteString(p.rule.Head.String())
	b.WriteString(" :- ")
	for i, s := range p.steps {
		if i > 0 {
			b.WriteString(", ")
		}
		switch s.kind {
		case stepPred:
			b.WriteString(s.pred.String())
			switch {
			case p.hoisted && i == 0:
				b.WriteString(" [delta]")
			case len(s.boundCols) == len(s.pred.Args) && len(s.pred.Args) > 0:
				fmt.Fprintf(&b, " [index%v ground]", s.boundCols)
			case len(s.boundCols) > 0:
				fmt.Fprintf(&b, " [index%v]", s.boundCols)
			case s.prefixCol >= 0:
				fmt.Fprintf(&b, " [prefix col=%d len=%d]", s.prefixCol, s.prefixLen)
			case s.suffixCol >= 0:
				fmt.Fprintf(&b, " [suffix col=%d len=%d]", s.suffixCol, s.suffixLen)
			default:
				b.WriteString(" [scan]")
			}
		case stepEq:
			fmt.Fprintf(&b, "%s = %s [match]", s.ground, s.pattern)
		case stepNegPred:
			fmt.Fprintf(&b, "!%s [probe]", s.pred)
		case stepNegEq:
			fmt.Fprintf(&b, "%s != %s [compare]", s.ground, s.pattern)
		}
	}
	return b.String()
}
