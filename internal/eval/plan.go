package eval

import (
	"fmt"
	"strings"

	"seqlog/internal/ast"
)

// step is one planned body literal.
type step struct {
	kind stepKind
	pred ast.Pred // for predicate steps
	// For equation steps: ground is evaluated under the environment and
	// pattern is matched against the result, binding its variables.
	ground  ast.Expr
	pattern ast.Expr
	// For negated equations both sides are ground at execution time.
	neg bool

	// Join acceleration (stepPred only), computed against the set of
	// variables bound when the step runs.
	//
	// boundCols lists the argument positions whose expressions are fully
	// ground at that point: the step can probe an exact hash index on
	// those columns instead of scanning. unboundCols/unboundArgs are the
	// complementary positions, matched per candidate (the bound ones are
	// already verified by the index lookup).
	boundCols   []int
	unboundCols []int
	unboundArgs []ast.Expr
	// prefixCol/prefixLen describe the best ground term-prefix of a not
	// fully bound argument (e.g. @y.$rest with @y bound has a length-1
	// ground prefix). Used when boundCols is empty: any matching tuple's
	// column must start with the prefix's value, so the step probes a
	// prefix index. prefixCol is -1 when no argument qualifies.
	prefixCol int
	prefixLen int
}

type stepKind int

const (
	stepPred    stepKind = iota // positive predicate: join/match
	stepEq                      // positive equation: evaluate + match
	stepNegPred                 // negated predicate: ground membership test
	stepNegEq                   // negated equation: ground comparison
)

// plan is a compiled rule: steps execute left to right; positive
// predicates first (greedily reordered so that steps with more bound
// variables run later and can use index probes), then positive
// equations in limited-closure order, then negative literals (whose
// variables are bound by safety).
type plan struct {
	rule  ast.Rule
	steps []step
	// predSteps lists the offsets of the stepPred steps within p.steps,
	// in execution order. Used by semi-naive deltas.
	predSteps []int
}

// compile orders the body literals of a safe rule per §2.2's limited
// variable closure. It fails on unsafe rules.
func compile(r ast.Rule) (*plan, error) {
	return compileWith(r, nil)
}

// compileWith is compile with a set of variables assumed bound before
// the first step runs. The rederivation planner passes the head
// variables: goal-directed rederivation checks execute the body under
// an environment where the head has already been matched against a
// candidate fact, so argument positions mentioning only head variables
// are ground there and the ordering/annotation should exploit them
// (index and prefix probes instead of scans).
func compileWith(r ast.Rule, preBound []ast.Var) (*plan, error) {
	p := &plan{rule: r}
	bound := map[ast.Var]bool{}
	for _, v := range preBound {
		bound[v] = true
	}
	// 1. Positive predicates, greedily ordered by bound-variable count:
	// at each point pick the atom with the most fully bound argument
	// positions (then the longest ground argument prefix, then the most
	// bound variable occurrences), so later steps arrive with bindings
	// an index can exploit. Ties keep the written order. Join order
	// never changes the derived set, only the work to derive it.
	var preds []ast.Pred
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, ok := l.Atom.(ast.Pred); ok {
			preds = append(preds, pr)
		}
	}
	for len(preds) > 0 {
		best, bestScore := 0, predScore(preds[0], bound)
		for i := 1; i < len(preds); i++ {
			if s := predScore(preds[i], bound); scoreLess(bestScore, s) {
				best, bestScore = i, s
			}
		}
		pr := preds[best]
		preds = append(preds[:best], preds[best+1:]...)
		st := step{kind: stepPred, pred: pr}
		annotate(&st, bound)
		p.predSteps = append(p.predSteps, len(p.steps))
		p.steps = append(p.steps, st)
		for _, a := range pr.Args {
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
	}
	// 2. Positive equations, greedily picking one with a fully bound side.
	var eqs []ast.Eq
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if eq, ok := l.Atom.(ast.Eq); ok {
			eqs = append(eqs, eq)
		}
	}
	for len(eqs) > 0 {
		progress := false
		for i, eq := range eqs {
			lb, rb := varsBound(eq.L, bound), varsBound(eq.R, bound)
			if !lb && !rb {
				continue
			}
			g, pat := eq.L, eq.R
			if !lb {
				g, pat = eq.R, eq.L
			}
			p.steps = append(p.steps, step{kind: stepEq, ground: g, pattern: pat})
			for _, v := range pat.Vars() {
				bound[v] = true
			}
			eqs = append(eqs[:i], eqs[i+1:]...)
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("eval: rule is unsafe (equations cannot be ordered): %s", r)
		}
	}
	// 3. Negative literals; all their variables must now be bound.
	for _, l := range r.Body {
		if !l.Neg {
			continue
		}
		switch x := l.Atom.(type) {
		case ast.Pred:
			for _, a := range x.Args {
				if !varsBound(a, bound) {
					return nil, fmt.Errorf("eval: unsafe negated predicate %s in rule %s", x, r)
				}
			}
			p.steps = append(p.steps, step{kind: stepNegPred, pred: x, neg: true})
		case ast.Eq:
			if !varsBound(x.L, bound) || !varsBound(x.R, bound) {
				return nil, fmt.Errorf("eval: unsafe nonequality %s != %s in rule %s", x.L, x.R, r)
			}
			p.steps = append(p.steps, step{kind: stepNegEq, ground: x.L, pattern: x.R, neg: true})
		}
	}
	// 4. Head variables must be bound.
	for _, a := range r.Head.Args {
		if !varsBound(a, bound) {
			return nil, fmt.Errorf("eval: unsafe head %s in rule %s", r.Head, r)
		}
	}
	return p, nil
}

// predScore ranks a candidate next join step under the current bound
// set: (fully bound argument positions, longest ground argument term
// prefix, bound variable occurrences).
func predScore(pr ast.Pred, bound map[ast.Var]bool) [3]int {
	var s [3]int
	for _, a := range pr.Args {
		if varsBound(a, bound) {
			s[0]++
			continue
		}
		if n := groundPrefixTerms(a, bound); n > s[1] {
			s[1] = n
		}
	}
	occ := map[ast.Var]int{}
	for _, a := range pr.Args {
		a.VarOccurrences(occ)
	}
	for v, n := range occ {
		if bound[v] {
			s[2] += n
		}
	}
	return s
}

func scoreLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// annotate records which argument positions of a predicate step are
// ground (index-probeable) under the bound set in force when the step
// runs.
func annotate(st *step, bound map[ast.Var]bool) {
	st.prefixCol = -1
	for k, a := range st.pred.Args {
		if varsBound(a, bound) {
			st.boundCols = append(st.boundCols, k)
			continue
		}
		st.unboundCols = append(st.unboundCols, k)
		st.unboundArgs = append(st.unboundArgs, a)
		if n := groundPrefixTerms(a, bound); n > st.prefixLen {
			st.prefixCol, st.prefixLen = k, n
		}
	}
}

// groundPrefixTerms counts the leading terms of the expression whose
// variables are all bound (a packed term counts when its subexpression
// is fully bound).
func groundPrefixTerms(e ast.Expr, bound map[ast.Var]bool) int {
	n := 0
	for _, t := range e {
		switch x := t.(type) {
		case ast.Const:
			n++
			continue
		case ast.VarT:
			if bound[x.V] {
				n++
				continue
			}
		case ast.Pack:
			if varsBound(x.E, bound) {
				n++
				continue
			}
		}
		return n
	}
	return n
}

func varsBound(e ast.Expr, bound map[ast.Var]bool) bool {
	for _, v := range e.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}

// describe renders the compiled join plan of the rule: the chosen
// execution order with, per predicate step, the access path the
// indexed evaluator uses.
func (p *plan) describe() string {
	var b strings.Builder
	b.WriteString(p.rule.Head.String())
	b.WriteString(" :- ")
	for i, s := range p.steps {
		if i > 0 {
			b.WriteString(", ")
		}
		switch s.kind {
		case stepPred:
			b.WriteString(s.pred.String())
			switch {
			case len(s.boundCols) == len(s.pred.Args) && len(s.pred.Args) > 0:
				fmt.Fprintf(&b, " [index%v ground]", s.boundCols)
			case len(s.boundCols) > 0:
				fmt.Fprintf(&b, " [index%v]", s.boundCols)
			case s.prefixCol >= 0:
				fmt.Fprintf(&b, " [prefix col=%d len=%d]", s.prefixCol, s.prefixLen)
			default:
				b.WriteString(" [scan]")
			}
		case stepEq:
			fmt.Fprintf(&b, "%s = %s [match]", s.ground, s.pattern)
		case stepNegPred:
			fmt.Fprintf(&b, "!%s [probe]", s.pred)
		case stepNegEq:
			fmt.Fprintf(&b, "%s != %s [compare]", s.ground, s.pattern)
		}
	}
	return b.String()
}
