package eval

import (
	"errors"
	"strings"
	"testing"

	"seqlog/internal/analyze"
	"seqlog/internal/parser"
)

// TestCompileRejectsWithStructuredDiagnostics: an unsafe program must
// be rejected by Compile with a *analyze.DiagError whose diagnostics
// carry real source positions — not an opaque string.
func TestCompileRejectsWithStructuredDiagnostics(t *testing.T) {
	prog, _, err := parser.ParseProgramForAnalysis("S($y.a) :- R($x).\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile(prog)
	if err == nil {
		t.Fatal("Compile accepted an unsafe program")
	}
	var de *analyze.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("Compile error is %T, want *analyze.DiagError: %v", err, err)
	}
	errs := analyze.Errors(de.Diags)
	if len(errs) != 1 {
		t.Fatalf("got %d error diagnostics, want 1: %v", len(errs), de.Diags)
	}
	d := errs[0]
	if d.Code != "unbound-head-var" {
		t.Errorf("code = %q, want unbound-head-var", d.Code)
	}
	if d.Pos.Line != 1 || d.Pos.Col != 1 {
		t.Errorf("pos = %d:%d, want 1:1", d.Pos.Line, d.Pos.Col)
	}
	if !strings.Contains(err.Error(), "unbound-head-var") {
		t.Errorf("err.Error() = %q, want it to mention the code", err)
	}
}

// TestCompileRejectsUnstratifiedExplicitStrata: explicit strata that
// negate a later stratum are rejected with unstratified-negation.
func TestCompileRejectsUnstratifiedExplicitStrata(t *testing.T) {
	prog, explicit, err := parser.ParseProgramForAnalysis(
		"Odd($x) :- Next($x), !Even($x).\n---\nEven($x) :- Next($x).\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !explicit {
		t.Fatal("expected explicit strata")
	}
	_, err = Compile(prog)
	var de *analyze.DiagError
	if !errors.As(err, &de) {
		t.Fatalf("Compile error is %T, want *analyze.DiagError: %v", err, err)
	}
	if errs := analyze.Errors(de.Diags); len(errs) != 1 || errs[0].Code != "unstratified-negation" {
		t.Fatalf("diagnostics = %v, want one unstratified-negation", de.Diags)
	}
}

// TestPreparedCarriesWarnings: a program that compiles fine but trips
// lints surfaces them through Prepared.Diagnostics, and the warnings
// do not disturb evaluation.
func TestPreparedCarriesWarnings(t *testing.T) {
	prog, _, err := parser.ParseProgramForAnalysis(
		"Pair($x, $y) :- Left($x), Right($y).\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prep, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	codes := map[string]int{}
	for _, d := range prep.Diagnostics() {
		if d.Severity == analyze.Error {
			t.Errorf("Diagnostics() carries an error: %s", d)
		}
		codes[d.Code]++
	}
	// The cross product shares no variables, so whichever side the
	// delta arrives on, the other is a full scan — exactly what the
	// perf pass is for — and the fragment info is always reported.
	if codes["full-scan-delta"] == 0 {
		t.Errorf("cross product drew no full-scan-delta warning; got %v", codes)
	}
	if codes["fragment"] != 1 {
		t.Errorf("fragment info count = %d, want 1; got %v", codes["fragment"], codes)
	}

	out, err := prep.Eval(parser.MustParseInstance("Left(a). Left(b). Right(c)."), Limits{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if got := out.Relation("Pair").Len(); got != 2 {
		t.Errorf("|Pair| = %d, want 2", got)
	}
}

// TestUnaryTCNotFlagged: the unary encoding of transitive closure used
// to draw full-scan-delta — under a delta on E the recursive T atom
// has no bound column and no ground prefix. With suffix indexes the
// planner serves that join through a ground-suffix probe on @y, so the
// lint must stay quiet (it mirrors the planner's real access paths).
func TestUnaryTCNotFlagged(t *testing.T) {
	prog, _, err := parser.ParseProgramForAnalysis(
		"T(@x.@z) :- T(@x.@y), E(@y.@z).\nT(@x.@y) :- E(@x.@y).\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prep, err := Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, d := range prep.Diagnostics() {
		if d.Code == "full-scan-delta" {
			t.Errorf("unary TC drew full-scan-delta despite the suffix probe: %s", d)
		}
	}
}

// TestPreparedDiagnosticsIsACopy: mutating the returned slice must not
// corrupt the Prepared's own record.
func TestPreparedDiagnosticsIsACopy(t *testing.T) {
	prog, _, err := parser.ParseProgramForAnalysis("S($x) :- R($x).\n")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	first := prep.Diagnostics()
	if len(first) == 0 {
		t.Fatal("expected at least the fragment info diagnostic")
	}
	first[0].Code = "clobbered"
	if again := prep.Diagnostics(); again[0].Code == "clobbered" {
		t.Error("Diagnostics() aliases internal state")
	}
}
