package eval

import (
	"errors"
	"testing"

	"seqlog/internal/parser"
)

// nonTerminating is Example 2.3: the program that terminates on no
// instance — it derives T(a), T(a.a), T(a.a.a), ... forever, one new
// fact (and one new round) at a time.
const nonTerminating = `
T(a).
T(a.$x) :- T($x).`

func TestMaxFactsTripsNonTermination(t *testing.T) {
	prog := parser.MustParseProgram(nonTerminating)
	_, err := Eval(prog, parser.MustParseInstance(""), Limits{MaxFacts: 50})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxFacts: got %v, want ErrNonTermination", err)
	}
}

func TestMaxIterationsTripsNonTermination(t *testing.T) {
	prog := parser.MustParseProgram(nonTerminating)
	_, err := Eval(prog, parser.MustParseInstance(""), Limits{MaxIterations: 10})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxIterations: got %v, want ErrNonTermination", err)
	}
}

func TestMaxPathLenTripsNonTermination(t *testing.T) {
	prog := parser.MustParseProgram(nonTerminating)
	_, err := Eval(prog, parser.MustParseInstance(""), Limits{MaxPathLen: 5})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("MaxPathLen: got %v, want ErrNonTermination", err)
	}
}

func TestLimitsDoNotFireOnTerminatingRuns(t *testing.T) {
	prog := parser.MustParseProgram(`
T($x) :- R($x).
T($x) :- T($x.a).`)
	edb := parser.MustParseInstance("R(a.a.a).")
	out, err := Eval(prog, edb, Limits{MaxFacts: 100, MaxIterations: 100, MaxPathLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("T").Len() != 4 {
		t.Fatalf("T = %v", out.Relation("T").Sorted())
	}
}
