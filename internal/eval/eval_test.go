package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func mustEval(t *testing.T, prog, edb string) *instance.Instance {
	t.Helper()
	p := parser.MustParseProgram(prog)
	i := parser.MustParseInstance(edb)
	out, err := Eval(p, i, Limits{})
	if err != nil {
		t.Fatalf("Eval: %v\nprogram:\n%s", err, prog)
	}
	return out
}

func pathsOf(rel *instance.Relation) []string {
	var out []string
	for _, t := range rel.Sorted() {
		out = append(out, t[0].String())
	}
	return out
}

func TestOnlyAsEquation(t *testing.T) {
	// Example 3.1, fragment {E}.
	out := mustEval(t,
		`S($x) :- R($x), a.$x = $x.a.`,
		`R(a.a.a). R(a.b.a). R(a). R(eps). R(b).`)
	got := pathsOf(out.Relation("S"))
	want := []string{"eps", "a", "a.a.a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("S = %v, want %v", got, want)
	}
}

func TestOnlyAsRecursion(t *testing.T) {
	// Example 3.1, fragment {A, I, R}.
	out := mustEval(t, `
T($x, $x) :- R($x).
T($x, $y) :- T($x, $y.a).
S($x) :- T($x, eps).`,
		`R(a.a.a). R(a.b.a). R(a). R(eps). R(b).`)
	got := pathsOf(out.Relation("S"))
	want := []string{"eps", "a", "a.a.a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("S = %v, want %v", got, want)
	}
}

func TestExample21NFA(t *testing.T) {
	// Example 2.1: strings from R accepted by an NFA over {a,b} that
	// accepts strings with an even number of b's (q0 initial+final).
	prog := `
S(@q.$x, eps) :- R($x), N(@q).
S(@q2.$y, $z.@a) :- S(@q1.@a.$y, $z), D(@q1, @a, @q2).
A($x) :- S(@q, $x), F(@q).`
	edb := `
N(q0). F(q0).
D(q0, a, q0). D(q0, b, q1). D(q1, a, q1). D(q1, b, q0).
R(a.a). R(a.b). R(b.b). R(b.a.b). R(eps). R(b).`
	out := mustEval(t, prog, edb)
	got := pathsOf(out.Relation("A"))
	want := []string{"eps", "a.a", "b.a.b", "b.b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("A = %v, want %v", got, want)
	}
}

func TestExample22PackingAndNonequalities(t *testing.T) {
	// Example 2.2: at least three different occurrences of a string
	// from S as a substring in strings from R. Note: occurrences are
	// distinguished as packed paths $u.<$s>.$v.
	prog := `
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.`
	// "abab" contains "ab" twice, "aba" contains "a" twice: with both
	// strings, 4 occurrences total.
	out := mustEval(t, prog, `R(a.b.a.b). S(a.b). S(b.a).`)
	if r := out.Relation("A"); r == nil || r.Len() != 1 {
		t.Fatalf("A should hold; T = %v", out.Relation("T").Sorted())
	}
	// Only two occurrences: A must not hold.
	out2 := mustEval(t, prog, `R(a.b.a.b). S(a.b).`)
	if r := out2.Relation("A"); r != nil && r.Len() > 0 {
		t.Fatalf("A should not hold with only 2 occurrences; T = %v", out2.Relation("T").Sorted())
	}
}

func TestExample43Reverse(t *testing.T) {
	progArity := `
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`
	progNoArity := `
T($x.a.a.$x.b) :- R($x).
T($x.a.$y.@u.a.$x.b.$y.@u) :- T($x.@u.a.$y.a.$x.@u.b.$y).
S($x) :- T(a.$x.a.b.$x).`
	edb := `R(x.y.z). R(a). R(eps). R(p.q).`
	want := []string{"eps", "a", "q.p", "z.y.x"}
	for name, prog := range map[string]string{"arity": progArity, "noarity": progNoArity} {
		out := mustEval(t, prog, edb)
		got := pathsOf(out.Relation("S"))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: S = %v, want %v", name, got, want)
		}
	}
}

func TestExample46MirrorNonequal(t *testing.T) {
	// U($x,$y) recursion peeling @a...@b with @a != @b;
	// S = strings a1..an.bn..b1 with ai != bi.
	prog := `
U($x, $x) :- R($x).
U($x, $y) :- U($x, @a.$y.@b), @a != @b.
S($x) :- U($x, eps).`
	out := mustEval(t, prog, `R(a.b.c.d). R(a.b.b.c). R(a.a). R(eps). R(a.b.b.a).`)
	got := pathsOf(out.Relation("S"))
	want := []string{"eps", "a.b.c.d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("S = %v, want %v", got, want)
	}
}

func TestSquaringQuery(t *testing.T) {
	// Theorem 5.3: T(eps,$x,$x) :- R($x). etc. computes a^(n^2).
	prog := `
T(eps, $x, $x) :- R($x).
T($y.$x, $x, $z) :- T($y, $x, a.$z).
S($y) :- T($y, $x, eps).`
	out := mustEval(t, prog, `R(a.a.a).`)
	got := pathsOf(out.Relation("S"))
	if len(got) != 1 {
		t.Fatalf("S = %v", got)
	}
	if got[0] != strings.TrimSuffix(strings.Repeat("a.", 9), ".") {
		t.Fatalf("S = %v, want a^9", got)
	}
	// n=0: R(eps) -> S(eps).
	out0 := mustEval(t, prog, `R(eps).`)
	if got := pathsOf(out0.Relation("S")); fmt.Sprint(got) != "[eps]" {
		t.Fatalf("S = %v, want [eps]", got)
	}
}

func TestGraphReachability(t *testing.T) {
	// Section 5.1.1: reachability from a to b over edge paths x.y.
	prog := `
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).
S :- T(a.b).`
	reach := mustEval(t, prog, `R(a.c). R(c.d). R(d.b).`)
	if r := reach.Relation("S"); r == nil || r.Len() != 1 {
		t.Fatal("S should hold (a reaches b)")
	}
	noreach := mustEval(t, prog, `R(a.c). R(d.b).`)
	if r := noreach.Relation("S"); r != nil && r.Len() > 0 {
		t.Fatal("S should not hold")
	}
}

func TestBlackNodesStratifiedNegation(t *testing.T) {
	// Theorem 5.5 program: nodes with only edges to black nodes.
	prog := `
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`
	out := mustEval(t, prog, `R(a.b). R(a.c). R(d.b). B(b).`)
	got := pathsOf(out.Relation("S"))
	// a -> {b,c}, c not black, so a excluded; d -> {b} all black.
	if fmt.Sprint(got) != "[d]" {
		t.Fatalf("S = %v, want [d]", got)
	}
}

func TestNegatedEquationGroundCheck(t *testing.T) {
	prog := `S($x) :- R($x), $x != eps.`
	out := mustEval(t, prog, `R(a). R(eps).`)
	if got := pathsOf(out.Relation("S")); fmt.Sprint(got) != "[a]" {
		t.Fatalf("S = %v", got)
	}
}

func TestEquationBindsVariables(t *testing.T) {
	// $y and $z become bound through the equation $x = $y.$z.
	prog := `S($y) :- R($x), $x = $y.$z.`
	out := mustEval(t, prog, `R(a.b).`)
	got := pathsOf(out.Relation("S"))
	want := []string{"eps", "a", "a.b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("S = %v, want %v", got, want)
	}
	// Chained equations bind in two hops.
	prog2 := `S($z) :- R($x), $x = $y.a, $z = $y.`
	out2 := mustEval(t, prog2, `R(b.a). R(b.b).`)
	if got := pathsOf(out2.Relation("S")); fmt.Sprint(got) != "[b]" {
		t.Fatalf("S = %v", got)
	}
}

func TestNonTerminationGuard(t *testing.T) {
	// Example 2.3.
	prog := parser.MustParseProgram(`
T(a).
T(a.$x) :- T($x).`)
	_, err := Eval(prog, instance.New(), Limits{MaxFacts: 1000})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("err = %v, want ErrNonTermination", err)
	}
	// Path length guard fires too.
	_, err = Eval(prog, instance.New(), Limits{MaxPathLen: 64})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("err = %v, want ErrNonTermination", err)
	}
}

func TestStrataSequence(t *testing.T) {
	// A later stratum reads an earlier one's result, and negation sees
	// the completed relation.
	prog := `
T($x) :- R($x).
T($x.$x) :- R($x).
---
S($x) :- T($x), !R($x).`
	out := mustEval(t, prog, `R(a).`)
	if got := pathsOf(out.Relation("S")); fmt.Sprint(got) != "[a.a]" {
		t.Fatalf("S = %v", got)
	}
}

func TestEmptyEDBRelation(t *testing.T) {
	out := mustEval(t, `S($x) :- R($x).`, ``)
	if r := out.Relation("S"); r != nil && r.Len() > 0 {
		t.Fatal("S must be empty on empty EDB")
	}
	rel, err := Query(parser.MustParseProgram(`S($x) :- R($x).`), instance.New(), "S", Limits{})
	if err != nil || rel.Len() != 0 {
		t.Fatalf("Query: %v %v", rel, err)
	}
}

func TestHolds(t *testing.T) {
	prog := parser.MustParseProgram(`A :- R($x).`)
	yes, err := Holds(prog, parser.MustParseInstance(`R(a).`), "A", Limits{})
	if err != nil || !yes {
		t.Fatalf("Holds = %v, %v", yes, err)
	}
	no, err := Holds(prog, instance.New(), "A", Limits{})
	if err != nil || no {
		t.Fatalf("Holds = %v, %v", no, err)
	}
}

func TestFactsOnlyProgram(t *testing.T) {
	out := mustEval(t, `T(a.b). T(c).`, ``)
	got := pathsOf(out.Relation("T"))
	if fmt.Sprint(got) != "[a.b c]" {
		t.Fatalf("T = %v", got)
	}
}

func TestInputNotModified(t *testing.T) {
	prog := parser.MustParseProgram(`S($x) :- R($x).`)
	edb := parser.MustParseInstance(`R(a).`)
	if _, err := Eval(prog, edb, Limits{}); err != nil {
		t.Fatal(err)
	}
	if edb.Relation("S") != nil {
		t.Fatal("Eval mutated its input")
	}
}

func TestMutualRecursion(t *testing.T) {
	// Even/odd length via mutual recursion.
	prog := `
E(eps) :- R($x).
O(@a.$x) :- E($x), R($y.@a.$x).
E(@a.$x) :- O($x), R($y.@a.$x).
S($x) :- R($x), E($x).`
	out := mustEval(t, prog, `R(a.b.c.d). R(a.b.c).`)
	if got := pathsOf(out.Relation("S")); fmt.Sprint(got) != "[a.b.c.d]" {
		t.Fatalf("S = %v", got)
	}
}

func TestDeltaCorrectnessLongChain(t *testing.T) {
	// Transitive closure over a long chain exercises semi-naive rounds.
	var facts strings.Builder
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&facts, "R(n%d.n%d).\n", i, i+1)
	}
	prog := `
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`
	out := mustEval(t, prog, facts.String())
	if got := out.Relation("T").Len(); got != 31*30/2 {
		t.Fatalf("|T| = %d, want %d", got, 31*30/2)
	}
}

func TestPackedHeadConstruction(t *testing.T) {
	prog := `S(<$x>.<$x>) :- R($x).`
	out := mustEval(t, prog, `R(a.b).`)
	want := value.Path{value.Pack(value.PathOf("a", "b")), value.Pack(value.PathOf("a", "b"))}
	if !out.Has("S", instance.Tuple{want}) {
		t.Fatalf("S = %v", out.Relation("S").Sorted())
	}
}

func TestUnstratifiedRejected(t *testing.T) {
	prog := parser.MustParseProgram(`S($x) :- R($x).`)
	bad, err := parser.ParseRules(`W($x) :- R($x), !W($x).`)
	if err != nil {
		t.Fatal(err)
	}
	prog.Strata[0] = append(prog.Strata[0], bad...)
	if _, err := Eval(prog, instance.New(), Limits{}); err == nil {
		t.Fatal("unstratified program accepted by Eval")
	}
}

func TestConcurrentEvalSharedEDB(t *testing.T) {
	// Prepared.Eval shares the EDB copy-on-write: concurrent
	// evaluations of the same instance must not interfere (each derives
	// into its own clones; the shared frozen relations serve reads and
	// lazily built indexes to all of them). Run with -race in CI.
	prog := parser.MustParseProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`)
	p, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	edb := parser.MustParseInstance(`R(a.b). R(b.c). R(c.d). R(d.e).`)
	want, err := p.Eval(edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := p.Eval(edb, Limits{})
			if err != nil {
				panic(err)
			}
			if !out.Equal(want) {
				panic("concurrent Eval diverged: " + instance.Diff(out, want))
			}
		}()
	}
	wg.Wait()
	// The input is untouched: no derived relation leaked into it.
	if edb.Relation("T") != nil {
		t.Fatal("Eval mutated its input")
	}
}
