// Package instance implements database instances over the sequence data
// model (paper §2.1, §2.3): finite relations of path tuples, viewed
// equivalently as sets of facts.
package instance

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seqlog/internal/value"
)

// Tuple is one row of a relation: a fixed-arity list of paths.
type Tuple []value.Path

// Key returns a canonical injective encoding of the tuple. It is kept
// for debugging and external canonicalisation; the membership path of
// Relation uses the allocation-free Hash instead.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.Key()
	}
	return strings.Join(parts, "\x00")
}

// Hash returns a structural FNV-1a hash of the tuple. Equal tuples hash
// equally; distinct tuples may collide, so callers confirm with Equal.
func (t Tuple) Hash() uint64 { return hashPaths(t) }

// Equal reports component-wise path equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples component-wise.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(u)
}

// String renders the tuple as (p1, ..., pn).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a finite n-ary relation on paths with set semantics and
// deterministic iteration order (insertion order; Sorted() for canonical
// order).
//
// Membership is maintained through a built-in full-tuple hash index:
// each tuple's structural hash is computed once on Add and reused by
// Contains, Equal and Clone. Secondary indexes over column projections
// (Index), column prefixes (PrefixLookup) and column suffixes
// (SuffixLookup) are built lazily on first lookup and caught up after
// later Adds, so they are never stale.
//
// Deletion is tombstone-based: Delete marks the tuple's position dead
// and removes it from the membership index, but the position itself
// stays occupied so that delta windows over the tuple log ([lo, hi)
// position ranges handed out while the relation was larger) remain
// valid. Live reports whether a position still holds a fact; Len counts
// live tuples while Size is the position high-water mark including
// tombstones. Tombstones are reclaimed by Compact (in place) or Clone
// (the copy is always compacted); the copy-on-write clone used by
// Instance.Ensure deliberately preserves positions instead, so
// maintenance windows survive the write barrier.
//
// Concurrency contract: a Relation is safe for any number of
// concurrent readers as long as no writer runs at the same time. The
// read set includes every probe — Contains, Tuples, TupleAt, Slice,
// Index(...).Lookup and PrefixLookup — even when a probe lazily builds
// or catches up a secondary index: index construction is internally
// synchronized (a mutex guards building, an atomic watermark makes the
// caught-up fast path lock-free). Writers — Add, and Clone or Sorted of
// a relation being Added to — require exclusive access; they are NOT
// synchronized against readers. The parallel evaluator relies on
// exactly this split: within a fixpoint round relations are frozen
// (read-only fan-out, workers derive into private buffers) and all
// writes happen single-threaded at the round barrier.
//
// Freeze makes the reader/writer split permanent for one relation
// object: a frozen relation rejects writes forever, so its storage can
// be shared with snapshots (Instance.Snapshot) while the owning
// instance continues under copy-on-write via Ensure.
type Relation struct {
	Arity   int
	buckets map[uint64][]int // tuple hash -> positions (collision buckets)
	tuples  []Tuple
	hashes  []uint64 // hashes[i] is the precomputed tuples[i].Hash()

	// dead[i] marks position i tombstoned (nil until the first Delete;
	// kept in step with tuples afterwards); tombs counts the dead
	// positions, so Live's fast path is a single integer check.
	dead  []bool
	tombs int

	// frozen marks the relation copy-on-write: its tuple storage is
	// shared with at least one snapshot and must never be written again.
	// Add paths panic on a frozen relation; Instance.Ensure transparently
	// replaces a frozen relation with an unfrozen clone before handing it
	// to a writer. Lazy secondary-index builds remain allowed — they are
	// internally synchronized and do not touch tuple storage — so any
	// number of snapshot readers and cloning writers can proceed
	// concurrently.
	frozen atomic.Bool

	// mu guards creation of secondary indexes (the maps below) and the
	// build step that absorbs pending tuples into one; see the
	// concurrency contract above.
	mu       sync.RWMutex
	indexes  map[string]*Index
	prefixes map[prefixKey]*prefixIndex
	suffixes map[prefixKey]*prefixIndex
}

// NewRelation creates an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, buckets: map[uint64][]int{}}
}

// Freeze marks the relation copy-on-write: every write from now on
// panics, so the storage can be shared safely with concurrent readers
// (Instance.Snapshot freezes every relation it shares). Freezing is
// idempotent and cannot be undone — writers obtain an unfrozen clone
// instead, which is what Instance.Ensure does transparently.
func (r *Relation) Freeze() { r.frozen.Store(true) }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen.Load() }

// lookupHashed returns the position of a tuple equal to t whose hash is
// h, or -1.
func (r *Relation) lookupHashed(h uint64, t Tuple) int {
	for _, i := range r.buckets[h] {
		if r.tuples[i].Equal(t) {
			return i
		}
	}
	return -1
}

// Add inserts a tuple; it reports whether the tuple was new.
// Adding a tuple of the wrong arity panics: this is a programming error.
func (r *Relation) Add(t Tuple) bool {
	return r.AddHashed(t.Hash(), t)
}

// AddHashed is Add with the tuple's precomputed hash (h must equal
// t.Hash()), so callers that already probed with ContainsHashed do not
// rehash. The tuple is stored as given and must not be mutated
// afterwards; use CopyTuple first when inserting from a scratch buffer.
func (r *Relation) AddHashed(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v into arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	if r.lookupHashed(h, t) >= 0 {
		return false
	}
	r.buckets[h] = append(r.buckets[h], len(r.tuples))
	r.tuples = append(r.tuples, t)
	r.hashes = append(r.hashes, h)
	if r.dead != nil {
		r.dead = append(r.dead, false)
	}
	return true
}

// Delete removes a tuple, reporting whether it was present. The
// position is tombstoned, not reclaimed: Size and existing delta
// windows are unaffected, Len shrinks, and membership probes stop
// seeing the tuple immediately. Deleting from a frozen relation panics,
// exactly like Add — deletion goes through Instance.Ensure like every
// other write.
func (r *Relation) Delete(t Tuple) bool {
	return r.DeleteHashed(t.Hash(), t)
}

// DeleteHashed is Delete with the tuple's precomputed hash (h must
// equal t.Hash()), so callers that already probed do not rehash.
func (r *Relation) DeleteHashed(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v deleted from arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	pos := r.lookupHashed(h, t)
	if pos < 0 {
		return false
	}
	// Drop the position from its membership bucket so Contains and
	// lookupHashed never see it again; secondary indexes keep the
	// position and filter it via Live at lookup time.
	bucket := r.buckets[h]
	for k, p := range bucket {
		if p == pos {
			if len(bucket) == 1 {
				delete(r.buckets, h)
			} else {
				r.buckets[h] = append(bucket[:k], bucket[k+1:]...)
			}
			break
		}
	}
	if r.dead == nil {
		r.dead = make([]bool, len(r.tuples))
	}
	r.dead[pos] = true
	r.tombs++
	return true
}

// Live reports whether the tuple at position pos has not been deleted.
func (r *Relation) Live(pos int) bool { return r.tombs == 0 || !r.dead[pos] }

// Tombstones returns the number of tombstoned positions (Size - Len).
func (r *Relation) Tombstones() int { return r.tombs }

// Compact reclaims tombstoned positions in place: live tuples are
// renumbered densely and every secondary index is dropped (they rebuild
// lazily on next use). Positions change, so callers holding delta
// windows or Index handles must not call Compact while they are in
// flight; the engine compacts only between maintenance runs.
func (r *Relation) Compact() {
	if r.tombs == 0 {
		return
	}
	if r.frozen.Load() {
		panic("instance: compaction of a frozen relation (snapshot-shared storage)")
	}
	tuples := make([]Tuple, 0, len(r.tuples)-r.tombs)
	hashes := make([]uint64, 0, len(r.tuples)-r.tombs)
	buckets := make(map[uint64][]int, len(r.buckets))
	for i, t := range r.tuples {
		if r.dead[i] {
			continue
		}
		h := r.hashes[i]
		buckets[h] = append(buckets[h], len(tuples))
		tuples = append(tuples, t)
		hashes = append(hashes, h)
	}
	r.tuples, r.hashes, r.buckets = tuples, hashes, buckets
	r.dead, r.tombs = nil, 0
	r.mu.Lock()
	r.indexes, r.prefixes, r.suffixes = nil, nil, nil
	r.mu.Unlock()
}

// Contains reports membership via the full-tuple hash index; deleted
// tuples are not members.
func (r *Relation) Contains(t Tuple) bool {
	return r.lookupHashed(t.Hash(), t) >= 0
}

// ContainsHashed is Contains with the tuple's precomputed hash (h must
// equal t.Hash()), for callers probing several relations — or probing
// then inserting — without rehashing.
func (r *Relation) ContainsHashed(h uint64, t Tuple) bool {
	return r.lookupHashed(h, t) >= 0
}

// PositionHashed returns the tuple-log position of the live tuple equal
// to t (whose hash h must equal t.Hash()), or -1 when absent. The DRed
// maintainer uses it to test whether a fact lies inside an insertion
// window.
func (r *Relation) PositionHashed(h uint64, t Tuple) int {
	return r.lookupHashed(h, t)
}

// HashAt returns the precomputed hash of the tuple at insertion
// position i, so bulk consumers (the parallel evaluator's round merge)
// can re-insert tuples elsewhere without rehashing them.
func (r *Relation) HashAt(i int) uint64 { return r.hashes[i] }

// AddFromScratch inserts a copy of the scratch tuple t (whose hash h
// must equal t.Hash()) when no equal tuple is present, reporting
// whether it inserted. One probe serves both the membership check and
// the insert, and CopyTuple runs only on a miss — the evaluator's
// derivation path, where most candidate facts are rediscoveries.
func (r *Relation) AddFromScratch(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v into arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	if r.lookupHashed(h, t) >= 0 {
		return false
	}
	r.buckets[h] = append(r.buckets[h], len(r.tuples))
	r.tuples = append(r.tuples, CopyTuple(t))
	r.hashes = append(r.hashes, h)
	if r.dead != nil {
		r.dead = append(r.dead, false)
	}
	return true
}

// CopyTuple deep-copies a tuple into fresh storage: one backing array
// holds all components, so a retained tuple costs at most two
// allocations however high its arity. Values are immutable and shared.
// The evaluator derives into reusable scratch buffers and calls
// CopyTuple only for tuples that turn out to be new.
func CopyTuple(t Tuple) Tuple {
	total := 0
	for _, p := range t {
		total += len(p)
	}
	backing := make(value.Path, total)
	out := make(Tuple, len(t))
	off := 0
	for i, p := range t {
		n := copy(backing[off:off+len(p)], p)
		out[i] = backing[off : off+n : off+n]
		off += n
	}
	return out
}

// Len returns the number of live tuples (the relation's cardinality).
func (r *Relation) Len() int { return len(r.tuples) - r.tombs }

// Size returns the position high-water mark of the tuple log,
// tombstones included. Delta windows and position-based iteration
// (TupleAt/HashAt/Live) range over [0, Size); Size equals Len whenever
// nothing was deleted since the last compaction.
func (r *Relation) Size() int { return len(r.tuples) }

// Tuples returns the live tuples in insertion order. With no
// tombstones the slice is shared (callers must not mutate it) and,
// relations then being append-only, ranging over it while concurrently
// Adding is safe and iterates a consistent snapshot. With tombstones
// present a filtered copy is returned, and indexes into it do NOT
// correspond to tuple-log positions — use Size/Live/TupleAt/HashAt for
// position-based iteration.
func (r *Relation) Tuples() []Tuple {
	if r.tombs == 0 {
		return r.tuples
	}
	out := make([]Tuple, 0, r.Len())
	for i, t := range r.tuples {
		if !r.dead[i] {
			out = append(out, t)
		}
	}
	return out
}

// TupleAt returns the tuple at tuple-log position i. Delta-aware
// consumers (the semi-naive evaluator's windows) iterate positions
// [lo, hi) with TupleAt, skipping tombstones via Live; there is
// deliberately no slice accessor over a position range, because such
// a slice would silently include deleted tuples.
func (r *Relation) TupleAt(i int) Tuple { return r.tuples[i] }

// Sorted returns the live tuples in canonical order.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for i, t := range r.tuples {
		if r.tombs != 0 && r.dead[i] {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent, compacted copy of the relation:
// tombstoned positions are dropped and live tuples renumbered densely.
// The precomputed tuple hashes are reused, membership buckets are
// copied (or rebuilt when compaction renumbers), and secondary indexes
// are rebuilt lazily on the copy when first used.
func (r *Relation) Clone() *Relation {
	if r.tombs != 0 {
		out := NewRelation(r.Arity)
		out.tuples = make([]Tuple, 0, r.Len())
		out.hashes = make([]uint64, 0, r.Len())
		for i, t := range r.tuples {
			if r.dead[i] {
				continue
			}
			h := r.hashes[i]
			out.buckets[h] = append(out.buckets[h], len(out.tuples))
			out.tuples = append(out.tuples, t)
			out.hashes = append(out.hashes, h)
		}
		return out
	}
	out := &Relation{
		Arity:   r.Arity,
		buckets: make(map[uint64][]int, len(r.buckets)),
		tuples:  make([]Tuple, len(r.tuples)),
		hashes:  make([]uint64, len(r.hashes)),
	}
	copy(out.tuples, r.tuples)
	copy(out.hashes, r.hashes)
	for h, bucket := range r.buckets {
		out.buckets[h] = append([]int(nil), bucket...)
	}
	return out
}

// cloneExact returns an independent copy that preserves tuple-log
// positions, tombstones included. Instance.Ensure uses it as the
// copy-on-write barrier so that delta windows recorded against the
// frozen original stay valid against the writable clone; everything
// else should use Clone, which compacts.
func (r *Relation) cloneExact() *Relation {
	out := &Relation{
		Arity:   r.Arity,
		buckets: make(map[uint64][]int, len(r.buckets)),
		tuples:  make([]Tuple, len(r.tuples)),
		hashes:  make([]uint64, len(r.hashes)),
		tombs:   r.tombs,
	}
	copy(out.tuples, r.tuples)
	copy(out.hashes, r.hashes)
	if r.dead != nil {
		out.dead = append([]bool(nil), r.dead...)
	}
	for h, bucket := range r.buckets {
		out.buckets[h] = append([]int(nil), bucket...)
	}
	return out
}

// Equal reports set equality of two relations (live tuples only).
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() || r.Arity != s.Arity {
		return false
	}
	for i, t := range r.tuples {
		if r.tombs != 0 && r.dead[i] {
			continue
		}
		if s.lookupHashed(r.hashes[i], t) < 0 {
			return false
		}
	}
	return true
}

// Index is a hash index over a projection of a relation's columns,
// obtained from Relation.Index. It is built lazily: construction is
// free, and each Lookup first absorbs any tuples Added since the last
// lookup, so the index is never stale. Lookups are safe from multiple
// goroutines while the relation is frozen (see the Relation
// concurrency contract): the absorb step runs under the relation's
// mutex and publishes its watermark atomically, so concurrent probes
// either skip it lock-free or serialize on the build.
type Index struct {
	r    *Relation
	cols []int
	m    map[uint64][]int
	upto atomic.Int64 // tuples[:upto] are absorbed
}

// indexSig encodes a column list as a compact map key (one uvarint per
// column) without fmt or a strings.Builder: Index is called once per
// (rule run, step), hot enough under parallel fan-out to matter.
func indexSig(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return string(b)
}

// Index returns the (shared, lazily maintained) index keyed on the
// given argument positions. Positions out of range panic: schemas fix
// arities, so this is a programming error.
func (r *Relation) Index(cols ...int) *Index {
	for _, c := range cols {
		if c < 0 || c >= r.Arity {
			panic(fmt.Sprintf("instance: index column %d out of range for arity-%d relation", c, r.Arity))
		}
	}
	sig := indexSig(cols)
	r.mu.RLock()
	ix := r.indexes[sig]
	r.mu.RUnlock()
	if ix != nil {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix := r.indexes[sig]; ix != nil {
		return ix
	}
	ix = &Index{r: r, cols: append([]int(nil), cols...), m: map[uint64][]int{}}
	if r.indexes == nil {
		r.indexes = map[string]*Index{}
	}
	r.indexes[sig] = ix
	return ix
}

// hashCols folds the indexed columns of a tuple; it must agree with
// hashPaths on the projected values so probes find their buckets.
func hashCols(t Tuple, cols []int) uint64 {
	h := value.HashSeed
	for _, c := range cols {
		h = value.HashByte(h, 0x1f)
		h = t[c].Hash(h)
	}
	return h
}

// hashPaths folds a sequence of paths with 0x1f component separators;
// the single fold shared by tuple membership and index probes.
func hashPaths(vals []value.Path) uint64 {
	h := value.HashSeed
	for _, p := range vals {
		h = value.HashByte(h, 0x1f)
		h = p.Hash(h)
	}
	return h
}

// verifyBucket filters hash-collision false positives out of a bucket,
// returning the bucket itself (shared, read-only) in the common case
// where every position is a true match.
func verifyBucket(bucket []int, match func(pos int) bool) []int {
	for k, pos := range bucket {
		if !match(pos) {
			out := make([]int, k, len(bucket))
			copy(out, bucket[:k])
			for _, p := range bucket[k+1:] {
				if match(p) {
					out = append(out, p)
				}
			}
			return out
		}
	}
	return bucket
}

// CatchUp absorbs every tuple Added since the last absorb, bringing
// the index fully up to date. Lookup calls it implicitly; the parallel
// evaluator calls it explicitly before fanning out a round so that the
// workers' probes hit the lock-free caught-up fast path. Absorbing is
// synchronized: the watermark is published atomically after the
// buckets are built, so a concurrent probe that observes it never sees
// a partially built index.
func (ix *Index) CatchUp() {
	n := len(ix.r.tuples)
	if int(ix.upto.Load()) >= n {
		return
	}
	ix.r.mu.Lock()
	defer ix.r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		h := hashCols(ix.r.tuples[i], ix.cols)
		ix.m[h] = append(ix.m[h], i)
	}
	ix.upto.Store(int64(n))
}

// Lookup returns the tuple-log positions (ascending) of the live
// tuples whose indexed columns equal vals component-wise. Hash
// collisions and tombstones are verified, so every returned position
// is a true, live match. The returned slice is shared with the index;
// callers must not mutate it.
func (ix *Index) Lookup(vals ...value.Path) []int {
	return ix.lookup(vals, false)
}

// LookupAll is Lookup including tombstoned positions. The DRed
// overdeletion phase uses it to join against the pre-deletion state of
// a relation (live tuples plus everything deleted during the current
// maintenance run, which is exactly the set still occupying positions).
func (ix *Index) LookupAll(vals ...value.Path) []int {
	return ix.lookup(vals, true)
}

func (ix *Index) lookup(vals []value.Path, includeDead bool) []int {
	if len(vals) != len(ix.cols) {
		panic(fmt.Sprintf("instance: index over %d columns probed with %d values", len(ix.cols), len(vals)))
	}
	ix.CatchUp()
	return verifyBucket(ix.m[hashPaths(vals)], func(pos int) bool {
		if !includeDead && !ix.r.Live(pos) {
			return false
		}
		t := ix.r.tuples[pos]
		for j, c := range ix.cols {
			if !t[c].Equal(vals[j]) {
				return false
			}
		}
		return true
	})
}

// prefixKey identifies a lazily built prefix index: column col, keyed
// on the first n values of that column.
type prefixKey struct{ col, n int }

type prefixIndex struct {
	m    map[uint64][]int
	upto atomic.Int64 // tuples[:upto] are absorbed
}

// catchUpPrefix absorbs pending tuples into one prefix index, under
// the same synchronization scheme as Index.CatchUp.
func (r *Relation) catchUpPrefix(ix *prefixIndex, key prefixKey) {
	n := len(r.tuples)
	if int(ix.upto.Load()) >= n {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		p := r.tuples[i][key.col]
		if len(p) < key.n {
			continue
		}
		h := p[:key.n].Hash(value.HashSeed)
		ix.m[h] = append(ix.m[h], i)
	}
	ix.upto.Store(int64(n))
}

// PrefixLookup returns the tuple-log positions (ascending) of the live
// tuples whose column col starts with the given non-empty prefix. A
// separate index per (col, len(prefix)) is built lazily and caught up
// after Adds. Collisions and tombstones are verified; the returned
// slice is shared. Like Lookup, PrefixLookup is safe from concurrent
// readers while the relation is frozen, including the probe that first
// creates an index for a prefix length no other goroutine has seen.
//
// This is the probe the evaluator uses when a join argument like
// @y.$rest has a ground prefix under the current valuation: any
// matching tuple's column must begin with exactly that prefix.
func (r *Relation) PrefixLookup(col int, prefix value.Path) []int {
	return r.prefixLookup(col, prefix, false)
}

// PrefixLookupAll is PrefixLookup including tombstoned positions; see
// Index.LookupAll for when the DRed maintainer needs that.
func (r *Relation) PrefixLookupAll(col int, prefix value.Path) []int {
	return r.prefixLookup(col, prefix, true)
}

func (r *Relation) prefixLookup(col int, prefix value.Path, includeDead bool) []int {
	if col < 0 || col >= r.Arity {
		panic(fmt.Sprintf("instance: prefix column %d out of range for arity-%d relation", col, r.Arity))
	}
	if len(prefix) == 0 {
		panic("instance: empty prefix probe (caller should scan)")
	}
	key := prefixKey{col, len(prefix)}
	r.mu.RLock()
	ix := r.prefixes[key]
	r.mu.RUnlock()
	if ix == nil {
		r.mu.Lock()
		ix = r.prefixes[key]
		if ix == nil {
			ix = &prefixIndex{m: map[uint64][]int{}}
			if r.prefixes == nil {
				r.prefixes = map[prefixKey]*prefixIndex{}
			}
			r.prefixes[key] = ix
		}
		r.mu.Unlock()
	}
	r.catchUpPrefix(ix, key)
	return verifyBucket(ix.m[prefix.Hash(value.HashSeed)], func(pos int) bool {
		if !includeDead && !r.Live(pos) {
			return false
		}
		p := r.tuples[pos][col]
		return len(p) >= len(prefix) && p[:len(prefix)].Equal(prefix)
	})
}

// catchUpSuffix absorbs pending tuples into one suffix index, under
// the same synchronization scheme as Index.CatchUp. The key's n counts
// the last n values of column key.col.
func (r *Relation) catchUpSuffix(ix *prefixIndex, key prefixKey) {
	n := len(r.tuples)
	if int(ix.upto.Load()) >= n {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		p := r.tuples[i][key.col]
		if len(p) < key.n {
			continue
		}
		h := p[len(p)-key.n:].Hash(value.HashSeed)
		ix.m[h] = append(ix.m[h], i)
	}
	ix.upto.Store(int64(n))
}

// SuffixLookup returns the tuple-log positions (ascending) of the live
// tuples whose column col ends with the given non-empty suffix. A
// separate index per (col, len(suffix)) is built lazily beside the
// prefix indexes and caught up after Adds, with the same concurrency
// guarantees as PrefixLookup.
//
// This is the probe the evaluator uses when a join argument like
// $rest.@y has its trailing terms ground under the current valuation
// (the paper's bound-suffix patterns, §2.2): any matching tuple's
// column must end with exactly that suffix.
func (r *Relation) SuffixLookup(col int, suffix value.Path) []int {
	return r.suffixLookup(col, suffix, false)
}

// SuffixLookupAll is SuffixLookup including tombstoned positions; see
// Index.LookupAll for when the DRed maintainer needs that.
func (r *Relation) SuffixLookupAll(col int, suffix value.Path) []int {
	return r.suffixLookup(col, suffix, true)
}

func (r *Relation) suffixLookup(col int, suffix value.Path, includeDead bool) []int {
	if col < 0 || col >= r.Arity {
		panic(fmt.Sprintf("instance: suffix column %d out of range for arity-%d relation", col, r.Arity))
	}
	if len(suffix) == 0 {
		panic("instance: empty suffix probe (caller should scan)")
	}
	key := prefixKey{col, len(suffix)}
	r.mu.RLock()
	ix := r.suffixes[key]
	r.mu.RUnlock()
	if ix == nil {
		r.mu.Lock()
		ix = r.suffixes[key]
		if ix == nil {
			ix = &prefixIndex{m: map[uint64][]int{}}
			if r.suffixes == nil {
				r.suffixes = map[prefixKey]*prefixIndex{}
			}
			r.suffixes[key] = ix
		}
		r.mu.Unlock()
	}
	r.catchUpSuffix(ix, key)
	return verifyBucket(ix.m[suffix.Hash(value.HashSeed)], func(pos int) bool {
		if !includeDead && !r.Live(pos) {
			return false
		}
		p := r.tuples[pos][col]
		return len(p) >= len(suffix) && p[len(p)-len(suffix):].Equal(suffix)
	})
}

// CatchUpIndexes absorbs pending tuples into every secondary index
// built so far (exact, prefix and suffix). The parallel evaluator
// calls it on each relation a round will read before fanning out, so
// worker probes of already-known index shapes run lock-free; an index
// shape first probed mid-round still builds safely under the internal
// lock.
func (r *Relation) CatchUpIndexes() {
	r.mu.RLock()
	exact := make([]*Index, 0, len(r.indexes))
	for _, ix := range r.indexes {
		exact = append(exact, ix)
	}
	type keyedPrefix struct {
		key prefixKey
		ix  *prefixIndex
	}
	pref := make([]keyedPrefix, 0, len(r.prefixes))
	for key, ix := range r.prefixes {
		pref = append(pref, keyedPrefix{key, ix})
	}
	suff := make([]keyedPrefix, 0, len(r.suffixes))
	for key, ix := range r.suffixes {
		suff = append(suff, keyedPrefix{key, ix})
	}
	r.mu.RUnlock()
	for _, ix := range exact {
		ix.CatchUp()
	}
	for _, p := range pref {
		r.catchUpPrefix(p.ix, p.key)
	}
	for _, s := range suff {
		r.catchUpSuffix(s.ix, s.key)
	}
}

// Instance assigns finite relations to relation names (paper §2.1).
type Instance struct {
	rels map[string]*Relation
}

// New creates an empty instance.
func New() *Instance { return &Instance{rels: map[string]*Relation{}} }

// Relation returns the named relation or nil.
func (i *Instance) Relation(name string) *Relation { return i.rels[name] }

// Ensure returns the named relation, creating it with the given arity if
// absent. It panics on an arity clash: schemas fix arities.
//
// Ensure is the instance's write barrier: when the named relation is
// frozen (its storage is shared with a snapshot), it is replaced by an
// unfrozen clone before being returned, so the caller can write to it
// without disturbing any snapshot. The clone preserves tuple-log
// positions (tombstones included), so delta windows recorded before the
// barrier stay valid after it. Readers that only need to look at a
// relation should use Relation instead, which never clones.
func (i *Instance) Ensure(name string, arity int) *Relation {
	if r, ok := i.rels[name]; ok {
		if r.Arity != arity {
			panic(fmt.Sprintf("instance: relation %s has arity %d, requested %d", name, r.Arity, arity))
		}
		if r.Frozen() {
			r = r.cloneExact()
			i.rels[name] = r
		}
		return r
	}
	r := NewRelation(arity)
	i.rels[name] = r
	return r
}

// Add inserts the fact name(t...) creating the relation as needed.
func (i *Instance) Add(name string, t Tuple) bool {
	return i.Ensure(name, len(t)).Add(t)
}

// Delete removes the fact name(t...), reporting whether it was
// present. Like every write it goes through the Ensure barrier, so a
// frozen (snapshot-shared) relation is cloned before the tombstone is
// placed and no snapshot ever observes the deletion.
func (i *Instance) Delete(name string, t Tuple) bool {
	r := i.rels[name]
	if r == nil || !r.Contains(t) {
		return false
	}
	return i.Ensure(name, r.Arity).Delete(t)
}

// AddPath inserts a unary fact.
func (i *Instance) AddPath(name string, p value.Path) bool {
	return i.Add(name, Tuple{p})
}

// AddFact inserts a nullary fact (a boolean flag relation).
func (i *Instance) AddFact(name string) bool { return i.Add(name, Tuple{}) }

// Has reports whether the fact is present.
func (i *Instance) Has(name string, t Tuple) bool {
	r := i.rels[name]
	return r != nil && r.Contains(t)
}

// Names returns the relation names, sorted.
func (i *Instance) Names() []string {
	out := make([]string, 0, len(i.rels))
	for n := range i.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Facts returns the total number of facts.
func (i *Instance) Facts() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// Clone returns an independent copy.
func (i *Instance) Clone() *Instance {
	out := New()
	for n, r := range i.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// Snapshot returns a copy-on-write snapshot: a new instance sharing
// every relation's tuple storage with i. Both i and the snapshot keep
// reading the shared (now frozen) relations for free; the first write
// to a relation on either side — any write funneled through Ensure —
// transparently replaces that side's entry with an unfrozen clone,
// leaving the other side untouched. Relations never written again are
// never copied.
//
// A snapshot is safe for any number of concurrent readers, including
// reads that lazily build secondary indexes, even while the originating
// instance keeps being written: writers only ever touch unfrozen
// clones, which no snapshot can see. Snapshot itself is NOT safe to run
// concurrently with writes to i; callers serialize it with their write
// path (the eval.Engine takes snapshots under its own lock).
func (i *Instance) Snapshot() *Instance {
	out := New()
	for n, r := range i.rels {
		r.Freeze()
		out.rels[n] = r
	}
	return out
}

// Remove deletes the named relation from the instance's mapping. The
// relation object itself is untouched: snapshots sharing it keep
// reading it. Removing an absent name is a no-op.
func (i *Instance) Remove(name string) { delete(i.rels, name) }

// Put installs rel under name, replacing any existing mapping. The
// engine's recompute path uses it to reinstate a (frozen) seed relation
// before re-deriving; writes through Ensure will clone it as needed.
func (i *Instance) Put(name string, rel *Relation) { i.rels[name] = rel }

// Restrict returns a copy containing only the named relations. Frozen
// relations are shared rather than cloned — their storage is immutable,
// so the restriction reads them for free and the first write on either
// side goes through the Ensure barrier, exactly as after Snapshot;
// only unfrozen relations are deep-cloned.
func (i *Instance) Restrict(names ...string) *Instance {
	out := New()
	for _, n := range names {
		if r, ok := i.rels[n]; ok {
			if r.Frozen() {
				out.rels[n] = r
			} else {
				out.rels[n] = r.Clone()
			}
		}
	}
	return out
}

// Merge adds all facts of j into i.
func (i *Instance) Merge(j *Instance) {
	for _, n := range j.Names() {
		r := j.rels[n]
		dst := i.Ensure(n, r.Arity)
		for _, t := range r.Tuples() {
			dst.Add(t)
		}
	}
}

// Equal reports whether two instances hold exactly the same facts.
// Empty relations are equivalent to absent ones.
func (i *Instance) Equal(j *Instance) bool {
	for _, n := range i.Names() {
		r := i.rels[n]
		if r.Len() == 0 {
			continue
		}
		s := j.rels[n]
		if s == nil || !r.Equal(s) {
			return false
		}
	}
	for _, n := range j.Names() {
		s := j.rels[n]
		if s.Len() == 0 {
			continue
		}
		r := i.rels[n]
		if r == nil || !r.Equal(s) {
			return false
		}
	}
	return true
}

// IsFlat reports whether no packed value occurs anywhere (paper §3.1).
func (i *Instance) IsFlat() bool {
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if !p.IsFlat() {
					return false
				}
			}
		}
	}
	return true
}

// IsMonadic reports whether every relation has arity zero or one.
func (i *Instance) IsMonadic() bool {
	for _, r := range i.rels {
		if r.Arity > 1 {
			return false
		}
	}
	return true
}

// MaxPathLen returns the maximal length of a path in the instance.
func (i *Instance) MaxPathLen() int {
	m := 0
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if len(p) > m {
					m = len(p)
				}
			}
		}
	}
	return m
}

// String renders all facts sorted, one per line, as "R(p1, ..., pn).".
func (i *Instance) String() string {
	var b strings.Builder
	for _, n := range i.Names() {
		r := i.rels[n]
		for _, t := range r.Sorted() {
			b.WriteString(n)
			if len(t) > 0 {
				parts := make([]string, len(t))
				for k, p := range t {
					parts[k] = p.String()
				}
				b.WriteString("(" + strings.Join(parts, ", ") + ")")
			}
			b.WriteString(".\n")
		}
	}
	return b.String()
}

// Diff describes the first difference between two instances, for test
// failure messages; it returns "" when equal.
func Diff(a, b *Instance) string {
	for _, n := range a.Names() {
		r := a.Relation(n)
		if r.Len() == 0 {
			continue
		}
		s := b.Relation(n)
		for _, t := range r.Sorted() {
			if s == nil || !s.Contains(t) {
				return fmt.Sprintf("only in first: %s%s", n, t)
			}
		}
	}
	for _, n := range b.Names() {
		s := b.Relation(n)
		if s.Len() == 0 {
			continue
		}
		r := a.Relation(n)
		for _, t := range s.Sorted() {
			if r == nil || !r.Contains(t) {
				return fmt.Sprintf("only in second: %s%s", n, t)
			}
		}
	}
	return ""
}
