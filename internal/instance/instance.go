// Package instance implements database instances over the sequence data
// model (paper §2.1, §2.3): finite relations of path tuples, viewed
// equivalently as sets of facts.
package instance

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"seqlog/internal/value"
)

// Tuple is one row of a relation: a fixed-arity list of paths.
type Tuple []value.Path

// Key returns a canonical injective encoding of the tuple. It is kept
// for debugging and external canonicalisation; the membership path of
// Relation uses the allocation-free Hash instead.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.Key()
	}
	return strings.Join(parts, "\x00")
}

// Hash returns a structural FNV-1a hash of the tuple. Equal tuples hash
// equally; distinct tuples may collide, so callers confirm with Equal.
func (t Tuple) Hash() uint64 { return hashPaths(t) }

// Equal reports component-wise path equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples component-wise.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(u)
}

// String renders the tuple as (p1, ..., pn).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// The tuple log is chunked: positions pos map to
// chunks[pos>>chunkShift] at offset pos&chunkMask. A chunk that has
// reached chunkSize entries is sealed — it is never written again, so
// any number of relation epochs can share it by pointer. Only the
// partial tail chunk of an unfrozen relation is ever appended to, and
// the copy-on-write barrier (cloneShared) always gives the clone a
// private copy of a partial tail, so a shared chunk is immutable by
// construction.
const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// chunk is one block of the append-only tuple log: up to chunkSize
// tuples plus their precomputed structural hashes and derivation
// stamps. The slices grow together (len(hashes) == len(stamps) ==
// len(tuples)), so small relations pay for the tuples they hold, not
// for a full block.
type chunk struct {
	tuples []Tuple
	hashes []uint64
	stamps []uint64
}

// Derivation stamps. Every tuple-log position carries a stamp packed
// as birth<<StampTagBits | tag: a monotone per-Stamper birth counter
// and a small visibility tag (the evaluator uses 0 for base/EDB facts
// and si+1 for facts produced by stratum si). Stamps are assigned at
// append time by the relation's Stamper and live beside the cached
// hashes, so they survive the copy-on-write barrier, Compact and
// Clone exactly like the hashes do. They are never serialized: a
// relation rebuilt by replay re-earns its stamps from the same
// deterministic append order.
const StampTagBits = 16

// MakeStamp packs a (birth, tag) pair into one stamp.
func MakeStamp(birth, tag uint64) uint64 { return birth<<StampTagBits | tag }

// StampTag extracts the visibility tag of a stamp.
func StampTag(s uint64) uint64 { return s & (1<<StampTagBits - 1) }

// StampBirth extracts the monotone birth counter of a stamp.
func StampBirth(s uint64) uint64 { return s >> StampTagBits }

// Stamper issues derivation stamps: a monotone birth counter shared by
// every relation it is attached to, combined with a caller-set tag.
// The evaluation engine attaches one Stamper to its whole instance and
// retags it as it moves through the strata, so stamps totally order
// all appends of one engine and record which stratum produced each.
// A Stamper is not synchronized; stamped appends are single-threaded
// by the relation write contract.
type Stamper struct {
	birth uint64
	tag   uint64
}

// SetTag sets the visibility tag stamped onto subsequent appends.
func (s *Stamper) SetTag(tag uint64) { s.tag = tag }

// next issues the stamp for one append.
func (s *Stamper) next() uint64 {
	s.birth++
	return MakeStamp(s.birth, s.tag)
}

// View selects which tuple-log positions a probe may see. The zero
// View is the plain live view. Dead additionally admits tombstoned
// positions (the DRed pre-deletion state). MaxTag, when nonzero,
// restricts to positions whose stamp tag is at most MaxTag — the
// stratum-exact view: a reader at stratum si (MaxTag si+1) never sees
// facts produced by a later stratum. MaxBirth, when nonzero, further
// requires positions stamped exactly MaxTag to have birth strictly
// below MaxBirth — the well-founded overdeletion pruner's whole-
// stratum support ordering (earlier-tag positions are settled and pass
// regardless of birth).
type View struct {
	Dead     bool
	MaxTag   uint64
	MaxBirth uint64
}

// Admits reports whether the view admits a position with this stamp.
// Tombstone visibility is checked separately by the probe.
func (v View) Admits(stamp uint64) bool {
	if v.MaxTag == 0 {
		return true
	}
	tag := StampTag(stamp)
	if tag > v.MaxTag {
		return false
	}
	if tag == v.MaxTag && v.MaxBirth != 0 && StampBirth(stamp) >= v.MaxBirth {
		return false
	}
	return true
}

// deadPage is the tombstone bitmap for one chunk: bit off marks
// position (chunkIndex<<chunkShift)|off dead. Pages are copy-on-write
// across epochs — a relation may only set bits in pages it owns
// (deadOwned), so tombstones placed after a freeze never become
// visible to older snapshots sharing the same chunks.
type deadPage [chunkSize / 64]uint64

func (p *deadPage) get(off int) bool { return p[off>>6]&(1<<(off&63)) != 0 }
func (p *deadPage) set(off int)      { p[off>>6] |= 1 << (off & 63) }

// postings is an immutable hash → ascending tuple-log positions table
// covering positions [0, upto). Once published (installed as the base
// of a membership or secondary index) a postings is never mutated:
// epochs extend it with private overlays and occasionally flatten
// base+overlay into a fresh postings at the write barrier. Buckets may
// be shared between generations of postings, so they are read-only
// too.
type postings struct {
	m    map[uint64][]int
	n    int // total entries, for sizing the next flatten
	upto int // positions [0, upto) are covered
}

// flattenThreshold bounds the position gap an epoch clone is willing
// to inherit lazily: at the write barrier an index whose base trails
// the absorbed watermark by fewer positions is shared as (base,
// re-absorb the small gap); a larger gap is flattened into a fresh
// immutable base — but only once the gap is also a constant fraction
// of the covered positions (shareOrFlatten), so flattening is
// amortized O(1) per appended tuple however fast the relation grows.
// The owner of an unfrozen relation never flattens — its overlay just
// grows, like a plain hash index — so the uncontended write path is
// untouched.
const flattenThreshold = 256

// flattenPostings builds a fresh immutable postings from a base (may
// be nil) plus an overlay covering [base.upto, upto). Base buckets
// that the overlay does not extend are shared; extended or new buckets
// are freshly allocated, so the result never aliases a slice that some
// other epoch may still append to.
func flattenPostings(base *postings, over map[uint64][]int, overCount, upto int) *postings {
	baseN, baseBuckets := 0, 0
	if base != nil {
		baseN, baseBuckets = base.n, len(base.m)
	}
	m := make(map[uint64][]int, baseBuckets+len(over))
	if base != nil {
		for h, bucket := range base.m {
			if ovb, ok := over[h]; ok {
				merged := make([]int, 0, len(bucket)+len(ovb))
				merged = append(merged, bucket...)
				merged = append(merged, ovb...)
				m[h] = merged
			} else {
				m[h] = bucket
			}
		}
	}
	for h, ovb := range over {
		if _, ok := m[h]; ok {
			continue
		}
		m[h] = append([]int(nil), ovb...)
	}
	return &postings{m: m, n: baseN + overCount, upto: upto}
}

// memberIndex is the relation's built-in full-tuple membership index in
// epoch-shared form: an immutable base shared across snapshot
// generations plus a private overlay for positions appended (or
// absorbed) since. upto is published atomically so caught-up probes
// skip the lock.
type memberIndex struct {
	base      *postings
	over      map[uint64][]int
	overCount int
	upto      atomic.Int64
}

// Relation is a finite n-ary relation on paths with set semantics and
// deterministic iteration order (insertion order; Sorted() for canonical
// order).
//
// Storage is an epoch-shared append-only tuple log: fixed-capacity
// chunks of tuples plus precomputed hashes, shared by pointer between
// a relation and every snapshot taken of it. A snapshot epoch is
// identified by (chunk list, length watermark, tombstone view): the
// copy-on-write barrier (Instance.Ensure on a frozen relation) copies
// only the chunk pointer slice, the partial tail chunk and the
// tombstone page pointers — O(size/chunkSize), not O(size) — and the
// clone appends to a fresh tail while older readers keep iterating
// their own watermark over the shared sealed chunks.
//
// Membership is maintained through a built-in full-tuple hash index:
// each tuple's structural hash is computed once on Add and reused by
// Contains, Equal and Clone. Secondary indexes over column projections
// (Index), column prefixes (PrefixLookup) and column suffixes
// (SuffixLookup) are built lazily on first lookup and caught up after
// later Adds, so they are never stale. All of these share their bulk
// across epochs the same way the tuple log is shared: an immutable
// base postings plus a small private overlay, flattened at the write
// barrier only when the overlay has grown past flattenThreshold.
//
// Deletion is tombstone-based: Delete marks the tuple's position dead
// in a copy-on-write bitmap page, but the position itself stays
// occupied so that delta windows over the tuple log ([lo, hi) position
// ranges handed out while the relation was larger) remain valid. Pages
// are path-copied on first write after a barrier, so a tombstone set
// after a freeze is invisible to every older reader — epochs never
// leak deletions backwards. Live reports whether a position still
// holds a fact; Len counts live tuples while Size is the position
// high-water mark including tombstones. Tombstones are reclaimed by
// Compact (which rewrites into fresh chunks, never touching shared
// ones — the epoch fence) or Clone (the copy is always compacted).
//
// Concurrency contract: a Relation is safe for any number of
// concurrent readers as long as no writer runs at the same time. The
// read set includes every probe — Contains, Tuples, TupleAt, Slice,
// Index(...).Lookup and PrefixLookup — even when a probe lazily builds
// or catches up a secondary index: index construction is internally
// synchronized (a mutex guards building, an atomic watermark makes the
// caught-up fast path lock-free). Writers — Add, and Clone or Sorted of
// a relation being Added to — require exclusive access; they are NOT
// synchronized against readers. The parallel evaluator relies on
// exactly this split: within a fixpoint round relations are frozen
// (read-only fan-out, workers derive into private buffers) and all
// writes happen single-threaded at the round barrier.
//
// Freeze makes the reader/writer split permanent for one relation
// object: a frozen relation rejects writes forever, so its storage can
// be shared with snapshots (Instance.Snapshot) while the owning
// instance continues under copy-on-write via Ensure.
type Relation struct {
	Arity int

	// chunks is the tuple log; size is this epoch's length watermark.
	// Invariant: len(chunks) == ceil(size/chunkSize), and a partial
	// tail chunk is exclusively owned by this (unfrozen) relation.
	chunks []*chunk
	size   int

	// dead holds one tombstone page per chunk (nil page or a slice
	// shorter than chunks: no tombstones there); deadOwned[i] reports
	// whether page i may be written in place or must be path-copied
	// first (it was inherited from a frozen parent). tombs counts the
	// dead positions, so Live's fast path is a single integer check.
	dead      []*deadPage
	deadOwned []bool
	tombs     int

	// member is the built-in membership index in base+overlay form.
	member memberIndex

	// frozen marks the relation copy-on-write: its tuple storage is
	// shared with at least one snapshot and must never be written again.
	// Add paths panic on a frozen relation; Instance.Ensure transparently
	// replaces a frozen relation with an unfrozen epoch clone before
	// handing it to a writer. Lazy secondary-index builds remain allowed
	// — they are internally synchronized and do not touch tuple storage
	// — so any number of snapshot readers and cloning writers can
	// proceed concurrently.
	frozen atomic.Bool

	// stamper, when set, issues the derivation stamp of every appended
	// tuple; without one, appends are stamped 0 (base facts, visible to
	// every view). Instance.Ensure attaches its instance's stamper to
	// the relations it hands out, and epoch clones inherit it, so all
	// writes of one engine draw from one monotone birth counter.
	stamper *Stamper

	// mu guards creation of secondary indexes (the maps below), the
	// build step that absorbs pending tuples into one (membership
	// included), and the barrier's read of their base/overlay state;
	// see the concurrency contract above.
	mu       sync.RWMutex
	indexes  map[string]*Index
	prefixes map[prefixKey]*prefixIndex
	suffixes map[prefixKey]*prefixIndex
}

// NewRelation creates an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity}
}

// Freeze marks the relation copy-on-write: every write from now on
// panics, so the storage can be shared safely with concurrent readers
// (Instance.Snapshot freezes every relation it shares). Freezing is
// idempotent and cannot be undone — writers obtain an unfrozen clone
// instead, which is what Instance.Ensure does transparently.
func (r *Relation) Freeze() { r.frozen.Store(true) }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen.Load() }

// tupleAt, hashAt and stampAt read the tuple log by position.
func (r *Relation) tupleAt(pos int) Tuple  { return r.chunks[pos>>chunkShift].tuples[pos&chunkMask] }
func (r *Relation) hashAt(pos int) uint64  { return r.chunks[pos>>chunkShift].hashes[pos&chunkMask] }
func (r *Relation) stampAt(pos int) uint64 { return r.chunks[pos>>chunkShift].stamps[pos&chunkMask] }

// SetStamper attaches a stamper to the relation: every later append is
// stamped from it. Attaching is a write-path operation (the engine
// attaches stampers to relations it exclusively owns, and Ensure
// re-attaches at the write barrier).
func (r *Relation) SetStamper(s *Stamper) { r.stamper = s }

// StampAt returns the derivation stamp of the tuple at position pos
// (0 for tuples appended without a stamper: base facts).
func (r *Relation) StampAt(pos int) uint64 { return r.stampAt(pos) }

// appendTuple appends to the tail chunk with a freshly issued stamp;
// see appendStamped.
func (r *Relation) appendTuple(h uint64, t Tuple) {
	st := uint64(0)
	if r.stamper != nil {
		st = r.stamper.next()
	}
	r.appendStamped(h, t, st)
}

// appendStamped appends to the tail chunk, sealing it and opening a
// fresh one at the chunkSize boundary. Caller is the exclusive writer.
// Compact and Clone use it directly to carry a tuple's existing stamp
// through the renumbering instead of issuing a fresh one.
func (r *Relation) appendStamped(h uint64, t Tuple, stamp uint64) {
	ci := r.size >> chunkShift
	if ci == len(r.chunks) {
		// The tail's slices grow by appending: the maintenance paths
		// create many short-lived window relations holding a handful of
		// tuples, and pre-sizing every chunk would charge each of them
		// for a full chunk's backing.
		r.chunks = append(r.chunks, &chunk{})
	}
	c := r.chunks[ci]
	c.tuples = append(c.tuples, t)
	c.hashes = append(c.hashes, h)
	c.stamps = append(c.stamps, stamp)
	r.size++
}

// catchUpMember absorbs every appended position into the membership
// overlay, under the same synchronization scheme as Index.CatchUp. The
// owning writer keeps membership caught up inline (recordMember), so
// this only does work on the first probe of a freshly cloned epoch —
// and the gap it absorbs is bounded by flattenThreshold, because the
// barrier flattens anything larger. Hashes come straight from the
// chunks; nothing is rehashed.
func (r *Relation) catchUpMember() {
	n := r.size
	if int(r.member.upto.Load()) >= n {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member.over == nil {
		r.member.over = map[uint64][]int{}
	}
	for i := int(r.member.upto.Load()); i < n; i++ {
		h := r.hashAt(i)
		r.member.over[h] = append(r.member.over[h], i)
		r.member.overCount++
	}
	r.member.upto.Store(int64(n))
}

// recordMember registers a freshly appended position in the membership
// overlay. Caller is the exclusive writer and has already caught up.
func (r *Relation) recordMember(h uint64, pos int) {
	if r.member.over == nil {
		r.member.over = map[uint64][]int{}
	}
	r.member.over[h] = append(r.member.over[h], pos)
	r.member.overCount++
	r.member.upto.Store(int64(pos + 1))
}

// lookupHashed returns the position of the live tuple equal to t whose
// hash is h, or -1. Both the shared base and the private overlay are
// probed; dead positions are skipped, so a tuple deleted and re-added
// resolves to its live position.
func (r *Relation) lookupHashed(h uint64, t Tuple) int {
	r.catchUpMember()
	if b := r.member.base; b != nil {
		for _, pos := range b.m[h] {
			if r.Live(pos) && r.tupleAt(pos).Equal(t) {
				return pos
			}
		}
	}
	for _, pos := range r.member.over[h] {
		if r.Live(pos) && r.tupleAt(pos).Equal(t) {
			return pos
		}
	}
	return -1
}

// Add inserts a tuple; it reports whether the tuple was new.
// Adding a tuple of the wrong arity panics: this is a programming error.
func (r *Relation) Add(t Tuple) bool {
	return r.AddHashed(t.Hash(), t)
}

// AddHashed is Add with the tuple's precomputed hash (h must equal
// t.Hash()), so callers that already probed with ContainsHashed do not
// rehash. The tuple is stored as given and must not be mutated
// afterwards; use CopyTuple first when inserting from a scratch buffer.
func (r *Relation) AddHashed(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v into arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	if r.lookupHashed(h, t) >= 0 {
		return false
	}
	r.appendTuple(h, t)
	r.recordMember(h, r.size-1)
	return true
}

// Delete removes a tuple, reporting whether it was present. The
// position is tombstoned, not reclaimed: Size and existing delta
// windows are unaffected, Len shrinks, and membership probes stop
// seeing the tuple immediately. Deleting from a frozen relation panics,
// exactly like Add — deletion goes through Instance.Ensure like every
// other write.
func (r *Relation) Delete(t Tuple) bool {
	return r.DeleteHashed(t.Hash(), t)
}

// DeleteHashed is Delete with the tuple's precomputed hash (h must
// equal t.Hash()), so callers that already probed do not rehash.
func (r *Relation) DeleteHashed(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v deleted from arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	pos := r.lookupHashed(h, t)
	if pos < 0 {
		return false
	}
	r.tombstone(pos)
	return true
}

// tombstone marks pos dead on this epoch's tombstone view. A page
// inherited from a frozen parent is path-copied before the first bit
// is set, so older watermarked readers sharing the original page never
// observe the deletion.
func (r *Relation) tombstone(pos int) {
	pi := pos >> chunkShift
	if pi >= len(r.dead) {
		grown := make([]*deadPage, len(r.chunks))
		copy(grown, r.dead)
		grownOwned := make([]bool, len(r.chunks))
		copy(grownOwned, r.deadOwned)
		r.dead, r.deadOwned = grown, grownOwned
	}
	pg := r.dead[pi]
	switch {
	case pg == nil:
		pg = &deadPage{}
		r.dead[pi], r.deadOwned[pi] = pg, true
	case !r.deadOwned[pi]:
		cp := *pg
		pg = &cp
		r.dead[pi], r.deadOwned[pi] = pg, true
	}
	pg.set(pos & chunkMask)
	r.tombs++
}

// Live reports whether the tuple at position pos has not been deleted.
func (r *Relation) Live(pos int) bool {
	if r.tombs == 0 {
		return true
	}
	pi := pos >> chunkShift
	if pi >= len(r.dead) {
		return true
	}
	pg := r.dead[pi]
	return pg == nil || !pg.get(pos&chunkMask)
}

// Tombstones returns the number of tombstoned positions (Size - Len).
func (r *Relation) Tombstones() int { return r.tombs }

// Compact reclaims tombstoned positions: live tuples are renumbered
// densely into fresh chunks and every secondary index is dropped (they
// rebuild lazily on next use). The old chunks are never touched — they
// may be shared with older snapshot epochs, which keep reading them
// unchanged; compaction is the epoch fence that stops referencing
// shared storage rather than rewriting it. Positions change, so
// callers holding delta windows or Index handles must not call Compact
// while they are in flight; the engine compacts only between
// maintenance runs.
func (r *Relation) Compact() {
	if r.tombs == 0 {
		return
	}
	if r.frozen.Load() {
		panic("instance: compaction of a frozen relation (snapshot-shared storage)")
	}
	old := r.chunks
	oldSize := r.size
	r.chunks, r.size = nil, 0
	m := make(map[uint64][]int, oldSize-r.tombs)
	for pos := 0; pos < oldSize; pos++ {
		pg := (*deadPage)(nil)
		if pi := pos >> chunkShift; pi < len(r.dead) {
			pg = r.dead[pi]
		}
		if pg != nil && pg.get(pos&chunkMask) {
			continue
		}
		c := old[pos>>chunkShift]
		h := c.hashes[pos&chunkMask]
		r.appendStamped(h, c.tuples[pos&chunkMask], c.stamps[pos&chunkMask])
		m[h] = append(m[h], r.size-1)
	}
	r.dead, r.deadOwned, r.tombs = nil, nil, 0
	// The rebuilt membership becomes an immutable base: the next write
	// barrier shares it for free instead of flattening the whole map.
	r.member.base = &postings{m: m, n: r.size, upto: r.size}
	r.member.over, r.member.overCount = nil, 0
	r.member.upto.Store(int64(r.size))
	r.mu.Lock()
	r.indexes, r.prefixes, r.suffixes = nil, nil, nil
	r.mu.Unlock()
}

// Contains reports membership via the full-tuple hash index; deleted
// tuples are not members.
func (r *Relation) Contains(t Tuple) bool {
	return r.lookupHashed(t.Hash(), t) >= 0
}

// ContainsHashed is Contains with the tuple's precomputed hash (h must
// equal t.Hash()), for callers probing several relations — or probing
// then inserting — without rehashing.
func (r *Relation) ContainsHashed(h uint64, t Tuple) bool {
	return r.lookupHashed(h, t) >= 0
}

// PositionHashed returns the tuple-log position of the live tuple equal
// to t (whose hash h must equal t.Hash()), or -1 when absent. The DRed
// maintainer uses it to test whether a fact lies inside an insertion
// window.
func (r *Relation) PositionHashed(h uint64, t Tuple) int {
	return r.lookupHashed(h, t)
}

// ContainsHashedView reports membership restricted to the given view:
// the tuple counts as present only when its live position carries a
// stamp the view admits. The evaluator's negation probes use it so a
// fact produced by a later stratum reads as absent from an earlier
// stratum's view. v.Dead is ignored — membership is about live facts.
func (r *Relation) ContainsHashedView(v View, h uint64, t Tuple) bool {
	pos := r.lookupHashed(h, t)
	return pos >= 0 && v.Admits(r.stampAt(pos))
}

// HashAt returns the precomputed hash of the tuple at insertion
// position i, so bulk consumers (the parallel evaluator's round merge)
// can re-insert tuples elsewhere without rehashing them.
func (r *Relation) HashAt(i int) uint64 { return r.hashAt(i) }

// AddFromScratch inserts a copy of the scratch tuple t (whose hash h
// must equal t.Hash()) when no equal tuple is present, reporting
// whether it inserted. One probe serves both the membership check and
// the insert, and CopyTuple runs only on a miss — the evaluator's
// derivation path, where most candidate facts are rediscoveries.
func (r *Relation) AddFromScratch(h uint64, t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v into arity-%d relation", t, r.Arity))
	}
	if r.frozen.Load() {
		panic("instance: write to a frozen relation (snapshot-shared storage; clone it or go through Instance.Ensure)")
	}
	if r.lookupHashed(h, t) >= 0 {
		return false
	}
	r.appendTuple(h, CopyTuple(t))
	r.recordMember(h, r.size-1)
	return true
}

// CopyTuple deep-copies a tuple into fresh storage: one backing array
// holds all components, so a retained tuple costs at most two
// allocations however high its arity. Values are immutable and shared.
// The evaluator derives into reusable scratch buffers and calls
// CopyTuple only for tuples that turn out to be new.
func CopyTuple(t Tuple) Tuple {
	total := 0
	for _, p := range t {
		total += len(p)
	}
	backing := make(value.Path, total)
	out := make(Tuple, len(t))
	off := 0
	for i, p := range t {
		n := copy(backing[off:off+len(p)], p)
		out[i] = backing[off : off+n : off+n]
		off += n
	}
	return out
}

// Len returns the number of live tuples (the relation's cardinality).
func (r *Relation) Len() int { return r.size - r.tombs }

// Size returns the position high-water mark of the tuple log,
// tombstones included — this epoch's length watermark over the shared
// chunks. Delta windows and position-based iteration
// (TupleAt/HashAt/Live) range over [0, Size); Size equals Len whenever
// nothing was deleted since the last compaction.
func (r *Relation) Size() int { return r.size }

// Tuples returns the live tuples in insertion order as a freshly
// materialized slice: the chunked log has no contiguous backing to
// share. Indexes into it do NOT correspond to tuple-log positions when
// tombstones are present — use Size/Live/TupleAt/HashAt for
// position-based iteration, which also avoids the O(n) materialization
// on hot paths. Ranging over the result while concurrently Adding is
// safe and iterates the snapshot taken at call time.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.Len())
	for pos := 0; pos < r.size; pos++ {
		if r.Live(pos) {
			out = append(out, r.tupleAt(pos))
		}
	}
	return out
}

// TupleAt returns the tuple at tuple-log position i. Delta-aware
// consumers (the semi-naive evaluator's windows) iterate positions
// [lo, hi) with TupleAt, skipping tombstones via Live; there is
// deliberately no slice accessor over a position range, because such
// a slice would silently include deleted tuples.
func (r *Relation) TupleAt(i int) Tuple { return r.tupleAt(i) }

// Sorted returns the live tuples in canonical order.
func (r *Relation) Sorted() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent, compacted copy of the relation:
// tombstoned positions are dropped and live tuples renumbered densely.
// The precomputed tuple hashes and derivation stamps are reused and
// the membership index is rebuilt as an immutable base (cheap to share
// at the next write barrier); secondary indexes rebuild lazily on the
// copy when first used. Nothing is shared with the original except the
// tuples themselves, which are immutable.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Arity)
	m := make(map[uint64][]int, r.Len())
	for pos := 0; pos < r.size; pos++ {
		if !r.Live(pos) {
			continue
		}
		h := r.hashAt(pos)
		out.appendStamped(h, r.tupleAt(pos), r.stampAt(pos))
		m[h] = append(m[h], out.size-1)
	}
	out.member.base = &postings{m: m, n: out.size, upto: out.size}
	out.member.upto.Store(int64(out.size))
	return out
}

// cloneCost reports what one write-barrier clone actually did, for the
// instance's CloneStats: how many sealed chunks were shared by pointer
// and approximately how many bytes the barrier had to copy (tail
// chunk, pointer slices, tombstone pages, index flattening).
type cloneCost struct {
	sharedChunks int64
	copiedBytes  int64
}

// cloneShared is the epoch write barrier: an O(size/chunkSize) clone
// that shares every sealed chunk, tombstone page and index base with
// the frozen original and copies only the partial tail chunk, the
// pointer slices, and — when an overlay outgrew flattenThreshold — a
// flattened index base. Tuple-log positions, tombstones included, are
// preserved exactly, so delta windows recorded against the frozen
// original stay valid against the writable clone. The original may be
// probed concurrently (it is frozen; lazy index absorbs synchronize on
// its mutex, which cloneShared holds while reading index state).
func (r *Relation) cloneShared() (*Relation, cloneCost) {
	var cost cloneCost
	out := &Relation{Arity: r.Arity, size: r.size, tombs: r.tombs, stamper: r.stamper}
	out.chunks = append([]*chunk(nil), r.chunks...)
	cost.sharedChunks = int64(len(r.chunks))
	cost.copiedBytes = int64(len(r.chunks)) * 8
	if tail := r.size & chunkMask; tail != 0 {
		ci := len(r.chunks) - 1
		old := r.chunks[ci]
		out.chunks[ci] = &chunk{
			tuples: append(make([]Tuple, 0, chunkSize), old.tuples...),
			hashes: append(make([]uint64, 0, chunkSize), old.hashes...),
			stamps: append(make([]uint64, 0, chunkSize), old.stamps...),
		}
		cost.sharedChunks--
		cost.copiedBytes += int64(tail) * 40
	}
	if len(r.dead) > 0 {
		out.dead = append([]*deadPage(nil), r.dead...)
		out.deadOwned = make([]bool, len(r.dead))
		cost.copiedBytes += int64(len(r.dead)) * 9
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	base, upto, flattened := shareOrFlatten(r.member.base, r.member.over, r.member.overCount, int(r.member.upto.Load()))
	out.member.base = base
	out.member.upto.Store(int64(upto))
	cost.copiedBytes += flattened
	if len(r.indexes) > 0 {
		out.indexes = make(map[string]*Index, len(r.indexes))
		for sig, ix := range r.indexes {
			b, u, fb := shareOrFlatten(ix.base, ix.m, ix.overCount, int(ix.upto.Load()))
			nix := &Index{r: out, cols: ix.cols, base: b, m: map[uint64][]int{}}
			nix.upto.Store(int64(u))
			out.indexes[sig] = nix
			cost.copiedBytes += fb
		}
	}
	clonePrefixes := func(src map[prefixKey]*prefixIndex) map[prefixKey]*prefixIndex {
		if len(src) == 0 {
			return nil
		}
		dst := make(map[prefixKey]*prefixIndex, len(src))
		for key, ix := range src {
			b, u, fb := shareOrFlatten(ix.base, ix.m, ix.overCount, int(ix.upto.Load()))
			nix := &prefixIndex{base: b, m: map[uint64][]int{}}
			nix.upto.Store(int64(u))
			dst[key] = nix
			cost.copiedBytes += fb
		}
		return dst
	}
	out.prefixes = clonePrefixes(r.prefixes)
	out.suffixes = clonePrefixes(r.suffixes)
	return out, cost
}

// shareOrFlatten decides how an epoch clone inherits one index: a
// small position gap above the base is dropped (the clone re-absorbs
// it lazily), a large one is flattened with the base into a fresh
// immutable postings covering everything absorbed so far. The decision
// is on positions, not entries, so even a sparse index (say a prefix
// index most tuples are too short for) advances its shared watermark
// instead of rescanning the log every epoch. It returns the clone's
// base, its absorbed watermark, and the approximate bytes copied by a
// flatten.
func shareOrFlatten(base *postings, over map[uint64][]int, overCount, upto int) (*postings, int, int64) {
	covered := 0
	if base != nil {
		covered = base.upto
	}
	// Two-sided trigger: a gap under the absolute floor is always
	// inherited lazily, and a gap under 1/16 of the covered prefix is
	// too — rebuilding an n-entry base is then paid at most once per
	// n/16 appended positions, i.e. amortized O(1) per tuple even when
	// a single epoch appends more than any fixed constant.
	if gap := upto - covered; gap < flattenThreshold || gap*16 < covered {
		return base, covered, 0
	}
	flat := flattenPostings(base, over, overCount, upto)
	return flat, flat.upto, int64(overCount)*32 + 64
}

// Equal reports set equality of two relations (live tuples only).
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() || r.Arity != s.Arity {
		return false
	}
	for pos := 0; pos < r.size; pos++ {
		if !r.Live(pos) {
			continue
		}
		if s.lookupHashed(r.hashAt(pos), r.tupleAt(pos)) < 0 {
			return false
		}
	}
	return true
}

// Index is a hash index over a projection of a relation's columns,
// obtained from Relation.Index. It is built lazily: construction is
// free, and each Lookup first absorbs any tuples Added since the last
// lookup, so the index is never stale. Like the tuple log, an index is
// epoch-shared: the write barrier hands clones an immutable base
// postings and each epoch layers a private overlay on top. Lookups are
// safe from multiple goroutines while the relation is frozen (see the
// Relation concurrency contract): the absorb step runs under the
// relation's mutex and publishes its watermark atomically, so
// concurrent probes either skip it lock-free or serialize on the
// build.
type Index struct {
	r         *Relation
	cols      []int
	base      *postings // immutable, shared across epochs; nil when none
	m         map[uint64][]int
	overCount int
	upto      atomic.Int64 // positions [0, upto) are absorbed
}

// indexSig encodes a column list as a compact map key (one uvarint per
// column) without fmt or a strings.Builder: Index is called once per
// (rule run, step), hot enough under parallel fan-out to matter.
func indexSig(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return string(b)
}

// Index returns the (shared, lazily maintained) index keyed on the
// given argument positions. Positions out of range panic: schemas fix
// arities, so this is a programming error.
func (r *Relation) Index(cols ...int) *Index {
	for _, c := range cols {
		if c < 0 || c >= r.Arity {
			panic(fmt.Sprintf("instance: index column %d out of range for arity-%d relation", c, r.Arity))
		}
	}
	sig := indexSig(cols)
	r.mu.RLock()
	ix := r.indexes[sig]
	r.mu.RUnlock()
	if ix != nil {
		return ix
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ix := r.indexes[sig]; ix != nil {
		return ix
	}
	ix = &Index{r: r, cols: append([]int(nil), cols...), m: map[uint64][]int{}}
	if r.indexes == nil {
		r.indexes = map[string]*Index{}
	}
	r.indexes[sig] = ix
	return ix
}

// hashCols folds the indexed columns of a tuple; it must agree with
// hashPaths on the projected values so probes find their buckets.
func hashCols(t Tuple, cols []int) uint64 {
	h := value.HashSeed
	for _, c := range cols {
		h = value.HashByte(h, 0x1f)
		h = t[c].Hash(h)
	}
	return h
}

// hashPaths folds a sequence of paths with 0x1f component separators;
// the single fold shared by tuple membership and index probes.
func hashPaths(vals []value.Path) uint64 {
	h := value.HashSeed
	for _, p := range vals {
		h = value.HashByte(h, 0x1f)
		h = p.Hash(h)
	}
	return h
}

// verifyBucket filters hash-collision false positives out of a bucket,
// returning the bucket itself (shared, read-only) in the common case
// where every position is a true match.
func verifyBucket(bucket []int, match func(pos int) bool) []int {
	for k, pos := range bucket {
		if !match(pos) {
			out := make([]int, k, len(bucket))
			copy(out, bucket[:k])
			for _, p := range bucket[k+1:] {
				if match(p) {
					out = append(out, p)
				}
			}
			return out
		}
	}
	return bucket
}

// mergeBuckets probes a base bucket and an overlay bucket, verifying
// matches. Base positions all precede overlay positions (the base
// covers a position prefix), so concatenation preserves ascending
// order.
func mergeBuckets(baseBucket, over []int, match func(pos int) bool) []int {
	if len(baseBucket) == 0 {
		return verifyBucket(over, match)
	}
	if len(over) == 0 {
		return verifyBucket(baseBucket, match)
	}
	out := make([]int, 0, len(baseBucket)+len(over))
	for _, p := range baseBucket {
		if match(p) {
			out = append(out, p)
		}
	}
	for _, p := range over {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}

// CatchUp absorbs every tuple Added since the last absorb, bringing
// the index fully up to date. Lookup calls it implicitly; the parallel
// evaluator calls it explicitly before fanning out a round so that the
// workers' probes hit the lock-free caught-up fast path. Absorbing is
// synchronized: the watermark is published atomically after the
// buckets are built, so a concurrent probe that observes it never sees
// a partially built index.
func (ix *Index) CatchUp() {
	n := ix.r.size
	if int(ix.upto.Load()) >= n {
		return
	}
	ix.r.mu.Lock()
	defer ix.r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		h := hashCols(ix.r.tupleAt(i), ix.cols)
		ix.m[h] = append(ix.m[h], i)
		ix.overCount++
	}
	ix.upto.Store(int64(n))
}

// Lookup returns the tuple-log positions (ascending) of the live
// tuples whose indexed columns equal vals component-wise. Hash
// collisions and tombstones are verified, so every returned position
// is a true, live match. The returned slice may be shared with the
// index; callers must not mutate it.
func (ix *Index) Lookup(vals ...value.Path) []int {
	return ix.lookup(vals, View{})
}

// LookupAll is Lookup including tombstoned positions. The DRed
// overdeletion phase uses it to join against the pre-deletion state of
// a relation (live tuples plus everything deleted during the current
// maintenance run, which is exactly the set still occupying positions).
func (ix *Index) LookupAll(vals ...value.Path) []int {
	return ix.lookup(vals, View{Dead: true})
}

// LookupView is Lookup restricted to the given view: tombstone
// visibility per v.Dead, and only positions whose derivation stamp the
// view admits (the evaluator's stratum-exact and pruner-bounded
// probes). LookupView with the zero View is Lookup.
func (ix *Index) LookupView(v View, vals ...value.Path) []int {
	return ix.lookup(vals, v)
}

func (ix *Index) lookup(vals []value.Path, v View) []int {
	if len(vals) != len(ix.cols) {
		panic(fmt.Sprintf("instance: index over %d columns probed with %d values", len(ix.cols), len(vals)))
	}
	ix.CatchUp()
	h := hashPaths(vals)
	match := func(pos int) bool {
		if !v.Dead && !ix.r.Live(pos) {
			return false
		}
		if !v.Admits(ix.r.stampAt(pos)) {
			return false
		}
		t := ix.r.tupleAt(pos)
		for j, c := range ix.cols {
			if !t[c].Equal(vals[j]) {
				return false
			}
		}
		return true
	}
	var baseBucket []int
	if ix.base != nil {
		baseBucket = ix.base.m[h]
	}
	return mergeBuckets(baseBucket, ix.m[h], match)
}

// prefixKey identifies a lazily built prefix index: column col, keyed
// on the first n values of that column.
type prefixKey struct{ col, n int }

type prefixIndex struct {
	base      *postings // immutable, shared across epochs; nil when none
	m         map[uint64][]int
	overCount int
	upto      atomic.Int64 // positions [0, upto) are absorbed
}

// catchUpPrefix absorbs pending tuples into one prefix index, under
// the same synchronization scheme as Index.CatchUp.
func (r *Relation) catchUpPrefix(ix *prefixIndex, key prefixKey) {
	n := r.size
	if int(ix.upto.Load()) >= n {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		p := r.tupleAt(i)[key.col]
		if len(p) < key.n {
			continue
		}
		h := p[:key.n].Hash(value.HashSeed)
		ix.m[h] = append(ix.m[h], i)
		ix.overCount++
	}
	ix.upto.Store(int64(n))
}

// PrefixLookup returns the tuple-log positions (ascending) of the live
// tuples whose column col starts with the given non-empty prefix. A
// separate index per (col, len(prefix)) is built lazily and caught up
// after Adds. Collisions and tombstones are verified; the returned
// slice may be shared. Like Lookup, PrefixLookup is safe from
// concurrent readers while the relation is frozen, including the probe
// that first creates an index for a prefix length no other goroutine
// has seen.
//
// This is the probe the evaluator uses when a join argument like
// @y.$rest has a ground prefix under the current valuation: any
// matching tuple's column must begin with exactly that prefix.
func (r *Relation) PrefixLookup(col int, prefix value.Path) []int {
	return r.prefixLookup(col, prefix, View{})
}

// PrefixLookupAll is PrefixLookup including tombstoned positions; see
// Index.LookupAll for when the DRed maintainer needs that.
func (r *Relation) PrefixLookupAll(col int, prefix value.Path) []int {
	return r.prefixLookup(col, prefix, View{Dead: true})
}

// PrefixLookupView is PrefixLookup restricted to the given view; see
// Index.LookupView.
func (r *Relation) PrefixLookupView(v View, col int, prefix value.Path) []int {
	return r.prefixLookup(col, prefix, v)
}

func (r *Relation) prefixLookup(col int, prefix value.Path, v View) []int {
	if col < 0 || col >= r.Arity {
		panic(fmt.Sprintf("instance: prefix column %d out of range for arity-%d relation", col, r.Arity))
	}
	if len(prefix) == 0 {
		panic("instance: empty prefix probe (caller should scan)")
	}
	key := prefixKey{col, len(prefix)}
	r.mu.RLock()
	ix := r.prefixes[key]
	r.mu.RUnlock()
	if ix == nil {
		r.mu.Lock()
		ix = r.prefixes[key]
		if ix == nil {
			ix = &prefixIndex{m: map[uint64][]int{}}
			if r.prefixes == nil {
				r.prefixes = map[prefixKey]*prefixIndex{}
			}
			r.prefixes[key] = ix
		}
		r.mu.Unlock()
	}
	r.catchUpPrefix(ix, key)
	match := func(pos int) bool {
		if !v.Dead && !r.Live(pos) {
			return false
		}
		if !v.Admits(r.stampAt(pos)) {
			return false
		}
		p := r.tupleAt(pos)[col]
		return len(p) >= len(prefix) && p[:len(prefix)].Equal(prefix)
	}
	h := prefix.Hash(value.HashSeed)
	var baseBucket []int
	if ix.base != nil {
		baseBucket = ix.base.m[h]
	}
	return mergeBuckets(baseBucket, ix.m[h], match)
}

// catchUpSuffix absorbs pending tuples into one suffix index, under
// the same synchronization scheme as Index.CatchUp. The key's n counts
// the last n values of column key.col.
func (r *Relation) catchUpSuffix(ix *prefixIndex, key prefixKey) {
	n := r.size
	if int(ix.upto.Load()) >= n {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := int(ix.upto.Load()); i < n; i++ {
		p := r.tupleAt(i)[key.col]
		if len(p) < key.n {
			continue
		}
		h := p[len(p)-key.n:].Hash(value.HashSeed)
		ix.m[h] = append(ix.m[h], i)
		ix.overCount++
	}
	ix.upto.Store(int64(n))
}

// SuffixLookup returns the tuple-log positions (ascending) of the live
// tuples whose column col ends with the given non-empty suffix. A
// separate index per (col, len(suffix)) is built lazily beside the
// prefix indexes and caught up after Adds, with the same concurrency
// guarantees as PrefixLookup.
//
// This is the probe the evaluator uses when a join argument like
// $rest.@y has its trailing terms ground under the current valuation
// (the paper's bound-suffix patterns, §2.2): any matching tuple's
// column must end with exactly that suffix.
func (r *Relation) SuffixLookup(col int, suffix value.Path) []int {
	return r.suffixLookup(col, suffix, View{})
}

// SuffixLookupAll is SuffixLookup including tombstoned positions; see
// Index.LookupAll for when the DRed maintainer needs that.
func (r *Relation) SuffixLookupAll(col int, suffix value.Path) []int {
	return r.suffixLookup(col, suffix, View{Dead: true})
}

// SuffixLookupView is SuffixLookup restricted to the given view; see
// Index.LookupView.
func (r *Relation) SuffixLookupView(v View, col int, suffix value.Path) []int {
	return r.suffixLookup(col, suffix, v)
}

func (r *Relation) suffixLookup(col int, suffix value.Path, v View) []int {
	if col < 0 || col >= r.Arity {
		panic(fmt.Sprintf("instance: suffix column %d out of range for arity-%d relation", col, r.Arity))
	}
	if len(suffix) == 0 {
		panic("instance: empty suffix probe (caller should scan)")
	}
	key := prefixKey{col, len(suffix)}
	r.mu.RLock()
	ix := r.suffixes[key]
	r.mu.RUnlock()
	if ix == nil {
		r.mu.Lock()
		ix = r.suffixes[key]
		if ix == nil {
			ix = &prefixIndex{m: map[uint64][]int{}}
			if r.suffixes == nil {
				r.suffixes = map[prefixKey]*prefixIndex{}
			}
			r.suffixes[key] = ix
		}
		r.mu.Unlock()
	}
	r.catchUpSuffix(ix, key)
	match := func(pos int) bool {
		if !v.Dead && !r.Live(pos) {
			return false
		}
		if !v.Admits(r.stampAt(pos)) {
			return false
		}
		p := r.tupleAt(pos)[col]
		return len(p) >= len(suffix) && p[len(p)-len(suffix):].Equal(suffix)
	}
	h := suffix.Hash(value.HashSeed)
	var baseBucket []int
	if ix.base != nil {
		baseBucket = ix.base.m[h]
	}
	return mergeBuckets(baseBucket, ix.m[h], match)
}

// CatchUpIndexes absorbs pending tuples into the membership index and
// every secondary index built so far (exact, prefix and suffix). The
// parallel evaluator calls it on each relation a round will read
// before fanning out, so worker probes of already-known index shapes
// run lock-free; an index shape first probed mid-round still builds
// safely under the internal lock.
func (r *Relation) CatchUpIndexes() {
	r.catchUpMember()
	r.mu.RLock()
	exact := make([]*Index, 0, len(r.indexes))
	for _, ix := range r.indexes {
		exact = append(exact, ix)
	}
	type keyedPrefix struct {
		key prefixKey
		ix  *prefixIndex
	}
	pref := make([]keyedPrefix, 0, len(r.prefixes))
	for key, ix := range r.prefixes {
		pref = append(pref, keyedPrefix{key, ix})
	}
	suff := make([]keyedPrefix, 0, len(r.suffixes))
	for key, ix := range r.suffixes {
		suff = append(suff, keyedPrefix{key, ix})
	}
	r.mu.RUnlock()
	for _, ix := range exact {
		ix.CatchUp()
	}
	for _, p := range pref {
		r.catchUpPrefix(p.ix, p.key)
	}
	for _, s := range suff {
		r.catchUpSuffix(s.ix, s.key)
	}
}

// CloneStats accumulates the work the Ensure write barrier has done on
// behalf of one instance: how many frozen relations were replaced by
// epoch clones, how many sealed chunks those clones shared by pointer
// instead of copying, and approximately how many bytes they did copy
// (partial tail chunks, pointer slices, flattened index bases). The
// ratio of SharedChunks to CloneBytes is what makes snapshot-epoch
// write barriers O(1)-ish instead of O(relation).
type CloneStats struct {
	BarrierClones int64
	SharedChunks  int64
	CloneBytes    int64
}

// Sub returns s - o, for deriving per-call deltas from two readings.
func (s CloneStats) Sub(o CloneStats) CloneStats {
	return CloneStats{
		BarrierClones: s.BarrierClones - o.BarrierClones,
		SharedChunks:  s.SharedChunks - o.SharedChunks,
		CloneBytes:    s.CloneBytes - o.CloneBytes,
	}
}

// Add accumulates o into s.
func (s *CloneStats) Add(o CloneStats) {
	s.BarrierClones += o.BarrierClones
	s.SharedChunks += o.SharedChunks
	s.CloneBytes += o.CloneBytes
}

// Instance assigns finite relations to relation names (paper §2.1).
type Instance struct {
	rels    map[string]*Relation
	clones  CloneStats
	stamper *Stamper
}

// New creates an empty instance.
func New() *Instance { return &Instance{rels: map[string]*Relation{}} }

// Relation returns the named relation or nil.
func (i *Instance) Relation(name string) *Relation { return i.rels[name] }

// SetStamper attaches a stamper to the instance: Ensure hands it to
// every relation it returns (created, cloned at the write barrier, or
// already writable), so all writes draw stamps from one monotone birth
// counter. The engine attaches one stamper per materialization and
// retags it as maintenance moves through the strata.
func (i *Instance) SetStamper(s *Stamper) { i.stamper = s }

// Stamper returns the instance's attached stamper, or nil.
func (i *Instance) Stamper() *Stamper { return i.stamper }

// CloneStats reports the accumulated write-barrier work of this
// instance; see CloneStats.
func (i *Instance) CloneStats() CloneStats { return i.clones }

// Ensure returns the named relation, creating it with the given arity if
// absent. It panics on an arity clash: schemas fix arities.
//
// Ensure is the instance's write barrier: when the named relation is
// frozen (its storage is shared with a snapshot), it is replaced by an
// unfrozen epoch clone before being returned, so the caller can write
// to it without disturbing any snapshot. The clone preserves tuple-log
// positions (tombstones included), so delta windows recorded before the
// barrier stay valid after it — and it shares every sealed chunk and
// index base with the frozen original, so the barrier costs
// O(size/chunkSize), not O(size). Readers that only need to look at a
// relation should use Relation instead, which never clones.
func (i *Instance) Ensure(name string, arity int) *Relation {
	if r, ok := i.rels[name]; ok {
		if r.Arity != arity {
			panic(fmt.Sprintf("instance: relation %s has arity %d, requested %d", name, r.Arity, arity))
		}
		if r.Frozen() {
			clone, cost := r.cloneShared()
			i.clones.BarrierClones++
			i.clones.SharedChunks += cost.sharedChunks
			i.clones.CloneBytes += cost.copiedBytes
			i.rels[name] = clone
			r = clone
		}
		// Unconditional, including nil: a writer only ever draws stamps
		// from ITS instance's stamper. A clone inherits the relation-level
		// pointer from its parent epoch, and without this reattach an
		// unrelated instance (a user writing over an engine snapshot)
		// would keep issuing births from the engine's live counter.
		r.stamper = i.stamper
		return r
	}
	r := NewRelation(arity)
	r.stamper = i.stamper
	i.rels[name] = r
	return r
}

// Add inserts the fact name(t...) creating the relation as needed.
func (i *Instance) Add(name string, t Tuple) bool {
	return i.Ensure(name, len(t)).Add(t)
}

// Delete removes the fact name(t...), reporting whether it was
// present. Like every write it goes through the Ensure barrier, so a
// frozen (snapshot-shared) relation is cloned before the tombstone is
// placed and no snapshot ever observes the deletion.
func (i *Instance) Delete(name string, t Tuple) bool {
	r := i.rels[name]
	if r == nil || !r.Contains(t) {
		return false
	}
	return i.Ensure(name, r.Arity).Delete(t)
}

// AddPath inserts a unary fact.
func (i *Instance) AddPath(name string, p value.Path) bool {
	return i.Add(name, Tuple{p})
}

// AddFact inserts a nullary fact (a boolean flag relation).
func (i *Instance) AddFact(name string) bool { return i.Add(name, Tuple{}) }

// Has reports whether the fact is present.
func (i *Instance) Has(name string, t Tuple) bool {
	r := i.rels[name]
	return r != nil && r.Contains(t)
}

// Names returns the relation names, sorted.
func (i *Instance) Names() []string {
	out := make([]string, 0, len(i.rels))
	for n := range i.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Facts returns the total number of facts.
func (i *Instance) Facts() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// Clone returns an independent copy.
func (i *Instance) Clone() *Instance {
	out := New()
	for n, r := range i.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// Snapshot returns a copy-on-write snapshot: a new instance sharing
// every relation's chunked tuple log with i. Both i and the snapshot
// keep reading the shared (now frozen) relations for free; the first
// write to a relation on either side — any write funneled through
// Ensure — transparently replaces that side's entry with an unfrozen
// epoch clone that still shares every sealed chunk, leaving the other
// side untouched. Relations never written again are never copied, and
// even written ones only pay for their tail.
//
// A snapshot is safe for any number of concurrent readers, including
// reads that lazily build secondary indexes, even while the originating
// instance keeps being written: writers only ever touch unfrozen
// clones, which no snapshot can see. Snapshot itself is NOT safe to run
// concurrently with writes to i; callers serialize it with their write
// path (the eval.Engine takes snapshots under its own lock).
func (i *Instance) Snapshot() *Instance {
	out := New()
	for n, r := range i.rels {
		r.Freeze()
		out.rels[n] = r
	}
	return out
}

// Remove deletes the named relation from the instance's mapping. The
// relation object itself is untouched: snapshots sharing it keep
// reading it. Removing an absent name is a no-op.
func (i *Instance) Remove(name string) { delete(i.rels, name) }

// Put installs rel under name, replacing any existing mapping. The
// engine's recompute path uses it to reinstate a (frozen) seed relation
// before re-deriving; writes through Ensure will clone it as needed.
func (i *Instance) Put(name string, rel *Relation) { i.rels[name] = rel }

// Restrict returns a copy containing only the named relations. Frozen
// relations are shared rather than cloned — their storage is immutable,
// so the restriction reads them for free and the first write on either
// side goes through the Ensure barrier, exactly as after Snapshot;
// only unfrozen relations are deep-cloned.
func (i *Instance) Restrict(names ...string) *Instance {
	out := New()
	for _, n := range names {
		if r, ok := i.rels[n]; ok {
			if r.Frozen() {
				out.rels[n] = r
			} else {
				out.rels[n] = r.Clone()
			}
		}
	}
	return out
}

// Merge adds all facts of j into i.
func (i *Instance) Merge(j *Instance) {
	for _, n := range j.Names() {
		r := j.rels[n]
		dst := i.Ensure(n, r.Arity)
		for pos := 0; pos < r.Size(); pos++ {
			if r.Live(pos) {
				dst.AddHashed(r.HashAt(pos), r.TupleAt(pos))
			}
		}
	}
}

// Equal reports whether two instances hold exactly the same facts.
// Empty relations are equivalent to absent ones.
func (i *Instance) Equal(j *Instance) bool {
	for _, n := range i.Names() {
		r := i.rels[n]
		if r.Len() == 0 {
			continue
		}
		s := j.rels[n]
		if s == nil || !r.Equal(s) {
			return false
		}
	}
	for _, n := range j.Names() {
		s := j.rels[n]
		if s.Len() == 0 {
			continue
		}
		r := i.rels[n]
		if r == nil || !r.Equal(s) {
			return false
		}
	}
	return true
}

// IsFlat reports whether no packed value occurs anywhere (paper §3.1).
func (i *Instance) IsFlat() bool {
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if !p.IsFlat() {
					return false
				}
			}
		}
	}
	return true
}

// IsMonadic reports whether every relation has arity zero or one.
func (i *Instance) IsMonadic() bool {
	for _, r := range i.rels {
		if r.Arity > 1 {
			return false
		}
	}
	return true
}

// MaxPathLen returns the maximal length of a path in the instance.
func (i *Instance) MaxPathLen() int {
	m := 0
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if len(p) > m {
					m = len(p)
				}
			}
		}
	}
	return m
}

// String renders all facts sorted, one per line, as "R(p1, ..., pn).".
func (i *Instance) String() string {
	var b strings.Builder
	for _, n := range i.Names() {
		r := i.rels[n]
		for _, t := range r.Sorted() {
			b.WriteString(n)
			if len(t) > 0 {
				parts := make([]string, len(t))
				for k, p := range t {
					parts[k] = p.String()
				}
				b.WriteString("(" + strings.Join(parts, ", ") + ")")
			}
			b.WriteString(".\n")
		}
	}
	return b.String()
}

// Diff describes the first difference between two instances, for test
// failure messages; it returns "" when equal.
func Diff(a, b *Instance) string {
	for _, n := range a.Names() {
		r := a.Relation(n)
		if r.Len() == 0 {
			continue
		}
		s := b.Relation(n)
		for _, t := range r.Sorted() {
			if s == nil || !s.Contains(t) {
				return fmt.Sprintf("only in first: %s%s", n, t)
			}
		}
	}
	for _, n := range b.Names() {
		s := b.Relation(n)
		if s.Len() == 0 {
			continue
		}
		r := a.Relation(n)
		for _, t := range s.Sorted() {
			if r == nil || !r.Contains(t) {
				return fmt.Sprintf("only in second: %s%s", n, t)
			}
		}
	}
	return ""
}
