// Package instance implements database instances over the sequence data
// model (paper §2.1, §2.3): finite relations of path tuples, viewed
// equivalently as sets of facts.
package instance

import (
	"fmt"
	"sort"
	"strings"

	"seqlog/internal/value"
)

// Tuple is one row of a relation: a fixed-arity list of paths.
type Tuple []value.Path

// Key returns a canonical injective encoding of the tuple.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.Key()
	}
	return strings.Join(parts, "\x00")
}

// Equal reports component-wise path equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples component-wise.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(u)
}

// String renders the tuple as (p1, ..., pn).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, p := range t {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a finite n-ary relation on paths with set semantics and
// deterministic iteration order (insertion order; Sorted() for canonical
// order).
type Relation struct {
	Arity  int
	keys   map[string]int
	tuples []Tuple
}

// NewRelation creates an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, keys: map[string]int{}}
}

// Add inserts a tuple; it reports whether the tuple was new.
// Adding a tuple of the wrong arity panics: this is a programming error.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("instance: arity mismatch: tuple %v into arity-%d relation", t, r.Arity))
	}
	k := t.Key()
	if _, ok := r.keys[k]; ok {
		return false
	}
	r.keys[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.keys[t.Key()]
	return ok
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples in insertion order. The slice is shared;
// callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Sorted returns the tuples in canonical order.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns an independent copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Arity)
	for _, t := range r.tuples {
		out.Add(t)
	}
	return out
}

// Equal reports set equality of two relations.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() || r.Arity != s.Arity {
		return false
	}
	for k := range r.keys {
		if _, ok := s.keys[k]; !ok {
			return false
		}
	}
	return true
}

// Instance assigns finite relations to relation names (paper §2.1).
type Instance struct {
	rels map[string]*Relation
}

// New creates an empty instance.
func New() *Instance { return &Instance{rels: map[string]*Relation{}} }

// Relation returns the named relation or nil.
func (i *Instance) Relation(name string) *Relation { return i.rels[name] }

// Ensure returns the named relation, creating it with the given arity if
// absent. It panics on an arity clash: schemas fix arities.
func (i *Instance) Ensure(name string, arity int) *Relation {
	if r, ok := i.rels[name]; ok {
		if r.Arity != arity {
			panic(fmt.Sprintf("instance: relation %s has arity %d, requested %d", name, r.Arity, arity))
		}
		return r
	}
	r := NewRelation(arity)
	i.rels[name] = r
	return r
}

// Add inserts the fact name(t...) creating the relation as needed.
func (i *Instance) Add(name string, t Tuple) bool {
	return i.Ensure(name, len(t)).Add(t)
}

// AddPath inserts a unary fact.
func (i *Instance) AddPath(name string, p value.Path) bool {
	return i.Add(name, Tuple{p})
}

// AddFact inserts a nullary fact (a boolean flag relation).
func (i *Instance) AddFact(name string) bool { return i.Add(name, Tuple{}) }

// Has reports whether the fact is present.
func (i *Instance) Has(name string, t Tuple) bool {
	r := i.rels[name]
	return r != nil && r.Contains(t)
}

// Names returns the relation names, sorted.
func (i *Instance) Names() []string {
	out := make([]string, 0, len(i.rels))
	for n := range i.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Facts returns the total number of facts.
func (i *Instance) Facts() int {
	n := 0
	for _, r := range i.rels {
		n += r.Len()
	}
	return n
}

// Clone returns an independent copy.
func (i *Instance) Clone() *Instance {
	out := New()
	for n, r := range i.rels {
		out.rels[n] = r.Clone()
	}
	return out
}

// Restrict returns a copy containing only the named relations.
func (i *Instance) Restrict(names ...string) *Instance {
	out := New()
	for _, n := range names {
		if r, ok := i.rels[n]; ok {
			out.rels[n] = r.Clone()
		}
	}
	return out
}

// Merge adds all facts of j into i.
func (i *Instance) Merge(j *Instance) {
	for _, n := range j.Names() {
		r := j.rels[n]
		dst := i.Ensure(n, r.Arity)
		for _, t := range r.Tuples() {
			dst.Add(t)
		}
	}
}

// Equal reports whether two instances hold exactly the same facts.
// Empty relations are equivalent to absent ones.
func (i *Instance) Equal(j *Instance) bool {
	for _, n := range i.Names() {
		r := i.rels[n]
		if r.Len() == 0 {
			continue
		}
		s := j.rels[n]
		if s == nil || !r.Equal(s) {
			return false
		}
	}
	for _, n := range j.Names() {
		s := j.rels[n]
		if s.Len() == 0 {
			continue
		}
		r := i.rels[n]
		if r == nil || !r.Equal(s) {
			return false
		}
	}
	return true
}

// IsFlat reports whether no packed value occurs anywhere (paper §3.1).
func (i *Instance) IsFlat() bool {
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if !p.IsFlat() {
					return false
				}
			}
		}
	}
	return true
}

// IsMonadic reports whether every relation has arity zero or one.
func (i *Instance) IsMonadic() bool {
	for _, r := range i.rels {
		if r.Arity > 1 {
			return false
		}
	}
	return true
}

// MaxPathLen returns the maximal length of a path in the instance.
func (i *Instance) MaxPathLen() int {
	m := 0
	for _, r := range i.rels {
		for _, t := range r.Tuples() {
			for _, p := range t {
				if len(p) > m {
					m = len(p)
				}
			}
		}
	}
	return m
}

// String renders all facts sorted, one per line, as "R(p1, ..., pn).".
func (i *Instance) String() string {
	var b strings.Builder
	for _, n := range i.Names() {
		r := i.rels[n]
		for _, t := range r.Sorted() {
			b.WriteString(n)
			if len(t) > 0 {
				parts := make([]string, len(t))
				for k, p := range t {
					parts[k] = p.String()
				}
				b.WriteString("(" + strings.Join(parts, ", ") + ")")
			}
			b.WriteString(".\n")
		}
	}
	return b.String()
}

// Diff describes the first difference between two instances, for test
// failure messages; it returns "" when equal.
func Diff(a, b *Instance) string {
	for _, n := range a.Names() {
		r := a.Relation(n)
		if r.Len() == 0 {
			continue
		}
		s := b.Relation(n)
		for _, t := range r.Sorted() {
			if s == nil || !s.Contains(t) {
				return fmt.Sprintf("only in first: %s%s", n, t)
			}
		}
	}
	for _, n := range b.Names() {
		s := b.Relation(n)
		if s.Len() == 0 {
			continue
		}
		r := a.Relation(n)
		for _, t := range s.Sorted() {
			if r == nil || !r.Contains(t) {
				return fmt.Sprintf("only in second: %s%s", n, t)
			}
		}
	}
	return ""
}
