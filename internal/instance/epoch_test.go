package instance

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"seqlog/internal/value"
)

// These tests pin the epoch-sharing contract of the chunked tuple log:
// sealed chunks are shared by pointer across the write barrier, the
// partial tail is not, tombstones placed after a freeze never reach
// older readers, and the whole arrangement is invisible to the codec.

func fillSeq(i *Instance, name string, n int) {
	for k := 0; k < n; k++ {
		i.Add(name, tup(value.PathOf("t"+fmt.Sprint(k))))
	}
}

func TestBarrierSharesSealedChunksCopiesTail(t *testing.T) {
	i := New()
	// Two sealed chunks plus a partial tail.
	n := 2*chunkSize + chunkSize/2
	fillSeq(i, "R", n)
	snap := i.Snapshot()
	frozen := snap.Relation("R")

	i.Add("R", tup(value.PathOf("extra"))) // Ensure barrier fires here
	clone := i.Relation("R")
	if clone == frozen {
		t.Fatal("write barrier must have replaced the frozen relation")
	}
	if clone.chunks[0] != frozen.chunks[0] || clone.chunks[1] != frozen.chunks[1] {
		t.Fatal("sealed chunks must be shared by pointer across the barrier")
	}
	if clone.chunks[2] == frozen.chunks[2] {
		t.Fatal("the partial tail chunk must be copied, not shared")
	}
	if frozen.Len() != n || clone.Len() != n+1 {
		t.Fatalf("Len: frozen %d (want %d), clone %d (want %d)",
			frozen.Len(), n, clone.Len(), n+1)
	}

	cs := i.CloneStats()
	if cs.BarrierClones != 1 {
		t.Fatalf("BarrierClones = %d, want 1", cs.BarrierClones)
	}
	if cs.SharedChunks != 2 {
		t.Fatalf("SharedChunks = %d, want 2 (sealed chunks only)", cs.SharedChunks)
	}
	if cs.CloneBytes <= 0 {
		t.Fatalf("CloneBytes = %d, want > 0 (tail copy)", cs.CloneBytes)
	}
}

func TestBarrierAtChunkBoundarySharesEverything(t *testing.T) {
	i := New()
	fillSeq(i, "R", chunkSize) // exactly one sealed chunk, no tail
	snap := i.Snapshot()
	i.Add("R", tup(value.PathOf("extra")))
	clone, frozen := i.Relation("R"), snap.Relation("R")
	if clone.chunks[0] != frozen.chunks[0] {
		t.Fatal("with no partial tail every chunk must be shared")
	}
	if cs := i.CloneStats(); cs.SharedChunks != 1 {
		t.Fatalf("SharedChunks = %d, want 1", cs.SharedChunks)
	}
}

func TestPostFreezeTombstonesInvisibleToSnapshot(t *testing.T) {
	i := New()
	n := chunkSize + 10
	fillSeq(i, "R", n)
	// A pre-freeze tombstone, so the snapshot inherits a dead page the
	// writer's clone must path-copy rather than mutate in place.
	i.Delete("R", tup(value.PathOf("t0")))
	snap := i.Snapshot()

	// Delete on the writer side: one hit in the same page as the
	// pre-freeze tombstone, one in a page the snapshot never had.
	i.Delete("R", tup(value.PathOf("t1")))
	i.Delete("R", tup(value.PathOf("t"+fmt.Sprint(chunkSize+3))))

	sr := snap.Relation("R")
	if sr.Contains(tup(value.PathOf("t0"))) {
		t.Fatal("pre-freeze tombstone must be visible to the snapshot")
	}
	for _, want := range []string{"t1", "t" + fmt.Sprint(chunkSize+3)} {
		if !sr.Contains(tup(value.PathOf(want))) {
			t.Fatalf("post-freeze tombstone on %s leaked into the snapshot", want)
		}
	}
	if sr.Len() != n-1 {
		t.Fatalf("snapshot Len = %d, want %d", sr.Len(), n-1)
	}
	if got := i.Relation("R").Len(); got != n-3 {
		t.Fatalf("writer Len = %d, want %d", got, n-3)
	}
}

func TestTombstoneIsolationAcrossManyEpochs(t *testing.T) {
	// Chain of epochs: each snapshot must keep exactly the live set it
	// was frozen with, regardless of later deletes and compactions.
	i := New()
	n := chunkSize + chunkSize/2
	fillSeq(i, "R", n)
	type epoch struct {
		snap *Instance
		want int
	}
	var epochs []epoch
	for e := 0; e < 8; e++ {
		epochs = append(epochs, epoch{i.Snapshot(), i.Relation("R").Len()})
		i.Delete("R", tup(value.PathOf("t"+fmt.Sprint(e*7))))
		if e == 4 {
			i.Relation("R").Compact()
		}
	}
	for e, ep := range epochs {
		if got := ep.snap.Relation("R").Len(); got != ep.want {
			t.Fatalf("epoch %d: Len = %d, want %d", e, got, ep.want)
		}
		for k := 0; k < n; k++ {
			want := k%7 != 0 || k/7 >= e
			if got := ep.snap.Relation("R").Contains(tup(value.PathOf("t" + fmt.Sprint(k)))); got != want {
				t.Fatalf("epoch %d: Contains(t%d) = %t, want %t", e, k, got, want)
			}
		}
	}
}

func TestShareOrFlattenPolicy(t *testing.T) {
	// A gap below the absolute floor is inherited lazily (base shared
	// by pointer); so is a gap below 1/16 of the covered prefix; a gap
	// clearing both thresholds is flattened into a fresh base.
	base := &postings{m: map[uint64][]int{}, n: 10_000, upto: 10_000}
	for p := 0; p < 10_000; p++ {
		base.m[uint64(p)] = []int{p}
	}
	small := map[uint64][]int{1: {10_000}}
	if got, upto, _ := shareOrFlatten(base, small, 1, 10_001); got != base || upto != 10_000 {
		t.Fatal("tiny gap must share the base and keep its watermark")
	}
	// 500 new positions: over the absolute floor but under 10000/16.
	if got, _, _ := shareOrFlatten(base, small, 1, 10_500); got != base {
		t.Fatal("gap under 1/16 of covered must still share")
	}
	// 700 new positions over a 10000 prefix: both triggers cleared.
	big := map[uint64][]int{}
	for p := 10_000; p < 10_700; p++ {
		big[uint64(p)] = []int{p}
	}
	got, upto, bytes := shareOrFlatten(base, big, 700, 10_700)
	if got == base {
		t.Fatal("large gap must flatten into a fresh base")
	}
	if upto != 10_700 || got.upto != 10_700 {
		t.Fatalf("flattened watermark = %d, want 10700", upto)
	}
	if bytes <= 0 {
		t.Fatal("a flatten must report copied bytes")
	}
}

func TestIndexBaseSharedAcrossBarrier(t *testing.T) {
	i := New()
	for k := 0; k < chunkSize; k++ {
		i.Add("E", tup(value.PathOf("a"+fmt.Sprint(k%16)), value.PathOf("b"+fmt.Sprint(k))))
	}
	// Build and fully absorb an exact index and a prefix lookup before
	// freezing, so the clone has non-nil bases to inherit.
	i.Relation("E").Index(0).CatchUp()
	i.Relation("E").PrefixLookup(0, value.PathOf("a1"))
	snap := i.Snapshot()
	i.Add("E", tup(value.PathOf("a1"), value.PathOf("fresh")))
	clone := i.Relation("E")

	if got := len(clone.Index(0).Lookup(value.PathOf("a1"))); got != chunkSize/16+1 {
		t.Fatalf("clone index sees %d a1 rows, want %d", got, chunkSize/16+1)
	}
	if got := len(snap.Relation("E").Index(0).Lookup(value.PathOf("a1"))); got != chunkSize/16 {
		t.Fatalf("snapshot index sees %d a1 rows, want %d", got, chunkSize/16)
	}
	if got := len(clone.PrefixLookup(0, value.PathOf("a1"))); got != chunkSize/16+1 {
		t.Fatalf("clone prefix lookup sees %d rows, want %d", got, chunkSize/16+1)
	}
}

func TestCodecAgnosticToSharing(t *testing.T) {
	// The binary encoding of a shared-chunk, tombstoned snapshot must
	// equal the encoding of its compacted deep clone: chunk layout and
	// tombstone pages are storage artifacts, not data.
	i := New()
	n := 2*chunkSize + 37
	fillSeq(i, "X", n)
	for k := 0; k < n; k += 5 {
		i.Delete("X", tup(value.PathOf("t"+fmt.Sprint(k))))
	}
	snap := i.Snapshot()
	// Keep writing so the snapshot's storage really is shared with a
	// diverged sibling when it encodes.
	i.Delete("X", tup(value.PathOf("t1")))
	fillSeq(i, "X", n+chunkSize)

	compacted := New()
	compacted.Put("X", snap.Relation("X").Clone()) // deep, compacted copy
	enc := snap.AppendBinary(nil)
	if want := compacted.AppendBinary(nil); !bytes.Equal(enc, want) {
		t.Fatal("shared-chunk snapshot must encode identically to its compacted clone")
	}

	dec, rest, err := DecodeInstance(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: err=%v rest=%d", err, len(rest))
	}
	if !dec.Relation("X").Equal(snap.Relation("X")) {
		t.Fatal("decoded instance differs from the encoded snapshot")
	}
}

// TestStampsSurviveEpochSharing pins that derivation stamps are part
// of the chunked tuple log's epoch contract: sealed chunks shared
// across the write barrier carry their stamps by pointer, the copied
// tail keeps them, Compact rewrites positions without touching a
// surviving tuple's stamp, Clone deep-copies them, and the
// instance-level birth counter continues across barrier clones.
func TestStampsSurviveEpochSharing(t *testing.T) {
	i := New()
	st := &Stamper{}
	i.SetStamper(st)
	n := chunkSize + chunkSize/2
	want := map[string]uint64{}
	for k := 0; k < n; k++ {
		st.SetTag(uint64(k % 3))
		tu := tup(value.PathOf("t" + fmt.Sprint(k)))
		i.Add("R", tu)
		r := i.Relation("R")
		s := r.StampAt(r.Size() - 1)
		if StampTag(s) != uint64(k%3) || StampBirth(s) != uint64(k+1) {
			t.Fatalf("append %d: stamp tag=%d birth=%d, want tag=%d birth=%d",
				k, StampTag(s), StampBirth(s), k%3, k+1)
		}
		want[tu.Key()] = s
	}
	check := func(label string, r *Relation, want map[string]uint64) {
		t.Helper()
		live := 0
		for pos := 0; pos < r.Size(); pos++ {
			if !r.Live(pos) {
				continue
			}
			live++
			k := r.TupleAt(pos).Key()
			if got := r.StampAt(pos); got != want[k] {
				t.Fatalf("%s: stamp of %s = %#x, want %#x", label, r.TupleAt(pos), got, want[k])
			}
		}
		if live != len(want) {
			t.Fatalf("%s: %d live tuples, want %d", label, live, len(want))
		}
	}

	snap := i.Snapshot()
	st.SetTag(0)
	extra := tup(value.PathOf("extra"))
	i.Add("R", extra) // write barrier: sealed chunks shared, tail copied
	last := i.Relation("R")
	if s := last.StampAt(last.Size() - 1); StampBirth(s) != uint64(n+1) {
		t.Fatalf("birth counter did not continue across the barrier: birth %d, want %d",
			StampBirth(s), n+1)
	}
	check("frozen snapshot", snap.Relation("R"), want)

	wantW := map[string]uint64{}
	for k, v := range want {
		wantW[k] = v
	}
	wantW[extra.Key()] = MakeStamp(uint64(n+1), 0)
	// Tombstone a scattering of tuples, then Compact: every surviving
	// tuple keeps its stamp at its new position, and the frozen epoch
	// still sees the original assignment untouched.
	for k := 0; k < n; k += 7 {
		tu := tup(value.PathOf("t" + fmt.Sprint(k)))
		i.Delete("R", tu)
		delete(wantW, tu.Key())
	}
	check("writer before compact", i.Relation("R"), wantW)
	i.Relation("R").Compact()
	check("writer after compact", i.Relation("R"), wantW)
	check("deep clone", i.Relation("R").Clone(), wantW)
	check("frozen snapshot after compact", snap.Relation("R"), want)
}

// TestEpochHammer drives concurrent snapshot readers — membership,
// exact-index, and prefix probes, all of which lazily absorb under the
// watermark protocol — against a writer cycling assert/retract/Compact
// epochs. Run with -race in CI: the assertions matter, but the
// schedule coverage is the point.
func TestEpochHammer(t *testing.T) {
	i := New()
	base := 2 * chunkSize
	for k := 0; k < base; k++ {
		i.Add("R", tup(value.PathOf("k"+fmt.Sprint(k%32)), value.PathOf("v"+fmt.Sprint(k))))
	}

	const epochs = 40
	var wg sync.WaitGroup
	for e := 0; e < epochs; e++ {
		snap := i.Snapshot()
		want := snap.Relation("R").Len()
		wg.Add(1)
		go func(snap *Instance, want, seed int) {
			defer wg.Done()
			r := snap.Relation("R")
			rng := rand.New(rand.NewSource(int64(seed)))
			for round := 0; round < 20; round++ {
				if got := r.Len(); got != want {
					panic(fmt.Sprintf("snapshot Len drifted: %d -> %d", want, got))
				}
				key := value.PathOf("k" + fmt.Sprint(rng.Intn(32)))
				for _, pos := range r.Index(0).Lookup(key) {
					if !r.Live(pos) {
						panic("index handed out a dead position")
					}
					if !r.TupleAt(pos)[0].Equal(key) {
						panic("index handed out a mismatched position")
					}
				}
				for _, pos := range r.PrefixLookup(0, key) {
					if !r.Live(pos) {
						panic("prefix index handed out a dead position")
					}
				}
				live := 0
				for pos := 0; pos < r.Size(); pos++ {
					if r.Live(pos) {
						live++
					}
				}
				if live != want {
					panic(fmt.Sprintf("tombstone view drifted: %d live, want %d", live, want))
				}
			}
		}(snap, want, e)

		// Writer epoch: fresh asserts, some retracts, periodic Compact.
		for k := 0; k < 64; k++ {
			i.Add("R", tup(value.PathOf("k"+fmt.Sprint(k%32)), value.PathOf(fmt.Sprintf("e%d_%d", e, k))))
		}
		for k := 0; k < 16; k++ {
			i.Delete("R", tup(value.PathOf("k"+fmt.Sprint(k%32)), value.PathOf(fmt.Sprintf("e%d_%d", e, k))))
		}
		if e%7 == 6 {
			i.Relation("R").Compact()
		}
	}
	wg.Wait()

	if cs := i.CloneStats(); cs.BarrierClones < epochs {
		t.Fatalf("BarrierClones = %d, want >= %d (one per epoch)", cs.BarrierClones, epochs)
	}
}
