package instance

import (
	"encoding/binary"
	"fmt"

	"seqlog/internal/value"
)

// This file holds the binary snapshot codec: the durability layer
// (internal/wal) serializes instances into WAL records (assert/retract
// batches) and checkpoint files with AppendBinary and reads them back
// with DecodeInstance. Tuples ride on the value codec
// (value.AppendPath/ConsumePath), so atom texts — never process-local
// Syms — cross the wire and decoding re-interns into whatever symbol
// table the recovering process has.
//
// Encoding (integers are uvarints):
//
//	instance := nrels relation*
//	relation := len(name) name arity ntuples tuple*
//	tuple    := path^arity
//
// Relations are written in sorted name order and only LIVE tuples are
// written: encoding compacts tombstones away by construction, which is
// exactly what a checkpoint wants (dead positions are a maintenance
// artifact, not state). Decoding therefore yields dense, unfrozen
// relations; equality with the source is set equality (Instance.Equal,
// Diff), not position equality.

// AppendBinary appends the binary encoding of the instance to b and
// returns the extended slice. The instance is only read — frozen,
// snapshot-shared relations encode fine — and empty relations are
// encoded too (an empty relation still fixes a name and an arity).
func (i *Instance) AppendBinary(b []byte) []byte {
	names := i.Names()
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		r := i.rels[name]
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		b = binary.AppendUvarint(b, uint64(r.Arity))
		b = binary.AppendUvarint(b, uint64(r.Len()))
		for pos := 0; pos < r.Size(); pos++ {
			if !r.Live(pos) {
				continue
			}
			for _, p := range r.TupleAt(pos) {
				b = value.AppendPath(b, p)
			}
		}
	}
	return b
}

// DecodeInstance decodes one instance from the front of b, returning
// it and the remaining bytes. Every atom is re-interned and every
// packed value re-canonicalized (see the value codec), so the result
// is set-equal to the encoded instance in any process. Corrupt input
// returns an error and no instance.
func DecodeInstance(b []byte) (*Instance, []byte, error) {
	nrels, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, b, fmt.Errorf("instance: truncated relation count")
	}
	b = b[w:]
	out := New()
	for ri := uint64(0); ri < nrels; ri++ {
		nameLen, w := binary.Uvarint(b)
		if w <= 0 || nameLen > uint64(len(b[w:])) {
			return nil, b, fmt.Errorf("instance: truncated relation name (relation %d of %d)", ri+1, nrels)
		}
		b = b[w:]
		name := string(b[:nameLen])
		b = b[nameLen:]
		arity, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, b, fmt.Errorf("instance: truncated arity of %q", name)
		}
		b = b[w:]
		ntuples, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, b, fmt.Errorf("instance: truncated tuple count of %q", name)
		}
		b = b[w:]
		if out.Relation(name) != nil {
			return nil, b, fmt.Errorf("instance: duplicate relation %q", name)
		}
		// Cheap plausibility bounds before any allocation or loop: every
		// path costs at least one byte, so a tuple costs at least arity
		// bytes, and set semantics admit at most one nullary tuple. A
		// corrupt count fails here instead of spinning or allocating wildly.
		if arity == 0 && ntuples > 1 {
			return nil, b, fmt.Errorf("instance: %d tuples in nullary relation %q", ntuples, name)
		}
		if arity > 0 && ntuples > uint64(len(b))/arity {
			return nil, b, fmt.Errorf("instance: %q claims %d arity-%d tuples in %d remaining bytes", name, ntuples, arity, len(b))
		}
		r := out.Ensure(name, int(arity))
		for ti := uint64(0); ti < ntuples; ti++ {
			t := make(Tuple, arity)
			for c := range t {
				p, rest, err := value.ConsumePath(b)
				if err != nil {
					return nil, rest, fmt.Errorf("instance: %s tuple %d of %d: %w", name, ti+1, ntuples, err)
				}
				t[c] = p
				b = rest
			}
			r.Add(t)
		}
	}
	return out, b, nil
}
