package instance

import (
	"fmt"
	"testing"

	"seqlog/internal/value"
)

func tup(paths ...value.Path) Tuple { return paths }

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(1)
	if !r.Add(tup(value.PathOf("a", "b"))) {
		t.Fatal("first add must be new")
	}
	if r.Add(tup(value.PathOf("a", "b"))) {
		t.Fatal("duplicate add must report false")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(tup(value.PathOf("a", "b"))) {
		t.Fatal("Contains broken")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	NewRelation(2).Add(tup(value.PathOf("a")))
}

func TestTupleKeyDistinguishesComponents(t *testing.T) {
	a := tup(value.PathOf("a"), value.PathOf("b"))
	b := tup(value.PathOf("a", "b"), value.Epsilon)
	c := tup(value.Epsilon, value.PathOf("a", "b"))
	if a.Key() == b.Key() || b.Key() == c.Key() || a.Key() == c.Key() {
		t.Fatal("tuple keys collide")
	}
}

func TestInstanceEqualAndDiff(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	i.AddPath("R", value.PathOf("b"))
	j := New()
	j.AddPath("R", value.PathOf("b"))
	j.AddPath("R", value.PathOf("a"))
	if !i.Equal(j) {
		t.Fatal("order must not matter")
	}
	j.AddPath("S", value.PathOf("c"))
	if i.Equal(j) {
		t.Fatal("extra relation not detected")
	}
	if Diff(i, j) == "" {
		t.Fatal("Diff must report difference")
	}
	// Empty relations equal absent ones.
	k := i.Clone()
	k.Ensure("Z", 1)
	if !i.Equal(k) || Diff(i, k) != "" {
		t.Fatal("empty relation must equal absent relation")
	}
}

func TestInstanceFlatMonadic(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a", "b"))
	if !i.IsFlat() || !i.IsMonadic() {
		t.Fatal("flat monadic misdetected")
	}
	i.AddPath("P", value.Path{value.Pack(value.PathOf("a"))})
	if i.IsFlat() {
		t.Fatal("packed value not detected")
	}
	i.Add("D", tup(value.PathOf("a"), value.PathOf("b")))
	if i.IsMonadic() {
		t.Fatal("binary relation not detected")
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	j := i.Clone()
	j.AddPath("R", value.PathOf("b"))
	if i.Relation("R").Len() != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestMergeRestrictFacts(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	j := New()
	j.AddPath("R", value.PathOf("b"))
	j.AddPath("S", value.PathOf("c"))
	i.Merge(j)
	if i.Facts() != 3 {
		t.Fatalf("Facts = %d", i.Facts())
	}
	r := i.Restrict("S")
	if r.Facts() != 1 || r.Relation("R") != nil {
		t.Fatal("Restrict broken")
	}
}

func TestSortedDeterministic(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("b")))
	r.Add(tup(value.PathOf("a")))
	r.Add(tup(value.PathOf("a", "a")))
	s := r.Sorted()
	if s[0].String() != "(a)" || s[1].String() != "(a.a)" || s[2].String() != "(b)" {
		t.Fatalf("Sorted = %v", s)
	}
}

func TestMaxPathLen(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a", "b", "c"))
	i.AddFact("A")
	if i.MaxPathLen() != 3 {
		t.Fatalf("MaxPathLen = %d", i.MaxPathLen())
	}
}

func TestTupleHashEqualTuplesAgree(t *testing.T) {
	a := tup(value.PathOf("a", "b"), value.Path{value.Pack(value.PathOf("c"))})
	b := tup(value.PathOf("a", "b"), value.Path{value.Pack(value.PathOf("c"))})
	if a.Hash() != b.Hash() {
		t.Fatal("equal tuples must hash equally")
	}
	// The structural tags keep (a.b, eps) apart from (a, b.eps)-style
	// reshufflings that a naive concatenation hash would conflate.
	c := tup(value.PathOf("a"), value.PathOf("b"))
	d := tup(value.PathOf("a", "b"), value.Epsilon)
	if c.Hash() == d.Hash() {
		t.Fatal("component boundaries must affect the hash")
	}
}

func TestIndexLookup(t *testing.T) {
	r := NewRelation(2)
	r.Add(tup(value.PathOf("a"), value.PathOf("x")))
	r.Add(tup(value.PathOf("a"), value.PathOf("y")))
	r.Add(tup(value.PathOf("b"), value.PathOf("x")))
	ix := r.Index(0)
	got := ix.Lookup(value.PathOf("a"))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Lookup(a) = %v", got)
	}
	if len(ix.Lookup(value.PathOf("zzz"))) != 0 {
		t.Fatal("missing key must yield no positions")
	}
	// The index catches up after later Adds (never stale).
	r.Add(tup(value.PathOf("a"), value.PathOf("z")))
	if got := ix.Lookup(value.PathOf("a")); len(got) != 3 || got[2] != 3 {
		t.Fatalf("post-Add Lookup(a) = %v", got)
	}
	// Multi-column probe.
	both := r.Index(0, 1).Lookup(value.PathOf("a"), value.PathOf("y"))
	if len(both) != 1 || both[0] != 1 {
		t.Fatalf("Lookup(a, y) = %v", both)
	}
	// Index objects are shared per column signature.
	if r.Index(0) != ix {
		t.Fatal("same-signature index must be shared")
	}
}

func TestIndexColumnOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index column must panic")
		}
	}()
	NewRelation(1).Index(1)
}

func TestPrefixLookup(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a", "b", "c")))
	r.Add(tup(value.PathOf("a", "c")))
	r.Add(tup(value.PathOf("b", "b")))
	r.Add(tup(value.PathOf("a")))
	got := r.PrefixLookup(0, value.PathOf("a"))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("PrefixLookup(a) = %v", got)
	}
	got = r.PrefixLookup(0, value.PathOf("a", "b"))
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("PrefixLookup(a.b) = %v", got)
	}
	// Tuples shorter than the prefix never match.
	if got := r.PrefixLookup(0, value.PathOf("a", "b", "c", "d")); len(got) != 0 {
		t.Fatalf("over-long prefix = %v", got)
	}
	// Catch-up after Add.
	r.Add(tup(value.PathOf("a", "b")))
	if got := r.PrefixLookup(0, value.PathOf("a", "b")); len(got) != 2 || got[1] != 4 {
		t.Fatalf("post-Add PrefixLookup(a.b) = %v", got)
	}
}

func TestWindowIterationAndTupleAt(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a")))
	mark := r.Size()
	r.Add(tup(value.PathOf("b")))
	r.Add(tup(value.PathOf("c")))
	// Delta windows iterate positions [lo, hi) with TupleAt + Live.
	var delta []Tuple
	for pos := mark; pos < r.Size(); pos++ {
		if r.Live(pos) {
			delta = append(delta, r.TupleAt(pos))
		}
	}
	if len(delta) != 2 || delta[0].String() != "(b)" || delta[1].String() != "(c)" {
		t.Fatalf("window = %v", delta)
	}
	if r.TupleAt(0).String() != "(a)" {
		t.Fatalf("TupleAt(0) = %v", r.TupleAt(0))
	}
}

func TestCloneKeepsHashedMembership(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a")))
	r.Add(tup(value.PathOf("b")))
	c := r.Clone()
	if !c.Contains(tup(value.PathOf("a"))) || c.Add(tup(value.PathOf("b"))) {
		t.Fatal("clone must preserve membership")
	}
	// Divergent growth: the copy's buckets are independent.
	c.Add(tup(value.PathOf("c")))
	if r.Contains(tup(value.PathOf("c"))) || !c.Contains(tup(value.PathOf("c"))) {
		t.Fatal("clone shares membership state")
	}
	// Indexes built on the original do not leak into the clone.
	r.Index(0).Lookup(value.PathOf("a"))
	c2 := r.Clone()
	c2.Add(tup(value.PathOf("d")))
	if got := c2.Index(0).Lookup(value.PathOf("d")); len(got) != 1 {
		t.Fatalf("clone index = %v", got)
	}
}

func TestAppendDuringIterationSeesSnapshot(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a")))
	r.Add(tup(value.PathOf("b")))
	seen := 0
	for range r.Tuples() {
		r.Add(tup(value.PathOf("c", fmt.Sprint(seen))))
		seen++
	}
	if seen != 2 {
		t.Fatalf("iteration saw %d tuples; appends must not extend a live scan", seen)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestSnapshotSharesUntilWrite(t *testing.T) {
	i := New()
	i.Add("R", tup(value.PathOf("a")))
	i.Add("R", tup(value.PathOf("b")))
	snap := i.Snapshot()
	if !snap.Relation("R").Frozen() || !i.Relation("R").Frozen() {
		t.Fatal("Snapshot must freeze the shared relations")
	}
	if snap.Relation("R") != i.Relation("R") {
		t.Fatal("Snapshot must share relation storage, not copy it")
	}
	// A write through Ensure clones on the writing side only.
	i.Add("R", tup(value.PathOf("c")))
	if snap.Relation("R") == i.Relation("R") {
		t.Fatal("write after Snapshot must copy-on-write")
	}
	if snap.Relation("R").Len() != 2 {
		t.Fatalf("snapshot grew: Len = %d", snap.Relation("R").Len())
	}
	if i.Relation("R").Len() != 3 || i.Relation("R").Frozen() {
		t.Fatalf("writer side: Len = %d frozen = %v", i.Relation("R").Len(), i.Relation("R").Frozen())
	}
	// New relations on the writer side never appear in the snapshot.
	i.Add("S", tup(value.PathOf("x")))
	if snap.Relation("S") != nil {
		t.Fatal("snapshot sees a relation created after it was taken")
	}
}

func TestFrozenRelationRejectsWrites(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a")))
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a frozen relation must panic")
		}
	}()
	r.Add(tup(value.PathOf("b")))
}

func TestSnapshotConcurrentReadsDuringWrites(t *testing.T) {
	// Snapshot readers (including lazy index builds) proceed while the
	// owning instance keeps being written. Run with -race in CI.
	i := New()
	for k := 0; k < 64; k++ {
		i.Add("R", tup(value.PathOf("n"+fmt.Sprint(k)), value.PathOf("n"+fmt.Sprint(k+1))))
	}
	snap := i.Snapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := snap.Relation("R")
		for k := 0; k < 64; k++ {
			if !r.Contains(tup(value.PathOf("n"+fmt.Sprint(k)), value.PathOf("n"+fmt.Sprint(k+1)))) {
				panic("snapshot lost a fact")
			}
			if got := r.Index(0).Lookup(value.PathOf("n" + fmt.Sprint(k))); len(got) != 1 {
				panic("snapshot index lookup failed")
			}
		}
	}()
	for k := 0; k < 64; k++ {
		i.Add("R", tup(value.PathOf("m"+fmt.Sprint(k)), value.PathOf("m"+fmt.Sprint(k+1))))
	}
	<-done
	if snap.Relation("R").Len() != 64 {
		t.Fatalf("snapshot Len = %d, want 64", snap.Relation("R").Len())
	}
}

func TestRemoveAndPut(t *testing.T) {
	i := New()
	i.Add("R", tup(value.PathOf("a")))
	snap := i.Snapshot()
	i.Remove("R")
	if i.Relation("R") != nil {
		t.Fatal("Remove left the relation behind")
	}
	if snap.Relation("R") == nil || snap.Relation("R").Len() != 1 {
		t.Fatal("Remove must not disturb snapshots")
	}
	i.Put("R", snap.Relation("R"))
	i.Add("R", tup(value.PathOf("b"))) // frozen seed: Ensure clones
	if snap.Relation("R").Len() != 1 || i.Relation("R").Len() != 2 {
		t.Fatalf("seed reinstate: snap %d, inst %d", snap.Relation("R").Len(), i.Relation("R").Len())
	}
}

func TestRelationDeleteTombstones(t *testing.T) {
	r := NewRelation(1)
	a, b, c := tup(value.PathOf("a")), tup(value.PathOf("b")), tup(value.PathOf("c"))
	for _, x := range []Tuple{a, b, c} {
		r.Add(x)
	}
	if !r.Delete(b) {
		t.Fatal("deleting a present tuple must report true")
	}
	if r.Delete(b) {
		t.Fatal("double delete must report false")
	}
	if r.Contains(b) {
		t.Fatal("deleted tuple still a member")
	}
	if r.Len() != 2 || r.Size() != 3 || r.Tombstones() != 1 {
		t.Fatalf("Len/Size/Tombstones = %d/%d/%d, want 2/3/1", r.Len(), r.Size(), r.Tombstones())
	}
	if r.Live(1) || !r.Live(0) || !r.Live(2) {
		t.Fatal("Live disagrees with the tombstone")
	}
	// Tuples and Sorted see live facts only; TupleAt still addresses the
	// tombstoned position.
	if got := r.Tuples(); len(got) != 2 {
		t.Fatalf("Tuples = %v", got)
	}
	if got := r.Sorted(); len(got) != 2 || !got[0].Equal(a) || !got[1].Equal(c) {
		t.Fatalf("Sorted = %v", got)
	}
	if !r.TupleAt(1).Equal(b) {
		t.Fatal("TupleAt must keep addressing the tombstoned position")
	}
	// Re-adding a deleted tuple appends at a fresh position.
	if !r.Add(b) {
		t.Fatal("re-add after delete must be new")
	}
	if r.Len() != 3 || r.Size() != 4 || !r.Live(3) {
		t.Fatalf("after re-add: Len/Size = %d/%d", r.Len(), r.Size())
	}
}

func TestRelationDeleteEqualAndIndexes(t *testing.T) {
	r := NewRelation(2)
	for k := 0; k < 8; k++ {
		r.Add(tup(value.PathOf(fmt.Sprint("k", k)), value.PathOf("v")))
	}
	// Build both index kinds, then delete: lookups must skip the
	// tombstone while the *All variants keep seeing it.
	key := value.PathOf("k3")
	if got := r.Index(0).Lookup(key); len(got) != 1 {
		t.Fatalf("pre-delete Lookup = %v", got)
	}
	if got := r.PrefixLookup(0, key); len(got) != 1 {
		t.Fatalf("pre-delete PrefixLookup = %v", got)
	}
	if !r.Delete(tup(key, value.PathOf("v"))) {
		t.Fatal("delete failed")
	}
	if got := r.Index(0).Lookup(key); len(got) != 0 {
		t.Fatalf("Lookup must skip tombstones, got %v", got)
	}
	if got := r.Index(0).LookupAll(key); len(got) != 1 {
		t.Fatalf("LookupAll must include tombstones, got %v", got)
	}
	if got := r.PrefixLookup(0, key); len(got) != 0 {
		t.Fatalf("PrefixLookup must skip tombstones, got %v", got)
	}
	if got := r.PrefixLookupAll(0, key); len(got) != 1 {
		t.Fatalf("PrefixLookupAll must include tombstones, got %v", got)
	}
	// Set equality ignores tombstones.
	s := NewRelation(2)
	for k := 0; k < 8; k++ {
		if k == 3 {
			continue
		}
		s.Add(tup(value.PathOf(fmt.Sprint("k", k)), value.PathOf("v")))
	}
	if !r.Equal(s) || !s.Equal(r) {
		t.Fatal("Equal must compare live tuples only")
	}
}

func TestRelationCloneCompactsEnsurePreserves(t *testing.T) {
	i := New()
	for k := 0; k < 8; k++ {
		i.Add("R", tup(value.PathOf(fmt.Sprint("x", k))))
	}
	r := i.Relation("R")
	r.Delete(tup(value.PathOf("x2")))
	r.Delete(tup(value.PathOf("x5")))

	// Clone compacts: dense positions, no tombstones, same set.
	cl := r.Clone()
	if cl.Len() != 6 || cl.Size() != 6 || cl.Tombstones() != 0 {
		t.Fatalf("Clone: Len/Size/Tombstones = %d/%d/%d", cl.Len(), cl.Size(), cl.Tombstones())
	}
	if !cl.Equal(r) {
		t.Fatal("Clone changed the set")
	}

	// The Ensure write barrier preserves positions across the clone, so
	// delta windows recorded against the frozen original stay valid.
	snap := i.Snapshot()
	w := i.Ensure("R", 1)
	if w == r {
		t.Fatal("Ensure must clone the frozen relation")
	}
	if w.Size() != r.Size() || w.Len() != r.Len() || w.Tombstones() != 2 {
		t.Fatalf("Ensure clone: Len/Size/Tombstones = %d/%d/%d, want %d/%d/2",
			w.Len(), w.Size(), w.Tombstones(), r.Len(), r.Size())
	}
	for pos := 0; pos < r.Size(); pos++ {
		if w.Live(pos) != r.Live(pos) || !w.TupleAt(pos).Equal(r.TupleAt(pos)) {
			t.Fatalf("position %d diverged across the write barrier", pos)
		}
	}
	if snap.Relation("R").Len() != 6 {
		t.Fatal("snapshot disturbed")
	}

	// In-place compaction renumbers and drops secondary indexes.
	w.Compact()
	if w.Len() != 6 || w.Size() != 6 || w.Tombstones() != 0 {
		t.Fatalf("Compact: Len/Size/Tombstones = %d/%d/%d", w.Len(), w.Size(), w.Tombstones())
	}
	if got := w.Index(0).Lookup(value.PathOf("x7")); len(got) != 1 || got[0] >= 6 {
		t.Fatalf("post-compact index lookup = %v", got)
	}
}

func TestRelationDeleteFrozenPanics(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a")))
	r.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Delete on a frozen relation must panic")
		}
	}()
	r.Delete(tup(value.PathOf("a")))
}

func TestInstanceDeleteGoesThroughEnsure(t *testing.T) {
	i := New()
	i.Add("R", tup(value.PathOf("a")))
	i.Add("R", tup(value.PathOf("b")))
	snap := i.Snapshot() // freezes R
	if !i.Delete("R", tup(value.PathOf("a"))) {
		t.Fatal("Delete of a present fact must report true")
	}
	if i.Delete("R", tup(value.PathOf("a"))) || i.Delete("Nope", tup(value.PathOf("a"))) {
		t.Fatal("absent fact / absent relation must report false")
	}
	if i.Relation("R").Len() != 1 {
		t.Fatal("deletion lost")
	}
	if snap.Relation("R").Len() != 2 {
		t.Fatal("snapshot must not observe the deletion")
	}
}

func TestRestrictSharesFrozen(t *testing.T) {
	i := New()
	i.Add("R", tup(value.PathOf("a")))
	i.Add("S", tup(value.PathOf("b")))
	i.Relation("R").Freeze()
	out := i.Restrict("R", "S", "Nope")
	if out.Relation("R") != i.Relation("R") {
		t.Fatal("Restrict must share frozen relations")
	}
	if out.Relation("S") == i.Relation("S") {
		t.Fatal("Restrict must clone unfrozen relations")
	}
	if out.Relation("Nope") != nil {
		t.Fatal("Restrict invented a relation")
	}
	// Writing to the restriction goes through the barrier and leaves the
	// original untouched.
	out.Add("R", tup(value.PathOf("c")))
	if i.Relation("R").Len() != 1 || out.Relation("R").Len() != 2 {
		t.Fatalf("write-through: orig %d, restricted %d", i.Relation("R").Len(), out.Relation("R").Len())
	}
}
