package instance

import (
	"testing"

	"seqlog/internal/value"
)

func tup(paths ...value.Path) Tuple { return paths }

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(1)
	if !r.Add(tup(value.PathOf("a", "b"))) {
		t.Fatal("first add must be new")
	}
	if r.Add(tup(value.PathOf("a", "b"))) {
		t.Fatal("duplicate add must report false")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(tup(value.PathOf("a", "b"))) {
		t.Fatal("Contains broken")
	}
}

func TestRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	NewRelation(2).Add(tup(value.PathOf("a")))
}

func TestTupleKeyDistinguishesComponents(t *testing.T) {
	a := tup(value.PathOf("a"), value.PathOf("b"))
	b := tup(value.PathOf("a", "b"), value.Epsilon)
	c := tup(value.Epsilon, value.PathOf("a", "b"))
	if a.Key() == b.Key() || b.Key() == c.Key() || a.Key() == c.Key() {
		t.Fatal("tuple keys collide")
	}
}

func TestInstanceEqualAndDiff(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	i.AddPath("R", value.PathOf("b"))
	j := New()
	j.AddPath("R", value.PathOf("b"))
	j.AddPath("R", value.PathOf("a"))
	if !i.Equal(j) {
		t.Fatal("order must not matter")
	}
	j.AddPath("S", value.PathOf("c"))
	if i.Equal(j) {
		t.Fatal("extra relation not detected")
	}
	if Diff(i, j) == "" {
		t.Fatal("Diff must report difference")
	}
	// Empty relations equal absent ones.
	k := i.Clone()
	k.Ensure("Z", 1)
	if !i.Equal(k) || Diff(i, k) != "" {
		t.Fatal("empty relation must equal absent relation")
	}
}

func TestInstanceFlatMonadic(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a", "b"))
	if !i.IsFlat() || !i.IsMonadic() {
		t.Fatal("flat monadic misdetected")
	}
	i.AddPath("P", value.Path{value.Pack(value.PathOf("a"))})
	if i.IsFlat() {
		t.Fatal("packed value not detected")
	}
	i.Add("D", tup(value.PathOf("a"), value.PathOf("b")))
	if i.IsMonadic() {
		t.Fatal("binary relation not detected")
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	j := i.Clone()
	j.AddPath("R", value.PathOf("b"))
	if i.Relation("R").Len() != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestMergeRestrictFacts(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a"))
	j := New()
	j.AddPath("R", value.PathOf("b"))
	j.AddPath("S", value.PathOf("c"))
	i.Merge(j)
	if i.Facts() != 3 {
		t.Fatalf("Facts = %d", i.Facts())
	}
	r := i.Restrict("S")
	if r.Facts() != 1 || r.Relation("R") != nil {
		t.Fatal("Restrict broken")
	}
}

func TestSortedDeterministic(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("b")))
	r.Add(tup(value.PathOf("a")))
	r.Add(tup(value.PathOf("a", "a")))
	s := r.Sorted()
	if s[0].String() != "(a)" || s[1].String() != "(a.a)" || s[2].String() != "(b)" {
		t.Fatalf("Sorted = %v", s)
	}
}

func TestMaxPathLen(t *testing.T) {
	i := New()
	i.AddPath("R", value.PathOf("a", "b", "c"))
	i.AddFact("A")
	if i.MaxPathLen() != 3 {
		t.Fatalf("MaxPathLen = %d", i.MaxPathLen())
	}
}
