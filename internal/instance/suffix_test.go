package instance

import (
	"fmt"
	"sync"
	"testing"

	"seqlog/internal/value"
)

func TestSuffixLookup(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a", "b", "c")))
	r.Add(tup(value.PathOf("b", "c")))
	r.Add(tup(value.PathOf("c", "b")))
	r.Add(tup(value.PathOf("c")))
	got := r.SuffixLookup(0, value.PathOf("c"))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("SuffixLookup(c) = %v", got)
	}
	got = r.SuffixLookup(0, value.PathOf("b", "c"))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SuffixLookup(b.c) = %v", got)
	}
	// Tuples shorter than the suffix never match.
	if got := r.SuffixLookup(0, value.PathOf("a", "b", "c", "d")); len(got) != 0 {
		t.Fatalf("over-long suffix = %v", got)
	}
	// Catch-up after Add.
	r.Add(tup(value.PathOf("x", "b", "c")))
	if got := r.SuffixLookup(0, value.PathOf("b", "c")); len(got) != 3 || got[2] != 4 {
		t.Fatalf("post-Add SuffixLookup(b.c) = %v", got)
	}
	// Prefix and suffix indexes of the same (col, len) are independent:
	// a.b.c starts with a.b but does not end with it.
	if got := r.PrefixLookup(0, value.PathOf("a", "b")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("PrefixLookup(a.b) = %v", got)
	}
	if got := r.SuffixLookup(0, value.PathOf("a", "b")); len(got) != 0 {
		t.Fatalf("SuffixLookup(a.b) = %v", got)
	}
}

func TestSuffixLookupColumnOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range suffix column must panic")
		}
	}()
	NewRelation(1).SuffixLookup(1, value.PathOf("a"))
}

func TestSuffixLookupEmptySuffixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty suffix probe must panic (caller should scan)")
		}
	}()
	NewRelation(1).SuffixLookup(0, nil)
}

// TestSuffixLookupTombstones: deletions filter out of SuffixLookup
// while SuffixLookupAll keeps seeing them (the DRed maintainer probes
// overdeleted facts through the *All variants).
func TestSuffixLookupTombstones(t *testing.T) {
	r := NewRelation(1)
	r.Add(tup(value.PathOf("a", "z")))
	r.Add(tup(value.PathOf("b", "z")))
	if got := r.SuffixLookup(0, value.PathOf("z")); len(got) != 2 {
		t.Fatalf("pre-delete SuffixLookup = %v", got)
	}
	if !r.Delete(tup(value.PathOf("a", "z"))) {
		t.Fatal("delete failed")
	}
	if got := r.SuffixLookup(0, value.PathOf("z")); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SuffixLookup must skip tombstones, got %v", got)
	}
	if got := r.SuffixLookupAll(0, value.PathOf("z")); len(got) != 2 {
		t.Fatalf("SuffixLookupAll must include tombstones, got %v", got)
	}
	// Re-adding appends at a fresh position; the index catches up and
	// the live probe sees exactly the live copies.
	r.Add(tup(value.PathOf("a", "z")))
	if got := r.SuffixLookup(0, value.PathOf("z")); len(got) != 2 || got[1] != 2 {
		t.Fatalf("post-re-add SuffixLookup = %v", got)
	}
}

// TestSuffixLookupCompact: Compact drops the lazily built suffix
// indexes along with the other secondary indexes; probes after it
// rebuild against the renumbered tuple log.
func TestSuffixLookupCompact(t *testing.T) {
	r := NewRelation(1)
	for k := 0; k < 8; k++ {
		r.Add(tup(value.PathOf(fmt.Sprint("x", k), "end")))
	}
	if got := r.SuffixLookup(0, value.PathOf("end")); len(got) != 8 {
		t.Fatalf("SuffixLookup = %v", got)
	}
	r.Delete(tup(value.PathOf("x2", "end")))
	r.Delete(tup(value.PathOf("x5", "end")))
	r.Compact()
	if r.Size() != 6 || r.Tombstones() != 0 {
		t.Fatalf("Compact: Size/Tombstones = %d/%d", r.Size(), r.Tombstones())
	}
	got := r.SuffixLookup(0, value.PathOf("end"))
	if len(got) != 6 {
		t.Fatalf("post-compact SuffixLookup = %v", got)
	}
	for _, pos := range got {
		if pos >= 6 {
			t.Fatalf("post-compact position %d out of the compacted log", pos)
		}
	}
}

// TestSuffixLookupFrozenShared: building a suffix index is a logical
// read, so it is allowed on a frozen relation shared with snapshots,
// and the Ensure write barrier's clone does not inherit (or corrupt)
// the original's index.
func TestSuffixLookupFrozenShared(t *testing.T) {
	i := New()
	i.Add("R", tup(value.PathOf("a", "z")))
	i.Add("R", tup(value.PathOf("b", "z")))
	snap := i.Snapshot() // freezes R, shares storage
	shared := snap.Relation("R")
	if !shared.Frozen() {
		t.Fatal("snapshot relation must be frozen")
	}
	if got := shared.SuffixLookup(0, value.PathOf("z")); len(got) != 2 {
		t.Fatalf("frozen SuffixLookup = %v", got)
	}
	// A write on the owning instance clones; the clone answers its own
	// suffix probes and the frozen original is undisturbed.
	i.Add("R", tup(value.PathOf("c", "z")))
	if got := i.Relation("R").SuffixLookup(0, value.PathOf("z")); len(got) != 3 {
		t.Fatalf("clone SuffixLookup = %v", got)
	}
	if got := shared.SuffixLookup(0, value.PathOf("z")); len(got) != 2 {
		t.Fatalf("frozen relation's index grew: %v", got)
	}
}

// TestSuffixLookupConcurrentLazyBuild hammers the lazy first build and
// catch-up from many goroutines against a frozen relation — the
// snapshot-serving pattern where concurrent readers race to create the
// same (col, len) suffix index. Run with -race in CI.
func TestSuffixLookupConcurrentLazyBuild(t *testing.T) {
	r := NewRelation(1)
	const n = 256
	for k := 0; k < n; k++ {
		r.Add(tup(value.PathOf(fmt.Sprint("x", k), "mid", fmt.Sprint("s", k%4))))
	}
	r.Freeze()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 64; k++ {
				suffix := value.PathOf(fmt.Sprint("s", k%4))
				if got := r.SuffixLookup(0, suffix); len(got) != n/4 {
					select {
					case errs <- fmt.Sprintf("goroutine %d: SuffixLookup(%s) = %d positions, want %d", g, suffix, len(got), n/4):
					default:
					}
					return
				}
				long := value.PathOf("mid", fmt.Sprint("s", k%4))
				if got := r.SuffixLookup(0, long); len(got) != n/4 {
					select {
					case errs <- fmt.Sprintf("goroutine %d: SuffixLookup(%s) = %d positions, want %d", g, long, len(got), n/4):
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
