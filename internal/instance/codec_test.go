package instance

import (
	"bytes"
	"testing"

	"seqlog/internal/value"
)

func codecInstance() *Instance {
	inst := New()
	inst.AddPath("E", value.PathOf("a", "b"))
	inst.AddPath("E", value.PathOf("b", "c"))
	inst.Add("Pair", Tuple{value.PathOf("x"), value.PathOf("y", "z")})
	inst.Add("Pair", Tuple{value.Epsilon, value.Path{value.Pack(value.PathOf("p", "q"))}})
	inst.AddFact("Flag")
	inst.Ensure("Empty", 3)
	return inst
}

func roundTrip(t *testing.T, inst *Instance) *Instance {
	t.Helper()
	enc := inst.AppendBinary(nil)
	got, rest, err := DecodeInstance(enc)
	if err != nil {
		t.Fatalf("DecodeInstance: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeInstance left %d bytes", len(rest))
	}
	return got
}

func TestInstanceCodecRoundTrip(t *testing.T) {
	inst := codecInstance()
	got := roundTrip(t, inst)
	if d := Diff(got, inst); d != "" {
		t.Fatalf("round trip differs: %s", d)
	}
	// Empty relations survive with their arity: schemas are state too.
	if r := got.Relation("Empty"); r == nil || r.Arity != 3 || r.Len() != 0 {
		t.Fatalf("empty relation lost or mangled: %+v", got.Relation("Empty"))
	}
}

// TestInstanceCodecCompactsTombstones: dead positions are maintenance
// residue, not facts — the encoder must skip them, and the decoded
// relation is dense.
func TestInstanceCodecCompactsTombstones(t *testing.T) {
	inst := codecInstance()
	inst.Delete("E", Tuple{value.PathOf("a", "b")})
	if inst.Relation("E").Tombstones() != 1 {
		t.Fatal("setup: expected a tombstone")
	}
	got := roundTrip(t, inst)
	if d := Diff(got, inst); d != "" {
		t.Fatalf("round trip differs: %s", d)
	}
	r := got.Relation("E")
	if r.Tombstones() != 0 || r.Size() != r.Len() || r.Len() != 1 {
		t.Fatalf("decoded relation not dense: size=%d len=%d tombs=%d", r.Size(), r.Len(), r.Tombstones())
	}
}

// TestInstanceCodecFrozenShared: encoding is a pure read, so a frozen,
// snapshot-shared relation encodes without a write-barrier clone and
// the snapshot keeps serving.
func TestInstanceCodecFrozenShared(t *testing.T) {
	inst := codecInstance()
	snap := inst.Snapshot() // freezes every relation
	got := roundTrip(t, inst)
	if d := Diff(got, snap); d != "" {
		t.Fatalf("frozen round trip differs from snapshot: %s", d)
	}
	if !inst.Relation("E").Frozen() {
		t.Fatal("encoding must not thaw or clone the shared relation")
	}
	// The decoded instance is independent and writable.
	if got.Relation("E").Frozen() {
		t.Fatal("decoded relations must start unfrozen")
	}
	got.AddPath("E", value.PathOf("new", "edge"))
	if snap.Relation("E").Len() != 2 {
		t.Fatal("writing the decoded copy disturbed the snapshot")
	}
}

// TestInstanceCodecReinterns: the stream carries atom texts (visible in
// the bytes) and decode goes through value.Intern, so values are
// canonical — Contains probes from freshly parsed facts hit.
func TestInstanceCodecReinterns(t *testing.T) {
	inst := New()
	inst.AddPath("R", value.PathOf("codec_reintern_marker"))
	enc := inst.AppendBinary(nil)
	if !bytes.Contains(enc, []byte("codec_reintern_marker")) {
		t.Fatalf("encoding does not carry atom text: %q", enc)
	}
	got, _, err := DecodeInstance(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has("R", Tuple{value.PathOf("codec_reintern_marker")}) {
		t.Fatal("decoded atom not canonical: membership probe missed")
	}
}

func TestInstanceCodecRejectsCorruption(t *testing.T) {
	enc := codecInstance().AppendBinary(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeInstance(enc[:i]); err == nil {
			t.Fatalf("truncation at byte %d decoded silently", i)
		}
	}
}
