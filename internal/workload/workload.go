// Package workload generates deterministic pseudo-random instances for
// the paper's application domains (§1): plain string collections,
// NFAs, graphs encoded as length-2 paths, event logs for process
// mining, and JSON-style item–year–value triples.
package workload

import (
	"fmt"
	"math/rand"

	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// Alphabet returns the first n lowercase letters (wrapping with
// numbered suffixes beyond 26).
func Alphabet(n int) []string {
	out := make([]string, n)
	for i := range out {
		if i < 26 {
			out[i] = string(rune('a' + i))
		} else {
			out[i] = fmt.Sprintf("s%d", i)
		}
	}
	return out
}

// Strings fills relation rel with count random flat strings of the
// given length over the alphabet.
func Strings(seed int64, rel string, count, length int, alphabet []string) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	inst := instance.New()
	inst.Ensure(rel, 1)
	for i := 0; i < count; i++ {
		p := make(value.Path, length)
		for k := range p {
			p[k] = value.Intern(alphabet[r.Intn(len(alphabet))])
		}
		inst.AddPath(rel, p)
	}
	return inst
}

// OnlyAs builds an instance for the only-a's query: count paths of the
// given length, half of them all-a's, half with one b planted.
func OnlyAs(seed int64, rel string, count, length int) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	inst := instance.New()
	inst.Ensure(rel, 1)
	for i := 0; i < count; i++ {
		p := make(value.Path, length)
		for k := range p {
			p[k] = value.Intern("a")
		}
		if i%2 == 1 && length > 0 {
			p[r.Intn(length)] = value.Intern("b")
		}
		inst.AddPath(rel, p)
	}
	return inst
}

// NFA builds the Example 2.1 EDB for the "even number of b's" NFA over
// {a, b} plus count random input strings of the given length.
func NFA(seed int64, count, length int) *instance.Instance {
	inst := Strings(seed, "R", count, length, []string{"a", "b"})
	inst.AddPath("N", value.PathOf("q0"))
	inst.AddPath("F", value.PathOf("q0"))
	add := func(q1, a, q2 string) {
		inst.Add("D", instance.Tuple{value.PathOf(q1), value.PathOf(a), value.PathOf(q2)})
	}
	add("q0", "a", "q0")
	add("q0", "b", "q1")
	add("q1", "a", "q1")
	add("q1", "b", "q0")
	return inst
}

// Graph builds a random directed graph on n nodes with the given edge
// count, encoded as length-2 paths in relation R (the §5.1.1
// encoding), always including nodes "a" and "b".
func Graph(seed int64, n, edges int) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	nodes := make([]string, n)
	for i := range nodes {
		switch i {
		case 0:
			nodes[i] = "a"
		case 1:
			nodes[i] = "b"
		default:
			nodes[i] = fmt.Sprintf("n%d", i)
		}
	}
	inst := instance.New()
	inst.Ensure("R", 1)
	for i := 0; i < edges; i++ {
		from := nodes[r.Intn(n)]
		to := nodes[r.Intn(n)]
		inst.AddPath("R", value.PathOf(from, to))
	}
	return inst
}

// Chain builds the path graph 0 -> 1 -> ... -> n as length-2 paths,
// with endpoints named a and b, so b is reachable from a in n steps.
func Chain(n int) *instance.Instance {
	inst := instance.New()
	inst.Ensure("R", 1)
	name := func(i int) string {
		switch i {
		case 0:
			return "a"
		case n:
			return "b"
		default:
			return fmt.Sprintf("n%d", i)
		}
	}
	for i := 0; i < n; i++ {
		inst.AddPath("R", value.PathOf(name(i), name(i+1)))
	}
	return inst
}

// EventLogs builds count logs of the given length over a small event
// vocabulary for the process-mining query; roughly half the logs
// satisfy "every 'complete order' is followed by 'receive payment'".
func EventLogs(seed int64, rel string, count, length int) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	events := []string{"create order", "complete order", "receive payment", "ship", "close"}
	inst := instance.New()
	inst.Ensure(rel, 1)
	for i := 0; i < count; i++ {
		p := make(value.Path, length)
		for k := range p {
			p[k] = value.Intern(events[r.Intn(len(events))])
		}
		if i%2 == 0 && length > 0 {
			// Make the log compliant: append a receive payment.
			p[length-1] = value.Intern("receive payment")
		}
		inst.AddPath(rel, p)
	}
	return inst
}

// Sales builds item–year–value triples as length-3 paths, the
// introduction's JSON example.
func Sales(seed int64, items, years int) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	inst := instance.New()
	inst.Ensure("Sales", 1)
	for i := 0; i < items; i++ {
		for y := 0; y < years; y++ {
			inst.AddPath("Sales", value.PathOf(
				fmt.Sprintf("item%d", i),
				fmt.Sprintf("year%d", 2020+y),
				fmt.Sprintf("%d", r.Intn(1000)),
			))
		}
	}
	return inst
}

// Repeated builds the singleton instance {rel(a^n)} used by the
// squaring and only-a's scaling experiments.
func Repeated(rel, atom string, n int) *instance.Instance {
	inst := instance.New()
	inst.Ensure(rel, 1)
	inst.AddPath(rel, value.Repeat(atom, n))
	return inst
}

// SubstringHaystack builds R with one haystack string of the given
// length and S with needles, for the Example 2.2 query.
func SubstringHaystack(seed int64, length, needles, needleLen int) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	alphabet := []string{"a", "b", "c"}
	inst := instance.New()
	inst.Ensure("R", 1)
	inst.Ensure("S", 1)
	hay := make(value.Path, length)
	for i := range hay {
		hay[i] = value.Intern(alphabet[r.Intn(len(alphabet))])
	}
	inst.AddPath("R", hay)
	for i := 0; i < needles; i++ {
		if length >= needleLen {
			start := r.Intn(length - needleLen + 1)
			inst.AddPath("S", hay[start:start+needleLen].Clone())
		}
	}
	return inst
}

// TwoJSONSets builds J1 and J2 path sets that are equal when equal is
// true and differ in one path otherwise (deep-equality example).
func TwoJSONSets(seed int64, paths, depth int, equal bool) *instance.Instance {
	r := rand.New(rand.NewSource(seed))
	keys := []string{"name", "age", "city", "zip", "id"}
	inst := instance.New()
	inst.Ensure("J1", 1)
	inst.Ensure("J2", 1)
	for i := 0; i < paths; i++ {
		p := make(value.Path, depth)
		for k := range p {
			p[k] = value.Intern(keys[r.Intn(len(keys))])
		}
		inst.AddPath("J1", p)
		inst.AddPath("J2", p)
	}
	if !equal {
		inst.AddPath("J2", value.PathOf("extra", "key"))
	}
	return inst
}
