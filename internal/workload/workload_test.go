package workload

import (
	"testing"

	"seqlog/internal/value"
)

func TestAlphabet(t *testing.T) {
	a := Alphabet(3)
	if len(a) != 3 || a[0] != "a" || a[2] != "c" {
		t.Fatalf("Alphabet = %v", a)
	}
	if len(Alphabet(30)) != 30 {
		t.Fatal("large alphabet broken")
	}
}

func TestStringsDeterministic(t *testing.T) {
	a := Strings(42, "R", 10, 5, Alphabet(2))
	b := Strings(42, "R", 10, 5, Alphabet(2))
	if !a.Equal(b) {
		t.Fatal("same seed must give same instance")
	}
	if a.Relation("R").Len() == 0 {
		t.Fatal("no strings generated")
	}
	for _, tu := range a.Relation("R").Tuples() {
		if len(tu[0]) != 5 {
			t.Fatalf("wrong length: %v", tu)
		}
	}
}

func TestOnlyAsHalfPositive(t *testing.T) {
	inst := OnlyAs(7, "R", 10, 4)
	alla := 0
	for _, tu := range inst.Relation("R").Tuples() {
		good := true
		for _, v := range tu[0] {
			if v != value.Intern("a") {
				good = false
			}
		}
		if good {
			alla++
		}
	}
	if alla == 0 || alla == inst.Relation("R").Len() {
		t.Fatalf("expected a mix, got %d/%d", alla, inst.Relation("R").Len())
	}
}

func TestNFAShape(t *testing.T) {
	inst := NFA(1, 5, 4)
	if inst.Relation("D").Len() != 4 || inst.Relation("D").Arity != 3 {
		t.Fatalf("D: %v", inst.Relation("D").Sorted())
	}
	if inst.Relation("N").Len() != 1 || inst.Relation("F").Len() != 1 {
		t.Fatal("N/F wrong")
	}
}

func TestGraphAndChain(t *testing.T) {
	g := Graph(3, 6, 10)
	for _, tu := range g.Relation("R").Tuples() {
		if len(tu[0]) != 2 {
			t.Fatalf("edge path length: %v", tu)
		}
	}
	c := Chain(5)
	if c.Relation("R").Len() != 5 {
		t.Fatalf("chain edges = %d", c.Relation("R").Len())
	}
}

func TestEventLogs(t *testing.T) {
	logs := EventLogs(9, "L", 8, 6)
	if logs.Relation("L").Len() == 0 {
		t.Fatal("no logs")
	}
}

func TestSales(t *testing.T) {
	s := Sales(11, 3, 4)
	if s.Relation("Sales").Len() != 12 {
		t.Fatalf("sales = %d", s.Relation("Sales").Len())
	}
	for _, tu := range s.Relation("Sales").Tuples() {
		if len(tu[0]) != 3 {
			t.Fatalf("triple length: %v", tu)
		}
	}
}

func TestRepeated(t *testing.T) {
	r := Repeated("R", "a", 4)
	if !r.Relation("R").Contains([]value.Path{value.Repeat("a", 4)}) {
		t.Fatal("Repeated broken")
	}
}

func TestSubstringHaystack(t *testing.T) {
	h := SubstringHaystack(13, 12, 3, 2)
	if h.Relation("R").Len() != 1 {
		t.Fatal("haystack missing")
	}
	if h.Relation("S").Len() == 0 {
		t.Fatal("needles missing")
	}
	hay := h.Relation("R").Tuples()[0][0]
	for _, tu := range h.Relation("S").Tuples() {
		found := false
		needle := tu[0]
		for i := 0; i+len(needle) <= len(hay); i++ {
			if hay[i : i+len(needle)].Equal(needle) {
				found = true
			}
		}
		if !found {
			t.Fatalf("needle %v not in haystack %v", needle, hay)
		}
	}
}

func TestTwoJSONSets(t *testing.T) {
	same := TwoJSONSets(15, 6, 3, true)
	if same.Relation("J1").Len() != same.Relation("J2").Len() {
		t.Fatal("equal sets differ")
	}
	diff := TwoJSONSets(15, 6, 3, false)
	if diff.Relation("J1").Len() == diff.Relation("J2").Len() {
		t.Fatal("different sets have same size")
	}
}
