package ast

import (
	"strings"
	"testing"

	"seqlog/internal/value"
)

// onlyAsEquation is Example 3.1's program in fragment {E}:
// S($x) :- R($x), a.$x = $x.a.
func onlyAsEquation() Program {
	return NewProgram(R(
		Pred{Name: "S", Args: []Expr{P("x")}},
		Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
		Pos(Eq{L: Cat(C("a"), P("x")), R: Cat(P("x"), C("a"))}),
	))
}

// onlyAsRecursion is Example 3.1's program in fragment {A, I, R}.
func onlyAsRecursion() Program {
	return NewProgram(
		R(Pred{Name: "T", Args: []Expr{P("x"), P("x")}},
			Pos(Pred{Name: "R", Args: []Expr{P("x")}})),
		R(Pred{Name: "T", Args: []Expr{P("x"), P("y")}},
			Pos(Pred{Name: "T", Args: []Expr{P("x"), Cat(P("y"), C("a"))}})),
		R(Pred{Name: "S", Args: []Expr{P("x")}},
			Pos(Pred{Name: "T", Args: []Expr{P("x"), Eps()}})),
	)
}

func TestExprString(t *testing.T) {
	e := Cat(C("a"), P("x"), Packed(Cat(A("y"), P("z"))))
	if got := e.String(); got != "a.$x.<@y.$z>" {
		t.Fatalf("String = %q", got)
	}
	if Eps().String() != "eps" {
		t.Fatalf("eps renders %q", Eps().String())
	}
}

func TestExprEvalGround(t *testing.T) {
	e := Cat(C("a"), Packed(Cat(C("b"), C("c"))))
	p := e.Eval()
	want := value.Path{value.Intern("a"), value.Pack(value.PathOf("b", "c"))}
	if !p.Equal(want) {
		t.Fatalf("Eval = %v, want %v", p, want)
	}
	if !e.IsGround() {
		t.Fatal("ground expression reported non-ground")
	}
	if Cat(C("a"), P("x")).IsGround() {
		t.Fatal("non-ground expression reported ground")
	}
}

func TestFromPathRoundtrip(t *testing.T) {
	p := value.Path{value.Intern("a"), value.Pack(value.Path{value.Intern("b"), value.Pack(value.Epsilon)})}
	e := FromPath(p)
	if !e.Eval().Equal(p) {
		t.Fatalf("roundtrip failed: %v -> %s -> %v", p, e, e.Eval())
	}
}

func TestSubstApply(t *testing.T) {
	s := Subst{PVar("x"): Cat(C("a"), P("y")), AVar("u"): C("b")}
	e := Cat(P("x"), A("u"), Packed(P("x")))
	got := s.Apply(e)
	want := Cat(C("a"), P("y"), C("b"), Packed(Cat(C("a"), P("y"))))
	if !got.Equal(want) {
		t.Fatalf("Apply = %s, want %s", got, want)
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{PVar("x"): Cat(P("y"), P("y"))}
	u := Subst{PVar("y"): C("a"), PVar("z"): C("b")}
	c := s.Compose(u)
	if !c.Apply(P("x")).Equal(Cat(C("a"), C("a"))) {
		t.Fatalf("compose apply x = %s", c.Apply(P("x")))
	}
	if !c.Apply(P("z")).Equal(C("b")) {
		t.Fatalf("compose should keep later bindings, got %s", c.Apply(P("z")))
	}
}

func TestSubstValid(t *testing.T) {
	if !(Subst{AVar("x"): C("a")}).Valid() {
		t.Error("atomic->const should be valid")
	}
	if !(Subst{AVar("x"): A("y")}).Valid() {
		t.Error("atomic->atomicvar should be valid")
	}
	if (Subst{AVar("x"): P("y")}).Valid() {
		t.Error("atomic->pathvar should be invalid")
	}
	if (Subst{AVar("x"): Cat(C("a"), C("b"))}).Valid() {
		t.Error("atomic->length2 should be invalid")
	}
}

func TestVarsOrderAndDedup(t *testing.T) {
	e := Cat(P("x"), A("y"), P("x"), Packed(P("z")))
	vs := e.Vars()
	if len(vs) != 3 || vs[0] != PVar("x") || vs[1] != AVar("y") || vs[2] != PVar("z") {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestLimitedVarsAndSafety(t *testing.T) {
	// S($x) :- R($x), a.$x = $x.a : safe.
	p := onlyAsEquation()
	r := p.Strata[0][0]
	if !r.Safe() {
		t.Fatal("Example 3.1 rule must be safe")
	}
	// S($x) :- a.$x = $x.a : unsafe (no positive predicate limits $x).
	unsafe := R(
		Pred{Name: "S", Args: []Expr{P("x")}},
		Pos(Eq{L: Cat(C("a"), P("x")), R: Cat(P("x"), C("a"))}),
	)
	if unsafe.Safe() {
		t.Fatal("rule with only an equation must be unsafe")
	}
	// Equation propagation: S($y) :- R($x), $x = $y.
	prop := R(
		Pred{Name: "S", Args: []Expr{P("y")}},
		Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
		Pos(Eq{L: P("x"), R: P("y")}),
	)
	if !prop.Safe() {
		t.Fatal("equation must propagate limitedness")
	}
	// Negated predicates do not limit: S($x) :- !R($x).
	neg := R(
		Pred{Name: "S", Args: []Expr{P("x")}},
		Neg(Pred{Name: "R", Args: []Expr{P("x")}}),
	)
	if neg.Safe() {
		t.Fatal("negated predicate must not make a rule safe")
	}
	// Chained propagation through two equations.
	chain := R(
		Pred{Name: "S", Args: []Expr{P("z")}},
		Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
		Pos(Eq{L: P("x"), R: Cat(P("y"), P("y"))}),
		Pos(Eq{L: P("y"), R: P("z")}),
	)
	if !chain.Safe() {
		t.Fatal("chained equations must propagate limitedness")
	}
}

func TestFeaturesDetection(t *testing.T) {
	e := onlyAsEquation()
	if f := e.Features(); f != FeatureSet(FeatEquations) {
		t.Fatalf("Example 3.1 (equation) features = %s, want {E}", f)
	}
	r := onlyAsRecursion()
	want := FeatureSet(FeatArity | FeatIntermediates | FeatRecursion)
	if f := r.Features(); f != want {
		t.Fatalf("Example 3.1 (recursion) features = %s, want {A, I, R}", f)
	}
}

func TestFeaturesPackingAndNegation(t *testing.T) {
	// Example 2.2's first rule: T($u.<$s>.$v) :- R($u.$s.$v), S($s).
	p := NewProgram(
		R(Pred{Name: "T", Args: []Expr{Cat(P("u"), Packed(P("s")), P("v"))}},
			Pos(Pred{Name: "R", Args: []Expr{Cat(P("u"), P("s"), P("v"))}}),
			Pos(Pred{Name: "S", Args: []Expr{P("s")}})),
		R(Pred{Name: "A"},
			Pos(Pred{Name: "T", Args: []Expr{P("x")}}),
			Pos(Pred{Name: "T", Args: []Expr{P("y")}}),
			Pos(Pred{Name: "T", Args: []Expr{P("z")}}),
			Neg(Eq{L: P("x"), R: P("y")}),
			Neg(Eq{L: P("x"), R: P("z")}),
			Neg(Eq{L: P("y"), R: P("z")})),
	)
	f := p.Features()
	for _, feat := range []Feature{FeatPacking, FeatNegation, FeatEquations, FeatIntermediates} {
		if !f.Has(feat) {
			t.Errorf("feature %v not detected in %s", feat, f)
		}
	}
	if f.Has(FeatArity) || f.Has(FeatRecursion) {
		t.Errorf("spurious features in %s", f)
	}
}

func TestRecursionDetection(t *testing.T) {
	if onlyAsEquation().HasRecursion() {
		t.Fatal("equation program is not recursive")
	}
	if !onlyAsRecursion().HasRecursion() {
		t.Fatal("T-loop program is recursive")
	}
	recs := onlyAsRecursion().RecursiveRelations()
	if len(recs) != 1 || recs[0] != "T" {
		t.Fatalf("RecursiveRelations = %v", recs)
	}
	// Mutual recursion.
	m := NewProgram(
		R(Pred{Name: "A", Args: []Expr{P("x")}}, Pos(Pred{Name: "B", Args: []Expr{P("x")}})),
		R(Pred{Name: "B", Args: []Expr{P("x")}}, Pos(Pred{Name: "A", Args: []Expr{P("x")}})),
	)
	if !m.HasRecursion() {
		t.Fatal("mutual recursion not detected")
	}
	if got := m.RecursiveRelations(); len(got) != 2 {
		t.Fatalf("RecursiveRelations = %v", got)
	}
}

func TestIDBAndEDBNames(t *testing.T) {
	p := onlyAsRecursion()
	if got := p.IDBNames(); strings.Join(got, ",") != "S,T" {
		t.Fatalf("IDB = %v", got)
	}
	if got := p.EDBNames(); strings.Join(got, ",") != "R" {
		t.Fatalf("EDB = %v", got)
	}
}

func TestAritiesConsistency(t *testing.T) {
	p := onlyAsRecursion()
	ar, err := p.Arities()
	if err != nil {
		t.Fatal(err)
	}
	if ar["T"] != 2 || ar["S"] != 1 || ar["R"] != 1 {
		t.Fatalf("arities = %v", ar)
	}
	bad := NewProgram(
		R(Pred{Name: "S", Args: []Expr{P("x")}}, Pos(Pred{Name: "R", Args: []Expr{P("x")}})),
		R(Pred{Name: "S", Args: []Expr{P("x"), P("y")}}, Pos(Pred{Name: "R", Args: []Expr{Cat(P("x"), P("y"))}})),
	)
	if _, err := bad.Arities(); err == nil {
		t.Fatal("inconsistent arities not detected")
	}
}

func TestValidateStratification(t *testing.T) {
	// ¬S used in the same stratum that defines S: invalid.
	bad := NewProgram(
		R(Pred{Name: "S", Args: []Expr{P("x")}}, Pos(Pred{Name: "R", Args: []Expr{P("x")}})),
		R(Pred{Name: "W", Args: []Expr{P("x")}},
			Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
			Neg(Pred{Name: "S", Args: []Expr{P("x")}})),
	)
	if err := bad.Validate(); err == nil {
		t.Fatal("unstratified negation not detected")
	}
	// Same rules in two strata: valid.
	good := Program{Strata: []Stratum{
		{R(Pred{Name: "S", Args: []Expr{P("x")}}, Pos(Pred{Name: "R", Args: []Expr{P("x")}}))},
		{R(Pred{Name: "W", Args: []Expr{P("x")}},
			Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
			Neg(Pred{Name: "S", Args: []Expr{P("x")}}))},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestAutoStratify(t *testing.T) {
	// The Theorem 5.5 program:
	// W(@x) :- R(@x.@y), !B(@y).   S(@x) :- R(@x.@y), !W(@x).
	rules := []Rule{
		R(Pred{Name: "W", Args: []Expr{A("x")}},
			Pos(Pred{Name: "R", Args: []Expr{Cat(A("x"), A("y"))}}),
			Neg(Pred{Name: "B", Args: []Expr{A("y")}})),
		R(Pred{Name: "S", Args: []Expr{A("x")}},
			Pos(Pred{Name: "R", Args: []Expr{Cat(A("x"), A("y"))}}),
			Neg(Pred{Name: "W", Args: []Expr{A("x")}})),
	}
	p, err := AutoStratify(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Strata) != 2 {
		t.Fatalf("strata = %d, want 2: %s", len(p.Strata), p)
	}
	if p.Strata[0][0].Head.Name != "W" || p.Strata[1][0].Head.Name != "S" {
		t.Fatalf("wrong stratum assignment: %s", p)
	}
	// Recursion through negation must fail.
	badRules := []Rule{
		R(Pred{Name: "A", Args: []Expr{P("x")}},
			Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
			Neg(Pred{Name: "B", Args: []Expr{P("x")}})),
		R(Pred{Name: "B", Args: []Expr{P("x")}},
			Pos(Pred{Name: "R", Args: []Expr{P("x")}}),
			Neg(Pred{Name: "A", Args: []Expr{P("x")}})),
	}
	if _, err := AutoStratify(badRules); err == nil {
		t.Fatal("recursion through negation must fail stratification")
	}
}

func TestSplitStrataSingleIDB(t *testing.T) {
	p := NewProgram(
		R(Pred{Name: "T", Args: []Expr{P("x")}}, Pos(Pred{Name: "R", Args: []Expr{P("x")}})),
		R(Pred{Name: "U", Args: []Expr{P("x")}}, Pos(Pred{Name: "T", Args: []Expr{P("x")}})),
		R(Pred{Name: "S", Args: []Expr{P("x")}}, Pos(Pred{Name: "U", Args: []Expr{P("x")}}), Pos(Pred{Name: "T", Args: []Expr{P("x")}})),
	)
	split, err := p.SplitStrataSingleIDB()
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Strata) != 3 {
		t.Fatalf("got %d strata, want 3: %s", len(split.Strata), split)
	}
	order := []string{split.Strata[0][0].Head.Name, split.Strata[1][0].Head.Name, split.Strata[2][0].Head.Name}
	if order[0] != "T" || order[1] != "U" || order[2] != "S" {
		t.Fatalf("topological order wrong: %v", order)
	}
	if _, err := onlyAsRecursion().SplitStrataSingleIDB(); err == nil {
		t.Fatal("recursive program must be rejected")
	}
}

func TestRenameRelations(t *testing.T) {
	p := onlyAsRecursion()
	q := p.RenameRelations(map[string]string{"T": "T1"})
	if got := q.IDBNames(); strings.Join(got, ",") != "S,T1" {
		t.Fatalf("rename IDB = %v", got)
	}
	// Original untouched.
	if got := p.IDBNames(); strings.Join(got, ",") != "S,T" {
		t.Fatalf("rename mutated original: %v", got)
	}
}

func TestNameGen(t *testing.T) {
	p := onlyAsRecursion()
	g := NewNameGen(p)
	n1 := g.Fresh("T")
	n2 := g.Fresh("T")
	if n1 == n2 {
		t.Fatal("Fresh returned duplicate")
	}
	if n1 == "T" || n2 == "T" {
		t.Fatal("Fresh returned used name")
	}
	v := g.FreshVar("x", false)
	if v.Name == "x" {
		t.Fatal("FreshVar returned used name")
	}
}

func TestFeatureSetString(t *testing.T) {
	f := FeatureSet(FeatEquations | FeatIntermediates | FeatNegation)
	if f.String() != "{E, I, N}" {
		t.Fatalf("String = %q", f)
	}
	var empty FeatureSet
	if empty.String() != "{}" {
		t.Fatalf("empty = %q", empty)
	}
	parsed, ok := ParseFeatureSet("{E, I, N}")
	if !ok || parsed != f {
		t.Fatalf("ParseFeatureSet failed: %v %v", parsed, ok)
	}
	parsed2, ok := ParseFeatureSet("ein")
	if !ok || parsed2 != f {
		t.Fatalf("ParseFeatureSet lowercase failed")
	}
	if _, ok := ParseFeatureSet("XYZ"); ok {
		t.Fatal("invalid fragment accepted")
	}
}

func TestRuleString(t *testing.T) {
	p := onlyAsEquation()
	got := p.Strata[0][0].String()
	want := "S($x) :- R($x), a.$x = $x.a."
	if got != want {
		t.Fatalf("rule renders %q, want %q", got, want)
	}
	fact := R(Pred{Name: "T", Args: []Expr{C("a")}})
	if fact.String() != "T(a)." {
		t.Fatalf("fact renders %q", fact.String())
	}
	negEq := R(Pred{Name: "A"}, Pos(Pred{Name: "T", Args: []Expr{P("x")}}), Neg(Eq{L: P("x"), R: P("y")}), Pos(Pred{Name: "T", Args: []Expr{P("y")}}))
	if !strings.Contains(negEq.String(), "$x != $y") {
		t.Fatalf("nonequality renders %q", negEq.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	p := onlyAsEquation()
	q := p.Clone()
	q.Strata[0][0].Head.Name = "Z"
	q.Strata[0][0].Body[0] = Pos(Pred{Name: "Q", Args: []Expr{P("w")}})
	if p.Strata[0][0].Head.Name != "S" {
		t.Fatal("Clone shares head")
	}
	if p.Strata[0][0].Body[0].Atom.(Pred).Name != "R" {
		t.Fatal("Clone shares body")
	}
}

func TestConstsCollection(t *testing.T) {
	p := onlyAsEquation()
	cs := p.Consts()
	if len(cs) != 1 || cs[0] != value.Intern("a") {
		t.Fatalf("Consts = %v", cs)
	}
}

func TestExprKeyDistinguishes(t *testing.T) {
	pairs := [][2]Expr{
		{C("ab"), Cat(C("a"), C("b"))},
		{P("x"), A("x")},
		{Packed(Eps()), Eps()},
		{Packed(C("a")), C("a")},
		{Cat(P("x"), P("y")), P("xy")},
	}
	for i, pr := range pairs {
		if pr[0].Key() == pr[1].Key() {
			t.Errorf("pair %d: %s and %s share key", i, pr[0], pr[1])
		}
	}
	if !Cat(C("a"), P("x")).Equal(Cat(C("a"), P("x"))) {
		t.Error("Equal broken")
	}
}
