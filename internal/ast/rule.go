package ast

import (
	"fmt"
	"sort"
	"strings"

	"seqlog/internal/value"
)

// Pred is a predicate P(e1,...,en) over path expressions.
type Pred struct {
	Name string
	Args []Expr
	// Pos is the source position of the predicate name (zero when the
	// predicate was built programmatically). It does not participate in
	// structural equality or rendering.
	Pos Position
}

// Eq is an equation e1 = e2 between path expressions (the E feature).
type Eq struct {
	L, R Expr
	// Pos is the source position where the equation starts (zero when
	// built programmatically).
	Pos Position
}

// Atom is a body atom: a predicate or an equation.
type Atom interface {
	isAtom()
	String() string
}

func (Pred) isAtom() {}
func (Eq) isAtom()   {}

// String renders the predicate.
func (p Pred) String() string {
	if len(p.Args) == 0 {
		return p.Name
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return p.Name + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the equation.
func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

// Literal is a positive or negated atom.
type Literal struct {
	Neg  bool
	Atom Atom
}

// Pos wraps an atom as a positive literal.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg wraps an atom as a negated literal (the N feature).
func Neg(a Atom) Literal { return Literal{Neg: true, Atom: a} }

// String renders the literal; negated equations print as nonequalities.
func (l Literal) String() string {
	if !l.Neg {
		return l.Atom.String()
	}
	if eq, ok := l.Atom.(Eq); ok {
		return eq.L.String() + " != " + eq.R.String()
	}
	return "!" + l.Atom.String()
}

// Rule is H ← B with H a predicate (the head) and B a finite set of
// literals (the body), represented as an ordered slice for determinism.
type Rule struct {
	Head Pred
	Body []Literal
}

// R is a convenience constructor for rules.
func R(head Pred, body ...Literal) Rule { return Rule{Head: head, Body: body} }

// String renders the rule; facts (empty bodies) print as "H.".
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Stratum is a finite set of safe rules (ordered for determinism).
type Stratum []Rule

// Program is a finite sequence of strata such that negation is
// stratified (paper §2.2); Validate checks the side conditions.
type Program struct {
	Strata []Stratum
}

// NewProgram builds a single-stratum program from rules.
func NewProgram(rules ...Rule) Program {
	return Program{Strata: []Stratum{rules}}
}

// Rules returns all rules of the program in stratum order.
func (p Program) Rules() []Rule {
	var out []Rule
	for _, s := range p.Strata {
		out = append(out, s...)
	}
	return out
}

// String renders the program with strata separated by "---" lines.
func (p Program) String() string {
	var b strings.Builder
	for i, s := range p.Strata {
		if i > 0 {
			b.WriteString("---\n")
		}
		for _, r := range s {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	out := Rule{Head: clonePred(r.Head)}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = Literal{Neg: l.Neg, Atom: cloneAtom(l.Atom)}
	}
	return out
}

func clonePred(p Pred) Pred {
	args := make([]Expr, len(p.Args))
	for i, a := range p.Args {
		args[i] = a.Clone()
	}
	return Pred{Name: p.Name, Args: args, Pos: p.Pos}
}

func cloneAtom(a Atom) Atom {
	switch x := a.(type) {
	case Pred:
		return clonePred(x)
	case Eq:
		return Eq{L: x.L.Clone(), R: x.R.Clone(), Pos: x.Pos}
	}
	return a
}

// Clone returns a deep copy of the program.
func (p Program) Clone() Program {
	out := Program{Strata: make([]Stratum, len(p.Strata))}
	for i, s := range p.Strata {
		cs := make(Stratum, len(s))
		for j, r := range s {
			cs[j] = r.Clone()
		}
		out.Strata[i] = cs
	}
	return out
}

// Vars returns the variables of the rule in first-occurrence order
// (head first, then body).
func (r Rule) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, a := range r.Head.Args {
		a.collectVars(&out, seen)
	}
	for _, l := range r.Body {
		switch x := l.Atom.(type) {
		case Pred:
			for _, a := range x.Args {
				a.collectVars(&out, seen)
			}
		case Eq:
			x.L.collectVars(&out, seen)
			x.R.collectVars(&out, seen)
		}
	}
	return out
}

// ApplySubst applies a substitution to every expression in the rule.
func (r Rule) ApplySubst(s Subst) Rule {
	out := Rule{Head: applySubstPred(r.Head, s)}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = Literal{Neg: l.Neg, Atom: applySubstAtom(l.Atom, s)}
	}
	return out
}

func applySubstPred(p Pred, s Subst) Pred {
	args := make([]Expr, len(p.Args))
	for i, a := range p.Args {
		args[i] = s.Apply(a)
	}
	return Pred{Name: p.Name, Args: args, Pos: p.Pos}
}

func applySubstAtom(a Atom, s Subst) Atom {
	switch x := a.(type) {
	case Pred:
		return applySubstPred(x, s)
	case Eq:
		return Eq{L: s.Apply(x.L), R: s.Apply(x.R), Pos: x.Pos}
	}
	return a
}

// LimitedVars computes the limited variables of the rule per §2.2:
// variables in positive predicates are limited, and if all variables on
// one side of a positive equation are limited then so are those on the
// other side.
func (r Rule) LimitedVars() map[Var]bool {
	limited := map[Var]bool{}
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if p, ok := l.Atom.(Pred); ok {
			for _, a := range p.Args {
				for _, v := range a.Vars() {
					limited[v] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Neg {
				continue
			}
			eq, ok := l.Atom.(Eq)
			if !ok {
				continue
			}
			lv, rv := eq.L.Vars(), eq.R.Vars()
			if allLimited(lv, limited) && !allLimited(rv, limited) {
				for _, v := range rv {
					limited[v] = true
				}
				changed = true
			}
			if allLimited(rv, limited) && !allLimited(lv, limited) {
				for _, v := range lv {
					limited[v] = true
				}
				changed = true
			}
		}
	}
	return limited
}

func allLimited(vs []Var, limited map[Var]bool) bool {
	for _, v := range vs {
		if !limited[v] {
			return false
		}
	}
	return true
}

// Safe reports whether all variables occurring in the rule are limited.
func (r Rule) Safe() bool {
	limited := r.LimitedVars()
	for _, v := range r.Vars() {
		if !limited[v] {
			return false
		}
	}
	return true
}

// IDBNames returns the relation names used in some head, sorted.
func (p Program) IDBNames() []string {
	set := map[string]bool{}
	for _, r := range p.Rules() {
		set[r.Head.Name] = true
	}
	return sortedKeys(set)
}

// EDBNames returns the relation names used in bodies but never in heads,
// sorted.
func (p Program) EDBNames() []string {
	idb := map[string]bool{}
	for _, r := range p.Rules() {
		idb[r.Head.Name] = true
	}
	set := map[string]bool{}
	for _, r := range p.Rules() {
		for _, l := range r.Body {
			if pr, ok := l.Atom.(Pred); ok && !idb[pr.Name] {
				set[pr.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

// RelationNames returns every relation name in the program, sorted.
func (p Program) RelationNames() []string {
	set := map[string]bool{}
	for _, r := range p.Rules() {
		set[r.Head.Name] = true
		for _, l := range r.Body {
			if pr, ok := l.Atom.(Pred); ok {
				set[pr.Name] = true
			}
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Arities returns the arity of every relation name, or an error if a
// name is used with inconsistent arities (schemas fix arities, §2.1).
// The error is a *PosError positioned at the conflicting use when the
// program was parsed from source.
func (p Program) Arities() (map[string]int, error) {
	out := map[string]int{}
	first := map[string]Position{}
	record := func(pr Pred) error {
		if prev, ok := out[pr.Name]; ok && prev != len(pr.Args) {
			msg := fmt.Sprintf("relation %s used with arities %d and %d", pr.Name, prev, len(pr.Args))
			if fp := first[pr.Name]; fp.IsValid() {
				msg += fmt.Sprintf(" (first used at %s)", fp)
			}
			return posErrorf(pr.Pos, "%s", msg)
		}
		if _, ok := out[pr.Name]; !ok {
			first[pr.Name] = pr.Pos
		}
		out[pr.Name] = len(pr.Args)
		return nil
	}
	for _, r := range p.Rules() {
		if err := record(r.Head); err != nil {
			return nil, err
		}
		for _, l := range r.Body {
			if pr, ok := l.Atom.(Pred); ok {
				if err := record(pr); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Consts returns the distinct atomic constants used in the program.
func (p Program) Consts() []value.Atom {
	set := map[value.Atom]bool{}
	collect := func(e Expr) { e.Consts(set) }
	for _, r := range p.Rules() {
		for _, a := range r.Head.Args {
			collect(a)
		}
		for _, l := range r.Body {
			switch x := l.Atom.(type) {
			case Pred:
				for _, a := range x.Args {
					collect(a)
				}
			case Eq:
				collect(x.L)
				collect(x.R)
			}
		}
	}
	out := make([]value.Atom, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Text() < out[j].Text() })
	return out
}

// RenameRelations renames relation names throughout the program
// according to the mapping; unmapped names stay.
func (p Program) RenameRelations(m map[string]string) Program {
	out := p.Clone()
	ren := func(name string) string {
		if n, ok := m[name]; ok {
			return n
		}
		return name
	}
	for si, s := range out.Strata {
		for ri, r := range s {
			r.Head.Name = ren(r.Head.Name)
			for li, l := range r.Body {
				if pr, ok := l.Atom.(Pred); ok {
					pr.Name = ren(pr.Name)
					r.Body[li] = Literal{Neg: l.Neg, Atom: pr}
				}
			}
			out.Strata[si][ri] = r
		}
	}
	return out
}
