package ast

import "fmt"

// Pos is a 1-based source position. The parser stamps every predicate
// and equation it builds with the position of its first token;
// programs built programmatically carry the zero Pos, which renders as
// "-" and reports false from IsValid. Positions ride along through
// Clone, substitution, and renaming, so diagnostics computed on a
// rewritten program still point at the source that produced it.
type Position struct {
	Line, Col int
}

// IsValid reports whether the position was set (parsed source).
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the zero Pos.
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// PosError is an error carrying a source position, used by Validate,
// Arities and AutoStratify so that structural errors report
// "line:col: msg" exactly like lexer and parser errors do. The
// position may be the zero Pos for programmatically built programs;
// then only the message prints.
type PosError struct {
	Pos Position
	Msg string
}

// Error implements error.
func (e *PosError) Error() string {
	if e.Pos.IsValid() {
		return e.Pos.String() + ": " + e.Msg
	}
	return e.Msg
}

// posErrorf builds a PosError with a formatted message.
func posErrorf(pos Position, format string, args ...any) *PosError {
	return &PosError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
