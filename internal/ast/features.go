package ast

import "strings"

// Feature is one of the six language features of Section 3.
type Feature uint8

// The features, in the paper's lettering.
const (
	FeatArity         Feature = 1 << iota // A: some predicate of arity > 1
	FeatEquations                         // E: some equation
	FeatIntermediates                     // I: at least two IDB relation names
	FeatNegation                          // N: some negated atom
	FeatPacking                           // P: some <e> in a rule
	FeatRecursion                         // R: a cycle in the dependency graph
)

// FeatureSet is a fragment: a subset of the six features.
type FeatureSet uint8

// AllFeatures is the full fragment Φ = {A, E, I, N, P, R}.
const AllFeatures FeatureSet = FeatureSet(FeatArity | FeatEquations | FeatIntermediates | FeatNegation | FeatPacking | FeatRecursion)

// Has reports whether the fragment contains the feature.
func (f FeatureSet) Has(x Feature) bool { return f&FeatureSet(x) != 0 }

// With returns the fragment extended with the feature.
func (f FeatureSet) With(x Feature) FeatureSet { return f | FeatureSet(x) }

// Without returns the fragment with the feature removed.
func (f FeatureSet) Without(x Feature) FeatureSet { return f &^ FeatureSet(x) }

// Union returns the union of two fragments.
func (f FeatureSet) Union(g FeatureSet) FeatureSet { return f | g }

// SubsetOf reports whether f ⊆ g as sets of features.
func (f FeatureSet) SubsetOf(g FeatureSet) bool { return f&^g == 0 }

// String renders the fragment in the paper's notation, e.g. "{E, I, N}".
func (f FeatureSet) String() string {
	var parts []string
	for _, fl := range []struct {
		f Feature
		s string
	}{
		{FeatArity, "A"}, {FeatEquations, "E"}, {FeatIntermediates, "I"},
		{FeatNegation, "N"}, {FeatPacking, "P"}, {FeatRecursion, "R"},
	} {
		if f.Has(fl.f) {
			parts = append(parts, fl.s)
		}
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ParseFeatureSet parses fragments like "{E,I,N}", "EIN", or "" (empty).
func ParseFeatureSet(s string) (FeatureSet, bool) {
	var f FeatureSet
	for _, r := range s {
		switch r {
		case 'A', 'a':
			f = f.With(FeatArity)
		case 'E', 'e':
			f = f.With(FeatEquations)
		case 'I', 'i':
			f = f.With(FeatIntermediates)
		case 'N', 'n':
			f = f.With(FeatNegation)
		case 'P', 'p':
			f = f.With(FeatPacking)
		case 'R', 'r':
			f = f.With(FeatRecursion)
		case '{', '}', ',', ' ':
		default:
			return 0, false
		}
	}
	return f, true
}

// Features detects the fragment a program belongs to, per the
// definitions in Section 3: A (arity > 1), E (equations), I (≥ 2 IDB
// names), N (negated atoms), P (packing), R (dependency-graph cycle).
func (p Program) Features() FeatureSet {
	var f FeatureSet
	idb := map[string]bool{}
	for _, r := range p.Rules() {
		idb[r.Head.Name] = true
		if len(r.Head.Args) > 1 {
			f = f.With(FeatArity)
		}
		for _, a := range r.Head.Args {
			if a.HasPacking() {
				f = f.With(FeatPacking)
			}
		}
		for _, l := range r.Body {
			if l.Neg {
				f = f.With(FeatNegation)
			}
			switch x := l.Atom.(type) {
			case Pred:
				if len(x.Args) > 1 {
					f = f.With(FeatArity)
				}
				for _, a := range x.Args {
					if a.HasPacking() {
						f = f.With(FeatPacking)
					}
				}
			case Eq:
				f = f.With(FeatEquations)
				if x.L.HasPacking() || x.R.HasPacking() {
					f = f.With(FeatPacking)
				}
			}
		}
	}
	if len(idb) >= 2 {
		f = f.With(FeatIntermediates)
	}
	if p.HasRecursion() {
		f = f.With(FeatRecursion)
	}
	return f
}

// DependencyGraph returns the edges of the program's dependency graph:
// the nodes are IDB relation names and there is an edge from R1 to R2 if
// R2 occurs in the body of a rule with R1 in its head (paper §3, fn 2).
func (p Program) DependencyGraph() map[string][]string {
	idb := map[string]bool{}
	for _, r := range p.Rules() {
		idb[r.Head.Name] = true
	}
	edges := map[string]map[string]bool{}
	for _, r := range p.Rules() {
		if edges[r.Head.Name] == nil {
			edges[r.Head.Name] = map[string]bool{}
		}
		for _, l := range r.Body {
			if pr, ok := l.Atom.(Pred); ok && idb[pr.Name] {
				edges[r.Head.Name][pr.Name] = true
			}
		}
	}
	out := map[string][]string{}
	for from, tos := range edges {
		out[from] = sortedKeys(tos)
	}
	return out
}

// HasRecursion reports whether the dependency graph has a cycle
// (including self-loops); this is the R feature.
func (p Program) HasRecursion() bool {
	g := p.DependencyGraph()
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range g[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range g {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// SCCIDs computes the strongly connected components of the dependency
// graph: a map from each IDB relation name to a component id. Two
// names share an id iff each is reachable from the other. Ids are
// assigned deterministically but carry no meaning beyond equality.
func (p Program) SCCIDs() map[string]int { return sccIDs(p.DependencyGraph()) }

func sccIDs(g map[string][]string) map[string]int {
	// Tarjan SCC, recursive (program dependency graphs are small).
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := 0
	ids := map[string]int{}
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				ids[w] = comp
				if w == v {
					break
				}
			}
			comp++
		}
	}
	nodes := make([]string, 0, len(g))
	for n := range g {
		nodes = append(nodes, n)
	}
	// Deterministic visit order.
	sortStrings(nodes)
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return ids
}

// RecursiveRelations returns the IDB relation names on some dependency
// cycle, sorted. A stratum's rules are "recursive" when their heads are
// among these.
func (p Program) RecursiveRelations() []string {
	g := p.DependencyGraph()
	ids := sccIDs(g)
	size := map[int]int{}
	for _, id := range ids {
		size[id]++
	}
	out := map[string]bool{}
	for n, id := range ids {
		if size[id] > 1 {
			out[n] = true
			continue
		}
		for _, m := range g[n] {
			if m == n { // self-loop
				out[n] = true
			}
		}
	}
	return sortedKeys(out)
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
