package ast

import (
	"fmt"
	"strconv"
)

// Validate checks the well-formedness conditions of Section 2.2:
// every rule is safe, relation arities are consistent, and negation is
// stratified — when a negated predicate ¬P occurs in some stratum, no
// rule in that stratum or a later one has P in its head. Errors are
// *PosError values positioned at the offending rule or atom when the
// program was parsed from source.
func (p Program) Validate() error {
	if _, err := p.Arities(); err != nil {
		return err
	}
	for si, s := range p.Strata {
		for ri, r := range s {
			if !r.Safe() {
				return posErrorf(r.Head.Pos, "stratum %d rule %d is unsafe: %s", si+1, ri+1, r)
			}
		}
	}
	// headFrom[i] = names used as heads in stratum i or later.
	headFrom := make([]map[string]bool, len(p.Strata)+1)
	headFrom[len(p.Strata)] = map[string]bool{}
	for i := len(p.Strata) - 1; i >= 0; i-- {
		m := map[string]bool{}
		for n := range headFrom[i+1] {
			m[n] = true
		}
		for _, r := range p.Strata[i] {
			m[r.Head.Name] = true
		}
		headFrom[i] = m
	}
	for si, s := range p.Strata {
		for _, r := range s {
			for _, l := range r.Body {
				if !l.Neg {
					continue
				}
				if pr, ok := l.Atom.(Pred); ok && headFrom[si][pr.Name] {
					return posErrorf(pr.Pos, "stratum %d: negated predicate %s is defined in this or a later stratum (negation not stratified)", si+1, pr.Name)
				}
			}
		}
	}
	return nil
}

// NegationCycleWitness finds a negated body atom whose predicate is in
// the same dependency-graph strongly connected component as the rule's
// head — the witness that no stratification exists (recursion through
// negation). It returns the zero Pred and false when every negation
// leaves its component.
func NegationCycleWitness(rules []Rule) (head string, atom Pred, ok bool) {
	g := dependencyGraphOf(rules)
	ids := sccIDs(g)
	for _, r := range rules {
		hid, hok := ids[r.Head.Name]
		if !hok {
			continue
		}
		for _, l := range r.Body {
			if !l.Neg {
				continue
			}
			if pr, isPred := l.Atom.(Pred); isPred {
				if pid, pok := ids[pr.Name]; pok && pid == hid {
					return r.Head.Name, pr, true
				}
			}
		}
	}
	return "", Pred{}, false
}

func dependencyGraphOf(rules []Rule) map[string][]string {
	return Program{Strata: []Stratum{rules}}.DependencyGraph()
}

// AutoStratify arranges a flat list of rules into a minimal sequence of
// strata with stratified negation, or fails when no stratification
// exists (a cycle through negation). The failure is a *PosError
// positioned at a negated atom on the offending cycle when the rules
// were parsed from source.
func AutoStratify(rules []Rule) (Program, error) {
	prog, err := StratifyLevels(rules)
	if err != nil {
		return Program{}, err
	}
	if err := prog.Validate(); err != nil {
		return Program{}, fmt.Errorf("auto-stratification failed: %w", err)
	}
	return prog, nil
}

// StratifyLevels arranges rules into strata by the level algorithm
// alone, without validating rule safety: it fails only when no
// stratification exists (recursion through negation). Analysis
// tooling uses it to obtain a well-ordered program for diagnosis even
// when some rules are unsafe; evaluation goes through AutoStratify.
func StratifyLevels(rules []Rule) (Program, error) {
	idb := map[string]bool{}
	for _, r := range rules {
		idb[r.Head.Name] = true
	}
	// level[P] >= level[Q] for positive deps, >= level[Q]+1 for negative.
	level := map[string]int{}
	for n := range idb {
		level[n] = 0
	}
	maxIter := len(idb)*len(idb) + len(idb) + 2
	for iter := 0; ; iter++ {
		if iter > maxIter {
			if head, atom, ok := NegationCycleWitness(rules); ok {
				return Program{}, posErrorf(atom.Pos, "no stratification exists: recursion through negation (!%s is reachable from %s)", atom.Name, head)
			}
			return Program{}, fmt.Errorf("no stratification exists: recursion through negation")
		}
		changed := false
		for _, r := range rules {
			h := r.Head.Name
			for _, l := range r.Body {
				pr, ok := l.Atom.(Pred)
				if !ok || !idb[pr.Name] {
					continue
				}
				want := level[pr.Name]
				if l.Neg {
					want++
				}
				if level[h] < want {
					level[h] = want
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	strata := make([]Stratum, maxLevel+1)
	for _, r := range rules {
		l := level[r.Head.Name]
		strata[l] = append(strata[l], r)
	}
	// Drop empty strata (possible when levels are sparse).
	var filled []Stratum
	for _, s := range strata {
		if len(s) > 0 {
			filled = append(filled, s)
		}
	}
	if len(filled) == 0 {
		filled = []Stratum{{}}
	}
	return Program{Strata: filled}, nil
}

// SplitStrataSingleIDB refines a nonrecursive program so that every
// stratum has exactly one IDB head name, preserving semantics; the
// packing-elimination proof of Lemma 4.13 assumes this normal form.
func (p Program) SplitStrataSingleIDB() (Program, error) {
	if p.HasRecursion() {
		return Program{}, fmt.Errorf("SplitStrataSingleIDB requires a nonrecursive program")
	}
	var out []Stratum
	for _, s := range p.Strata {
		// Topologically order head names within the stratum by their
		// positive and negative dependencies restricted to the stratum.
		heads := map[string]bool{}
		for _, r := range s {
			heads[r.Head.Name] = true
		}
		deps := map[string]map[string]bool{}
		for _, r := range s {
			if deps[r.Head.Name] == nil {
				deps[r.Head.Name] = map[string]bool{}
			}
			for _, l := range r.Body {
				if pr, ok := l.Atom.(Pred); ok && heads[pr.Name] && pr.Name != r.Head.Name {
					deps[r.Head.Name][pr.Name] = true
				}
			}
		}
		order, err := topoOrder(heads, deps)
		if err != nil {
			return Program{}, err
		}
		for _, h := range order {
			var sub Stratum
			for _, r := range s {
				if r.Head.Name == h {
					sub = append(sub, r)
				}
			}
			out = append(out, sub)
		}
	}
	if len(out) == 0 {
		out = []Stratum{{}}
	}
	return Program{Strata: out}, nil
}

func topoOrder(nodes map[string]bool, deps map[string]map[string]bool) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(n string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("cyclic dependencies within stratum at %s", n)
		case 2:
			return nil
		}
		state[n] = 1
		for _, m := range sortedKeys(deps[n]) {
			if err := visit(m); err != nil {
				return err
			}
		}
		state[n] = 2
		order = append(order, n)
		return nil
	}
	for _, n := range sortedKeys(nodes) {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// NameGen generates fresh relation names and variables that do not
// collide with a set of used names.
type NameGen struct {
	used map[string]bool
	n    int
}

// NewNameGen builds a generator treating all relation names and variable
// names of the program as used.
func NewNameGen(p Program) *NameGen {
	g := &NameGen{used: map[string]bool{}}
	for _, n := range p.RelationNames() {
		g.used[n] = true
	}
	for _, r := range p.Rules() {
		for _, v := range r.Vars() {
			g.used[v.Name] = true
		}
	}
	return g
}

// Fresh returns a new name with the given prefix, never returned before
// and not used in the program.
func (g *NameGen) Fresh(prefix string) string {
	for {
		g.n++
		name := prefix + strconv.Itoa(g.n)
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}

// FreshVar returns a fresh path or atomic variable.
func (g *NameGen) FreshVar(prefix string, atomic bool) Var {
	return Var{Name: g.Fresh(prefix), Atomic: atomic}
}
