// Package ast defines the abstract syntax of Sequence Datalog programs
// from Section 2.2 of "Expressiveness within Sequence Datalog"
// (PODS 2021): path expressions over atomic variables (@x), path
// variables ($x), atomic-value constants, and packing (<e>); predicates,
// equations, literals, safe rules, strata, and programs.
package ast

import (
	"fmt"
	"strings"

	"seqlog/internal/value"
)

// Var is a variable: atomic variables range over atomic values, path
// variables over paths (paper §2.2).
type Var struct {
	Name   string
	Atomic bool
}

// String renders the variable with its sigil (@ for atomic, $ for path).
func (v Var) String() string {
	if v.Atomic {
		return "@" + v.Name
	}
	return "$" + v.Name
}

// AVar returns the atomic variable @name.
func AVar(name string) Var { return Var{Name: name, Atomic: true} }

// PVar returns the path variable $name.
func PVar(name string) Var { return Var{Name: name, Atomic: false} }

// Term is one element of a path expression: a constant atomic value, a
// variable occurrence, or a packed subexpression.
type Term interface {
	isTerm()
	String() string
	appendKey(b *strings.Builder)
}

// Const is an atomic-value constant occurring in an expression.
type Const struct {
	A value.Atom
}

func (Const) isTerm() {}

// String implements Term.
func (c Const) String() string { return value.Path{c.A}.String() }

// VarT is a variable occurrence in an expression.
type VarT struct {
	V Var
}

func (VarT) isTerm() {}

// String implements Term.
func (t VarT) String() string { return t.V.String() }

// Pack is a packed subexpression <e> (the P feature).
type Pack struct {
	E Expr
}

func (Pack) isTerm() {}

// String implements Term.
func (p Pack) String() string { return "<" + p.E.String() + ">" }

// Expr is a path expression: a finite concatenation of terms. The empty
// expression denotes ε.
type Expr []Term

// C builds a constant term expression from an atom text.
func C(atom string) Expr { return Expr{Const{A: value.Intern(atom)}} }

// A builds the expression consisting of the single atomic variable @name.
func A(name string) Expr { return Expr{VarT{V: AVar(name)}} }

// P builds the expression consisting of the single path variable $name.
func P(name string) Expr { return Expr{VarT{V: PVar(name)}} }

// Packed builds the expression <e>.
func Packed(e Expr) Expr { return Expr{Pack{E: e}} }

// Eps is the empty path expression ε.
func Eps() Expr { return Expr{} }

// Cat concatenates expressions, flattening into a single Expr.
func Cat(es ...Expr) Expr {
	n := 0
	for _, e := range es {
		n += len(e)
	}
	out := make(Expr, 0, n)
	for _, e := range es {
		out = append(out, e...)
	}
	return out
}

// FromPath converts a concrete path into the ground expression denoting it.
func FromPath(p value.Path) Expr {
	out := make(Expr, len(p))
	for i, v := range p {
		switch x := v.(type) {
		case value.Atom:
			out[i] = Const{A: x}
		case value.Packed:
			out[i] = Pack{E: FromPath(x.Unpack())}
		}
	}
	return out
}

// String renders the expression in dotted notation, ε as "eps".
func (e Expr) String() string {
	if len(e) == 0 {
		return "eps"
	}
	parts := make([]string, len(e))
	for i, t := range e {
		parts[i] = t.String()
	}
	return strings.Join(parts, ".")
}

// Key returns a canonical injective encoding of the expression, usable
// as a map key (e.g. for memoizing unification states).
func (e Expr) Key() string {
	var b strings.Builder
	e.appendKey(&b)
	return b.String()
}

func (e Expr) appendKey(b *strings.Builder) {
	for _, t := range e {
		t.appendKey(b)
	}
}

func (c Const) appendKey(b *strings.Builder) {
	text := c.A.Text()
	b.WriteByte('c')
	b.WriteString(fmt.Sprintf("%d:", len(text)))
	b.WriteString(text)
}

func (t VarT) appendKey(b *strings.Builder) {
	if t.V.Atomic {
		b.WriteByte('a')
	} else {
		b.WriteByte('p')
	}
	b.WriteString(fmt.Sprintf("%d:", len(t.V.Name)))
	b.WriteString(t.V.Name)
}

func (p Pack) appendKey(b *strings.Builder) {
	b.WriteByte('<')
	p.E.appendKey(b)
	b.WriteByte('>')
}

// Hash folds a structural hash of the expression into h, mirroring the
// Key encoding without allocating: equal expressions hash equally, and
// the per-kind tags keep constants, variable occurrences, and packing
// distinct. Constants contribute their atoms' cached interned hashes;
// distinct expressions may collide, so callers confirm with Equal.
func (e Expr) Hash(h uint64) uint64 {
	for _, t := range e {
		switch x := t.(type) {
		case Const:
			h = value.HashWord(h, x.A.Hash())
		case VarT:
			if x.V.Atomic {
				h = value.HashByte(h, 0x04)
			} else {
				h = value.HashByte(h, 0x05)
			}
			for i := 0; i < len(x.V.Name); i++ {
				h = value.HashByte(h, x.V.Name[i])
			}
			h = value.HashByte(h, 0x06)
		case Pack:
			h = value.HashByte(h, 0x07)
			h = x.E.Hash(h)
			h = value.HashByte(h, 0x08)
		}
	}
	return h
}

// Equal reports syntactic equality of expressions.
func (e Expr) Equal(f Expr) bool {
	if len(e) != len(f) {
		return false
	}
	for i := range e {
		if !termEqual(e[i], f[i]) {
			return false
		}
	}
	return true
}

func termEqual(a, b Term) bool {
	switch x := a.(type) {
	case Const:
		y, ok := b.(Const)
		return ok && x.A == y.A
	case VarT:
		y, ok := b.(VarT)
		return ok && x.V == y.V
	case Pack:
		y, ok := b.(Pack)
		return ok && x.E.Equal(y.E)
	}
	return false
}

// IsGround reports whether the expression contains no variables.
func (e Expr) IsGround() bool {
	for _, t := range e {
		switch x := t.(type) {
		case VarT:
			return false
		case Pack:
			if !x.E.IsGround() {
				return false
			}
		}
	}
	return true
}

// HasPacking reports whether a packed subexpression <e> occurs anywhere.
func (e Expr) HasPacking() bool {
	for _, t := range e {
		if _, ok := t.(Pack); ok {
			return true
		}
	}
	return false
}

// Eval converts a ground expression to the path it denotes.
// It panics if the expression contains variables; use IsGround first.
func (e Expr) Eval() value.Path {
	out := make(value.Path, 0, len(e))
	for _, t := range e {
		switch x := t.(type) {
		case Const:
			out = append(out, x.A)
		case Pack:
			out = append(out, value.Pack(x.E.Eval()))
		case VarT:
			panic(fmt.Sprintf("ast: Eval on non-ground expression %s (variable %s)", e, x.V))
		}
	}
	return out
}

// Vars returns the variables of the expression in first-occurrence
// order, without duplicates.
func (e Expr) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	e.collectVars(&out, seen)
	return out
}

func (e Expr) collectVars(out *[]Var, seen map[Var]bool) {
	for _, t := range e {
		switch x := t.(type) {
		case VarT:
			if !seen[x.V] {
				seen[x.V] = true
				*out = append(*out, x.V)
			}
		case Pack:
			x.E.collectVars(out, seen)
		}
	}
}

// VarOccurrences counts occurrences of each variable (including inside
// packing). Used for the one-sided nonlinearity check of §4.3.1.
func (e Expr) VarOccurrences(into map[Var]int) {
	for _, t := range e {
		switch x := t.(type) {
		case VarT:
			into[x.V]++
		case Pack:
			x.E.VarOccurrences(into)
		}
	}
}

// Consts collects the distinct atomic constants occurring in the
// expression (including inside packing).
func (e Expr) Consts(into map[value.Atom]bool) {
	for _, t := range e {
		switch x := t.(type) {
		case Const:
			into[x.A] = true
		case Pack:
			x.E.Consts(into)
		}
	}
}

// Clone returns a deep copy of the expression.
func (e Expr) Clone() Expr {
	out := make(Expr, len(e))
	for i, t := range e {
		if p, ok := t.(Pack); ok {
			out[i] = Pack{E: p.E.Clone()}
		} else {
			out[i] = t
		}
	}
	return out
}

// Subst is a variable substitution: a partial map from variables to path
// expressions (paper §4.3.1). Atomic variables must map to expressions
// consisting of a single atomic term (a constant or an atomic variable).
type Subst map[Var]Expr

// Apply applies the substitution to an expression, leaving unmapped
// variables in place.
func (s Subst) Apply(e Expr) Expr {
	out := make(Expr, 0, len(e))
	for _, t := range e {
		switch x := t.(type) {
		case VarT:
			if rep, ok := s[x.V]; ok {
				out = append(out, rep...)
			} else {
				out = append(out, x)
			}
		case Pack:
			out = append(out, Pack{E: s.Apply(x.E)})
		default:
			out = append(out, t)
		}
	}
	return out
}

// Compose returns the substitution equivalent to applying s first and
// then t: (t ∘ s)(x) = t(s(x)), with t's own bindings kept for variables
// not bound by s.
func (s Subst) Compose(t Subst) Subst {
	out := Subst{}
	for v, e := range s {
		out[v] = t.Apply(e)
	}
	for v, e := range t {
		if _, ok := out[v]; !ok {
			out[v] = e
		}
	}
	return out
}

// Restrict keeps only bindings for the given variables.
func (s Subst) Restrict(vars []Var) Subst {
	out := Subst{}
	for _, v := range vars {
		if e, ok := s[v]; ok {
			out[v] = e
		}
	}
	return out
}

// Valid reports whether atomic variables are bound to single atomic
// terms, as required for a well-formed substitution.
func (s Subst) Valid() bool {
	for v, e := range s {
		if v.Atomic {
			if len(e) != 1 {
				return false
			}
			switch e[0].(type) {
			case Const, VarT:
				if vt, ok := e[0].(VarT); ok && !vt.V.Atomic {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// String renders the substitution deterministically.
func (s Subst) String() string {
	keys := make([]Var, 0, len(s))
	for v := range s {
		keys = append(keys, v)
	}
	sortVars(keys)
	parts := make([]string, len(keys))
	for i, v := range keys {
		parts[i] = v.String() + "->" + s[v].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func sortVars(vs []Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && varLess(vs[j], vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

func varLess(a, b Var) bool {
	if a.Atomic != b.Atomic {
		return a.Atomic
	}
	return a.Name < b.Name
}
