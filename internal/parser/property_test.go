package parser

import (
	"math/rand"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// randomRule builds a random safe-ish rule for print/parse round-trips
// (safety does not matter: ParseRules skips validation).
func randomRule(r *rand.Rand) ast.Rule {
	expr := func() ast.Expr { return randomExprP(r, 2) }
	head := ast.Pred{Name: "H", Args: []ast.Expr{expr()}}
	n := r.Intn(3) + 1
	var body []ast.Literal
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			body = append(body, ast.Pos(ast.Pred{Name: "R", Args: []ast.Expr{expr()}}))
		case 1:
			body = append(body, ast.Neg(ast.Pred{Name: "Q", Args: []ast.Expr{expr(), expr()}}))
		case 2:
			body = append(body, ast.Pos(ast.Eq{L: expr(), R: expr()}))
		case 3:
			body = append(body, ast.Neg(ast.Eq{L: expr(), R: expr()}))
		}
	}
	return ast.Rule{Head: head, Body: body}
}

func randomExprP(r *rand.Rand, depth int) ast.Expr {
	n := r.Intn(4)
	e := ast.Expr{}
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			e = append(e, ast.Const{A: value.Intern([]string{"a", "b", "complete order", "x_1", "eps"}[r.Intn(5)])})
		case 1:
			e = append(e, ast.VarT{V: ast.PVar([]string{"x", "y"}[r.Intn(2)])})
		case 2:
			e = append(e, ast.VarT{V: ast.AVar([]string{"u", "v"}[r.Intn(2)])})
		case 3:
			if depth > 0 {
				e = append(e, ast.Pack{E: randomExprP(r, depth-1)})
			}
		case 4:
			e = append(e, ast.Const{A: value.Intern("0")})
		}
	}
	return e
}

// TestPrintParseRoundtrip: printing a rule and parsing it back yields a
// syntactically identical rule.
func TestPrintParseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4000; trial++ {
		rule := randomRule(r)
		printed := rule.String()
		back, err := ParseRules(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if len(back) != 1 {
			t.Fatalf("reparse of %q gave %d rules", printed, len(back))
		}
		if back[0].String() != printed {
			t.Fatalf("roundtrip mismatch:\n%q\n%q", printed, back[0].String())
		}
	}
}

// TestPathPrintParseRoundtrip for ground paths, including packing and
// quoting.
func TestPathPrintParseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var build func(depth int) value.Path
	build = func(depth int) value.Path {
		n := r.Intn(4)
		p := make(value.Path, 0, n)
		for i := 0; i < n; i++ {
			if depth > 0 && r.Intn(4) == 0 {
				p = append(p, value.Pack(build(depth-1)))
			} else {
				p = append(p, value.Intern([]string{"a", "b c", "0", "d.e", "'q'", "eps"}[r.Intn(6)]))
			}
		}
		return p
	}
	for trial := 0; trial < 4000; trial++ {
		p := build(2)
		printed := p.String()
		back, err := ParsePath(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if !back.Equal(p) {
			t.Fatalf("roundtrip mismatch: %v -> %q -> %v", p, printed, back)
		}
	}
}
