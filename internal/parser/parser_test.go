package parser

import (
	"strings"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/value"
)

func TestParseExample31(t *testing.T) {
	prog, err := ParseProgram(`S($x) :- R($x), a.$x = $x.a.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Strata) != 1 || len(prog.Strata[0]) != 1 {
		t.Fatalf("shape: %s", prog)
	}
	r := prog.Strata[0][0]
	if r.Head.Name != "S" || len(r.Head.Args) != 1 {
		t.Fatalf("head: %v", r.Head)
	}
	if len(r.Body) != 2 {
		t.Fatalf("body: %v", r.Body)
	}
	eq, ok := r.Body[1].Atom.(ast.Eq)
	if !ok {
		t.Fatalf("second literal is %T", r.Body[1].Atom)
	}
	if !eq.L.Equal(ast.Cat(ast.C("a"), ast.P("x"))) {
		t.Fatalf("eq.L = %s", eq.L)
	}
	if !eq.R.Equal(ast.Cat(ast.P("x"), ast.C("a"))) {
		t.Fatalf("eq.R = %s", eq.R)
	}
	if prog.Features() != ast.FeatureSet(ast.FeatEquations) {
		t.Fatalf("features = %s", prog.Features())
	}
}

func TestParseExample21NFA(t *testing.T) {
	src := `
% Example 2.1: NFA acceptance.
S(@q.$x, eps) :- R($x), N(@q).
S(@q2.$y, $z.@a) :- S(@q1.@a.$y, $z), D(@q1, @a, @q2).
A($x) :- S(@q, $x), F(@q).
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Features()
	for _, feat := range []ast.Feature{ast.FeatArity, ast.FeatIntermediates, ast.FeatRecursion} {
		if !f.Has(feat) {
			t.Errorf("missing feature in %s", f)
		}
	}
	// Second head arg of first rule is eps.
	if got := prog.Rules()[0].Head.Args[1]; len(got) != 0 {
		t.Fatalf("eps arg parsed as %s", got)
	}
}

func TestParsePackingAndNonequality(t *testing.T) {
	src := `
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Features()
	if !f.Has(ast.FeatPacking) || !f.Has(ast.FeatNegation) || !f.Has(ast.FeatEquations) {
		t.Fatalf("features = %s", f)
	}
	// Nullary head.
	last := prog.Rules()[1]
	if last.Head.Name != "A" || len(last.Head.Args) != 0 {
		t.Fatalf("nullary head: %v", last.Head)
	}
	neq := last.Body[3]
	if !neq.Neg {
		t.Fatal("nonequality not negated")
	}
}

func TestParseUnicode(t *testing.T) {
	src := "S($x) ← R($x), a·$x = $x·a.\nB($x) ← R($x), ¬Q($x), $x ≠ ε.\n"
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	rules := prog.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if !rules[1].Body[1].Neg {
		t.Fatal("¬ not parsed")
	}
	eq := rules[1].Body[2]
	if !eq.Neg {
		t.Fatal("≠ not parsed as negated equation")
	}
	if len(eq.Atom.(ast.Eq).R) != 0 {
		t.Fatal("ε not parsed as empty path")
	}
}

func TestParseExplicitStrata(t *testing.T) {
	src := `
S($x) :- R($x).
---
W($x) :- R($x), !S($x).
`
	prog, err := ParseProgramExplicit(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Strata) != 2 {
		t.Fatalf("strata = %d", len(prog.Strata))
	}
	// Same source without separator fails explicit validation (negation
	// in the stratum that defines S)...
	bad := strings.ReplaceAll(src, "---", "")
	if _, err := ParseProgramExplicit(bad); err == nil {
		t.Fatal("unstratified program accepted")
	}
	// ...but auto-stratification fixes it.
	if _, err := ParseProgram(bad); err != nil {
		t.Fatalf("auto-stratification failed: %v", err)
	}
}

func TestParseUnsafeRejected(t *testing.T) {
	if _, err := ParseProgram(`S($x) :- a.$x = $x.a.`); err == nil {
		t.Fatal("unsafe rule accepted")
	}
	if _, err := ParseProgram(`S($x) :- R($y), !Q($x).`); err == nil {
		t.Fatal("unsafe negated variable accepted")
	}
}

func TestParseQuotedAtoms(t *testing.T) {
	prog, err := ParseProgram(`S($x) :- R('complete order'.$x.'receive payment').`)
	if err != nil {
		t.Fatal(err)
	}
	arg := prog.Rules()[0].Body[0].Atom.(ast.Pred).Args[0]
	if c, ok := arg[0].(ast.Const); !ok || c.A != value.Intern("complete order") {
		t.Fatalf("quoted atom parsed as %v", arg[0])
	}
}

func TestRoundTripPrograms(t *testing.T) {
	sources := []string{
		`S($x) :- R($x), a.$x = $x.a.`,
		`T($x, $x) :- R($x).
T($x, $y) :- T($x, $y.a).
S($x) :- T($x, eps).`,
		`T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), $x != $y.`,
		`S(@q.$x, eps) :- R($x), N(@q).
S(@q2.$y, $z.@a) :- S(@q1.@a.$y, $z), D(@q1, @a, @q2).
A($x) :- S(@q, $x), F(@q).`,
		`W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`,
		`T('a b'.'c.d').`,
		`U($x, $y) :- U($x, @a.$y.@b), !T($x, $y, @a, @b).`,
	}
	for _, src := range sources {
		p1, err := ParseProgramExplicit(src)
		if err != nil {
			// Some are unsafe/unstratified alone; parse rules only.
			rs, err2 := ParseRules(src)
			if err2 != nil {
				t.Fatalf("parse %q: %v / %v", src, err, err2)
			}
			for _, r := range rs {
				printed := r.String()
				back, err := ParseRules(printed)
				if err != nil {
					t.Fatalf("reparse %q: %v", printed, err)
				}
				if len(back) != 1 || back[0].String() != printed {
					t.Fatalf("roundtrip %q -> %q", printed, back[0].String())
				}
			}
			continue
		}
		printed := p1.String()
		p2, err := ParseProgramExplicit(printed)
		if err != nil {
			t.Fatalf("reparse of\n%s: %v", printed, err)
		}
		if p2.String() != printed {
			t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", printed, p2.String())
		}
	}
}

func TestParseInstance(t *testing.T) {
	inst, err := ParseInstance(`
R(a.b.a).
R(eps).
D(q0, a, q1).
A.
T(a.<b.c>.d).
`)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Relation("R").Len() != 2 {
		t.Fatalf("R = %d", inst.Relation("R").Len())
	}
	if !inst.Has("R", []value.Path{value.Epsilon}) {
		t.Fatal("eps fact missing")
	}
	if inst.Relation("D").Arity != 3 {
		t.Fatalf("D arity = %d", inst.Relation("D").Arity)
	}
	if inst.Relation("A").Arity != 0 || inst.Relation("A").Len() != 1 {
		t.Fatal("nullary fact broken")
	}
	want := value.Path{value.Intern("a"), value.Pack(value.PathOf("b", "c")), value.Intern("d")}
	if !inst.Has("T", []value.Path{want}) {
		t.Fatalf("packed fact missing; have %s", inst)
	}
	if _, err := ParseInstance(`R($x).`); err == nil {
		t.Fatal("non-ground fact accepted")
	}
}

func TestInstanceStringRoundTrip(t *testing.T) {
	inst := MustParseInstance(`
R(a.b).
R('x y'.c).
D(q0, a, q1).
A.
P(<a.b>.c).
`)
	back, err := ParseInstance(inst.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, inst)
	}
	if !inst.Equal(back) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", inst, back)
	}
}

func TestParsePath(t *testing.T) {
	p, err := ParsePath("a.<b.c>.d")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "a.<b.c>.d" {
		t.Fatalf("path = %s", p)
	}
	if _, err := ParsePath("a.$x"); err == nil {
		t.Fatal("variable path accepted")
	}
	eps, err := ParsePath("eps")
	if err != nil || len(eps) != 0 {
		t.Fatalf("eps: %v %v", eps, err)
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseProgram("S($x) :- R($x)\nT(a).")
	if err == nil {
		t.Fatal("missing terminator accepted")
	}
	if !strings.Contains(err.Error(), ":") {
		t.Fatalf("error lacks position: %v", err)
	}
	for _, bad := range []string{
		"S($x :- R($x).",
		"S($x) :- R($x), .",
		"S($x) :- R($x), a = .",
		"S($) :- R($x).",
		"S('abc) :- R($x).",
		"S(&x) :- R($x).",
	} {
		if _, err := ParseProgram(bad); err == nil {
			t.Fatalf("bad program accepted: %q", bad)
		}
	}
}

func TestFactRule(t *testing.T) {
	prog, err := ParseProgram("T(a).\nT(a.b.c).")
	if err != nil {
		t.Fatal(err)
	}
	rules := prog.Rules()
	if len(rules) != 2 || len(rules[0].Body) != 0 {
		t.Fatalf("facts parsed wrong: %v", rules)
	}
}

func TestEmptyBodyWithArrow(t *testing.T) {
	prog, err := ParseProgram("T(a) :- .")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules()[0].Body) != 0 {
		t.Fatal("expected empty body")
	}
}
