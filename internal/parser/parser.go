package parser

import (
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %s", k, t.kind)
	}
	return p.next(), nil
}

// ParseProgram parses a program. When the source contains stratum
// separators ("---"), the strata are taken as written and validated;
// otherwise the rules are auto-stratified.
func ParseProgram(src string) (ast.Program, error) {
	strata, explicit, err := parseStrata(src)
	if err != nil {
		return ast.Program{}, err
	}
	if explicit {
		prog := ast.Program{Strata: strata}
		if err := prog.Validate(); err != nil {
			return ast.Program{}, err
		}
		return prog, nil
	}
	var rules []ast.Rule
	for _, s := range strata {
		rules = append(rules, s...)
	}
	return ast.AutoStratify(rules)
}

// ParseProgramExplicit parses a program, keeping the strata exactly as
// written (a single stratum when no separators occur), and validates.
func ParseProgramExplicit(src string) (ast.Program, error) {
	strata, _, err := parseStrata(src)
	if err != nil {
		return ast.Program{}, err
	}
	prog := ast.Program{Strata: strata}
	if err := prog.Validate(); err != nil {
		return ast.Program{}, err
	}
	return prog, nil
}

// ParseProgramForAnalysis parses a program for static analysis,
// skipping the safety and stratification validation that ParseProgram
// performs: analyzers want to diagnose broken programs with positions,
// not refuse to look at them. Explicit strata are kept exactly as
// written (explicit reports true); otherwise the rules are arranged by
// stratification levels when possible and kept as a single stratum
// when no stratification exists (the analyzer reports the negation
// cycle itself). Only lexical and grammatical errors are returned.
func ParseProgramForAnalysis(src string) (prog ast.Program, explicit bool, err error) {
	strata, explicit, err := parseStrata(src)
	if err != nil {
		return ast.Program{}, false, err
	}
	if explicit {
		return ast.Program{Strata: strata}, true, nil
	}
	var rules []ast.Rule
	for _, s := range strata {
		rules = append(rules, s...)
	}
	leveled, err := ast.StratifyLevels(rules)
	if err != nil {
		// Recursion through negation: no ordering exists. Hand the
		// analyzer the rules as written; its negation-cycle pass will
		// report the cycle with positions.
		return ast.Program{Strata: []ast.Stratum{rules}}, false, nil
	}
	return leveled, false, nil
}

// ParseRules parses a flat list of rules, ignoring stratum separators.
func ParseRules(src string) ([]ast.Rule, error) {
	strata, _, err := parseStrata(src)
	if err != nil {
		return nil, err
	}
	var rules []ast.Rule
	for _, s := range strata {
		rules = append(rules, s...)
	}
	return rules, nil
}

// MustParseProgram is ParseProgram that panics on error; for tests and
// the built-in query library.
func MustParseProgram(src string) ast.Program {
	prog, err := ParseProgram(src)
	if err != nil {
		panic(fmt.Sprintf("parser: %v\nin program:\n%s", err, src))
	}
	return prog
}

func parseStrata(src string) (strata []ast.Stratum, explicit bool, err error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, false, err
	}
	p := &parser{toks: toks}
	current := ast.Stratum{}
	for {
		switch p.cur().kind {
		case tokEOF:
			strata = append(strata, current)
			return strata, explicit, nil
		case tokSep:
			p.next()
			explicit = true
			strata = append(strata, current)
			current = ast.Stratum{}
		default:
			r, err := p.parseRule()
			if err != nil {
				return nil, false, err
			}
			current = append(current, r)
		}
	}
}

// parseRule parses: Head [":-" Literal {"," Literal}] ".".
func (p *parser) parseRule() (ast.Rule, error) {
	head, err := p.parsePred()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{Head: head}
	if p.cur().kind == tokArrow {
		p.next()
		// An empty body before the final dot is allowed ("H :- .").
		if p.cur().kind != tokTermDot {
			for {
				lit, err := p.parseLiteral()
				if err != nil {
					return ast.Rule{}, err
				}
				r.Body = append(r.Body, lit)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
		}
	}
	if _, err := p.expect(tokTermDot); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

// parsePred parses Name ["(" Expr {"," Expr} ")"].
func (p *parser) parsePred() (ast.Pred, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return ast.Pred{}, err
	}
	pred := ast.Pred{Name: t.text, Pos: ast.Position{Line: t.line, Col: t.col}}
	if p.cur().kind != tokLParen {
		return pred, nil
	}
	p.next()
	for {
		e, err := p.parseExpr()
		if err != nil {
			return ast.Pred{}, err
		}
		pred.Args = append(pred.Args, e)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Pred{}, err
	}
	return pred, nil
}

// parseLiteral parses ["!"] (Pred | Expr ("="|"!=") Expr).
func (p *parser) parseLiteral() (ast.Literal, error) {
	neg := false
	if p.cur().kind == tokBang {
		neg = true
		p.next()
	}
	// A predicate starts with an identifier directly followed by '('.
	if p.cur().kind == tokIdent && p.peek().kind == tokLParen {
		pred, err := p.parsePred()
		if err != nil {
			return ast.Literal{}, err
		}
		return ast.Literal{Neg: neg, Atom: pred}, nil
	}
	start := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return ast.Literal{}, err
	}
	switch p.cur().kind {
	case tokEq, tokNeq:
		op := p.next()
		r, err := p.parseExpr()
		if err != nil {
			return ast.Literal{}, err
		}
		eq := ast.Eq{L: e, R: r, Pos: ast.Position{Line: start.line, Col: start.col}}
		if op.kind == tokNeq {
			if neg {
				return ast.Literal{}, p.errf(op, "cannot negate a nonequality")
			}
			return ast.Neg(eq), nil
		}
		return ast.Literal{Neg: neg, Atom: eq}, nil
	default:
		// Must be a nullary predicate: a single bare identifier.
		if len(e) == 1 {
			if c, ok := e[0].(ast.Const); ok && start.kind == tokIdent {
				return ast.Literal{Neg: neg, Atom: ast.Pred{Name: c.A.Text(), Pos: ast.Position{Line: start.line, Col: start.col}}}, nil
			}
		}
		return ast.Literal{}, p.errf(p.cur(), "expected '=' or '!=' after expression, or a predicate")
	}
}

// parseExpr parses Term {"." Term}; "eps" contributes no terms.
func (p *parser) parseExpr() (ast.Expr, error) {
	e := ast.Expr{}
	for {
		t := p.cur()
		switch t.kind {
		case tokEps:
			p.next()
		case tokIdent, tokQuoted:
			p.next()
			e = append(e, ast.Const{A: t.atom})
		case tokAtomVar:
			p.next()
			e = append(e, ast.VarT{V: ast.AVar(t.text)})
		case tokPathVar:
			p.next()
			e = append(e, ast.VarT{V: ast.PVar(t.text)})
		case tokLAngle:
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRAngle); err != nil {
				return nil, err
			}
			e = append(e, ast.Pack{E: inner})
		default:
			return nil, p.errf(t, "expected a term, found %s", t.kind)
		}
		if p.cur().kind == tokDot {
			p.next()
			continue
		}
		return e, nil
	}
}

// ParseInstance parses ground facts, one per rule-like line:
//
//	R(a.b.c).
//	D(q0, a, q1).
//	A.
func ParseInstance(src string) (*instance.Instance, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	inst := instance.New()
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokSep {
			p.next()
			continue
		}
		start := p.cur()
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokTermDot); err != nil {
			return nil, err
		}
		t := make(instance.Tuple, len(pred.Args))
		for i, a := range pred.Args {
			if !a.IsGround() {
				return nil, p.errf(start, "fact %s has a non-ground argument %s", pred.Name, a)
			}
			t[i] = a.Eval()
		}
		inst.Add(pred.Name, t)
	}
	return inst, nil
}

// MustParseInstance is ParseInstance that panics on error.
func MustParseInstance(src string) *instance.Instance {
	inst, err := ParseInstance(src)
	if err != nil {
		panic(fmt.Sprintf("parser: %v\nin instance:\n%s", err, src))
	}
	return inst
}

// ParsePath parses a single ground path expression such as "a.b.<c.d>".
func ParsePath(src string) (value.Path, error) {
	toks, err := newLexer(src).tokens()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF && p.cur().kind != tokTermDot {
		return nil, p.errf(p.cur(), "trailing input after path")
	}
	if !e.IsGround() {
		return nil, fmt.Errorf("path %q contains variables", src)
	}
	return e.Eval(), nil
}

// MustParsePath is ParsePath that panics on error.
func MustParsePath(src string) value.Path {
	p, err := ParsePath(src)
	if err != nil {
		panic(err)
	}
	return p
}
