// Package parser implements a concrete syntax for Sequence Datalog
// programs and instances, mirroring the paper's notation in ASCII:
//
//	S($x) :- R($x), a.$x = $x.a.
//	T($u.<$s>.$v) :- R($u.$s.$v), S($s).
//	A :- T($x), T($y), $x != $y.
//	---                            % stratum separator
//	S2($x) :- S($x).
//
// Atomic variables are @x, path variables $x, packing <e>, the empty
// path "eps", negation "!" (or "not"), and rules terminate with a dot.
// A dot is concatenation when immediately (without whitespace) followed
// by a term start; otherwise it terminates the rule. The Unicode forms
// ·, ←, ¬, ≠ and ε are also accepted.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"seqlog/internal/value"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuoted
	tokAtomVar
	tokPathVar
	tokLParen
	tokRParen
	tokLAngle
	tokRAngle
	tokComma
	tokDot     // concatenation
	tokTermDot // rule terminator
	tokArrow   // :- or <- or ←
	tokEq      // =
	tokNeq     // != or ≠
	tokBang    // ! or ¬ or not
	tokSep     // --- (stratum separator)
	tokEps     // eps or ε
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokQuoted:
		return "quoted atom"
	case tokAtomVar:
		return "@variable"
	case tokPathVar:
		return "$variable"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLAngle:
		return "'<'"
	case tokRAngle:
		return "'>'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokTermDot:
		return "end of rule '.'"
	case tokArrow:
		return "':-'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokBang:
		return "'!'"
	case tokSep:
		return "'---'"
	case tokEps:
		return "'eps'"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	// atom is the interned form of text, set at lex time for tokIdent
	// and tokQuoted so downstream layers build expressions from symbol
	// handles instead of raw strings.
	atom value.Atom
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func isIdentRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_'
}

func isTermStart(r rune) bool {
	return isIdentRune(r) || r == '@' || r == '$' || r == '<' || r == '\'' || r == 'ε'
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%' || r == '#':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// tokens lexes the whole input.
func (l *lexer) tokens() ([]token, error) {
	var out []token
	for {
		l.skipSpaceAndComments()
		line, col := l.line, l.col
		if l.pos >= len(l.src) {
			out = append(out, token{kind: tokEOF, line: line, col: col})
			return out, nil
		}
		r := l.peek()
		emit := func(k tokenKind, text string) {
			tok := token{kind: k, text: text, line: line, col: col}
			if k == tokIdent || k == tokQuoted {
				tok.atom = value.Intern(text)
			}
			out = append(out, tok)
		}
		switch {
		case r == '-' && l.peekAt(1) == '-' && l.peekAt(2) == '-':
			l.advance()
			l.advance()
			l.advance()
			emit(tokSep, "---")
		case r == ':' && l.peekAt(1) == '-':
			l.advance()
			l.advance()
			emit(tokArrow, ":-")
		case r == '<' && l.peekAt(1) == '-':
			l.advance()
			l.advance()
			emit(tokArrow, "<-")
		case r == '←':
			l.advance()
			emit(tokArrow, "←")
		case r == '(':
			l.advance()
			emit(tokLParen, "(")
		case r == ')':
			l.advance()
			emit(tokRParen, ")")
		case r == '<':
			l.advance()
			emit(tokLAngle, "<")
		case r == '>':
			l.advance()
			emit(tokRAngle, ">")
		case r == ',':
			l.advance()
			emit(tokComma, ",")
		case r == '·':
			l.advance()
			emit(tokDot, "·")
		case r == '.':
			l.advance()
			if isTermStart(l.peek()) {
				emit(tokDot, ".")
			} else {
				emit(tokTermDot, ".")
			}
		case r == '=':
			l.advance()
			emit(tokEq, "=")
		case r == '≠':
			l.advance()
			emit(tokNeq, "≠")
		case r == '!' && l.peekAt(1) == '=':
			l.advance()
			l.advance()
			emit(tokNeq, "!=")
		case r == '!' || r == '¬':
			l.advance()
			emit(tokBang, string(r))
		case r == 'ε':
			l.advance()
			emit(tokEps, "ε")
		case r == '@' || r == '$':
			l.advance()
			if !isIdentRune(l.peek()) {
				return nil, l.errf("expected variable name after %q", string(r))
			}
			var b strings.Builder
			for l.pos < len(l.src) && isIdentRune(l.peek()) {
				b.WriteRune(l.advance())
			}
			if r == '@' {
				emit(tokAtomVar, b.String())
			} else {
				emit(tokPathVar, b.String())
			}
		case r == '\'':
			l.advance()
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.errf("unterminated quoted atom")
				}
				c := l.advance()
				if c == '\\' && l.pos < len(l.src) {
					b.WriteRune(l.advance())
					continue
				}
				if c == '\'' {
					break
				}
				b.WriteRune(c)
			}
			emit(tokQuoted, b.String())
		case isIdentRune(r):
			var b strings.Builder
			for l.pos < len(l.src) && isIdentRune(l.peek()) {
				b.WriteRune(l.advance())
			}
			s := b.String()
			switch s {
			case "eps":
				emit(tokEps, s)
			case "not":
				emit(tokBang, s)
			default:
				emit(tokIdent, s)
			}
		default:
			return nil, l.errf("unexpected character %q", string(r))
		}
	}
}
