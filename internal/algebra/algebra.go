// Package algebra implements the sequence relational algebra of
// Section 7: the classical operators (union, difference, cartesian
// product) with selection and projection generalized to path
// expressions over the positional variables $1…$n, plus the two
// extraction operators UNPACK_i and SUB_i. Theorem 7.1's translations
// between nonrecursive Sequence Datalog and this algebra live in
// compile.go and todatalog.go; the Lemma 7.2 normal form in
// normalform.go.
package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// Expr is a sequence relational algebra expression.
type Expr interface {
	// Arity is the width of the resulting relation.
	Arity() int
	// String renders the expression.
	String() string
}

// Rel is a base relation name.
type Rel struct {
	Name   string
	NArity int
}

// Const is a constant relation.
type Const struct {
	NArity int
	Tuples []instance.Tuple
}

// Select is the generalized equality selection σ_{L=R}(E), where L and
// R are path expressions over $1…$n (paper §7: t(α) = t(β)).
type Select struct {
	E    Expr
	L, R ast.Expr
}

// Project is the generalized projection π_{Cols…}(E); each column is a
// path expression over $1…$n.
type Project struct {
	E    Expr
	Cols []ast.Expr
}

// Union is set union (same arity).
type Union struct{ L, R Expr }

// Diff is set difference (same arity).
type Diff struct{ L, R Expr }

// Product is the cartesian product.
type Product struct{ L, R Expr }

// Unpack is UNPACK_I(E): tuples whose I-th component is a packed value
// <s>, with that component replaced by s (1-based).
type Unpack struct {
	E Expr
	I int
}

// Sub is SUB_I(E): appends a column ranging over the substrings of the
// I-th component (1-based).
type Sub struct {
	E Expr
	I int
}

// Arity implements Expr.
func (r Rel) Arity() int     { return r.NArity }
func (c Const) Arity() int   { return c.NArity }
func (s Select) Arity() int  { return s.E.Arity() }
func (p Project) Arity() int { return len(p.Cols) }
func (u Union) Arity() int   { return u.L.Arity() }
func (d Diff) Arity() int    { return d.L.Arity() }
func (p Product) Arity() int { return p.L.Arity() + p.R.Arity() }
func (u Unpack) Arity() int  { return u.E.Arity() }
func (s Sub) Arity() int     { return s.E.Arity() + 1 }

func (r Rel) String() string { return r.Name }
func (c Const) String() string {
	parts := make([]string, len(c.Tuples))
	for i, t := range c.Tuples {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (s Select) String() string {
	return fmt.Sprintf("select[%s = %s](%s)", s.L, s.R, s.E)
}
func (p Project) String() string {
	parts := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		parts[i] = c.String()
	}
	return fmt.Sprintf("project[%s](%s)", strings.Join(parts, ", "), p.E)
}
func (u Union) String() string   { return fmt.Sprintf("(%s union %s)", u.L, u.R) }
func (d Diff) String() string    { return fmt.Sprintf("(%s minus %s)", d.L, d.R) }
func (p Product) String() string { return fmt.Sprintf("(%s x %s)", p.L, p.R) }
func (u Unpack) String() string  { return fmt.Sprintf("unpack[%d](%s)", u.I, u.E) }
func (s Sub) String() string     { return fmt.Sprintf("sub[%d](%s)", s.I, s.E) }

// Col builds the positional variable $i as a path expression.
func Col(i int) ast.Expr { return ast.P(strconv.Itoa(i)) }

// evalPos evaluates a positional path expression under a tuple
// (selection and projection never match, only evaluate; §7).
func evalPos(e ast.Expr, t instance.Tuple, arity int) (value.Path, error) {
	var out value.Path
	for _, term := range e {
		switch x := term.(type) {
		case ast.Const:
			out = append(out, x.A)
		case ast.VarT:
			if x.V.Atomic {
				return nil, fmt.Errorf("algebra: atomic variable %s in positional expression", x.V)
			}
			i, err := strconv.Atoi(x.V.Name)
			if err != nil || i < 1 || i > arity {
				return nil, fmt.Errorf("algebra: positional variable $%s out of range 1..%d", x.V.Name, arity)
			}
			out = append(out, t[i-1]...)
		case ast.Pack:
			inner, err := evalPos(x.E, t, arity)
			if err != nil {
				return nil, err
			}
			out = append(out, value.Pack(inner))
		}
	}
	return out, nil
}

// Eval evaluates the expression on an instance. Missing base relations
// evaluate to empty relations of the declared arity.
func Eval(e Expr, inst *instance.Instance) (*instance.Relation, error) {
	switch x := e.(type) {
	case Rel:
		if r := inst.Relation(x.Name); r != nil {
			if r.Arity != x.NArity {
				return nil, fmt.Errorf("algebra: relation %s has arity %d, expression expects %d", x.Name, r.Arity, x.NArity)
			}
			return r, nil
		}
		return instance.NewRelation(x.NArity), nil
	case Const:
		out := instance.NewRelation(x.NArity)
		for _, t := range x.Tuples {
			out.Add(t)
		}
		return out, nil
	case Select:
		in, err := Eval(x.E, inst)
		if err != nil {
			return nil, err
		}
		out := instance.NewRelation(in.Arity)
		for _, t := range in.Tuples() {
			l, err := evalPos(x.L, t, in.Arity)
			if err != nil {
				return nil, err
			}
			r, err := evalPos(x.R, t, in.Arity)
			if err != nil {
				return nil, err
			}
			if l.Equal(r) {
				out.Add(t)
			}
		}
		return out, nil
	case Project:
		in, err := Eval(x.E, inst)
		if err != nil {
			return nil, err
		}
		out := instance.NewRelation(len(x.Cols))
		for _, t := range in.Tuples() {
			nt := make(instance.Tuple, len(x.Cols))
			for i, col := range x.Cols {
				p, err := evalPos(col, t, in.Arity)
				if err != nil {
					return nil, err
				}
				nt[i] = p
			}
			out.Add(nt)
		}
		return out, nil
	case Union:
		l, err := Eval(x.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, inst)
		if err != nil {
			return nil, err
		}
		if l.Arity != r.Arity {
			return nil, fmt.Errorf("algebra: union of arities %d and %d", l.Arity, r.Arity)
		}
		out := l.Clone()
		for _, t := range r.Tuples() {
			out.Add(t)
		}
		return out, nil
	case Diff:
		l, err := Eval(x.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, inst)
		if err != nil {
			return nil, err
		}
		if l.Arity != r.Arity {
			return nil, fmt.Errorf("algebra: difference of arities %d and %d", l.Arity, r.Arity)
		}
		out := instance.NewRelation(l.Arity)
		for _, t := range l.Tuples() {
			if !r.Contains(t) {
				out.Add(t)
			}
		}
		return out, nil
	case Product:
		l, err := Eval(x.L, inst)
		if err != nil {
			return nil, err
		}
		r, err := Eval(x.R, inst)
		if err != nil {
			return nil, err
		}
		out := instance.NewRelation(l.Arity + r.Arity)
		// Materialize the inner side once: Tuples() walks the chunked
		// tuple log, so calling it per outer tuple would be quadratic.
		rts := r.Tuples()
		for _, lt := range l.Tuples() {
			for _, rt := range rts {
				nt := make(instance.Tuple, 0, l.Arity+r.Arity)
				nt = append(nt, lt...)
				nt = append(nt, rt...)
				out.Add(nt)
			}
		}
		return out, nil
	case Unpack:
		in, err := Eval(x.E, inst)
		if err != nil {
			return nil, err
		}
		if x.I < 1 || x.I > in.Arity {
			return nil, fmt.Errorf("algebra: UNPACK_%d on arity %d", x.I, in.Arity)
		}
		out := instance.NewRelation(in.Arity)
		for _, t := range in.Tuples() {
			comp := t[x.I-1]
			if len(comp) != 1 {
				continue
			}
			pk, ok := comp[0].(value.Packed)
			if !ok {
				continue
			}
			nt := append(instance.Tuple{}, t...)
			nt[x.I-1] = pk.Unpack()
			out.Add(nt)
		}
		return out, nil
	case Sub:
		in, err := Eval(x.E, inst)
		if err != nil {
			return nil, err
		}
		if x.I < 1 || x.I > in.Arity {
			return nil, fmt.Errorf("algebra: SUB_%d on arity %d", x.I, in.Arity)
		}
		out := instance.NewRelation(in.Arity + 1)
		for _, t := range in.Tuples() {
			comp := t[x.I-1]
			for i := 0; i <= len(comp); i++ {
				for j := i; j <= len(comp); j++ {
					nt := append(instance.Tuple{}, t...)
					nt = append(nt, comp[i:j])
					out.Add(nt)
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("algebra: unknown expression %T", e)
}

// Size counts the operators in the expression, for reporting.
func Size(e Expr) int {
	switch x := e.(type) {
	case Rel, Const:
		return 1
	case Select:
		return 1 + Size(x.E)
	case Project:
		return 1 + Size(x.E)
	case Union:
		return 1 + Size(x.L) + Size(x.R)
	case Diff:
		return 1 + Size(x.L) + Size(x.R)
	case Product:
		return 1 + Size(x.L) + Size(x.R)
	case Unpack:
		return 1 + Size(x.E)
	case Sub:
		return 1 + Size(x.E)
	}
	return 1
}
