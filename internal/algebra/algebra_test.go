package algebra

import (
	"math/rand"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func evalExpr(t *testing.T, e Expr, inst *instance.Instance) *instance.Relation {
	t.Helper()
	r, err := Eval(e, inst)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return r
}

func TestSelectGeneralized(t *testing.T) {
	inst := parser.MustParseInstance(`R(a.b, b.a). R(a.b, a.b). R(eps, eps).`)
	// σ_{$1 = $2}(R).
	eq := evalExpr(t, Select{E: Rel{"R", 2}, L: Col(1), R: Col(2)}, inst)
	if eq.Len() != 2 {
		t.Fatalf("σ= : %v", eq.Sorted())
	}
	// σ_{$1.a = a.$1}(R): first component all a's.
	onlyAs := evalExpr(t, Select{E: Rel{"R", 2}, L: ast.Cat(Col(1), ast.C("a")), R: ast.Cat(ast.C("a"), Col(1))}, inst)
	if onlyAs.Len() != 1 { // only (eps, eps)
		t.Fatalf("σ only-a: %v", onlyAs.Sorted())
	}
}

func TestProjectGeneralized(t *testing.T) {
	inst := parser.MustParseInstance(`R(a, b).`)
	// π_{$2.$1, <$1>}(R).
	p := evalExpr(t, Project{E: Rel{"R", 2}, Cols: []ast.Expr{ast.Cat(Col(2), Col(1)), ast.Packed(Col(1))}}, inst)
	want := instance.Tuple{value.PathOf("b", "a"), value.Path{value.Pack(value.PathOf("a"))}}
	if p.Len() != 1 || !p.Contains(want) {
		t.Fatalf("π: %v", p.Sorted())
	}
}

func TestUnionDiffProduct(t *testing.T) {
	inst := parser.MustParseInstance(`R(a). R(b). Q(b). Q(c).`)
	u := evalExpr(t, Union{Rel{"R", 1}, Rel{"Q", 1}}, inst)
	if u.Len() != 3 {
		t.Fatalf("union: %v", u.Sorted())
	}
	d := evalExpr(t, Diff{Rel{"R", 1}, Rel{"Q", 1}}, inst)
	if d.Len() != 1 || !d.Contains(instance.Tuple{value.PathOf("a")}) {
		t.Fatalf("diff: %v", d.Sorted())
	}
	p := evalExpr(t, Product{Rel{"R", 1}, Rel{"Q", 1}}, inst)
	if p.Len() != 4 || p.Arity != 2 {
		t.Fatalf("product: %v", p.Sorted())
	}
	// Arity mismatch errors.
	if _, err := Eval(Union{Rel{"R", 1}, Product{Rel{"R", 1}, Rel{"Q", 1}}}, inst); err == nil {
		t.Fatal("arity mismatch not detected")
	}
}

func TestUnpack(t *testing.T) {
	inst := parser.MustParseInstance(`R(<a.b>, x). R(c, y). R(<eps>, z).`)
	u := evalExpr(t, Unpack{E: Rel{"R", 2}, I: 1}, inst)
	if u.Len() != 2 {
		t.Fatalf("unpack: %v", u.Sorted())
	}
	if !u.Contains(instance.Tuple{value.PathOf("a", "b"), value.PathOf("x")}) {
		t.Fatalf("unpack contents: %v", u.Sorted())
	}
	if !u.Contains(instance.Tuple{value.Epsilon, value.PathOf("z")}) {
		t.Fatalf("unpack eps: %v", u.Sorted())
	}
}

func TestSub(t *testing.T) {
	inst := parser.MustParseInstance(`R(a.b).`)
	s := evalExpr(t, Sub{E: Rel{"R", 1}, I: 1}, inst)
	// Substrings of a.b: eps, a, b, a.b -> 4 distinct.
	if s.Len() != 4 {
		t.Fatalf("sub: %v", s.Sorted())
	}
	if !s.Contains(instance.Tuple{value.PathOf("a", "b"), value.Epsilon}) {
		t.Fatal("missing eps substring")
	}
	if !s.Contains(instance.Tuple{value.PathOf("a", "b"), value.PathOf("a", "b")}) {
		t.Fatal("missing full substring")
	}
}

func TestConstAndMissingRel(t *testing.T) {
	inst := instance.New()
	c := evalExpr(t, Const{NArity: 1, Tuples: []instance.Tuple{{value.PathOf("a")}}}, inst)
	if c.Len() != 1 {
		t.Fatal("const broken")
	}
	m := evalExpr(t, Rel{"Nope", 2}, inst)
	if m.Len() != 0 || m.Arity != 2 {
		t.Fatal("missing relation should be empty")
	}
}

func TestFormOf(t *testing.T) {
	cases := []struct {
		rule string
		want Form
	}{
		{`H($y, $z, @u) :- P1($y.$y, $z.a, @u.d).`, Form1},
		{`N1($y, $z, $x.$y) :- H($y, $z).`, Form2},
		{`H($y, $z, $u, $x) :- H1($y, $z, $u), H2($z, $x).`, Form3},
		{`FN($y, $z) :- N2($y, $z), !N($z).`, Form4},
		{`HN($y) :- FN($y, $z).`, Form5},
		{`T(a.b).`, Form6},
		{`T(<a>.b).`, Form6},
		{`S($x) :- R($x), Q($x), W($x).`, FormNone},
		{`S($x.$x) :- R($x), Q($x).`, FormNone},
		{`S($x) :- R($x), $x = a.`, FormNone},
	}
	for _, c := range cases {
		rules, err := parser.ParseRules(c.rule)
		if err != nil {
			t.Fatalf("%s: %v", c.rule, err)
		}
		if got := FormOf(rules[0]); got != c.want {
			t.Errorf("FormOf(%s) = %v, want %v", c.rule, got, c.want)
		}
	}
}

// randomInstancesArity builds random flat instances for relations with
// explicit arities.
func randomInstancesArity(seed int64, count int, rels map[string]int, alphabet []string, maxTuples, maxLen int) []*instance.Instance {
	r := rand.New(rand.NewSource(seed))
	var out []*instance.Instance
	for i := 0; i < count; i++ {
		inst := instance.New()
		for rel, ar := range rels {
			n := r.Intn(maxTuples + 1)
			for j := 0; j < n; j++ {
				tu := make(instance.Tuple, ar)
				for k := range tu {
					l := r.Intn(maxLen + 1)
					p := make(value.Path, l)
					for q := range p {
						p[q] = value.Intern(alphabet[r.Intn(len(alphabet))])
					}
					tu[k] = p
				}
				inst.Add(rel, tu)
			}
			inst.Ensure(rel, ar)
		}
		out = append(out, inst)
	}
	return out
}

func TestNormalFormWorkedExample(t *testing.T) {
	// The general example from the proof of Lemma 7.2.
	prog, err := parser.ParseProgram(`
T(a.b.c, @x.c.$y, $z.$z) :- P1($y.$y, $z.a, @u.d), P2($z.@x.c, d), !N1(@x.$y.$z, a.@x), !N2(a.b, $y).`)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NormalForm(prog)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Form]int{}
	for _, r := range nf.Rules() {
		f := FormOf(r)
		if f == FormNone {
			t.Fatalf("rule not in normal form: %s", r)
		}
		counts[f]++
	}
	// The paper's worked derivation uses forms 1-5 (no constants).
	for _, f := range []Form{Form1, Form2, Form3, Form4, Form5} {
		if counts[f] == 0 {
			t.Errorf("form %v unused; counts = %v\n%s", f, counts, nf)
		}
	}
	// Behavioral equivalence.
	rels := map[string]int{"P1": 3, "P2": 2, "N1": 2, "N2": 2}
	for i, edb := range randomInstancesArity(5, 10, rels, []string{"a", "b", "c", "d"}, 4, 3) {
		want, err := eval.Query(prog, edb, "T", eval.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.Query(nf, edb, "T", eval.Limits{})
		if err != nil {
			t.Fatalf("normal form eval: %v", err)
		}
		if !want.Equal(got) {
			t.Fatalf("instance %d: normal form differs\nwant %v\ngot %v", i, want.Sorted(), got.Sorted())
		}
	}
}

func TestNormalFormRejections(t *testing.T) {
	rec, _ := parser.ParseProgram(`
T($x) :- R($x).
T($x.a) :- T($x).`)
	if _, err := NormalForm(rec); err == nil {
		t.Fatal("recursive program must be rejected")
	}
	eq, _ := parser.ParseProgram(`S($x) :- R($x), a.$x = $x.a.`)
	if _, err := NormalForm(eq); err == nil {
		t.Fatal("equations must be rejected")
	}
}

// assertCompileEquivalent compiles the program for the output relation
// and compares algebra evaluation against direct Datalog evaluation.
func assertCompileEquivalent(t *testing.T, src, output string, rels map[string]int, seeds int64) {
	t.Helper()
	prog := parser.MustParseProgram(src)
	e, err := Compile(prog, output)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i, edb := range randomInstancesArity(seeds, 10, rels, []string{"a", "b"}, 4, 3) {
		want, err := eval.Query(prog, edb, output, eval.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eval(e, edb)
		if err != nil {
			t.Fatalf("algebra eval: %v", err)
		}
		if !want.Equal(got) {
			t.Fatalf("instance %d: algebra differs from Datalog\nwant %v\ngot  %v\nexpr: %s",
				i, want.Sorted(), got.Sorted(), e)
		}
	}
}

func TestCompileSimpleExtraction(t *testing.T) {
	assertCompileEquivalent(t, `S($x) :- R(a.$x.b).`, "S", map[string]int{"R": 1}, 11)
}

func TestCompileJoinAndProjection(t *testing.T) {
	assertCompileEquivalent(t, `
T($x, $y) :- R($x.$y).
S($y) :- T($x, $y), Q($x).`, "S", map[string]int{"R": 1, "Q": 1}, 13)
}

func TestCompileNegation(t *testing.T) {
	assertCompileEquivalent(t, `
B($x) :- R($x.$x).
---
S($x) :- R($x), !B($x).`, "S", map[string]int{"R": 1}, 17)
}

func TestCompileEquationsViaElimination(t *testing.T) {
	assertCompileEquivalent(t, `S($x) :- R($x), a.$x = $x.a.`, "S", map[string]int{"R": 1}, 19)
}

func TestCompilePackingExample22(t *testing.T) {
	// Example 2.2: packing + nonequalities, nonrecursive. The result of
	// T is packed, exercising UNPACK domains.
	src := `
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), $x != $y.`
	prog := parser.MustParseProgram(src)
	e, err := Compile(prog, "A")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i, edb := range randomInstancesArity(23, 8, map[string]int{"R": 1, "S": 1}, []string{"a", "b"}, 3, 3) {
		want, err := eval.Holds(prog, edb, "A", eval.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Eval(e, edb)
		if err != nil {
			t.Fatalf("algebra eval: %v", err)
		}
		got := rel.Len() > 0
		if want != got {
			t.Fatalf("instance %d: A: want %v got %v\n%s", i, want, got, edb)
		}
	}
}

func TestCompileConstantRule(t *testing.T) {
	assertCompileEquivalent(t, `
T(a.b).
S($x) :- T($x.$y).`, "S", map[string]int{}, 29)
}

func TestCompileRejectsRecursion(t *testing.T) {
	prog := parser.MustParseProgram(`
T($x) :- R($x).
T($x.a) :- T($x).`)
	if _, err := Compile(prog, "T"); err == nil {
		t.Fatal("recursive program must be rejected")
	}
}

func TestToDatalogRoundtrip(t *testing.T) {
	exprs := []Expr{
		Select{E: Rel{"R", 2}, L: Col(1), R: Col(2)},
		Project{E: Rel{"R", 2}, Cols: []ast.Expr{ast.Cat(Col(2), Col(1))}},
		Union{Rel{"Q", 1}, Project{E: Rel{"R", 2}, Cols: []ast.Expr{Col(1)}}},
		Diff{Rel{"Q", 1}, Project{E: Rel{"R", 2}, Cols: []ast.Expr{Col(2)}}},
		Product{Rel{"Q", 1}, Rel{"Q", 1}},
		Sub{E: Rel{"Q", 1}, I: 1},
		Project{E: Unpack{E: Project{E: Rel{"Q", 1}, Cols: []ast.Expr{ast.Packed(Col(1))}}, I: 1}, Cols: []ast.Expr{Col(1)}},
		Select{E: Rel{"Q", 1}, L: ast.Cat(Col(1), ast.C("a")), R: ast.Cat(ast.C("a"), Col(1))},
	}
	instances := randomInstancesArity(31, 8, map[string]int{"R": 2, "Q": 1}, []string{"a", "b"}, 4, 3)
	for _, e := range exprs {
		prog, err := ToDatalog(e, "Out")
		if err != nil {
			t.Fatalf("ToDatalog(%s): %v", e, err)
		}
		for i, edb := range instances {
			want, err := Eval(e, edb)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eval.Query(prog, edb, "Out", eval.Limits{})
			if err != nil {
				t.Fatalf("eval of translation: %v\n%s", err, prog)
			}
			if !want.Equal(got) {
				t.Fatalf("expr %s instance %d: want %v got %v\nprogram:\n%s",
					e, i, want.Sorted(), got.Sorted(), prog)
			}
		}
	}
}

func TestEvalPosErrors(t *testing.T) {
	inst := parser.MustParseInstance(`R(a).`)
	if _, err := Eval(Select{E: Rel{"R", 1}, L: ast.A("x"), R: Col(1)}, inst); err == nil {
		t.Fatal("atomic variable must be rejected")
	}
	if _, err := Eval(Select{E: Rel{"R", 1}, L: Col(5), R: Col(1)}, inst); err == nil {
		t.Fatal("out-of-range column must be rejected")
	}
	if _, err := Eval(Unpack{E: Rel{"R", 1}, I: 3}, inst); err == nil {
		t.Fatal("out-of-range unpack must be rejected")
	}
}

func TestSizeReporting(t *testing.T) {
	e := Union{Rel{"R", 1}, Project{E: Sub{E: Rel{"R", 1}, I: 1}, Cols: []ast.Expr{Col(2)}}}
	if Size(e) != 5 {
		t.Fatalf("Size = %d", Size(e))
	}
}
