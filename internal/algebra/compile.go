package algebra

import (
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/rewrite"
	"seqlog/internal/value"
)

// Compile translates a nonrecursive program into a sequence relational
// algebra expression computing the given IDB relation (Theorem 7.1):
// equations are first eliminated (Theorem 4.7, as the paper's Lemma 7.2
// assumes), the program is normalized to the six forms, and each form
// is translated:
//
//	form 1 (extraction)   — subpath domain via SUB/UNPACK closure,
//	                        then product + generalized selection
//	form 2 (computed col) — generalized projection
//	form 3 (join)         — product + selection + projection
//	form 4 (antijoin)     — difference of a projection of a product
//	form 5 (projection)   — projection
//	form 6 (constant)     — constant relation
func Compile(p ast.Program, output string) (Expr, error) {
	if p.HasRecursion() {
		return nil, fmt.Errorf("algebra: cannot compile a recursive program (Theorem 7.1 is for nonrecursive programs)")
	}
	var err error
	if p.Features().Has(ast.FeatEquations) {
		p, err = rewrite.EliminateEquations(p)
		if err != nil {
			return nil, err
		}
	}
	p, err = NormalForm(p)
	if err != nil {
		return nil, err
	}
	arities, err := p.Arities()
	if err != nil {
		return nil, err
	}
	idb := map[string][]ast.Rule{}
	for _, r := range p.Rules() {
		idb[r.Head.Name] = append(idb[r.Head.Name], r)
	}
	c := &compiler{arities: arities, idb: idb, memo: map[string]Expr{}}
	if _, ok := idb[output]; !ok {
		if a, ok := arities[output]; ok {
			return Rel{Name: output, NArity: a}, nil
		}
		return nil, fmt.Errorf("algebra: output relation %s does not occur in the program", output)
	}
	return c.rel(output)
}

type compiler struct {
	arities map[string]int
	idb     map[string][]ast.Rule
	memo    map[string]Expr
	depth   int
}

func (c *compiler) rel(name string) (Expr, error) {
	if e, ok := c.memo[name]; ok {
		return e, nil
	}
	rules, isIDB := c.idb[name]
	if !isIDB {
		return Rel{Name: name, NArity: c.arities[name]}, nil
	}
	c.depth++
	if c.depth > 10000 {
		return nil, fmt.Errorf("algebra: relation dependency too deep (recursion?)")
	}
	defer func() { c.depth-- }()
	var out Expr
	for _, r := range rules {
		e, err := c.rule(r)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = e
		} else {
			out = Union{L: out, R: e}
		}
	}
	c.memo[name] = out
	return out, nil
}

func (c *compiler) rule(r ast.Rule) (Expr, error) {
	switch FormOf(r) {
	case Form6:
		t := make(instance.Tuple, len(r.Head.Args))
		for i, a := range r.Head.Args {
			t[i] = a.Eval()
		}
		return Const{NArity: len(t), Tuples: []instance.Tuple{t}}, nil
	case Form1:
		return c.form1(r)
	case Form2:
		return c.form2(r)
	case Form3:
		return c.form3(r)
	case Form4:
		return c.form4(r)
	case Form5:
		return c.form5(r)
	default:
		return nil, fmt.Errorf("algebra: rule not in normal form: %s", r)
	}
}

// posOf maps each variable of the args to its first position (1-based).
func posOf(args []ast.Expr) map[ast.Var]int {
	out := map[ast.Var]int{}
	for i, a := range args {
		if v, ok := singleVar(a); ok {
			if _, seen := out[v]; !seen {
				out[v] = i + 1
			}
		}
	}
	return out
}

// toPositional replaces each variable in e by its positional column.
func toPositional(e ast.Expr, pos map[ast.Var]int) ast.Expr {
	sub := ast.Subst{}
	for v, i := range pos {
		sub[v] = Col(i)
	}
	return sub.Apply(e)
}

// form1 translates an extraction rule R1(v...) :- R2(e...): build the
// subpath domain of R2 to the patterns' packing depth, take one domain
// factor per variable, select the components against the patterns, and
// project onto the variables (the construction sketched after
// Lemma 7.2).
func (c *compiler) form1(r ast.Rule) (Expr, error) {
	body := r.Body[0].Atom.(ast.Pred)
	base, err := c.rel(body.Name)
	if err != nil {
		return nil, err
	}
	m := len(body.Args)
	vars := make([]ast.Var, len(r.Head.Args))
	seen := map[ast.Var]bool{}
	for i, a := range r.Head.Args {
		v, ok := singleVar(a)
		if !ok {
			return nil, fmt.Errorf("algebra: malformed form-1 head %s", r.Head)
		}
		vars[i] = v
		seen[v] = true
	}
	nHead := len(vars)
	// Variables occurring only in the body are existential: they get a
	// domain column too, projected away at the end.
	for _, a := range body.Args {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	if m == 0 {
		// R1() :- R2(): possible only with both nullary.
		return base, nil
	}
	// Subpath domain D: all components, closed under substrings and
	// unpacking to the patterns' depth.
	depth := 0
	for _, a := range body.Args {
		if d := exprPackingDepth(a); d > depth {
			depth = d
		}
	}
	var dom Expr
	for i := 1; i <= m; i++ {
		p := Project{E: base, Cols: []ast.Expr{Col(i)}}
		if dom == nil {
			dom = Expr(p)
		} else {
			dom = Union{L: dom, R: p}
		}
	}
	for k := 0; k <= depth; k++ {
		dom = Union{L: dom, R: Project{E: Sub{E: dom, I: 1}, Cols: []ast.Expr{Col(2)}}}
		dom = Union{L: dom, R: Unpack{E: dom, I: 1}}
	}
	// Atomic-variable domain: nonempty, not a concatenation of two
	// nonempty subpaths, not packed.
	epsRel := Const{NArity: 1, Tuples: []instance.Tuple{{value.Epsilon}}}
	ne := Diff{L: dom, R: epsRel}
	concat2 := Project{E: Product{L: ne, R: ne}, Cols: []ast.Expr{ast.Cat(Col(1), Col(2))}}
	len1 := Diff{L: ne, R: concat2}
	packed1 := Project{E: Unpack{E: len1, I: 1}, Cols: []ast.Expr{ast.Packed(Col(1))}}
	atomDom := Diff{L: len1, R: packed1}

	e := base
	varPos := map[ast.Var]int{}
	for k, v := range vars {
		if v.Atomic {
			e = Product{L: e, R: atomDom}
		} else {
			e = Product{L: e, R: dom}
		}
		varPos[v] = m + k + 1
	}
	for i, pat := range body.Args {
		e = Select{E: e, L: Col(i + 1), R: toPositional(pat, varPos)}
	}
	cols := make([]ast.Expr, nHead)
	for k := 0; k < nHead; k++ {
		cols[k] = Col(m + k + 1)
	}
	return Project{E: e, Cols: cols}, nil
}

func exprPackingDepth(e ast.Expr) int {
	d := 0
	for _, t := range e {
		if p, ok := t.(ast.Pack); ok {
			if dd := exprPackingDepth(p.E) + 1; dd > d {
				d = dd
			}
		}
	}
	return d
}

// form2 translates R1(v..., e) :- R2(v...) as a generalized projection.
func (c *compiler) form2(r ast.Rule) (Expr, error) {
	body := r.Body[0].Atom.(ast.Pred)
	base, err := c.rel(body.Name)
	if err != nil {
		return nil, err
	}
	pos := posOf(body.Args)
	cols := make([]ast.Expr, len(r.Head.Args))
	for i := range body.Args {
		cols[i] = Col(i + 1)
	}
	cols[len(cols)-1] = toPositional(r.Head.Args[len(r.Head.Args)-1], pos)
	return Project{E: base, Cols: cols}, nil
}

// form3 translates a join via product, selection on shared variables,
// and projection onto the head variables.
func (c *compiler) form3(r ast.Rule) (Expr, error) {
	b2 := r.Body[0].Atom.(ast.Pred)
	b3 := r.Body[1].Atom.(ast.Pred)
	l, err := c.rel(b2.Name)
	if err != nil {
		return nil, err
	}
	rr, err := c.rel(b3.Name)
	if err != nil {
		return nil, err
	}
	var e Expr = Product{L: l, R: rr}
	pos := map[ast.Var]int{}
	for i, a := range b2.Args {
		v, _ := singleVar(a)
		if _, seen := pos[v]; !seen {
			pos[v] = i + 1
		}
	}
	for j, a := range b3.Args {
		v, _ := singleVar(a)
		col := len(b2.Args) + j + 1
		if first, seen := pos[v]; seen {
			e = Select{E: e, L: Col(first), R: Col(col)}
		} else {
			pos[v] = col
		}
	}
	cols := make([]ast.Expr, len(r.Head.Args))
	for i, a := range r.Head.Args {
		v, _ := singleVar(a)
		cols[i] = Col(pos[v])
	}
	return Project{E: e, Cols: cols}, nil
}

// form4 translates the antijoin R1(v...) :- R2(v...), !R3(v'...) as
// R2 − π(σ(R2 × R3)).
func (c *compiler) form4(r ast.Rule) (Expr, error) {
	b2 := r.Body[0].Atom.(ast.Pred)
	var b3 ast.Pred
	for _, l := range r.Body {
		if l.Neg {
			b3 = l.Atom.(ast.Pred)
		}
	}
	l, err := c.rel(b2.Name)
	if err != nil {
		return nil, err
	}
	rr, err := c.rel(b3.Name)
	if err != nil {
		return nil, err
	}
	n := len(b2.Args)
	pos := posOf(b2.Args)
	var e Expr = Product{L: l, R: rr}
	for j, a := range b3.Args {
		v, _ := singleVar(a)
		e = Select{E: e, L: Col(pos[v]), R: Col(n + j + 1)}
	}
	cols := make([]ast.Expr, n)
	for i := range cols {
		cols[i] = Col(i + 1)
	}
	return Diff{L: l, R: Project{E: e, Cols: cols}}, nil
}

// form5 translates a projection/permutation rule.
func (c *compiler) form5(r ast.Rule) (Expr, error) {
	body := r.Body[0].Atom.(ast.Pred)
	base, err := c.rel(body.Name)
	if err != nil {
		return nil, err
	}
	pos := posOf(body.Args)
	cols := make([]ast.Expr, len(r.Head.Args))
	for i, a := range r.Head.Args {
		v, _ := singleVar(a)
		cols[i] = Col(pos[v])
	}
	return Project{E: base, Cols: cols}, nil
}
