package algebra

import (
	"fmt"

	"seqlog/internal/ast"
)

// Form classifies a rule against the six normal forms of Lemma 7.2.
type Form int

// The six forms (FormNone for rules outside the normal form).
const (
	FormNone Form = iota
	Form1         // R1(v...) :- R2(e...)            extraction
	Form2         // R1(v..., e) :- R2(v...)         computed column
	Form3         // R1(v...) :- R2(x...), R3(y...)  join
	Form4         // R1(v...) :- R2(v...), !R3(v'...) antijoin
	Form5         // R1(v'...) :- R2(v...)           projection
	Form6         // R(p) :- .                       constant
)

// FormOf classifies a rule, returning FormNone when it fits no form.
func FormOf(r ast.Rule) Form {
	if len(r.Body) == 0 {
		for _, a := range r.Head.Args {
			if !a.IsGround() {
				return FormNone
			}
		}
		return Form6
	}
	var pos []ast.Pred
	var neg []ast.Pred
	for _, l := range r.Body {
		pr, ok := l.Atom.(ast.Pred)
		if !ok {
			return FormNone
		}
		if l.Neg {
			neg = append(neg, pr)
		} else {
			pos = append(pos, pr)
		}
	}
	switch {
	case len(pos) == 1 && len(neg) == 0:
		b := pos[0]
		if distinctVars(r.Head.Args) && allPathVars(r.Head.Args) && distinctVars(b.Args) && allPathVars(b.Args) {
			if subsetVars(r.Head.Args, b.Args) {
				// Both Form5 and the identity case of Form2/1; report 5.
				return Form5
			}
		}
		// Form 2: head = body vars plus one extra column.
		if len(r.Head.Args) == len(b.Args)+1 && distinctVars(b.Args) && allPathVars(b.Args) &&
			sameVars(r.Head.Args[:len(b.Args)], b.Args) {
			return Form2
		}
		// Form 1: head is a list of distinct variables (any sort).
		if distinctVars(r.Head.Args) {
			return Form1
		}
		return FormNone
	case len(pos) == 2 && len(neg) == 0:
		if distinctVars(r.Head.Args) && allPathVars(r.Head.Args) &&
			distinctVars(pos[0].Args) && allPathVars(pos[0].Args) &&
			distinctVars(pos[1].Args) && allPathVars(pos[1].Args) &&
			subsetVars(r.Head.Args, append(append([]ast.Expr{}, pos[0].Args...), pos[1].Args...)) {
			return Form3
		}
		return FormNone
	case len(pos) == 1 && len(neg) == 1:
		if distinctVars(r.Head.Args) && allPathVars(r.Head.Args) &&
			sameVars(r.Head.Args, pos[0].Args) &&
			distinctVars(neg[0].Args) && allPathVars(neg[0].Args) &&
			subsetVars(neg[0].Args, pos[0].Args) {
			return Form4
		}
		return FormNone
	}
	return FormNone
}

func singleVar(e ast.Expr) (ast.Var, bool) {
	if len(e) != 1 {
		return ast.Var{}, false
	}
	vt, ok := e[0].(ast.VarT)
	if !ok {
		return ast.Var{}, false
	}
	return vt.V, true
}

func distinctVars(args []ast.Expr) bool {
	seen := map[ast.Var]bool{}
	for _, a := range args {
		v, ok := singleVar(a)
		if !ok || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func allPathVars(args []ast.Expr) bool {
	for _, a := range args {
		v, ok := singleVar(a)
		if !ok || v.Atomic {
			return false
		}
	}
	return true
}

func subsetVars(args, of []ast.Expr) bool {
	set := map[ast.Var]bool{}
	for _, a := range of {
		if v, ok := singleVar(a); ok {
			set[v] = true
		}
	}
	for _, a := range args {
		v, ok := singleVar(a)
		if !ok || !set[v] {
			return false
		}
	}
	return true
}

func sameVars(args, of []ast.Expr) bool {
	if len(args) != len(of) {
		return false
	}
	for i := range args {
		v1, ok1 := singleVar(args[i])
		v2, ok2 := singleVar(of[i])
		if !ok1 || !ok2 || v1 != v2 {
			return false
		}
	}
	return true
}

// NormalForm rewrites a nonrecursive, equation-free program into an
// equivalent one where every rule has one of the six forms of
// Lemma 7.2, following the proof's four steps (the worked example of
// the paper is reproduced in the tests).
func NormalForm(p ast.Program) (ast.Program, error) {
	if p.HasRecursion() {
		return ast.Program{}, fmt.Errorf("algebra: NormalForm requires a nonrecursive program")
	}
	if p.Features().Has(ast.FeatEquations) {
		return ast.Program{}, fmt.Errorf("algebra: NormalForm requires an equation-free program (Lemma 7.2); eliminate equations first")
	}
	gen := ast.NewNameGen(p)
	out := ast.Program{Strata: make([]ast.Stratum, 0, len(p.Strata))}
	for _, s := range p.Strata {
		var stratum ast.Stratum
		for _, r := range s {
			normalized, err := normalizeRule(r.Clone(), gen)
			if err != nil {
				return ast.Program{}, err
			}
			stratum = append(stratum, normalized...)
		}
		out.Strata = append(out.Strata, stratum)
	}
	if err := out.Validate(); err != nil {
		return ast.Program{}, fmt.Errorf("algebra: normal form produced an invalid program: %w", err)
	}
	return out, nil
}

// normalizeRule implements steps 1–4 of the Lemma 7.2 proof on one
// rule; all generated rules land in the same stratum as the original
// ("the main stratum").
func normalizeRule(r ast.Rule, gen *ast.NameGen) ([]ast.Rule, error) {
	if FormOf(r) != FormNone {
		return []ast.Rule{r}, nil
	}
	var acc []ast.Rule

	// Atomic variables of the main rule become path variables (their
	// extraction-rule columns hold the atomic values).
	avToPv := ast.Subst{}
	for _, v := range r.Vars() {
		if v.Atomic {
			avToPv[v] = ast.Expr{ast.VarT{V: gen.FreshVar(v.Name+"_p", false)}}
		}
	}

	// Step 1.1: one extraction rule per positive atom.
	var posAtoms []ast.Pred // the H predicates, over main-rule variables
	var negLits []ast.Pred
	for _, l := range r.Body {
		pr, ok := l.Atom.(ast.Pred)
		if !ok {
			return nil, fmt.Errorf("algebra: equation in rule %s; eliminate equations first", r)
		}
		if l.Neg {
			negLits = append(negLits, applySubstPred(pr, avToPv))
			continue
		}
		vars := predVars(pr)
		h := gen.Fresh("H")
		if len(vars) == 0 {
			// H' :- P(e...).   H(a) :- H'.
			h0 := gen.Fresh("H")
			acc = append(acc,
				ast.Rule{Head: ast.Pred{Name: h0}, Body: []ast.Literal{ast.Pos(pr)}},
				ast.Rule{Head: ast.Pred{Name: h, Args: []ast.Expr{ast.C("a")}}, Body: []ast.Literal{ast.Pos(ast.Pred{Name: h0})}},
			)
			posAtoms = append(posAtoms, ast.Pred{Name: h, Args: []ast.Expr{ast.Expr{ast.VarT{V: gen.FreshVar("v", false)}}}})
			continue
		}
		headArgs := make([]ast.Expr, len(vars))
		mainArgs := make([]ast.Expr, len(vars))
		for i, v := range vars {
			headArgs[i] = ast.Expr{ast.VarT{V: v}}
			mainArgs[i] = avToPv.Apply(headArgs[i])
		}
		acc = append(acc, ast.Rule{Head: ast.Pred{Name: h, Args: headArgs}, Body: []ast.Literal{ast.Pos(pr)}})
		posAtoms = append(posAtoms, ast.Pred{Name: h, Args: mainArgs})
	}
	if len(posAtoms) == 0 {
		// Step 1.2, empty case: R(a) :- .  and use R($v).
		cst := gen.Fresh("Cst")
		acc = append(acc, ast.Rule{Head: ast.Pred{Name: cst, Args: []ast.Expr{ast.C("a")}}})
		posAtoms = append(posAtoms, ast.Pred{Name: cst, Args: []ast.Expr{ast.Expr{ast.VarT{V: gen.FreshVar("v", false)}}}})
	}

	// Step 1.2: join positive atoms pairwise until one remains.
	joined, joinRules := joinAtoms(posAtoms, gen)
	acc = append(acc, joinRules...)

	// Step 2: separate each negated literal.
	if len(negLits) > 0 {
		var hns []ast.Pred
		for _, n := range negLits {
			hn := gen.Fresh("HN")
			hnPred := ast.Pred{Name: hn, Args: joined.Args}
			// Step 3.1: generate the negated expressions by a chain of
			// form-2 rules.
			chainRules, finalPred, valueVars := buildChain(joined, n.Args, gen)
			acc = append(acc, chainRules...)
			// Step 3.2: FN(v..., v'...) :- Nm(v..., v'...), !N(v'...).
			fn := gen.Fresh("FN")
			fnPred := ast.Pred{Name: fn, Args: finalPred.Args}
			acc = append(acc, ast.Rule{
				Head: fnPred,
				Body: []ast.Literal{
					ast.Pos(finalPred),
					ast.Neg(ast.Pred{Name: n.Name, Args: valueVars}),
				},
			})
			// HN(v...) :- FN(v..., v'...). (form 5)
			acc = append(acc, ast.Rule{Head: hnPred, Body: []ast.Literal{ast.Pos(fnPred)}})
			hns = append(hns, hnPred)
		}
		// Step 2.2: join the HN predicates.
		var joinRules2 []ast.Rule
		joined, joinRules2 = joinAtoms(hns, gen)
		acc = append(acc, joinRules2...)
	}

	// Step 4: generate the head expressions by a chain of form-2 rules.
	head := applySubstPred(r.Head, avToPv)
	chainRules, finalPred, valueVars := buildChain(joined, head.Args, gen)
	acc = append(acc, chainRules...)
	acc = append(acc, ast.Rule{Head: ast.Pred{Name: head.Name, Args: valueVars}, Body: []ast.Literal{ast.Pos(finalPred)}})

	for _, nr := range acc {
		if FormOf(nr) == FormNone {
			return nil, fmt.Errorf("algebra: internal: rule %s is not in normal form", nr)
		}
	}
	return acc, nil
}

// predVars returns the variables of a predicate in first-occurrence
// order.
func predVars(p ast.Pred) []ast.Var {
	seen := map[ast.Var]bool{}
	var out []ast.Var
	for _, a := range p.Args {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func applySubstPred(p ast.Pred, s ast.Subst) ast.Pred {
	args := make([]ast.Expr, len(p.Args))
	for i, a := range p.Args {
		args[i] = s.Apply(a)
	}
	return ast.Pred{Name: p.Name, Args: args}
}

// joinAtoms merges predicates pairwise with form-3 rules until one
// predicate remains, per steps 1.2 and 2.2.
func joinAtoms(atoms []ast.Pred, gen *ast.NameGen) (ast.Pred, []ast.Rule) {
	var rules []ast.Rule
	for len(atoms) > 1 {
		a, b := atoms[0], atoms[1]
		seen := map[ast.Var]bool{}
		var mergedArgs []ast.Expr
		for _, arg := range append(append([]ast.Expr{}, a.Args...), b.Args...) {
			v, _ := singleVar(arg)
			if !seen[v] {
				seen[v] = true
				mergedArgs = append(mergedArgs, arg)
			}
		}
		h := ast.Pred{Name: gen.Fresh("H"), Args: mergedArgs}
		rules = append(rules, ast.Rule{Head: h, Body: []ast.Literal{ast.Pos(a), ast.Pos(b)}})
		atoms = append([]ast.Pred{h}, atoms[2:]...)
	}
	return atoms[0], rules
}

// buildChain produces the form-2 chains of steps 3.1 and 4: starting
// from base(v...), one rule per expression adds a computed column; it
// returns the chain rules, the final predicate, and the variables
// holding the computed values.
func buildChain(base ast.Pred, exprs []ast.Expr, gen *ast.NameGen) ([]ast.Rule, ast.Pred, []ast.Expr) {
	var rules []ast.Rule
	cur := base
	var valueVars []ast.Expr
	for _, e := range exprs {
		v := gen.FreshVar("t", false)
		next := ast.Pred{
			Name: gen.Fresh("N"),
			Args: append(append([]ast.Expr{}, cur.Args...), e),
		}
		rules = append(rules, ast.Rule{Head: next, Body: []ast.Literal{ast.Pos(cur)}})
		// In subsequent rules the new column is referred to by v.
		renamed := ast.Pred{Name: next.Name, Args: append(append([]ast.Expr{}, cur.Args...), ast.Expr{ast.VarT{V: v}})}
		cur = renamed
		valueVars = append(valueVars, ast.Expr{ast.VarT{V: v}})
	}
	return rules, cur, valueVars
}
