package algebra

import (
	"fmt"
	"strconv"

	"seqlog/internal/ast"
)

// ToDatalog translates an algebra expression into a nonrecursive
// Sequence Datalog program whose given output relation computes the
// expression (the easy direction of Theorem 7.1). The program uses
// equations for selections, packing for UNPACK, and stratified
// negation for differences.
func ToDatalog(e Expr, output string) (ast.Program, error) {
	t := &translator{counter: 0}
	name, err := t.walk(e)
	if err != nil {
		return ast.Program{}, err
	}
	// Final copy rule: output(v...) :- name(v...).
	args := colVars(e.Arity())
	t.rules = append(t.rules, ast.Rule{
		Head: ast.Pred{Name: output, Args: args},
		Body: []ast.Literal{ast.Pos(ast.Pred{Name: name, Args: args})},
	})
	prog, err := ast.AutoStratify(t.rules)
	if err != nil {
		return ast.Program{}, fmt.Errorf("algebra: ToDatalog produced an unstratifiable program: %w", err)
	}
	return prog, nil
}

type translator struct {
	counter int
	rules   []ast.Rule
}

func (t *translator) fresh() string {
	t.counter++
	return "Alg" + strconv.Itoa(t.counter)
}

func colVars(n int) []ast.Expr {
	out := make([]ast.Expr, n)
	for i := range out {
		out[i] = ast.P("c" + strconv.Itoa(i+1))
	}
	return out
}

// positionalToVars rewrites a positional expression over $1..$n into
// one over the body variables $c1..$cn.
func positionalToVars(e ast.Expr, n int) (ast.Expr, error) {
	sub := ast.Subst{}
	for i := 1; i <= n; i++ {
		sub[ast.PVar(strconv.Itoa(i))] = ast.P("c" + strconv.Itoa(i))
	}
	out := sub.Apply(e)
	for _, v := range out.Vars() {
		if v.Atomic {
			return nil, fmt.Errorf("algebra: atomic variable %s in positional expression", v)
		}
		if _, err := strconv.Atoi(v.Name); err == nil {
			return nil, fmt.Errorf("algebra: positional variable $%s out of range 1..%d", v.Name, n)
		}
	}
	return out, nil
}

// walk emits rules defining a relation equivalent to e and returns its
// name.
func (t *translator) walk(e Expr) (string, error) {
	switch x := e.(type) {
	case Rel:
		return x.Name, nil
	case Const:
		name := t.fresh()
		if len(x.Tuples) == 0 {
			// An empty relation needs no rules, but the name must have
			// a consistent arity wherever it is used; emit a vacuous
			// rule R(...) :- R(...)? Recursion is forbidden; instead
			// emit nothing and let callers treat the missing relation
			// as empty.
			return name, nil
		}
		for _, tu := range x.Tuples {
			args := make([]ast.Expr, len(tu))
			for i, p := range tu {
				args[i] = ast.FromPath(p)
			}
			t.rules = append(t.rules, ast.Rule{Head: ast.Pred{Name: name, Args: args}})
		}
		return name, nil
	case Select:
		in, err := t.walk(x.E)
		if err != nil {
			return "", err
		}
		n := x.E.Arity()
		l, err := positionalToVars(x.L, n)
		if err != nil {
			return "", err
		}
		r, err := positionalToVars(x.R, n)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		args := colVars(n)
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: args},
			Body: []ast.Literal{
				ast.Pos(ast.Pred{Name: in, Args: args}),
				ast.Pos(ast.Eq{L: l, R: r}),
			},
		})
		return name, nil
	case Project:
		in, err := t.walk(x.E)
		if err != nil {
			return "", err
		}
		n := x.E.Arity()
		name := t.fresh()
		head := make([]ast.Expr, len(x.Cols))
		for i, c := range x.Cols {
			hc, err := positionalToVars(c, n)
			if err != nil {
				return "", err
			}
			head[i] = hc
		}
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: head},
			Body: []ast.Literal{ast.Pos(ast.Pred{Name: in, Args: colVars(n)})},
		})
		return name, nil
	case Union:
		l, err := t.walk(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.walk(x.R)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		args := colVars(x.Arity())
		t.rules = append(t.rules,
			ast.Rule{Head: ast.Pred{Name: name, Args: args}, Body: []ast.Literal{ast.Pos(ast.Pred{Name: l, Args: args})}},
			ast.Rule{Head: ast.Pred{Name: name, Args: args}, Body: []ast.Literal{ast.Pos(ast.Pred{Name: r, Args: args})}},
		)
		return name, nil
	case Diff:
		l, err := t.walk(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.walk(x.R)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		args := colVars(x.Arity())
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: args},
			Body: []ast.Literal{
				ast.Pos(ast.Pred{Name: l, Args: args}),
				ast.Neg(ast.Pred{Name: r, Args: args}),
			},
		})
		return name, nil
	case Product:
		l, err := t.walk(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.walk(x.R)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		n, m := x.L.Arity(), x.R.Arity()
		all := colVars(n + m)
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: all},
			Body: []ast.Literal{
				ast.Pos(ast.Pred{Name: l, Args: all[:n]}),
				ast.Pos(ast.Pred{Name: r, Args: all[n:]}),
			},
		})
		return name, nil
	case Unpack:
		in, err := t.walk(x.E)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		n := x.E.Arity()
		head := colVars(n)
		body := colVars(n)
		body[x.I-1] = ast.Packed(head[x.I-1])
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: head},
			Body: []ast.Literal{ast.Pos(ast.Pred{Name: in, Args: body})},
		})
		return name, nil
	case Sub:
		in, err := t.walk(x.E)
		if err != nil {
			return "", err
		}
		name := t.fresh()
		n := x.E.Arity()
		body := colVars(n)
		seg := ast.Cat(ast.P("sl"), ast.P("sm"), ast.P("sr"))
		body[x.I-1] = seg
		head := colVars(n)
		head[x.I-1] = seg
		head = append(head, ast.P("sm"))
		t.rules = append(t.rules, ast.Rule{
			Head: ast.Pred{Name: name, Args: head},
			Body: []ast.Literal{ast.Pos(ast.Pred{Name: in, Args: body})},
		})
		return name, nil
	}
	return "", fmt.Errorf("algebra: unknown expression %T", e)
}
