// Package wal is the durability layer of the serving tier: a
// write-ahead log of accepted load/assert/retract batches with
// periodic snapshot checkpoints and crash recovery.
//
// State is a deterministic log of deltas (the DDlog model): every
// mutation the engine accepts is first appended here as a
// length-prefixed, CRC32C-checksummed record, and recovery rebuilds
// the engine by restoring the newest valid checkpoint and replaying
// the tail through the same incremental maintenance that ran live
// (eval.Replayer). Recovery never refuses to start: a torn or
// truncated final record is truncated away and appending continues at
// the cut, and a checkpoint that fails its checksum falls back to the
// previous generation.
//
// On disk a log directory holds numbered generations:
//
//	wal-00000000.log          records since the start (generation 0)
//	checkpoint-00000001.ckpt  snapshot of the state after wal-00000000
//	wal-00000001.log          records since checkpoint 1, and so on
//
// Checkpoint g captures the state reached by replaying everything up
// to and including wal-(g-1); records accepted afterwards append to
// wal-g. One previous generation is retained as the fallback for a
// corrupt newest checkpoint; older generations are deleted when a new
// checkpoint commits.
package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"seqlog/internal/instance"
)

// SyncPolicy says when appended records are fsync'd to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is
	// durable. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most every Options.SyncEvery: a crash can
	// lose the last interval's acknowledged writes, but the log never
	// lies about order and recovery still truncates cleanly.
	SyncInterval
	// SyncNever leaves syncing to the OS page cache (and Close). For
	// tests and throwaway instances.
	SyncNever
)

// ParseSyncPolicy parses the -sync flag values always|interval|never.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval, never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configure a Log.
type Options struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the maximum staleness under SyncInterval (default
	// 100ms). The sync happens on the first append past the deadline;
	// Close always syncs.
	SyncEvery time.Duration
	// CheckpointRecords triggers ShouldCheckpoint once that many
	// records were appended since the last checkpoint (default 4096;
	// negative disables the record trigger).
	CheckpointRecords int
	// CheckpointBytes likewise, by appended bytes (default 16 MiB;
	// negative disables the byte trigger).
	CheckpointBytes int64
	// WrapWriter, when set, wraps the WAL file writer — the fault
	// injection hook (internal/wal/walfault). It is re-applied to the
	// fresh file after every checkpoint rotation.
	WrapWriter func(io.Writer) io.Writer
	// Logf receives recovery and corruption notices (default: discard).
	Logf func(format string, args ...any)
	// Now is the clock used by SyncInterval (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CheckpointRecords == 0 {
		o.CheckpointRecords = 4096
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 16 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Handler receives the recovered state during Open: at most one
// Restore (the newest valid checkpoint), then every surviving WAL
// record in order. A Replay error is reported and counted but does not
// stop recovery — the live engine, too, keeps serving after a failed
// maintenance call, and recovery must reproduce that state rather than
// refuse to start.
type Handler interface {
	Restore(program string, edb *instance.Instance) error
	Replay(rec Record) error
}

// RecoveryStats reports what Open found and did.
type RecoveryStats struct {
	// CheckpointGen is the generation of the checkpoint restored from
	// (0: none — recovery started empty).
	CheckpointGen int
	// CheckpointsSkipped counts newer checkpoints passed over because
	// they failed validation.
	CheckpointsSkipped int
	// RecordsReplayed counts WAL records handed to Handler.Replay.
	RecordsReplayed int
	// ReplayErrors counts records whose Replay returned an error
	// (reported via Logf, replay continued).
	ReplayErrors int
	// TruncatedBytes is the size of the torn tail cut from the newest
	// WAL file (0 when the log ended cleanly).
	TruncatedBytes int64
	// Stopped carries a description of a mid-chain corruption that
	// ended replay before the newest record (rare double-failure case);
	// empty on a clean recovery.
	Stopped string
}

// Log is an open write-ahead log: the append handle of the newest
// generation plus checkpoint bookkeeping. Methods are not safe for
// concurrent use; the serving layer serializes writers (appends happen
// under the same lock that orders engine maintenance, which is what
// keeps log order and apply order identical).
type Log struct {
	dir  string
	opts Options

	gen int
	f   *os.File
	w   io.Writer

	failed   error
	lastSync time.Time

	records     int
	bytes       int64
	checkpoints int
	ckptRecords int
	ckptBytes   int64

	recovered RecoveryStats

	payloadBuf []byte
	frameBuf   []byte
}

func walPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

func ckptPath(dir string, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%08d.ckpt", gen))
}

// Open recovers the state stored in dir — newest valid checkpoint into
// h.Restore, surviving WAL records into h.Replay — and returns a log
// ready to append at the exact point recovery reached. A missing dir
// is created (a fresh, empty log); a torn final record is truncated; a
// corrupt newest checkpoint falls back to the previous one.
func Open(dir string, opts Options, h Handler) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, lastSync: opts.Now()}

	ckptGens, walGens, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	// Restore the newest checkpoint that validates; fall back on
	// corruption. Generation 0 means "start empty".
	base := 0
	for i := len(ckptGens) - 1; i >= 0; i-- {
		gen := ckptGens[i]
		program, edb, err := readCheckpoint(ckptPath(dir, gen))
		if err != nil {
			opts.Logf("wal: checkpoint %d invalid, falling back: %v", gen, err)
			l.recovered.CheckpointsSkipped++
			continue
		}
		if err := h.Restore(program, edb); err != nil {
			return nil, fmt.Errorf("wal: restoring checkpoint %d: %w", gen, err)
		}
		base = gen
		break
	}
	l.recovered.CheckpointGen = base

	// Replay the WAL chain from the restored generation on. The newest
	// file may end in a torn record (truncated below); corruption in an
	// older file of the chain stops replay there.
	chain := walGens[:0]
	for _, g := range walGens {
		if g >= base {
			chain = append(chain, g)
		}
	}
	l.gen = base
	if n := len(chain); n > 0 {
		l.gen = chain[n-1]
	}
	for _, gen := range chain {
		newest := gen == l.gen
		keep, err := l.replayFile(walPath(dir, gen), newest, h)
		if err != nil {
			return nil, err
		}
		if !keep {
			break
		}
	}

	if err := l.openAppend(); err != nil {
		return nil, err
	}
	return l, nil
}

// scanDir lists the checkpoint and WAL generations present, ascending.
func scanDir(dir string) (ckptGens, walGens []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		var gen int
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%d.ckpt", &gen); n == 1 {
			ckptGens = append(ckptGens, gen)
		} else if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &gen); n == 1 {
			walGens = append(walGens, gen)
		}
	}
	sort.Ints(ckptGens)
	sort.Ints(walGens)
	return ckptGens, walGens, nil
}

// replayFile replays one WAL file. For the newest file a torn tail is
// truncated in place and replay reports success; for an older file any
// damage stops the chain (keep=false) — the state beyond it cannot be
// trusted, and recovery proceeds with what it has.
func (l *Log) replayFile(path string, newest bool, h Handler) (keep bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	stop := func(off int64, cause error) (bool, error) {
		if !newest {
			l.recovered.Stopped = fmt.Sprintf("%s at byte %d: %v", filepath.Base(path), off, cause)
			l.opts.Logf("wal: %s", l.recovered.Stopped)
			return false, nil
		}
		if cut := int64(len(data)) - off; cut > 0 {
			l.recovered.TruncatedBytes = cut
			l.opts.Logf("wal: truncating torn tail of %s at byte %d (%d bytes dropped): %v",
				filepath.Base(path), off, cut, cause)
			if err := os.Truncate(path, off); err != nil {
				return false, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		return true, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		if !newest || len(data) > 0 && string(data[:min(len(data), len(walMagic))]) != walMagic[:min(len(data), len(walMagic))] {
			// A wrong magic is not a torn tail; only an empty or
			// magic-prefix file (creation interrupted) is recoverable by
			// rewriting the header.
			if !newest {
				l.recovered.Stopped = fmt.Sprintf("%s: bad magic", filepath.Base(path))
				l.opts.Logf("wal: %s", l.recovered.Stopped)
				return false, nil
			}
			return false, fmt.Errorf("wal: %s is not a WAL file (bad magic)", path)
		}
		l.opts.Logf("wal: rewriting interrupted header of %s", filepath.Base(path))
		if err := os.WriteFile(path, []byte(walMagic), 0o644); err != nil {
			return false, err
		}
		return true, nil
	}
	rest := data[len(walMagic):]
	off := int64(len(walMagic))
	for len(rest) > 0 {
		payload, tail, err := readFrame(rest)
		if err != nil {
			return stop(off, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return stop(off, err)
		}
		if err := h.Replay(rec); err != nil {
			l.recovered.ReplayErrors++
			l.opts.Logf("wal: replaying %s record at byte %d of %s: %v", rec.Op, off, filepath.Base(path), err)
		}
		l.recovered.RecordsReplayed++
		off += int64(len(rest) - len(tail))
		rest = tail
	}
	return true, nil
}

// openAppend opens (creating if needed) the current generation's file
// for appending and installs the (possibly fault-wrapped) writer.
func (l *Log) openAppend() error {
	path := walPath(l.dir, l.gen)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("wal: writing header: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = io.Writer(f)
	if l.opts.WrapWriter != nil {
		l.w = l.opts.WrapWriter(f)
	}
	return nil
}

// Recovery returns what Open found and did.
func (l *Log) Recovery() RecoveryStats { return l.recovered }

// Err returns the sticky append failure, nil while the log is healthy.
// Once an append or sync fails the log accepts no further writes: the
// serving layer degrades to read-only on exactly this signal.
func (l *Log) Err() error { return l.failed }

// Records returns the number of records appended since Open.
func (l *Log) Records() int { return l.records }

// Bytes returns the framed bytes appended since Open.
func (l *Log) Bytes() int64 { return l.bytes }

// Checkpoints returns the number of checkpoints written since Open.
func (l *Log) Checkpoints() int { return l.checkpoints }

// Append encodes, frames and writes one record, then syncs according
// to the policy. The first failure is sticky: the record may be
// partially on disk (recovery will truncate it), no further appends
// are accepted, and every later call returns the original error.
func (l *Log) Append(rec Record) error {
	if l.failed != nil {
		return l.failed
	}
	payload, err := appendRecord(l.payloadBuf[:0], rec)
	if err != nil {
		return err // encoding error: nothing written, log still healthy
	}
	l.payloadBuf = payload
	l.frameBuf = appendFrame(l.frameBuf[:0], payload)
	if _, err := l.w.Write(l.frameBuf); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		return l.failed
	}
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.sync(); err != nil {
			return err
		}
	case SyncInterval:
		if now := l.opts.Now(); now.Sub(l.lastSync) >= l.opts.SyncEvery {
			if err := l.sync(); err != nil {
				return err
			}
		}
	}
	l.records++
	l.ckptRecords++
	l.bytes += int64(len(l.frameBuf))
	l.ckptBytes += int64(len(l.frameBuf))
	return nil
}

func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: sync: %w", err)
		return l.failed
	}
	l.lastSync = l.opts.Now()
	return nil
}

// ShouldCheckpoint reports whether the records or bytes appended since
// the last checkpoint crossed the configured trigger.
func (l *Log) ShouldCheckpoint() bool {
	if l.failed != nil {
		return false
	}
	return (l.opts.CheckpointRecords > 0 && l.ckptRecords >= l.opts.CheckpointRecords) ||
		(l.opts.CheckpointBytes > 0 && l.ckptBytes >= l.opts.CheckpointBytes)
}

// Checkpoint commits a snapshot of the current state (the program
// source and the engine's base facts) as the next generation and
// rotates the WAL: the snapshot is written to a temp file, fsync'd and
// renamed, a fresh WAL file is started, and generations older than the
// immediate fallback are deleted. On success the replayed prefix of
// the old WAL is no longer needed for recovery (the previous
// generation is kept only as the fallback for a corrupt checkpoint).
func (l *Log) Checkpoint(program string, edb *instance.Instance) error {
	if l.failed != nil {
		return l.failed
	}
	next := l.gen + 1

	payload := binary.AppendUvarint(nil, uint64(len(program)))
	payload = append(payload, program...)
	payload = edb.AppendBinary(payload)

	tmp := ckptPath(l.dir, next) + ".tmp"
	if err := writeFileSynced(tmp, append([]byte(ckptMagic), appendFrame(nil, payload)...)); err != nil {
		return fmt.Errorf("wal: writing checkpoint %d: %w", next, err)
	}
	if err := os.Rename(tmp, ckptPath(l.dir, next)); err != nil {
		return fmt.Errorf("wal: committing checkpoint %d: %w", next, err)
	}
	syncDir(l.dir)

	// Start the next generation's WAL. From here on the old file is
	// frozen: no record may land in it after the checkpoint that
	// supersedes it.
	old := l.f
	l.gen = next
	if err := l.openAppend(); err != nil {
		l.failed = err
		return err
	}
	old.Sync()
	old.Close()
	syncDir(l.dir)

	// Drop generations older than the fallback.
	for gen := next - 2; gen >= 0; gen-- {
		w, c := walPath(l.dir, gen), ckptPath(l.dir, gen)
		errW, errC := os.Remove(w), os.Remove(c)
		if os.IsNotExist(errW) && (gen == 0 || os.IsNotExist(errC)) {
			break // older generations were cleaned up before
		}
	}

	l.checkpoints++
	l.ckptRecords, l.ckptBytes = 0, 0
	return nil
}

// Close syncs and closes the append handle. Append errors already
// recorded are returned but do not prevent closing.
func (l *Log) Close() error {
	if l.f == nil {
		return l.failed
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if l.failed != nil {
		return l.failed
	}
	return err
}

// readCheckpoint reads and validates one checkpoint file, returning
// the program source and the decoded base-fact instance.
func readCheckpoint(path string) (string, *instance.Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return "", nil, fmt.Errorf("bad magic")
	}
	payload, rest, err := readFrame(data[len(ckptMagic):])
	if err != nil {
		return "", nil, err
	}
	if len(rest) != 0 {
		return "", nil, fmt.Errorf("%d trailing bytes", len(rest))
	}
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload[w:])) {
		return "", nil, fmt.Errorf("truncated program")
	}
	program := string(payload[w : w+int(n)])
	edb, tail, err := instance.DecodeInstance(payload[w+int(n):])
	if err != nil {
		return "", nil, err
	}
	if len(tail) != 0 {
		return "", nil, fmt.Errorf("%d trailing instance bytes", len(tail))
	}
	return program, edb, nil
}

// writeFileSynced writes data to path and fsyncs it before closing.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable; errors are ignored (not every filesystem supports it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
