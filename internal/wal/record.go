package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"seqlog/internal/instance"
)

// Op discriminates the three logged operations. The values are the
// on-disk bytes; they never change meaning.
type Op byte

const (
	// OpLoad records a program (re)load: the payload carries the full
	// program source, stored once per load epoch. Replaying it resets
	// the engine, exactly as the live load verb does.
	OpLoad Op = 'L'
	// OpAssert records an accepted assert batch.
	OpAssert Op = 'A'
	// OpRetract records an accepted retract batch.
	OpRetract Op = 'R'
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpAssert:
		return "assert"
	case OpRetract:
		return "retract"
	}
	return fmt.Sprintf("op(0x%02x)", byte(o))
}

// Record is one logged operation: a program load or a tuple batch.
type Record struct {
	Op Op
	// Program is the program source text (OpLoad only).
	Program string
	// Batch holds the asserted/retracted tuples (OpAssert/OpRetract
	// only), encoded via the interned-value codec: atom texts on disk,
	// re-interned on replay.
	Batch *instance.Instance
}

// castagnoli is the CRC32C polynomial table. CRC32C is the checksum
// hardware accelerates (SSE4.2 et al.), the customary choice for log
// records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File framing. Every WAL file starts with walMagic; every checkpoint
// file with ckptMagic. Each record (and the single checkpoint body) is
// framed as
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// so a reader can detect a torn or corrupted record without trusting
// any of its content.
const (
	walMagic   = "SEQWAL1\n"
	ckptMagic  = "SEQCKPT1"
	frameBytes = 8 // length + checksum
	// maxPayload bounds a single framed payload (64 MiB). A length
	// beyond it is treated as corruption rather than an allocation
	// request: record batches are protocol-line-sized and checkpoints of
	// that order would have rotated long before.
	maxPayload = 64 << 20
)

// appendRecord appends rec's payload encoding to b.
func appendRecord(b []byte, rec Record) ([]byte, error) {
	b = append(b, byte(rec.Op))
	switch rec.Op {
	case OpLoad:
		b = binary.AppendUvarint(b, uint64(len(rec.Program)))
		b = append(b, rec.Program...)
	case OpAssert, OpRetract:
		if rec.Batch == nil {
			return nil, fmt.Errorf("wal: %s record with no batch", rec.Op)
		}
		b = rec.Batch.AppendBinary(b)
	default:
		return nil, fmt.Errorf("wal: unknown op %s", rec.Op)
	}
	return b, nil
}

// decodeRecord decodes one record payload (already CRC-verified).
func decodeRecord(b []byte) (Record, error) {
	if len(b) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	rec := Record{Op: Op(b[0])}
	b = b[1:]
	switch rec.Op {
	case OpLoad:
		n, w := binary.Uvarint(b)
		if w <= 0 || n != uint64(len(b[w:])) {
			return Record{}, fmt.Errorf("wal: malformed load record")
		}
		rec.Program = string(b[w:])
	case OpAssert, OpRetract:
		inst, rest, err := instance.DecodeInstance(b)
		if err != nil {
			return Record{}, fmt.Errorf("wal: %s record: %w", rec.Op, err)
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("wal: %s record has %d trailing bytes", rec.Op, len(rest))
		}
		rec.Batch = inst
	default:
		return Record{}, fmt.Errorf("wal: unknown op %s", rec.Op)
	}
	return rec, nil
}

// appendFrame appends the length/CRC32C framing and the payload to b.
func appendFrame(b, payload []byte) []byte {
	var hdr [frameBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// readFrame reads one frame from the front of b, returning the
// verified payload and the remaining bytes. A short header, a length
// beyond the remaining bytes (or beyond maxPayload), or a checksum
// mismatch all return an error — the caller treats any of them as the
// torn tail of the log.
func readFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameBytes {
		return nil, b, fmt.Errorf("wal: torn frame header (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > maxPayload {
		return nil, b, fmt.Errorf("wal: implausible payload length %d", n)
	}
	if uint32(len(b)-frameBytes) < n {
		return nil, b, fmt.Errorf("wal: torn payload (%d of %d bytes)", len(b)-frameBytes, n)
	}
	payload = b[frameBytes : frameBytes+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, b, fmt.Errorf("wal: checksum mismatch")
	}
	return payload, b[frameBytes+int(n):], nil
}
