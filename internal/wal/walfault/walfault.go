// Package walfault injects write failures into a WAL for recovery
// tests: a Writer that delivers exactly the first FailAfter bytes and
// then fails, modelling a disk that dies mid-record (torn write) or at
// a record boundary. Wire it through wal.Options.WrapWriter.
package walfault

import (
	"errors"
	"io"
)

// ErrInjected is the default error a tripped Writer returns.
var ErrInjected = errors.New("walfault: injected write failure")

// Writer passes writes through to W until FailAfter total bytes have
// been written, delivers the prefix of the write that still fits (the
// torn write), and fails that call and every later one. FailAfter < 0
// never fails.
type Writer struct {
	W io.Writer
	// FailAfter is the number of bytes allowed through before the
	// failure; a failure mid-record leaves a torn record on disk.
	FailAfter int64
	// Err is the error returned once tripped (ErrInjected if nil).
	Err error

	written int64
	tripped bool
}

// Written returns the total bytes delivered to W.
func (f *Writer) Written() int64 { return f.written }

// Tripped reports whether the injected failure has fired.
func (f *Writer) Tripped() bool { return f.tripped }

func (f *Writer) fail() error {
	f.tripped = true
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (f *Writer) Write(p []byte) (int, error) {
	if f.tripped {
		return 0, f.fail()
	}
	if f.FailAfter < 0 || f.written+int64(len(p)) <= f.FailAfter {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	// Deliver the torn prefix, then fail.
	keep := f.FailAfter - f.written
	if keep < 0 {
		keep = 0
	}
	n, err := f.W.Write(p[:keep])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, f.fail()
}
