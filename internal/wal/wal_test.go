package wal_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"seqlog/internal/eval"
	"seqlog/internal/fuzztest"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
	"seqlog/internal/wal"
	"seqlog/internal/wal/walfault"
)

// replayHandler feeds recovery into an eval.Replayer — the same
// adapter the daemon uses, reproduced here so the package tests stand
// alone.
type replayHandler struct {
	rep eval.Replayer
}

func (h *replayHandler) Restore(program string, edb *instance.Instance) error {
	return h.rep.Restore(program, edb)
}

func (h *replayHandler) Replay(rec wal.Record) error {
	switch rec.Op {
	case wal.OpLoad:
		return h.rep.Load(rec.Program)
	case wal.OpAssert:
		return h.rep.Assert(rec.Batch)
	case wal.OpRetract:
		return h.rep.Retract(rec.Batch)
	}
	return fmt.Errorf("unknown op %s", rec.Op)
}

func (h *replayHandler) snapshot(t *testing.T) *instance.Instance {
	t.Helper()
	snap, err := h.rep.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func stepRecord(st fuzztest.Step) wal.Record {
	op := wal.OpAssert
	if st.Retract {
		op = wal.OpRetract
	}
	return wal.Record{Op: op, Batch: fuzztest.Batch(st.Facts)}
}

// mustOpen opens a log over a fresh replayHandler, failing the test on
// error.
func mustOpen(t *testing.T, dir string, opts wal.Options) (*wal.Log, *replayHandler) {
	t.Helper()
	h := &replayHandler{}
	l, err := wal.Open(dir, opts, h)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, h
}

const tcSrc = "T(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n"

func factBatch(rel string, paths ...value.Path) *instance.Instance {
	inst := instance.New()
	for _, p := range paths {
		inst.AddPath(rel, p)
	}
	return inst
}

// TestWALRecoveryRoundTrip: a load plus a few batches written, closed,
// and recovered lands on the same materialization the live engine had.
func TestWALRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, h := mustOpen(t, dir, wal.Options{Sync: wal.SyncAlways})

	appendApply := func(rec wal.Record) {
		t.Helper()
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := h.Replay(rec); err != nil {
			t.Fatal(err)
		}
	}
	appendApply(wal.Record{Op: wal.OpLoad, Program: tcSrc})
	appendApply(wal.Record{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("a", "b"), value.PathOf("b", "c"))})
	appendApply(wal.Record{Op: wal.OpRetract, Batch: factBatch("E", value.PathOf("a", "b"))})
	appendApply(wal.Record{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("c", "d"))})
	want := h.snapshot(t)
	if l.Records() != 4 || l.Bytes() == 0 {
		t.Fatalf("counters: records=%d bytes=%d", l.Records(), l.Bytes())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, h2 := mustOpen(t, dir, wal.Options{})
	defer l2.Close()
	rs := l2.Recovery()
	if rs.RecordsReplayed != 4 || rs.CheckpointGen != 0 || rs.TruncatedBytes != 0 || rs.ReplayErrors != 0 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	if d := instance.Diff(h2.snapshot(t), want); d != "" {
		t.Fatalf("recovered state diverges: %s", d)
	}
	if h2.rep.Source() != tcSrc {
		t.Fatal("recovered program source lost")
	}
}

// crashPlan is one simulated crash: cut or corrupt the newest WAL file
// at a chosen byte.
type crashPlan struct {
	corrupt bool  // flip a byte instead of truncating
	at      int64 // offset within the newest WAL file
}

// runScenario drives a generated scenario through a live Replayer with
// WAL-first appends, returning the end offset within the current
// generation's file after each record and the generation it landed in.
func runScenario(t *testing.T, dir string, sc fuzztest.Scenario, ckptEvery int) (gens []int, ends []int64, lastGen int) {
	t.Helper()
	opts := wal.Options{Sync: wal.SyncAlways, CheckpointRecords: -1, CheckpointBytes: -1}
	l, h := mustOpen(t, dir, opts)
	defer l.Close()

	const magicLen = 8
	gen, genStart := 0, int64(0)
	appendApply := func(rec wal.Record) {
		t.Helper()
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := h.Replay(rec); err != nil {
			t.Fatal(err)
		}
		gens = append(gens, gen)
		ends = append(ends, magicLen+l.Bytes()-genStart)
	}
	appendApply(wal.Record{Op: wal.OpLoad, Program: sc.Src})
	for i, st := range sc.Steps {
		appendApply(stepRecord(st))
		if ckptEvery > 0 && (i+1)%ckptEvery == 0 {
			edb, err := h.rep.Engine().EDBSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Checkpoint(h.rep.Source(), edb); err != nil {
				t.Fatal(err)
			}
			gen++
			genStart = l.Bytes()
		}
	}
	return gens, ends, gen
}

// wantAfter computes the reference materialization after the first k
// records (record 0 is the load) by from-scratch evaluation over a
// shadow EDB.
func wantAfter(t *testing.T, sc fuzztest.Scenario, k int) *instance.Instance {
	t.Helper()
	prog, err := parser.ParseProgram(sc.Src)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eval.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	sh := fuzztest.NewShadow()
	for i := 0; i < k-1; i++ {
		sh.Apply(sc.Steps[i])
	}
	want, err := prep.Eval(sh.EDB(), eval.Limits{Parallelism: sc.Workers})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// crashRecoverySeed replays one generated history with WAL-first
// appends, crashes it by truncating or corrupting the newest WAL file
// at an arbitrary byte (record boundaries and mid-record alike), and
// checks the recovered engine is Diff-identical to a from-scratch
// evaluation of exactly the records that survived the damage.
func crashRecoverySeed(t *testing.T, seed int64, ckptEvery int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	sc := fuzztest.GenScenario(r)
	dir := t.TempDir()
	gens, ends, lastGen := runScenario(t, dir, sc, ckptEvery)

	newest := filepath.Join(dir, fmt.Sprintf("wal-%08d.log", lastGen))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	const magicLen = 8
	plan := crashPlan{corrupt: r.Intn(2) == 1, at: magicLen + r.Int63n(int64(len(data))-magicLen+1)}
	if plan.corrupt && plan.at >= int64(len(data)) {
		plan.corrupt = false // nothing to flip past the end
	}
	if plan.corrupt {
		data[plan.at] ^= 0x5a
		if err := os.WriteFile(newest, data, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := os.Truncate(newest, plan.at); err != nil {
			t.Fatal(err)
		}
	}

	// Surviving records: everything in older generations (subsumed by
	// the newest checkpoint) plus the newest file's records that end at
	// or before the damage point. A corrupted byte kills the record
	// whose frame contains it and everything after.
	k := 0
	for i := range ends {
		if gens[i] < lastGen || ends[i] <= plan.at {
			k++
		}
	}

	l2, h2 := mustOpen(t, dir, wal.Options{CheckpointRecords: -1, CheckpointBytes: -1})
	defer l2.Close()
	rs := l2.Recovery()
	if h2.rep.Engine() == nil {
		if k != 0 {
			t.Fatalf("seed %d ckpt=%d %+v: recovery empty, want %d records\n%s%s",
				seed, ckptEvery, plan, k, sc.Src, sc.History(len(sc.Steps)-1))
		}
		return
	}
	if d := instance.Diff(h2.snapshot(t), wantAfter(t, sc, k)); d != "" {
		t.Fatalf("seed %d ckpt=%d %+v (recovered %d ckpt-gen %d, want %d records): %s\n%s%s",
			seed, ckptEvery, plan, rs.RecordsReplayed, rs.CheckpointGen, k, d, sc.Src, sc.History(len(sc.Steps)-1))
	}

	// The recovered log must keep working: append the remaining steps
	// and land on the history's true final state.
	for i := k - 1; i < len(sc.Steps); i++ {
		if i < 0 {
			continue
		}
		rec := stepRecord(sc.Steps[i])
		if err := l2.Append(rec); err != nil {
			t.Fatalf("seed %d: append after recovery: %v", seed, err)
		}
		if err := h2.Replay(rec); err != nil {
			t.Fatalf("seed %d: apply after recovery: %v", seed, err)
		}
	}
	if d := instance.Diff(h2.snapshot(t), wantAfter(t, sc, len(sc.Steps)+1)); d != "" {
		t.Fatalf("seed %d: resumed history diverges: %s", seed, d)
	}
}

// TestCrashRecoveryDifferential fuzzes crash recovery over the same
// randomized histories the maintenance fuzzer uses, without
// checkpoints: the whole log replays from the start.
func TestCrashRecoveryDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		crashRecoverySeed(t, int64(seed), 0)
	}
}

// TestCrashRecoveryCheckpointed is the same differential with a
// checkpoint cut every few records, so recovery exercises the
// snapshot-plus-tail path and generation rotation.
func TestCrashRecoveryCheckpointed(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		crashRecoverySeed(t, int64(seed), 3)
	}
}

// TestReplayReassignsStampsIdentically: derivation stamps are never
// serialized — recovery re-derives them by replaying the logged
// operations through the same engine paths (see docs/durability.md).
// A full-log replay must land on exactly the live engine's stamp
// assignment, fact for fact. A checkpointed recovery restores from an
// EDB snapshot (a fresh initial fixpoint, so absolute births
// legitimately differ from the live engine's accumulated history) but
// must itself be deterministic: two recoveries from the same log agree
// stamp for stamp.
func TestReplayReassignsStampsIdentically(t *testing.T) {
	stampsOf := func(h *replayHandler) map[string]uint64 {
		snap := h.snapshot(t)
		out := map[string]uint64{}
		for _, name := range snap.Names() {
			r := snap.Relation(name)
			for pos := 0; pos < r.Size(); pos++ {
				if r.Live(pos) {
					out[name+" "+r.TupleAt(pos).String()] = r.StampAt(pos)
				}
			}
		}
		return out
	}
	diff := func(a, b map[string]uint64) string {
		for k, v := range a {
			if b[k] != v {
				return fmt.Sprintf("%s: stamp %#x vs %#x", k, v, b[k])
			}
		}
		if len(a) != len(b) {
			return fmt.Sprintf("fact counts differ: %d vs %d", len(a), len(b))
		}
		return ""
	}
	noCkpt := wal.Options{Sync: wal.SyncAlways, CheckpointRecords: -1, CheckpointBytes: -1}
	for seed := int64(0); seed < 8; seed++ {
		sc := fuzztest.GenScenario(rand.New(rand.NewSource(seed)))

		dir := t.TempDir()
		l, h := mustOpen(t, dir, noCkpt)
		recs := []wal.Record{{Op: wal.OpLoad, Program: sc.Src}}
		for _, st := range sc.Steps {
			recs = append(recs, stepRecord(st))
		}
		for _, rec := range recs {
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
			if err := h.Replay(rec); err != nil {
				t.Fatal(err)
			}
		}
		live := stampsOf(h)
		l.Close()

		l2, h2 := mustOpen(t, dir, noCkpt)
		if d := diff(live, stampsOf(h2)); d != "" {
			t.Fatalf("seed %d: full-log replay reassigned different stamps: %s\n%s", seed, d, sc.Src)
		}
		l2.Close()

		dir2 := t.TempDir()
		runScenario(t, dir2, sc, 3)
		l3, h3 := mustOpen(t, dir2, noCkpt)
		first := stampsOf(h3)
		l3.Close()
		l4, h4 := mustOpen(t, dir2, noCkpt)
		if d := diff(first, stampsOf(h4)); d != "" {
			t.Fatalf("seed %d: checkpointed recovery not stamp-deterministic: %s\n%s", seed, d, sc.Src)
		}
		l4.Close()
	}
}

// TestCheckpointFallbackRecovery: a corrupted newest checkpoint is
// skipped and recovery falls back to the previous generation, replaying
// both WAL files it subsumes.
func TestCheckpointFallbackRecovery(t *testing.T) {
	dir := t.TempDir()
	sc := fuzztest.GenScenario(rand.New(rand.NewSource(7)))
	runScenario(t, dir, sc, 4)

	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	sort.Strings(ckpts)
	if len(ckpts) == 0 {
		t.Fatal("no checkpoints written")
	}
	newest := ckpts[len(ckpts)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, h := mustOpen(t, dir, wal.Options{})
	defer l.Close()
	rs := l.Recovery()
	if rs.CheckpointsSkipped != 1 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	if d := instance.Diff(h.snapshot(t), wantAfter(t, sc, len(sc.Steps)+1)); d != "" {
		t.Fatalf("fallback recovery diverges: %s", d)
	}
}

// TestCheckpointRetention: repeated checkpoints keep exactly the
// current and the immediately previous generation on disk.
func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	l, h := mustOpen(t, dir, wal.Options{Sync: wal.SyncNever, CheckpointRecords: -1, CheckpointBytes: -1})
	defer l.Close()
	rec := wal.Record{Op: wal.OpLoad, Program: tcSrc}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := h.Replay(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rec := wal.Record{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("n", fmt.Sprint(i)))}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := h.Replay(rec); err != nil {
			t.Fatal(err)
		}
		edb, err := h.rep.Engine().EDBSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Checkpoint(h.rep.Source(), edb); err != nil {
			t.Fatal(err)
		}
	}
	if l.Checkpoints() != 4 {
		t.Fatalf("checkpoints=%d", l.Checkpoints())
	}
	names, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	var base []string
	for _, n := range names {
		base = append(base, filepath.Base(n))
	}
	sort.Strings(base)
	want := []string{
		"checkpoint-00000003.ckpt", "checkpoint-00000004.ckpt",
		"wal-00000003.log", "wal-00000004.log",
	}
	if strings.Join(base, " ") != strings.Join(want, " ") {
		t.Fatalf("retained files: %v, want %v", base, want)
	}

	l2, h2 := mustOpen(t, dir, wal.Options{})
	defer l2.Close()
	if l2.Recovery().CheckpointGen != 4 {
		t.Fatalf("recovery stats: %+v", l2.Recovery())
	}
	if d := instance.Diff(h2.snapshot(t), h.snapshot(t)); d != "" {
		t.Fatalf("recovered state diverges: %s", d)
	}
}

// TestTornTailRecoveryContinues: after truncating mid-record, recovery
// reports the cut, the log accepts new appends at the truncation
// point, and the next recovery sees old prefix + new records.
func TestTornTailRecoveryContinues(t *testing.T) {
	dir := t.TempDir()
	l, h := mustOpen(t, dir, wal.Options{Sync: wal.SyncAlways})
	for _, rec := range []wal.Record{
		{Op: wal.OpLoad, Program: tcSrc},
		{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("a", "b"))},
		{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("b", "c"))},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := h.Replay(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := filepath.Join(dir, "wal-00000000.log")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil { // torn mid-record
		t.Fatal(err)
	}

	l2, h2 := mustOpen(t, dir, wal.Options{Sync: wal.SyncAlways})
	rs := l2.Recovery()
	if rs.RecordsReplayed != 2 || rs.TruncatedBytes == 0 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	rec := wal.Record{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("c", "d"))}
	if err := l2.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := h2.Replay(rec); err != nil {
		t.Fatal(err)
	}
	want := h2.snapshot(t)
	l2.Close()

	l3, h3 := mustOpen(t, dir, wal.Options{})
	defer l3.Close()
	if rs := l3.Recovery(); rs.RecordsReplayed != 3 || rs.TruncatedBytes != 0 {
		t.Fatalf("second recovery stats: %+v", rs)
	}
	if d := instance.Diff(h3.snapshot(t), want); d != "" {
		t.Fatalf("state after torn-tail append diverges: %s", d)
	}
}

// TestFaultInjectionReadonly: an injected mid-record write failure
// makes the log sticky-fail (the daemon's readonly signal), and
// recovery truncates the torn record — acknowledged records survive,
// the torn one does not.
func TestFaultInjectionReadonly(t *testing.T) {
	for _, failAfter := range []int64{20, 45, 61, 80} {
		dir := t.TempDir()
		var fw *walfault.Writer
		opts := wal.Options{Sync: wal.SyncAlways, WrapWriter: func(w io.Writer) io.Writer {
			fw = &walfault.Writer{W: w, FailAfter: failAfter}
			return fw
		}}
		l, h := mustOpen(t, dir, opts)
		var acked int
		recs := []wal.Record{
			{Op: wal.OpLoad, Program: tcSrc},
			{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("a", "b"))},
			{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("b", "c"))},
			{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("c", "d"))},
		}
		var failed error
		for _, rec := range recs {
			if err := l.Append(rec); err != nil {
				failed = err
				break
			}
			if err := h.Replay(rec); err != nil {
				t.Fatal(err)
			}
			acked++
		}
		if failed == nil || !fw.Tripped() {
			t.Fatalf("failAfter=%d: fault did not fire (acked=%d)", failAfter, acked)
		}
		if l.Err() == nil {
			t.Fatalf("failAfter=%d: failure must be sticky", failAfter)
		}
		if err := l.Append(recs[len(recs)-1]); err == nil {
			t.Fatalf("failAfter=%d: append after failure must keep failing", failAfter)
		}
		l.Close()

		l2, h2 := mustOpen(t, dir, wal.Options{})
		if rs := l2.Recovery(); rs.RecordsReplayed != acked {
			t.Fatalf("failAfter=%d: recovered %d records, want %d (%+v)", failAfter, rs.RecordsReplayed, acked, rs)
		}
		if acked > 0 {
			if d := instance.Diff(h2.snapshot(t), h.snapshot(t)); d != "" {
				t.Fatalf("failAfter=%d: recovered state diverges: %s", failAfter, d)
			}
		}
		l2.Close()
	}
}

// TestSyncIntervalPolicy: under SyncInterval the sync happens on the
// first append past the deadline, driven by the injected clock.
func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	opts := wal.Options{Sync: wal.SyncInterval, SyncEvery: 50 * time.Millisecond,
		Now: func() time.Time { return now }}
	l, _ := mustOpen(t, dir, opts)
	defer l.Close()
	if err := l.Append(wal.Record{Op: wal.OpLoad, Program: tcSrc}); err != nil {
		t.Fatal(err)
	}
	now = now.Add(60 * time.Millisecond)
	if err := l.Append(wal.Record{Op: wal.OpAssert, Batch: factBatch("E", value.PathOf("a", "b"))}); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("records=%d", l.Records())
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want wal.SyncPolicy
	}{{"always", wal.SyncAlways}, {"interval", wal.SyncInterval}, {"never", wal.SyncNever}} {
		got, err := wal.ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := wal.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy must error")
	}
}
