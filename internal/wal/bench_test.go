package wal_test

import (
	"fmt"
	"testing"

	"seqlog/internal/instance"
	"seqlog/internal/value"
	"seqlog/internal/wal"
)

// buildHistory writes a load plus n assert records into dir, cutting a
// checkpoint after ckptAt records when ckptAt > 0. The workload keeps
// the derived state bounded (edges over 64 nodes, so the closure
// saturates) so the benchmark measures recovery machinery, not an
// ever-growing fixpoint.
func buildHistory(b *testing.B, dir string, n, ckptAt int) {
	b.Helper()
	h := &replayHandler{}
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CheckpointRecords: -1, CheckpointBytes: -1}, h)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	appendApply := func(rec wal.Record) {
		b.Helper()
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
		if err := h.Replay(rec); err != nil {
			b.Fatal(err)
		}
	}
	appendApply(wal.Record{Op: wal.OpLoad, Program: tcSrc + "D($x) :- F($x).\n"})
	for i := 0; i < n; i++ {
		batch := instance.New()
		batch.AddPath("E", value.PathOf(fmt.Sprintf("n%d", i%64), fmt.Sprintf("n%d", (i+1)%64)))
		batch.AddPath("F", value.PathOf("f", fmt.Sprint(i)))
		appendApply(wal.Record{Op: wal.OpAssert, Batch: batch})
		if ckptAt > 0 && i+1 == ckptAt {
			edb, err := h.rep.Engine().EDBSnapshot()
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Checkpoint(h.rep.Source(), edb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRecovery contrasts the two recovery paths over the same
// 512-record history: full-log replay vs newest checkpoint plus a
// short tail. The gap is the return on checkpoint frequency.
func BenchmarkRecovery(b *testing.B) {
	const n = 512
	for _, tc := range []struct {
		name   string
		ckptAt int
	}{
		{fmt.Sprintf("replay/n=%d", n), 0},
		{fmt.Sprintf("checkpoint-tail/n=%d", n), n - 32},
	} {
		dir := b.TempDir()
		buildHistory(b, dir, n, tc.ckptAt)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := &replayHandler{}
				l, err := wal.Open(dir, wal.Options{}, h)
				if err != nil {
					b.Fatal(err)
				}
				if got := l.Recovery().RecordsReplayed; tc.ckptAt == 0 && got != n+1 {
					b.Fatalf("replayed %d records, want %d", got, n+1)
				}
				l.Close()
			}
		})
	}
}
