package rewrite

import (
	"strings"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
)

func TestEliminatePositiveEquationsExample44(t *testing.T) {
	// Example 4.4: S($x) :- R($x), a.$x = $x.a.
	prog := mustParse(t, `S($x) :- R($x), a.$x = $x.a.`)
	got, err := EliminatePositiveEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape as the paper's output, modulo the fresh name:
	//   T(a.$x, $x) :- R($x).    S($x) :- T($x.a, $x).
	s := got.String()
	if !strings.Contains(s, "(a.$x, $x) :- R($x).") {
		t.Fatalf("auxiliary rule missing:\n%s", s)
	}
	if !strings.Contains(s, "S($x) :- ") || !strings.Contains(s, "($x.a, $x).") {
		t.Fatalf("main rule missing:\n%s", s)
	}
	if got.Features().Has(ast.FeatEquations) {
		t.Fatal("equations still present")
	}
	instances := randomFlatInstances(3, 15, []string{"R"}, []string{"a", "b"}, 5, 6)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePositiveEquationsChained(t *testing.T) {
	// Equations that bind variables in two hops, including one that can
	// only be ordered after another.
	prog := mustParse(t, `S($z) :- R($x), $x = $y.a, $z = $y.`)
	got, err := EliminatePositiveEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatEquations) {
		t.Fatal("equations still present")
	}
	instances := randomFlatInstances(5, 15, []string{"R"}, []string{"a", "b"}, 5, 5)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePositiveEquationsRecursive(t *testing.T) {
	// A positive equation inside a recursive stratum; the auxiliary
	// predicate joins the recursion without breaking stratification.
	prog := mustParse(t, `
T($x) :- R($x).
T($y) :- T($x), $x = $y.a.
S($x) :- T($x).`)
	got, err := EliminatePositiveEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatEquations) {
		t.Fatal("equations still present")
	}
	instances := randomFlatInstances(9, 12, []string{"R"}, []string{"a", "b"}, 4, 5)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePositiveEquationsKeepsNegation(t *testing.T) {
	prog := mustParse(t, `
B($x) :- R($x.$x).
---
S($y) :- R($y), $y = $x.$x, !B($y).`)
	got, err := EliminatePositiveEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatEquations) {
		t.Fatal("equations still present")
	}
	if !got.Features().Has(ast.FeatNegation) {
		t.Fatal("negation lost")
	}
	instances := randomFlatInstances(21, 12, []string{"R"}, []string{"a", "b"}, 5, 4)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminateNegatedEquationsExample46(t *testing.T) {
	// Example 4.6's program and the structure of its rewriting.
	prog := mustParse(t, `
U($x, $x) :- R($x).
U($x, $y) :- U($x, @a.$y.@b), @a != @b.
S($x) :- U($x, eps).`)
	got, err := EliminateNegatedEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's output has 7 rules in 2 strata: U1 (x2), T, S1 in the
	// pre-stratum; U (x2), S in the main stratum.
	if len(got.Strata) != 2 {
		t.Fatalf("strata = %d, want 2:\n%s", len(got.Strata), got)
	}
	if len(got.Strata[0]) != 4 || len(got.Strata[1]) != 3 {
		t.Fatalf("rule counts = %d/%d, want 4/3:\n%s", len(got.Strata[0]), len(got.Strata[1]), got)
	}
	s := got.String()
	if !strings.Contains(s, "@a = @b") {
		t.Fatalf("violation rule missing:\n%s", s)
	}
	if strings.Contains(s, "!=") {
		t.Fatalf("nonequality still present:\n%s", s)
	}
	// Equivalence: S collects a1..an.bn..b1 with ai != bi.
	instances := randomFlatInstances(31, 15, []string{"R"}, []string{"a", "b", "c"}, 5, 6)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminateNegatedEquationsMultiple(t *testing.T) {
	// Multiple nonequalities in one rule (as in Example 2.2's second
	// rule, flattened to avoid packing here).
	prog := mustParse(t, `
T($u) :- R($x.$u.$y).
A($u.$v) :- T($u), T($v), $u != $v, $u != eps, $v != eps.`)
	got, err := EliminateNegatedEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got.String(), "!=") {
		t.Fatal("nonequality still present")
	}
	instances := randomFlatInstances(37, 12, []string{"R"}, []string{"a", "b"}, 4, 4)
	assertEquivalent(t, prog, got, "A", instances...)
}

func TestEliminateEquationsFull(t *testing.T) {
	// Theorem 4.7: composing both eliminations removes E entirely.
	prog := mustParse(t, `
U($x, $x) :- R($x).
U($x, $y) :- U($x, @a.$y.@b), @a != @b.
S($x) :- U($x, eps).`)
	got, err := EliminateEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatEquations) {
		t.Fatalf("E still present: %s\n%s", got.Features(), got)
	}
	instances := randomFlatInstances(41, 12, []string{"R"}, []string{"a", "b", "c"}, 4, 6)
	assertEquivalent(t, prog, got, "S", instances...)

	// And stacking arity elimination gives an {I,...}-only program.
	noArity, err := EliminateArity(got, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	f := noArity.Features()
	if f.Has(ast.FeatEquations) || f.Has(ast.FeatArity) {
		t.Fatalf("features = %s", f)
	}
	assertEquivalent(t, prog, noArity, "S", instances...)
}

func TestEliminateNegatedEquationsNoopWithout(t *testing.T) {
	prog := mustParse(t, `S($x) :- R($x), a.$x = $x.a.`)
	got, err := EliminateNegatedEquations(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != prog.String() {
		t.Fatalf("program changed without nonequalities:\n%s", got)
	}
}

func TestEliminateIntermediatesFolding(t *testing.T) {
	// Theorem 4.16: nonrecursive, negation-free program folds to a
	// single IDB relation using equations.
	prog := mustParse(t, `
T(a.$x, $x) :- R($x).
S($x) :- T($x.a, $x).`)
	got, err := EliminateIntermediates(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatIntermediates) {
		t.Fatalf("I still present:\n%s", got)
	}
	names := got.IDBNames()
	if len(names) != 1 || names[0] != "S" {
		t.Fatalf("IDB names = %v", names)
	}
	instances := randomFlatInstances(43, 15, []string{"R"}, []string{"a", "b"}, 5, 6)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminateIntermediatesDeepChain(t *testing.T) {
	prog := mustParse(t, `
T1($x.$x) :- R($x).
T2($y.b) :- T1($y).
T3($z) :- T2($z.b), Q($z)
.
S($w.c) :- T3($w).`)
	got, err := EliminateIntermediates(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDBNames()) != 1 {
		t.Fatalf("IDB names = %v", got.IDBNames())
	}
	instances := randomFlatInstances(47, 12, []string{"R", "Q"}, []string{"a", "b"}, 4, 4)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminateIntermediatesMultipleDefsAndCalls(t *testing.T) {
	// Two defining rules for T and two T-subgoals in one body: the
	// unfolding is a cartesian product.
	prog := mustParse(t, `
T(a.$x) :- R($x).
T(b.$x) :- Q($x).
S($x.$y) :- T($x), T($y).`)
	got, err := EliminateIntermediates(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got.Rules()); n != 4 {
		t.Fatalf("rules = %d, want 4:\n%s", n, got)
	}
	instances := randomFlatInstances(53, 12, []string{"R", "Q"}, []string{"a", "b"}, 3, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminateIntermediatesRejections(t *testing.T) {
	rec := mustParse(t, `
T($x) :- R($x).
T($x.a) :- T($x).
S($x) :- T($x).`)
	if _, err := EliminateIntermediates(rec, "S"); err == nil {
		t.Fatal("recursive program must be rejected (Theorem 5.6)")
	}
	neg := mustParse(t, `
T($x) :- R($x).
---
S($x) :- R($x), !T($x.a).`)
	if _, err := EliminateIntermediates(neg, "S"); err == nil {
		t.Fatal("negation must be rejected (Theorem 5.5)")
	}
	if _, err := EliminateIntermediates(mustParse(t, `S($x) :- R($x).`), "Z"); err == nil {
		t.Fatal("unknown output must be rejected")
	}
}

func TestEliminateIntermediatesUndefinedSubgoal(t *testing.T) {
	// T2 never defined: rules calling it fold to nothing.
	prog := parser.MustParseProgram(`
T(a) :- R($x).
S($x) :- R($x), T(a).
S(b.$x) :- R($x), T2($x).`)
	// T2 is EDB here by definition (no head), so this needs care: make
	// T2 an IDB with zero rules by... it cannot be. Instead verify the
	// equivalence when T has a defining rule but yields no facts.
	got, err := EliminateIntermediates(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	instances := randomFlatInstances(59, 8, []string{"R", "T2"}, []string{"a", "b"}, 3, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}
