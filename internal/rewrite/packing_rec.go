package rewrite

import (
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// DoubleMarkers are the two distinct atoms used as simulated delimiters
// in the Theorem 4.15 doubling construction. The block code is
//
//	data atom a   ->  a·a        (the paper's doubling)
//	open  ⟨       ->  o·c
//	close ⟩       ->  c·o
//
// Every data block consists of two equal atoms while the marker blocks
// consist of the two distinct fixed atoms, so block type is decidable
// with positive patterns only (@x·@x, o·c, c·o) — no negation is
// introduced, matching the paper's remark. The code is injective and
// concatenation-homomorphic on block-aligned strings, and all pattern
// pieces compile to even-length encoded patterns, so alignment is
// preserved; balance guards exclude junk segment bindings.
type DoubleMarkers struct {
	O, C value.Atom
}

// DefaultDoubleMarkers uses the atoms "0" and "1"; by the block-code
// argument any two distinct atoms work, even ones occurring in data.
var DefaultDoubleMarkers = DoubleMarkers{O: value.Intern("0"), C: value.Intern("1")}

// SimulatePackingDoubled removes the P feature from an arbitrary
// (possibly recursive) program computing a flat query, per the doubling
// construction sketched in the proof of Theorem 4.15:
//
//  1. a first stratum doubles every EDB relation with the paper's
//     three-rule program;
//  2. every rule is transliterated into the block code, with a
//     recursively-defined balance guard on each path variable;
//  3. a final stratum undoubles the output relation with the paper's
//     three-rule program.
//
// The input program must not use equations (compose with
// EliminateEquations first; the paper's Theorem 4.7 makes them
// redundant in the presence of I) and its EDB relations must be
// monadic. The result uses recursion, arity and intermediate
// predicates, but no packing and no new negation.
func SimulatePackingDoubled(p ast.Program, output string, m DoubleMarkers) (ast.Program, error) {
	if m.O == m.C {
		return ast.Program{}, errf("packing", "", "doubling markers must be distinct")
	}
	if p.Features().Has(ast.FeatEquations) {
		return ast.Program{}, errf("packing", "", "doubling simulation requires an equation-free program; run EliminateEquations first")
	}
	arities, err := p.Arities()
	if err != nil {
		return ast.Program{}, errf("packing", "", "%v", err)
	}
	gen := ast.NewNameGen(p)
	edb := p.EDBNames()
	for _, n := range edb {
		if arities[n] > 1 {
			return ast.Program{}, errf("packing", "", "EDB relation %s has arity %d; queries are over monadic schemas", n, arities[n])
		}
	}
	if a, ok := arities[output]; ok && a > 1 {
		return ast.Program{}, errf("packing", "", "output relation %s has arity %d; flat unary queries have arity <= 1", output, a)
	}

	enc := map[string]string{} // original relation name -> encoded name
	for _, n := range p.RelationNames() {
		enc[n] = gen.Fresh(n + "_enc")
	}
	if _, ok := enc[output]; !ok {
		return ast.Program{}, errf("packing", "", "output relation %s does not occur in the program", output)
	}
	o := ast.Expr{ast.Const{A: m.O}}
	c := ast.Expr{ast.Const{A: m.C}}

	var strata []ast.Stratum
	// Stratum 0: double the EDB relations (the paper's rules).
	var dbl ast.Stratum
	for _, n := range edb {
		if arities[n] == 0 {
			dbl = append(dbl, ast.Rule{
				Head: ast.Pred{Name: enc[n]},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: n})},
			})
			continue
		}
		t := gen.Fresh("Dbl" + n)
		dbl = append(dbl,
			// T(eps, $x) :- R($x).
			ast.Rule{
				Head: ast.Pred{Name: t, Args: []ast.Expr{ast.Eps(), ast.P("x")}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: n, Args: []ast.Expr{ast.P("x")}})},
			},
			// T($x.@y.@y, $z) :- T($x, @y.$z).
			ast.Rule{
				Head: ast.Pred{Name: t, Args: []ast.Expr{ast.Cat(ast.P("x"), ast.A("y"), ast.A("y")), ast.P("z")}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: t, Args: []ast.Expr{ast.P("x"), ast.Cat(ast.A("y"), ast.P("z"))}})},
			},
			// R'($x) :- T($x, eps).
			ast.Rule{
				Head: ast.Pred{Name: enc[n], Args: []ast.Expr{ast.P("x")}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: t, Args: []ast.Expr{ast.P("x"), ast.Eps()}})},
			},
		)
	}
	strata = append(strata, dbl)

	// Main strata: transliterate each original stratum, adding one
	// substring relation and one balance relation per stratum.
	visible := append([]string{}, edb...)
	for _, s := range p.Strata {
		heads := map[string]bool{}
		for _, r := range s {
			if !heads[r.Head.Name] {
				heads[r.Head.Name] = true
				visible = append(visible, r.Head.Name)
			}
		}
		sub := gen.Fresh("Sub")
		bal := gen.Fresh("Bal")
		var out ast.Stratum
		for _, r := range s {
			nr := ast.Rule{Head: encodePred(r.Head, enc, m)}
			guard := map[ast.Var]bool{}
			for _, l := range r.Body {
				pr, ok := l.Atom.(ast.Pred)
				if !ok {
					return ast.Program{}, errf("packing", r.String(), "internal: equation survived the precondition check")
				}
				nr.Body = append(nr.Body, ast.Literal{Neg: l.Neg, Atom: encodePred(pr, enc, m)})
			}
			for _, v := range r.Vars() {
				if !v.Atomic && !guard[v] {
					guard[v] = true
					nr.Body = append(nr.Body, ast.Pos(ast.Pred{Name: bal, Args: []ast.Expr{ast.Expr{ast.VarT{V: v}}}}))
				}
			}
			out = append(out, nr)
		}
		// Substring rules over every visible relation.
		seen := map[string]bool{}
		for _, vrel := range visible {
			if seen[vrel] {
				continue
			}
			seen[vrel] = true
			ar := arities[vrel]
			for pos := 0; pos < ar; pos++ {
				args := make([]ast.Expr, ar)
				for k := range args {
					if k == pos {
						args[k] = ast.Cat(ast.P("sl"), ast.P("sm"), ast.P("sr"))
					} else {
						args[k] = ast.Expr{ast.VarT{V: ast.PVar(fmt.Sprintf("so%d", k))}}
					}
				}
				out = append(out, ast.Rule{
					Head: ast.Pred{Name: sub, Args: []ast.Expr{ast.P("sm")}},
					Body: []ast.Literal{ast.Pos(ast.Pred{Name: enc[vrel], Args: args})},
				})
			}
		}
		// Balance rules: Bal(eps); append a data block; append a
		// balanced marker group.
		out = append(out,
			ast.Rule{Head: ast.Pred{Name: bal, Args: []ast.Expr{ast.Eps()}}},
			ast.Rule{
				Head: ast.Pred{Name: bal, Args: []ast.Expr{ast.Cat(ast.P("x"), ast.A("a"), ast.A("a"))}},
				Body: []ast.Literal{
					ast.Pos(ast.Pred{Name: bal, Args: []ast.Expr{ast.P("x")}}),
					ast.Pos(ast.Pred{Name: sub, Args: []ast.Expr{ast.Cat(ast.P("x"), ast.A("a"), ast.A("a"))}}),
				},
			},
			ast.Rule{
				Head: ast.Pred{Name: bal, Args: []ast.Expr{ast.Cat(ast.P("x"), o, c, ast.P("y"), c, o)}},
				Body: []ast.Literal{
					ast.Pos(ast.Pred{Name: bal, Args: []ast.Expr{ast.P("x")}}),
					ast.Pos(ast.Pred{Name: bal, Args: []ast.Expr{ast.P("y")}}),
					ast.Pos(ast.Pred{Name: sub, Args: []ast.Expr{ast.Cat(ast.P("x"), o, c, ast.P("y"), c, o)}}),
				},
			},
		)
		strata = append(strata, out)
	}

	// Final stratum: undouble the output (the paper's rules).
	var und ast.Stratum
	if arities[output] == 0 {
		und = append(und, ast.Rule{
			Head: ast.Pred{Name: output},
			Body: []ast.Literal{ast.Pos(ast.Pred{Name: enc[output]})},
		})
	} else {
		u := gen.Fresh("Und" + output)
		und = append(und,
			// T($x, eps) :- S'($x).
			ast.Rule{
				Head: ast.Pred{Name: u, Args: []ast.Expr{ast.P("x"), ast.Eps()}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: enc[output], Args: []ast.Expr{ast.P("x")}})},
			},
			// T($x, @y.$z) :- T($x.@y.@y, $z).
			ast.Rule{
				Head: ast.Pred{Name: u, Args: []ast.Expr{ast.P("x"), ast.Cat(ast.A("y"), ast.P("z"))}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: u, Args: []ast.Expr{ast.Cat(ast.P("x"), ast.A("y"), ast.A("y")), ast.P("z")}})},
			},
			// S($x) :- T(eps, $x).
			ast.Rule{
				Head: ast.Pred{Name: output, Args: []ast.Expr{ast.P("x")}},
				Body: []ast.Literal{ast.Pos(ast.Pred{Name: u, Args: []ast.Expr{ast.Eps(), ast.P("x")}})},
			},
		)
	}
	strata = append(strata, und)

	prog := ast.Program{Strata: strata}
	if prog.Features().Has(ast.FeatPacking) {
		return ast.Program{}, errf("packing", "", "internal: packing survived the doubling simulation")
	}
	if err := prog.Validate(); err != nil {
		return ast.Program{}, errf("packing", "", "doubling produced an invalid program: %v\n%s", err, prog)
	}
	return prog, nil
}

// encodePred transliterates a predicate into the block code.
func encodePred(p ast.Pred, enc map[string]string, m DoubleMarkers) ast.Pred {
	args := make([]ast.Expr, len(p.Args))
	for i, a := range p.Args {
		args[i] = encodeExpr(a, m)
	}
	return ast.Pred{Name: enc[p.Name], Args: args}
}

// encodeExpr maps a·a for constants, @x·@x for atomic variables, $x for
// path variables (guarded separately), and o·c … c·o around packing.
func encodeExpr(e ast.Expr, m DoubleMarkers) ast.Expr {
	var out ast.Expr
	for _, t := range e {
		switch x := t.(type) {
		case ast.Const:
			out = append(out, x, x)
		case ast.VarT:
			if x.V.Atomic {
				out = append(out, x, x)
			} else {
				out = append(out, x)
			}
		case ast.Pack:
			out = append(out, ast.Const{A: m.O}, ast.Const{A: m.C})
			out = append(out, encodeExpr(x.E, m)...)
			out = append(out, ast.Const{A: m.C}, ast.Const{A: m.O})
		}
	}
	return out
}

// EncodeDoubledPath is the concrete block code on values, exposed for
// tests: data atoms double, packed values become o·c … c·o groups.
func EncodeDoubledPath(p value.Path, m DoubleMarkers) value.Path {
	var out value.Path
	for _, v := range p {
		switch x := v.(type) {
		case value.Atom:
			out = append(out, x, x)
		case value.Packed:
			out = append(out, m.O, m.C)
			out = append(out, EncodeDoubledPath(x.Unpack(), m)...)
			out = append(out, m.C, m.O)
		}
	}
	return out
}

// DecodeDoubledPath inverts EncodeDoubledPath; ok is false on
// non-well-formed input.
func DecodeDoubledPath(p value.Path, m DoubleMarkers) (value.Path, bool) {
	out, rest, ok := decodeBlocks(p, m)
	if !ok || len(rest) != 0 {
		return nil, false
	}
	return out, true
}

func decodeBlocks(p value.Path, m DoubleMarkers) (value.Path, value.Path, bool) {
	var out value.Path
	for len(p) >= 2 {
		a, aok := p[0].(value.Atom)
		b, bok := p[1].(value.Atom)
		if !aok || !bok {
			return nil, nil, false
		}
		switch {
		case a == m.O && b == m.C:
			inner, rest, ok := decodeBlocks(p[2:], m)
			if !ok {
				return nil, nil, false
			}
			if len(rest) < 2 {
				return nil, nil, false
			}
			ca, caok := rest[0].(value.Atom)
			co, cook := rest[1].(value.Atom)
			if !caok || !cook || ca != m.C || co != m.O {
				return nil, nil, false
			}
			out = append(out, value.Pack(inner))
			p = rest[2:]
		case a == m.C && b == m.O:
			// A close marker ends this level.
			return out, p, true
		case a == b:
			out = append(out, a)
			p = p[2:]
		default:
			return nil, nil, false
		}
	}
	if len(p) != 0 {
		return nil, nil, false
	}
	return out, p, true
}

// EliminatePacking removes the P feature from a program computing a
// flat unary query (Theorem 4.15: packing is redundant): nonrecursive
// programs go through Lemmas 4.10–4.13, recursive ones through the
// doubling simulation (composed with equation elimination when needed).
func EliminatePacking(p ast.Program, output string) (ast.Program, error) {
	if !p.Features().Has(ast.FeatPacking) {
		return p.Clone(), nil
	}
	if !p.HasRecursion() {
		return EliminatePackingNonrecursive(p, output)
	}
	q := p
	if q.Features().Has(ast.FeatEquations) {
		var err error
		q, err = EliminateEquations(q)
		if err != nil {
			return ast.Program{}, err
		}
	}
	return SimulatePackingDoubled(q, output, DefaultDoubleMarkers)
}
