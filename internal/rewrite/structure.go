package rewrite

import (
	"strings"

	"seqlog/internal/ast"
)

// Structure is a packing structure δ(e) (paper §4.3.4): an alternation
// of stars and packed sub-structures, beginning and ending with a star,
// with no two adjacent stars.
type Structure []SItem

// SItem is one item of a packing structure.
type SItem interface{ isSItem() }

// SStar is the ∗ placeholder for a packing-free component.
type SStar struct{}

// SPack is a packed sub-structure ⟨δ⟩.
type SPack struct{ Inner Structure }

func (SStar) isSItem() {}
func (SPack) isSItem() {}

// FlatStructure is δ(e) for packing-free e: a single star.
var FlatStructure = Structure{SStar{}}

// StructureOf computes δ(e): δ(ε) = ∗, δ(a) = ∗ for atoms and
// variables, δ(⟨e⟩) = ∗·⟨δ(e)⟩·∗, δ(e1·e2) = δ(e1)·δ(e2) with
// consecutive stars merged.
func StructureOf(e ast.Expr) Structure {
	s := Structure{SStar{}}
	for _, t := range e {
		if p, ok := t.(ast.Pack); ok {
			s = append(s, SPack{Inner: StructureOf(p.E)}, SStar{})
		}
		// Constants and variables merge into the current star.
	}
	return s
}

// Stars counts the stars (= number of components).
func (s Structure) Stars() int {
	n := 0
	for _, it := range s {
		switch x := it.(type) {
		case SStar:
			n++
		case SPack:
			n += x.Inner.Stars()
		}
	}
	return n
}

// IsFlat reports whether the structure is the single star.
func (s Structure) IsFlat() bool {
	return len(s) == 1
}

// Key renders the structure canonically, e.g. "*<*<*>*>*<*>*"
// (Example 4.11's δ).
func (s Structure) Key() string {
	var b strings.Builder
	s.appendKey(&b)
	return b.String()
}

func (s Structure) appendKey(b *strings.Builder) {
	for _, it := range s {
		switch x := it.(type) {
		case SStar:
			b.WriteByte('*')
		case SPack:
			b.WriteByte('<')
			x.Inner.appendKey(b)
			b.WriteByte('>')
		}
	}
}

// Equal reports structural equality.
func (s Structure) Equal(t Structure) bool { return s.Key() == t.Key() }

// Components splits e into the packing-free components substituted for
// the stars of δ(e), in star order (Example 4.11).
func Components(e ast.Expr) []ast.Expr {
	var comps []ast.Expr
	componentsInto(e, &comps)
	return comps
}

func componentsInto(e ast.Expr, comps *[]ast.Expr) {
	cur := ast.Expr{}
	for _, t := range e {
		if p, ok := t.(ast.Pack); ok {
			*comps = append(*comps, cur)
			componentsInto(p.E, comps)
			cur = ast.Expr{}
		} else {
			cur = append(cur, t)
		}
	}
	*comps = append(*comps, cur)
}

// Reconstruct rebuilds the expression with the given structure whose
// components are the given expressions; it is the inverse of
// (StructureOf, Components). The number of components must equal
// s.Stars().
func (s Structure) Reconstruct(comps []ast.Expr) ast.Expr {
	pos := 0
	e := s.reconstruct(comps, &pos)
	if pos != len(comps) {
		panic("rewrite: Reconstruct: component count mismatch")
	}
	return e
}

func (s Structure) reconstruct(comps []ast.Expr, pos *int) ast.Expr {
	var e ast.Expr
	for _, it := range s {
		switch x := it.(type) {
		case SStar:
			e = ast.Cat(e, comps[*pos])
			*pos++
		case SPack:
			e = ast.Cat(e, ast.Packed(x.Inner.reconstruct(comps, pos)))
		}
	}
	return e
}
