package rewrite

import (
	"math/rand"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

// mustQuery evaluates prog on edb and returns the output relation.
func mustQuery(t *testing.T, prog ast.Program, edb *instance.Instance, output string) *instance.Relation {
	t.Helper()
	rel, err := eval.Query(prog, edb, output, eval.Limits{})
	if err != nil {
		t.Fatalf("Query(%s): %v\nprogram:\n%s", output, err, prog)
	}
	return rel
}

// assertEquivalent checks that two programs compute the same output
// relation on each instance.
func assertEquivalent(t *testing.T, p1, p2 ast.Program, output string, instances ...*instance.Instance) {
	t.Helper()
	for i, edb := range instances {
		r1 := mustQuery(t, p1, edb, output)
		r2 := mustQuery(t, p2, edb, output)
		if !r1.Equal(r2) {
			t.Fatalf("instance %d: output %s differs\noriginal: %v\nrewritten: %v\nEDB:\n%s\nrewritten program:\n%s",
				i, output, r1.Sorted(), r2.Sorted(), edb, p2)
		}
	}
}

// randomFlatInstances builds deterministic pseudo-random flat monadic
// instances over the given relation names and alphabet.
func randomFlatInstances(seed int64, count int, rels []string, alphabet []string, maxPaths, maxLen int) []*instance.Instance {
	r := rand.New(rand.NewSource(seed))
	var out []*instance.Instance
	for i := 0; i < count; i++ {
		inst := instance.New()
		for _, rel := range rels {
			n := r.Intn(maxPaths + 1)
			for j := 0; j < n; j++ {
				l := r.Intn(maxLen + 1)
				p := make(value.Path, l)
				for k := range p {
					p[k] = value.Intern(alphabet[r.Intn(len(alphabet))])
				}
				inst.AddPath(rel, p)
			}
			// Relations must exist even when empty so arities line up.
			inst.Ensure(rel, 1)
		}
		out = append(out, inst)
	}
	return out
}

// holdsOn reports whether the nullary relation A holds after running p.
func holdsOn(p ast.Program, edb *instance.Instance) (bool, error) {
	return eval.Holds(p, edb, "A", eval.Limits{})
}

func mustParse(t *testing.T, src string) ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return p
}
