package rewrite

import (
	"seqlog/internal/ast"
)

// EliminatePositiveEquations removes every positive equation using the
// auxiliary-predicate method of Example 4.4: a rule
//
//	H :- B, e1 = e2            (vars of e1 limited by B)
//
// becomes
//
//	T(e1, v1, ..., vk) :- B.   H :- T(e2, v1, ..., vk), Negs.
//
// where v1..vk are the variables limited so far. Equations are
// processed in the limited-closure order of §2.2, so chained equations
// work; negated equations are left untouched (see
// EliminateNegatedEquations). The rewriting is valid with or without
// negation and recursion, because the auxiliary rules contain only
// positive predicates.
func EliminatePositiveEquations(p ast.Program) (ast.Program, error) {
	gen := ast.NewNameGen(p)
	out := ast.Program{Strata: make([]ast.Stratum, len(p.Strata))}
	for si, s := range p.Strata {
		var stratum ast.Stratum
		for _, r := range s {
			rules, err := elimPosEqRule(r.Clone(), gen)
			if err != nil {
				return ast.Program{}, err
			}
			stratum = append(stratum, rules...)
		}
		out.Strata[si] = stratum
	}
	return out, nil
}

func elimPosEqRule(r ast.Rule, gen *ast.NameGen) ([]ast.Rule, error) {
	posPreds, posEqs, _, _ := splitBody(r.Body)
	if len(posEqs) == 0 {
		return []ast.Rule{r}, nil
	}
	// Current positive subgoals; after each replacement this collapses
	// to the single auxiliary subgoal, which carries all bound
	// variables (the paper drops the original body, as in Example 4.4).
	cur := make([]ast.Literal, 0, len(posPreds))
	bound := map[ast.Var]bool{}
	for _, pp := range posPreds {
		cur = append(cur, ast.Pos(pp))
		for _, a := range pp.Args {
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
	}
	var negs []ast.Literal
	for _, l := range r.Body {
		if l.Neg {
			negs = append(negs, l)
		}
	}
	var aux []ast.Rule
	remaining := append([]ast.Eq{}, posEqs...)
	for len(remaining) > 0 {
		picked := -1
		var ground, pattern ast.Expr
		for i, eq := range remaining {
			if allVarsIn(eq.L, bound) {
				picked, ground, pattern = i, eq.L, eq.R
				break
			}
			if allVarsIn(eq.R, bound) {
				picked, ground, pattern = i, eq.R, eq.L
				break
			}
		}
		if picked < 0 {
			return nil, errf("equations", r.String(), "positive equations cannot be ordered; rule is unsafe")
		}
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		// Ground on both sides: fold the equation away entirely by
		// still creating the auxiliary predicate (keeps the rewriting
		// uniform and correct).
		vars := sortedVars(bound)
		name := gen.Fresh("Eq")
		headArgs := append([]ast.Expr{ground}, varExprs(vars)...)
		aux = append(aux, ast.Rule{
			Head: ast.Pred{Name: name, Args: headArgs},
			Body: cur,
		})
		callArgs := append([]ast.Expr{pattern}, varExprs(vars)...)
		cur = []ast.Literal{ast.Pos(ast.Pred{Name: name, Args: callArgs})}
		for _, v := range pattern.Vars() {
			bound[v] = true
		}
	}
	main := ast.Rule{Head: r.Head, Body: append(cur, negs...)}
	return append(aux, main), nil
}

func allVarsIn(e ast.Expr, set map[ast.Var]bool) bool {
	for _, v := range e.Vars() {
		if !set[v] {
			return false
		}
	}
	return true
}

// EliminateNegatedEquations removes every nonequality with the
// stratum-splitting method of Lemma 4.5. For each stratum ∆ containing
// nonequalities, a new stratum ∆′ is inserted right before ∆, under a
// renaming ρ of ∆'s head relation names to fresh names:
//
//   - every rule H :- B of ∆ contributes ρ(H) :- ρ(B′) to ∆′, where B′
//     is B without its nonequalities;
//   - a rule with nonequalities e_i ≠ e'_i additionally contributes, for
//     a fresh T and each i, the rule T(v1,...,vm) :- ρ(B′), e_i = e'_i
//     (v1..vm the variables of B′);
//   - in ∆ the rule's nonequalities are replaced by ¬T(v1,...,vm).
//
// The resulting program still uses positive equations; compose with
// EliminatePositiveEquations to remove all equations (Theorem 4.7).
func EliminateNegatedEquations(p ast.Program) (ast.Program, error) {
	gen := ast.NewNameGen(p)
	var out []ast.Stratum
	for _, s := range p.Strata {
		if !hasNegatedEquations(s) {
			out = append(out, s)
			continue
		}
		// Renaming of ∆'s head names to fresh names.
		rho := map[string]string{}
		for _, r := range s {
			if _, ok := rho[r.Head.Name]; !ok {
				rho[r.Head.Name] = gen.Fresh(r.Head.Name + "_pre")
			}
		}
		var pre, cur ast.Stratum
		for _, r := range s {
			posAndNegPreds, negEqs := stripNegEqs(r)
			// ρ(H) :- ρ(B′), for every rule.
			pre = append(pre, renamePredsInRule(posAndNegPreds, rho))
			if len(negEqs) == 0 {
				cur = append(cur, r)
				continue
			}
			vars := bodyVarsFirstOccurrence(posAndNegPreds.Body)
			tName := gen.Fresh("Neq")
			for _, eq := range negEqs {
				tRule := renamePredsInRule(posAndNegPreds, rho)
				tRule.Head = ast.Pred{Name: tName, Args: varExprs(vars)}
				tRule.Body = append(tRule.Body, ast.Pos(eq))
				pre = append(pre, tRule)
			}
			guarded := posAndNegPreds.Clone()
			guarded.Body = append(guarded.Body, ast.Neg(ast.Pred{Name: tName, Args: varExprs(vars)}))
			cur = append(cur, guarded)
		}
		out = append(out, pre, cur)
	}
	prog := ast.Program{Strata: out}
	if err := prog.Validate(); err != nil {
		return ast.Program{}, errf("equations", "", "negated-equation elimination produced an invalid program: %v", err)
	}
	return prog, nil
}

// stripNegEqs returns the rule without its nonequalities, plus the
// stripped nonequalities.
func stripNegEqs(r ast.Rule) (ast.Rule, []ast.Eq) {
	out := ast.Rule{Head: r.Head}
	var negEqs []ast.Eq
	for _, l := range r.Body {
		if l.Neg {
			if eq, ok := l.Atom.(ast.Eq); ok {
				negEqs = append(negEqs, eq)
				continue
			}
		}
		out.Body = append(out.Body, l)
	}
	return out.Clone(), negEqs
}

func renamePredsInRule(r ast.Rule, rho map[string]string) ast.Rule {
	out := r.Clone()
	if n, ok := rho[out.Head.Name]; ok {
		out.Head.Name = n
	}
	for i, l := range out.Body {
		if pr, ok := l.Atom.(ast.Pred); ok {
			if n, renamed := rho[pr.Name]; renamed {
				pr.Name = n
				out.Body[i] = ast.Literal{Neg: l.Neg, Atom: pr}
			}
		}
	}
	return out
}

// EliminateEquations removes all equations, positive and negated, per
// Theorem 4.7 (E is redundant in the presence of I): first the
// Lemma 4.5 stratum splitting for nonequalities, then the auxiliary-
// predicate folding for positive equations. The result uses
// intermediate predicates and arity; compose with EliminateArity for an
// arity-free program.
func EliminateEquations(p ast.Program) (ast.Program, error) {
	q, err := EliminateNegatedEquations(p)
	if err != nil {
		return ast.Program{}, err
	}
	return EliminatePositiveEquations(q)
}

// EliminateIntermediates folds away every intermediate predicate by
// unfolding rule bodies, per Theorem 4.16 (I is redundant in the
// presence of E and the absence of N and R). The designated output
// relation remains; a subgoal T(e1,...,en) is replaced by each defining
// body of T (variables freshly renamed) plus equations e_i = f_i
// against the defining head's components.
func EliminateIntermediates(p ast.Program, output string) (ast.Program, error) {
	f := p.Features()
	if f.Has(ast.FeatRecursion) {
		return ast.Program{}, errf("intermediates", "", "program is recursive; I is primitive in the presence of R (Theorem 5.6)")
	}
	if f.Has(ast.FeatNegation) {
		return ast.Program{}, errf("intermediates", "", "program uses negation; I is primitive in the presence of N (Theorem 5.5)")
	}
	idb := map[string]bool{}
	for _, n := range p.IDBNames() {
		idb[n] = true
	}
	if !idb[output] {
		return ast.Program{}, errf("intermediates", "", "output relation %s is not an IDB relation", output)
	}
	gen := ast.NewNameGen(p)
	defs := map[string][]ast.Rule{}
	for _, r := range p.Rules() {
		defs[r.Head.Name] = append(defs[r.Head.Name], r)
	}
	var done []ast.Rule
	work := append([]ast.Rule{}, defs[output]...)
	guard := 0
	for len(work) > 0 {
		guard++
		if guard > 1_000_000 {
			return ast.Program{}, errf("intermediates", "", "unfolding did not terminate (program too large or recursive)")
		}
		r := work[0]
		work = work[1:]
		// Find the first intermediate subgoal.
		idx := -1
		var sub ast.Pred
		for i, l := range r.Body {
			if pr, ok := l.Atom.(ast.Pred); ok && idb[pr.Name] {
				idx, sub = i, pr
				break
			}
		}
		if idx < 0 {
			done = append(done, r)
			continue
		}
		rest := append(append([]ast.Literal{}, r.Body[:idx]...), r.Body[idx+1:]...)
		for _, def := range defs[sub.Name] {
			fresh := renameRuleVars(def, gen)
			body := append(append([]ast.Literal{}, rest...), fresh.Body...)
			for i := range sub.Args {
				body = append(body, ast.Pos(ast.Eq{L: sub.Args[i], R: fresh.Head.Args[i]}))
			}
			work = append(work, ast.Rule{Head: r.Head, Body: body})
		}
		// No defining rules: the subgoal is unsatisfiable; drop the rule.
	}
	prog := ast.NewProgram(done...)
	if err := prog.Validate(); err != nil {
		return ast.Program{}, errf("intermediates", "", "folding produced an invalid program: %v", err)
	}
	return prog, nil
}
