package rewrite

import (
	"strings"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func TestLemma41EncodingInjective(t *testing.T) {
	// (s1,s2) = (s1',s2') iff encodings equal — exhaustively over small
	// paths INCLUDING paths containing the markers.
	m := DefaultArityMarkers
	alphabet := []string{"a", "0", "1"}
	var paths []value.Path
	paths = append(paths, value.Epsilon)
	for _, x := range alphabet {
		paths = append(paths, value.PathOf(x))
		for _, y := range alphabet {
			paths = append(paths, value.PathOf(x, y))
		}
	}
	type pair struct{ i, j int }
	seen := map[string]pair{}
	for i, s1 := range paths {
		for j, s2 := range paths {
			k := m.EncodeTuplePaths([]value.Path{s1, s2}).Key()
			if prev, dup := seen[k]; dup && (prev.i != i || prev.j != j) {
				t.Fatalf("collision: (%v,%v) and (%v,%v)", paths[prev.i], paths[prev.j], s1, s2)
			}
			seen[k] = pair{i, j}
		}
	}
}

func TestEliminateArityExample43(t *testing.T) {
	// Example 4.3: reversal with a binary T, and the paper's expected
	// unary rewriting (with markers a, b as in the paper).
	prog := mustParse(t, `
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`)
	m := ArityMarkers{A: value.Intern("a"), B: value.Intern("b")}
	got, err := EliminateArity(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, `
T($x.a.a.$x.b) :- R($x).
T($x.a.$y.@u.a.$x.b.$y.@u) :- T($x.@u.a.$y.a.$x.@u.b.$y).
S($x) :- T(a.$x.a.b.$x).`)
	if got.String() != want.String() {
		t.Fatalf("Example 4.3 rewriting differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got.Features().Has(ast.FeatArity) {
		t.Fatal("arity feature still present")
	}
}

func TestEliminateArityEquivalence(t *testing.T) {
	reverse := mustParse(t, `
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`)
	rewritten, err := EliminateArity(reverse, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	// Alphabet includes the markers "0" and "1" on purpose: Lemma 4.1
	// guarantees correctness even when data collides with markers.
	instances := randomFlatInstances(7, 12, []string{"R"}, []string{"a", "b", "0", "1"}, 4, 5)
	assertEquivalent(t, reverse, rewritten, "S", instances...)
}

func TestEliminateArityTernary(t *testing.T) {
	// Ternary IDB relations reduce in two steps.
	prog := mustParse(t, `
T($x, $y, $z) :- R($x.$y.$z).
S($x) :- T($x, $y, $z).
S2($z) :- T($x, $y, $z).`)
	rewritten, err := EliminateArity(prog, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten.Features().Has(ast.FeatArity) {
		t.Fatalf("arity still present:\n%s", rewritten)
	}
	instances := randomFlatInstances(11, 10, []string{"R"}, []string{"a", "b", "0"}, 4, 4)
	assertEquivalent(t, prog, rewritten, "S", instances...)
	assertEquivalent(t, prog, rewritten, "S2", instances...)
}

func TestEliminateArityWithNegation(t *testing.T) {
	prog := mustParse(t, `
T($x, $y) :- R($x.$y).
---
S($x) :- R($x.$y), !T($y, $x).`)
	rewritten, err := EliminateArity(prog, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	if rewritten.Features().Has(ast.FeatArity) {
		t.Fatal("arity still present")
	}
	instances := randomFlatInstances(13, 12, []string{"R"}, []string{"a", "b"}, 5, 4)
	assertEquivalent(t, prog, rewritten, "S", instances...)
}

func TestEliminateArityRejectsBinaryEDB(t *testing.T) {
	prog := mustParse(t, `S(@x) :- D(@x, @y).`)
	if _, err := EliminateArity(prog, DefaultArityMarkers); err == nil {
		t.Fatal("binary EDB must be rejected")
	}
	if _, err := EliminateArity(mustParse(t, `S($x) :- R($x).`), ArityMarkers{A: value.Intern("0"), B: value.Intern("0")}); err == nil {
		t.Fatal("identical markers must be rejected")
	}
}

func TestEliminateArityLeavesNullary(t *testing.T) {
	prog := mustParse(t, `
A :- R($x).
S($x) :- R($x), A.`)
	rewritten, err := EliminateArity(prog, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rewritten.String(), "A :- R($x).") {
		t.Fatalf("nullary rule altered:\n%s", rewritten)
	}
	instances := randomFlatInstances(17, 6, []string{"R"}, []string{"a"}, 3, 3)
	assertEquivalent(t, prog, rewritten, "S", instances...)
}

func TestEncodeTuplePathsMatchesProgram(t *testing.T) {
	// The relation contents of the rewritten program are exactly the
	// encodings of the original tuples.
	prog := mustParse(t, `
T($x, $y) :- R($x.$y).`)
	rewritten, err := EliminateArity(prog, DefaultArityMarkers)
	if err != nil {
		t.Fatal(err)
	}
	edb := parser.MustParseInstance(`R(a.b).`)
	orig := mustQuery(t, prog, edb, "T")
	enc := mustQuery(t, rewritten, edb, "T")
	if enc.Arity != 1 {
		t.Fatalf("rewritten T has arity %d", enc.Arity)
	}
	if orig.Len() != enc.Len() {
		t.Fatalf("cardinalities differ: %d vs %d", orig.Len(), enc.Len())
	}
	for _, tu := range orig.Tuples() {
		want := DefaultArityMarkers.EncodeTuplePaths(tu)
		found := false
		for _, etu := range enc.Tuples() {
			if etu[0].Equal(want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("encoding of %v missing: %v", tu, enc.Sorted())
		}
	}
}
