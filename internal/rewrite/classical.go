package rewrite

import (
	"fmt"

	"seqlog/internal/ast"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// ToClassical translates a Sequence Datalog program (without packing
// and with monadic predicates) into a classical program over the
// two-bounded encoding of Lemma 5.4: every relation R is replaced by a
// unary R1 (length-one paths) and a binary R2 (length-two paths), path
// variables disappear, and all remaining terms are atomic. The
// translation is faithful on two-bounded instances — instances in
// which every relation only ever holds paths of length one or two —
// provided the program also only derives such paths (the lemma's
// premise).
//
// Classical equalities between atomic terms are resolved by
// substitution; atomic nonequalities remain (they are the classical
// "≠" built-in).
func ToClassical(p ast.Program) (ast.Program, error) {
	f := p.Features()
	if f.Has(ast.FeatPacking) {
		return ast.Program{}, errf("classical", "", "packing is not allowed in Lemma 5.4 (fragment {E, N, R})")
	}
	if f.Has(ast.FeatArity) {
		return ast.Program{}, errf("classical", "", "arity > 1 is not allowed in Lemma 5.4 (monadic schemas)")
	}
	gen := ast.NewNameGen(p)
	out := ast.Program{Strata: make([]ast.Stratum, 0, len(p.Strata))}
	for _, s := range p.Strata {
		var stratum ast.Stratum
		for _, r := range s {
			expanded, err := expandPathVars(r.Clone(), gen)
			if err != nil {
				return ast.Program{}, err
			}
			for _, er := range expanded {
				crs, alive, err := classicalize(er)
				if err != nil {
					return ast.Program{}, err
				}
				if alive {
					stratum = append(stratum, crs...)
				}
			}
		}
		stratum = dedupeRules(stratum)
		if len(stratum) > 0 {
			out.Strata = append(out.Strata, stratum)
		}
	}
	if len(out.Strata) == 0 {
		out.Strata = []ast.Stratum{{}}
	}
	if err := out.Validate(); err != nil {
		return ast.Program{}, errf("classical", "", "translation produced an invalid program: %v\n%s", err, out)
	}
	return out, nil
}

// expandPathVars replaces every path variable by ε, @x, or @x1·@x2
// (three rule versions per variable), per the proof of Lemma 5.4.
func expandPathVars(r ast.Rule, gen *ast.NameGen) ([]ast.Rule, error) {
	var pathVar *ast.Var
	for _, v := range r.Vars() {
		if !v.Atomic {
			pathVar = &v
			break
		}
	}
	if pathVar == nil {
		return []ast.Rule{r}, nil
	}
	a1 := gen.FreshVar("c", true)
	a2 := gen.FreshVar("c", true)
	subs := []ast.Subst{
		{*pathVar: ast.Eps()},
		{*pathVar: ast.Expr{ast.VarT{V: a1}}},
		{*pathVar: ast.Cat(ast.Expr{ast.VarT{V: a1}}, ast.Expr{ast.VarT{V: a2}})},
	}
	var out []ast.Rule
	for _, sub := range subs {
		rest, err := expandPathVars(r.ApplySubst(sub), gen)
		if err != nil {
			return nil, err
		}
		out = append(out, rest...)
	}
	return out, nil
}

// classicalize resolves atomic equations, drops unsatisfiable or
// vacuous literals, and renames predicates to their R1/R2 forms;
// nonequalities between longer sequences split the rule into copies.
// alive=false means the rule can never fire on two-bounded instances.
func classicalize(r ast.Rule) ([]ast.Rule, bool, error) {
	// Resolve positive equations by substitution or constant checks.
	for changed := true; changed; {
		changed = false
		for i, l := range r.Body {
			if l.Neg {
				continue
			}
			eq, ok := l.Atom.(ast.Eq)
			if !ok {
				continue
			}
			if len(eq.L) != len(eq.R) {
				return nil, false, nil // unsatisfiable lengths
			}
			if len(eq.L) == 0 {
				r.Body = append(r.Body[:i], r.Body[i+1:]...)
				changed = true
				break
			}
			// Split multi-atom equations into the first pair plus rest.
			first := ast.Eq{L: eq.L[:1], R: eq.R[:1]}
			rest := ast.Eq{L: eq.L[1:], R: eq.R[1:]}
			sub, ok, sat := resolveAtomicEq(first)
			if !sat {
				return nil, false, nil
			}
			var newBody []ast.Literal
			newBody = append(newBody, r.Body[:i]...)
			if len(rest.L) > 0 {
				newBody = append(newBody, ast.Pos(rest))
			}
			newBody = append(newBody, r.Body[i+1:]...)
			r = ast.Rule{Head: r.Head, Body: newBody}
			if ok {
				r = r.ApplySubst(sub)
			}
			changed = true
			break
		}
	}
	// Negated equations: drop vacuous ones, keep atomic nonequalities;
	// a nonequality between longer atomic sequences is a disjunction of
	// position-wise nonequalities, so the rule splits into copies.
	var body []ast.Literal
	var splits [][]ast.Literal
	for _, l := range r.Body {
		eq, ok := l.Atom.(ast.Eq)
		if !ok || !l.Neg {
			body = append(body, l)
			continue
		}
		if len(eq.L) != len(eq.R) {
			continue // always true on atomic sequences
		}
		if len(eq.L) == 0 {
			return nil, false, nil // eps != eps never holds
		}
		if len(eq.L) == 1 {
			if c1, ok1 := eq.L[0].(ast.Const); ok1 {
				if c2, ok2 := eq.R[0].(ast.Const); ok2 {
					if c1.A == c2.A {
						return nil, false, nil
					}
					continue // distinct constants: always true
				}
			}
			body = append(body, l)
			continue
		}
		var alts []ast.Literal
		for i := range eq.L {
			alts = append(alts, ast.Neg(ast.Eq{L: eq.L[i : i+1], R: eq.R[i : i+1]}))
		}
		splits = append(splits, alts)
	}
	r = ast.Rule{Head: r.Head, Body: body}
	// Predicates: rename by length; drop impossible/vacuous ones.
	head, ok := renameByLength(r.Head)
	if !ok {
		return nil, false, nil
	}
	out := ast.Rule{Head: head}
	for _, l := range r.Body {
		pr, isPred := l.Atom.(ast.Pred)
		if !isPred {
			out.Body = append(out.Body, l)
			continue
		}
		np, ok := renameByLength(pr)
		if !ok {
			if l.Neg {
				continue // negated impossible predicate: always true
			}
			return nil, false, nil
		}
		out.Body = append(out.Body, ast.Literal{Neg: l.Neg, Atom: np})
	}
	rules := []ast.Rule{out}
	for _, alts := range splits {
		var next []ast.Rule
		for _, base := range rules {
			for _, alt := range alts {
				cp := base.Clone()
				cp.Body = append(cp.Body, alt)
				next = append(next, cp)
			}
		}
		rules = next
	}
	return rules, true, nil
}

// resolveAtomicEq handles an equation between single atomic terms:
// it returns a substitution (when a variable is bound), ok=false when
// nothing to substitute (both constants, equal), sat=false when
// unsatisfiable.
func resolveAtomicEq(eq ast.Eq) (ast.Subst, bool, bool) {
	l, r := eq.L[0], eq.R[0]
	lv, lIsVar := l.(ast.VarT)
	rv, rIsVar := r.(ast.VarT)
	switch {
	case lIsVar && rIsVar:
		if lv.V == rv.V {
			return nil, false, true
		}
		return ast.Subst{lv.V: ast.Expr{rv}}, true, true
	case lIsVar:
		return ast.Subst{lv.V: ast.Expr{r}}, true, true
	case rIsVar:
		return ast.Subst{rv.V: ast.Expr{l}}, true, true
	default:
		lc := l.(ast.Const)
		rc := r.(ast.Const)
		return nil, false, lc.A == rc.A
	}
}

// renameByLength maps P(e) to P1(a) or P2(a1, a2) by the length of e;
// nullary predicates keep their name; lengths 0 (for unary) and > 2
// are impossible on two-bounded instances.
func renameByLength(p ast.Pred) (ast.Pred, bool) {
	if len(p.Args) == 0 {
		return p, true
	}
	e := p.Args[0]
	switch len(e) {
	case 1:
		return ast.Pred{Name: p.Name + "1", Args: []ast.Expr{e}}, true
	case 2:
		return ast.Pred{Name: p.Name + "2", Args: []ast.Expr{e[:1], e[1:]}}, true
	default:
		return ast.Pred{}, false
	}
}

// TwoBounded reports whether the instance only holds paths of length
// one or two (the premise of Lemma 5.4).
func TwoBounded(i *instance.Instance) bool {
	for _, n := range i.Names() {
		for _, t := range i.Relation(n).Tuples() {
			for _, p := range t {
				if len(p) < 1 || len(p) > 2 {
					return false
				}
			}
		}
	}
	return true
}

// EncodeTwoBounded builds the classical instance Ic of Lemma 5.4:
// R1 holds the atoms a with a ∈ I(R), R2 the pairs (a, b) with
// a·b ∈ I(R).
func EncodeTwoBounded(i *instance.Instance) (*instance.Instance, error) {
	out := instance.New()
	for _, n := range i.Names() {
		rel := i.Relation(n)
		if rel.Arity == 0 {
			if rel.Len() > 0 {
				out.AddFact(n)
			}
			continue
		}
		if rel.Arity > 1 {
			return nil, fmt.Errorf("rewrite: EncodeTwoBounded: relation %s has arity %d", n, rel.Arity)
		}
		out.Ensure(n+"1", 1)
		out.Ensure(n+"2", 2)
		for _, t := range rel.Tuples() {
			p := t[0]
			switch len(p) {
			case 1:
				out.Add(n+"1", instance.Tuple{value.Path{p[0]}})
			case 2:
				out.Add(n+"2", instance.Tuple{value.Path{p[0]}, value.Path{p[1]}})
			default:
				return nil, fmt.Errorf("rewrite: EncodeTwoBounded: path %s has length %d", p, len(p))
			}
		}
	}
	return out, nil
}

// DecodeTwoBounded inverts EncodeTwoBounded for the named relations:
// S1(a) becomes S(a) and S2(a,b) becomes S(a·b).
func DecodeTwoBounded(classical *instance.Instance, names ...string) *instance.Instance {
	out := instance.New()
	for _, n := range names {
		if r0 := classical.Relation(n); r0 != nil && r0.Arity == 0 {
			if r0.Len() > 0 {
				out.AddFact(n)
			} else {
				out.Ensure(n, 0)
			}
			continue
		}
		out.Ensure(n, 1)
		if r1 := classical.Relation(n + "1"); r1 != nil {
			for _, t := range r1.Tuples() {
				out.AddPath(n, t[0])
			}
		}
		if r2 := classical.Relation(n + "2"); r2 != nil {
			for _, t := range r2.Tuples() {
				out.AddPath(n, value.Concat(t[0], t[1]))
			}
		}
		if r0 := classical.Relation(n); r0 != nil && r0.Arity == 0 && r0.Len() > 0 {
			out.AddFact(n)
		}
	}
	return out
}
