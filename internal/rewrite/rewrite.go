// Package rewrite implements the paper's redundancy theorems as program
// transformations:
//
//   - EliminateArity        — Theorem 4.2 via the Lemma 4.1 encoding
//   - EliminatePositiveEquations — the Example 4.4 auxiliary-predicate trick
//   - EliminateNegatedEquations  — Lemma 4.5's stratum-splitting method
//   - EliminateEquations    — Theorem 4.7 (composition of the above)
//   - EliminateIntermediates — Theorem 4.16 folding (needs E, no N/R)
//   - EliminatePackingNonrecursive — Lemmas 4.10–4.13
//   - SimulatePackingDoubled — Theorem 4.15's doubling construction
//   - EliminatePacking      — dispatcher for the two packing cases
//   - ToClassical           — Lemma 5.4 on two-bounded instances
//
// Each transformation preserves the computed query (for the designated
// output relation) on flat instances; the test suite verifies this by
// evaluating source and target programs on randomized instances.
package rewrite

import (
	"fmt"
	"sort"

	"seqlog/internal/ast"
)

// varExprs renders variables as single-term expressions, for use as
// predicate arguments.
func varExprs(vars []ast.Var) []ast.Expr {
	out := make([]ast.Expr, len(vars))
	for i, v := range vars {
		out[i] = ast.Expr{ast.VarT{V: v}}
	}
	return out
}

// sortedVars returns the variables of the set in deterministic order
// (atomic variables first, then by name).
func sortedVars(set map[ast.Var]bool) []ast.Var {
	out := make([]ast.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Atomic != out[j].Atomic {
			return out[i].Atomic
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// bodyVarsFirstOccurrence returns the variables of the body literals in
// first-occurrence order (the "v1, ..., vm" of Lemma 4.5).
func bodyVarsFirstOccurrence(body []ast.Literal) []ast.Var {
	seen := map[ast.Var]bool{}
	var out []ast.Var
	add := func(e ast.Expr) {
		for _, v := range e.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	for _, l := range body {
		switch x := l.Atom.(type) {
		case ast.Pred:
			for _, a := range x.Args {
				add(a)
			}
		case ast.Eq:
			add(x.L)
			add(x.R)
		}
	}
	return out
}

// renameRuleVars renames every variable in the rule with fresh names,
// avoiding capture when rule bodies are inlined (Theorem 4.16).
func renameRuleVars(r ast.Rule, g *ast.NameGen) ast.Rule {
	sub := ast.Subst{}
	for _, v := range r.Vars() {
		nv := g.FreshVar(v.Name+"_", v.Atomic)
		sub[v] = ast.Expr{ast.VarT{V: nv}}
	}
	return r.ApplySubst(sub)
}

// splitBody partitions a body into positive predicates, positive
// equations, negated predicates and negated equations.
func splitBody(body []ast.Literal) (posPreds []ast.Pred, posEqs []ast.Eq, negPreds []ast.Pred, negEqs []ast.Eq) {
	for _, l := range body {
		switch x := l.Atom.(type) {
		case ast.Pred:
			if l.Neg {
				negPreds = append(negPreds, x)
			} else {
				posPreds = append(posPreds, x)
			}
		case ast.Eq:
			if l.Neg {
				negEqs = append(negEqs, x)
			} else {
				posEqs = append(posEqs, x)
			}
		}
	}
	return
}

// hasNegatedEquations reports whether any rule of the stratum contains
// a nonequality.
func hasNegatedEquations(s ast.Stratum) bool {
	for _, r := range s {
		for _, l := range r.Body {
			if l.Neg {
				if _, ok := l.Atom.(ast.Eq); ok {
					return true
				}
			}
		}
	}
	return false
}

// Error wraps transformation failures with the offending rule.
type Error struct {
	Op   string
	Rule string
	Msg  string
}

func (e *Error) Error() string {
	if e.Rule == "" {
		return fmt.Sprintf("rewrite/%s: %s", e.Op, e.Msg)
	}
	return fmt.Sprintf("rewrite/%s: %s (rule: %s)", e.Op, e.Msg, e.Rule)
}

func errf(op string, rule string, format string, args ...any) *Error {
	return &Error{Op: op, Rule: rule, Msg: fmt.Sprintf(format, args...)}
}
