package rewrite

import (
	"seqlog/internal/ast"
	"seqlog/internal/unify"
)

// psEntry records that a rewritten relation holds, for one packing
// structure, the component tuples of the original relation's values.
type psEntry struct {
	ps   Structure
	name string // relation holding the components; arity = ps.Stars()
}

// EliminatePackingNonrecursive removes the P feature from a
// nonrecursive program computing a flat unary query, following
// Lemmas 4.10–4.13:
//
//  1. normalize to one IDB relation per stratum (and eliminate arity,
//     which the proof of Lemma 4.13 assumes);
//  2. expand references to already-rewritten relations into
//     per-packing-structure relations plus structure equations;
//  3. purify: drop rules whose positive flat predicates carry packing;
//     solve half-pure equations by one-sided nonlinear associative
//     unification, keeping only valid solutions (Lemma 4.10);
//  4. decompose pure equations and nonequalities along packing
//     structures (Lemma 4.12);
//  5. split head predicates per packing structure; the flat structure ∗
//     keeps the original relation name, so the output relation of a
//     flat query is preserved.
//
// The result may use intermediate predicates, arity and equations even
// if the input did not; compose with the other eliminations as in the
// paper's Figure 3 to reach a target fragment.
func EliminatePackingNonrecursive(p ast.Program, output string) (ast.Program, error) {
	if p.HasRecursion() {
		return ast.Program{}, errf("packing", "", "program is recursive; use SimulatePackingDoubled (Theorem 4.15)")
	}
	if !p.Features().Has(ast.FeatPacking) {
		return p.Clone(), nil
	}
	// "Since arity is redundant, we may assume that P does not use
	// arity, but feel free to use arity in the rewriting."
	var err error
	if p.Features().Has(ast.FeatArity) {
		p, err = EliminateArity(p, DefaultArityMarkers)
		if err != nil {
			return ast.Program{}, err
		}
	}
	p, err = p.SplitStrataSingleIDB()
	if err != nil {
		return ast.Program{}, err
	}
	gen := ast.NewNameGen(p)
	edb := map[string]bool{}
	for _, n := range p.EDBNames() {
		edb[n] = true
	}
	// structs[Q] lists the per-structure relations of rewritten IDB Q.
	structs := map[string][]psEntry{}
	// flat relations: positive predicates over them bind variables to
	// flat values on flat instances.
	flat := map[string]bool{}
	for n := range edb {
		flat[n] = true
	}

	var outStrata []ast.Stratum
	for _, stratum := range p.Strata {
		var newStratum ast.Stratum
		for _, rule := range stratum {
			rules, err := expandStructRefs(rule.Clone(), structs, gen)
			if err != nil {
				return ast.Program{}, err
			}
			for _, r := range rules {
				processed, err := processPackingRule(r, flat, structs, gen)
				if err != nil {
					return ast.Program{}, err
				}
				newStratum = append(newStratum, processed...)
			}
		}
		// Head rewriting: register structures and rename heads.
		for i, r := range newStratum {
			h, err := rewriteHead(r, structs, flat, gen)
			if err != nil {
				return ast.Program{}, err
			}
			newStratum[i] = h
		}
		newStratum = dedupeRules(newStratum)
		if len(newStratum) > 0 {
			outStrata = append(outStrata, newStratum)
		}
	}
	if len(outStrata) == 0 {
		outStrata = []ast.Stratum{{}}
	}
	prog := ast.Program{Strata: outStrata}
	if prog.Features().Has(ast.FeatPacking) {
		return ast.Program{}, errf("packing", "", "internal: packing survived the rewriting:\n%s", prog)
	}
	if err := prog.Validate(); err != nil {
		return ast.Program{}, errf("packing", "", "rewriting produced an invalid program: %v\n%s", err, prog)
	}
	return prog, nil
}

// expandStructRefs replaces positive references to already-rewritten
// relations by their per-structure relations plus a structure equation
// (step 2 above); one rule copy per combination of structures.
func expandStructRefs(r ast.Rule, structs map[string][]psEntry, gen *ast.NameGen) ([]ast.Rule, error) {
	return expandStructRefsFrom(r, 0, structs, gen)
}

// expandStructRefsFrom scans body literals starting at index from;
// replacements are final (the ∗ structure keeps the original relation
// name, so a replaced literal must not be rescanned).
func expandStructRefsFrom(r ast.Rule, from int, structs map[string][]psEntry, gen *ast.NameGen) ([]ast.Rule, error) {
	for i := from; i < len(r.Body); i++ {
		l := r.Body[i]
		pr, ok := l.Atom.(ast.Pred)
		if !ok || l.Neg {
			continue
		}
		entries, rewritten := structs[pr.Name]
		if !rewritten {
			continue
		}
		if len(pr.Args) == 0 {
			// Nullary relations keep their name; nothing to expand.
			continue
		}
		var out []ast.Rule
		for _, ent := range entries {
			cp := r.Clone()
			if ent.ps.IsFlat() && !pr.Args[0].HasPacking() {
				// Optimization: Q_∗(e) for packing-free e needs no
				// equation; the ∗ relation keeps the name Q.
				cp.Body[i] = ast.Pos(ast.Pred{Name: ent.name, Args: []ast.Expr{pr.Args[0].Clone()}})
			} else {
				fresh := make([]ast.Expr, ent.ps.Stars())
				for k := range fresh {
					fresh[k] = ast.Expr{ast.VarT{V: gen.FreshVar("pc", false)}}
				}
				cp.Body[i] = ast.Pos(ast.Pred{Name: ent.name, Args: fresh})
				cp.Body = append(cp.Body, ast.Pos(ast.Eq{L: pr.Args[0].Clone(), R: ent.ps.Reconstruct(fresh)}))
			}
			rest, err := expandStructRefsFrom(cp, i+1, structs, gen)
			if err != nil {
				return nil, err
			}
			out = append(out, rest...)
		}
		// Zero entries: the relation can never hold a fact; the rule is
		// unsatisfiable.
		return out, nil
	}
	return []ast.Rule{r}, nil
}

// processPackingRule applies purification (Lemma 4.10), trivial-
// equation simplification, and structure decomposition (Lemma 4.12),
// including negated references to rewritten relations.
func processPackingRule(r ast.Rule, flat map[string]bool, structs map[string][]psEntry, gen *ast.NameGen) ([]ast.Rule, error) {
	work := []ast.Rule{r}
	var out []ast.Rule
	guard := 0
	for len(work) > 0 {
		guard++
		if guard > 100000 {
			return nil, errf("packing", r.String(), "purification did not terminate")
		}
		cur := work[0]
		work = work[1:]
		// Simplify first: substituting trivial bindings can move packing
		// into flat predicates, which cleaning must then see.
		cur = simplifyTrivialEquations(cur)
		cur, alive := cleanFlatPredicates(cur, flat)
		if !alive {
			continue
		}
		pure := pureVars(cur, flat)
		idx, e1IsLeft := findHalfPure(cur, pure)
		if idx >= 0 {
			branches, err := solveHalfPure(cur, idx, e1IsLeft, pure, gen)
			if err != nil {
				return nil, err
			}
			work = append(work, branches...)
			continue
		}
		// No half-pure equations: all variables must be pure (§4.3.3).
		if v, ok := firstImpureVar(cur, pure); ok {
			return nil, errf("packing", cur.String(), "internal: variable %s is impure after purification", v)
		}
		decomposed, alive, err := decomposeStructures(cur, structs)
		if err != nil {
			return nil, err
		}
		if !alive {
			continue
		}
		for _, d := range decomposed {
			out = append(out, simplifyTrivialEquations(d))
		}
	}
	return out, nil
}

// cleanFlatPredicates handles packing in predicates over flat relations
// on flat instances: positive ones can never match (drop the rule);
// negated ones are always true (drop the literal).
func cleanFlatPredicates(r ast.Rule, flat map[string]bool) (ast.Rule, bool) {
	var body []ast.Literal
	for _, l := range r.Body {
		pr, ok := l.Atom.(ast.Pred)
		if !ok || !flat[pr.Name] {
			body = append(body, l)
			continue
		}
		packed := false
		for _, a := range pr.Args {
			if a.HasPacking() {
				packed = true
			}
		}
		if !packed {
			body = append(body, l)
			continue
		}
		if !l.Neg {
			return ast.Rule{}, false
		}
		// Negated: drop the literal.
	}
	return ast.Rule{Head: r.Head, Body: body}, true
}

// pureVars computes the pure variables of the rule (§4.3.3): source
// variables (in positive predicates over flat relations), closed under
// "other side of a positive equation is all-pure and packing-free".
func pureVars(r ast.Rule, flat map[string]bool) map[ast.Var]bool {
	pure := map[ast.Var]bool{}
	for _, l := range r.Body {
		if l.Neg {
			continue
		}
		if pr, ok := l.Atom.(ast.Pred); ok && flat[pr.Name] {
			for _, a := range pr.Args {
				for _, v := range a.Vars() {
					pure[v] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Neg {
				continue
			}
			eq, ok := l.Atom.(ast.Eq)
			if !ok {
				continue
			}
			try := func(from, to ast.Expr) {
				if from.HasPacking() || !allVarsIn(from, pure) {
					return
				}
				for _, v := range to.Vars() {
					if !pure[v] {
						pure[v] = true
						changed = true
					}
				}
			}
			try(eq.L, eq.R)
			try(eq.R, eq.L)
		}
	}
	return pure
}

func firstImpureVar(r ast.Rule, pure map[ast.Var]bool) (ast.Var, bool) {
	for _, v := range r.Vars() {
		if !pure[v] {
			return v, true
		}
	}
	return ast.Var{}, false
}

// findHalfPure locates a positive equation with one all-pure side and
// at least one impure variable on the other; it returns the literal
// index and whether the pure side is the left one.
func findHalfPure(r ast.Rule, pure map[ast.Var]bool) (int, bool) {
	for i, l := range r.Body {
		if l.Neg {
			continue
		}
		eq, ok := l.Atom.(ast.Eq)
		if !ok {
			continue
		}
		lPure, rPure := allVarsIn(eq.L, pure), allVarsIn(eq.R, pure)
		if lPure && !rPure {
			return i, true
		}
		if rPure && !lPure {
			return i, false
		}
	}
	return -1, false
}

// solveHalfPure implements one induction step of Lemma 4.10: linearize
// the pure side, solve the one-sided nonlinear equation by associative
// unification, and instantiate the rule with every valid solution. The
// pure set is the rule's pure variables; in r” the fresh linearization
// variables v_i are also pure, and a solution is valid when it maps
// every pure variable to a packing-free expression.
func solveHalfPure(r ast.Rule, idx int, pureLeft bool, pure map[ast.Var]bool, gen *ast.NameGen) ([]ast.Rule, error) {
	eq := r.Body[idx].Atom.(ast.Eq)
	e1, e2 := eq.L, eq.R
	if !pureLeft {
		e1, e2 = eq.R, eq.L
	}
	lin, bindEqs := linearize(e1, gen)
	uniEq := unify.Equation{L: lin, R: e2}
	if !uniEq.OneSidedNonlinear() {
		return nil, errf("packing", r.String(), "internal: linearized equation %s is not one-sided nonlinear", uniEq)
	}
	res := unify.Solve(uniEq, unify.Options{AllowEmpty: true, MaxStates: 200000})
	if !res.Complete {
		return nil, errf("packing", r.String(), "associative unification did not terminate on %s", uniEq)
	}
	// r'' = r with the half-pure equation replaced by the occurrence
	// bindings u_i = v_i.
	base := ast.Rule{Head: r.Head}
	base.Body = append(base.Body, r.Body[:idx]...)
	base.Body = append(base.Body, r.Body[idx+1:]...)
	for _, be := range bindEqs {
		base.Body = append(base.Body, ast.Pos(be))
	}
	pureSet := map[ast.Var]bool{}
	for v := range pure {
		pureSet[v] = true
	}
	for _, be := range bindEqs {
		for _, v := range be.R.Vars() { // the fresh v_i
			pureSet[v] = true
		}
	}
	var out []ast.Rule
	for _, rho := range res.Solutions {
		if !validSolution(rho, pureSet) {
			continue
		}
		out = append(out, base.ApplySubst(rho))
	}
	return out, nil
}

func validSolution(rho ast.Subst, pure map[ast.Var]bool) bool {
	for v, e := range rho {
		if pure[v] && e.HasPacking() {
			return false
		}
	}
	return true
}

// linearize replaces every variable occurrence in e with a fresh
// variable of the same sort, returning the linearized expression and
// the binding equations u_i = v_i.
func linearize(e ast.Expr, gen *ast.NameGen) (ast.Expr, []ast.Eq) {
	var eqs []ast.Eq
	out := linearizeExpr(e, gen, &eqs)
	return out, eqs
}

func linearizeExpr(e ast.Expr, gen *ast.NameGen, eqs *[]ast.Eq) ast.Expr {
	out := make(ast.Expr, 0, len(e))
	for _, t := range e {
		switch x := t.(type) {
		case ast.VarT:
			nv := gen.FreshVar("lv", x.V.Atomic)
			*eqs = append(*eqs, ast.Eq{
				L: ast.Expr{ast.VarT{V: x.V}},
				R: ast.Expr{ast.VarT{V: nv}},
			})
			out = append(out, ast.VarT{V: nv})
		case ast.Pack:
			out = append(out, ast.Pack{E: linearizeExpr(x.E, gen, eqs)})
		default:
			out = append(out, t)
		}
	}
	return out
}

// decomposeStructures applies Lemma 4.12 and the negated-reference step
// of Lemma 4.13 to a rule whose variables are all pure. It returns the
// resulting rules (one per nonequality disjunct) or alive=false when
// the rule is unsatisfiable on flat instances.
func decomposeStructures(r ast.Rule, structs map[string][]psEntry) ([]ast.Rule, bool, error) {
	var body []ast.Literal
	var splits [][]ast.Literal // alternatives from nonequalities
	for _, l := range r.Body {
		switch x := l.Atom.(type) {
		case ast.Eq:
			if !x.L.HasPacking() && !x.R.HasPacking() {
				body = append(body, l)
				continue
			}
			dl, dr := StructureOf(x.L), StructureOf(x.R)
			if !dl.Equal(dr) {
				if l.Neg {
					continue // always true on flat instances
				}
				return nil, false, nil // unsatisfiable
			}
			compsL, compsR := Components(x.L), Components(x.R)
			if !l.Neg {
				for i := range compsL {
					body = append(body, ast.Pos(ast.Eq{L: compsL[i], R: compsR[i]}))
				}
				continue
			}
			// Negated: disjunction of component nonequalities.
			var alts []ast.Literal
			for i := range compsL {
				alts = append(alts, ast.Neg(ast.Eq{L: compsL[i], R: compsR[i]}))
			}
			splits = append(splits, alts)
		case ast.Pred:
			if !l.Neg {
				body = append(body, l)
				continue
			}
			entries, rewritten := structs[x.Name]
			if !rewritten || len(x.Args) == 0 {
				body = append(body, l)
				continue
			}
			d := StructureOf(x.Args[0])
			matched := false
			for _, ent := range entries {
				if ent.ps.Equal(d) {
					comps := Components(x.Args[0])
					body = append(body, ast.Neg(ast.Pred{Name: ent.name, Args: comps}))
					matched = true
					break
				}
			}
			if !matched {
				continue // no structure matches: literal is true on flat instances
			}
		default:
			body = append(body, l)
		}
	}
	rules := []ast.Rule{{Head: r.Head, Body: body}}
	for _, alts := range splits {
		var next []ast.Rule
		for _, base := range rules {
			for _, alt := range alts {
				cp := base.Clone()
				cp.Body = append(cp.Body, alt)
				next = append(next, cp)
			}
		}
		rules = next
	}
	return rules, true, nil
}

// rewriteHead splits the head per its packing structure (Lemma 4.13),
// registering the structure. The flat structure keeps the relation
// name, so flat query outputs stay where callers expect them.
func rewriteHead(r ast.Rule, structs map[string][]psEntry, flat map[string]bool, gen *ast.NameGen) (ast.Rule, error) {
	h := r.Head
	if len(h.Args) == 0 {
		if !hasEntry(structs, h.Name) {
			structs[h.Name] = append(structs[h.Name], psEntry{ps: nil, name: h.Name})
		}
		return r, nil
	}
	if len(h.Args) > 1 {
		return ast.Rule{}, errf("packing", r.String(), "internal: arity slipped through")
	}
	d := StructureOf(h.Args[0])
	name := ""
	for _, ent := range structs[h.Name] {
		if ent.ps != nil && ent.ps.Equal(d) {
			name = ent.name
			break
		}
	}
	if name == "" {
		if d.IsFlat() {
			name = h.Name
			flat[name] = true
		} else {
			name = gen.Fresh(h.Name + "_ps")
			flat[name] = true // components are packing-free
		}
		structs[h.Name] = append(structs[h.Name], psEntry{ps: d, name: name})
	}
	comps := Components(h.Args[0])
	return ast.Rule{Head: ast.Pred{Name: name, Args: comps}, Body: r.Body}, nil
}

func hasEntry(structs map[string][]psEntry, name string) bool {
	_, ok := structs[name]
	return ok
}

// simplifyTrivialEquations substitutes away positive equations of the
// form v = e where v is a variable not occurring in e (and e is a
// single atomic term when v is atomic). This keeps rewritten programs
// close to the paper's hand-derived outputs (Example 4.14).
func simplifyTrivialEquations(r ast.Rule) ast.Rule {
	for {
		idx := -1
		var sub ast.Subst
		for i, l := range r.Body {
			if l.Neg {
				continue
			}
			eq, ok := l.Atom.(ast.Eq)
			if !ok {
				continue
			}
			if s, ok := trivialBinding(eq.L, eq.R); ok {
				idx, sub = i, s
				break
			}
			if s, ok := trivialBinding(eq.R, eq.L); ok {
				idx, sub = i, s
				break
			}
		}
		if idx < 0 {
			return r
		}
		next := ast.Rule{Head: r.Head}
		next.Body = append(next.Body, r.Body[:idx]...)
		next.Body = append(next.Body, r.Body[idx+1:]...)
		r = next.ApplySubst(sub)
	}
}

func trivialBinding(side, other ast.Expr) (ast.Subst, bool) {
	if len(side) != 1 {
		return nil, false
	}
	vt, ok := side[0].(ast.VarT)
	if !ok {
		return nil, false
	}
	for _, v := range other.Vars() {
		if v == vt.V {
			return nil, false
		}
	}
	if vt.V.Atomic {
		if len(other) != 1 {
			return nil, false
		}
		switch o := other[0].(type) {
		case ast.Const:
		case ast.VarT:
			if !o.V.Atomic {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return ast.Subst{vt.V: other}, true
}

func dedupeRules(s ast.Stratum) ast.Stratum {
	seen := map[string]bool{}
	var out ast.Stratum
	for _, r := range s {
		k := r.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
