package rewrite

import (
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

func TestStructureExample411(t *testing.T) {
	// e = @a.<<$x.$y>.$z>.<eps>, δ(e) = *<*<*>*>*<*>*, 7 components:
	// @a, eps, $x.$y, $z, eps, eps, eps.
	e := ast.Cat(
		ast.A("a"),
		ast.Packed(ast.Cat(ast.Packed(ast.Cat(ast.P("x"), ast.P("y"))), ast.P("z"))),
		ast.Packed(ast.Eps()),
	)
	d := StructureOf(e)
	if d.Key() != "*<*<*>*>*<*>*" {
		t.Fatalf("δ = %q", d.Key())
	}
	if d.Stars() != 7 {
		t.Fatalf("stars = %d, want 7", d.Stars())
	}
	comps := Components(e)
	want := []string{"@a", "eps", "$x.$y", "$z", "eps", "eps", "eps"}
	if len(comps) != len(want) {
		t.Fatalf("components = %v", comps)
	}
	for i, w := range want {
		if comps[i].String() != w {
			t.Fatalf("component %d = %s, want %s", i, comps[i], w)
		}
	}
	// Reconstruct inverts.
	back := d.Reconstruct(comps)
	if !back.Equal(e) {
		t.Fatalf("Reconstruct = %s, want %s", back, e)
	}
}

func TestStructureFlat(t *testing.T) {
	e := ast.Cat(ast.C("a"), ast.P("x"))
	d := StructureOf(e)
	if !d.IsFlat() || d.Key() != "*" || d.Stars() != 1 {
		t.Fatalf("flat δ = %q", d.Key())
	}
	comps := Components(e)
	if len(comps) != 1 || !comps[0].Equal(e) {
		t.Fatalf("flat components = %v", comps)
	}
}

func TestStructureEquality(t *testing.T) {
	a := StructureOf(ast.Packed(ast.P("x")))
	b := StructureOf(ast.Packed(ast.Cat(ast.C("q"), ast.C("r"))))
	if !a.Equal(b) {
		t.Fatal("structures should be equal (contents do not matter)")
	}
	c := StructureOf(ast.Packed(ast.Packed(ast.P("x"))))
	if a.Equal(c) {
		t.Fatal("different nesting must differ")
	}
}

func TestEliminatePackingExample414(t *testing.T) {
	// Example 2.2 rewritten without packing yields 28 rules
	// (Example 4.14): 1 extraction rule with a ternary T plus 27 copies
	// of the A-rule (3 nonequalities x 3 components each).
	prog := mustParse(t, `
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.`)
	got, err := EliminatePackingNonrecursive(prog, "A")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatPacking) {
		t.Fatalf("packing still present:\n%s", got)
	}
	if n := len(got.Rules()); n != 28 {
		t.Fatalf("rule count = %d, want 28 (Example 4.14):\n%s", n, got)
	}
	// Behavioral equivalence on randomized instances.
	instances := randomFlatInstances(61, 10, []string{"R", "S"}, []string{"a", "b"}, 4, 4)
	instances = append(instances,
		parser.MustParseInstance(`R(a.b.a.b). S(a.b). S(b.a).`),
		parser.MustParseInstance(`R(a.b.a.b). S(a.b).`),
		parser.MustParseInstance(`R(a.a.a). S(a).`),
	)
	for i, edb := range instances {
		want, err1 := holdsOn(prog, edb)
		have, err2 := holdsOn(got, edb)
		if err1 != nil || err2 != nil {
			t.Fatalf("instance %d: %v %v", i, err1, err2)
		}
		if want != have {
			t.Fatalf("instance %d: A differs (orig %v, rewritten %v)\nEDB:\n%s", i, want, have, edb)
		}
	}
}

func TestEliminatePackingFlatHeadsKeepNames(t *testing.T) {
	// A program whose output is produced via a packed intermediate.
	prog := mustParse(t, `
T(<$x>.<$x>) :- R($x).
S($y) :- T(<$y>.<$y>).`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatPacking) {
		t.Fatalf("packing still present:\n%s", got)
	}
	instances := randomFlatInstances(67, 12, []string{"R"}, []string{"a", "b"}, 4, 4)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePackingHalfPureEquations(t *testing.T) {
	// Equations force the Lemma 4.10 unification machinery: $z is
	// impure (bound via a packing equation).
	prog := mustParse(t, `
T($z) :- R($x), $z = <$x>.$x.
S($y) :- T(<$y>.$y).`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatPacking) {
		t.Fatalf("packing still present:\n%s", got)
	}
	instances := randomFlatInstances(71, 12, []string{"R"}, []string{"a", "b"}, 4, 4)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePackingMixedStructures(t *testing.T) {
	// T holds values of two different packing structures; references
	// must dispatch per structure, and the flat one keeps the name.
	prog := mustParse(t, `
T(<$x>) :- R($x).
T($x.$x) :- R($x).
S($y) :- T(<$y>).
S2($y.$y) :- T($y.$y), R($y).`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	instances := randomFlatInstances(73, 12, []string{"R"}, []string{"a", "b"}, 4, 3)
	assertEquivalent(t, prog, got, "S", instances...)
	assertEquivalent(t, prog, got, "S2", instances...)
}

func TestEliminatePackingNegatedReferences(t *testing.T) {
	// Negated reference to a packed relation: matching structure maps
	// to the component relation; non-matching structure is vacuous.
	prog := mustParse(t, `
T(<$x>) :- R($x).
---
S($y) :- R($y), !T(<$y.$y>).`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatPacking) {
		t.Fatalf("packing still present:\n%s", got)
	}
	instances := randomFlatInstances(79, 12, []string{"R"}, []string{"a", "b"}, 4, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePackingNegatedEquationsWithPacking(t *testing.T) {
	prog := mustParse(t, `
T(<$x>.<$y>) :- R($x), R($y).
S($x.$y) :- T(<$x>.<$y>), <$x> != <$y>.`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	instances := randomFlatInstances(83, 12, []string{"R"}, []string{"a", "b"}, 4, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestEliminatePackingEDBPackedPatternsDropped(t *testing.T) {
	// Packed patterns over EDB relations can never match flat input.
	prog := mustParse(t, `
S($x) :- R(<$x>).
S($x) :- R($x), !Q(<$x>).`)
	got, err := EliminatePackingNonrecursive(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	// First rule drops; second rule's negated literal drops.
	if n := len(got.Rules()); n != 1 {
		t.Fatalf("rules = %d, want 1:\n%s", n, got)
	}
	instances := randomFlatInstances(89, 8, []string{"R", "Q"}, []string{"a"}, 3, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestDoubledPathCodec(t *testing.T) {
	m := DefaultDoubleMarkers
	paths := []value.Path{
		value.Epsilon,
		value.PathOf("a", "b"),
		value.PathOf("0", "1"), // data colliding with markers
		{value.Pack(value.PathOf("a"))},
		{value.Intern("a"), value.Pack(value.Path{value.Pack(value.Epsilon)}), value.Intern("b")},
		{value.Pack(value.PathOf("0", "1"))},
	}
	seen := map[string]bool{}
	for _, p := range paths {
		e := EncodeDoubledPath(p, m)
		if len(e)%2 != 0 {
			t.Fatalf("odd-length encoding for %v", p)
		}
		back, ok := DecodeDoubledPath(e, m)
		if !ok || !back.Equal(p) {
			t.Fatalf("roundtrip failed: %v -> %v -> %v (%v)", p, e, back, ok)
		}
		if seen[e.Key()] {
			t.Fatalf("encoding collision at %v", p)
		}
		seen[e.Key()] = true
	}
	// Unbalanced inputs fail to decode.
	if _, ok := DecodeDoubledPath(value.PathOf("0", "1"), m); ok {
		t.Fatal("lone open marker decoded")
	}
	if _, ok := DecodeDoubledPath(value.PathOf("a"), m); ok {
		t.Fatal("odd-length decoded")
	}
	if _, ok := DecodeDoubledPath(value.PathOf("a", "b"), m); ok {
		t.Fatal("mismatched data block decoded")
	}
}

func TestSimulatePackingDoubledRecursive(t *testing.T) {
	// A terminating recursive program using packing: S holds the
	// even-length paths of R, found by consuming two atoms per step
	// while deepening a packed accumulator.
	prog := mustParse(t, `
T($x, $x, eps) :- R($x).
T($x, $y, <$d>) :- T($x, @a.@b.$y, $d).
S($x) :- T($x, eps, $d).`)
	got, err := SimulatePackingDoubled(prog, "S", DefaultDoubleMarkers)
	if err != nil {
		t.Fatal(err)
	}
	f := got.Features()
	if f.Has(ast.FeatPacking) {
		t.Fatalf("packing still present:\n%s", got)
	}
	if f.Has(ast.FeatEquations) {
		t.Fatalf("equations introduced:\n%s", got)
	}
	// Alphabet includes the markers on purpose.
	instances := randomFlatInstances(97, 8, []string{"R"}, []string{"a", "0", "1"}, 3, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestSimulatePackingDoubledWithNegation(t *testing.T) {
	prog := mustParse(t, `
T(<$x>.<$x>) :- R($x).
---
S($x) :- R($x), !T(<$x>.<$x.$x>).`)
	got, err := SimulatePackingDoubled(prog, "S", DefaultDoubleMarkers)
	if err != nil {
		t.Fatal(err)
	}
	instances := randomFlatInstances(101, 8, []string{"R"}, []string{"a", "b", "0"}, 3, 3)
	assertEquivalent(t, prog, got, "S", instances...)
}

func TestSimulatePackingDoubledRejections(t *testing.T) {
	eq := mustParse(t, `S($x) :- R($x), <$x> = <$x>.`)
	if _, err := SimulatePackingDoubled(eq, "S", DefaultDoubleMarkers); err == nil {
		t.Fatal("equations must be rejected")
	}
	if _, err := SimulatePackingDoubled(mustParse(t, `S($x) :- R($x).`), "S", DoubleMarkers{O: value.Intern("0"), C: value.Intern("0")}); err == nil {
		t.Fatal("identical markers must be rejected")
	}
	if _, err := SimulatePackingDoubled(mustParse(t, `S($x) :- R($x).`), "Z", DefaultDoubleMarkers); err == nil {
		t.Fatal("unknown output must be rejected")
	}
}

func TestEliminatePackingDispatcher(t *testing.T) {
	// Recursive + equations + packing: the dispatcher composes
	// EliminateEquations with the doubling simulation. S holds the
	// even-length paths of R (the seed equation enforces evenness, the
	// recursion re-derives it by peeling pairs).
	prog := mustParse(t, `
T($x, $x, eps) :- R($x), $x = $y.$y.
T($x, $y, <$d>) :- T($x, @a.@b.$y, $d).
S($x) :- T($x, eps, $d).`)
	got, err := EliminatePacking(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	if got.Features().Has(ast.FeatPacking) {
		t.Fatalf("packing still present")
	}
	instances := randomFlatInstances(103, 6, []string{"R"}, []string{"a", "b"}, 3, 4)
	assertEquivalent(t, prog, got, "S", instances...)
	// No-op on packing-free programs.
	plain := mustParse(t, `S($x) :- R($x).`)
	same, err := EliminatePacking(plain, "S")
	if err != nil || same.String() != plain.String() {
		t.Fatalf("no-op failed: %v\n%s", err, same)
	}
}
