package rewrite

import (
	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// ArityMarkers are the two distinct atomic values a and b used by the
// Lemma 4.1 encoding
//
//	(s1, s2)  <->  s1·a·s2·a·s1·b·s2 .
//
// By Lemma 4.1 the encoding is injective for arbitrary paths s1, s2 —
// including paths that contain the markers themselves — so any two
// distinct atoms work.
type ArityMarkers struct {
	A, B value.Atom
}

// DefaultArityMarkers uses the atoms "0" and "1".
var DefaultArityMarkers = ArityMarkers{A: value.Intern("0"), B: value.Intern("1")}

// encodePair is the Lemma 4.1 encoding at the expression level.
func (m ArityMarkers) encodePair(e1, e2 ast.Expr) ast.Expr {
	a := ast.Expr{ast.Const{A: m.A}}
	b := ast.Expr{ast.Const{A: m.B}}
	return ast.Cat(e1, a, e2, a, e1, b, e2)
}

// encodeArgs folds an argument list into a single expression by
// repeatedly combining the last two components, as in Theorem 4.2
// ("arities higher than one can be reduced by one ... repeatedly").
func (m ArityMarkers) encodeArgs(args []ast.Expr) ast.Expr {
	switch len(args) {
	case 0:
		return ast.Eps()
	case 1:
		return args[0]
	}
	folded := args[len(args)-2]
	for i := len(args) - 1; i < len(args); i++ {
		folded = m.encodePair(folded, args[i])
	}
	rest := append(append([]ast.Expr{}, args[:len(args)-2]...), folded)
	return m.encodeArgs(rest)
}

// EliminateArity rewrites every IDB predicate of arity at least two
// into a unary predicate using the Lemma 4.1 encoding (Theorem 4.2:
// arity is redundant). EDB predicates are left untouched: the paper's
// queries are over monadic schemas, so EDB relations are already
// monadic; an error is returned otherwise.
func EliminateArity(p ast.Program, m ArityMarkers) (ast.Program, error) {
	if m.A == m.B {
		return ast.Program{}, errf("arity", "", "markers must be distinct, got %q twice", m.A)
	}
	arities, err := p.Arities()
	if err != nil {
		return ast.Program{}, errf("arity", "", "%v", err)
	}
	idb := map[string]bool{}
	for _, n := range p.IDBNames() {
		idb[n] = true
	}
	for _, n := range p.EDBNames() {
		if arities[n] > 1 {
			return ast.Program{}, errf("arity", "", "EDB relation %s has arity %d; queries are over monadic schemas", n, arities[n])
		}
	}
	out := p.Clone()
	encodePred := func(pr ast.Pred) ast.Pred {
		if !idb[pr.Name] || len(pr.Args) <= 1 {
			return pr
		}
		return ast.Pred{Name: pr.Name, Args: []ast.Expr{m.encodeArgs(pr.Args)}}
	}
	for si, s := range out.Strata {
		for ri, r := range s {
			r.Head = encodePred(r.Head)
			for li, l := range r.Body {
				if pr, ok := l.Atom.(ast.Pred); ok {
					r.Body[li] = ast.Literal{Neg: l.Neg, Atom: encodePred(pr)}
				}
			}
			out.Strata[si][ri] = r
		}
	}
	return out, nil
}

// EncodeTuplePaths applies the Lemma 4.1 encoding to a concrete tuple,
// producing the path the rewritten program stores. Exposed for tests
// that verify the correspondence between original and rewritten IDB
// relations.
func (m ArityMarkers) EncodeTuplePaths(paths []value.Path) value.Path {
	switch len(paths) {
	case 0:
		return value.Epsilon
	case 1:
		return paths[0]
	}
	s1, s2 := paths[len(paths)-2], paths[len(paths)-1]
	a := value.Path{m.A}
	b := value.Path{m.B}
	folded := value.Concat(s1, a, s2, a, s1, b, s2)
	rest := append(append([]value.Path{}, paths[:len(paths)-2]...), folded)
	return m.EncodeTuplePaths(rest)
}
