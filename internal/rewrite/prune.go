package rewrite

import "seqlog/internal/ast"

// PruneUnreachable removes rules whose head relation is not needed,
// directly or transitively (through positive or negated body
// predicates), to compute the output relation. Rewritings can leave
// auxiliary relations behind (e.g. packing-structure relations no rule
// references); pruning keeps programs in the smallest fragment they
// actually need.
func PruneUnreachable(p ast.Program, output string) ast.Program {
	defines := map[string]bool{}
	for _, r := range p.Rules() {
		defines[r.Head.Name] = true
	}
	needed := map[string]bool{output: true}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules() {
			if !needed[r.Head.Name] {
				continue
			}
			for _, l := range r.Body {
				if pr, ok := l.Atom.(ast.Pred); ok && defines[pr.Name] && !needed[pr.Name] {
					needed[pr.Name] = true
					changed = true
				}
			}
		}
	}
	var strata []ast.Stratum
	for _, s := range p.Strata {
		var keep ast.Stratum
		for _, r := range s {
			if needed[r.Head.Name] {
				keep = append(keep, r.Clone())
			}
		}
		if len(keep) > 0 {
			strata = append(strata, keep)
		}
	}
	if len(strata) == 0 {
		strata = []ast.Stratum{{}}
	}
	return ast.Program{Strata: strata}
}
