package rewrite

import (
	"testing"

	"seqlog/internal/parser"
)

func BenchmarkEliminateArity(b *testing.B) {
	prog := parser.MustParseProgram(`
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`)
	for i := 0; i < b.N; i++ {
		if _, err := EliminateArity(prog, DefaultArityMarkers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEliminateEquations(b *testing.B) {
	prog := parser.MustParseProgram(`
U($x, $x) :- R($x).
U($x, $y) :- U($x, @a.$y.@b), @a != @b.
S($x) :- U($x, eps).`)
	for i := 0; i < b.N; i++ {
		if _, err := EliminateEquations(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEliminatePackingNonrecursive(b *testing.B) {
	prog := parser.MustParseProgram(`
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.`)
	for i := 0; i < b.N; i++ {
		p, err := EliminatePackingNonrecursive(prog, "A")
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Rules()) != 28 {
			b.Fatal("expected the 28 rules of Example 4.14")
		}
	}
}

func BenchmarkSimulatePackingDoubled(b *testing.B) {
	prog := parser.MustParseProgram(`
T($x, $x, eps) :- R($x).
T($x, $y, <$d>) :- T($x, @a.@b.$y, $d).
S($x) :- T($x, eps, $d).`)
	for i := 0; i < b.N; i++ {
		if _, err := SimulatePackingDoubled(prog, "S", DefaultDoubleMarkers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEliminateIntermediates(b *testing.B) {
	prog := parser.MustParseProgram(`
T1($x.$x) :- R($x).
T2($y.b) :- T1($y).
T3($z) :- T2($z.b), Q($z).
S($w.c) :- T3($w).`)
	for i := 0; i < b.N; i++ {
		if _, err := EliminateIntermediates(prog, "S"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToClassical(b *testing.B) {
	prog := parser.MustParseProgram(`
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`)
	for i := 0; i < b.N; i++ {
		if _, err := ToClassical(prog); err != nil {
			b.Fatal(err)
		}
	}
}
