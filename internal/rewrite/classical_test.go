package rewrite

import (
	"math/rand"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
)

// randomTwoBounded builds instances holding only length-1/2 paths.
func randomTwoBounded(seed int64, count int, rels []string, alphabet []string, maxPaths int) []*instance.Instance {
	r := rand.New(rand.NewSource(seed))
	var out []*instance.Instance
	for i := 0; i < count; i++ {
		inst := instance.New()
		for _, rel := range rels {
			n := r.Intn(maxPaths + 1)
			for j := 0; j < n; j++ {
				l := 1 + r.Intn(2)
				p := make(value.Path, l)
				for k := range p {
					p[k] = value.Intern(alphabet[r.Intn(len(alphabet))])
				}
				inst.AddPath(rel, p)
			}
			inst.Ensure(rel, 1)
		}
		out = append(out, inst)
	}
	return out
}

// assertClassicalEquivalent runs the original program directly and the
// classical translation through the Lemma 5.4 encoding, comparing the
// decoded outputs.
func assertClassicalEquivalent(t *testing.T, prog ast.Program, output string, instances []*instance.Instance) {
	t.Helper()
	classical, err := ToClassical(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The classical program must not use path variables.
	for _, r := range classical.Rules() {
		for _, v := range r.Vars() {
			if !v.Atomic {
				t.Fatalf("path variable %s survives in classical rule %s", v, r)
			}
		}
	}
	for i, edb := range instances {
		if !TwoBounded(edb) {
			t.Fatalf("instance %d is not two-bounded", i)
		}
		direct, err := eval.Eval(prog, edb, eval.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := EncodeTwoBounded(edb)
		if err != nil {
			t.Fatal(err)
		}
		encOut, err := eval.Eval(classical, enc, eval.Limits{})
		if err != nil {
			t.Fatalf("classical eval: %v\n%s", err, classical)
		}
		got := DecodeTwoBounded(encOut, output)
		want := direct.Restrict(output)
		if !want.Equal(got) {
			t.Fatalf("instance %d: outputs differ\ndirect:\n%s\nvia classical:\n%s\nclassical program:\n%s",
				i, want, got, classical)
		}
	}
}

func TestToClassicalReachability(t *testing.T) {
	// Section 5.1.1's reachability program (atomic variables only).
	prog := mustParse(t, `
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).
S :- T(a.b).`)
	assertClassicalEquivalent(t, prog, "S",
		randomTwoBounded(3, 15, []string{"R"}, []string{"a", "b", "c", "d"}, 8))
}

func TestToClassicalBlackNodes(t *testing.T) {
	// The Theorem 5.5 program with stratified negation.
	prog := mustParse(t, `
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`)
	assertClassicalEquivalent(t, prog, "S",
		randomTwoBounded(5, 15, []string{"R", "B"}, []string{"a", "b", "c"}, 6))
}

func TestToClassicalPathVariables(t *testing.T) {
	// Path variables expand to at most two atomic variables.
	prog := mustParse(t, `
S($x) :- R($x), Q($x).
S(@a.@b) :- R(@a.@b), R(@b.@a).`)
	assertClassicalEquivalent(t, prog, "S",
		randomTwoBounded(7, 15, []string{"R", "Q"}, []string{"a", "b", "c"}, 6))
}

func TestToClassicalEquationsAndNonequalities(t *testing.T) {
	prog := mustParse(t, `
S($x) :- R($x), $x = @a.@b, @a != @b.
S($x) :- R($x), Q($y), $x != $y.`)
	assertClassicalEquivalent(t, prog, "S",
		randomTwoBounded(11, 15, []string{"R", "Q"}, []string{"a", "b"}, 5))
}

func TestToClassicalRenaming(t *testing.T) {
	prog := mustParse(t, `S(@x) :- R(@x.@y).`)
	classical, err := ToClassical(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := classical.String()
	if s != "S1(@x) :- R2(@x, @y).\n" {
		t.Fatalf("translation = %q", s)
	}
}

func TestToClassicalRejections(t *testing.T) {
	if _, err := ToClassical(mustParse(t, `S(<$x>) :- R($x).`)); err == nil {
		t.Fatal("packing must be rejected")
	}
	if _, err := ToClassical(mustParse(t, `S($x, $y) :- R($x.$y).`)); err == nil {
		t.Fatal("arity must be rejected")
	}
}

func TestEncodeDecodeTwoBounded(t *testing.T) {
	edb := parser.MustParseInstance(`R(a). R(a.b). A.`)
	enc, err := EncodeTwoBounded(edb)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Relation("R1").Len() != 1 || enc.Relation("R2").Len() != 1 {
		t.Fatalf("encoding wrong:\n%s", enc)
	}
	dec := DecodeTwoBounded(enc, "R", "A")
	if !dec.Equal(edb) {
		t.Fatalf("roundtrip differs:\n%s\nvs\n%s", edb, dec)
	}
	if _, err := EncodeTwoBounded(parser.MustParseInstance(`R(a.b.c).`)); err == nil {
		t.Fatal("length-3 path must be rejected")
	}
	if TwoBounded(parser.MustParseInstance(`R(a.b.c).`)) {
		t.Fatal("TwoBounded misdetects")
	}
}
