package queries

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/value"
	"seqlog/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	if len(Names()) < 15 {
		t.Fatalf("only %d queries registered: %v", len(Names()), Names())
	}
	for _, q := range All() {
		if q.Source == "" || q.Doc == "" || q.Output == "" {
			t.Errorf("query %s lacks metadata", q.Name)
		}
		if err := q.Program.Validate(); err != nil {
			t.Errorf("query %s invalid: %v", q.Name, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown query must error")
	}
	q, err := Get("squaring")
	if err != nil || q.Name != "squaring" {
		t.Fatalf("Get: %v %v", q, err)
	}
}

func TestFragmentsMatchPaper(t *testing.T) {
	cases := map[string]string{
		"only-as-equation":   "{E}",
		"only-as-recursion":  "{A, I, R}",
		"nfa-accept":         "{A, I, R}",
		"three-occurrences":  "{E, I, N, P}",
		"reverse-arity":      "{A, I, R}",
		"reverse-noarity":    "{I, R}",
		"mirror-nonequal":    "{A, E, I, N, R}",
		"squaring":           "{A, I, R}",
		"reachability":       "{I, R}",
		"black-nodes":        "{I, N}",
		"even-length-packed": "{A, I, P, R}",
	}
	for name, want := range cases {
		q, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.Fragment().String(); got != want {
			t.Errorf("%s: fragment %s, want %s", name, got, want)
		}
	}
}

func run(t *testing.T, q Query, edb *instance.Instance) *instance.Relation {
	t.Helper()
	rel, err := eval.Query(q.Program, edb, q.Output, eval.Limits{})
	if err != nil {
		t.Fatalf("%s: %v", q.Name, err)
	}
	return rel
}

func TestOnlyAsAgree(t *testing.T) {
	edb := workload.OnlyAs(1, "R", 20, 6)
	a := run(t, OnlyAsEquation, edb)
	b := run(t, OnlyAsRecursion, edb)
	if !a.Equal(b) {
		t.Fatalf("disagree: %v vs %v", a.Sorted(), b.Sorted())
	}
	if a.Len() == 0 {
		t.Fatal("workload should contain all-a paths")
	}
}

func TestReverseAgree(t *testing.T) {
	edb := workload.Strings(2, "R", 12, 5, workload.Alphabet(3))
	a := run(t, ReverseArity, edb)
	b := run(t, ReverseNoArity, edb)
	if !a.Equal(b) {
		t.Fatalf("disagree: %v vs %v", a.Sorted(), b.Sorted())
	}
}

func TestNFAAcceptEvenBs(t *testing.T) {
	edb := workload.NFA(3, 30, 5)
	got := run(t, NFAAccept, edb)
	// Oracle: strings with an even number of b's.
	want := instance.NewRelation(1)
	for _, tu := range edb.Relation("R").Tuples() {
		bs := 0
		for _, v := range tu[0] {
			if v == value.Intern("b") {
				bs++
			}
		}
		if bs%2 == 0 {
			want.Add(tu)
		}
	}
	if !got.Equal(want) {
		t.Fatalf("NFA disagree with oracle:\ngot %v\nwant %v", got.Sorted(), want.Sorted())
	}
}

func TestSquaringOutput(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5} {
		edb := workload.Repeated("R", "a", n)
		got := run(t, Squaring, edb)
		if got.Len() != 1 {
			t.Fatalf("n=%d: |S| = %d", n, got.Len())
		}
		if l := len(got.Tuples()[0][0]); l != n*n {
			t.Fatalf("n=%d: output length %d, want %d", n, l, n*n)
		}
	}
}

func TestReachabilityChainAndRandom(t *testing.T) {
	yes, err := eval.Holds(Reachability.Program, workload.Chain(12), "S", eval.Limits{})
	if err != nil || !yes {
		t.Fatalf("chain reachability: %v %v", yes, err)
	}
	// A graph with no edges out of a.
	edb := instance.New()
	edb.AddPath("R", value.PathOf("c", "b"))
	no, err := eval.Holds(Reachability.Program, edb, "S", eval.Limits{})
	if err != nil || no {
		t.Fatalf("unreachable case: %v %v", no, err)
	}
}

func TestThreeOccurrences(t *testing.T) {
	edb := parser.MustParseInstance(`R(a.b.a.b.a). S(a).`)
	yes, err := eval.Holds(ThreeOccurrences.Program, edb, "A", eval.Limits{})
	if err != nil || !yes {
		t.Fatalf("three a's: %v %v", yes, err)
	}
	edb2 := parser.MustParseInstance(`R(a.b). S(a).`)
	no, err := eval.Holds(ThreeOccurrences.Program, edb2, "A", eval.Limits{})
	if err != nil || no {
		t.Fatalf("one a: %v %v", no, err)
	}
}

func TestNonTerminatingGuard(t *testing.T) {
	_, err := eval.Eval(NonTerminating.Program, instance.New(), eval.Limits{MaxFacts: 500})
	if !errors.Is(err, eval.ErrNonTermination) {
		t.Fatalf("err = %v", err)
	}
	if NonTerminating.Terminating {
		t.Fatal("metadata wrong")
	}
}

func TestBlackNodes(t *testing.T) {
	edb := parser.MustParseInstance(`R(a.b). R(a.c). R(d.b). B(b).`)
	got := run(t, BlackNodes, edb)
	if got.Len() != 1 || !got.Contains(instance.Tuple{value.PathOf("d")}) {
		t.Fatalf("black nodes: %v", got.Sorted())
	}
}

func TestProcessMining(t *testing.T) {
	edb := parser.MustParseInstance(`
L('create order'.'complete order'.ship.'receive payment').
L('complete order'.ship).
L(ship.close).
L('complete order'.'receive payment'.'complete order').
`)
	got := run(t, ProcessMining, edb)
	var keys []string
	for _, tu := range got.Sorted() {
		keys = append(keys, tu[0].String())
	}
	want := []string{
		"'create order'.'complete order'.ship.'receive payment'",
		"ship.close",
	}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("process mining = %v, want %v", keys, want)
	}
}

func TestDeepEqual(t *testing.T) {
	same := workload.TwoJSONSets(5, 8, 3, true)
	diff := workload.TwoJSONSets(5, 8, 3, false)
	holds, err := eval.Holds(DeepEqual.Program, same, "A", eval.Limits{})
	if err != nil || holds {
		t.Fatalf("equal sets flagged different: %v %v", holds, err)
	}
	holds, err = eval.Holds(DeepEqual.Program, diff, "A", eval.Limits{})
	if err != nil || !holds {
		t.Fatalf("different sets not flagged: %v %v", holds, err)
	}
}

func TestSalesByYear(t *testing.T) {
	edb := workload.Sales(7, 3, 2)
	got := run(t, SalesByYear, edb)
	if got.Len() != edb.Relation("Sales").Len() {
		t.Fatalf("cardinality changed: %d vs %d", got.Len(), edb.Relation("Sales").Len())
	}
	for _, tu := range got.Tuples() {
		if !strings.HasPrefix(tu[0][0].String(), "year") {
			t.Fatalf("not regrouped by year: %v", tu)
		}
	}
}

func TestNodesOnAllPaths(t *testing.T) {
	edb := parser.MustParseInstance(`
P(x.y.z).
P(w.y.z).
P(y.z.q).
`)
	got := run(t, GraphPathsAllNodes, edb)
	var nodes []string
	for _, tu := range got.Sorted() {
		nodes = append(nodes, tu[0].String())
	}
	// y and z occur on all three paths.
	if fmt.Sprint(nodes) != "[y z]" {
		t.Fatalf("nodes on all paths = %v", nodes)
	}
}

func TestEvenLengthPacked(t *testing.T) {
	edb := parser.MustParseInstance(`R(a.b). R(a.b.c). R(eps). R(a.b.c.d).`)
	got := run(t, EvenLengthPacked, edb)
	var paths []string
	for _, tu := range got.Sorted() {
		paths = append(paths, tu[0].String())
	}
	if fmt.Sprint(paths) != "[eps a.b a.b.c.d]" {
		t.Fatalf("even-length = %v", paths)
	}
}

func TestQueryFeatureMetadataConsistent(t *testing.T) {
	for _, q := range All() {
		// The declared EDB names must match the program's EDB.
		gotEDB := q.Program.EDBNames()
		for _, n := range gotEDB {
			found := false
			for _, d := range q.EDB {
				if d == n {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: EDB %s missing from metadata %v", q.Name, n, q.EDB)
			}
		}
		// Output is an IDB relation.
		isIDB := false
		for _, n := range q.Program.IDBNames() {
			if n == q.Output {
				isIDB = true
			}
		}
		if !isIDB {
			t.Errorf("%s: output %s is not an IDB relation", q.Name, q.Output)
		}
		_ = ast.FeatureSet(0)
	}
}
