// Package queries collects every example program of the paper as a
// named, parsed, validated Program, for use by tests, benchmarks, the
// CLI tools, and the examples.
package queries

import (
	"fmt"
	"sort"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
)

// Query is a named program with its designated output relation.
type Query struct {
	// Name identifies the query (e.g. "only-as-equation").
	Name string
	// Source cites the paper location (e.g. "Example 3.1").
	Source string
	// Doc describes what the query computes.
	Doc string
	// Program is the parsed program.
	Program ast.Program
	// Output is the designated output relation.
	Output string
	// EDB lists the input relation names.
	EDB []string
	// Terminating is false for Example 2.3.
	Terminating bool
}

// Fragment reports the query program's feature set.
func (q Query) Fragment() ast.FeatureSet { return q.Program.Features() }

var registry = map[string]Query{}

func register(q Query) Query {
	if _, dup := registry[q.Name]; dup {
		panic("queries: duplicate " + q.Name)
	}
	registry[q.Name] = q
	return q
}

func mustProgram(src string) ast.Program { return parser.MustParseProgram(src) }

// Get returns a registered query by name.
func Get(name string) (Query, error) {
	q, ok := registry[name]
	if !ok {
		return Query{}, fmt.Errorf("queries: unknown query %q (see queries.Names())", name)
	}
	return q, nil
}

// Names lists the registered query names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered query, sorted by name.
func All() []Query {
	var out []Query
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// OnlyAsEquation is Example 3.1's {E} program: paths from R consisting
// exclusively of a's, via the equation a.$x = $x.a.
var OnlyAsEquation = register(Query{
	Name:   "only-as-equation",
	Source: "Example 3.1",
	Doc:    "paths from R that consist exclusively of a's, using one equation",
	Program: mustProgram(`
S($x) :- R($x), a.$x = $x.a.`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// OnlyAsRecursion is Example 3.1's {A, I, R} program for the same query.
var OnlyAsRecursion = register(Query{
	Name:   "only-as-recursion",
	Source: "Example 3.1",
	Doc:    "paths from R that consist exclusively of a's, using recursion",
	Program: mustProgram(`
T($x, $x) :- R($x).
T($x, $y) :- T($x, $y.a).
S($x) :- T($x, eps).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// NFAAccept is Example 2.1: strings from R accepted by the NFA
// (N initial states, D transitions, F final states).
var NFAAccept = register(Query{
	Name:   "nfa-accept",
	Source: "Example 2.1",
	Doc:    "strings from R accepted by the NFA given by N, D, F",
	Program: mustProgram(`
S(@q.$x, eps) :- R($x), N(@q).
S(@q2.$y, $z.@a) :- S(@q1.@a.$y, $z), D(@q1, @a, @q2).
A($x) :- S(@q, $x), F(@q).`),
	Output: "A", EDB: []string{"R", "N", "D", "F"}, Terminating: true,
})

// ThreeOccurrences is Example 2.2: checks whether strings from S occur
// at least three different times as substrings of strings from R,
// using packing and nonequalities.
var ThreeOccurrences = register(Query{
	Name:   "three-occurrences",
	Source: "Example 2.2",
	Doc:    "at least three different occurrences of an S-string inside R-strings",
	Program: mustProgram(`
T($u.<$s>.$v) :- R($u.$s.$v), S($s).
A :- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.`),
	Output: "A", EDB: []string{"R", "S"}, Terminating: true,
})

// NonTerminating is Example 2.3: the two-rule program that terminates
// on no instance.
var NonTerminating = register(Query{
	Name:   "non-terminating",
	Source: "Example 2.3",
	Doc:    "the classic nonterminating program T(a). T(a.$x) :- T($x).",
	Program: mustProgram(`
T(a).
T(a.$x) :- T($x).`),
	Output: "T", EDB: nil, Terminating: false,
})

// ReverseArity is Example 4.3: reversal with a binary predicate.
var ReverseArity = register(Query{
	Name:   "reverse-arity",
	Source: "Example 4.3",
	Doc:    "reversals of the paths in R, using a binary accumulator",
	Program: mustProgram(`
T($x, eps) :- R($x).
T($x, $y.@u) :- T($x.@u, $y).
S($x) :- T(eps, $x).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// ReverseNoArity is Example 4.3's unary rewriting via Lemma 4.1 (with
// markers a and b, exactly as printed in the paper).
var ReverseNoArity = register(Query{
	Name:   "reverse-noarity",
	Source: "Example 4.3",
	Doc:    "reversals of the paths in R, arity eliminated as in the paper",
	Program: mustProgram(`
T($x.a.a.$x.b) :- R($x).
T($x.a.$y.@u.a.$x.b.$y.@u) :- T($x.@u.a.$y.a.$x.@u.b.$y).
S($x) :- T(a.$x.a.b.$x).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// MirrorNonequal is Example 4.6: paths a1..an.bn..b1 with ai != bi.
var MirrorNonequal = register(Query{
	Name:   "mirror-nonequal",
	Source: "Example 4.6",
	Doc:    "paths that split as a1..an.bn..b1 with ai != bi for all i",
	Program: mustProgram(`
U($x, $x) :- R($x).
U($x, $y) :- U($x, @a.$y.@b), @a != @b.
S($x) :- U($x, eps).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// Squaring is the query from Theorem 5.3: for R(a^n), output a^(n²);
// it witnesses the primitivity of recursion.
var Squaring = register(Query{
	Name:   "squaring",
	Source: "Theorem 5.3",
	Doc:    "a^(n^2) for every a^n in R; inexpressible without recursion",
	Program: mustProgram(`
T(eps, $x, $x) :- R($x).
T($y.$x, $x, $z) :- T($y, $x, a.$z).
S($y) :- T($y, $x, eps).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// Reachability is the §5.1.1 program: is b reachable from a in the
// graph whose edges are the length-two paths of R?
var Reachability = register(Query{
	Name:   "reachability",
	Source: "Section 5.1.1",
	Doc:    "boolean: node b reachable from node a over length-2 edge paths",
	Program: mustProgram(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).
S :- T(a.b).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// BlackNodes is the Theorem 5.5 program: nodes all of whose successors
// are black; it witnesses the primitivity of intermediate predicates
// in the presence of negation.
var BlackNodes = register(Query{
	Name:   "black-nodes",
	Source: "Theorem 5.5",
	Doc:    "nodes with only edges to black nodes (requires I with N)",
	Program: mustProgram(`
W(@x) :- R(@x.@y), !B(@y).
---
S(@x) :- R(@x.@y), !W(@x).`),
	Output: "S", EDB: []string{"R", "B"}, Terminating: true,
})

// EvenLengthPacked is a terminating recursive program exercising
// packing (used for the Theorem 4.15 doubling simulation): S holds the
// even-length paths of R, found by consuming two atoms per step while
// deepening a packed accumulator.
var EvenLengthPacked = register(Query{
	Name:   "even-length-packed",
	Source: "Theorem 4.15 (exercise)",
	Doc:    "even-length paths of R via a packed accumulator",
	Program: mustProgram(`
T($x, $x, eps) :- R($x).
T($x, $y, <$d>) :- T($x, @a.@b.$y, $d).
S($x) :- T($x, eps, $d).`),
	Output: "S", EDB: []string{"R"}, Terminating: true,
})

// ProcessMining is the introduction's process-mining query: logs in
// which every occurrence of 'complete order' is followed (eventually)
// by 'receive payment'.
var ProcessMining = register(Query{
	Name:   "process-mining",
	Source: "Section 1 (process mining)",
	Doc:    "logs where every 'complete order' is eventually followed by 'receive payment'",
	Program: mustProgram(`
After($v) :- L($u.'complete order'.$v), $v = $w.'receive payment'.$z.
Bad($x) :- L($x), $x = $u.'complete order'.$v, !After($v).
S($x) :- L($x), !Bad($x).`),
	Output: "S", EDB: []string{"L"}, Terminating: true,
})

// DeepEqual is the introduction's JSON motivation: two objects
// (as sets of root-to-value paths) are deep-equal iff the path sets
// coincide; the nullary output holds when they differ.
var DeepEqual = register(Query{
	Name:   "deep-unequal",
	Source: "Section 1 (JSON)",
	Doc:    "boolean: the path sets J1 and J2 differ",
	Program: mustProgram(`
A :- J1($x), !J2($x).
A :- J2($x), !J1($x).`),
	Output: "A", EDB: []string{"J1", "J2"}, Terminating: true,
})

// SalesByYear is the introduction's JSON restructuring: Sales holds
// item–year–value paths; the query regroups them as year–item–value.
var SalesByYear = register(Query{
	Name:   "sales-by-year",
	Source: "Section 1 (JSON)",
	Doc:    "swap the first two elements of every length-3 path",
	Program: mustProgram(`
S(@year.@item.@value) :- Sales(@item.@year.@value).`),
	Output: "S", EDB: []string{"Sales"}, Terminating: true,
})

// GraphPathsAllNodes is the introduction's graph-database query: the
// nodes that belong to all paths in a given set of paths.
var GraphPathsAllNodes = register(Query{
	Name:   "nodes-on-all-paths",
	Source: "Section 1 (graph databases)",
	Doc:    "nodes occurring on every path stored in P",
	Program: mustProgram(`
Node(@n) :- P($u.@n.$v).
On(@n.$p) :- Node(@n), P($p), $p = $u.@n.$v.
Missing(@n) :- Node(@n), P($p), !On(@n.$p).
S(@n) :- Node(@n), !Missing(@n).`),
	Output: "S", EDB: []string{"P"}, Terminating: true,
})
