package unify

import (
	"testing"

	"seqlog/internal/ast"
)

func BenchmarkFigure2Equation(b *testing.B) {
	eq := Equation{
		L: ast.Cat(ast.P("x"), ast.Packed(ast.Cat(ast.A("y"), ast.P("z"))), ast.A("w")),
		R: ast.Cat(ast.P("u"), ast.P("v"), ast.P("u")),
	}
	for i := 0; i < b.N; i++ {
		if res := Solve(eq, Options{}); len(res.Solutions) != 4 {
			b.Fatal("wrong solution count")
		}
	}
}

func BenchmarkEmptyClosure(b *testing.B) {
	eq := Equation{
		L: ast.Cat(ast.P("x"), ast.C("a"), ast.P("y")),
		R: ast.Cat(ast.P("u"), ast.P("v")),
	}
	for i := 0; i < b.N; i++ {
		Solve(eq, Options{AllowEmpty: true})
	}
}

func BenchmarkGroundEquation(b *testing.B) {
	l := ast.Expr{}
	for i := 0; i < 32; i++ {
		l = ast.Cat(l, ast.C("a"))
	}
	eq := Equation{L: ast.Cat(ast.P("x"), ast.P("y")), R: l}
	for i := 0; i < b.N; i++ {
		Solve(eq, Options{})
	}
}
