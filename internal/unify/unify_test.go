package unify

import (
	"math/rand"
	"sort"
	"testing"

	"seqlog/internal/ast"
	"seqlog/internal/eval"
	"seqlog/internal/value"
)

// eq builds an equation from two expressions.
func eqn(l, r ast.Expr) Equation { return Equation{L: l, R: r} }

func solutionStrings(sols []ast.Subst) []string {
	out := make([]string, len(sols))
	for i, s := range sols {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}

func TestFigure2(t *testing.T) {
	// The paper's Example 4.8 / Figure 2:
	//   $x.<@y.$z>.@w = $u.$v.$u
	lhs := ast.Cat(ast.P("x"), ast.Packed(ast.Cat(ast.A("y"), ast.P("z"))), ast.A("w"))
	rhs := ast.Cat(ast.P("u"), ast.P("v"), ast.P("u"))
	e := eqn(lhs, rhs)
	if !e.OneSidedNonlinear() {
		t.Fatal("Figure 2 equation must be one-sided nonlinear")
	}
	res := Solve(e, Options{CollectGraph: true})
	if !res.Complete {
		t.Fatal("solver must terminate on the Figure 2 equation")
	}
	got := solutionStrings(res.Solutions)
	want := []string{
		"{$u->$x.<@y.$z>.@w, $x->$x.<@y.$z>.@w.$v.$x}",
		"{$u-><@y.$z>.@w, $x-><@y.$z>.@w.$v}",
		"{$u->@w, $v->$x.<@y.$z>, $x->@w.$x}",
		"{$u->@w, $v-><@y.$z>, $x->@w}",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d solutions %v, want 4:\n%v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("solutions differ:\n got %v\nwant %v", got, want)
		}
	}
	// All are symbolic solutions.
	for _, s := range res.Solutions {
		if !Verify(e, s) {
			t.Fatalf("solution %s does not verify", s)
		}
	}
	// Graph sanity: it has success and fail leaves and a DOT rendering.
	var succ, fail int
	for _, n := range res.Graph.Nodes {
		if n.Success {
			succ++
		}
		if n.Fail {
			fail++
		}
	}
	if succ != 1 || fail == 0 {
		t.Fatalf("graph leaves: %d success, %d fail", succ, fail)
	}
	if dot := res.Graph.DOT(); len(dot) < 100 {
		t.Fatalf("DOT too short:\n%s", dot)
	}
}

func TestOnlyAsEquationCycles(t *testing.T) {
	// $x.a = a.$x is the paper's classic nonterminating example.
	e := eqn(ast.Cat(ast.P("x"), ast.C("a")), ast.Cat(ast.C("a"), ast.P("x")))
	if e.OneSidedNonlinear() {
		t.Fatal("$x occurs on both sides; not one-sided nonlinear")
	}
	res := Solve(e, Options{})
	if res.Complete {
		t.Fatal("pig-pug cannot be complete on $x.a = a.$x")
	}
	got := solutionStrings(res.Solutions)
	if len(got) < 1 || got[0] != "{$x->a}" {
		t.Fatalf("solutions = %v, want at least {$x->a}", got)
	}
}

func TestSimpleWordEquation(t *testing.T) {
	// $x.$y = a.b
	e := eqn(ast.Cat(ast.P("x"), ast.P("y")), ast.Cat(ast.C("a"), ast.C("b")))
	res := Solve(e, Options{})
	if !res.Complete {
		t.Fatal("must be complete")
	}
	got := solutionStrings(res.Solutions)
	if len(got) != 1 || got[0] != "{$x->a, $y->b}" {
		t.Fatalf("nonempty solutions = %v", got)
	}
	resE := Solve(e, Options{AllowEmpty: true})
	gotE := solutionStrings(resE.Solutions)
	wantE := []string{
		"{$x->a, $y->b}",
		"{$x->a.b, $y->eps}",
		"{$x->eps, $y->a.b}",
	}
	if len(gotE) != 3 {
		t.Fatalf("empty-closure solutions = %v, want %v", gotE, wantE)
	}
	for i := range wantE {
		if gotE[i] != wantE[i] {
			t.Fatalf("empty-closure solutions = %v, want %v", gotE, wantE)
		}
	}
}

func TestAtomicVariableRules(t *testing.T) {
	// @x.$y = a.b.c  ->  @x = a, $y = b.c
	e := eqn(ast.Cat(ast.A("x"), ast.P("y")), ast.Cat(ast.C("a"), ast.C("b"), ast.C("c")))
	res := Solve(e, Options{})
	got := solutionStrings(res.Solutions)
	if len(got) != 1 || got[0] != "{@x->a, $y->b.c}" {
		t.Fatalf("solutions = %v", got)
	}
	// Rule (h): @x = @y.
	e2 := eqn(ast.A("x"), ast.A("y"))
	res2 := Solve(e2, Options{})
	got2 := solutionStrings(res2.Solutions)
	if len(got2) != 1 || got2[0] != "{@x->@y}" {
		t.Fatalf("rule (h) solutions = %v", got2)
	}
	// Atomic variable cannot match a packed value.
	e3 := eqn(ast.A("x"), ast.Packed(ast.C("a")))
	res3 := Solve(e3, Options{})
	if len(res3.Solutions) != 0 || !res3.Complete {
		t.Fatalf("@x = <a> should fail: %v", solutionStrings(res3.Solutions))
	}
	// Atomic variable vs constant inside a longer equation.
	e4 := eqn(ast.Cat(ast.C("a"), ast.A("x")), ast.Cat(ast.A("x"), ast.C("a")))
	res4 := Solve(e4, Options{})
	got4 := solutionStrings(res4.Solutions)
	if len(got4) != 1 || got4[0] != "{@x->a}" {
		t.Fatalf("a.@x = @x.a solutions = %v", got4)
	}
}

func TestPackingRuleK(t *testing.T) {
	// <$x>.$y = <a.$z>.c
	e := eqn(
		ast.Cat(ast.Packed(ast.P("x")), ast.P("y")),
		ast.Cat(ast.Packed(ast.Cat(ast.C("a"), ast.P("z"))), ast.C("c")),
	)
	res := Solve(e, Options{})
	if !res.Complete {
		t.Fatal("must be complete")
	}
	got := solutionStrings(res.Solutions)
	if len(got) != 1 || got[0] != "{$x->a.$z, $y->c}" {
		t.Fatalf("solutions = %v", got)
	}
	// Mismatched packing structures fail.
	e2 := eqn(ast.Packed(ast.P("x")), ast.C("a"))
	if res := Solve(e2, Options{}); len(res.Solutions) != 0 {
		t.Fatalf("<$x> = a should fail: %v", solutionStrings(res.Solutions))
	}
	// Identical packs cancel.
	e3 := eqn(
		ast.Cat(ast.Packed(ast.P("x")), ast.C("a")),
		ast.Cat(ast.Packed(ast.P("x")), ast.P("y")),
	)
	res3 := Solve(e3, Options{})
	got3 := solutionStrings(res3.Solutions)
	if len(got3) != 1 || got3[0] != "{$y->a}" {
		t.Fatalf("solutions = %v", got3)
	}
}

func TestPathVarVersusPack(t *testing.T) {
	// $x = <a>.<b>  (AllowEmpty not needed: $x nonempty).
	e := eqn(ast.P("x"), ast.Cat(ast.Packed(ast.C("a")), ast.Packed(ast.C("b"))))
	res := Solve(e, Options{})
	got := solutionStrings(res.Solutions)
	if len(got) != 1 || got[0] != "{$x-><a>.<b>}" {
		t.Fatalf("solutions = %v", got)
	}
}

func TestOneSidedNonlinear(t *testing.T) {
	cases := []struct {
		l, r ast.Expr
		want bool
	}{
		{ast.Cat(ast.P("x"), ast.C("a")), ast.Cat(ast.C("a"), ast.P("x")), false},
		{ast.Cat(ast.P("x"), ast.P("x")), ast.Cat(ast.P("u"), ast.P("v")), true},
		{ast.Cat(ast.P("x"), ast.P("y")), ast.Cat(ast.P("u"), ast.P("u")), true},
		{ast.Cat(ast.P("x"), ast.P("x")), ast.Cat(ast.P("u"), ast.P("u")), true},
		{ast.P("x"), ast.Packed(ast.P("x")), false},
		{ast.Cat(ast.P("x"), ast.Packed(ast.Cat(ast.A("y"), ast.P("z"))), ast.A("w")), ast.Cat(ast.P("u"), ast.P("v"), ast.P("u")), true},
	}
	for i, c := range cases {
		if got := eqn(c.l, c.r).OneSidedNonlinear(); got != c.want {
			t.Errorf("case %d (%s = %s): got %v, want %v", i, c.l, c.r, got, c.want)
		}
	}
}

func TestAllSolutionsVerify(t *testing.T) {
	eqs := []Equation{
		eqn(ast.Cat(ast.P("x"), ast.P("y")), ast.Cat(ast.C("a"), ast.C("b"), ast.C("c"))),
		eqn(ast.Cat(ast.P("x"), ast.C("a"), ast.P("y")), ast.Cat(ast.P("u"), ast.P("u"))),
		eqn(ast.Cat(ast.A("p"), ast.P("x")), ast.Cat(ast.P("u"), ast.A("q"))),
		eqn(ast.Cat(ast.Packed(ast.P("a")), ast.P("x")), ast.Cat(ast.P("u"), ast.Packed(ast.P("b")))),
	}
	for _, e := range eqs {
		for _, mode := range []bool{false, true} {
			res := Solve(e, Options{AllowEmpty: mode})
			for _, s := range res.Solutions {
				if !Verify(e, s) {
					t.Errorf("%s: solution %s does not verify (allowEmpty=%v)", e, s, mode)
				}
				if !s.Valid() {
					t.Errorf("%s: solution %s binds an atomic variable to a non-atomic expression", e, s)
				}
			}
		}
	}
}

// randomGroundPath builds a random flat path over {a,b}.
func randomGroundPath(r *rand.Rand, maxLen int) value.Path {
	n := r.Intn(maxLen + 1)
	p := make(value.Path, n)
	for i := range p {
		p[i] = value.Intern([]string{"a", "b"}[r.Intn(2)])
	}
	return p
}

// TestCompletenessSampling: for random one-sided nonlinear equations and
// random ground valuations that solve them, some symbolic solution must
// cover the valuation.
func TestCompletenessSampling(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	// Patterns: LHS linear with distinct vars; RHS ground or repeats its
	// own vars. One-sided nonlinear by construction.
	mkLHS := func() ast.Expr {
		parts := []ast.Expr{ast.P("x1"), ast.C("a"), ast.P("x2")}
		if r.Intn(2) == 0 {
			parts = append(parts, ast.A("x3"))
		}
		return ast.Cat(parts...)
	}
	mkRHS := func() ast.Expr {
		switch r.Intn(3) {
		case 0:
			return ast.Cat(ast.P("y"), ast.P("y"))
		case 1:
			return ast.Cat(ast.C("a"), ast.P("y"), ast.C("b"))
		default:
			return ast.Cat(ast.P("y"), ast.C("a"), ast.P("y"))
		}
	}
	for trial := 0; trial < 60; trial++ {
		e := eqn(mkLHS(), mkRHS())
		if !e.OneSidedNonlinear() {
			t.Fatalf("generator produced non-one-sided equation %s", e)
		}
		res := Solve(e, Options{AllowEmpty: true})
		if !res.Complete {
			t.Fatalf("solver incomplete on one-sided nonlinear %s", e)
		}
		vars := e.Vars()
		// Random ground valuations; keep the ones that solve e.
		for i := 0; i < 200; i++ {
			nu := map[ast.Var]value.Path{}
			sub := ast.Subst{}
			for _, v := range vars {
				if v.Atomic {
					p := value.Path{value.Intern([]string{"a", "b"}[r.Intn(2)])}
					nu[v] = p
					sub[v] = ast.FromPath(p)
				} else {
					p := randomGroundPath(r, 3)
					nu[v] = p
					sub[v] = ast.FromPath(p)
				}
			}
			if !sub.Apply(e.L).Eval().Equal(sub.Apply(e.R).Eval()) {
				continue
			}
			if !covered(res.Solutions, vars, nu) {
				t.Fatalf("valuation %v solves %s but is not covered by %v",
					nu, e, solutionStrings(res.Solutions))
			}
		}
	}
}

// covered reports whether some symbolic solution generalizes nu: there
// is a grounding of the solution's images reproducing nu exactly.
func covered(sols []ast.Subst, vars []ast.Var, nu map[ast.Var]value.Path) bool {
	for _, s := range sols {
		patterns := make([]ast.Expr, len(vars))
		paths := make([]value.Path, len(vars))
		for i, v := range vars {
			if img, ok := s[v]; ok {
				patterns[i] = img
			} else {
				patterns[i] = ast.Expr{ast.VarT{V: v}}
			}
			paths[i] = nu[v]
		}
		env := eval.NewEnv()
		found := false
		env.MatchTuple(patterns, paths, func() { found = true })
		if found {
			return true
		}
	}
	return false
}

func TestMaxStatesTruncation(t *testing.T) {
	// A both-sided nonlinear equation that blows up; the budget must
	// stop it and report incompleteness.
	e := eqn(
		ast.Cat(ast.P("x"), ast.P("y"), ast.P("x")),
		ast.Cat(ast.P("y"), ast.C("a"), ast.P("x"), ast.C("b"), ast.P("y")),
	)
	res := Solve(e, Options{MaxStates: 50})
	if res.Complete {
		t.Fatal("expected truncation")
	}
}

func TestEpsilonEquation(t *testing.T) {
	res := Solve(eqn(ast.Eps(), ast.Eps()), Options{})
	if len(res.Solutions) != 1 || len(res.Solutions[0]) != 0 {
		t.Fatalf("eps = eps solutions: %v", solutionStrings(res.Solutions))
	}
	res2 := Solve(eqn(ast.Eps(), ast.C("a")), Options{})
	if len(res2.Solutions) != 0 {
		t.Fatal("eps = a must fail")
	}
	// eps = $x succeeds only via the empty closure.
	res3 := Solve(eqn(ast.Eps(), ast.P("x")), Options{})
	if len(res3.Solutions) != 0 {
		t.Fatal("eps = $x must fail in nonempty mode")
	}
	res4 := Solve(eqn(ast.Eps(), ast.P("x")), Options{AllowEmpty: true})
	got := solutionStrings(res4.Solutions)
	if len(got) != 1 || got[0] != "{$x->eps}" {
		t.Fatalf("eps = $x with empties: %v", got)
	}
}
