// Package unify implements associative unification for path-expression
// equations: Plotkin's pig-pug procedure for word equations (paper
// §4.3.1, rules (a)–(g)) extended with atomic variables and packing
// (paper §4.3.2, rules (h)–(m)).
//
// The solver is guaranteed to terminate with a finite complete set of
// symbolic solutions on one-sided nonlinear equations (citing Durán et
// al. [15] as the paper does); on other equations it runs under a state
// budget and reports possible incompleteness.
//
// Solutions follow the paper's convention of reusing variable names for
// "remainders": in a binding like $x -> $u.$x, the $x on the right is a
// fresh variable that happens to share the original's name.
package unify

import (
	"fmt"
	"sort"

	"seqlog/internal/ast"
	"seqlog/internal/value"
)

// Equation is e1 = e2 over path expressions.
type Equation struct {
	L, R ast.Expr
}

// String renders the equation.
func (e Equation) String() string { return e.L.String() + " = " + e.R.String() }

// key is the canonical injective string encoding of the equation. It is
// only used for the Figure-2 graph node table (cold path, CollectGraph
// only); the memoization of explore uses the allocation-free hash below
// with structural-equality collision confirmation.
func (e Equation) key() string { return e.L.Key() + "\x00" + e.R.Key() }

// hash folds a structural hash of both sides, using the interned cached
// hashes of the expressions' constants. Distinct equations may collide;
// confirm with Equal.
func (e Equation) hash() uint64 {
	h := e.L.Hash(value.HashSeed)
	h = value.HashByte(h, 0x1e)
	return e.R.Hash(h)
}

// Equal reports syntactic equality of equations.
func (e Equation) Equal(f Equation) bool { return e.L.Equal(f.L) && e.R.Equal(f.R) }

// Vars returns the variables of the equation in first-occurrence order.
func (e Equation) Vars() []ast.Var {
	seen := map[ast.Var]bool{}
	var out []ast.Var
	for _, v := range append(e.L.Vars(), e.R.Vars()...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// OneSidedNonlinear reports whether every variable occurring more than
// once in the equation occurs in only one side (§4.3.1); pig-pug
// terminates on such equations.
func (e Equation) OneSidedNonlinear() bool {
	left, right := map[ast.Var]int{}, map[ast.Var]int{}
	e.L.VarOccurrences(left)
	e.R.VarOccurrences(right)
	for v, nl := range left {
		if nl+right[v] >= 2 && right[v] > 0 {
			return false
		}
	}
	return true
}

// Options configure the solver.
type Options struct {
	// AllowEmpty applies the footnote-4 closure: for every subset Y of
	// the equation's path variables, solve with Y replaced by ε; the
	// union of the resulting solution sets is complete for solutions
	// that may map path variables to the empty path.
	AllowEmpty bool
	// MaxStates bounds the number of distinct states explored per
	// (sub-)equation; 0 means the default.
	MaxStates int
	// CollectGraph records the search DAG (Figure 2) in Result.Graph.
	CollectGraph bool
}

// DefaultMaxStates bounds exploration of non-one-sided-nonlinear
// equations, for which pig-pug may not terminate.
const DefaultMaxStates = 20000

// Result is the outcome of solving an equation.
type Result struct {
	// Solutions is a set of symbolic solutions; when Complete is true it
	// is a complete set in the sense of §4.3.1.
	Solutions []ast.Subst
	// Complete is false when the search was truncated (state budget or
	// a cycle in the rewrite system).
	Complete bool
	// States is the number of distinct states explored.
	States int
	// Graph is the search DAG when Options.CollectGraph is set.
	Graph *Graph
}

// Graph is the search DAG over equations, as drawn in Figure 2.
type Graph struct {
	Nodes []GraphNode
	Edges []GraphEdge
}

// GraphNode is one equation state.
type GraphNode struct {
	ID      int
	Eq      Equation
	Success bool // the ε=ε leaf
	Fail    bool // a non-successful leaf
}

// GraphEdge is one rewrite step, labelled with its substitution
// (empty for cancellation steps).
type GraphEdge struct {
	From, To int
	Rho      ast.Subst
}

// Solve computes a set of symbolic solutions for the equation. On
// one-sided nonlinear input with sufficient state budget the set is
// complete (Result.Complete reports this).
func Solve(eq Equation, opts Options) Result {
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if !opts.AllowEmpty {
		return solveNonempty(eq, opts)
	}
	// Footnote-4 closure over subsets of path variables.
	var pathVars []ast.Var
	for _, v := range eq.Vars() {
		if !v.Atomic {
			pathVars = append(pathVars, v)
		}
	}
	agg := Result{Complete: true}
	seen := map[string]bool{}
	for mask := 0; mask < 1<<len(pathVars); mask++ {
		zero := ast.Subst{}
		for i, v := range pathVars {
			if mask&(1<<i) != 0 {
				zero[v] = ast.Eps()
			}
		}
		sub := Equation{L: zero.Apply(eq.L), R: zero.Apply(eq.R)}
		r := solveNonempty(sub, opts)
		agg.States += r.States
		if !r.Complete {
			agg.Complete = false
		}
		if mask == 0 {
			agg.Graph = r.Graph
		}
		for _, s := range r.Solutions {
			full := ast.Subst{}
			for v, e := range zero {
				full[v] = e
			}
			for v, e := range s {
				full[v] = e
			}
			k := full.String()
			if !seen[k] {
				seen[k] = true
				agg.Solutions = append(agg.Solutions, full)
			}
		}
	}
	sortSolutions(agg.Solutions)
	return agg
}

type solver struct {
	opts Options
	// states memoizes explored equations, bucketed by structural hash
	// with Equal confirming collisions — no canonical Key() strings are
	// built on the hot path.
	states   map[uint64][]*stateInfo
	nstates  int
	complete bool
	graph    *Graph
	nodeIDs  map[string]int
}

type stateInfo struct {
	eq     Equation
	status int // 0 = in progress, 1 = done
	sols   []ast.Subst
}

// lookup returns the memo entry for eq in the bucket h, or nil.
func (s *solver) lookup(h uint64, eq Equation) *stateInfo {
	for _, info := range s.states[h] {
		if info.eq.Equal(eq) {
			return info
		}
	}
	return nil
}

func solveNonempty(eq Equation, opts Options) Result {
	s := &solver{
		opts:     opts,
		states:   map[uint64][]*stateInfo{},
		complete: true,
	}
	if opts.CollectGraph {
		s.graph = &Graph{}
		s.nodeIDs = map[string]int{}
	}
	sols := s.explore(eq)
	out := make([]ast.Subst, len(sols))
	copy(out, sols)
	sortSolutions(out)
	return Result{
		Solutions: out,
		Complete:  s.complete,
		States:    s.nstates,
		Graph:     s.graph,
	}
}

func sortSolutions(sols []ast.Subst) {
	sort.Slice(sols, func(i, j int) bool { return sols[i].String() < sols[j].String() })
}

func (s *solver) node(eq Equation, success, fail bool) int {
	if s.graph == nil {
		return -1
	}
	k := eq.key()
	if id, ok := s.nodeIDs[k]; ok {
		s.graph.Nodes[id].Success = s.graph.Nodes[id].Success || success
		s.graph.Nodes[id].Fail = s.graph.Nodes[id].Fail || fail
		return id
	}
	id := len(s.graph.Nodes)
	s.nodeIDs[k] = id
	s.graph.Nodes = append(s.graph.Nodes, GraphNode{ID: id, Eq: eq, Success: success, Fail: fail})
	return id
}

// explore returns the (possibly memoized) solutions reachable from eq.
func (s *solver) explore(eq Equation) []ast.Subst {
	h := eq.hash()
	if info := s.lookup(h, eq); info != nil {
		if info.status == 0 {
			// Cycle: the rewrite system does not terminate from here.
			s.complete = false
			return nil
		}
		return info.sols
	}
	if s.nstates >= s.opts.MaxStates {
		s.complete = false
		return nil
	}
	info := &stateInfo{eq: eq}
	s.states[h] = append(s.states[h], info)
	s.nstates++

	edges, leaf := s.children(eq)
	from := s.node(eq, leaf == leafSuccess, leaf == leafFail)
	var sols []ast.Subst
	switch leaf {
	case leafSuccess:
		sols = []ast.Subst{{}}
	case leafFail:
		// no solutions
	default:
		seen := map[string]bool{}
		for _, e := range edges {
			to := s.node(e.next, false, false)
			if s.graph != nil {
				s.graph.Edges = append(s.graph.Edges, GraphEdge{From: from, To: to, Rho: e.rho})
			}
			for _, child := range s.explore(e.next) {
				sol := e.rho.Compose(child)
				key := sol.String()
				if !seen[key] {
					seen[key] = true
					sols = append(sols, sol)
				}
			}
		}
	}
	info.status = 1
	info.sols = sols
	return sols
}

const (
	leafNone = iota
	leafSuccess
	leafFail
)

type edge struct {
	rho  ast.Subst
	next Equation
}

// children implements the rewrite relation ⇒: cancellation, main rules
// (a)–(g), and the extensions (h)–(m) of §4.3.2.
func (s *solver) children(eq Equation) ([]edge, int) {
	L, R := eq.L, eq.R
	if len(L) == 0 && len(R) == 0 {
		return nil, leafSuccess
	}
	if len(L) == 0 || len(R) == 0 {
		// (ε = w) or (w = ε) with w nonempty: not successful under the
		// nonempty-assignment semantics.
		return nil, leafFail
	}
	l0, r0 := L[0], R[0]
	w1, w2 := L[1:], R[1:]

	// Cancellation rule for x ∈ dom ∪ X.
	if lc, ok := l0.(ast.Const); ok {
		if rc, ok := r0.(ast.Const); ok {
			if lc.A == rc.A {
				return []edge{{rho: ast.Subst{}, next: Equation{L: w1, R: w2}}}, leafNone
			}
			return nil, leafFail // (a·w1 = b·w2), a ≠ b
		}
	}
	if lv, ok := l0.(ast.VarT); ok {
		if rv, ok := r0.(ast.VarT); ok && lv.V == rv.V {
			return []edge{{rho: ast.Subst{}, next: Equation{L: w1, R: w2}}}, leafNone
		}
	}

	mk := func(rho ast.Subst, keepLeft, keepRight ast.Expr) edge {
		// next = (keepLeft · rho(w1), keepRight · rho(w2)) where keepX is
		// the retained head term (or empty).
		return edge{rho: rho, next: Equation{
			L: ast.Cat(keepLeft, rho.Apply(w1)),
			R: ast.Cat(keepRight, rho.Apply(w2)),
		}}
	}

	switch lt := l0.(type) {
	case ast.VarT:
		x := lt.V
		switch rt := r0.(type) {
		case ast.VarT:
			y := rt.V
			switch {
			case !x.Atomic && !y.Atomic:
				// Main rules (a), (b), (c) for distinct path variables.
				return []edge{
					mk(ast.Subst{x: ast.Cat(ast.Expr{rt}, ast.Expr{lt})}, ast.Expr{lt}, nil),
					mk(ast.Subst{x: ast.Expr{rt}}, nil, nil),
					mk(ast.Subst{y: ast.Cat(ast.Expr{lt}, ast.Expr{rt})}, nil, ast.Expr{rt}),
				}, leafNone
			case x.Atomic && y.Atomic:
				// Rule (h): distinct atomic variables must coincide.
				return []edge{mk(ast.Subst{x: ast.Expr{rt}}, nil, nil)}, leafNone
			case x.Atomic && !y.Atomic:
				// Rule (i): @x versus $y behaves like a constant vs $y.
				return []edge{
					mk(ast.Subst{y: ast.Cat(ast.Expr{lt}, ast.Expr{rt})}, nil, ast.Expr{rt}),
					mk(ast.Subst{y: ast.Expr{lt}}, nil, nil),
				}, leafNone
			default: // $x versus @y: rule (j).
				return []edge{
					mk(ast.Subst{x: ast.Cat(ast.Expr{rt}, ast.Expr{lt})}, ast.Expr{lt}, nil),
					mk(ast.Subst{x: ast.Expr{rt}}, nil, nil),
				}, leafNone
			}
		case ast.Const:
			if x.Atomic {
				// @x must equal the constant.
				return []edge{mk(ast.Subst{x: ast.Expr{rt}}, nil, nil)}, leafNone
			}
			// Rules (d), (e): $x versus constant a.
			return []edge{
				mk(ast.Subst{x: ast.Cat(ast.Expr{rt}, ast.Expr{lt})}, ast.Expr{lt}, nil),
				mk(ast.Subst{x: ast.Expr{rt}}, nil, nil),
			}, leafNone
		case ast.Pack:
			if x.Atomic {
				// (@x·w1 = <w2>·w3): non-successful leaf (§4.3.2).
				return nil, leafFail
			}
			// Rule (m): $x versus <v>.
			return []edge{
				mk(ast.Subst{x: ast.Cat(ast.Expr{rt}, ast.Expr{lt})}, ast.Expr{lt}, nil),
				mk(ast.Subst{x: ast.Expr{rt}}, nil, nil),
			}, leafNone
		}
	case ast.Const:
		switch rt := r0.(type) {
		case ast.VarT:
			y := rt.V
			if y.Atomic {
				return []edge{mk(ast.Subst{y: ast.Expr{lt}}, nil, nil)}, leafNone
			}
			// Rules (f), (g): constant a versus $y.
			return []edge{
				mk(ast.Subst{y: ast.Cat(ast.Expr{lt}, ast.Expr{rt})}, nil, ast.Expr{rt}),
				mk(ast.Subst{y: ast.Expr{lt}}, nil, nil),
			}, leafNone
		case ast.Pack:
			return nil, leafFail
		}
	case ast.Pack:
		switch rt := r0.(type) {
		case ast.VarT:
			y := rt.V
			if y.Atomic {
				return nil, leafFail
			}
			// Rule (l): <u> versus $y.
			return []edge{
				mk(ast.Subst{y: ast.Cat(ast.Expr{lt}, ast.Expr{rt})}, nil, ast.Expr{rt}),
				mk(ast.Subst{y: ast.Expr{lt}}, nil, nil),
			}, leafNone
		case ast.Const:
			return nil, leafFail
		case ast.Pack:
			// Rule (k): solve the inner equation first, then continue
			// with each inner solution applied to the remainders.
			inner := solveNonempty(Equation{L: lt.E, R: rt.E}, Options{MaxStates: s.opts.MaxStates})
			if !inner.Complete {
				s.complete = false
			}
			var out []edge
			for _, rho := range inner.Solutions {
				out = append(out, mk(rho, nil, nil))
			}
			if len(out) == 0 {
				return nil, leafFail
			}
			return out, leafNone
		}
	}
	return nil, leafFail
}

// Verify checks that a substitution is a symbolic solution: applying it
// to both sides yields syntactically equal expressions.
func Verify(eq Equation, sol ast.Subst) bool {
	return sol.Apply(eq.L).Equal(sol.Apply(eq.R))
}

// DOT renders the search DAG in Graphviz format, for Figure 2-style
// visualization.
func (g *Graph) DOT() string {
	out := "digraph pigpug {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n"
	for _, n := range g.Nodes {
		attrs := ""
		if n.Success {
			attrs = ", style=bold, color=green"
		} else if n.Fail {
			attrs = ", color=red"
		}
		out += fmt.Sprintf("  n%d [label=%q%s];\n", n.ID, n.Eq.String(), attrs)
	}
	for _, e := range g.Edges {
		label := ""
		if len(e.Rho) > 0 {
			label = e.Rho.String()
		}
		out += fmt.Sprintf("  n%d -> n%d [label=%q];\n", e.From, e.To, label)
	}
	return out + "}\n"
}
