// Process mining (paper §1): an event log is a set of sequences; the
// query keeps the logs in which every occurrence of 'complete order'
// is eventually followed by 'receive payment'.
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	q, err := seqlog.GetPaperQuery("process-mining")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program (fragment %s):\n%s\n", q.Fragment(), q.Program)

	edb := seqlog.MustParseInstance(`
L('create order'.'complete order'.ship.'receive payment'.close).
L('create order'.'complete order'.ship).
L('complete order'.'receive payment'.'complete order'.'receive payment').
L('complete order'.'receive payment'.'complete order').
L(ship.close).
`)

	rel, err := seqlog.Query(q.Program, edb, q.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compliant logs (every 'complete order' later paid):")
	for _, t := range rel.Sorted() {
		fmt.Printf("  %s\n", t[0])
	}
}
