// Incremental maintenance: the serving-side API. Instead of
// re-evaluating a program every time the data changes, compile it once
// (seqlog.Compile), keep a live engine at fixpoint (seqlog.NewEngine),
// and feed it facts as they arrive (Engine.Assert) or are withdrawn
// (Engine.Retract) — each batch seeds the semi-naive delta, so only
// the consequences of the change are derived; retraction runs
// delete-and-rederive, so derived facts with an alternative derivation
// survive the loss of one support. Readers meanwhile query
// copy-on-write snapshots that no update can disturb. The workload is
// §5.1.1 graph reachability — in the binary pair form T(from, to),
// which keeps every maintenance join on an exact index probe (see
// program.sdl; `seqlog -explain` prints each rule's delta-hoisted
// plan variants and their access paths, and `seqlog -vet` confirms
// the program carries no full-scan-delta warning).
package main

import (
	_ "embed"
	"fmt"
	"log"

	"seqlog"
)

//go:embed program.sdl
var program string

func main() {
	prep, err := seqlog.Compile(seqlog.MustParse(program))
	if err != nil {
		log.Fatal(err)
	}

	// The engine materializes the fixpoint over the initial EDB once.
	engine, err := seqlog.NewEngine(prep, seqlog.MustParseInstance(`
E(a.b). E(b.c). E(c.d).`), seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d reachability facts\n", mustLen(engine, "T"))

	// A snapshot is a consistent frozen state: cheap to take (no tuple
	// is copied) and immune to everything asserted after it.
	snapshot, err := engine.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	// Assert new edges one batch at a time. The stats show the
	// incremental regime: strata whose inputs didn't change are
	// skipped, the rest derive only the new consequences.
	for _, batch := range []string{
		`E(d.e).`,         // extends the chain: 4 new facts, one per source
		`E(x.y).`,         // disjoint edge: exactly 1 new fact
		`E(d.e). E(x.y).`, // everything already known: no work at all
	} {
		stats, err := engine.Assert(seqlog.MustParseInstance(batch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("assert %-20s -> asserted=%d derived=%d (skipped=%d incremental=%d)\n",
			batch, stats.Asserted, stats.Derived,
			stats.StrataSkipped, stats.StrataIncremental)
	}

	// Retract withdraws facts with delete-and-rederive maintenance: the
	// downward closure of the lost edge is overdeleted — except where
	// the well-founded pruner sees an alternative derivation from older
	// facts and keeps the fact outright — and anything overdeleted that
	// still has support gets rederived. Add a shortcut a->c first, so
	// cutting b->c shows it: a's reachability facts survive via the
	// shortcut (kept, so rederived stays 0), while T(b.c), T(b.d) and
	// T(b.e) genuinely disappear.
	if _, err := engine.Assert(seqlog.MustParseInstance(`E(a.c).`)); err != nil {
		log.Fatal(err)
	}
	rstats, err := engine.Retract(seqlog.MustParseInstance(`E(b.c).`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retract %-19s -> retracted=%d derived=%+d (overdeleted=%d rederived=%d)\n",
		`E(b.c).`, rstats.Retracted, rstats.Derived, rstats.Overdeleted, rstats.Rederived)

	fmt.Printf("now:     %d reachability facts\n", mustLen(engine, "T"))
	fmt.Printf("snapshot taken before the asserts still sees %d\n",
		snapshot.Relation("T").Len())

	// Boolean queries read the same materialization.
	yes, err := engine.Holds("T")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holds(T):", yes)
}

func mustLen(e *seqlog.Engine, rel string) int {
	r, err := e.Query(rel)
	if err != nil {
		log.Fatal(err)
	}
	return r.Len()
}
