// Incremental maintenance: the serving-side API. Instead of
// re-evaluating a program every time the data changes, compile it once
// (seqlog.Compile), keep a live engine at fixpoint (seqlog.NewEngine),
// and feed it facts as they arrive (Engine.Assert) — each batch seeds
// the semi-naive delta, so only the consequences of the new facts are
// derived. Readers meanwhile query copy-on-write snapshots that no
// assert can disturb. The workload is §5.1.1 graph reachability, the
// same transitive closure the benchmarks use.
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	prep, err := seqlog.Compile(seqlog.MustParse(`
T(@x.@y) :- E(@x.@y).
T(@x.@z) :- T(@x.@y), E(@y.@z).`))
	if err != nil {
		log.Fatal(err)
	}

	// The engine materializes the fixpoint over the initial EDB once.
	engine, err := seqlog.NewEngine(prep, seqlog.MustParseInstance(`
E(a.b). E(b.c). E(c.d).`), seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d reachability facts\n", mustLen(engine, "T"))

	// A snapshot is a consistent frozen state: cheap to take (no tuple
	// is copied) and immune to everything asserted after it.
	snapshot, err := engine.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	// Assert new edges one batch at a time. The stats show the
	// incremental regime: strata whose inputs didn't change are
	// skipped, the rest derive only the new consequences.
	for _, batch := range []string{
		`E(d.e).`,         // extends the chain: 4 new facts, one per source
		`E(x.y).`,         // disjoint edge: exactly 1 new fact
		`E(d.e). E(x.y).`, // everything already known: no work at all
	} {
		stats, err := engine.Assert(seqlog.MustParseInstance(batch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("assert %-20s -> asserted=%d derived=%d (skipped=%d incremental=%d recomputed=%d)\n",
			batch, stats.Asserted, stats.Derived,
			stats.StrataSkipped, stats.StrataIncremental, stats.StrataRecomputed)
	}

	fmt.Printf("now:     %d reachability facts\n", mustLen(engine, "T"))
	fmt.Printf("snapshot taken before the asserts still sees %d\n",
		snapshot.Relation("T").Len())

	// Boolean queries read the same materialization.
	yes, err := engine.Holds("T")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("holds(T):", yes)
}

func mustLen(e *seqlog.Engine, rel string) int {
	r, err := e.Query(rel)
	if err != nil {
		log.Fatal(err)
	}
	return r.Len()
}
