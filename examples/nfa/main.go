// NFA acceptance (paper Example 2.1): an NFA is stored as relations
// N (initial states), D (transitions), F (final states); the program
// computes the strings of R the NFA accepts. The example NFA accepts
// the strings over {a, b} with an even number of b's.
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	q, err := seqlog.GetPaperQuery("nfa-accept")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program (%s, fragment %s):\n%s\n", q.Source, q.Fragment(), q.Program)

	edb := seqlog.MustParseInstance(`
N(q0). F(q0).
D(q0, a, q0). D(q0, b, q1).
D(q1, a, q1). D(q1, b, q0).

R(a.a.a).
R(a.b).
R(b.b).
R(b.a.b.a).
R(b).
R(eps).
`)

	rel, err := seqlog.Query(q.Program, edb, q.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accepted (even number of b's):")
	for _, t := range rel.Sorted() {
		fmt.Printf("  %s\n", t[0])
	}
}
