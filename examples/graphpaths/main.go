// Graph paths (paper §1): paths stored in the database, separately
// from any graph — the G-CORE motivation. The query returns the nodes
// that belong to ALL stored paths, and graph reachability over
// length-2 edge paths demonstrates the §5.1.1 encoding.
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	// Nodes on all paths.
	q, err := seqlog.GetPaperQuery("nodes-on-all-paths")
	if err != nil {
		log.Fatal(err)
	}
	paths := seqlog.MustParseInstance(`
P(amsterdam.brussels.paris).
P(berlin.brussels.paris).
P(brussels.paris.lyon).
`)
	rel, err := seqlog.Query(q.Program, paths, q.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes on every stored path:")
	for _, t := range rel.Sorted() {
		fmt.Printf("  %s\n", t[0])
	}

	// Reachability over edges encoded as length-2 paths (§5.1.1).
	reach, err := seqlog.GetPaperQuery("reachability")
	if err != nil {
		log.Fatal(err)
	}
	graph := seqlog.MustParseInstance(`
R(a.c). R(c.d). R(d.b). R(x.y).
`)
	ok, err := seqlog.Holds(reach.Program, graph, reach.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nb reachable from a: %v\n", ok)

	// The same query cannot be expressed without recursion: the
	// Theorem 6.1 planner refuses the rewrite.
	_, err = seqlog.RewriteTo(reach.Program, reach.Output, seqlog.Frag("EIN"))
	fmt.Printf("rewrite into {E,I,N} refused: %v\n", err)
}
