// JSON as sequences (paper §1): a JSON object is modeled as the set of
// its root-to-value key paths. Regrouping Sales (item -> year -> value)
// by year is just swapping the first two elements of every length-3
// path, and deep-equality of two objects is equality of path sets.
package main

import (
	"fmt"
	"log"

	"seqlog"
)

func main() {
	// Restructuring: group sales by year instead of by item.
	sales := seqlog.MustParseInstance(`
Sales(laptop.'2023'.'1200').
Sales(laptop.'2024'.'1500').
Sales(phone.'2023'.'800').
Sales(phone.'2024'.'950').
`)
	regroup, err := seqlog.GetPaperQuery("sales-by-year")
	if err != nil {
		log.Fatal(err)
	}
	rel, err := seqlog.Query(regroup.Program, sales, regroup.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sales regrouped by year:")
	for _, t := range rel.Sorted() {
		fmt.Printf("  %s\n", t[0])
	}

	// Deep-equality: two JSON objects given as path sets.
	deepEq, err := seqlog.GetPaperQuery("deep-unequal")
	if err != nil {
		log.Fatal(err)
	}
	objects := seqlog.MustParseInstance(`
J1(user.name.alice).
J1(user.age.'33').
J2(user.name.alice).
J2(user.age.'33').
`)
	differs, err := seqlog.Holds(deepEq.Program, objects, deepEq.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjects differ: %v\n", differs)

	objects.AddPath("J2", seqlog.PathOf("user", "city", "ghent"))
	differs, err = seqlog.Holds(deepEq.Program, objects, deepEq.Output, seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding user.city.ghent to J2, objects differ: %v\n", differs)
}
