// Quickstart: parse a Sequence Datalog program, evaluate it, inspect
// its fragment, and rewrite it into another fragment — the only-a's
// query of Example 3.1 in both of the paper's formulations.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"seqlog"
)

//go:embed program.sdl
var program string

func main() {
	// The {E} formulation: one equation does the pattern matching
	// (program.sdl, vetted clean in CI by `seqlog -vet`).
	prog := seqlog.MustParse(program)

	edb := seqlog.MustParseInstance(`
R(a.a.a).
R(a.b.a).
R(a).
R(eps).
`)

	rel, err := seqlog.Query(prog, edb, "S", seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("paths consisting only of a's:")
	for _, t := range rel.Sorted() {
		fmt.Printf("  %s\n", t[0])
	}

	// Which fragment is this program in? (Paper §3.)
	f := prog.Features()
	fmt.Printf("\nfragment: %s\n", f)

	// Rewrite it into the recursion fragment {A, I, R} (Example 3.1's
	// second formulation) via the Figure 3 planner.
	res, err := seqlog.RewriteTo(prog, "S", seqlog.Frag("AIR"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewritten into %s by: %v\n", res.Achieved, res.Steps)
	fmt.Println("\nrewritten program:")
	fmt.Print(res.Program.String())

	rel2, err := seqlog.Query(res.Program, edb, "S", seqlog.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame answers after rewriting: %v\n", rel.Equal(rel2))
}
