GO ?= go

.PHONY: build test race bench vet lint all

all: vet lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repository's own static checks: the engine-invariant
# analyzer (cmd/seqlint: tombstone-view and write-barrier rules) and a
# gofmt cleanliness gate. CI runs this target.
lint:
	$(GO) run ./cmd/seqlint .
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then echo "gofmt needed:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the perf-tracked benchmarks (graphpaths transitive
# closure, concat workload, unification, value microbenchmarks) with
# -benchmem and writes BENCH_<date>.json (see scripts/bench.sh and
# docs/performance.md). CI runs this target and archives the output.
bench:
	COUNT=$(or $(COUNT),5) scripts/bench.sh $(or $(OUT),)
