GO ?= go

.PHONY: build test race bench vet all

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the perf-tracked benchmarks (graphpaths transitive
# closure, concat workload, unification, value microbenchmarks) with
# -benchmem and writes BENCH_<date>.json (see scripts/bench.sh and
# docs/performance.md). CI runs this target and archives the output.
bench:
	COUNT=$(or $(COUNT),5) scripts/bench.sh $(or $(OUT),)
