#!/usr/bin/env sh
# crashtest.sh — hammer the process-level crash-recovery harness: each
# iteration boots a real seqlogd under -sync always, SIGKILLs it at a
# random point in an assert storm, restarts on the same WAL directory,
# and checks that every acknowledged write survived and the recovered
# closure matches an independent recomputation.
#
# Usage:  scripts/crashtest.sh           # CRASH_ITERS iterations (default 5)
#         CRASH_ITERS=50 scripts/crashtest.sh
#         GOFLAGS=-race scripts/crashtest.sh
set -eu

iters="${CRASH_ITERS:-5}"
i=1
while [ "$i" -le "$iters" ]; do
    echo "crashtest: iteration $i/$iters"
    go test -count=1 -run 'TestCrashRecoveryKill9|TestShutdownCheckpointRecovery' ./cmd/seqlogd/
    i=$((i + 1))
done
echo "crashtest: $iters iterations clean"
