#!/usr/bin/env sh
# bench.sh — run the perf-tracked benchmarks (graphpaths transitive
# closure, concat workload, unification, value microbenchmarks, and
# the incremental assert/retract serving workloads) with -benchmem and
# archive the parsed results as JSON.
#
# Usage:  scripts/bench.sh [out.json]
#         COUNT=5 scripts/bench.sh          # repetitions (default 5)
#
# The JSON output seeds the BENCH_*.json perf trajectory: CI runs this
# script on every push and uploads the file as an artifact; committed
# BENCH_<date>.json snapshots record the trajectory across PRs.
set -eu

count="${COUNT:-5}"
out="${1:-BENCH_$(date +%Y-%m-%d).json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Write then cat (no tee pipeline): under plain sh a pipe would mask a
# failing go test behind tee's exit status and keep CI green.
go test -run '^$' -bench 'TransitiveClosureGraph|ConcatJoin|SemiNaiveChain' \
    -benchmem -count="$count" ./internal/eval/ > "$raw"
go test -run '^$' -bench '.' -benchmem -count="$count" \
    ./internal/unify/ ./internal/value/ >> "$raw"
# Serving workloads: incremental assert and DRed retract trajectories
# vs from-scratch. The from-scratch baselines are slow per op, so cap
# the per-run time.
go test -run '^$' -bench 'IncrementalAssert|IncrementalRetract' -benchmem \
    -benchtime 1s -count="$count" . >> "$raw"
# Durability: crash-recovery cost, full-log replay vs checkpoint+tail.
go test -run '^$' -bench 'Recovery' -benchmem -benchtime 1s \
    -count="$count" ./internal/wal/ >> "$raw"
cat "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"results\": [\n", date; sep = "" }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s    {\"benchmark\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $2, $3, $5, $7
    sep = ",\n"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

# The perf trajectory is the point of this archive: a rename or a
# filter typo that silently drops a series must fail CI, not produce a
# hollow JSON. Require the core serving and recovery series explicitly,
# plus every series present in the newest committed snapshot — anything
# benchmarked before has to keep being benchmarked.
required='BenchmarkIncrementalAssert/incremental/k=1
BenchmarkIncrementalAssert/incremental-novariants/k=1
BenchmarkIncrementalAssert/fromscratch/k=1
BenchmarkIncrementalRetract/retract/k=1
BenchmarkIncrementalRetract/retract-novariants/k=1
BenchmarkIncrementalRetractMutual/retract-mutual/k=1
BenchmarkIncrementalRetractMutual/retract-mutual-noprune/k=1
BenchmarkRecovery/replay/n=512
BenchmarkRecovery/checkpoint-tail/n=512'
prev=""
for f in BENCH_*.json; do
    [ -e "$f" ] && [ "$f" != "$out" ] && prev="$f"
done
if [ -n "$prev" ]; then
    required="$required
$(sed -n 's/.*"benchmark": "\([^"]*\)".*/\1/p' "$prev")"
fi
for series in $(printf '%s\n' "$required" | sort -u); do
    if ! grep -qF "\"$series\"" "$out"; then
        echo "bench.sh: series $series missing from $out (previously in ${prev:-the required set})" >&2
        exit 1
    fi
done

# Regression guard on the snapshot-sharing worst case: the interleaved
# assert+query cycle is the series the epoch-shared tuple log exists
# for, and a copying regression shows up in bytes_per_op long before it
# shows up in wall time on a noisy runner. Fail if its median B/op
# grew more than 20% over the newest committed snapshot. (Time is
# tracked by the archive; bytes are deterministic enough to gate on.)
guard_series='BenchmarkIncrementalAssert/incremental-interleaved/k=1'
median_bytes() {
    sed -n 's/.*"benchmark": "'"$(printf '%s' "$2" | sed 's/\//\\\//g')"'".*"bytes_per_op": \([0-9]*\).*/\1/p' "$1" |
        sort -n | awk '{ v[NR] = $1 } END { if (NR) print v[int((NR + 1) / 2)] }'
}
if [ -n "$prev" ]; then
    prev_b="$(median_bytes "$prev" "$guard_series")"
    new_b="$(median_bytes "$out" "$guard_series")"
    if [ -n "$prev_b" ] && [ -n "$new_b" ] && [ "$new_b" -gt $((prev_b + prev_b / 5)) ]; then
        echo "bench.sh: $guard_series bytes_per_op regressed: $new_b B/op vs $prev_b B/op in $prev (>20%)" >&2
        exit 1
    fi
fi

echo "wrote $out"
