package seqlog

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExamplesVetClean holds the shipped example programs to a
// stricter bar than the paper corpus: zero warnings, not just zero
// errors. CI enforces the same gate by running `seqlog -vet` over
// every examples/*/program.sdl, so an example can never regress to
// warning-dirty. (Info-severity diagnostics — the fragment report —
// are expected and allowed.)
func TestExamplesVetClean(t *testing.T) {
	programs, err := filepath.Glob(filepath.Join("examples", "*", "program.sdl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(programs) == 0 {
		t.Fatal("no examples/*/program.sdl found")
	}
	for _, path := range programs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, d := range Vet(prog, VetOptions{ExplicitStrata: true}) {
			if d.Severity > SeverityInfo {
				t.Errorf("%s: %s", path, d)
			}
		}
	}
}
