// Benchmarks regenerating the paper's figures and worked examples; the
// mapping to the paper is the per-experiment index in DESIGN.md, and
// measured results are recorded in EXPERIMENTS.md.
package seqlog

import (
	"fmt"
	"testing"

	"seqlog/internal/algebra"
	"seqlog/internal/core"
	"seqlog/internal/eval"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/rewrite"
	"seqlog/internal/unify"
	"seqlog/internal/workload"
)

// E1 — Figure 1: the lattice of fragment equivalence classes.
func BenchmarkFigure1Lattice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := core.BuildLattice()
		if len(l.Classes) != 11 {
			b.Fatal("wrong class count")
		}
	}
}

// E2 — Figure 2: associative unification of $x.<@y.$z>.@w = $u.$v.$u.
func BenchmarkFigure2Unify(b *testing.B) {
	rules, err := parser.ParseRules(`X($x.<@y.$z>.@w, $u.$v.$u).`)
	if err != nil {
		b.Fatal(err)
	}
	head := rules[0].Head
	eq := unify.Equation{L: head.Args[0], R: head.Args[1]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := unify.Solve(eq, unify.Options{})
		if len(res.Solutions) != 4 {
			b.Fatalf("got %d solutions", len(res.Solutions))
		}
	}
}

// E3 — Figure 3: the rewrite planner across fragment targets.
func BenchmarkFigure3Planner(b *testing.B) {
	prog := MustParse(`S($x) :- R($x), a.$x = $x.a.`)
	targets := []Fragment{Frag("AIR"), Frag("I"), Frag("EINR"), Frag("E")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tgt := range targets {
			if _, err := core.RewriteTo(prog, "S", tgt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E4 — Example 3.1: only-a's, equation versus recursion formulation.
func benchQueryOnInstance(b *testing.B, name string, edb *Instance) {
	q, err := queries.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Query(q.Program, edb, q.Output, eval.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlyAsEquation(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "only-as-equation", workload.OnlyAs(1, "R", 16, n))
		})
	}
}

func BenchmarkOnlyAsRecursion(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "only-as-recursion", workload.OnlyAs(1, "R", 16, n))
		})
	}
}

// E5 — Example 4.3: reversal with and without arity.
func BenchmarkReverseArity(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "reverse-arity", workload.Strings(2, "R", 8, n, workload.Alphabet(3)))
		})
	}
}

func BenchmarkReverseNoArity(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "reverse-noarity", workload.Strings(2, "R", 8, n, workload.Alphabet(3)))
		})
	}
}

// E6 — Lemma 4.5 / Example 4.6: equation elimination, transformation
// cost and evaluation overhead.
func BenchmarkEquationEliminationTransform(b *testing.B) {
	q, _ := queries.Get("mirror-nonequal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.EliminateEquations(q.Program); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMirrorOriginal(b *testing.B) {
	benchQueryOnInstance(b, "mirror-nonequal", workload.Strings(3, "R", 10, 6, workload.Alphabet(3)))
}

func BenchmarkMirrorEquationFree(b *testing.B) {
	q, _ := queries.Get("mirror-nonequal")
	prog, err := rewrite.EliminateEquations(q.Program)
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Strings(3, "R", 10, 6, workload.Alphabet(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Query(prog, edb, "S", eval.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — Example 2.1: NFA acceptance scaling in string length.
func BenchmarkNFAAcceptance(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "nfa-accept", workload.NFA(4, 16, n))
		})
	}
}

// E8 — Example 2.2 / 4.14: the packed program, its 28-rule
// packing-free rewriting, and the transformation itself.
func BenchmarkPackingEliminationTransform(b *testing.B) {
	q, _ := queries.Get("three-occurrences")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := rewrite.EliminatePackingNonrecursive(q.Program, "A")
		if err != nil {
			b.Fatal(err)
		}
		if len(p.Rules()) != 28 {
			b.Fatalf("expected 28 rules (Example 4.14), got %d", len(p.Rules()))
		}
	}
}

func BenchmarkThreeOccurrencesPacked(b *testing.B) {
	benchQueryOnInstance(b, "three-occurrences", workload.SubstringHaystack(5, 12, 3, 2))
}

func BenchmarkThreeOccurrencesDepacked(b *testing.B) {
	q, _ := queries.Get("three-occurrences")
	prog, err := rewrite.EliminatePackingNonrecursive(q.Program, "A")
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.SubstringHaystack(5, 12, 3, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Eval(prog, edb, eval.Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — Theorem 5.3: the squaring query; output grows as n².
func BenchmarkSquaring(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchQueryOnInstance(b, "squaring", workload.Repeated("R", "a", n))
		})
	}
}

// E10 — Theorem 7.1: Datalog evaluation versus the compiled algebra
// plan on the same query.
func BenchmarkAlgebraVsDatalog(b *testing.B) {
	prog := MustParse(`
T($x, $y) :- R($x.m.$y).
S($y) :- T($x, $y), Q($x).`)
	edb := workload.Strings(6, "R", 8, 5, []string{"a", "b", "m"})
	edb.Merge(workload.Strings(7, "Q", 8, 3, []string{"a", "b", "m"}))
	expr, err := algebra.Compile(prog, "S")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Query(prog, edb, "S", eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("algebra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.Eval(expr, edb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E11 — Theorem 4.15: the doubling simulation, transformation cost and
// simulated-versus-direct evaluation.
func BenchmarkDoublingSimulationTransform(b *testing.B) {
	q, _ := queries.Get("even-length-packed")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.SimulatePackingDoubled(q.Program, "S", rewrite.DefaultDoubleMarkers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDoublingSimulated(b *testing.B) {
	q, _ := queries.Get("even-length-packed")
	prog, err := rewrite.SimulatePackingDoubled(q.Program, "S", rewrite.DefaultDoubleMarkers)
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Strings(8, "R", 4, 4, workload.Alphabet(2))
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Query(q.Program, edb, "S", eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("doubled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Query(prog, edb, "S", eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E12 — Lemma 5.4: sequence program versus its classical translation
// on two-bounded graph instances.
func BenchmarkTwoBoundedSimulation(b *testing.B) {
	q, _ := queries.Get("reachability")
	classical, err := rewrite.ToClassical(q.Program)
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Graph(9, 24, 60)
	enc, err := rewrite.EncodeTwoBounded(edb)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(q.Program, edb, eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.Eval(classical, enc, eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Acceptance workload for the indexed join subsystem: the graphpaths
// transitive-closure query on a 1000-edge random graph, evaluated with
// the indexed path and with the pre-index nested-scan path. Measured on
// the reference machine the indexed path is ~10x faster at 200 nodes
// (see README.md, "The evaluation engine").
func BenchmarkGraphPathsIndexedVsScan(b *testing.B) {
	q, _ := queries.Get("reachability")
	for _, nodes := range []int{60, 200} {
		edb := workload.Graph(9, nodes, 1000)
		for _, mode := range []struct {
			name    string
			indexed bool
		}{{"indexed", true}, {"scan", false}} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, mode.name), func(b *testing.B) {
				prev := eval.IndexedJoins
				eval.IndexedJoins = mode.indexed
				defer func() { eval.IndexedJoins = prev }()
				for i := 0; i < b.N; i++ {
					if _, err := eval.Eval(q.Program, edb, eval.Limits{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Acceptance workload for the parallel evaluator: the same 200-node /
// 1000-edge graphpaths workload, swept across worker counts. Workers=1
// is the sequential evaluator (no pool, no buffers); higher counts
// fan each round's delta-window slices across the pool and merge at
// the barrier. Measured results are in README.md ("Parallel
// evaluation").
func BenchmarkGraphPathsParallel(b *testing.B) {
	q, _ := queries.Get("reachability")
	edb := workload.Graph(9, 200, 1000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(q.Program, edb, eval.Limits{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Evaluator scaling: transitive closure over chains (semi-naive
// fixpoint depth).
func BenchmarkTransitiveClosure(b *testing.B) {
	q, _ := queries.Get("reachability")
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			edb := workload.Chain(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Eval(q.Program, edb, eval.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Application workloads from §1.
func BenchmarkProcessMining(b *testing.B) {
	benchQueryOnInstance(b, "process-mining", workload.EventLogs(10, "L", 20, 8))
}

func BenchmarkDeepEqual(b *testing.B) {
	benchQueryOnInstance(b, "deep-unequal", workload.TwoJSONSets(11, 200, 4, true))
}

func BenchmarkSalesRegroup(b *testing.B) {
	benchQueryOnInstance(b, "sales-by-year", workload.Sales(12, 40, 5))
}

// Acceptance workload for the serving subsystem: incremental
// maintenance versus from-scratch re-evaluation on the 1k-edge
// graphpaths transitive closure. The engine materializes the closure
// once; each iteration then asserts k fresh edges (a disjoint chain
// segment, so the consequence set is the same size every iteration)
// and the engine derives only those consequences. The from-scratch
// baseline re-runs the full fixpoint on the same EDB plus one new
// edge, which is what a batch evaluator has to do per update.
// Measured results are in docs/performance.md ("Incremental
// maintenance").
func BenchmarkIncrementalAssert(b *testing.B) {
	q, _ := queries.Get("reachability")
	prep, err := eval.Compile(q.Program)
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Graph(9, 200, 1000)
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("incremental/k=%d", k), func(b *testing.B) {
			engine, err := eval.NewEngine(prep, edb, eval.Limits{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := NewInstance()
				for j := 0; j < k; j++ {
					delta.AddPath("R", PathOf(
						fmt.Sprintf("f%d_%d", i, j), fmt.Sprintf("f%d_%d", i, j+1)))
				}
				if _, err := engine.Assert(delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The same k=1 stream maintained with the base plans (delta-hoisted
	// plan variants off): the recursive join falls back to scanning a
	// side of the rule per delta window instead of index-probing it.
	// The gap between this series and incremental/k=1 is the variants'
	// contribution; CI tracks both (scripts/bench.sh).
	b.Run("incremental-novariants/k=1", func(b *testing.B) {
		defer func(old bool) { eval.DeltaVariants = old }(eval.DeltaVariants)
		eval.DeltaVariants = false
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delta := NewInstance()
			delta.AddPath("R", PathOf(
				fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", i+1)))
			if _, err := engine.Assert(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The serving loop interleaves reads with writes: each Query
	// freezes the relations it returns, so the next assert's first
	// write pays one copy-on-write epoch clone per touched relation.
	// This variant measures that worst case (a freeze before every
	// assert). The asserted edges form disjoint 64-edge chains (not one
	// ever-growing chain) so per-op derivation work is bounded and the
	// series isolates the barrier cost — an unbounded chain would make
	// B/op a function of b.N and blow past MaxFacts at high iteration
	// counts now that the barrier no longer dominates.
	b.Run("incremental-interleaved/k=1", func(b *testing.B) {
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Query("T"); err != nil {
				b.Fatal(err)
			}
			delta := NewInstance()
			delta.AddPath("R", PathOf(
				fmt.Sprintf("g%d_%d", i/64, i%64), fmt.Sprintf("g%d_%d", i/64, i%64+1)))
			if _, err := engine.Assert(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fromscratch/k=1", func(b *testing.B) {
		full := edb.Clone()
		full.AddPath("R", PathOf("f0", "f1"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Eval(full, eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Acceptance workload for DRed retraction: withdrawing edges from the
// same materialized 1k-edge graphpaths closure. Each measured
// iteration retracts one real edge of the graph — overdeleting its
// downward closure and rederiving the paths that survive through
// alternative routes — with the re-assert that restores steady state
// excluded from the timer. The from-scratch baseline is what a batch
// evaluator must do after a deletion: re-run the full fixpoint on the
// EDB minus the edge. The retract-assert-cycle variant times the whole
// withdraw-and-restore loop, the serving pattern for flapping facts.
// Measured results are in docs/performance.md ("Retraction").
func BenchmarkIncrementalRetract(b *testing.B) {
	q, _ := queries.Get("reachability")
	prep, err := eval.Compile(q.Program)
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Graph(9, 200, 1000)
	edges := edb.Relation("R").Tuples()
	edgeBatch := func(i int) *Instance {
		delta := NewInstance()
		delta.Ensure("R", 1).Add(edges[i%len(edges)])
		return delta
	}
	b.Run("retract/k=1", func(b *testing.B) {
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Retract(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if _, err := engine.Assert(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	// DRed with the base plans (delta-hoisted variants off), for the
	// same trajectory comparison as incremental-novariants.
	b.Run("retract-novariants/k=1", func(b *testing.B) {
		defer func(old bool) { eval.DeltaVariants = old }(eval.DeltaVariants)
		eval.DeltaVariants = false
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Retract(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if _, err := engine.Assert(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("retract-assert-cycle/k=1", func(b *testing.B) {
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Retract(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Assert(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fromscratch/k=1", func(b *testing.B) {
		// The post-deletion EDB: everything except edge 0.
		rest := NewInstance()
		r := rest.Ensure("R", 1)
		for _, t := range edges[1:] {
			r.Add(t)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Eval(rest, eval.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Acceptance workload for the whole-stratum well-founded pruner:
// retracting one edge through a two-relation mutual-recursion closure
// (P and Q derive each other through alternating edge sets, so every
// overdeleted P fact cites Q facts and vice versa). The pruner walks
// the stamp order across BOTH relations to keep facts whose support
// chains bottom out in surviving edges; the noprune baseline is
// textbook DRed (overdelete everything reachable, rederive after),
// which the pre-stamp within-one-relation pruner degenerated to on
// mutual recursion. The gap between the two series is the pruner's
// contribution; CI tracks both (scripts/bench.sh). Measured results
// are in docs/performance.md ("Retraction").
func BenchmarkIncrementalRetractMutual(b *testing.B) {
	prog := MustParse(`
P(@x.@y) :- EA(@x.@y).
Q(@x.@z) :- P(@x.@y), EB(@y.@z).
P(@x.@z) :- Q(@x.@y), EA(@y.@z).`)
	prep, err := eval.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	g := workload.Graph(9, 200, 1000)
	edb := NewInstance()
	ea, eb := edb.Ensure("EA", 1), edb.Ensure("EB", 1)
	for i, t := range g.Relation("R").Tuples() {
		if i%2 == 0 {
			ea.Add(t)
		} else {
			eb.Add(t)
		}
	}
	eaEdges := edb.Relation("EA").Tuples()
	edgeBatch := func(i int) *Instance {
		delta := NewInstance()
		delta.Ensure("EA", 1).Add(eaEdges[i%len(eaEdges)])
		return delta
	}
	run := func(b *testing.B, pruning bool) {
		defer func(old bool) { eval.WellFoundedPruning = old }(eval.WellFoundedPruning)
		eval.WellFoundedPruning = pruning
		engine, err := eval.NewEngine(prep, edb, eval.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Retract(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if _, err := engine.Assert(edgeBatch(i)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.Run("retract-mutual/k=1", func(b *testing.B) { run(b, true) })
	b.Run("retract-mutual-noprune/k=1", func(b *testing.B) { run(b, false) })
}
