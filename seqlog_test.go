package seqlog

import (
	"errors"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	prog := MustParse(`S($x) :- R($x), a.$x = $x.a.`)
	edb := MustParseInstance(`R(a.a). R(a.b). R(eps).`)
	rel, err := Query(prog, edb, "S", Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("S = %v", rel.Sorted())
	}
}

func TestFacadeClassification(t *testing.T) {
	if !Subsumes(Frag("E"), Frag("I")) || !Equivalent(Frag("E"), Frag("I")) {
		t.Fatal("E and I must be equivalent")
	}
	if len(Classes()) != 11 {
		t.Fatal("11 classes expected")
	}
	if BuildLattice().Top() < 0 {
		t.Fatal("lattice broken")
	}
}

func TestFacadeRewrite(t *testing.T) {
	prog := MustParse(`S($x) :- R($x), a.$x = $x.a.`)
	res, err := RewriteTo(prog, "S", Frag("AIR"))
	if err != nil || !res.Exact {
		t.Fatalf("RewriteTo: %v %v", res, err)
	}
	edb := MustParseInstance(`R(a.a). R(b).`)
	r1, _ := Query(prog, edb, "S", Limits{})
	r2, err := Query(res.Program, edb, "S", Limits{})
	if err != nil || !r1.Equal(r2) {
		t.Fatalf("rewrite changed semantics: %v vs %v (%v)", r1.Sorted(), r2.Sorted(), err)
	}
}

// TestFacadeParallelEvaluation exercises the Parallelism knob through
// the public surface: parallel and sequential evaluation agree on a
// recursive query, and the deterministic PlanResult stats (Steps,
// Achieved, JoinPlan) of a fragment rewrite are bit-identical across
// repeated runs interleaved with parallel evaluations.
func TestFacadeParallelEvaluation(t *testing.T) {
	prog := MustParse(`
T(@x.@y) :- R(@x.@y).
T(@x.@z) :- T(@x.@y), R(@y.@z).`)
	edb := MustParseInstance(`R(a.b). R(b.c). R(c.d). R(d.a). R(b.d).`)
	seq, err := Eval(prog, edb, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	var first PlanResult
	for i := 0; i < 10; i++ {
		par, err := Eval(prog, edb, Limits{Parallelism: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !par.Equal(seq) {
			t.Fatalf("run %d: parallel evaluation diverged from sequential", i)
		}
		res, err := RewriteTo(prog, "T", Frag("AEINPR"))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = res
			continue
		}
		if res.Achieved != first.Achieved || len(res.Steps) != len(first.Steps) ||
			len(res.JoinPlan) != len(first.JoinPlan) {
			t.Fatalf("run %d: PlanResult stats drifted: %+v vs %+v", i, res, first)
		}
		for j := range res.JoinPlan {
			if res.JoinPlan[j] != first.JoinPlan[j] {
				t.Fatalf("run %d: join plan %d drifted: %q vs %q", i, j, res.JoinPlan[j], first.JoinPlan[j])
			}
		}
	}
}

func TestFacadeAlgebra(t *testing.T) {
	prog := MustParse(`S($x) :- R(a.$x.b).`)
	e, err := CompileAlgebra(prog, "S")
	if err != nil {
		t.Fatal(err)
	}
	edb := MustParseInstance(`R(a.x.y.b). R(b.a).`)
	rel, err := EvalAlgebra(e, edb)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Query(prog, edb, "S", Limits{})
	if !rel.Equal(want) {
		t.Fatalf("algebra %v vs datalog %v", rel.Sorted(), want.Sorted())
	}
	back, err := AlgebraToDatalog(e, "Out")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := Query(back, edb, "Out", Limits{})
	if err != nil || !rel2.Equal(want) {
		t.Fatalf("roundtrip: %v (%v)", rel2.Sorted(), err)
	}
}

func TestFacadeNonTermination(t *testing.T) {
	q, err := GetPaperQuery("non-terminating")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Eval(q.Program, NewInstance(), Limits{MaxFacts: 100})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadePaperQueries(t *testing.T) {
	all := PaperQueries()
	if len(all) < 15 {
		t.Fatalf("only %d paper queries", len(all))
	}
	q, err := GetPaperQuery("squaring")
	if err != nil {
		t.Fatal(err)
	}
	edb := NewInstance()
	edb.AddPath("R", PathOf("a", "a", "a"))
	rel, err := Query(q.Program, edb, q.Output, Limits{})
	if err != nil || rel.Len() != 1 || len(rel.Tuples()[0][0]) != 9 {
		t.Fatalf("squaring: %v %v", rel.Sorted(), err)
	}
}

func TestFacadeUnify(t *testing.T) {
	prog := MustParse(`X($x.a, a.$x) :- R($x).`)
	head := prog.Rules()[0].Head
	res := Unify(Equation{L: head.Args[0], R: head.Args[1]}, UnifyOptions{})
	if res.Complete {
		t.Fatal("$x.a = a.$x must be incomplete")
	}
	if len(res.Solutions) == 0 {
		t.Fatal("expected at least the {$x->a} solution")
	}
}

func TestFacadeEngine(t *testing.T) {
	prep, err := Compile(MustParse(`
T(@x.@y) :- E(@x.@y).
T(@x.@z) :- T(@x.@y), E(@y.@z).`))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(prep, MustParseInstance(`E(a.b).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Assert(MustParseInstance(`E(b.c). E(c.d).`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Asserted != 2 || stats.StrataIncremental != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	rel, err := e.Query("T")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 6 {
		t.Fatalf("|T| = %d, want 6", rel.Len())
	}
	if snap.Relation("T").Len() != 1 {
		t.Fatalf("snapshot moved: |T| = %d, want 1", snap.Relation("T").Len())
	}
	// The engine's materialization must match one-shot Eval.
	want, err := Eval(prep.Program(), MustParseInstance(`E(a.b). E(b.c). E(c.d).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(want) {
		t.Fatal("engine materialization differs from Eval")
	}
	// Retraction withdraws the edge and its downward closure (DRed):
	// dropping b->c removes T(b.c), T(a.c), T(b.d), T(a.d).
	rstats, err := e.Retract(MustParseInstance(`E(b.c).`))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Retracted != 1 || rstats.Overdeleted != 4 || rstats.Rederived != 0 || rstats.Derived != -4 {
		t.Fatalf("retract stats = %+v", rstats)
	}
	want, err = Eval(prep.Program(), MustParseInstance(`E(a.b). E(c.d).`), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	final, err = e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(want) {
		t.Fatal("engine materialization after Retract differs from Eval")
	}
}
