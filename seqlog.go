// Package seqlog is a complete implementation of Sequence Datalog as
// studied in "Expressiveness within Sequence Datalog" (Aamer, Hidders,
// Paredaens, Van den Bussche; PODS 2021, extended version
// arXiv:2206.06754).
//
// It provides:
//
//   - the sequence data model (atoms, packed values, paths) and a
//     parser for programs and instances (§2);
//   - a stratified, semi-naive evaluator with termination guards
//     (§2.3), hash-indexed joins chosen by a binding-aware planner,
//     and optional intra-round parallelism (Limits.Parallelism);
//   - a serving layer: Compile splits evaluation into a reusable
//     compiled form (Prepared), and Engine keeps a materialized
//     instance at fixpoint under incremental Assert and Retract
//     batches (delete-and-rederive maintenance) while concurrent
//     readers query copy-on-write Snapshots (cmd/seqlogd serves this
//     over a line protocol);
//   - associative unification for path-expression equations — pig-pug
//     with the paper's extensions (§4.3, Figure 2);
//   - every redundancy theorem as an executable program transformation:
//     arity (Thm 4.2), equations (Thm 4.7), packing (Thm 4.15),
//     intermediate predicates (Thm 4.16);
//   - the Theorem 6.1 subsumption decision procedure, the Figure 1
//     Hasse diagram of the 11 fragment equivalence classes, and a
//     Figure 3-style rewrite planner;
//   - the sequence relational algebra of §7 with the Theorem 7.1
//     compiler in both directions;
//   - a library of the paper's example queries and workload generators.
//
// The subpackages under internal/ hold the implementation; this
// package re-exports the surface a client needs.
package seqlog

import (
	"seqlog/internal/algebra"
	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/core"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
	"seqlog/internal/rewrite"
	"seqlog/internal/unify"
	"seqlog/internal/value"
)

// Data model (§2.1).
type (
	// Value is an atomic or packed value.
	Value = value.Value
	// Atom is an atomic value from dom.
	Atom = value.Atom
	// Packed is a packed value <p>.
	Packed = value.Packed
	// Path is a finite sequence of values.
	Path = value.Path
	// Tuple is a row of a relation.
	Tuple = instance.Tuple
	// Relation is a finite n-ary relation on paths.
	Relation = instance.Relation
	// Instance assigns relations to relation names.
	Instance = instance.Instance
)

// Syntax (§2.2).
type (
	// Program is a stratified Sequence Datalog program.
	Program = ast.Program
	// Rule is H :- B.
	Rule = ast.Rule
	// Stratum is a set of safe rules.
	Stratum = ast.Stratum
	// FeatureSet is a fragment: a subset of {A, E, I, N, P, R}.
	FeatureSet = ast.FeatureSet
	// Feature is one of the six features of §3.
	Feature = ast.Feature
)

// The six features (§3).
const (
	FeatArity         = ast.FeatArity
	FeatEquations     = ast.FeatEquations
	FeatIntermediates = ast.FeatIntermediates
	FeatNegation      = ast.FeatNegation
	FeatPacking       = ast.FeatPacking
	FeatRecursion     = ast.FeatRecursion
)

// NewInstance creates an empty instance.
func NewInstance() *Instance { return instance.New() }

// PathOf builds a flat path from atom texts.
func PathOf(atoms ...string) Path { return value.PathOf(atoms...) }

// Parse parses a program, auto-stratifying when no explicit "---"
// separators occur.
func Parse(src string) (Program, error) { return parser.ParseProgram(src) }

// MustParse is Parse that panics on error.
func MustParse(src string) Program { return parser.MustParseProgram(src) }

// ParseInstance parses ground facts like "R(a.b.c)." into an instance.
func ParseInstance(src string) (*Instance, error) { return parser.ParseInstance(src) }

// MustParseInstance is ParseInstance that panics on error.
func MustParseInstance(src string) *Instance { return parser.MustParseInstance(src) }

// ParsePath parses a ground path like "a.<b.c>.d".
func ParsePath(src string) (Path, error) { return parser.ParsePath(src) }

// Limits bounds and configures an evaluation (§2.3): MaxFacts,
// MaxIterations and MaxPathLen turn runaway evaluations into
// ErrNonTermination, and Parallelism sets the number of worker
// goroutines per fixpoint round (0 or 1 sequential, N > 1 a pool of N,
// negative all CPUs). The zero value uses defaults: generous bounds,
// sequential evaluation.
type Limits = eval.Limits

// ErrNonTermination reports evaluation exceeding its limits.
var ErrNonTermination = eval.ErrNonTermination

// Serving (the compile/execute split and the persistent engine).
type (
	// Prepared is a compiled program: validated, stratified, with every
	// rule's join plan and the relation arities computed once. Reuse it
	// to evaluate the same program repeatedly without re-planning.
	Prepared = eval.Prepared
	// Engine is a persistent evaluator: a Prepared program plus a live
	// materialized instance, maintained incrementally under Assert and
	// Retract (delete-and-rederive) and served consistently through
	// copy-on-write snapshots.
	Engine = eval.Engine
	// AssertStats reports what one Engine.Assert did, stratum by
	// stratum (skipped / incremental, plus the overdelete/rederive work
	// negation triggers).
	AssertStats = eval.AssertStats
	// RetractStats reports what one Engine.Retract did: facts removed,
	// the overdeleted downward closure, and how much of it was
	// rederived through surviving alternative derivations.
	RetractStats = eval.RetractStats
	// EngineStats is a point-in-time summary of an Engine.
	EngineStats = eval.EngineStats
	// PlanStats counts plan executions during maintenance: how often a
	// delta-hoisted plan variant ran instead of a base plan, and how
	// the non-delta join steps were served (exact index probe, ground
	// prefix probe, ground suffix probe, or full scan). Embedded in
	// AssertStats, RetractStats and EngineStats.
	PlanStats = eval.PlanStats
)

// Compile analyzes and plans a program once, returning a reusable
// *Prepared. A program with error-severity diagnostics is rejected
// with a *DiagError; warnings are surfaced on Prepared.Diagnostics.
// Eval/Query/Holds are one-shot conveniences built on it.
func Compile(p Program) (*Prepared, error) { return eval.Compile(p) }

// Static analysis (the seqlog -vet layer).
type (
	// Diagnostic is one static-analysis finding: a positioned, coded
	// message (see docs/analysis.md for the catalog).
	Diagnostic = analyze.Diagnostic
	// DiagSeverity is the gravity of a Diagnostic.
	DiagSeverity = analyze.Severity
	// DiagError is the error Compile returns when the analyzer rejects
	// a program; it carries the structured diagnostic list.
	DiagError = analyze.DiagError
	// VetOptions configures Vet.
	VetOptions = analyze.Options
)

// Diagnostic severities.
const (
	SeverityInfo    = analyze.Info
	SeverityWarning = analyze.Warning
	SeverityError   = analyze.Error
)

// Vet runs every registered static-analysis pass over the program and
// returns the diagnostics sorted by position: range-restriction and
// stratification errors, sequence-growth (nontermination) and dead-code
// warnings, incremental-maintenance performance lints, and the
// program's fragment. Compile runs the same analysis; Vet is for tools
// that want the full report without compiling.
func Vet(p Program, opts VetOptions) []Diagnostic {
	if opts.ClassLabel == nil {
		opts.ClassLabel = func(f FeatureSet) string { return core.ClassOf(f).Label() }
	}
	return analyze.Check(p, opts)
}

// NewEngine runs the initial fixpoint of a compiled program over edb
// (shared copy-on-write; a nil edb means empty) and returns the live
// engine. Subsequent Assert and Retract calls maintain the
// materialization incrementally (retraction by delete-and-rederive);
// Snapshot/Query serve consistent reads concurrently.
func NewEngine(p *Prepared, edb *Instance, limits Limits) (*Engine, error) {
	return eval.NewEngine(p, edb, limits)
}

// Eval computes P(I) stratum by stratum. It compiles the program per
// call; use Compile + Prepared.Eval (or an Engine) for repeated
// evaluation of the same program.
func Eval(p Program, edb *Instance, limits Limits) (*Instance, error) {
	return eval.Eval(p, edb, limits)
}

// Query evaluates the program and returns the output relation.
func Query(p Program, edb *Instance, output string, limits Limits) (*Relation, error) {
	return eval.Query(p, edb, output, limits)
}

// Holds evaluates a boolean (nullary-output) query.
func Holds(p Program, edb *Instance, output string, limits Limits) (bool, error) {
	return eval.Holds(p, edb, output, limits)
}

// ExplainJoins returns, rule by rule, the join plan the indexed
// evaluator chooses for the program: predicate execution order and,
// per predicate, the access path (exact index, ground-prefix index,
// ground-suffix index, or scan). After each rule's base plan come its
// delta-hoisted maintenance variants, indented.
func ExplainJoins(p Program) ([]string, error) { return eval.Explain(p) }

// Classification (§3, §6).
type (
	// Fragment is a set of features.
	Fragment = core.Fragment
	// Class is an equivalence class of fragments.
	Class = core.Class
	// Lattice is the Figure 1 Hasse diagram.
	Lattice = core.Lattice
	// PlanResult is the outcome of RewriteTo.
	PlanResult = core.PlanResult
)

// Frag builds a fragment from feature letters, e.g. Frag("EIN").
func Frag(letters string) Fragment { return core.Frag(letters) }

// Subsumes decides F1 ≤ F2 by Theorem 6.1.
func Subsumes(f1, f2 Fragment) bool { return core.Subsumes(f1, f2) }

// Equivalent reports mutual subsumption.
func Equivalent(f1, f2 Fragment) bool { return core.Equivalent(f1, f2) }

// Classes partitions the 16 core fragments into the paper's 11
// equivalence classes.
func Classes() []Class { return core.Classes() }

// BuildLattice computes the Figure 1 diagram.
func BuildLattice() *Lattice { return core.BuildLattice() }

// RewriteTo moves a program into the target fragment by composing the
// paper's constructive rewritings (Figure 3).
func RewriteTo(p Program, output string, target Fragment) (PlanResult, error) {
	return core.RewriteTo(p, output, target)
}

// Transformations (§4).

// EliminateArity removes predicates of arity greater than one
// (Theorem 4.2, Lemma 4.1 encoding).
func EliminateArity(p Program) (Program, error) {
	return rewrite.EliminateArity(p, rewrite.DefaultArityMarkers)
}

// EliminateEquations removes positive equations and nonequalities
// (Theorem 4.7; Lemma 4.5 for the negated ones).
func EliminateEquations(p Program) (Program, error) {
	return rewrite.EliminateEquations(p)
}

// EliminatePacking removes packing from a program computing a flat
// unary query (Theorem 4.15).
func EliminatePacking(p Program, output string) (Program, error) {
	return rewrite.EliminatePacking(p, output)
}

// EliminateIntermediates folds intermediate predicates away
// (Theorem 4.16; requires equations present, negation and recursion
// absent).
func EliminateIntermediates(p Program, output string) (Program, error) {
	return rewrite.EliminateIntermediates(p, output)
}

// ToClassical translates a program to classical Datalog over the
// two-bounded encoding (Lemma 5.4).
func ToClassical(p Program) (Program, error) { return rewrite.ToClassical(p) }

// Unification (§4.3).
type (
	// Equation is e1 = e2 over path expressions.
	Equation = unify.Equation
	// UnifyOptions configure the solver.
	UnifyOptions = unify.Options
	// UnifyResult carries the symbolic solutions.
	UnifyResult = unify.Result
)

// Unify solves a path-expression equation by the extended pig-pug
// procedure; complete on one-sided nonlinear equations.
func Unify(eq Equation, opts UnifyOptions) UnifyResult { return unify.Solve(eq, opts) }

// Algebra (§7).
type AlgebraExpr = algebra.Expr

// CompileAlgebra translates a nonrecursive program into a sequence
// relational algebra expression (Theorem 7.1).
func CompileAlgebra(p Program, output string) (AlgebraExpr, error) {
	return algebra.Compile(p, output)
}

// EvalAlgebra evaluates an algebra expression on an instance.
func EvalAlgebra(e AlgebraExpr, inst *Instance) (*Relation, error) {
	return algebra.Eval(e, inst)
}

// AlgebraToDatalog translates an algebra expression back to a
// nonrecursive program (the converse direction of Theorem 7.1).
func AlgebraToDatalog(e AlgebraExpr, output string) (Program, error) {
	return algebra.ToDatalog(e, output)
}

// Paper queries (library of every example program in the paper).
type PaperQuery = queries.Query

// PaperQueries returns the registered example queries, sorted by name.
func PaperQueries() []PaperQuery { return queries.All() }

// GetPaperQuery returns a registered example query by name.
func GetPaperQuery(name string) (PaperQuery, error) { return queries.Get(name) }
