// Command seqfrag works with Sequence Datalog fragments (paper §3, §6).
//
// Usage:
//
//	seqfrag -lattice            # print the Figure 1 Hasse diagram
//	seqfrag -lattice -dot       # ... as Graphviz
//	seqfrag -subsumes EI,NR     # decide {E,I} <= {N,R} (Theorem 6.1)
//	seqfrag -features prog.sdl  # detect a program's fragment
//	seqfrag -vet prog.sdl       # run the static analyzer (shared with seqlog -vet)
//	seqfrag -rewrite AIR -output S -features prog.sdl
//	                            # plan a rewriting into {A,I,R}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/core"
	"seqlog/internal/parser"
)

func main() {
	var (
		lattice  = flag.Bool("lattice", false, "print the Figure 1 diagram")
		dot      = flag.Bool("dot", false, "with -lattice: Graphviz output")
		subsumes = flag.String("subsumes", "", "decide F1 <= F2, given as 'F1,F2' (e.g. 'EI,NR')")
		features = flag.String("features", "", "program file: detect and print its fragment")
		target   = flag.String("rewrite", "", "with -features: rewrite the program into this fragment")
		output   = flag.String("output", "S", "output relation for -rewrite")
		vet      = flag.String("vet", "", "program file: run the static analyzer and print diagnostics")
	)
	flag.Parse()

	switch {
	case *vet != "":
		src, err := os.ReadFile(*vet)
		if err != nil {
			fail(err)
		}
		prog, explicit, err := parser.ParseProgramForAnalysis(string(src))
		if err != nil {
			fail(fmt.Errorf("%s: %w", *vet, err))
		}
		diags := analyze.Check(prog, analyze.Options{
			ExplicitStrata: explicit,
			ClassLabel:     func(f ast.FeatureSet) string { return core.ClassOf(f).Label() },
		})
		bad := false
		for _, d := range diags {
			fmt.Println(d.Format(*vet))
			if d.Severity != analyze.Info {
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	case *lattice:
		l := core.BuildLattice()
		if *dot {
			fmt.Print(l.DOT())
		} else {
			fmt.Printf("Figure 1: %d equivalence classes of the 16 fragments over {E, I, N, R}\n\n", len(l.Classes))
			fmt.Print(l.ASCII())
		}
	case *subsumes != "":
		parts := strings.SplitN(*subsumes, ",", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("-subsumes wants 'F1,F2', e.g. 'EI,NR'"))
		}
		f1, ok1 := ast.ParseFeatureSet(parts[0])
		f2, ok2 := ast.ParseFeatureSet(parts[1])
		if !ok1 || !ok2 {
			fail(fmt.Errorf("bad fragment in %q (letters A, E, I, N, P, R)", *subsumes))
		}
		fmt.Printf("%s <= %s : %v\n", f1, f2, core.Subsumes(f1, f2))
		fmt.Printf("%s <= %s : %v\n", f2, f1, core.Subsumes(f2, f1))
	case *features != "":
		src, err := os.ReadFile(*features)
		if err != nil {
			fail(err)
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			fail(err)
		}
		f := prog.Features()
		fmt.Printf("fragment: %s\nclass:    %s\n", f, core.ClassOf(f).Label())
		if *target != "" {
			tf, ok := ast.ParseFeatureSet(*target)
			if !ok {
				fail(fmt.Errorf("bad target fragment %q", *target))
			}
			res, err := core.RewriteTo(prog, *output, tf)
			if err != nil {
				fail(err)
			}
			fmt.Printf("steps:    %s\nachieved: %s (exact: %v)\n", strings.Join(res.Steps, " -> "), res.Achieved, res.Exact)
			if res.Note != "" {
				fmt.Printf("note:     %s\n", res.Note)
			}
			fmt.Println("---")
			fmt.Print(res.Program.String())
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqfrag:", err)
	os.Exit(1)
}
