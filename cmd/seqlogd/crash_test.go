package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the seqlogd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "seqlogd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and waits for its listen address.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "seqlogd: listening on "); ok {
			// Keep draining stderr so the daemon never blocks on a full
			// pipe; its notices are useful under -v.
			go func() {
				for sc.Scan() {
					t.Logf("daemon: %s", sc.Text())
				}
			}()
			return cmd, strings.TrimSpace(addr)
		}
		t.Logf("daemon: %s", line)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("daemon exited before listening (scanner err: %v)", sc.Err())
	return nil, ""
}

// client is a line-protocol session against a live daemon.
type client struct {
	conn net.Conn
	rd   *bufio.Reader
}

func dialDaemon(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, rd: bufio.NewReader(conn)}
}

// roundTrip sends one command and reads reply lines through the final
// ok/err line.
func (c *client) roundTrip(cmd string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	return c.readReply()
}

func (c *client) readReply() (string, error) {
	var b strings.Builder
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			return b.String(), err
		}
		b.WriteString(line)
		if strings.HasPrefix(line, "ok") || strings.HasPrefix(line, "err") {
			return b.String(), nil
		}
	}
}

const crashSrc = "T(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n"

// queryFacts returns the tuples of rel as printed fact lines.
func queryFacts(t *testing.T, c *client, rel string) map[string]bool {
	t.Helper()
	out, err := c.roundTrip("query " + rel)
	if err != nil || !strings.Contains(out, "ok n=") {
		t.Fatalf("query %s: %v\n%s", rel, err, out)
	}
	facts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, rel+"(") {
			facts[strings.TrimSpace(line)] = true
		}
	}
	return facts
}

// closure computes the transitive closure the crash program derives,
// independently of any engine, from the recovered edge facts.
func closure(edges map[string]bool) map[string]bool {
	type pair struct{ x, y string }
	have := map[pair]bool{}
	for e := range edges {
		body := strings.TrimSuffix(strings.TrimPrefix(e, "E("), ").")
		parts := strings.SplitN(body, ".", 2)
		have[pair{parts[0], parts[1]}] = true
	}
	for changed := true; changed; {
		changed = false
		for a := range have {
			for b := range have {
				if a.y == b.x && !have[pair{a.x, b.y}] {
					have[pair{a.x, b.y}] = true
					changed = true
				}
			}
		}
	}
	out := map[string]bool{}
	for p := range have {
		out[fmt.Sprintf("T(%s.%s)", p.x, p.y)+"."] = true
	}
	return out
}

// TestCrashRecoveryKill9 is the process-level fault harness: a daemon
// under -sync always takes an assert storm, is killed with SIGKILL at
// a random moment, and is restarted on the same WAL directory. Every
// acknowledged write must survive (the recovered E is a superset of
// the acked facts — replies can be lost in flight, writes must not
// be), and the recovered T must equal the closure recomputed
// independently from the recovered E: recovery is replay, not
// deserialized derived state.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash harness")
	}
	bin := buildDaemon(t)
	walDir := t.TempDir()
	daemon, addr := startDaemon(t, bin, "-wal-dir", walDir, "-sync", "always")
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	c := dialDaemon(t, addr)
	defer c.conn.Close()
	if out, err := c.roundTrip("load\n" + crashSrc + "."); err != nil || !strings.Contains(out, "ok loaded") {
		t.Fatalf("load: %v\n%s", err, out)
	}

	// The storm, with the killer on a random fuse (seeded per run by
	// the harness loop; crashes land anywhere from mid-record to
	// between batches).
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	fuse := time.Duration(r.Intn(120)) * time.Millisecond
	go func() {
		time.Sleep(fuse)
		daemon.Process.Kill()
	}()

	acked := map[string]bool{}
	for i := 0; i < 3000; i++ {
		fact := fmt.Sprintf("E(n%d.n%d).", i%17, (i*7+3)%17)
		out, err := c.roundTrip("assert " + fact)
		if err != nil {
			break // the kill landed
		}
		if !strings.HasPrefix(out, "ok") {
			t.Fatalf("assert refused: %s", out)
		}
		acked[fact] = true
	}
	daemon.Wait()

	restarted, addr2 := startDaemon(t, bin, "-wal-dir", walDir)
	defer func() {
		restarted.Process.Signal(syscall.SIGTERM)
		restarted.Wait()
	}()
	c2 := dialDaemon(t, addr2)
	defer c2.conn.Close()

	if len(acked) == 0 {
		return // killed before any ack: nothing to verify
	}
	edges := queryFacts(t, c2, "E")
	for fact := range acked {
		if !edges[fact] {
			t.Fatalf("acknowledged fact %s lost in the crash (fuse %v, %d acked, %d recovered)",
				fact, fuse, len(acked), len(edges))
		}
	}
	got := queryFacts(t, c2, "T")
	want := closure(edges)
	for f := range want {
		if !got[f] {
			t.Fatalf("recovered closure missing %s (%d edges)", f, len(edges))
		}
	}
	for f := range got {
		if !want[f] {
			t.Fatalf("recovered closure has spurious %s", f)
		}
	}
}

// TestShutdownCheckpointRecovery: SIGTERM shuts the daemon down
// gracefully — exit status 0, a final checkpoint on disk — and the
// restart recovers from the snapshot without replaying records.
func TestShutdownCheckpointRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level shutdown harness")
	}
	bin := buildDaemon(t)
	walDir := t.TempDir()
	daemon, addr := startDaemon(t, bin, "-wal-dir", walDir, "-sync", "always")
	killed := false
	defer func() {
		if !killed {
			daemon.Process.Kill()
			daemon.Wait()
		}
	}()

	c := dialDaemon(t, addr)
	if out, err := c.roundTrip("load\n" + crashSrc + "."); err != nil || !strings.Contains(out, "ok loaded") {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if out, err := c.roundTrip("assert E(a.b). E(b.c)."); err != nil || !strings.HasPrefix(out, "ok") {
		t.Fatalf("assert: %v\n%s", err, out)
	}
	c.conn.Close()

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("graceful shutdown must exit clean: %v", err)
	}
	killed = true
	if _, err := os.Stat(filepath.Join(walDir, "checkpoint-00000001.ckpt")); err != nil {
		t.Fatalf("final checkpoint missing: %v", err)
	}

	restarted, addr2 := startDaemon(t, bin, "-wal-dir", walDir)
	defer func() {
		restarted.Process.Signal(syscall.SIGTERM)
		restarted.Wait()
	}()
	c2 := dialDaemon(t, addr2)
	defer c2.conn.Close()
	out, err := c2.roundTrip("stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"facts=5", "recovered_records=0 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("restart stats missing %q: %s", want, out)
		}
	}
}
