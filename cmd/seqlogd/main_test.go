package main

import (
	"strings"
	"sync"
	"testing"

	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/value"
)

// run feeds a protocol script to a fresh server session and returns
// the full response text.
func run(t *testing.T, srv *server, script string) string {
	t.Helper()
	var out strings.Builder
	srv.serve(strings.NewReader(script), &out)
	return out.String()
}

func TestProtocolSession(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, `load
T(@x.@y) :- E(@x.@y).
T(@x.@z) :- T(@x.@y), E(@y.@z).
.
assert E(a.b). E(b.c).
query T
assert E(c.d).
holds T
stats
quit
`)
	for _, want := range []string{
		"ok loaded",
		"ok asserted=2 derived=3 skipped=0 incremental=1 recomputed=0",
		"T(a.b).\nT(a.c).\nT(b.c).\nok n=3",
		// Asserting c->d adds paths from a, b and c: three new facts.
		"ok asserted=1 derived=3 skipped=0 incremental=1 recomputed=0",
		"ok true",
		"ok facts=9 derived=6 asserts=2",
		"ok bye",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, "query T\n")
	if !strings.Contains(got, "err no program loaded") {
		t.Fatalf("query before load: %q", got)
	}
	got = run(t, srv, `load
S($x) :- R($x).
.
assert S(a).
query Nope
bogus
`)
	for _, want := range []string{
		"err eval: cannot assert into IDB relation",
		"err eval: unknown output relation",
		"err unknown command",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

func TestConcurrentSessionsShareEngine(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	if out := run(t, srv, "load\nT(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n.\n"); !strings.Contains(out, "ok loaded") {
		t.Fatalf("load: %q", out)
	}
	// Writers assert disjoint chains while readers poll; all sessions
	// share the one engine, so the final closure has every chain.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var script strings.Builder
			for i := 0; i < 8; i++ {
				script.WriteString("assert E(w")
				script.WriteString(string(rune('a' + w)))
				script.WriteString(num(i))
				script.WriteString(".w")
				script.WriteString(string(rune('a' + w)))
				script.WriteString(num(i + 1))
				script.WriteString(").\nquery T\n")
			}
			out := run(t, srv, script.String())
			if strings.Contains(out, "err") {
				panic("session error: " + out)
			}
		}(w)
	}
	wg.Wait()
	e, err := srv.current()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.Query("T")
	if err != nil {
		t.Fatal(err)
	}
	// 4 chains of 8 edges: 8*9/2 closure facts each.
	if want := 4 * 8 * 9 / 2; rel.Len() != want {
		t.Fatalf("|T| = %d, want %d", rel.Len(), want)
	}
}

func num(i int) string { return string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestLoadResets(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n")
	got := run(t, srv, "load\nS($x) :- R($x).\n.\nquery S\n")
	if !strings.Contains(got, "ok n=0") {
		t.Fatalf("load must reset the engine:\n%s", got)
	}
}

func TestServerLoadWithInitialData(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	edb := instance.New()
	edb.AddPath("R", value.PathOf("a"))
	if err := srv.load("S($x) :- R($x).", edb); err != nil {
		t.Fatal(err)
	}
	got := run(t, srv, "query S\n")
	if !strings.Contains(got, "S(a).") || !strings.Contains(got, "ok n=1") {
		t.Fatalf("initial data not materialized:\n%s", got)
	}
}

func TestOversizedLineReportsError(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	run(t, srv, "load\nS($x) :- R($x).\n.\n")
	// A line beyond the scanner's 1 MB cap must produce an err reply,
	// not a silent session death.
	got := run(t, srv, "assert R("+strings.Repeat("a.", 1<<20)+"b).\n")
	if !strings.Contains(got, "err ") {
		t.Fatalf("oversized line died silently:\n%.200s", got)
	}
}
