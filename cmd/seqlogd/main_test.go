package main

import (
	"bufio"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/value"
	"seqlog/internal/wal"
	"seqlog/internal/wal/walfault"
)

// run feeds a protocol script to a fresh server session and returns
// the full response text.
func run(t *testing.T, srv *server, script string) string {
	t.Helper()
	var out strings.Builder
	srv.serve(strings.NewReader(script), &out)
	return out.String()
}

func TestProtocolSession(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, `load
T(@x.@y) :- E(@x.@y).
T(@x.@z) :- T(@x.@y), E(@y.@z).
.
assert E(a.b). E(b.c).
query T
assert E(c.d).
holds T
stats
quit
`)
	for _, want := range []string{
		"ok loaded",
		"ok asserted=2 derived=3 overdeleted=0 stamp_pruned=0 rederived=0 skipped=0 incremental=1",
		"T(a.b).\nT(a.c).\nT(b.c).\nok n=3",
		// Asserting c->d adds paths from a, b and c: three new facts.
		"ok asserted=1 derived=3 overdeleted=0 stamp_pruned=0 rederived=0 skipped=0 incremental=1",
		"ok true",
		"ok facts=9 derived=6 asserts=2 retracts=0",
		"ok bye",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, "query T\n")
	if !strings.Contains(got, "err no program loaded") {
		t.Fatalf("query before load: %q", got)
	}
	got = run(t, srv, `load
S($x) :- R($x).
.
assert S(a).
query Nope
bogus
`)
	for _, want := range []string{
		"err eval: cannot assert IDB relation",
		"err eval: unknown output relation",
		"err unknown command",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

func TestConcurrentSessionsShareEngine(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	if out := run(t, srv, "load\nT(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n.\n"); !strings.Contains(out, "ok loaded") {
		t.Fatalf("load: %q", out)
	}
	// Writers assert disjoint chains while readers poll; all sessions
	// share the one engine, so the final closure has every chain.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var script strings.Builder
			for i := 0; i < 8; i++ {
				script.WriteString("assert E(w")
				script.WriteString(string(rune('a' + w)))
				script.WriteString(num(i))
				script.WriteString(".w")
				script.WriteString(string(rune('a' + w)))
				script.WriteString(num(i + 1))
				script.WriteString(").\nquery T\n")
			}
			out := run(t, srv, script.String())
			if strings.Contains(out, "err") {
				panic("session error: " + out)
			}
		}(w)
	}
	wg.Wait()
	e, err := srv.current()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.Query("T")
	if err != nil {
		t.Fatal(err)
	}
	// 4 chains of 8 edges: 8*9/2 closure facts each.
	if want := 4 * 8 * 9 / 2; rel.Len() != want {
		t.Fatalf("|T| = %d, want %d", rel.Len(), want)
	}
}

func num(i int) string { return string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func TestLoadCarriesEDB(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n")
	got := run(t, srv, "load\nS($x) :- R($x). U($x) :- R($x).\n.\nquery S\nquery U\n")
	if !strings.Contains(got, "carried=1") {
		t.Fatalf("reload must report the carried fact count:\n%s", got)
	}
	// The carried EDB must re-derive under the new program, including
	// through rules the old program did not have.
	if strings.Count(got, "ok n=1") != 2 {
		t.Fatalf("carried facts must materialize under the new program:\n%s", got)
	}
}

func TestLoadFromEmptyCarriesNothing(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, "load\nS($x) :- R($x).\n.\n")
	if !strings.Contains(got, "carried=0") {
		t.Fatalf("first load has nothing to carry:\n%s", got)
	}
}

// TestLoadCarryArityClashKeepsOldEngine: when the carried EDB is
// incompatible with the new program (here: R used at a different
// arity), the load must fail and the previous engine must keep
// serving untouched.
func TestLoadCarryArityClashKeepsOldEngine(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n")
	got := run(t, srv, "load\nS($x, $y) :- R($x, $y).\n.\nquery S\n")
	if !strings.Contains(got, "err") {
		t.Fatalf("arity clash with carried EDB must fail the load:\n%s", got)
	}
	if !strings.Contains(got, "ok n=1") {
		t.Fatalf("old engine must keep serving after a failed load:\n%s", got)
	}
}

func TestServerLoadWithInitialData(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	edb := instance.New()
	edb.AddPath("R", value.PathOf("a"))
	if _, err := srv.load("S($x) :- R($x).", edb); err != nil {
		t.Fatal(err)
	}
	got := run(t, srv, "query S\n")
	if !strings.Contains(got, "S(a).") || !strings.Contains(got, "ok n=1") {
		t.Fatalf("initial data not materialized:\n%s", got)
	}
}

func TestOversizedLineReportsError(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	run(t, srv, "load\nS($x) :- R($x).\n.\n")
	// A line beyond the scanner's 1 MB cap must produce an err reply,
	// not a silent session death.
	got := run(t, srv, "assert R("+strings.Repeat("a.", 1<<20)+"b).\n")
	if !strings.Contains(got, "err ") {
		t.Fatalf("oversized line died silently:\n%.200s", got)
	}
	// The same failure inside a load must reply exactly one err and
	// close the session: scanning on after a poisoned stream could
	// reinterpret buffered program text as protocol commands.
	got = run(t, srv, "load\n"+strings.Repeat("a", 2<<20)+"\nquit\n")
	if !strings.Contains(got, "err load:") {
		t.Fatalf("oversized load line must reply err load:\n%.200s", got)
	}
	if strings.Contains(got, "unknown command") || strings.Contains(got, "ok bye") {
		t.Fatalf("poisoned load stream kept being interpreted:\n%.300s", got)
	}
	if n := strings.Count(got, "\n"); n != 1 {
		t.Fatalf("want exactly one reply line, got %d:\n%.300s", n, got)
	}
	// The previous engine still serves on a fresh session.
	if got := run(t, srv, "assert R(a).\nquery S\n"); !strings.Contains(got, "ok n=1") {
		t.Fatalf("previous engine lost:\n%s", got)
	}
}

func TestRetractVerb(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, `load
T(@x.@y) :- E(@x.@y).
T(@x.@z) :- T(@x.@y), E(@y.@z).
.
assert E(a.b). E(b.c).
retract E(b.c).
query T
retract E(nope.nope).
retract T(a.b).
stats
`)
	for _, want := range []string{
		// Removing b->c takes T(b.c) and T(a.c) with it.
		"ok retracted=1 derived=-2 overdeleted=2 stamp_pruned=0 rederived=0 skipped=0 incremental=1",
		"T(a.b).\nok n=1",
		// Absent facts are dropped silently: a full skip.
		"ok retracted=0 derived=0 overdeleted=0 stamp_pruned=0 rederived=0 skipped=1 incremental=0",
		"err eval: cannot retract IDB relation",
		"ok facts=2 derived=1 asserts=1 retracts=2",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

// TestTruncatedLoadKeepsPreviousEngine: a load whose input ends before
// the terminating "." must not install a half program — the session
// replies err and the previously loaded engine keeps serving.
func TestTruncatedLoadKeepsPreviousEngine(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	if out := run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n"); strings.Contains(out, "err") {
		t.Fatalf("setup failed:\n%s", out)
	}
	// EOF arrives mid-program: no lone "." ever comes.
	got := run(t, srv, "load\nBroken($x) :- R($x).\n")
	if !strings.Contains(got, "err load: input ended before the terminating") {
		t.Fatalf("truncated load must reply err:\n%s", got)
	}
	if strings.Contains(got, "ok loaded") {
		t.Fatalf("truncated load must not install a program:\n%s", got)
	}
	// The old program (and its facts) still serve.
	got = run(t, srv, "query S\nquery Broken\n")
	if !strings.Contains(got, "S(a).") || !strings.Contains(got, "ok n=1") {
		t.Fatalf("previous engine lost after truncated load:\n%s", got)
	}
	if !strings.Contains(got, "err eval: unknown output relation \"Broken\"") {
		t.Fatalf("half program leaked into the engine:\n%s", got)
	}
	// A load truncated before any engine exists leaves none in place.
	fresh := &server{limits: eval.Limits{}}
	got = run(t, fresh, "load\nS($x) :- R($x).\n")
	if !strings.Contains(got, "err load: input ended") {
		t.Fatalf("fresh truncated load: %s", got)
	}
	if _, err := fresh.current(); err == nil {
		t.Fatal("truncated load installed an engine")
	}
}

// flakyListener fails Accept with temporary errors a few times, then
// hands out one connection, then reports closure.
type flakyListener struct {
	fails int
	conns []net.Conn
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.fails > 0 {
		l.fails--
		return nil, tempErr{}
	}
	if len(l.conns) == 0 {
		return nil, net.ErrClosed
	}
	c := l.conns[0]
	l.conns = l.conns[1:]
	return c, nil
}

func (l *flakyListener) Close() error   { return nil }
func (l *flakyListener) Addr() net.Addr { return &net.TCPAddr{} }

// TestAcceptLoopRetriesTemporaryErrors: transient Accept failures
// (EMFILE et al.) must be retried with backoff instead of killing the
// daemon, and the loop must still serve the connections that follow.
func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	if _, err := srv.load("S($x) :- R($x).", instance.New()); err != nil {
		t.Fatal(err)
	}
	client, served := net.Pipe()
	ln := &flakyListener{fails: 3, conns: []net.Conn{served}}
	var slept []time.Duration
	done := make(chan error, 1)
	go func() { done <- acceptLoop(ln, srv, func(d time.Duration) { slept = append(slept, d) }) }()

	if _, err := client.Write([]byte("assert R(a).\nquit\n")); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "ok asserted=1") || !strings.Contains(string(out), "ok bye") {
		t.Fatalf("session after retries broken:\n%s", out)
	}
	if err := <-done; err != nil {
		t.Fatalf("closed listener must end the loop cleanly: %v", err)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %v, want 3 backoffs", slept)
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] <= slept[i-1] {
			t.Fatalf("backoff must grow: %v", slept)
		}
	}
}

// TestLoadRejectionKeepsEngineAndReportsDiagnostics: a program with
// error-severity diagnostics is refused with positioned "diag" lines,
// the previous engine keeps serving, and the stats counter records the
// rejected load.
func TestLoadRejectionKeepsEngineAndReportsDiagnostics(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	if out := run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n"); !strings.Contains(out, "ok loaded") {
		t.Fatalf("initial load failed:\n%s", out)
	}
	got := run(t, srv, `load
S($y.a) :- R($x).
.
query S
stats
`)
	for _, want := range []string{
		// The rejection reply carries the position and code of every
		// error diagnostic before the final err line.
		"diag 1:1: unbound-head-var:",
		"err load rejected: 1 diagnostic(s) (previous engine kept)",
		// The previous program still answers queries.
		"S(a).",
		"rejected_loads=1",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
}

// TestLoadWarningsSurfacedAndCounted: a program that compiles but
// draws analyzer warnings reports them as "diag" lines on load, counts
// them in stats, and a subsequent clean load resets the count.
func TestLoadWarningsSurfacedAndCounted(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	got := run(t, srv, `load
Pair($x, $y) :- Left($x), Right($y).
.
stats
load
T(@x, @y) :- E(@x.@y).
T(@x, @z) :- T(@x, @y), E(@y.@z).
.
stats
quit
`)
	for _, want := range []string{
		// The cross product shares no variables, so neither side has a
		// usable index under the other's delta — the perf pass flags it.
		"diag 1:17: full-scan-delta:",
		"ok loaded warnings=",
		// The binary form is clean: the second load resets to zero.
		"ok loaded warnings=0",
		"warnings=0 rejected_loads=0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("response missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(strings.Split(got, "ok loaded warnings=0")[0], "warnings=0") {
		t.Fatalf("first load should have reported nonzero warnings:\n%s", got)
	}
}

// newWALServer wires a server to a WAL directory the way main does:
// recover, adopt the recovered engine if any, remember the replay
// count for stats.
func newWALServer(t *testing.T, dir string, opts wal.Options) *server {
	t.Helper()
	h := &walHandler{rep: eval.Replayer{}}
	l, err := wal.Open(dir, opts, h)
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{limits: eval.Limits{}, wal: l, recovered: l.Recovery().RecordsReplayed}
	if h.rep.Engine() != nil {
		srv.installRecovered(&h.rep)
	}
	t.Cleanup(func() { l.Close() })
	return srv
}

// TestStatsDurabilityCounters: with a WAL attached, stats reports the
// durability counters; the load and both asserts each cost a record.
func TestStatsDurabilityCounters(t *testing.T) {
	srv := newWALServer(t, t.TempDir(), wal.Options{Sync: wal.SyncNever})
	got := run(t, srv, `load
T(@x.@y) :- E(@x.@y).
.
assert E(a.b).
assert E(b.c).
stats
`)
	for _, want := range []string{
		"wal_records=3 ", "checkpoints=0 ", "recovered_records=0 ",
		"readonly=false", "idle_timeouts=0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "wal_bytes=0 ") {
		t.Fatalf("wal_bytes must count framed bytes:\n%s", got)
	}
}

// TestServerRecoveryRoundTrip: a server's WAL replayed into a fresh
// server reproduces the materialization; after a finalize (checkpoint
// + close) the next recovery comes from the snapshot with no records.
func TestServerRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv := newWALServer(t, dir, wal.Options{Sync: wal.SyncNever})
	out := run(t, srv, "load\nT(@x.@y) :- E(@x.@y).\nT(@x.@z) :- T(@x.@y), E(@y.@z).\n.\nassert E(a.b). E(b.c).\nretract E(b.c).\nassert E(b.d).\n")
	if strings.Contains(out, "err") {
		t.Fatalf("setup: %s", out)
	}
	if err := srv.wal.Close(); err != nil { // crash: no final checkpoint
		t.Fatal(err)
	}

	srv2 := newWALServer(t, dir, wal.Options{})
	got := run(t, srv2, "query T\nstats\n")
	for _, want := range []string{"T(a.b).\nT(a.d).\nT(b.d).\nok n=3", "recovered_records=4 "} {
		if !strings.Contains(got, want) {
			t.Fatalf("recovered server missing %q:\n%s", want, got)
		}
	}
	srv2.finalize() // graceful path: checkpoint, then close

	srv3 := newWALServer(t, dir, wal.Options{})
	got = run(t, srv3, "query T\nstats\n")
	for _, want := range []string{"ok n=3", "recovered_records=0 "} {
		if !strings.Contains(got, want) {
			t.Fatalf("checkpoint-recovered server missing %q:\n%s", want, got)
		}
	}
}

// TestReadonlyDegradation: when the WAL starts failing, writes are
// refused with "err readonly: ..." and nothing reaches the engine,
// but queries and stats keep serving the last durable state.
func TestReadonlyDegradation(t *testing.T) {
	var fw *walfault.Writer
	srv := newWALServer(t, t.TempDir(), wal.Options{Sync: wal.SyncNever,
		WrapWriter: func(w io.Writer) io.Writer {
			fw = &walfault.Writer{W: w, FailAfter: -1}
			return fw
		}})
	out := run(t, srv, "load\nS($x) :- R($x).\n.\nassert R(a).\n")
	if strings.Contains(out, "err") {
		t.Fatalf("setup: %s", out)
	}
	fw.FailAfter = fw.Written() // the disk dies here

	got := run(t, srv, "assert R(b).\nretract R(a).\nquery S\nstats\n")
	if n := strings.Count(got, "err readonly: "); n != 2 {
		t.Fatalf("want 2 readonly refusals, got %d:\n%s", n, got)
	}
	for _, want := range []string{"S(a).\nok n=1", "readonly=true"} {
		if !strings.Contains(got, want) {
			t.Fatalf("degraded server missing %q:\n%s", want, got)
		}
	}
}

// TestIdleTimeoutClosesSession: a session silent past -idle-timeout is
// told why, closed, and counted; activity re-arms the deadline.
func TestIdleTimeoutClosesSession(t *testing.T) {
	srv := &server{limits: eval.Limits{}, idleTimeout: 100 * time.Millisecond}
	client, served := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer served.Close()
		srv.serve(served, served)
	}()
	rd := bufio.NewReader(client)
	for i := 0; i < 3; i++ { // stay under the deadline: the session lives
		time.Sleep(30 * time.Millisecond)
		if _, err := client.Write([]byte("holds X\n")); err != nil {
			t.Fatal(err)
		}
		if line, err := rd.ReadString('\n'); err != nil || !strings.Contains(line, "err no program loaded") {
			t.Fatalf("reply %d: %q, %v", i, line, err)
		}
	}
	line, err := rd.ReadString('\n') // now idle: the deadline fires
	if err != nil || !strings.Contains(line, "err idle timeout") {
		t.Fatalf("idle close: %q, %v", line, err)
	}
	<-done
	srv.mu.Lock()
	idle := srv.idleTimeouts
	srv.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle_timeouts = %d, want 1", idle)
	}
}

// TestDrainForceClosesStuckSessions: shutdown waits for sessions, and
// past the grace period force-closes the stragglers so the final
// checkpoint is never blocked by a silent client.
func TestDrainForceClosesStuckSessions(t *testing.T) {
	srv := &server{limits: eval.Limits{}}
	client, served := net.Pipe()
	defer client.Close()
	ln := &flakyListener{conns: []net.Conn{served}}
	done := make(chan error, 1)
	go func() { done <- acceptLoop(ln, srv, time.Sleep) }()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv.drain(50 * time.Millisecond) // the client never speaks nor hangs up
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("drain returned before the grace period: %v", d)
	}
	srv.mu.Lock()
	left := len(srv.conns)
	srv.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions still tracked after drain", left)
	}
}
