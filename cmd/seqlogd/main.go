// Command seqlogd serves a Sequence Datalog engine over a line
// protocol: load a program once, assert facts as they arrive, query
// the continuously maintained materialization. It is the serving
// counterpart of the one-shot cmd/seqlog.
//
// Usage:
//
//	seqlogd [-program prog.sdl] [-data facts.sdl] [-workers N] [-max-facts N]
//	seqlogd -listen :7690 ...
//
// Without -listen the protocol runs on stdin/stdout (handy under a
// pipe or an editor); with -listen every TCP connection speaks the
// same protocol against one shared engine — asserts serialize through
// the engine, queries read copy-on-write snapshots and never block
// behind them.
//
// Protocol (one command per line; responses end with "ok ..." or
// "err ..."):
//
//	load                  read program lines until a lone "."; compile
//	                      and start a fresh engine (empty EDB). A program
//	                      with error-severity diagnostics is rejected —
//	                      the diagnostics are listed one per line as
//	                      "diag <line:col>: <code>: <message>" before the
//	                      final "err", and the previous engine keeps
//	                      serving. Analyzer warnings do not block the
//	                      load; they are listed the same way before
//	                      "ok loaded warnings=N".
//	assert <facts>        e.g. assert E(a.b). E(b.c).
//	retract <facts>       withdraw facts; derived facts losing their
//	                      last derivation disappear (DRed maintenance)
//	query <relation>      print the relation's facts, one per line
//	holds <relation>      print true/false
//	stats                 engine counters
//	explain               the compiled join plans
//	quit                  close the connection
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"seqlog/internal/analyze"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
)

func main() {
	var (
		programFile = flag.String("program", "", "file holding the program to load at startup")
		dataFile    = flag.String("data", "", "file holding the initial EDB facts")
		maxFacts    = flag.Int("max-facts", eval.DefaultLimits.MaxFacts, "termination guard: maximum materialized derived facts")
		workers     = flag.Int("workers", 1, "fixpoint workers per maintenance round (1 = sequential, -1 = all CPUs)")
		listen      = flag.String("listen", "", "serve the protocol on this TCP address instead of stdin/stdout")
	)
	flag.Parse()

	srv := &server{limits: eval.Limits{MaxFacts: *maxFacts, Parallelism: *workers}}
	if *programFile != "" {
		src, err := os.ReadFile(*programFile)
		if err != nil {
			fail(err)
		}
		edb := instance.New()
		if *dataFile != "" {
			data, err := os.ReadFile(*dataFile)
			if err != nil {
				fail(err)
			}
			edb, err = parser.ParseInstance(string(data))
			if err != nil {
				fail(fmt.Errorf("%s: %w", *dataFile, err))
			}
		}
		if err := srv.load(string(src), edb); err != nil {
			fail(fmt.Errorf("%s: %w", *programFile, err))
		}
	} else if *dataFile != "" {
		fail(fmt.Errorf("-data requires -program (the engine is created when the program loads)"))
	}

	if *listen == "" {
		srv.serve(os.Stdin, os.Stdout)
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "seqlogd: listening on", ln.Addr())
	if err := acceptLoop(ln, srv, time.Sleep); err != nil {
		fail(err)
	}
}

// acceptMaxBackoff caps the exponential backoff between retries of a
// failing Accept.
const acceptMaxBackoff = time.Second

// acceptLoop accepts connections until the listener closes, serving
// each on its own goroutine. A transient Accept error (EMFILE under
// connection pressure, ECONNABORTED, a timeout) must not kill the
// daemon and orphan every established session: temporary errors are
// logged and retried with exponential backoff, and only a permanent
// listener failure is returned. The sleep function is injected for
// tests.
func acceptLoop(ln net.Listener, srv *server, sleep func(time.Duration)) error {
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && !isTemporary(ne) {
				return err
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptMaxBackoff {
				backoff = acceptMaxBackoff
			}
			fmt.Fprintf(os.Stderr, "seqlogd: accept: %v (retrying in %v)\n", err, backoff)
			sleep(backoff)
			continue
		}
		backoff = 0
		go func() {
			defer conn.Close()
			srv.serve(conn, conn)
		}()
	}
}

// isTemporary reports whether a net.Error is worth retrying. Timeout
// covers the modern contract; Temporary is deprecated as advice for
// callers but still part of net.Error and still how the runtime
// classifies the syscall-level accept errors (EMFILE, ECONNABORTED)
// that matter here.
func isTemporary(ne net.Error) bool {
	return ne.Timeout() || ne.Temporary()
}

// server holds the one engine every connection shares. The engine
// serializes its own writers and serves reads from snapshots; the
// server's mutex only guards swapping the engine on load.
type server struct {
	limits eval.Limits

	mu     sync.Mutex
	engine *eval.Engine
	// warnings holds the analyzer warnings of the served program;
	// rejected counts loads refused for error-severity diagnostics.
	warnings []analyze.Diagnostic
	rejected int
}

// load compiles src and replaces the served engine with a fresh one
// over edb. Facts asserted into the previous engine are discarded:
// loading is a reset, not a migration. A program the static analyzer
// rejects returns an *analyze.DiagError (wrapped or direct) and leaves
// the previous engine serving; the rejection is counted in stats.
func (s *server) load(src string, edb *instance.Instance) error {
	// Parse without validating: safety and stratification problems
	// should surface as Compile's structured diagnostics, not as a
	// single opaque parse error.
	prog, _, err := parser.ParseProgramForAnalysis(src)
	if err != nil {
		return err
	}
	prep, err := eval.Compile(prog)
	if err != nil {
		var de *analyze.DiagError
		if errors.As(err, &de) {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
		}
		return err
	}
	e, err := eval.NewEngine(prep, edb, s.limits)
	if err != nil {
		return err
	}
	var warns []analyze.Diagnostic
	for _, d := range prep.Diagnostics() {
		if d.Severity == analyze.Warning {
			warns = append(warns, d)
		}
	}
	s.mu.Lock()
	s.engine = e
	s.warnings = warns
	s.mu.Unlock()
	return nil
}

// loadWarnings returns the analyzer warnings of the served program.
func (s *server) loadWarnings() []analyze.Diagnostic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warnings
}

// rejectedLoads returns how many loads were refused for
// error-severity diagnostics since the daemon started.
func (s *server) rejectedLoads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// current returns the served engine, or an error when none is loaded.
func (s *server) current() (*eval.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine == nil {
		return nil, fmt.Errorf("no program loaded (use the load command or -program)")
	}
	return s.engine, nil
}

// serve runs the line protocol until EOF or quit. One serve loop is a
// session; many may run concurrently against the same server.
func (s *server) serve(r io.Reader, w io.Writer) {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := bufio.NewWriter(w)
	defer out.Flush()
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "load":
			var prog strings.Builder
			terminated := false
			for in.Scan() {
				l := in.Text()
				if strings.TrimSpace(l) == "." {
					terminated = true
					break
				}
				prog.WriteString(l)
				prog.WriteByte('\n')
			}
			if !terminated {
				// Input ended before the lone ".": the program arrived
				// truncated, and loading whatever accumulated would
				// silently serve half a program. Keep the previous engine
				// and tell the client. A scanner FAILURE (e.g. a line
				// beyond the 1 MiB cap) additionally poisons the stream —
				// scanning on could reinterpret buffered program text as
				// protocol commands — so close the session; plain EOF just
				// lets the outer loop wind down.
				if err := in.Err(); err != nil {
					reply("err load: %v (program discarded, previous engine kept)", err)
					return
				}
				reply("err load: input ended before the terminating \".\" (program discarded, previous engine kept)")
				continue
			}
			if err := s.load(prog.String(), instance.New()); err != nil {
				var de *analyze.DiagError
				if errors.As(err, &de) {
					for _, d := range de.Diags {
						fmt.Fprintf(out, "diag %s\n", d)
					}
					reply("err load rejected: %d diagnostic(s) (previous engine kept)", len(de.Diags))
					continue
				}
				reply("err %v", err)
				continue
			}
			warns := s.loadWarnings()
			for _, d := range warns {
				fmt.Fprintf(out, "diag %s\n", d)
			}
			reply("ok loaded warnings=%d", len(warns))
		case "assert":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			delta, err := parser.ParseInstance(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			stats, err := e.Assert(delta)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok asserted=%d derived=%d overdeleted=%d rederived=%d skipped=%d incremental=%d%s",
				stats.Asserted, stats.Derived, stats.Overdeleted, stats.Rederived,
				stats.StrataSkipped, stats.StrataIncremental, planCounters(stats.Plans))
		case "retract":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			delta, err := parser.ParseInstance(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			stats, err := e.Retract(delta)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok retracted=%d derived=%d overdeleted=%d rederived=%d skipped=%d incremental=%d%s",
				stats.Retracted, stats.Derived, stats.Overdeleted, stats.Rederived,
				stats.StrataSkipped, stats.StrataIncremental, planCounters(stats.Plans))
		case "query":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			rel, err := e.Query(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			for _, t := range rel.Sorted() {
				if len(t) == 0 {
					fmt.Fprintf(out, "%s.\n", rest)
					continue
				}
				parts := make([]string, len(t))
				for i, p := range t {
					parts[i] = p.String()
				}
				fmt.Fprintf(out, "%s(%s).\n", rest, strings.Join(parts, ", "))
			}
			reply("ok n=%d", rel.Len())
		case "holds":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			yes, err := e.Holds(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok %v", yes)
		case "stats":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			st := e.Stats()
			reply("ok facts=%d derived=%d asserts=%d retracts=%d warnings=%d rejected_loads=%d delta_variants=%t%s",
				st.Facts, st.Derived, st.Asserts, st.Retracts,
				len(s.loadWarnings()), s.rejectedLoads(), st.DeltaVariants, planCounters(st.Plans))
		case "explain":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			for _, l := range e.Prepared().Explain() {
				fmt.Fprintln(out, l)
			}
			reply("ok")
		case "quit":
			reply("ok bye")
			return
		default:
			reply("err unknown command %q (load, assert, retract, query, holds, stats, explain, quit)", cmd)
		}
	}
	// A scanner failure (e.g. a line beyond the 1 MB cap) must not kill
	// the session silently mid-protocol: tell the client before closing.
	if err := in.Err(); err != nil {
		reply("err %v", err)
	}
}

// planCounters renders the plan-execution counters appended to
// assert/retract/stats replies: how often maintenance ran a
// delta-hoisted plan variant vs a base plan, and how the non-delta
// join steps of those runs were served (exact index, ground-prefix or
// ground-suffix probe, full scan).
func planCounters(ps eval.PlanStats) string {
	return fmt.Sprintf(" plan_variant=%d plan_base=%d probe_index=%d probe_prefix=%d probe_suffix=%d scan=%d",
		ps.VariantRuns, ps.BaseRuns, ps.IndexProbeSteps, ps.PrefixProbeSteps, ps.SuffixProbeSteps, ps.ScanSteps)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqlogd:", err)
	os.Exit(1)
}
