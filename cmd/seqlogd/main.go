// Command seqlogd serves a Sequence Datalog engine over a line
// protocol: load a program once, assert facts as they arrive, query
// the continuously maintained materialization. It is the serving
// counterpart of the one-shot cmd/seqlog.
//
// Usage:
//
//	seqlogd [-program prog.sdl] [-data facts.sdl] [-workers N] [-max-facts N]
//	seqlogd -listen :7690 ...
//	seqlogd -wal-dir ./wal -sync always -checkpoint-every 4096 ...
//
// Without -listen the protocol runs on stdin/stdout (handy under a
// pipe or an editor); with -listen every TCP connection speaks the
// same protocol against one shared engine — asserts serialize through
// the engine, queries read copy-on-write snapshots and never block
// behind them.
//
// With -wal-dir the daemon is durable: every accepted load, assert
// and retract is appended to a write-ahead log before it is applied,
// checkpoints bound replay time, and startup recovers the pre-crash
// state (see docs/durability.md). If the log itself fails mid-flight
// the daemon degrades to read-only — writes are refused with
// "err readonly: ...", queries keep serving the last durable state.
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain
// sessions, cut a final checkpoint, close the log.
//
// Protocol (one command per line; responses end with "ok ..." or
// "err ..."):
//
//	load                  read program lines until a lone "."; compile
//	                      and start a fresh engine seeded with the
//	                      previous engine's EDB (base facts carry over a
//	                      program upgrade; derived facts are recomputed).
//	                      A program with error-severity diagnostics is
//	                      rejected — the diagnostics are listed one per
//	                      line as "diag <line:col>: <code>: <message>"
//	                      before the final "err", and the previous engine
//	                      keeps serving. Analyzer warnings do not block
//	                      the load; they are listed the same way before
//	                      "ok loaded warnings=N carried=M".
//	assert <facts>        e.g. assert E(a.b). E(b.c).
//	retract <facts>       withdraw facts; derived facts losing their
//	                      last derivation disappear (DRed maintenance)
//	query <relation>      print the relation's facts, one per line
//	holds <relation>      print true/false
//	stats                 engine counters
//	explain               the compiled join plans
//	quit                  close the connection
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"seqlog/internal/analyze"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/wal"
)

func main() {
	var (
		programFile = flag.String("program", "", "file holding the program to load at startup")
		dataFile    = flag.String("data", "", "file holding the initial EDB facts")
		maxFacts    = flag.Int("max-facts", eval.DefaultLimits.MaxFacts, "termination guard: maximum materialized derived facts")
		workers     = flag.Int("workers", 1, "fixpoint workers per maintenance round (1 = sequential, -1 = all CPUs)")
		listen      = flag.String("listen", "", "serve the protocol on this TCP address instead of stdin/stdout")
		walDir      = flag.String("wal-dir", "", "directory for the write-ahead log and checkpoints (empty: no durability)")
		syncMode    = flag.String("sync", "always", "WAL fsync policy: always, interval, never")
		syncEvery   = flag.Duration("sync-interval", 100*time.Millisecond, "maximum sync staleness under -sync interval")
		ckptEvery   = flag.Int("checkpoint-every", 4096, "WAL records between checkpoints (0 disables the record trigger)")
		idleTimeout = flag.Duration("idle-timeout", 0, "close sessions idle longer than this (0: never)")
	)
	flag.Parse()

	srv := &server{
		limits:      eval.Limits{MaxFacts: *maxFacts, Parallelism: *workers},
		idleTimeout: *idleTimeout,
	}

	recovered := false
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*syncMode)
		if err != nil {
			fail(err)
		}
		records := *ckptEvery
		if records == 0 {
			records = -1
		}
		h := &walHandler{rep: eval.Replayer{Limits: srv.limits}}
		l, err := wal.Open(*walDir, wal.Options{
			Sync:              policy,
			SyncEvery:         *syncEvery,
			CheckpointRecords: records,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "seqlogd: "+format+"\n", args...)
			},
		}, h)
		if err != nil {
			fail(err)
		}
		srv.wal = l
		rs := l.Recovery()
		srv.recovered = rs.RecordsReplayed
		if h.rep.Engine() != nil {
			srv.installRecovered(&h.rep)
			fmt.Fprintf(os.Stderr, "seqlogd: recovered %d WAL records (checkpoint generation %d)\n",
				rs.RecordsReplayed, rs.CheckpointGen)
			if *programFile != "" {
				fmt.Fprintln(os.Stderr, "seqlogd: WAL recovery restored a program; ignoring -program/-data")
			}
			recovered = true
		}
	}

	if !recovered && *programFile != "" {
		src, err := os.ReadFile(*programFile)
		if err != nil {
			fail(err)
		}
		edb := instance.New()
		if *dataFile != "" {
			data, err := os.ReadFile(*dataFile)
			if err != nil {
				fail(err)
			}
			edb, err = parser.ParseInstance(string(data))
			if err != nil {
				fail(fmt.Errorf("%s: %w", *dataFile, err))
			}
		}
		if _, err := srv.load(string(src), edb); err != nil {
			fail(fmt.Errorf("%s: %w", *programFile, err))
		}
		if *dataFile != "" {
			// The OpLoad record carries only the program; the initial EDB
			// from -data lives in a checkpoint, cut right away so recovery
			// sees it.
			srv.wmu.Lock()
			srv.maybeCheckpoint(true)
			srv.wmu.Unlock()
		}
	} else if !recovered && *dataFile != "" {
		fail(fmt.Errorf("-data requires -program (the engine is created when the program loads)"))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *listen == "" {
		done := make(chan struct{})
		go func() {
			srv.serve(os.Stdin, os.Stdout)
			close(done)
		}()
		select {
		case <-done:
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "seqlogd: %v: shutting down\n", s)
		}
		srv.finalize()
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "seqlogd: listening on", ln.Addr())
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "seqlogd: %v: draining sessions and shutting down\n", s)
		ln.Close()
	}()
	loopErr := acceptLoop(ln, srv, time.Sleep)
	srv.drain(drainTimeout)
	srv.finalize()
	if loopErr != nil {
		fail(loopErr)
	}
}

// drainTimeout is the grace period for active sessions on shutdown;
// past it their connections are force-closed so a stuck client cannot
// block the final checkpoint.
const drainTimeout = 5 * time.Second

// acceptMaxBackoff caps the exponential backoff between retries of a
// failing Accept.
const acceptMaxBackoff = time.Second

// acceptLoop accepts connections until the listener closes, serving
// each on its own goroutine. A transient Accept error (EMFILE under
// connection pressure, ECONNABORTED, a timeout) must not kill the
// daemon and orphan every established session: temporary errors are
// logged and retried with exponential backoff, and only a permanent
// listener failure is returned. The sleep function is injected for
// tests.
func acceptLoop(ln net.Listener, srv *server, sleep func(time.Duration)) error {
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && !isTemporary(ne) {
				return err
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptMaxBackoff {
				backoff = acceptMaxBackoff
			}
			fmt.Fprintf(os.Stderr, "seqlogd: accept: %v (retrying in %v)\n", err, backoff)
			sleep(backoff)
			continue
		}
		backoff = 0
		srv.sessions.Add(1)
		srv.track(conn)
		go func() {
			defer srv.sessions.Done()
			defer srv.untrack(conn)
			defer conn.Close()
			srv.serve(conn, conn)
		}()
	}
}

// isTemporary reports whether a net.Error is worth retrying. Timeout
// covers the modern contract; Temporary is deprecated as advice for
// callers but still part of net.Error and still how the runtime
// classifies the syscall-level accept errors (EMFILE, ECONNABORTED)
// that matter here.
func isTemporary(ne net.Error) bool {
	return ne.Timeout() || ne.Temporary()
}

// server holds the one engine every connection shares. The engine
// serializes its own writers and serves reads from snapshots; mu
// guards swapping the engine on load and the session bookkeeping,
// while wmu serializes the write verbs end to end — WAL append order
// is engine apply order, which is what makes replay faithful. Lock
// order is wmu before mu, never the reverse.
type server struct {
	limits      eval.Limits
	idleTimeout time.Duration

	mu     sync.Mutex
	engine *eval.Engine
	// src is the source text of the served program — the WAL's current
	// load epoch, written into every checkpoint.
	src string
	// warnings holds the analyzer warnings of the served program;
	// rejected counts loads refused for error-severity diagnostics.
	warnings []analyze.Diagnostic
	rejected int
	// idleTimeouts counts sessions closed by the idle read deadline.
	idleTimeouts int
	conns        map[net.Conn]struct{}

	wmu sync.Mutex
	wal *wal.Log
	// readonly is the sticky degradation error: once the WAL fails,
	// every write is refused with it while queries keep serving.
	readonly error
	// recovered is the number of WAL records replayed at startup.
	recovered int

	sessions sync.WaitGroup
}

// walHandler adapts WAL recovery to the engine replay entry point.
type walHandler struct{ rep eval.Replayer }

func (h *walHandler) Restore(program string, edb *instance.Instance) error {
	return h.rep.Restore(program, edb)
}

func (h *walHandler) Replay(rec wal.Record) error {
	switch rec.Op {
	case wal.OpLoad:
		return h.rep.Load(rec.Program)
	case wal.OpAssert:
		return h.rep.Assert(rec.Batch)
	case wal.OpRetract:
		return h.rep.Retract(rec.Batch)
	}
	return fmt.Errorf("unknown WAL op %s", rec.Op)
}

// installRecovered adopts the replayer's engine as the served state.
func (s *server) installRecovered(rep *eval.Replayer) {
	var warns []analyze.Diagnostic
	for _, d := range rep.Prepared().Diagnostics() {
		if d.Severity == analyze.Warning {
			warns = append(warns, d)
		}
	}
	s.mu.Lock()
	s.engine, s.src, s.warnings = rep.Engine(), rep.Source(), warns
	s.mu.Unlock()
}

func (s *server) track(c net.Conn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// drain waits for active sessions to finish, force-closing their
// connections when the grace period runs out.
func (s *server) drain(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		s.sessions.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		fmt.Fprintln(os.Stderr, "seqlogd: drain timeout, closing active sessions")
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// finalize cuts a final checkpoint (when this session logged anything)
// and closes the WAL, so the next start recovers from the snapshot
// instead of replaying this session's records.
func (s *server) finalize() {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.wal == nil {
		return
	}
	// A checkpoint pays off whenever the next start would otherwise
	// replay records — ones appended this session or ones recovery
	// already replayed once.
	if (s.wal.Records() > 0 || s.recovered > 0) && s.readonly == nil {
		s.maybeCheckpoint(true)
	}
	if err := s.wal.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "seqlogd: closing WAL: %v\n", err)
	}
}

// logRecord appends rec to the WAL (a no-op without -wal-dir). The
// first append failure degrades the daemon to read-only: the record's
// durability can no longer be promised, so this write is refused and
// every later one fails fast, while queries keep serving the last
// durable state. Callers hold wmu.
func (s *server) logRecord(rec wal.Record) error {
	if s.wal == nil {
		return nil
	}
	if s.readonly != nil {
		return s.readonly
	}
	if err := s.wal.Append(rec); err != nil {
		s.readonly = fmt.Errorf("readonly: write-ahead log failed, serving reads only: %v", err)
		fmt.Fprintf(os.Stderr, "seqlogd: WAL append failed, degrading to read-only: %v\n", err)
		return s.readonly
	}
	return nil
}

// maybeCheckpoint cuts a checkpoint when the WAL's trigger fires (or
// force is set): the served program plus the engine's base facts,
// after which the replayed WAL prefix is dropped. A failed checkpoint
// is logged and non-fatal — the WAL alone keeps the state
// recoverable. Callers hold wmu.
func (s *server) maybeCheckpoint(force bool) {
	if s.wal == nil || s.readonly != nil || (!force && !s.wal.ShouldCheckpoint()) {
		return
	}
	s.mu.Lock()
	e, src := s.engine, s.src
	s.mu.Unlock()
	if e == nil {
		return
	}
	edb, err := e.EDBSnapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqlogd: checkpoint skipped: %v\n", err)
		return
	}
	if err := s.wal.Checkpoint(src, edb); err != nil {
		fmt.Fprintf(os.Stderr, "seqlogd: checkpoint failed: %v\n", err)
	}
}

// assert logs the batch and applies it to the engine, WAL first: a
// batch the log cannot make durable never reaches the engine.
func (s *server) assert(delta *instance.Instance) (eval.AssertStats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	e, err := s.current()
	if err != nil {
		return eval.AssertStats{}, err
	}
	if err := e.Err(); err != nil {
		// A broken engine rejects the batch itself; don't log a record
		// replay could never apply.
		return eval.AssertStats{}, err
	}
	if err := s.logRecord(wal.Record{Op: wal.OpAssert, Batch: delta}); err != nil {
		return eval.AssertStats{}, err
	}
	st, err := e.Assert(delta)
	s.maybeCheckpoint(false)
	return st, err
}

// retract is assert's mirror image on the delete/rederive path.
func (s *server) retract(delta *instance.Instance) (eval.RetractStats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	e, err := s.current()
	if err != nil {
		return eval.RetractStats{}, err
	}
	if err := e.Err(); err != nil {
		return eval.RetractStats{}, err
	}
	if err := s.logRecord(wal.Record{Op: wal.OpRetract, Batch: delta}); err != nil {
		return eval.RetractStats{}, err
	}
	st, err := e.Retract(delta)
	s.maybeCheckpoint(false)
	return st, err
}

// durabilityCounters renders the WAL/session counters appended to the
// stats reply (zeros without -wal-dir).
func (s *server) durabilityCounters() string {
	s.wmu.Lock()
	var records, checkpoints int
	var bytes int64
	if s.wal != nil {
		records, bytes, checkpoints = s.wal.Records(), s.wal.Bytes(), s.wal.Checkpoints()
	}
	ro := s.readonly != nil
	recovered := s.recovered
	s.wmu.Unlock()
	s.mu.Lock()
	idle := s.idleTimeouts
	s.mu.Unlock()
	return fmt.Sprintf(" wal_records=%d wal_bytes=%d checkpoints=%d recovered_records=%d readonly=%t idle_timeouts=%d",
		records, bytes, checkpoints, recovered, ro, idle)
}

// load compiles src and replaces the served engine with a fresh one.
// A nil edb means "carry the EDB over": the new engine is seeded from
// the previous engine's EDB snapshot (its non-IDB relations plus
// frozen IDB seeds), so a program upgrade keeps the live fact base —
// snapshots share their chunked storage, so the carry copies no
// tuples. An explicit edb (the -program/-data startup path) is used as
// given. The returned count is the number of facts carried over. A
// program the static analyzer rejects returns an *analyze.DiagError
// (wrapped or direct) and leaves the previous engine serving; the
// rejection is counted in stats.
//
// Under -wal-dir a successful compile is logged as an OpLoad record —
// the start of a new load epoch — before the engine swap; the record
// carries only the program, and replay reconstructs the same carried
// EDB from the engine state the preceding records produced
// (eval.Replayer.Load does the same carry). The snapshot, the record
// and the swap all happen under the write lock, so no concurrent
// assert can slip between the carried state and the logged load.
// (The startup path with -data additionally cuts a checkpoint.) A
// load the WAL refuses leaves the previous engine serving.
func (s *server) load(src string, edb *instance.Instance) (int, error) {
	// Parse without validating: safety and stratification problems
	// should surface as Compile's structured diagnostics, not as a
	// single opaque parse error.
	prog, _, err := parser.ParseProgramForAnalysis(src)
	if err != nil {
		return 0, err
	}
	prep, err := eval.Compile(prog)
	if err != nil {
		var de *analyze.DiagError
		if errors.As(err, &de) {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
		}
		return 0, err
	}
	var warns []analyze.Diagnostic
	for _, d := range prep.Diagnostics() {
		if d.Severity == analyze.Warning {
			warns = append(warns, d)
		}
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	carried := 0
	if edb == nil {
		edb = instance.New()
		s.mu.Lock()
		prev := s.engine
		s.mu.Unlock()
		if prev != nil && prev.Err() == nil {
			snap, err := prev.EDBSnapshot()
			if err != nil {
				return 0, err
			}
			edb, carried = snap, snap.Facts()
		}
	}
	e, err := eval.NewEngine(prep, edb, s.limits)
	if err != nil {
		return 0, err
	}
	if err := s.logRecord(wal.Record{Op: wal.OpLoad, Program: src}); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.engine = e
	s.src = src
	s.warnings = warns
	s.mu.Unlock()
	s.maybeCheckpoint(false)
	return carried, nil
}

// loadWarnings returns the analyzer warnings of the served program.
func (s *server) loadWarnings() []analyze.Diagnostic {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warnings
}

// rejectedLoads returns how many loads were refused for
// error-severity diagnostics since the daemon started.
func (s *server) rejectedLoads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// current returns the served engine, or an error when none is loaded.
func (s *server) current() (*eval.Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engine == nil {
		return nil, fmt.Errorf("no program loaded (use the load command or -program)")
	}
	return s.engine, nil
}

// serve runs the line protocol until EOF or quit. One serve loop is a
// session; many may run concurrently against the same server.
func (s *server) serve(r io.Reader, w io.Writer) {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := bufio.NewWriter(w)
	defer out.Flush()
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	// Idle read deadline: when the transport supports deadlines (TCP,
	// net.Pipe) and -idle-timeout is set, every read re-arms it; a
	// session silent past the deadline is closed cleanly and counted.
	dl, _ := r.(interface{ SetReadDeadline(time.Time) error })
	scan := func() bool {
		if dl != nil && s.idleTimeout > 0 {
			dl.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		return in.Scan()
	}
	for scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "load":
			var prog strings.Builder
			terminated := false
			for scan() {
				l := in.Text()
				if strings.TrimSpace(l) == "." {
					terminated = true
					break
				}
				prog.WriteString(l)
				prog.WriteByte('\n')
			}
			if !terminated {
				// Input ended before the lone ".": the program arrived
				// truncated, and loading whatever accumulated would
				// silently serve half a program. Keep the previous engine
				// and tell the client. A scanner FAILURE (e.g. a line
				// beyond the 1 MiB cap) additionally poisons the stream —
				// scanning on could reinterpret buffered program text as
				// protocol commands — so close the session; plain EOF just
				// lets the outer loop wind down.
				if err := in.Err(); err != nil {
					if errors.Is(err, os.ErrDeadlineExceeded) {
						s.bumpIdleTimeouts()
					}
					reply("err load: %v (program discarded, previous engine kept)", err)
					return
				}
				reply("err load: input ended before the terminating \".\" (program discarded, previous engine kept)")
				continue
			}
			carried, err := s.load(prog.String(), nil)
			if err != nil {
				var de *analyze.DiagError
				if errors.As(err, &de) {
					for _, d := range de.Diags {
						fmt.Fprintf(out, "diag %s\n", d)
					}
					reply("err load rejected: %d diagnostic(s) (previous engine kept)", len(de.Diags))
					continue
				}
				reply("err %v", err)
				continue
			}
			warns := s.loadWarnings()
			for _, d := range warns {
				fmt.Fprintf(out, "diag %s\n", d)
			}
			reply("ok loaded warnings=%d carried=%d", len(warns), carried)
		case "assert":
			delta, err := parser.ParseInstance(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			stats, err := s.assert(delta)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok asserted=%d derived=%d overdeleted=%d stamp_pruned=%d rederived=%d skipped=%d incremental=%d%s%s",
				stats.Asserted, stats.Derived, stats.Overdeleted, stats.StampPruned, stats.Rederived,
				stats.StrataSkipped, stats.StrataIncremental, planCounters(stats.Plans),
				cloneCounters(stats.Clones))
		case "retract":
			delta, err := parser.ParseInstance(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			stats, err := s.retract(delta)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok retracted=%d derived=%d overdeleted=%d stamp_pruned=%d rederived=%d skipped=%d incremental=%d%s%s",
				stats.Retracted, stats.Derived, stats.Overdeleted, stats.StampPruned, stats.Rederived,
				stats.StrataSkipped, stats.StrataIncremental, planCounters(stats.Plans),
				cloneCounters(stats.Clones))
		case "query":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			rel, err := e.Query(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			for _, t := range rel.Sorted() {
				if len(t) == 0 {
					fmt.Fprintf(out, "%s.\n", rest)
					continue
				}
				parts := make([]string, len(t))
				for i, p := range t {
					parts[i] = p.String()
				}
				fmt.Fprintf(out, "%s(%s).\n", rest, strings.Join(parts, ", "))
			}
			reply("ok n=%d", rel.Len())
		case "holds":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			yes, err := e.Holds(rest)
			if err != nil {
				reply("err %v", err)
				continue
			}
			reply("ok %v", yes)
		case "stats":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			st := e.Stats()
			reply("ok facts=%d derived=%d asserts=%d retracts=%d warnings=%d rejected_loads=%d delta_variants=%t%s%s%s",
				st.Facts, st.Derived, st.Asserts, st.Retracts,
				len(s.loadWarnings()), s.rejectedLoads(), st.DeltaVariants, planCounters(st.Plans),
				cloneCounters(st.Clones), s.durabilityCounters())
		case "explain":
			e, err := s.current()
			if err != nil {
				reply("err %v", err)
				continue
			}
			for _, l := range e.Prepared().Explain() {
				fmt.Fprintln(out, l)
			}
			reply("ok")
		case "quit":
			reply("ok bye")
			return
		default:
			reply("err unknown command %q (load, assert, retract, query, holds, stats, explain, quit)", cmd)
		}
	}
	// A scanner failure (e.g. a line beyond the 1 MB cap) must not kill
	// the session silently mid-protocol: tell the client before closing.
	if err := in.Err(); err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			s.bumpIdleTimeouts()
			reply("err idle timeout: closing session")
			return
		}
		reply("err %v", err)
	}
}

func (s *server) bumpIdleTimeouts() {
	s.mu.Lock()
	s.idleTimeouts++
	s.mu.Unlock()
}

// planCounters renders the plan-execution counters appended to
// assert/retract/stats replies: how often maintenance ran a
// delta-hoisted plan variant vs a base plan, and how the non-delta
// join steps of those runs were served (exact index, ground-prefix or
// ground-suffix probe, full scan).
func planCounters(ps eval.PlanStats) string {
	return fmt.Sprintf(" plan_variant=%d plan_base=%d probe_index=%d probe_prefix=%d probe_suffix=%d scan=%d",
		ps.VariantRuns, ps.BaseRuns, ps.IndexProbeSteps, ps.PrefixProbeSteps, ps.SuffixProbeSteps, ps.ScanSteps)
}

// cloneCounters renders the copy-on-write barrier counters appended to
// assert/retract/stats replies: how many frozen relations writes had
// to epoch-clone, how many sealed storage chunks those clones shared
// by pointer instead of copying, and approximately how many bytes they
// did copy. A serving mix of snapshot reads and writes should show
// shared_chunks growing much faster than clone_bytes — that ratio is
// the epoch-sharing win, observable here without a profiler.
func cloneCounters(cs instance.CloneStats) string {
	return fmt.Sprintf(" barrier_clones=%d shared_chunks=%d clone_bytes=%d",
		cs.BarrierClones, cs.SharedChunks, cs.CloneBytes)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqlogd:", err)
	os.Exit(1)
}
