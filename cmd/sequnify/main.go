// Command sequnify solves path-expression equations by associative
// unification (paper §4.3, Figure 2).
//
// Usage:
//
//	sequnify '$x.<@y.$z>.@w = $u.$v.$u'      # the Figure 2 equation
//	sequnify -empty '$x.$y = a.b'            # allow empty-path solutions
//	sequnify -dot '$x.a = a.$x'              # print the search DAG
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/unify"
)

func main() {
	var (
		empty = flag.Bool("empty", false, "apply the footnote-4 empty-word closure")
		dot   = flag.Bool("dot", false, "print the search DAG as Graphviz")
		max   = flag.Int("max-states", unify.DefaultMaxStates, "state budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sequnify [-empty] [-dot] 'e1 = e2'")
		os.Exit(2)
	}
	eq, err := parseEquation(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	fmt.Printf("equation:            %s\n", eq)
	fmt.Printf("one-sided nonlinear: %v\n", eq.OneSidedNonlinear())
	res := unify.Solve(eq, unify.Options{AllowEmpty: *empty, MaxStates: *max, CollectGraph: *dot})
	fmt.Printf("states explored:     %d\n", res.States)
	fmt.Printf("complete:            %v\n", res.Complete)
	fmt.Printf("symbolic solutions:  %d\n", len(res.Solutions))
	for _, s := range res.Solutions {
		fmt.Printf("  %s\n", s)
	}
	if *dot && res.Graph != nil {
		fmt.Println("---")
		fmt.Print(res.Graph.DOT())
	}
}

// parseEquation splits on the outermost '=' and parses both sides by
// wrapping them in a dummy predicate.
func parseEquation(src string) (unify.Equation, error) {
	parts := strings.SplitN(src, "=", 2)
	if len(parts) != 2 {
		return unify.Equation{}, fmt.Errorf("no '=' in %q", src)
	}
	l, err := parseExpr(parts[0])
	if err != nil {
		return unify.Equation{}, err
	}
	r, err := parseExpr(parts[1])
	if err != nil {
		return unify.Equation{}, err
	}
	return unify.Equation{L: l, R: r}, nil
}

func parseExpr(src string) (ast.Expr, error) {
	rules, err := parser.ParseRules("X(" + strings.TrimSpace(src) + ").")
	if err != nil {
		return nil, fmt.Errorf("bad expression %q: %w", src, err)
	}
	return rules[0].Head.Args[0], nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sequnify:", err)
	os.Exit(1)
}
