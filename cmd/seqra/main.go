// Command seqra compiles nonrecursive Sequence Datalog programs to the
// sequence relational algebra of §7 (Theorem 7.1) and optionally runs
// the compiled plan.
//
// Usage:
//
//	seqra -program prog.sdl -output S            # print the plan
//	seqra -program prog.sdl -output S -data f.sdl  # run it
//	seqra -program prog.sdl -output S -normal    # print the Lemma 7.2 normal form
package main

import (
	"flag"
	"fmt"
	"os"

	"seqlog/internal/algebra"
	"seqlog/internal/ast"
	"seqlog/internal/parser"
	"seqlog/internal/rewrite"
)

func main() {
	var (
		programFile = flag.String("program", "", "file holding the nonrecursive program")
		output      = flag.String("output", "S", "output relation")
		dataFile    = flag.String("data", "", "EDB facts; when given, the plan is evaluated")
		normal      = flag.Bool("normal", false, "print the Lemma 7.2 normal form instead of the plan")
	)
	flag.Parse()
	if *programFile == "" {
		fmt.Fprintln(os.Stderr, "usage: seqra -program prog.sdl -output S [-data facts.sdl] [-normal]")
		os.Exit(2)
	}
	src, err := os.ReadFile(*programFile)
	if err != nil {
		fail(err)
	}
	prog, err := parser.ParseProgram(string(src))
	if err != nil {
		fail(err)
	}
	if *normal {
		p := prog
		if p.Features().Has(ast.FeatEquations) {
			p, err = rewrite.EliminateEquations(p)
			if err != nil {
				fail(err)
			}
		}
		nf, err := algebra.NormalForm(p)
		if err != nil {
			fail(err)
		}
		fmt.Print(nf.String())
		return
	}
	expr, err := algebra.Compile(prog, *output)
	if err != nil {
		fail(err)
	}
	fmt.Printf("plan (%d operators):\n%s\n", algebra.Size(expr), expr)
	if *dataFile == "" {
		return
	}
	data, err := os.ReadFile(*dataFile)
	if err != nil {
		fail(err)
	}
	edb, err := parser.ParseInstance(string(data))
	if err != nil {
		fail(err)
	}
	rel, err := algebra.Eval(expr, edb)
	if err != nil {
		fail(err)
	}
	fmt.Println("---")
	for _, t := range rel.Sorted() {
		fmt.Printf("%s%s\n", *output, t)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqra:", err)
	os.Exit(1)
}
