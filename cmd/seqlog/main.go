// Command seqlog evaluates Sequence Datalog programs.
//
// Usage:
//
//	seqlog -program prog.sdl -data facts.sdl [-output S] [-max-facts N] [-workers N]
//	seqlog -query nfa-accept -data facts.sdl
//	seqlog -vet -program prog.sdl [-output S]
//	seqlog -list
//
// Programs use the syntax of the paper in ASCII (see the README):
//
//	S($x) :- R($x), a.$x = $x.a.
//
// With -output the named relation is printed; otherwise all IDB
// relations are printed as facts.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"seqlog/internal/analyze"
	"seqlog/internal/ast"
	"seqlog/internal/core"
	"seqlog/internal/eval"
	"seqlog/internal/instance"
	"seqlog/internal/parser"
	"seqlog/internal/queries"
)

func main() {
	var (
		programFile = flag.String("program", "", "file holding the program")
		queryName   = flag.String("query", "", "run a built-in paper query instead of -program")
		dataFile    = flag.String("data", "", "file holding the EDB facts")
		output      = flag.String("output", "", "relation to print (default: all IDB relations)")
		maxFacts    = flag.Int("max-facts", eval.DefaultLimits.MaxFacts, "termination guard: maximum derived facts")
		workers     = flag.Int("workers", 1, "fixpoint workers per round (1 = sequential, -1 = all CPUs)")
		list        = flag.Bool("list", false, "list the built-in paper queries")
		vet         = flag.Bool("vet", false, "run the static analyzer and print diagnostics instead of evaluating")
		showProg    = flag.Bool("show-program", false, "print the (stratified) program before evaluating")
		explain     = flag.Bool("explain", false, "print the compiled join plan (predicate order and index usage) before evaluating")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the evaluation to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile taken after evaluation to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer addProfileFlush(func() {
			pprof.StopCPUProfile()
			f.Close()
		})()
	}
	if *memProfile != "" {
		defer addProfileFlush(func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "seqlog:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "seqlog:", err)
			}
		})()
	}

	if *list {
		for _, q := range queries.All() {
			fmt.Printf("%-22s %-28s %s  %s\n", q.Name, q.Source, q.Fragment(), q.Doc)
		}
		return
	}

	if *vet {
		os.Exit(runVet(*programFile, *queryName, *output))
	}

	prog, out, err := loadProgram(*programFile, *queryName, *output)
	if err != nil {
		fail(err)
	}
	// Compile once: validation, stratification checks and join planning
	// are shared by -explain and the evaluation below.
	prep, err := eval.Compile(prog)
	if err != nil {
		fail(err)
	}
	if *showProg {
		fmt.Print(prog.String())
		fmt.Println("---")
	}
	if *explain {
		for _, l := range prep.Explain() {
			fmt.Println(l)
		}
		fmt.Println("---")
	}

	edb := instance.New()
	if *dataFile != "" {
		src, err := os.ReadFile(*dataFile)
		if err != nil {
			fail(err)
		}
		edb, err = parser.ParseInstance(string(src))
		if err != nil {
			fail(fmt.Errorf("%s: %w", *dataFile, err))
		}
	}

	limits := eval.Limits{MaxFacts: *maxFacts, Parallelism: *workers}
	if out != "" {
		// Prepared.Query rejects output relations unknown to both the
		// program and the instance instead of printing nothing.
		rel, err := prep.Query(edb, out, limits)
		if err != nil {
			fail(err)
		}
		printRelation(out, rel)
		return
	}
	result, err := prep.Eval(edb, limits)
	if err != nil {
		fail(err)
	}
	printRelations(result, prog.IDBNames())
}

// runVet runs the static analyzer over a program file or a built-in
// query and prints every diagnostic as "file:line:col: code: message".
// The exit status is 1 when any diagnostic has warning or error
// severity, 0 when the program is clean (info diagnostics — the
// fragment report — do not fail the vet).
func runVet(file, query, output string) int {
	var (
		prog     ast.Program
		explicit bool
		label    = file
	)
	switch {
	case file != "" && query != "":
		fail(fmt.Errorf("use either -program or -query, not both"))
	case query != "":
		q, err := queries.Get(query)
		if err != nil {
			fail(err)
		}
		if output == "" {
			output = q.Output
		}
		prog, explicit, label = q.Program, true, query
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		prog, explicit, err = parser.ParseProgramForAnalysis(string(src))
		if err != nil {
			fail(fmt.Errorf("%s: %w", file, err))
		}
	default:
		fail(fmt.Errorf("-vet needs -program or -query"))
	}
	var outputs []string
	if output != "" {
		outputs = []string{output}
	}
	diags := analyze.Check(prog, analyze.Options{
		Outputs:        outputs,
		ExplicitStrata: explicit,
		ClassLabel:     func(f ast.FeatureSet) string { return core.ClassOf(f).Label() },
	})
	bad := 0
	for _, d := range diags {
		fmt.Println(d.Format(label))
		if d.Severity != analyze.Info {
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func loadProgram(file, query, output string) (ast.Program, string, error) {
	switch {
	case file != "" && query != "":
		return ast.Program{}, "", fmt.Errorf("use either -program or -query, not both")
	case query != "":
		q, err := queries.Get(query)
		if err != nil {
			return ast.Program{}, "", err
		}
		if output == "" {
			output = q.Output
		}
		return q.Program, output, nil
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return ast.Program{}, "", err
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			return ast.Program{}, "", fmt.Errorf("%s: %w", file, err)
		}
		return prog, output, nil
	default:
		return ast.Program{}, "", fmt.Errorf("one of -program, -query or -list is required")
	}
}

func printRelations(inst *instance.Instance, names []string) {
	for _, n := range names {
		if rel := inst.Relation(n); rel != nil {
			printRelation(n, rel)
		}
	}
}

func printRelation(name string, rel *instance.Relation) {
	for _, t := range rel.Sorted() {
		if len(t) == 0 {
			fmt.Printf("%s.\n", name)
			continue
		}
		parts := make([]string, len(t))
		for i, p := range t {
			parts[i] = p.String()
		}
		fmt.Printf("%s(%s).\n", name, strings.Join(parts, ", "))
	}
}

// profileFlushes holds the pending profile finalizers. fail() runs
// them before os.Exit (which skips defers), so -cpuprofile and
// -memprofile produce usable files even when evaluation errors — the
// run one most wants to profile. addProfileFlush registers a
// once-guarded finalizer and returns it, so the caller defers the very
// function fail() would run and a flush can never happen twice.
var profileFlushes []func()

func addProfileFlush(f func()) func() {
	var once sync.Once
	wrapped := func() { once.Do(f) }
	profileFlushes = append(profileFlushes, wrapped)
	return wrapped
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "seqlog:", err)
	for _, f := range profileFlushes {
		f()
	}
	os.Exit(1)
}
