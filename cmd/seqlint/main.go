// Command seqlint enforces engine invariants across this repository's
// own Go sources — the go/analysis-style companion to the Sequence
// Datalog analyzer in internal/analyze, but aimed at the Go code. It
// is built on the standard library alone (go/parser + go/ast) so it
// runs in hermetic environments without golang.org/x/tools; packaging
// the same checks as a `go vet -vettool` plugin is gated on that
// dependency being available.
//
// Checks:
//
//   - tombstone-view: Index.LookupAll and Relation.PrefixLookupAll
//     return positions including tombstoned (deleted) tuples. The only
//     legal caller outside package instance is the DRed overdeletion
//     path (runPlanOpts in internal/eval/eval.go), which needs the
//     pre-deletion view of a relation; anywhere else the dead rows
//     silently corrupt results.
//   - write-barrier: mutating a relation fetched with Instance.
//     Relation (inst.Relation("T").Add(...)) bypasses the Ensure
//     write barrier, panicking on frozen (snapshot-shared) relations
//     or, worse, mutating a shared snapshot. Writes must go through
//     Instance.Add / Instance.Delete / Ensure.
//
// Usage:
//
//	seqlint [dir]    lint all Go files under dir (default ".")
//
// Findings print as "file:line:col: message"; the exit status is 1
// when any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seqlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// lintTree parses every Go file under root (skipping testdata and
// hidden directories) and returns the findings, sorted by position.
func lintTree(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		findings = append(findings, lintFile(fset, file, filepath.ToSlash(rel))...)
		return nil
	})
	return findings, err
}

// tombstoneViewAllowed reports whether a file may call LookupAll /
// PrefixLookupAll: package instance (definitions, internal use, and
// its tests) and the DRed overdeletion path in eval.
func tombstoneViewAllowed(relPath string) bool {
	return strings.HasPrefix(relPath, "internal/instance/") ||
		relPath == "internal/eval/eval.go"
}

// writeBarrierAllowed reports whether a file may mutate relations
// directly: only package instance itself, where the write barrier is
// implemented and direct writes are the subject under test.
func writeBarrierAllowed(relPath string) bool {
	return strings.HasPrefix(relPath, "internal/instance/")
}

// mutators are the Relation methods that change tuple storage.
var mutators = map[string]bool{
	"Add": true, "AddHashed": true, "Delete": true, "DeleteHashed": true,
	"Put": true, "Remove": true, "Compact": true,
}

// lintFile walks one parsed file and reports invariant violations.
func lintFile(fset *token.FileSet, file *ast.File, relPath string) []string {
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d:%d: %s", relPath, p.Line, p.Column, fmt.Sprintf(format, args...)))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "LookupAll", "PrefixLookupAll":
			if !tombstoneViewAllowed(relPath) {
				report(sel.Sel.Pos(), "%s returns tombstoned positions and is reserved for the DRed overdeletion path (internal/eval/eval.go); use Lookup/PrefixLookup", sel.Sel.Name)
			}
		default:
			if mutators[sel.Sel.Name] && !writeBarrierAllowed(relPath) && isRelationFetch(sel.X) {
				report(sel.Sel.Pos(), "direct %s on Instance.Relation(...) bypasses the Ensure write barrier; route the write through Instance.Add/Delete or Ensure", sel.Sel.Name)
			}
		}
		return true
	})
	return findings
}

// isRelationFetch matches an expression of the shape
// <anything>.Relation(...) — a relation handle fetched straight from
// an instance, with no write barrier in between.
func isRelationFetch(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Relation"
}
