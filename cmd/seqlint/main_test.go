package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSrc(t *testing.T, relPath, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, relPath, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lintFile(fset, file, relPath)
}

func TestTombstoneViewOutsideDRed(t *testing.T) {
	src := `package x
func f(ix *Index, r *Relation) {
	_ = ix.LookupAll(k)
	_ = r.PrefixLookupAll(0, p)
}
`
	got := lintSrc(t, "internal/rewrite/bad.go", src)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %v", got)
	}
	if !strings.Contains(got[0], "internal/rewrite/bad.go:3:9: LookupAll") {
		t.Fatalf("finding position/message: %q", got[0])
	}
	if !strings.Contains(got[1], "PrefixLookupAll") {
		t.Fatalf("second finding: %q", got[1])
	}
}

func TestTombstoneViewAllowedSites(t *testing.T) {
	src := `package x
func f(ix *Index) { _ = ix.LookupAll(k) }
`
	for _, path := range []string{"internal/eval/eval.go", "internal/instance/instance.go", "internal/instance/instance_test.go"} {
		if got := lintSrc(t, path, src); len(got) != 0 {
			t.Fatalf("%s must be allowed, got %v", path, got)
		}
	}
	// eval files other than eval.go are not exempt.
	if got := lintSrc(t, "internal/eval/maintenance.go", src); len(got) != 1 {
		t.Fatalf("non-eval.go eval file must be flagged, got %v", got)
	}
}

func TestWriteBarrierBypass(t *testing.T) {
	src := `package x
func f(inst *Instance) {
	inst.Relation("T").Add(tuple)
	inst.Relation("T").Delete(3)
	out.Relation(name).Put(0, tuple)
}
`
	got := lintSrc(t, "internal/eval/engine.go", src)
	if len(got) != 3 {
		t.Fatalf("want 3 findings, got %v", got)
	}
	for _, f := range got {
		if !strings.Contains(f, "write barrier") {
			t.Fatalf("finding must mention the write barrier: %q", f)
		}
	}
}

func TestWriteBarrierLegalPatterns(t *testing.T) {
	src := `package x
func f(inst *Instance) {
	inst.Ensure("T", 1).Add(tuple)   // Ensure IS the barrier
	inst.Add("T", tuple)             // Instance.Add routes through it
	rel := inst.Relation("T")
	_ = rel.Len()                    // reads are fine
}
`
	if got := lintSrc(t, "internal/eval/engine.go", src); len(got) != 0 {
		t.Fatalf("legal patterns flagged: %v", got)
	}
}

func TestLintTreeOnRepo(t *testing.T) {
	// The repository itself must be clean — this is the same
	// invariant "make lint" enforces in CI.
	findings, err := lintTree("../..")
	if err != nil {
		t.Fatalf("lintTree: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository violates engine invariants:\n%s", strings.Join(findings, "\n"))
	}
}
