module seqlog

go 1.24
